(* The benchmark harness: regenerates every figure of the paper's evaluation
   and adds ablation microbenchmarks for the design choices DESIGN.md calls
   out.

   Usage:
     dune exec bench/main.exe                 # everything, CI-friendly scale
     dune exec bench/main.exe fig1            # Figure 1 (divergence without OT)
     dune exec bench/main.exe fig2            # Figure 2 (convergence with OT)
     dune exec bench/main.exe fig3 [--full]   # Figure 3 (4 setups vs workload l)
     dune exec bench/main.exe overhead        # Section III constant-overhead study
     dune exec bench/main.exe scale           # time vs host count (Section VI)
     dune exec bench/main.exe copy            # persistent vs deep copy ablation
     dune exec bench/main.exe spawn [--gate]  # O(cells) COW spawn vs deep copy, size sweep
     dune exec bench/main.exe dist            # distributed-runtime overhead
     dune exec bench/main.exe coop            # threaded vs cooperative scheduler
     dune exec bench/main.exe topology        # network shapes (full/ring/star/grid)
     dune exec bench/main.exe semaphore       # Section IV.A expressiveness cost
     dune exec bench/main.exe journal [--gate]  # journal compaction payoff on MergeAll
     dune exec bench/main.exe service [--gate]  # shard service: delta sync vs snapshots
     dune exec bench/main.exe obs [--gate]    # observability overhead (recorder/tracing)
     dune exec bench/main.exe text [--gate]   # chunked-rope Mtext vs flat strings, wire bytes
     dune exec bench/main.exe micro           # bechamel component microbenches
     dune exec bench/main.exe fuzz            # sm-fuzz seeds/second (CI budget sizing)

   Flags (after the subcommand):
     --json         write BENCH_<name>.json (per-series n/mean/stddev/median/p95);
                    implied by --gate so gated runs always leave their artifact
     --obs          enable Sm_obs metrics and dump counters/histograms at exit
     --trace FILE   capture a Chrome trace_event file of the run (sets the
                    verbosity to Debug unless something already raised it)
     --trace-jsonl FILE   capture the structured event stream as JSONL —
                    the input format of `sm-trace` (summary / critical-path /
                    attribute / diff / expo); combinable with --trace

   Absolute times differ from the paper's i7-3520M testbed; the *shapes* are
   what EXPERIMENTS.md compares: linearity in l, a workload-independent
   Spawn/Merge overhead whose relative cost shrinks with l, and the
   deterministic variant running at or below the non-deterministic one. *)

module W = Sm_sim.Workload

let section title =
  Format.printf "@.=== %s ===@." title;
  Format.print_flush ()

(* --- machine-readable output and observability flags ----------------------- *)

(* `--json` collects every timed sample and writes BENCH_<name>.json; the
   series key identifies the measurement ("l=1000/Spawn Merge (determ.)"). *)
let json_mode = ref false
let samples : (string, float list) Hashtbl.t = Hashtbl.create 16

let record name ms =
  if !json_mode then
    Hashtbl.replace samples name (ms :: Option.value ~default:[] (Hashtbl.find_opt samples name))

let series_json xs =
  let s = Sm_util.Stats.summarize xs in
  Sm_obs.Json.Obj
    [ ("n", Sm_obs.Json.Int s.Sm_util.Stats.n)
    ; ("mean_ms", Sm_obs.Json.Float s.Sm_util.Stats.mean)
    ; ("stddev_ms", Sm_obs.Json.Float s.Sm_util.Stats.stddev)
    ; ("median_ms", Sm_obs.Json.Float s.Sm_util.Stats.median)
    ; ("p95_ms", Sm_obs.Json.Float (Sm_util.Stats.percentile xs ~p:95.0))
    ; ("min_ms", Sm_obs.Json.Float s.Sm_util.Stats.min)
    ; ("max_ms", Sm_obs.Json.Float s.Sm_util.Stats.max)
    ]

let write_json bench_name =
  if !json_mode && Hashtbl.length samples > 0 then begin
    let series =
      List.sort compare
        (Hashtbl.fold (fun name xs acc -> (name, series_json (List.rev xs)) :: acc) samples [])
    in
    let doc = Sm_obs.Json.Obj [ ("bench", Sm_obs.Json.String bench_name); ("series", Sm_obs.Json.Obj series) ] in
    let path = Printf.sprintf "BENCH_%s.json" bench_name in
    let oc = open_out path in
    output_string oc (Sm_obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Hashtbl.reset samples;
    Format.printf "@.wrote %s@." path
  end

(* --- Figures 1 and 2 ------------------------------------------------------ *)

module Fig_list = Sm_ot.Op_list.Make (struct
  type t = string

  let equal = String.equal
  let pp ppf s = Format.fprintf ppf "%s" s
end)

let pp_slist ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_string)
    l

let fig1 () =
  section "figure 1: concurrent del(2) and ins(0,d) WITHOUT transformation";
  let base = [ "a"; "b"; "c" ] in
  let op_a = Fig_list.del 2 and op_b = Fig_list.ins 0 "d" in
  let site_a = Fig_list.apply (Fig_list.apply base op_a) op_b in
  let site_b = Fig_list.apply (Fig_list.apply base op_b) op_a in
  Format.printf "site A applies del(2) then ins(0,d): %a@." pp_slist site_a;
  Format.printf "site B applies ins(0,d) then del(2): %a@." pp_slist site_b;
  Format.printf "paper: sites diverge ([d,a,b] vs [d,a,c]) -> %s@."
    (if site_a <> site_b then "reproduced" else "NOT reproduced")

let fig2 () =
  section "figure 2: the same operations WITH operational transformation";
  let base = [ "a"; "b"; "c" ] in
  let op_a = Fig_list.del 2 and op_b = Fig_list.ins 0 "d" in
  let open Sm_ot in
  let a' = Fig_list.transform op_a ~against:op_b ~tie:(Side.uniform Side.Applied) in
  let b' = Fig_list.transform op_b ~against:op_a ~tie:(Side.uniform Side.Incoming) in
  let site_a = List.fold_left Fig_list.apply (Fig_list.apply base op_a) b' in
  let site_b = List.fold_left Fig_list.apply (Fig_list.apply base op_b) a' in
  Format.printf "A's del(2) transformed against ins(0,d): %a@."
    (Format.pp_print_list Fig_list.pp_op) a';
  Format.printf "site A: %a,  site B: %a@." pp_slist site_a pp_slist site_b;
  Format.printf "paper: both converge to [d,a,b] -> %s@."
    (if site_a = site_b && site_a = [ "d"; "a"; "b" ] then "reproduced" else "NOT reproduced")

(* --- Figure 3 -------------------------------------------------------------- *)

type setup =
  { label : string
  ; run : W.config -> W.report
  ; mode : W.mode
  }

(* One long-lived executor for every Spawn/Merge run in this process, so
   measurements exclude the fixed ~50 ms domain-teardown artifact (see
   Runtime.run) and reflect the algorithmic overhead the paper discusses. *)
let executor = lazy (Sm_core.Executor.create ())

let sm_run c = Sm_sim.Sim_spawnmerge.run ~executor:(Lazy.force executor) c

let setups =
  [ { label = "Conventional (non-determ.)"; run = Sm_sim.Sim_conventional.run; mode = W.Hash_destination }
  ; { label = "Conventional (determ.)"; run = Sm_sim.Sim_conventional.run; mode = W.Ring_destination }
  ; { label = "Spawn Merge (non-determ.)"; run = sm_run; mode = W.Hash_destination }
  ; { label = "Spawn Merge (determ.)"; run = sm_run; mode = W.Ring_destination }
  ]

(* Least-squares fit of time(ms) against load, for the shape analysis. *)
let linear_fit points =
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if denom = 0.0 then (0.0, sy /. n)
  else
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    (slope, intercept)

let fig3 ?(reps = 2) ~full () =
  let base, loads =
    if full then
      ( { W.default with W.messages = 100; ttl = 100; hosts = 20 }
      , [ 0; 1000; 2500; 5000; 7500; 10000 ] )
    else
      ({ W.default with W.messages = 20; ttl = 20; hosts = 20 }, [ 0; 1000; 2000; 3000; 4000; 5000 ])
  in
  section
    (Printf.sprintf
       "figure 3: simulation time vs host workload l  (%d hosts, %d messages, ttl %d%s)"
       base.W.hosts base.W.messages base.W.ttl
       (if full then ", PAPER SCALE" else ", scaled down; use `fig3 --full` for paper scale"));
  Format.printf "@.%-10s" "load l";
  List.iter (fun s -> Format.printf "%28s" s.label) setups;
  Format.printf "@.";
  let series = Hashtbl.create 4 in
  List.iter
    (fun load ->
      Format.printf "%-10d" load;
      List.iter
        (fun s ->
          let cfg = { base with W.load; mode = s.mode } in
          let rep_ms =
            List.init (max 1 reps) (fun _ -> (s.run cfg).W.elapsed_s *. 1000.0)
          in
          List.iter (record (Printf.sprintf "l=%d/%s" load s.label)) rep_ms;
          (* min of [reps] runs: scheduling noise only ever adds time *)
          let ms = List.fold_left Float.min infinity rep_ms in
          let prev = Option.value ~default:[] (Hashtbl.find_opt series s.label) in
          Hashtbl.replace series s.label ((float_of_int load, ms) :: prev);
          Format.printf "%26.1fms" ms;
          Format.print_flush ())
        setups;
      Format.printf "@.")
    loads;
  (* shape analysis vs the paper's claims *)
  Format.printf "@.-- shape analysis (paper expectations in brackets) --@.";
  let fits =
    List.map
      (fun s ->
        let slope, intercept = linear_fit (Hashtbl.find series s.label) in
        Format.printf "%-28s time ~ %.4f ms/kiter * l + %.1f ms@." s.label (slope *. 1000.0)
          intercept;
        (s.label, slope, intercept))
      setups
  in
  let find l = List.find (fun (lbl, _, _) -> lbl = l) fits in
  let _, s_cn, i_cn = find "Conventional (non-determ.)" in
  let _, _s_cd, _i_cd = find "Conventional (determ.)" in
  let _, s_sn, i_sn = find "Spawn Merge (non-determ.)" in
  let _, s_sd, i_sd = find "Spawn Merge (determ.)" in
  Format.printf "@.[all rise linearly in l]                 slopes: %s@."
    (if List.for_all (fun (_, s, _) -> s > 0.0) fits then "all positive, linear fit above" else "UNEXPECTED");
  Format.printf "[Spawn/Merge pays a ~constant overhead]  intercept gap SM - conventional: %+.1f ms (non-det), slope ratio %.2fx@."
    (i_sn -. i_cn) (s_sn /. s_cn);
  let at l = List.map (fun (lbl, s, i) -> (lbl, (s *. l) +. i)) fits in
  let rel l =
    let v = at l in
    let get lbl = List.assoc lbl v in
    (get "Spawn Merge (non-determ.)" -. get "Conventional (non-determ.)")
    /. get "Conventional (non-determ.)"
    *. 100.0
  in
  let lo = float_of_int (List.nth loads 1) and hi = float_of_int (List.nth loads (List.length loads - 1)) in
  Format.printf "[overhead %% shrinks as l grows (38%% -> 7%%)] overhead at l=%.0f: %+.0f%%, at l=%.0f: %+.0f%%@."
    lo (rel lo) hi (rel hi);
  Format.printf "[SM determ. <= SM non-determ. (1-4%% gap)]  measured gap: %+.1f%% (fitted, at l=%.0f)@."
    (let v = at hi in
     (List.assoc "Spawn Merge (non-determ.)" v -. List.assoc "Spawn Merge (determ.)" v)
     /. List.assoc "Spawn Merge (non-determ.)" v *. 100.0)
    hi;
  ignore (s_sd, i_sd)

(* --- Section III: the constant overhead, dissected ------------------------ *)

let overhead () =
  section "overhead: Spawn/Merge cost at zero workload (Section III's ~400 ms analysis)";
  Format.printf "@.The paper attributes the constant gap to per-spawn copying (20 tasks x 20@.";
  Format.printf "queues).  Our copies are persistent (copy-on-write for free, the paper's@.";
  Format.printf "future-work optimization), so the residual overhead is per-cycle merging.@.@.";
  Format.printf "%-8s %-18s %-18s %-12s %s@." "hosts" "conventional" "spawn-merge" "gap" "(l = 0, messages = hosts, ttl = 10)";
  List.iter
    (fun hosts ->
      let cfg =
        { W.hosts; messages = hosts; ttl = 10; load = 0; mode = W.Hash_destination; topology = W.Full; seed = 5L }
      in
      let conv = (Sm_sim.Sim_conventional.run cfg).W.elapsed_s *. 1000.0 in
      let sm = (sm_run cfg).W.elapsed_s *. 1000.0 in
      record (Printf.sprintf "hosts=%d/conventional" hosts) conv;
      record (Printf.sprintf "hosts=%d/spawn-merge" hosts) sm;
      Format.printf "%-8d %15.1f ms %15.1f ms %+9.1f ms@." hosts conv sm (sm -. conv);
      Format.print_flush ())
    [ 5; 10; 20; 40 ];
  Format.printf "@.%-8s %-18s %-18s %-12s %s@." "load l" "conventional" "spawn-merge" "gap" "(20 hosts: the gap is ~independent of l)";
  List.iter
    (fun load ->
      let cfg = { W.hosts = 20; messages = 20; ttl = 10; load; mode = W.Hash_destination; topology = W.Full; seed = 5L } in
      let conv = (Sm_sim.Sim_conventional.run cfg).W.elapsed_s *. 1000.0 in
      let sm = (sm_run cfg).W.elapsed_s *. 1000.0 in
      record (Printf.sprintf "load=%d/conventional" load) conv;
      record (Printf.sprintf "load=%d/spawn-merge" load) sm;
      Format.printf "%-8d %15.1f ms %15.1f ms %+9.1f ms@." load conv sm (sm -. conv);
      Format.print_flush ())
    [ 0; 1500; 3000 ]

(* --- Section IV.A: what the semaphore construction costs ------------------- *)

let semaphore_bench () =
  section "semaphore: Spawn/Merge semaphore vs native mutex (Section IV.A: \"inefficient and cumbersome\", but equivalent)";
  let rounds = 50 in
  let workers = 3 in
  let t0 = Unix.gettimeofday () in
  let worker (ops : Sm_core.Semaphore.ops) =
    for _ = 1 to rounds do
      ops.acquire 0;
      ops.release 0
    done
  in
  (match Sm_core.Semaphore.run_system ~executor:(Lazy.force executor) ~values:[| 1 |] (List.init workers (fun _ -> worker)) with
  | Sm_core.Semaphore.Completed -> ()
  | Sm_core.Semaphore.All_blocked -> failwith "unexpected block");
  let sm_s = Unix.gettimeofday () -. t0 in
  let m = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let native () =
    for _ = 1 to rounds do
      Mutex.lock m;
      Mutex.unlock m
    done
  in
  let threads = List.init workers (fun _ -> Thread.create native ()) in
  List.iter Thread.join threads;
  let native_s = Unix.gettimeofday () -. t0 in
  let total = rounds * workers in
  Format.printf "%d acquire/release pairs across %d workers:@." total workers;
  Format.printf "  spawn-merge semaphore: %8.1f ms  (%7.0f pairs/s)@." (sm_s *. 1000.0)
    (float_of_int total /. sm_s);
  Format.printf "  native mutex:          %8.3f ms  (%7.0f pairs/s)@." (native_s *. 1000.0)
    (float_of_int total /. native_s);
  Format.printf "equivalence costs ~%.0fx -- the construction is a proof, not a fast path.@."
    (sm_s /. native_s)

(* --- scalability: time vs host count (Section VI future work) -------------- *)

let scale () =
  section "scale: simulation time vs host count at fixed per-host workload";
  Format.printf "@.%-8s %-10s %-18s %-18s %-10s@." "hosts" "hops" "conventional" "spawn-merge" "SM/conv";
  List.iter
    (fun hosts ->
      (* keep work per host constant: messages = hosts, so hops = hosts*ttl *)
      let cfg =
        { W.hosts; messages = hosts; ttl = 15; load = 400; mode = W.Hash_destination; topology = W.Full; seed = 11L }
      in
      let conv = (Sm_sim.Sim_conventional.run cfg).W.elapsed_s *. 1000.0 in
      let sm = (sm_run cfg).W.elapsed_s *. 1000.0 in
      record (Printf.sprintf "hosts=%d/conventional" hosts) conv;
      record (Printf.sprintf "hosts=%d/spawn-merge" hosts) sm;
      Format.printf "%-8d %-10d %15.1f ms %15.1f ms %8.2fx@." hosts (W.total_hops cfg) conv sm
        (sm /. conv);
      Format.print_flush ())
    [ 4; 8; 16; 32; 64 ];
  Format.printf "@.(the ratio grows with hosts: per-cycle merging is O(hosts^2) transform@.";
  Format.printf " pairs while useful work grows O(hosts) -- the scalability limit Section VI@.";
  Format.printf " wants to attack with faster merge functions)@."

(* --- ablation: persistent copy vs the paper's deep copy -------------------- *)

let copy_ablation () =
  section "ablation: workspace copy cost, persistent (ours) vs deep (paper's PoC)";
  let module Mq = Sm_mergeable.Mqueue.Make (struct
    type t = string

    let equal = String.equal
    let pp ppf s = Format.fprintf ppf "%S" s
  end) in
  Format.printf "@.%-28s %-16s %-16s %-10s@." "workspace" "persistent copy" "deep copy" "ratio";
  List.iter
    (fun (n_queues, n_items) ->
      let ws = Sm_mergeable.Workspace.create () in
      let payloads = List.init n_items (fun i -> String.make 40 (Char.chr (65 + (i mod 26)))) in
      for i = 0 to n_queues - 1 do
        Sm_mergeable.Workspace.init ws (Mq.key ~name:(Printf.sprintf "q%d" i)) payloads
      done;
      let time_n n f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          ignore (Sys.opaque_identity (f ()))
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6
      in
      let persistent = time_n 2000 (fun () -> Sm_mergeable.Workspace.copy ws) in
      (* what the paper's unoptimized framework did: structural deep copy of
         every value (simulated via marshalling, a faithful full copy) *)
      let deep =
        time_n 200 (fun () ->
            (Marshal.from_string (Marshal.to_string payloads []) 0 : string list))
        *. float_of_int n_queues
      in
      Format.printf "%2d queues x %3d msgs         %10.1f us    %10.1f us  %8.0fx@." n_queues
        n_items persistent deep (deep /. persistent);
      Format.print_flush ())
    [ (5, 20); (20, 20); (20, 100); (40, 100) ];
  Format.printf "@.(the paper measured ~400 ms constant overhead from 20 tasks each deep-@.";
  Format.printf " copying 20 queues; persistent states make the same copy O(#values),@.";
  Format.printf " which is why our Figure-3 intercept is an order of magnitude smaller)@."

(* --- distributed runtime overhead (Section VI future work) ----------------- *)

let dist_registry = lazy (
  let registry = Sm_dist.Registry.create () in
  let k = Sm_dist.Registry.value registry ~name:"bench-counter" (module Sm_dist.Codable.Counter) in
  let t_add =
    Sm_dist.Registry.task registry ~name:"add" (fun ctx ->
        Sm_dist.Registry.update ctx k (Sm_ot.Op_counter.add 1))
  in
  let t_sync =
    Sm_dist.Registry.task registry ~name:"sync-n" (fun ctx ->
        for _ = 1 to int_of_string (Sm_dist.Registry.argument ctx) do
          Sm_dist.Registry.update ctx k (Sm_ot.Op_counter.add 1);
          ignore (Sm_dist.Registry.sync ctx)
        done)
  in
  (registry, k, t_add, t_sync))

let dist_bench () =
  section "dist: remote (simulated MPI) spawn/merge overhead vs local runtime";
  let registry, k, t_add, t_sync = Lazy.force dist_registry in
  let kc = Sm_mergeable.Mcounter.key ~name:"local-bench-counter" in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let tasks = 100 in
  let local_ms =
    time (fun () ->
        let v =
          Sm_core.Runtime.run ~executor:(Lazy.force executor) (fun ctx ->
              Sm_mergeable.Workspace.init (Sm_core.Runtime.workspace ctx) kc 0;
              for _ = 1 to tasks do
                ignore
                  (Sm_core.Runtime.spawn ctx (fun c ->
                       Sm_mergeable.Mcounter.incr (Sm_core.Runtime.workspace c) kc))
              done;
              Sm_core.Runtime.merge_all ctx;
              Sm_mergeable.Mcounter.get (Sm_core.Runtime.workspace ctx) kc)
        in
        assert (v = tasks))
  in
  let cluster = Sm_dist.Coordinator.cluster ~nodes:2 registry in
  let remote_ms =
    time (fun () ->
        let v =
          Sm_dist.Coordinator.run cluster (fun ctx ->
              let ws = Sm_dist.Coordinator.workspace ctx in
              Sm_mergeable.Workspace.init ws (Sm_dist.Registry.workspace_key k) 0;
              for _ = 1 to tasks do
                ignore (Sm_dist.Coordinator.spawn ctx t_add ~argument:"")
              done;
              Sm_dist.Coordinator.merge_all ctx;
              Sm_mergeable.Workspace.read ws (Sm_dist.Registry.workspace_key k))
        in
        assert (v = tasks))
  in
  let rounds = 200 in
  let sync_ms =
    time (fun () ->
        Sm_dist.Coordinator.run cluster (fun ctx ->
            let ws = Sm_dist.Coordinator.workspace ctx in
            Sm_mergeable.Workspace.init ws (Sm_dist.Registry.workspace_key k) 0;
            ignore (Sm_dist.Coordinator.spawn ctx t_sync ~argument:(string_of_int rounds));
            let rec drain () =
              if Sm_dist.Coordinator.live_tasks ctx > 0 then begin
                Sm_dist.Coordinator.merge_all ctx;
                drain ()
              end
            in
            drain ()))
  in
  Sm_dist.Coordinator.shutdown cluster;
  record "local" local_ms;
  record "remote" remote_ms;
  record "sync-roundtrips" sync_ms;
  Format.printf "%d one-shot tasks, local runtime:     %8.1f ms  (%6.0f us/task)@." tasks local_ms
    (local_ms *. 1000.0 /. float_of_int tasks);
  Format.printf "%d one-shot tasks, 2-node cluster:    %8.1f ms  (%6.0f us/task)@." tasks remote_ms
    (remote_ms *. 1000.0 /. float_of_int tasks);
  Format.printf "%d sync roundtrips over the wire:     %8.1f ms  (%6.0f us/sync)@." rounds sync_ms
    (sync_ms *. 1000.0 /. float_of_int rounds);
  Format.printf "(the gap is serialization + channel hops -- the cost of rank isolation)@."

(* --- topologies: the workload under different network shapes --------------- *)

let topology_bench () =
  section "topology: the simulation across network shapes (16 hosts, load 500)";
  Format.printf "@.%-8s %-18s %-18s %-18s@." "shape" "conventional" "spawn-merge" "order digest";
  List.iter
    (fun (name, topology) ->
      let cfg =
        { W.hosts = 16; messages = 16; ttl = 12; load = 500; mode = W.Hash_destination; topology
        ; seed = 9L }
      in
      let conv = Sm_sim.Sim_conventional.run cfg in
      let sm = sm_run cfg in
      Format.printf "%-8s %15.1f ms %15.1f ms   %s%s@." name (conv.W.elapsed_s *. 1000.0)
        (sm.W.elapsed_s *. 1000.0) sm.W.order_digest
        (if conv.W.event_digest = sm.W.event_digest then "" else "  TRAJECTORY MISMATCH");
      Format.print_flush ())
    [ ("full", W.Full); ("ring", W.Ring_topology); ("star", W.Star); ("grid", W.Grid) ]

(* --- schedulers: threaded vs cooperative on the same simulation ------------ *)

let coop_bench () =
  section "coop: the Listing-4 simulation under both schedulers";
  Format.printf "@.%-8s %-18s %-18s %-12s@." "load l" "threaded" "cooperative" "digests";
  List.iter
    (fun load ->
      let cfg = { W.hosts = 20; messages = 20; ttl = 15; load; mode = W.Hash_destination; topology = W.Full; seed = 3L } in
      let threaded = sm_run cfg in
      let coop = Sm_sim.Sim_spawnmerge.run_cooperative cfg in
      record (Printf.sprintf "l=%d/threaded" load) (threaded.W.elapsed_s *. 1000.0);
      record (Printf.sprintf "l=%d/cooperative" load) (coop.W.elapsed_s *. 1000.0);
      Format.printf "%-8d %15.1f ms %15.1f ms %-12s@." load (threaded.W.elapsed_s *. 1000.0)
        (coop.W.elapsed_s *. 1000.0)
        (if threaded.W.order_digest = coop.W.order_digest then "identical" else "DIFFER!");
      Format.print_flush ())
    [ 0; 1000; 2500 ];
  Format.printf "@.(same results byte for byte; the gap at l=0 is thread parking/waking --@.";
  Format.printf " the cooperative scheduler replaces it with effect switches)@."

(* --- component microbenches (bechamel), one Test.make per component -------- *)

let micro ~quick () =
  section "micro: component costs (bechamel, OLS ns/run)";
  let open Bechamel in
  let module Mq = Sm_mergeable.Mqueue.Make (struct
    type t = int

    let equal = Int.equal
    let pp = Format.pp_print_int
  end) in
  let module L = Fig_list in
  let module C = Sm_ot.Control.Make (L) in
  let ws_with_queues n_queues n_items =
    let ws = Sm_mergeable.Workspace.create () in
    let keys =
      Array.init n_queues (fun i ->
          let k = Mq.key ~name:(Printf.sprintf "q%d" i) in
          Sm_mergeable.Workspace.init ws k (List.init n_items (fun j -> j));
          k)
    in
    (ws, keys)
  in
  let ws20, keys20 = ws_with_queues 20 20 in
  let seq_a = List.init 20 (fun i -> L.ins i "x") in
  let seq_b = List.init 20 (fun i -> if i mod 2 = 0 then L.ins i "y" else L.del 0) in
  let payload = String.make 20 'p' in
  let tests =
    Test.make_grouped ~name:"components"
      [ Test.make ~name:"sha1 digest (20B)" (Staged.stage (fun () -> ignore (Sm_util.Sha1.digest payload)))
      ; Test.make ~name:"list IT (one pair)"
          (Staged.stage (fun () ->
               ignore
                 (L.transform (L.ins 3 "a") ~against:(L.del 1)
                    ~tie:Sm_ot.Side.serialization)))
      ; Test.make ~name:"control cross (20x20 ops)"
          (Staged.stage (fun () ->
               ignore (C.cross ~incoming:seq_a ~applied:seq_b ~tie:Sm_ot.Side.serialization)))
      ; Test.make ~name:"workspace copy (20 queues x 20)"
          (Staged.stage (fun () -> ignore (Sm_mergeable.Workspace.copy ws20)))
      ; Test.make ~name:"merge_child (5 ops vs 5 ops)"
          (Staged.stage (fun () ->
               let base = Sm_mergeable.Workspace.snapshot ws20 in
               let child = Sm_mergeable.Workspace.copy ws20 in
               for i = 0 to 4 do
                 Mq.push child keys20.(i) 99
               done;
               Sm_mergeable.Workspace.merge_child ~parent:ws20 ~child ~base))
      ; Test.make ~name:"spawn+merge roundtrip (fresh executor)"
          (Staged.stage (fun () ->
               Sm_core.Runtime.run (fun ctx ->
                   ignore (Sm_core.Runtime.spawn ctx (fun _ -> ()));
                   Sm_core.Runtime.merge_all ctx)))
      ; Test.make ~name:"spawn+merge roundtrip (reused executor)"
          (Staged.stage (fun () ->
               Sm_core.Runtime.run ~executor:(Lazy.force executor) (fun ctx ->
                   ignore (Sm_core.Runtime.spawn ctx (fun _ -> ()));
                   Sm_core.Runtime.merge_all ctx)))
      ; Test.make ~name:"spawn+merge roundtrip (cooperative)"
          (Staged.stage (fun () ->
               Sm_core.Runtime.Coop.run (fun ctx ->
                   ignore (Sm_core.Runtime.spawn ctx (fun _ -> ()));
                   Sm_core.Runtime.merge_all ctx)))
      ]
  in
  let quota = if quick then 0.25 else 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let ns = match Analyze.OLS.estimates est with Some (e :: _) -> e | _ -> nan in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
      Format.printf "%-45s %12.1f ns/run   (r2 %.3f)@." name ns r2)
    (List.sort compare rows)

(* --- journal: compaction payoff on a journal-heavy MergeAll ----------------- *)

module J_str = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp ppf s = Format.fprintf ppf "%s" s
end

module J_int = struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end

module J_map = Sm_mergeable.Mmap.Make (J_str) (J_int)
module J_reg = Sm_mergeable.Mregister.Make (J_str)

let jk_text = Sm_mergeable.Mtext.key ~name:"journal.text"
let jk_map = J_map.key ~name:"journal.map"
let jk_reg = J_reg.key ~name:"journal.reg"
let jk_counter = Sm_mergeable.Mcounter.key ~name:"journal.counter"

(* One child's journal: long compactable runs that still conflict *across*
   children — text appends race for the same positions, map puts collide on
   the same 8 keys, register assigns disagree — so the merge cannot take the
   commutes fast path and every surviving op really is transformed. *)
let journal_child_ops ws ~child ~ops_per_child =
  let n_text = ops_per_child * 5 / 8 in
  let n_map = ops_per_child / 4 in
  let n_scalar = ops_per_child / 16 in
  for _ = 1 to n_text do
    Sm_mergeable.Mtext.append ws jk_text (String.make 1 (Char.chr (97 + (child mod 26))))
  done;
  for i = 1 to n_map do
    J_map.put ws jk_map (Printf.sprintf "k%d" (i mod 8)) ((child * 1000) + i)
  done;
  for i = 1 to n_scalar do
    J_reg.set ws jk_reg (Printf.sprintf "c%d-%d" child i)
  done;
  for _ = 1 to n_scalar do
    Sm_mergeable.Mcounter.incr ws jk_counter
  done

type journal_run =
  { j_ms : float
  ; j_transforms : int
  ; j_compact_in : int
  ; j_compact_out : int
  ; j_digest : string
  }

let journal_run ~children ~ops_per_child ~compaction =
  let module Ws = Sm_mergeable.Workspace in
  let module M = Sm_obs.Metrics in
  let saved_c = Ws.compaction_enabled () in
  let saved_m = M.is_enabled () in
  Ws.set_compaction compaction;
  M.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Ws.set_compaction saved_c;
      M.set_enabled saved_m)
  @@ fun () ->
  let parent = Ws.create () in
  Sm_mergeable.Mtext.init parent jk_text "";
  Ws.init parent jk_map J_map.Op.Key_map.empty;
  Ws.init parent jk_reg "-";
  Ws.init parent jk_counter 0;
  let base = Ws.snapshot parent in
  let kids =
    List.init children (fun i ->
        let ws = Ws.copy parent in
        journal_child_ops ws ~child:i ~ops_per_child;
        ws)
  in
  let t0c = M.value Sm_ot.Control.transform_calls in
  let ci0 = M.value Sm_ot.Control.compact_in in
  let co0 = M.value Sm_ot.Control.compact_out in
  let t0 = Unix.gettimeofday () in
  List.iter (fun child -> Ws.merge_child ~parent ~child ~base) kids;
  let j_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  { j_ms
  ; j_transforms = M.value Sm_ot.Control.transform_calls - t0c
  ; j_compact_in = M.value Sm_ot.Control.compact_in - ci0
  ; j_compact_out = M.value Sm_ot.Control.compact_out - co0
  ; j_digest = Ws.digest parent
  }

(* Returns whether the >= 2x transform-call reduction held with identical
   digests; the driver turns that into the exit code *after* writing the
   JSON artifact, so a failing gate still uploads its evidence. *)
let journal_bench () =
  section "journal: compaction payoff on a journal-heavy MergeAll";
  let children = 8 and ops_per_child = 160 and reps = 3 in
  Format.printf "%d children x %d journal ops (appends / map puts / assigns / incrs),@."
    children ops_per_child;
  Format.printf "merged into one parent with compaction off, then on:@.@.";
  let measure ~compaction =
    let label = if compaction then "on" else "off" in
    let runs =
      List.init reps (fun _ ->
          let r = journal_run ~children ~ops_per_child ~compaction in
          record (Printf.sprintf "merge-all/compaction=%s" label) r.j_ms;
          record (Printf.sprintf "transform_calls/compaction=%s" label)
            (float_of_int r.j_transforms);
          r)
    in
    (* the op accounting is deterministic across reps; only wall time varies *)
    let best = List.fold_left (fun a r -> if r.j_ms < a.j_ms then r else a) (List.hd runs) runs in
    best
  in
  let off = measure ~compaction:false in
  let on = measure ~compaction:true in
  Format.printf "%-16s %14s %18s %22s@." "compaction" "merge wall" "transform calls" "journal ops";
  let row label (r : journal_run) =
    Format.printf "%-16s %11.2f ms %18d %14d -> %-6d@." label r.j_ms r.j_transforms
      (if r.j_compact_in = 0 then children * ops_per_child else r.j_compact_in)
      (if r.j_compact_in = 0 then children * ops_per_child else r.j_compact_out)
  in
  row "off" off;
  row "on" on;
  let ratio = float_of_int off.j_transforms /. float_of_int (max 1 on.j_transforms) in
  Format.printf "@.transform calls cut %.0fx (%d -> %d), wall time %.2fx@." ratio off.j_transforms
    on.j_transforms (off.j_ms /. on.j_ms);
  let digests_equal = String.equal off.j_digest on.j_digest in
  Format.printf "digests %s (%s)@."
    (if digests_equal then "identical" else "DIFFER — COMPACTION CHANGED THE MERGE")
    on.j_digest;
  let ok = digests_equal && off.j_transforms >= 2 * on.j_transforms in
  Format.printf "gate: %s (>= 2x transform-call reduction with equal digests)@."
    (if ok then "ok" else "FAILED");
  ok

(* --- spawn: O(cells) copy-on-write sharing vs the deep-copy baseline -------- *)

(* Workspaces for the spawn sweep: one text cell carrying the bulk state
   (1k -> 1M chars) plus a counter, so every spawn shares exactly two cells.
   Module-level keys: one mint site, reused across every size. *)
let sk_text = Sm_mergeable.Mtext.key ~name:"spawn.text"
let sk_counter = Sm_mergeable.Mcounter.key ~name:"spawn.counter"

let spawn_ws ~chars =
  let ws = Sm_mergeable.Workspace.create () in
  Sm_mergeable.Mtext.init ws sk_text (String.make chars 'x');
  Sm_mergeable.Workspace.init ws sk_counter 0;
  ws

(* Per-copy wall time of [Workspace.copy] under the active representation:
   [reps] batches of [iters] copies each, min-of-batches, in us.  Min is the
   right statistic here — noise (GC, scheduler) only ever adds time, and the
   gate asks about the cost of the operation, not the weather. *)
let time_spawn_copy ws ~iters ~reps =
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (Sm_mergeable.Workspace.copy ws))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e6
  in
  List.fold_left (fun acc _ -> Float.min acc (batch ())) (batch ()) (List.init (reps - 1) Fun.id)

(* A real spawn/merge program over the same keys, for the cross-representation
   digest check and the depth/width sweep: a [width]-ary spawn tree [depth]
   levels deep; every task appends a marker and bumps the counter, every
   parent merge-alls its children. *)
let rec spawn_tree ctx ~depth ~width =
  let ws = Sm_core.Runtime.workspace ctx in
  Sm_mergeable.Mtext.append ws sk_text "m";
  Sm_mergeable.Mcounter.incr ws sk_counter;
  if depth > 0 then begin
    for _ = 1 to width do
      ignore (Sm_core.Runtime.spawn ctx (fun ctx -> spawn_tree ctx ~depth:(depth - 1) ~width))
    done;
    Sm_core.Runtime.merge_all ctx
  end

let spawn_tree_run ~chars ~depth ~width =
  let module Rt = Sm_core.Runtime in
  Rt.Coop.run (fun ctx ->
      let ws = Rt.workspace ctx in
      Sm_mergeable.Mtext.init ws sk_text (String.make chars 'x');
      Sm_mergeable.Workspace.init ws sk_counter 0;
      spawn_tree ctx ~depth ~width;
      Sm_mergeable.Workspace.digest ws)

let pp_chars chars =
  if chars >= 1_000_000 then Printf.sprintf "%dM" (chars / 1_000_000)
  else Printf.sprintf "%dk" (chars / 1_000)

(* Gates: (a) COW spawn cost is flat in state size — the 1M-char per-copy
   time within 5x of the 1k-char one; (b) >= 10x cheaper than the deep-copy
   baseline at 1M chars; (c) the same spawn-tree program digests identically
   under both representations.  Returns whether all held; the driver turns
   that into the exit code after writing BENCH_spawn.json. *)
let spawn_bench () =
  section "spawn: copy-on-write workspace sharing vs the deep-copy baseline";
  let module Ws = Sm_mergeable.Workspace in
  let module M = Sm_obs.Metrics in
  let saved_cow = Ws.cow_enabled () in
  let saved_m = M.is_enabled () in
  M.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Ws.set_cow saved_cow;
      M.set_enabled saved_m)
  @@ fun () ->
  let sizes = [ 1_000; 10_000; 100_000; 1_000_000 ] in
  (* warm up allocator/code paths so the first (smallest) row isn't penalized *)
  ignore (time_spawn_copy (spawn_ws ~chars:1_000) ~iters:200 ~reps:2);
  Format.printf "@.per-spawn workspace copy (2 cells), min over batches:@.@.";
  Format.printf "%-12s %14s %14s %10s@." "state" "cow copy" "deep copy" "ratio";
  let rows =
    List.map
      (fun chars ->
        let ws = spawn_ws ~chars in
        Ws.set_cow true;
        let cow_us = time_spawn_copy ws ~iters:1000 ~reps:5 in
        Ws.set_cow false;
        (* deep copies of 1M chars are ~4 orders slower; fewer iters suffice *)
        let deep_us = time_spawn_copy ws ~iters:(if chars >= 100_000 then 50 else 500) ~reps:5 in
        Ws.set_cow true;
        record (Printf.sprintf "copy/cow=on/chars=%d" chars) (cow_us /. 1000.0);
        record (Printf.sprintf "copy/cow=off/chars=%d" chars) (deep_us /. 1000.0);
        Format.printf "%-12s %11.2f us %11.2f us %9.0fx@." (pp_chars chars ^ " chars") cow_us
          deep_us (deep_us /. cow_us);
        Format.print_flush ();
        (chars, cow_us, deep_us))
      sizes
  in
  (* spawn trees under the real runtime: per-spawn wall must not grow with
     the state the tasks never touch (they append 1 char to a 10k..1M doc) *)
  (* per-task wall includes each task's O(state) text edit — the point of the
     sweep is that the *spawn* adds nothing as state grows, which shows up as
     the 10k and 1M columns converging once edit cost is subtracted *)
  Format.printf "@.spawn trees (every task edits; parents merge-all), cow on:@.@.";
  Format.printf "%-12s %8s %8s %12s %14s@." "state" "depth" "width" "tasks" "per-task";
  List.iter
    (fun (depth, width) ->
      List.iter
        (fun chars ->
          (* nodes of the width-ary tree, minus the root *)
          let tasks =
            let rec total d = if d = 0 then 1 else 1 + (width * total (d - 1)) in
            total depth - 1
          in
          let t0 = Unix.gettimeofday () in
          let (_ : string) = spawn_tree_run ~chars ~depth ~width in
          let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          record (Printf.sprintf "tree/d=%d/w=%d/chars=%d" depth width chars) ms;
          Format.printf "%-12s %8d %8d %12d %11.1f us@." (pp_chars chars ^ " chars") depth width tasks
            (ms *. 1000.0 /. float_of_int tasks);
          Format.print_flush ())
        [ 10_000; 1_000_000 ])
    [ (3, 4); (64, 1) ];
  (* cross-representation equivalence + counter accounting on one tree *)
  let hits0 = M.value Ws.cow_hits and bytes0 = M.value Ws.copy_bytes in
  let d_cow = spawn_tree_run ~chars:10_000 ~depth:3 ~width:4 in
  let cow_hits = M.value Ws.cow_hits - hits0 and cow_bytes = M.value Ws.copy_bytes - bytes0 in
  Ws.set_cow false;
  let hits1 = M.value Ws.cow_hits and bytes1 = M.value Ws.copy_bytes in
  let d_deep = spawn_tree_run ~chars:10_000 ~depth:3 ~width:4 in
  let deep_hits = M.value Ws.cow_hits - hits1 and deep_bytes = M.value Ws.copy_bytes - bytes1 in
  Ws.set_cow true;
  Format.printf "@.equivalence: cow digest %s, deep digest %s (%s)@." d_cow d_deep
    (if String.equal d_cow d_deep then "identical" else "DIFFER — COW CHANGED THE MERGE");
  Format.printf "accounting:  cow: %d cow_hits, %d bytes copied; deep: %d cow_hits, %d bytes copied@."
    cow_hits cow_bytes deep_hits deep_bytes;
  let chars_of (c, _, _) = c in
  let cow_of (_, c, _) = c and deep_of (_, _, d) = d in
  let at n = List.find (fun r -> chars_of r = n) rows in
  let flat_ok = cow_of (at 1_000_000) <= 5.0 *. cow_of (at 1_000) in
  let ratio = deep_of (at 1_000_000) /. cow_of (at 1_000_000) in
  let ratio_ok = ratio >= 10.0 in
  let digest_ok = String.equal d_cow d_deep in
  let ok = flat_ok && ratio_ok && digest_ok && cow_bytes = 0 in
  Format.printf
    "@.gate: %s (flat: 1M/1k cow ratio %.1fx <= 5x: %s; 1M deep/cow %.0fx >= 10x: %s; digests \
     equal: %s; 0 bytes copied under cow: %s)@."
    (if ok then "ok" else "FAILED")
    (cow_of (at 1_000_000) /. cow_of (at 1_000))
    (if flat_ok then "ok" else "FAIL")
    ratio
    (if ratio_ok then "ok" else "FAIL")
    (if digest_ok then "ok" else "FAIL")
    (if cow_bytes = 0 then "ok" else "FAIL");
  ok

(* --- service: the shard service under an editor fleet ----------------------- *)

(* One module-level document set for every service run in this process: the
   registry must be minted at a single construction site (wire ids are
   registration indices), and runs under a live Runtime would otherwise trip
   DetSan's key-minting hazard.  32 documents spread the 1000-editor fleet the
   way a real deployment would — per-document contention, not one hotspot —
   and each text document starts with ~1 KB of content, as served documents
   do: snapshot cost is dominated by existing state, delta cost by the edits. *)
let service_seed_text =
  String.concat ""
    (List.init 16 (fun k ->
         Printf.sprintf "line %02d: the quick brown fox jumps over the lazy dog.\n" k))

let service_specs =
  List.init 32 (fun i ->
      if i mod 8 = 7 then `Tree (Printf.sprintf "doc/tree%02d" i, [])
      else `Text (Printf.sprintf "doc/text%02d" i, service_seed_text))

let service_docs = lazy (Sm_shard.Service.make_docs service_specs)

(* The paper-style service gate: a 4-shard deployment under 1000 editors with
   50-op sessions must (a) converge on every replica, (b) ship deltas at most
   20% the bytes a snapshot-per-reply protocol ships for the same final
   digests, and (c) be seed-reproducible — byte-identical per-shard digests
   across the threaded and cooperative executors.  Returns whether every gate
   held; the driver turns that into the exit code after writing the JSON. *)
let service_bench () =
  section "service: 4-shard deployment, 1000 editors x 50-op sessions (delta vs snapshot sync)";
  let module Load = Sm_shard.Load in
  let docs = Lazy.force service_docs in
  let profile =
    { Load.default with
      Load.seed = 42L
    ; shards = 4
    ; clients = 1000
    ; ops_per_client = 50
    ; specs = service_specs
    }
  in
  let module M = Sm_obs.Metrics in
  let saved_m = M.is_enabled () in
  M.set_enabled true;
  M.reset ();
  Fun.protect ~finally:(fun () -> M.set_enabled saved_m)
  @@ fun () ->
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  (* Same seed under each executor: the tick loop never consults the
     scheduler, so the digests must be byte-identical — that is the
     cross-executor reproducibility the determinism claim rests on. *)
  let delta_thr, dt_ms =
    time (fun () ->
        Sm_core.Runtime.run ~executor:(Lazy.force executor) (fun _ -> Load.run ~docs profile))
  in
  (* p95 merge latency per shard, from the first (measured) run only *)
  let merge_p95 =
    List.init profile.Load.shards (fun k ->
        Option.value ~default:nan
          (M.percentile (M.histogram (Printf.sprintf "shard%d.merge_ns" k)) ~p:95.0))
  in
  let delta_coop, dc_ms =
    time (fun () -> Sm_core.Runtime.Coop.run (fun _ -> Load.run ~docs profile))
  in
  let snap, s_ms = time (fun () -> Load.run ~docs { profile with Load.mode = `Snapshot }) in
  let ratio =
    float_of_int delta_thr.Load.delta_bytes /. float_of_int (max 1 snap.Load.snapshot_bytes)
  in
  Format.printf "%-34s %14s %12s %10s %8s@." "run" "sync bytes" "epochs" "ticks" "wall";
  let row label bytes (r : Load.report) ms =
    Format.printf "%-34s %14d %12d %10d %6.0fms@." label bytes r.Load.epochs r.Load.ticks ms
  in
  row "delta (threaded executor)" delta_thr.Load.delta_bytes delta_thr dt_ms;
  row "delta (cooperative executor)" delta_coop.Load.delta_bytes delta_coop dc_ms;
  row "snapshot (plain)" snap.Load.snapshot_bytes snap s_ms;
  Format.printf "@.p95 merge latency per shard:";
  List.iteri (fun k p -> Format.printf "  shard%d %.1f us" k (p /. 1e3)) merge_p95;
  Format.printf "@.delta/snapshot byte ratio: %.1f%%  (%d / %d bytes)@." (ratio *. 100.0)
    delta_thr.Load.delta_bytes snap.Load.snapshot_bytes;
  record "service/delta_bytes" (float_of_int delta_thr.Load.delta_bytes);
  record "service/snapshot_bytes" (float_of_int snap.Load.snapshot_bytes);
  record "service/byte_ratio" ratio;
  record "service/delta_wall" dt_ms;
  record "service/snapshot_wall" s_ms;
  List.iteri (fun k p -> record (Printf.sprintf "service/shard%d_merge_p95_ns" k) p) merge_p95;
  let converged =
    delta_thr.Load.converged && delta_coop.Load.converged && snap.Load.converged
  in
  let reproducible =
    delta_thr.Load.shard_digests = delta_coop.Load.shard_digests
    && delta_thr.Load.ticks = delta_coop.Load.ticks
  in
  let same_state = delta_thr.Load.shard_digests = snap.Load.shard_digests in
  let compact = ratio <= 0.20 in
  let verdict ok = if ok then "ok" else "FAILED" in
  Format.printf "@.gates:@.";
  Format.printf "  every replica converged:                 %s@." (verdict converged);
  Format.printf "  digests reproducible across executors:   %s@." (verdict reproducible);
  Format.printf "  snapshot mode reaches the same digests:  %s@." (verdict same_state);
  Format.printf "  delta <= 20%% of snapshot bytes:          %s@." (verdict compact);
  converged && reproducible && same_state && compact

(* --- obs: observability overhead over the shard service ---------------------- *)

(* The PR's overhead contract, measured in-process so it holds on any
   machine: (a) the default configuration — flight recorder on, tracing and
   metrics off — stays within 3% wall-clock of the everything-off
   configuration, which is code-path-identical to the pre-observability
   service (context minting is gated on the Info level; sealing without a
   context leaves the frame's context slot empty); (b) the full paper-scale
   4-shard/1000-editor run completes under full Debug tracing with digests
   identical to its untraced baseline — observation must never change the
   computation. *)
let obs_bench () =
  section "obs: observability overhead (flight recorder on vs off; full tracing at scale)";
  let module Load = Sm_shard.Load in
  let module FR = Sm_obs.Flight_recorder in
  let docs = Lazy.force service_docs in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let saved_m = Sm_obs.Metrics.is_enabled () in
  let saved_level = Sm_obs.level () in
  Fun.protect ~finally:(fun () ->
      FR.set_enabled true;
      Sm_obs.Metrics.set_enabled saved_m;
      Sm_obs.set_level saved_level)
  @@ fun () ->
  Sm_obs.set_level Sm_obs.Off;
  Sm_obs.Metrics.set_enabled false;
  let small =
    { Load.default with
      Load.seed = 7L
    ; shards = 4
    ; clients = 200
    ; ops_per_client = 20
    ; specs = service_specs
    }
  in
  (* Warm-up, then alternate off/on pairs and compare minima: alternation
     spreads allocator/GC drift over both sides, and noise only ever adds
     wall time, so min-of-N is the intrinsic cost of each configuration. *)
  ignore (Load.run ~docs small);
  let measure flag =
    FR.set_enabled flag;
    let _, ms = time (fun () -> Load.run ~docs small) in
    ms
  in
  let pairs = List.init 5 (fun _ -> (measure false, measure true)) in
  let minimum l = List.fold_left Float.min Float.infinity l in
  let off_ms = minimum (List.map fst pairs) in
  let on_ms = minimum (List.map snd pairs) in
  let ratio = on_ms /. off_ms in
  Format.printf "%-44s %8.0fms@." "recorder off (pre-observability code path)" off_ms;
  Format.printf "%-44s %8.0fms  (%+.1f%%)@." "recorder on (the default)" on_ms
    ((ratio -. 1.0) *. 100.0);
  (* Full scale: the service gate's 4-shard/1000-editor deployment, once
     bare and once under full Debug tracing into a counting sink. *)
  let big =
    { Load.default with
      Load.seed = 42L
    ; shards = 4
    ; clients = 1000
    ; ops_per_client = 50
    ; specs = service_specs
    }
  in
  FR.set_enabled false;
  let base, base_ms = time (fun () -> Load.run ~docs big) in
  FR.set_enabled true;
  let events = ref 0 in
  Sm_obs.set_sink (Sm_obs.Sink.make (fun _ -> incr events));
  Sm_obs.set_level Sm_obs.Debug;
  Sm_obs.Metrics.set_enabled true;
  let traced, traced_ms = time (fun () -> Load.run ~docs big) in
  Sm_obs.reset_sink ();
  Sm_obs.set_level Sm_obs.Off;
  Sm_obs.Metrics.set_enabled false;
  Format.printf "%-44s %8.0fms@." "4 shards x 1000 editors, observability off" base_ms;
  Format.printf "%-44s %8.0fms  (%d events)@." "same run, full Debug tracing + metrics" traced_ms
    !events;
  record "obs/recorder_off_wall" off_ms;
  record "obs/recorder_on_wall" on_ms;
  record "obs/overhead_ratio" ratio;
  record "obs/baseline_wall" base_ms;
  record "obs/traced_wall" traced_ms;
  record "obs/traced_events" (float_of_int !events);
  let cheap = ratio <= 1.03 in
  let complete = traced.Load.converged && base.Load.converged in
  let same = traced.Load.shard_digests = base.Load.shard_digests in
  let verdict ok = if ok then "ok" else "FAILED" in
  Format.printf "@.gates:@.";
  Format.printf "  recorder-on within 3%% of recorder-off:   %s@." (verdict cheap);
  Format.printf "  traced 1000-editor run converged:        %s@." (verdict complete);
  Format.printf "  tracing left the digests unchanged:      %s@." (verdict same);
  cheap && complete && same

(* --- fuzz: seeds/second through the fuzzer's stages -------------------------- *)

(* Sizes the CI smoke and nightly tiers: seeds/second tells you what
   `--seeds N` budget fits a wall-clock budget.  Three stages, cumulative —
   generation alone, plus the cooperative reference run, plus the full
   oracle battery (the per-seed cost of `sm-fuzz run`). *)
let fuzz_bench () =
  section "fuzz: seeds/second through generation, execution, oracles";
  let profile = Sm_fuzz.Program.det_profile in
  let depth = 3 in
  let stage label seeds f =
    let t0 = Unix.gettimeofday () in
    for i = 1 to seeds do
      f (Int64.of_int i)
    done;
    let s = Unix.gettimeofday () -. t0 in
    let per = s /. float_of_int seeds *. 1e3 in
    record (Printf.sprintf "fuzz/%s" label) per;
    Format.printf "%-24s %6d seeds %9.2f ms/seed %10.0f seeds/s@." label seeds per
      (float_of_int seeds /. s)
  in
  stage "generate" 500 (fun seed ->
      ignore (Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth ~profile));
  let keys = Sm_fuzz.Interp.Keyset.default () in
  stage "generate+coop-run" 200 (fun seed ->
      let p = Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth ~profile in
      ignore
        (Sm_core.Runtime.Coop.run (fun ctx ->
             Sm_fuzz.Interp.run keys p ctx;
             Sm_mergeable.Workspace.digest (Sm_core.Runtime.workspace ctx))));
  Sm_fuzz.Oracle.with_env (fun env ->
      stage "full-oracle-check" 25 (fun seed ->
          let p = Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth ~profile in
          match Sm_fuzz.Oracle.check ~runs:2 env p with
          | Ok () -> ()
          | Error f ->
            Format.printf "seed %Ld FAILED [%s] %s@." seed f.Sm_fuzz.Oracle.oracle
              f.Sm_fuzz.Oracle.detail))

(* --- driver ----------------------------------------------------------------- *)

(* --- text: chunked-rope documents vs the flat-string baseline --------------- *)

(* One key for every text run in this process: a single mint site, like the
   spawn and service keys above. *)
let tk_doc = Sm_mergeable.Mtext.key ~name:"text.doc"

(* A deterministic [nops]-op edit session valid on a [len]-byte document:
   mixed inserts (55%, 1-24 bytes) and deletes (1-32 bytes), positions
   uniform over the evolving document. *)
let text_session ~seed ~len ~nops =
  let module Rng = Sm_util.Det_rng in
  let rng = Rng.create ~seed in
  let l = ref len in
  List.init nops (fun _ ->
      if !l = 0 || Rng.float rng < 0.55 then begin
        let pos = Rng.int rng ~bound:(!l + 1) in
        let s = Rng.bytes rng ~len:(1 + Rng.int rng ~bound:24) in
        l := !l + String.length s;
        Sm_ot.Op_text.Ins (pos, s)
      end
      else begin
        let pos = Rng.int rng ~bound:!l in
        let dl = 1 + Rng.int rng ~bound:(min 32 (!l - pos)) in
        l := !l - dl;
        Sm_ot.Op_text.Del (pos, dl)
      end)

(* Gates: (a) the 1M-char/10k-op session runs >= 10x faster on the rope than
   on the flat string; (b) both representations land on byte-identical
   documents, and a workspace-level session digests identically under either
   SM_ROPE setting; (c) the packed journal encoding of the session is
   strictly smaller than the classic tagged-op-list one.  Returns whether
   all held; the driver turns that into the exit code after writing
   BENCH_text.json. *)
let text_bench () =
  section "text: chunked-rope Mtext vs the flat-string baseline";
  let module T = Sm_ot.Op_text in
  let module C = Sm_util.Codec in
  let nops = 10_000 in
  let time_once st ops =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (List.fold_left T.apply st ops));
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let time_min ~reps st ops =
    List.fold_left
      (fun acc _ -> Float.min acc (time_once st ops))
      (time_once st ops)
      (List.init (max 0 (reps - 1)) Fun.id)
  in
  Format.printf "@.%d-op edit sessions (55%% ins / 45%% del), min over batches:@.@." nops;
  Format.printf "%-12s %12s %12s %10s@." "doc" "rope" "flat" "speedup";
  let rows =
    List.map
      (fun chars ->
        let doc = String.init chars (fun i -> Char.chr (97 + (i mod 26))) in
        let ops = text_session ~seed:(Int64.of_int (0xB00C + chars)) ~len:chars ~nops in
        let rope_ms = time_min ~reps:3 (T.rope_of_string doc) ops in
        let flat_ms = time_min ~reps:(if chars >= 1_000_000 then 1 else 2) (T.flat_of_string doc) ops in
        record (Printf.sprintf "apply/rope/chars=%d" chars) rope_ms;
        record (Printf.sprintf "apply/flat/chars=%d" chars) flat_ms;
        Format.printf "%-12s %9.2f ms %9.2f ms %9.1fx@." (pp_chars chars ^ " chars") rope_ms
          flat_ms (flat_ms /. rope_ms);
        Format.print_flush ();
        (chars, doc, ops, rope_ms, flat_ms))
      [ 10_000; 100_000; 1_000_000 ]
  in
  let chars_of (c, _, _, _, _) = c in
  let _, doc1m, ops1m, rope_ms, flat_ms = List.find (fun r -> chars_of r = 1_000_000) rows in
  (* equivalence on the gated session: byte-identical final documents *)
  let final st = List.fold_left T.apply st ops1m in
  let f_rope = final (T.rope_of_string doc1m) and f_flat = final (T.flat_of_string doc1m) in
  let md5 st = Digest.to_hex (Digest.string (T.to_string st)) in
  let doc_ok = T.equal_state f_rope f_flat && String.equal (md5 f_rope) (md5 f_flat) in
  Format.printf "@.equivalence: rope md5 %s, flat md5 %s (%s)@." (md5 f_rope) (md5 f_flat)
    (if doc_ok then "identical" else "DIFFER — ROPE CHANGED THE DOCUMENT");
  (* workspace-level digests under either representation switch setting *)
  let _, doc100k, ops100k, _, _ = List.find (fun r -> chars_of r = 100_000) rows in
  let session = List.filteri (fun i _ -> i < 2_000) ops100k in
  let ws_digest rope =
    let saved = T.rope_enabled () in
    Fun.protect ~finally:(fun () -> T.set_rope saved) @@ fun () ->
    T.set_rope rope;
    let ws = Sm_mergeable.Workspace.create () in
    Sm_mergeable.Mtext.init ws tk_doc doc100k;
    List.iter
      (function
        | T.Ins (p, s) -> Sm_mergeable.Mtext.insert ws tk_doc p s
        | T.Del (p, l) -> Sm_mergeable.Mtext.delete ws tk_doc ~pos:p ~len:l)
      session;
    Sm_mergeable.Workspace.digest ws
  in
  let d_rope = ws_digest true and d_flat = ws_digest false in
  let digest_ok = String.equal d_rope d_flat in
  Format.printf "workspace:   rope digest %s, flat digest %s (%s)@." d_rope d_flat
    (if digest_ok then "identical" else "DIFFER — SM_ROPE CHANGED THE MERGE");
  (* wire image of the session journal: packed (v3 frames) vs classic *)
  let packed = String.length (C.encode Sm_dist.Codable.Text.journal_codec ops1m) in
  let classic = String.length (C.encode (C.list Sm_dist.Codable.Text.op_codec) ops1m) in
  record "journal/packed_kb" (float_of_int packed /. 1024.0);
  record "journal/classic_kb" (float_of_int classic /. 1024.0);
  Format.printf "@.journal wire bytes (%d ops): packed %d, classic %d (%.1f%% of classic)@." nops
    packed classic
    (100.0 *. float_of_int packed /. float_of_int classic);
  let speedup = flat_ms /. rope_ms in
  let speed_ok = speedup >= 10.0 in
  let wire_ok = packed < classic in
  let ok = speed_ok && doc_ok && digest_ok && wire_ok in
  Format.printf
    "@.gate: %s (1M/10k rope speedup %.1fx >= 10x: %s; documents identical: %s; digests equal: \
     %s; packed < classic: %s)@."
    (if ok then "ok" else "FAILED")
    speedup
    (if speed_ok then "ok" else "FAIL")
    (if doc_ok then "ok" else "FAIL")
    (if digest_ok then "ok" else "FAIL")
    (if wire_ok then "ok" else "FAIL");
  ok

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  Sm_obs.Verbosity.of_env ();
  (* --gate implies --json: a CI gate must always leave its BENCH_<name>.json
     evidence behind, pass or fail — no per-workflow renaming. *)
  json_mode := has "--json" || has "--gate";
  let flag_value name =
    let rec find = function
      | f :: path :: _ when f = name -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let trace_path = flag_value "--trace" in
  let jsonl_path = flag_value "--trace-jsonl" in
  let obs = has "--obs" in
  if obs then Sm_obs.Metrics.set_enabled true;
  if (trace_path <> None || jsonl_path <> None) && Sm_obs.level () = Sm_obs.Off then
    Sm_obs.set_level Sm_obs.Debug;
  let recorder =
    Option.map
      (fun path ->
        let r = Sm_obs.Trace_chrome.recorder () in
        (r, path))
      trace_path
  in
  let jsonl_sink = Option.map (fun path -> (Sm_obs.Trace_jsonl.file_sink path, path)) jsonl_path in
  (match (recorder, jsonl_sink) with
  | None, None -> ()
  | Some (r, _), None -> Sm_obs.set_sink (Sm_obs.Trace_chrome.sink r)
  | None, Some (s, _) -> Sm_obs.set_sink s
  | Some (r, _), Some (s, _) -> Sm_obs.set_sink (Sm_obs.Sink.tee (Sm_obs.Trace_chrome.sink r) s));
  let finish name =
    write_json name;
    (* reset_sink flushes and closes the installed sink(s) — in particular
       the JSONL file — before anything tries to read them back. *)
    if recorder <> None || jsonl_sink <> None then Sm_obs.reset_sink ();
    Option.iter
      (fun (r, path) ->
        Sm_obs.Trace_chrome.write_file r path;
        Format.printf "@.wrote Chrome trace %s  (load it in chrome://tracing or ui.perfetto.dev)@." path)
      recorder;
    Option.iter
      (fun (_, path) ->
        Format.printf "@.wrote JSONL trace %s  (analyze it with sm-trace)@." path)
      jsonl_sink;
    if obs then begin
      Format.printf "@.-- metrics --@.";
      Sm_obs.Metrics.dump Format.std_formatter ()
    end
  in
  match args with
  | _ :: "fig1" :: _ -> fig1 (); finish "fig1"
  | _ :: "fig2" :: _ -> fig2 (); finish "fig2"
  | _ :: "fig3" :: _ ->
    let full = has "--full" in
    fig3 ~reps:(if full then 1 else 2) ~full ();
    finish "fig3"
  | _ :: "overhead" :: _ -> overhead (); finish "overhead"
  | _ :: "scale" :: _ -> scale (); finish "scale"
  | _ :: "copy" :: _ -> copy_ablation (); finish "copy"
  | _ :: "dist" :: _ -> dist_bench (); finish "dist"
  | _ :: "coop" :: _ -> coop_bench (); finish "coop"
  | _ :: "topology" :: _ -> topology_bench (); finish "topology"
  | _ :: "semaphore" :: _ -> semaphore_bench (); finish "semaphore"
  | _ :: "spawn" :: _ ->
    let ok = spawn_bench () in
    finish "spawn";
    if has "--gate" && not ok then exit 1
  | _ :: "journal" :: _ ->
    let ok = journal_bench () in
    finish "journal";
    if has "--gate" && not ok then exit 1
  | _ :: "service" :: _ ->
    let ok = service_bench () in
    finish "service";
    if has "--gate" && not ok then exit 1
  | _ :: "obs" :: _ ->
    let ok = obs_bench () in
    finish "obs";
    if has "--gate" && not ok then exit 1
  | _ :: "text" :: _ ->
    let ok = text_bench () in
    finish "text";
    if has "--gate" && not ok then exit 1
  | _ :: "micro" :: _ -> micro ~quick:false (); finish "micro"
  | _ :: "fuzz" :: _ -> fuzz_bench (); finish "fuzz"
  | _ :: "all" :: _ | [ _ ] ->
    fig1 ();
    fig2 ();
    fig3 ~full:false ();
    overhead ();
    scale ();
    copy_ablation ();
    ignore (spawn_bench ());
    dist_bench ();
    coop_bench ();
    topology_bench ();
    semaphore_bench ();
    ignore (journal_bench ());
    ignore (text_bench ());
    fuzz_bench ();
    micro ~quick:true ();
    Format.printf "@.done.  (fig3 --full reproduces the paper-scale sweep)@.";
    finish "all"
  | _ ->
    prerr_endline
      "usage: main.exe [fig1|fig2|fig3 [--full]|overhead|scale|copy|spawn [--gate]|dist|coop|topology|semaphore|journal [--gate]|service [--gate]|obs [--gate]|text [--gate]|micro|fuzz|all]\n\
       flags: --json (write BENCH_<name>.json)  --obs (enable+dump metrics)  --trace FILE (Chrome trace)";
    exit 2
