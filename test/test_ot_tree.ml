(* Tree OT: path navigation, sibling shifting, subtree-swallowing deletes,
   and randomized TP1 / sequence convergence over small random forests. *)

open Test_support
module T = Sm_ot.Op_tree.Make (Str_elt)
module Conv = Sm_ot.Convergence.Make (T)

let state = Alcotest.testable T.pp_state T.equal_state
let ops = Alcotest.(list (testable T.pp_op ( = )))

(*  A sample forest:  [a(x, y), b, c(z(w))]  *)
let sample : T.state =
  [ T.branch "a" [ T.leaf "x"; T.leaf "y" ]; T.leaf "b"; T.branch "c" [ T.branch "z" [ T.leaf "w" ] ] ]

let apply_cases () =
  Alcotest.check state "insert at root" (T.leaf "n" :: sample) (T.apply sample (T.insert [ 0 ] (T.leaf "n")));
  Alcotest.check state "insert nested"
    [ T.branch "a" [ T.leaf "x"; T.leaf "n"; T.leaf "y" ]; T.leaf "b"
    ; T.branch "c" [ T.branch "z" [ T.leaf "w" ] ] ]
    (T.apply sample (T.insert [ 0; 1 ] (T.leaf "n")));
  Alcotest.check state "delete subtree"
    [ T.branch "a" [ T.leaf "x"; T.leaf "y" ]; T.leaf "b"; T.branch "c" [] ]
    (T.apply sample (T.delete [ 2; 0 ]));
  Alcotest.check state "relabel deep"
    [ T.branch "a" [ T.leaf "x"; T.leaf "y" ]; T.leaf "b"
    ; T.branch "c" [ T.branch "z" [ T.leaf "W" ] ] ]
    (T.apply sample (T.relabel [ 2; 0; 0 ] "W"));
  Alcotest.(check int) "size" 7 (T.size sample);
  Alcotest.(check (option (testable T.pp_state T.equal_state)))
    "find" (Some [ T.leaf "w" ])
    (Option.map (fun n -> n.T.children) (T.find sample [ 2; 0 ]));
  Alcotest.check_raises "bad path" (Invalid_argument "Op_tree.apply: delete target out of range")
    (fun () -> ignore (T.apply sample (T.delete [ 5 ])))

let transform_cases () =
  let t ?(tie = Sm_ot.Side.uniform Sm_ot.Side.Incoming) a b = T.transform a ~against:b ~tie in
  let n = T.leaf "n" in
  (* sibling shifts at the same level *)
  Alcotest.check ops "insert shifted by earlier insert" [ T.insert [ 2 ] n ]
    (t (T.insert [ 1 ] n) (T.insert [ 0 ] n));
  Alcotest.check ops "insert tie incoming keeps" [ T.insert [ 1 ] n ] (t (T.insert [ 1 ] n) (T.insert [ 1 ] n));
  Alcotest.check ops "insert tie applied shifts" [ T.insert [ 2 ] n ]
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (T.insert [ 1 ] n) (T.insert [ 1 ] n));
  Alcotest.check ops "delete shifted by insert" [ T.delete [ 2 ] ] (t (T.delete [ 1 ]) (T.insert [ 0 ] n));
  Alcotest.check ops "deep path shifted at top" [ T.delete [ 3; 0; 1 ] ]
    (t (T.delete [ 2; 0; 1 ]) (T.insert [ 1 ] n));
  Alcotest.check ops "unrelated subtrees untouched" [ T.delete [ 0; 1 ] ] (t (T.delete [ 0; 1 ]) (T.insert [ 1; 0 ] n));
  (* deletes swallowing subtrees *)
  Alcotest.check ops "same node delete drops" [] (t (T.delete [ 1 ]) (T.delete [ 1 ]));
  Alcotest.check ops "descendant of deleted drops" [] (t (T.relabel [ 1; 0 ] "q") (T.delete [ 1 ]));
  Alcotest.check ops "insert under deleted subtree drops" [] (t (T.insert [ 1; 0; 2 ] n) (T.delete [ 1 ]));
  Alcotest.check ops "insert at deleted node's slot survives" [ T.insert [ 1 ] n ]
    (t (T.insert [ 1 ] n) (T.delete [ 1 ]));
  Alcotest.check ops "sibling after deleted shifts down" [ T.delete [ 1 ] ] (t (T.delete [ 2 ]) (T.delete [ 1 ]));
  (* relabel conflicts *)
  Alcotest.check ops "relabel tie incoming wins" [ T.relabel [ 0 ] "p" ]
    (t (T.relabel [ 0 ] "p") (T.relabel [ 0 ] "q"));
  Alcotest.check ops "relabel tie applied wins drops" []
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (T.relabel [ 0 ] "p") (T.relabel [ 0 ] "q"));
  Alcotest.check ops "identical relabels keep" [ T.relabel [ 0 ] "q" ]
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (T.relabel [ 0 ] "q") (T.relabel [ 0 ] "q"));
  Alcotest.check ops "relabel different paths keep" [ T.relabel [ 1 ] "p" ]
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (T.relabel [ 1 ] "p") (T.relabel [ 0 ] "q"))

(* --- random generation over forests -------------------------------------- *)

let gen_label = QCheck2.Gen.(map (fun i -> String.make 1 (Char.chr (97 + i))) (int_range 0 25))

(* Enumerate all valid gap paths (for inserts) and node paths of a forest. *)
let rec node_paths ?(prefix = []) forest =
  List.concat (List.mapi (fun i n ->
      let here = List.rev (i :: prefix) in
      here :: node_paths ~prefix:(i :: prefix) n.T.children)
    forest)

let rec gap_paths ?(prefix = []) forest =
  let here = List.init (List.length forest + 1) (fun i -> List.rev (i :: prefix)) in
  here @ List.concat (List.mapi (fun i n -> gap_paths ~prefix:(i :: prefix) n.T.children) forest)

let gen_forest =
  let open QCheck2.Gen in
  let rec gen_node depth =
    gen_label >>= fun label ->
    (if depth = 0 then return [] else list_size (int_range 0 2) (gen_node (depth - 1))) >>= fun children ->
    return (T.branch label children)
  in
  list_size (int_range 0 3) (gen_node 2)

let gen_op_for forest =
  let open QCheck2.Gen in
  let gaps = gap_paths forest in
  let nodes = node_paths forest in
  let gen_insert = map2 (fun p l -> T.insert p (T.leaf l)) (oneofl gaps) gen_label in
  if nodes = [] then gen_insert
  else
    frequency
      [ (2, gen_insert)
      ; (1, map T.delete (oneofl nodes))
      ; (1, map2 T.relabel (oneofl nodes) gen_label)
      ]

let gen_pair =
  let open QCheck2.Gen in
  gen_forest >>= fun s ->
  gen_op_for s >>= fun a ->
  gen_op_for s >>= fun b ->
  bool >>= fun a_wins -> return (s, a, b, a_wins)

let gen_seq_for s =
  let open QCheck2.Gen in
  int_range 0 4 >>= fun n ->
  let rec go s acc n =
    if n = 0 then return (List.rev acc)
    else gen_op_for s >>= fun op -> go (T.apply s op) (op :: acc) (n - 1)
  in
  go s [] n

let gen_two_seqs =
  let open QCheck2.Gen in
  gen_forest >>= fun s ->
  gen_seq_for s >>= fun left ->
  gen_seq_for s >>= fun right ->
  oneofl [ Sm_ot.Side.uniform Sm_ot.Side.Incoming; Sm_ot.Side.uniform Sm_ot.Side.Applied; Sm_ot.Side.serialization; Sm_ot.Side.flip Sm_ot.Side.serialization ] >>= fun tie -> return (s, left, right, tie)

let suite =
  [ Alcotest.test_case "apply: forest edits" `Quick apply_cases
  ; Alcotest.test_case "IT cases: shifts, swallows, relabels" `Quick transform_cases
  ; qtest ~count:2000 "TP1 on random tree ops" gen_pair (fun (s, a, b, a_wins) ->
        Conv.tp1 ~state:s ~a ~b ~a_wins)
  ; qtest ~count:400 "cross converges random tree sequences" gen_two_seqs
      (fun (s, left, right, tie) -> Conv.seqs_converge ~state:s ~left ~right ~tie)
  ]
