(** Shared fixtures for the test suites. *)

module Int_elt = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
end

module Str_elt = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp ppf s = Format.fprintf ppf "%S" s
end

(* Wrap a QCheck property as an alcotest case with a deterministic seed so
   failures reproduce. *)
let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest ~long:false
    (QCheck2.Test.make ~count ~name gen prop)

let check_bool name b = Alcotest.(check bool) name true b
