(* The observability subsystem: verbosity gating, metrics, event codecs,
   sinks, the Chrome exporter, and the trace-determinism guarantee (a
   cooperative run's lifecycle event sequence is a pure function of the
   program). *)

module Obs = Sm_obs
module E = Sm_obs.Event
module R = Sm_core.Runtime

let check_bool msg b = Alcotest.(check bool) msg true b

(* Every test that touches the global level/sink/metrics restores them, so
   the rest of the binary keeps running untraced. *)
let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level Obs.Off;
      Obs.reset_sink ();
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

(* --- verbosity ------------------------------------------------------------- *)

let verbosity_gating () =
  with_obs (fun () ->
      Obs.set_level Obs.Off;
      check_bool "off blocks error" (not (Obs.on Obs.Error));
      Obs.set_level Obs.Info;
      check_bool "info admits error" (Obs.on Obs.Error);
      check_bool "info admits info" (Obs.on Obs.Info);
      check_bool "info blocks debug" (not (Obs.on Obs.Debug));
      check_bool "info blocks trace" (not (Obs.on Obs.Trace));
      Obs.set_level Obs.Trace;
      check_bool "trace admits debug" (Obs.on Obs.Debug);
      check_bool "off is never enabled" (not (Obs.on Obs.Off)))

let verbosity_strings () =
  List.iter
    (fun l ->
      Alcotest.(check (option string))
        (Obs.Verbosity.to_string l)
        (Some (Obs.Verbosity.to_string l))
        (Option.map Obs.Verbosity.to_string (Obs.Verbosity.of_string (Obs.Verbosity.to_string l))))
    [ Obs.Off; Obs.Error; Obs.Info; Obs.Debug; Obs.Trace ];
  check_bool "unknown name" (Obs.Verbosity.of_string "chatty" = None)

let clock_monotonic () =
  let ts = List.init 1000 (fun _ -> Obs.Clock.now_ns ()) in
  let rec strictly = function
    | a :: (b :: _ as rest) -> a < b && strictly rest
    | _ -> true
  in
  check_bool "strictly increasing" (strictly ts)

(* --- metrics --------------------------------------------------------------- *)

let metrics_gating () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.gated" in
      Obs.Metrics.incr c;
      Alcotest.(check int) "disabled incr is dropped" 0 (Obs.Metrics.value c);
      Obs.Metrics.set_enabled true;
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Alcotest.(check int) "enabled counts" 5 (Obs.Metrics.value c);
      check_bool "same name, same cell" (Obs.Metrics.value (Obs.Metrics.counter "test.gated") = 5);
      Obs.Metrics.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.value c))

let metrics_histogram () =
  with_obs (fun () ->
      let h = Obs.Metrics.histogram "test.hist" in
      Obs.Metrics.observe h 1.0;
      check_bool "disabled observe is dropped" (Obs.Metrics.samples h = []);
      Obs.Metrics.set_enabled true;
      List.iter (Obs.Metrics.observe h) [ 10.0; 30.0; 20.0 ];
      Alcotest.(check int) "3 samples" 3 (List.length (Obs.Metrics.samples h));
      (match Obs.Metrics.summary h with
      | None -> Alcotest.fail "summary expected"
      | Some s ->
        Alcotest.(check (float 1e-9)) "mean" 20.0 s.Sm_util.Stats.mean;
        Alcotest.(check (float 1e-9)) "median" 20.0 s.Sm_util.Stats.median);
      Alcotest.(check (option (float 1e-9))) "p100" (Some 30.0)
        (Obs.Metrics.percentile h ~p:100.0);
      let x = Obs.Metrics.time h (fun () -> 42) in
      Alcotest.(check int) "time passes result through" 42 x;
      Alcotest.(check int) "time recorded a sample" 4 (List.length (Obs.Metrics.samples h));
      check_bool "registry lists it" (List.mem_assoc "test.hist" (Obs.Metrics.histograms ())))

let metrics_name_clash () =
  with_obs (fun () ->
      ignore (Obs.Metrics.counter "test.clash");
      check_bool "histogram over a counter name raises"
        (match Obs.Metrics.histogram "test.clash" with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* --- event codecs ---------------------------------------------------------- *)

let sample_event () =
  E.make
    ~args:
      [ ("child", E.S "root/0")
      ; ("ops", E.I 7)
      ; ("ratio", E.F 1.5)
      ; ("whole", E.F 2.0) (* integral float: the JSON round-trip must keep it a float *)
      ; ("ok", E.B true)
      ; ("quoted", E.S "a\"b\\c\nd")
      ]
    ~task:"root" ~task_id:3 E.Merge_child

let event_binary_roundtrip () =
  List.iter
    (fun kind ->
      let e = E.make ~args:[ ("k", E.S "v") ] ~task:"t" ~task_id:1 kind in
      let e' = Sm_util.Codec.decode E.codec (Sm_util.Codec.encode E.codec e) in
      check_bool (E.kind_to_string kind) (e = e'))
    E.all_kinds;
  let e = sample_event () in
  check_bool "args survive" (Sm_util.Codec.decode E.codec (Sm_util.Codec.encode E.codec e) = e)

let jsonl_roundtrip () =
  let e = sample_event () in
  let e' = Obs.Trace_jsonl.event_of_line (Obs.Trace_jsonl.event_to_line e) in
  check_bool "full record equality" (e = e');
  check_bool "single line" (not (String.contains (Obs.Trace_jsonl.event_to_line e) '\n'))

let jsonl_file_roundtrip () =
  with_obs (fun () ->
      let path = Filename.temp_file "sm_obs_test" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let sink = Obs.Trace_jsonl.file_sink path in
          Obs.set_level Obs.Debug;
          Obs.set_sink sink;
          let emitted =
            List.init 5 (fun i ->
                let e = E.make ~args:[ ("i", E.I i) ] ~task:"writer" ~task_id:9 E.Note in
                Obs.emit e;
                e)
          in
          Obs.reset_sink ();
          let loaded = Obs.Trace_jsonl.load path in
          check_bool "all lines parse back" (loaded = emitted)))

let json_parser () =
  let module J = Obs.Json in
  let doc = J.Obj [ ("a", J.Int 1); ("b", J.Float 2.0); ("s", J.String "x\"y"); ("l", J.List [ J.Bool true; J.Null ]) ] in
  check_bool "print/parse round-trip" (J.of_string (J.to_string doc) = doc);
  check_bool "integral float stays float" (J.of_string (J.to_string (J.Float 3.0)) = J.Float 3.0);
  check_bool "int stays int" (J.of_string "17" = J.Int 17);
  check_bool "trailing garbage rejected"
    (match J.of_string "{} x" with exception J.Parse_error _ -> true | _ -> false)

(* --- sinks and spans ------------------------------------------------------- *)

let sink_collect_and_tee () =
  with_obs (fun () ->
      let a, read_a = Obs.Sink.collecting () in
      let b, read_b = Obs.Sink.collecting () in
      Obs.set_level Obs.Info;
      Obs.set_sink (Obs.Sink.tee a b);
      Obs.emit (E.make ~task:"x" ~task_id:1 E.Task_start);
      Obs.emit (E.make ~task:"x" ~task_id:1 E.Task_end);
      Alcotest.(check int) "both sinks saw both" 2 (List.length (read_a ()));
      check_bool "tee delivers identically" (read_a () = read_b ()))

let span_exception_safe () =
  with_obs (fun () ->
      let sink, read = Obs.Sink.collecting () in
      Obs.set_level Obs.Debug;
      Obs.set_sink sink;
      (try Obs.Span.with_ ~task:"t" ~task_id:1 "doomed" (fun () -> failwith "boom")
       with Failure _ -> ());
      match read () with
      | [ b; e ] ->
        check_bool "begin" (b.E.kind = E.Phase_begin);
        check_bool "end still emitted" (e.E.kind = E.Phase_end)
      | evs -> Alcotest.failf "expected begin+end, got %d events" (List.length evs))

(* --- the exporters against a real run -------------------------------------- *)

let counter = Sm_mergeable.Mcounter.key ~name:"obs-test-counter"

let traced_program ctx =
  let ws = R.workspace ctx in
  Sm_mergeable.Workspace.init ws counter 0;
  let hs =
    List.init 3 (fun _ ->
        R.spawn ctx (fun c ->
            Sm_mergeable.Mcounter.incr (R.workspace c) counter;
            ignore (R.sync c);
            Sm_mergeable.Mcounter.incr (R.workspace c) counter))
  in
  R.merge_all_from_set ctx hs

let chrome_trace_valid () =
  with_obs (fun () ->
      let recorder = Obs.Trace_chrome.recorder () in
      Obs.set_level Obs.Debug;
      Obs.set_sink (Obs.Trace_chrome.sink recorder);
      R.run traced_program;
      Obs.reset_sink ();
      let module J = Obs.Json in
      (* the document must be valid JSON that survives our own parser *)
      let doc = J.of_string (J.to_string (Obs.Trace_chrome.to_json recorder)) in
      let events = Option.get (J.to_list (Option.get (J.member "traceEvents" doc))) in
      let x_slices =
        List.filter_map
          (fun ev ->
            match (J.member "ph" ev, J.member "name" ev) with
            | Some (J.String "X"), Some (J.String name) -> Some name
            | _ -> None)
          events
      in
      (* one complete task slice per spawn plus the root's own *)
      let task_slices = List.filter (fun n -> String.length n >= 5 && String.sub n 0 5 = "task ") x_slices in
      Alcotest.(check int) "a slice per spawned task + root" 4 (List.length task_slices);
      check_bool "merge slices present" (List.exists (fun n -> n = "merge:merge_all_from_set") x_slices);
      check_bool "sync slices present" (List.exists (fun n -> n = "sync") x_slices);
      check_bool "durations are non-negative"
        (List.for_all
           (fun ev ->
             match J.member "dur" ev with
             | Some d -> Option.get (J.to_float d) >= 0.0
             | None -> true)
           events))

let trace_deterministic () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let capture () =
        let sink, read = Obs.Sink.collecting () in
        Obs.set_sink sink;
        R.Coop.run traced_program;
        Obs.set_sink Obs.Sink.null;
        read ()
      in
      let a = capture () in
      let b = capture () in
      Alcotest.(check int) "same event count" (List.length a) (List.length b);
      check_bool "non-trivial trace" (List.length a > 10);
      List.iteri
        (fun i (ea, eb) ->
          if not (E.equal_structure ea eb) then
            Alcotest.failf "event %d differs: %a vs %a" i E.pp ea E.pp eb)
        (List.combine a b))

(* --- trace contexts ---------------------------------------------------------- *)

let trace_ctx_derivation () =
  let r = Obs.Trace_ctx.root "demo/seed1" in
  check_bool "root is deterministic" (Obs.Trace_ctx.equal r (Obs.Trace_ctx.root "demo/seed1"));
  check_bool "different label, different trace"
    (not (Obs.Trace_ctx.equal r (Obs.Trace_ctx.root "demo/seed2")));
  Alcotest.(check int) "roots have no parent" 0 r.Obs.Trace_ctx.parent;
  let c = Obs.Trace_ctx.child r "shard0/edit/s0/r1" in
  Alcotest.(check int) "child keeps the trace id" r.Obs.Trace_ctx.trace c.Obs.Trace_ctx.trace;
  Alcotest.(check int) "child's parent is the root span" r.Obs.Trace_ctx.span
    c.Obs.Trace_ctx.parent;
  check_bool "same label derives the same span"
    (Obs.Trace_ctx.equal c (Obs.Trace_ctx.child r "shard0/edit/s0/r1"));
  check_bool "labels separate spans"
    (c.Obs.Trace_ctx.span <> (Obs.Trace_ctx.child r "shard0/edit/s0/r2").Obs.Trace_ctx.span);
  check_bool "ids fold to 62 bits"
    (r.Obs.Trace_ctx.trace >= 0 && r.Obs.Trace_ctx.span >= 0 && c.Obs.Trace_ctx.span >= 0)

let trace_ctx_roundtrips () =
  let c = Obs.Trace_ctx.child (Obs.Trace_ctx.root "req") "hop" in
  let c1 =
    Sm_util.Codec.decode Obs.Trace_ctx.codec (Sm_util.Codec.encode Obs.Trace_ctx.codec c)
  in
  check_bool "codec round-trip" (Obs.Trace_ctx.equal c c1);
  (match Obs.Trace_ctx.of_string (Obs.Trace_ctx.to_string c) with
  | Some c2 -> check_bool "string round-trip" (Obs.Trace_ctx.equal c c2)
  | None -> Alcotest.fail "to_string image must parse");
  (match Obs.Trace_ctx.of_args (Obs.Trace_ctx.args c) with
  | Some c3 -> check_bool "args round-trip" (Obs.Trace_ctx.equal c c3)
  | None -> Alcotest.fail "args image must parse");
  check_bool "ctx-free args give no context" (Obs.Trace_ctx.of_args [ ("ops", E.I 3) ] = None);
  let e = E.make ~task:"t" ~task_id:1 ~args:(("op", E.S "x") :: Obs.Trace_ctx.args c) E.Serve in
  (match Obs.Trace_ctx.of_event e with
  | Some c4 -> check_bool "of_event finds the embedded context" (Obs.Trace_ctx.equal c c4)
  | None -> Alcotest.fail "event carried a context")

(* --- flight recorder --------------------------------------------------------- *)

let flight_event i =
  E.make ~task:"ring" ~task_id:9 ~args:[ ("n", E.I i) ] E.Note

let flight_ring_eviction () =
  Fun.protect ~finally:(fun () -> Obs.Flight_recorder.reset ())
  @@ fun () ->
  Obs.Flight_recorder.reset ();
  let r = Obs.Flight_recorder.create ~capacity:4 "test_ring" in
  for i = 1 to 6 do
    Obs.Flight_recorder.record r (flight_event i)
  done;
  Alcotest.(check int) "length is capped" 4 (Obs.Flight_recorder.length r);
  Alcotest.(check int) "recorded counts evictions" 6 (Obs.Flight_recorder.recorded r);
  let ns =
    List.map
      (fun e -> match List.assoc "n" e.E.args with E.I n -> n | _ -> -1)
      (Obs.Flight_recorder.events r)
  in
  Alcotest.(check (list int)) "oldest evicted first, oldest-first order" [ 3; 4; 5; 6 ] ns;
  Obs.Flight_recorder.clear r;
  Alcotest.(check int) "clear empties the ring" 0 (Obs.Flight_recorder.length r);
  Obs.Flight_recorder.set_enabled false;
  Obs.Flight_recorder.record r (flight_event 7);
  Obs.Flight_recorder.set_enabled true;
  Alcotest.(check int) "disabled record is dropped" 0 (Obs.Flight_recorder.length r)

let flight_dump_structural () =
  Fun.protect ~finally:(fun () -> Obs.Flight_recorder.reset ())
  @@ fun () ->
  Obs.Flight_recorder.reset ();
  let dump_of () =
    let r = Obs.Flight_recorder.create ~capacity:8 "test_dump" in
    for i = 1 to 10 do
      Obs.Flight_recorder.record r (flight_event i)
    done;
    Obs.Flight_recorder.dump_lines r
  in
  let d1 = dump_of () in
  let d2 = dump_of () in
  check_bool "same sequence dumps byte-identically (no seq/ts in lines)" (d1 = d2);
  Alcotest.(check int) "one line per retained event" 8 (List.length d1);
  List.iter
    (fun line ->
      check_bool "line is valid JSON with the structural fields"
        (match Obs.Json.of_string line with
        | Obs.Json.Obj fields ->
          List.mem_assoc "kind" fields && List.mem_assoc "task" fields
          && List.mem_assoc "args" fields
        | _ -> false))
    d1

let flight_trigger () =
  Fun.protect ~finally:(fun () -> Obs.Flight_recorder.reset ())
  @@ fun () ->
  Obs.Flight_recorder.reset ();
  let r = Obs.Flight_recorder.create ~capacity:4 "test_trig" in
  Obs.Flight_recorder.record r (flight_event 1);
  check_bool "no trigger yet" (Obs.Flight_recorder.last_trigger () = None);
  Obs.Flight_recorder.trigger ~reason:"unit test";
  (match Obs.Flight_recorder.last_trigger () with
  | Some (reason, dumps) ->
    Alcotest.(check string) "reason kept" "unit test" reason;
    check_bool "snapshot has our lane" (List.mem_assoc "test_trig" dumps);
    Alcotest.(check int) "snapshot froze one event" 1
      (List.length (List.assoc "test_trig" dumps))
  | None -> Alcotest.fail "trigger must be retrievable");
  Obs.Flight_recorder.clear_trigger ();
  check_bool "clear_trigger forgets" (Obs.Flight_recorder.last_trigger () = None);
  check_bool "registry lists the ring" (List.mem_assoc "test_trig" (Obs.Flight_recorder.all ()));
  Obs.Flight_recorder.reset ();
  check_bool "reset empties the registry" (Obs.Flight_recorder.all () = [])

(* --- cross-lane stitching ---------------------------------------------------- *)

let stitch_tree_shape () =
  let root = Obs.Trace_ctx.root "action" in
  let hop1 = Obs.Trace_ctx.child root "hop1" in
  let hop2 = Obs.Trace_ctx.child hop1 "hop2" in
  let ev task ctx kind = E.make ~task ~task_id:1 ~args:(Obs.Trace_ctx.args ctx) kind in
  let lanes =
    [ ("cli", [ ev "cli" root E.Req_begin; ev "cli" root E.Req_end; E.make ~task:"cli" ~task_id:1 ~args:[] E.Note ])
    ; ("srv", [ ev "srv" hop1 E.Serve; ev "srv" hop2 E.Epoch_merge ])
    ]
  in
  (match Obs.Trace_stitch.stitch lanes with
  | [ tr ] ->
    Alcotest.(check int) "three spans" 3 tr.Obs.Trace_stitch.span_count;
    Alcotest.(check int) "ctx-free events are ignored" 4 tr.Obs.Trace_stitch.event_count;
    (match tr.Obs.Trace_stitch.roots with
    | [ r ] ->
      check_bool "root span is the action" (Obs.Trace_ctx.equal r.Obs.Trace_stitch.ctx root);
      check_bool "root is not dangling" (not r.Obs.Trace_stitch.dangling);
      (match r.Obs.Trace_stitch.children with
      | [ c1 ] -> (
        check_bool "hop1 under root" (Obs.Trace_ctx.equal c1.Obs.Trace_stitch.ctx hop1);
        match c1.Obs.Trace_stitch.children with
        | [ c2 ] -> check_bool "hop2 under hop1" (Obs.Trace_ctx.equal c2.Obs.Trace_stitch.ctx hop2)
        | l -> Alcotest.fail (Printf.sprintf "hop1 must have 1 child, got %d" (List.length l)))
      | l -> Alcotest.fail (Printf.sprintf "root must have 1 child, got %d" (List.length l)))
    | l -> Alcotest.fail (Printf.sprintf "one root expected, got %d" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "one trace expected, got %d" (List.length l)));
  (* A hop whose parent span never appears stitches as a flagged root. *)
  let orphan = Obs.Trace_ctx.child (Obs.Trace_ctx.root "lost") "only-hop" in
  (match Obs.Trace_stitch.stitch [ ("srv", [ ev "srv" orphan E.Serve ]) ] with
  | [ tr ] -> (
    match tr.Obs.Trace_stitch.roots with
    | [ r ] -> check_bool "orphan flagged dangling" r.Obs.Trace_stitch.dangling
    | _ -> Alcotest.fail "orphan must surface as a root")
  | _ -> Alcotest.fail "one trace expected");
  (* The rendering is stable: same lanes, same bytes. *)
  check_bool "to_string deterministic"
    (Obs.Trace_stitch.to_string (Obs.Trace_stitch.stitch lanes)
    = Obs.Trace_stitch.to_string (Obs.Trace_stitch.stitch lanes))

(* --- non-finite floats: Json's 1e999 idiom vs Expo's filtering ---------------- *)

let json_nonfinite_roundtrip () =
  let open Obs.Json in
  Alcotest.(check string) "+inf prints as 1e999" "1e999" (to_string (Float infinity));
  Alcotest.(check string) "-inf prints as -1e999" "-1e999" (to_string (Float neg_infinity));
  Alcotest.(check string) "nan prints as null" "null" (to_string (Float nan));
  (match of_string "1e999" with
  | Float f -> check_bool "1e999 parses back to +inf" (f = infinity)
  | _ -> Alcotest.fail "expected a float");
  (match of_string "-1e999" with
  | Float f -> check_bool "-1e999 parses back to -inf" (f = neg_infinity)
  | _ -> Alcotest.fail "expected a float");
  (* the event-args layer closes the nan loop: null decodes as [F nan] *)
  (match Obs.Trace_jsonl.arg_of_json Null with
  | E.F f -> check_bool "null decodes as F nan" (Float.is_nan f)
  | _ -> Alcotest.fail "expected F nan")

let expo_nonfinite_filtered () =
  (* Prometheus text has no 1e999 idiom: non-finite samples are dropped
     before the quantile/_sum/_count math, so a histogram with an open
     [infinity] bound still renders finite numerals only. *)
  let out =
    Obs.Expo.render ~counters:[]
      ~histograms:[ ("test.open_bounds", [ infinity; 2.0; nan; 4.0; neg_infinity ]) ]
  in
  check_bool "renders the summary" (String.length out > 0);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "count counts finite samples only" (contains "sm_test_open_bounds_count 2" out);
  check_bool "sum over finite samples" (contains "sm_test_open_bounds_sum 6" out);
  check_bool "no inf leaks" (not (contains "inf" out));
  check_bool "no nan leaks" (not (contains "nan" out));
  check_bool "no 1e999 leaks" (not (contains "1e999" out));
  (* all-non-finite histograms disappear entirely rather than render junk *)
  let out2 = Obs.Expo.render ~counters:[] ~histograms:[ ("test.all_inf", [ nan; infinity ]) ] in
  Alcotest.(check string) "all-non-finite histogram omitted" "" out2

let suite =
  [ Alcotest.test_case "verbosity: gating" `Quick verbosity_gating
  ; Alcotest.test_case "verbosity: string round-trip" `Quick verbosity_strings
  ; Alcotest.test_case "clock: strictly monotonic" `Quick clock_monotonic
  ; Alcotest.test_case "metrics: enable gate + counters" `Quick metrics_gating
  ; Alcotest.test_case "metrics: histograms" `Quick metrics_histogram
  ; Alcotest.test_case "metrics: kind clash rejected" `Quick metrics_name_clash
  ; Alcotest.test_case "event: binary codec round-trip" `Quick event_binary_roundtrip
  ; Alcotest.test_case "jsonl: line round-trip" `Quick jsonl_roundtrip
  ; Alcotest.test_case "jsonl: file sink round-trip" `Quick jsonl_file_roundtrip
  ; Alcotest.test_case "json: printer/parser" `Quick json_parser
  ; Alcotest.test_case "sink: collecting + tee" `Quick sink_collect_and_tee
  ; Alcotest.test_case "span: end survives exceptions" `Quick span_exception_safe
  ; Alcotest.test_case "chrome: complete slices from a run" `Quick chrome_trace_valid
  ; Alcotest.test_case "determinism: coop trace structure" `Quick trace_deterministic
  ; Alcotest.test_case "trace ctx: label-derived ids" `Quick trace_ctx_derivation
  ; Alcotest.test_case "trace ctx: codec/string/args round-trips" `Quick trace_ctx_roundtrips
  ; Alcotest.test_case "flight: ring eviction order" `Quick flight_ring_eviction
  ; Alcotest.test_case "flight: structural dumps" `Quick flight_dump_structural
  ; Alcotest.test_case "flight: trigger snapshot + reset" `Quick flight_trigger
  ; Alcotest.test_case "stitch: cross-lane request tree" `Quick stitch_tree_shape
  ; Alcotest.test_case "json: non-finite round-trip (1e999)" `Quick json_nonfinite_roundtrip
  ; Alcotest.test_case "expo: non-finite samples filtered" `Quick expo_nonfinite_filtered
  ]
