(* The observability subsystem: verbosity gating, metrics, event codecs,
   sinks, the Chrome exporter, and the trace-determinism guarantee (a
   cooperative run's lifecycle event sequence is a pure function of the
   program). *)

module Obs = Sm_obs
module E = Sm_obs.Event
module R = Sm_core.Runtime

let check_bool msg b = Alcotest.(check bool) msg true b

(* Every test that touches the global level/sink/metrics restores them, so
   the rest of the binary keeps running untraced. *)
let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level Obs.Off;
      Obs.reset_sink ();
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

(* --- verbosity ------------------------------------------------------------- *)

let verbosity_gating () =
  with_obs (fun () ->
      Obs.set_level Obs.Off;
      check_bool "off blocks error" (not (Obs.on Obs.Error));
      Obs.set_level Obs.Info;
      check_bool "info admits error" (Obs.on Obs.Error);
      check_bool "info admits info" (Obs.on Obs.Info);
      check_bool "info blocks debug" (not (Obs.on Obs.Debug));
      check_bool "info blocks trace" (not (Obs.on Obs.Trace));
      Obs.set_level Obs.Trace;
      check_bool "trace admits debug" (Obs.on Obs.Debug);
      check_bool "off is never enabled" (not (Obs.on Obs.Off)))

let verbosity_strings () =
  List.iter
    (fun l ->
      Alcotest.(check (option string))
        (Obs.Verbosity.to_string l)
        (Some (Obs.Verbosity.to_string l))
        (Option.map Obs.Verbosity.to_string (Obs.Verbosity.of_string (Obs.Verbosity.to_string l))))
    [ Obs.Off; Obs.Error; Obs.Info; Obs.Debug; Obs.Trace ];
  check_bool "unknown name" (Obs.Verbosity.of_string "chatty" = None)

let clock_monotonic () =
  let ts = List.init 1000 (fun _ -> Obs.Clock.now_ns ()) in
  let rec strictly = function
    | a :: (b :: _ as rest) -> a < b && strictly rest
    | _ -> true
  in
  check_bool "strictly increasing" (strictly ts)

(* --- metrics --------------------------------------------------------------- *)

let metrics_gating () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.gated" in
      Obs.Metrics.incr c;
      Alcotest.(check int) "disabled incr is dropped" 0 (Obs.Metrics.value c);
      Obs.Metrics.set_enabled true;
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Alcotest.(check int) "enabled counts" 5 (Obs.Metrics.value c);
      check_bool "same name, same cell" (Obs.Metrics.value (Obs.Metrics.counter "test.gated") = 5);
      Obs.Metrics.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.value c))

let metrics_histogram () =
  with_obs (fun () ->
      let h = Obs.Metrics.histogram "test.hist" in
      Obs.Metrics.observe h 1.0;
      check_bool "disabled observe is dropped" (Obs.Metrics.samples h = []);
      Obs.Metrics.set_enabled true;
      List.iter (Obs.Metrics.observe h) [ 10.0; 30.0; 20.0 ];
      Alcotest.(check int) "3 samples" 3 (List.length (Obs.Metrics.samples h));
      (match Obs.Metrics.summary h with
      | None -> Alcotest.fail "summary expected"
      | Some s ->
        Alcotest.(check (float 1e-9)) "mean" 20.0 s.Sm_util.Stats.mean;
        Alcotest.(check (float 1e-9)) "median" 20.0 s.Sm_util.Stats.median);
      Alcotest.(check (option (float 1e-9))) "p100" (Some 30.0)
        (Obs.Metrics.percentile h ~p:100.0);
      let x = Obs.Metrics.time h (fun () -> 42) in
      Alcotest.(check int) "time passes result through" 42 x;
      Alcotest.(check int) "time recorded a sample" 4 (List.length (Obs.Metrics.samples h));
      check_bool "registry lists it" (List.mem_assoc "test.hist" (Obs.Metrics.histograms ())))

let metrics_name_clash () =
  with_obs (fun () ->
      ignore (Obs.Metrics.counter "test.clash");
      check_bool "histogram over a counter name raises"
        (match Obs.Metrics.histogram "test.clash" with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* --- event codecs ---------------------------------------------------------- *)

let sample_event () =
  E.make
    ~args:
      [ ("child", E.S "root/0")
      ; ("ops", E.I 7)
      ; ("ratio", E.F 1.5)
      ; ("whole", E.F 2.0) (* integral float: the JSON round-trip must keep it a float *)
      ; ("ok", E.B true)
      ; ("quoted", E.S "a\"b\\c\nd")
      ]
    ~task:"root" ~task_id:3 E.Merge_child

let event_binary_roundtrip () =
  List.iter
    (fun kind ->
      let e = E.make ~args:[ ("k", E.S "v") ] ~task:"t" ~task_id:1 kind in
      let e' = Sm_util.Codec.decode E.codec (Sm_util.Codec.encode E.codec e) in
      check_bool (E.kind_to_string kind) (e = e'))
    E.all_kinds;
  let e = sample_event () in
  check_bool "args survive" (Sm_util.Codec.decode E.codec (Sm_util.Codec.encode E.codec e) = e)

let jsonl_roundtrip () =
  let e = sample_event () in
  let e' = Obs.Trace_jsonl.event_of_line (Obs.Trace_jsonl.event_to_line e) in
  check_bool "full record equality" (e = e');
  check_bool "single line" (not (String.contains (Obs.Trace_jsonl.event_to_line e) '\n'))

let jsonl_file_roundtrip () =
  with_obs (fun () ->
      let path = Filename.temp_file "sm_obs_test" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let sink = Obs.Trace_jsonl.file_sink path in
          Obs.set_level Obs.Debug;
          Obs.set_sink sink;
          let emitted =
            List.init 5 (fun i ->
                let e = E.make ~args:[ ("i", E.I i) ] ~task:"writer" ~task_id:9 E.Note in
                Obs.emit e;
                e)
          in
          Obs.reset_sink ();
          let loaded = Obs.Trace_jsonl.load path in
          check_bool "all lines parse back" (loaded = emitted)))

let json_parser () =
  let module J = Obs.Json in
  let doc = J.Obj [ ("a", J.Int 1); ("b", J.Float 2.0); ("s", J.String "x\"y"); ("l", J.List [ J.Bool true; J.Null ]) ] in
  check_bool "print/parse round-trip" (J.of_string (J.to_string doc) = doc);
  check_bool "integral float stays float" (J.of_string (J.to_string (J.Float 3.0)) = J.Float 3.0);
  check_bool "int stays int" (J.of_string "17" = J.Int 17);
  check_bool "trailing garbage rejected"
    (match J.of_string "{} x" with exception J.Parse_error _ -> true | _ -> false)

(* --- sinks and spans ------------------------------------------------------- *)

let sink_collect_and_tee () =
  with_obs (fun () ->
      let a, read_a = Obs.Sink.collecting () in
      let b, read_b = Obs.Sink.collecting () in
      Obs.set_level Obs.Info;
      Obs.set_sink (Obs.Sink.tee a b);
      Obs.emit (E.make ~task:"x" ~task_id:1 E.Task_start);
      Obs.emit (E.make ~task:"x" ~task_id:1 E.Task_end);
      Alcotest.(check int) "both sinks saw both" 2 (List.length (read_a ()));
      check_bool "tee delivers identically" (read_a () = read_b ()))

let span_exception_safe () =
  with_obs (fun () ->
      let sink, read = Obs.Sink.collecting () in
      Obs.set_level Obs.Debug;
      Obs.set_sink sink;
      (try Obs.Span.with_ ~task:"t" ~task_id:1 "doomed" (fun () -> failwith "boom")
       with Failure _ -> ());
      match read () with
      | [ b; e ] ->
        check_bool "begin" (b.E.kind = E.Phase_begin);
        check_bool "end still emitted" (e.E.kind = E.Phase_end)
      | evs -> Alcotest.failf "expected begin+end, got %d events" (List.length evs))

(* --- the exporters against a real run -------------------------------------- *)

let counter = Sm_mergeable.Mcounter.key ~name:"obs-test-counter"

let traced_program ctx =
  let ws = R.workspace ctx in
  Sm_mergeable.Workspace.init ws counter 0;
  let hs =
    List.init 3 (fun _ ->
        R.spawn ctx (fun c ->
            Sm_mergeable.Mcounter.incr (R.workspace c) counter;
            ignore (R.sync c);
            Sm_mergeable.Mcounter.incr (R.workspace c) counter))
  in
  R.merge_all_from_set ctx hs

let chrome_trace_valid () =
  with_obs (fun () ->
      let recorder = Obs.Trace_chrome.recorder () in
      Obs.set_level Obs.Debug;
      Obs.set_sink (Obs.Trace_chrome.sink recorder);
      R.run traced_program;
      Obs.reset_sink ();
      let module J = Obs.Json in
      (* the document must be valid JSON that survives our own parser *)
      let doc = J.of_string (J.to_string (Obs.Trace_chrome.to_json recorder)) in
      let events = Option.get (J.to_list (Option.get (J.member "traceEvents" doc))) in
      let x_slices =
        List.filter_map
          (fun ev ->
            match (J.member "ph" ev, J.member "name" ev) with
            | Some (J.String "X"), Some (J.String name) -> Some name
            | _ -> None)
          events
      in
      (* one complete task slice per spawn plus the root's own *)
      let task_slices = List.filter (fun n -> String.length n >= 5 && String.sub n 0 5 = "task ") x_slices in
      Alcotest.(check int) "a slice per spawned task + root" 4 (List.length task_slices);
      check_bool "merge slices present" (List.exists (fun n -> n = "merge:merge_all_from_set") x_slices);
      check_bool "sync slices present" (List.exists (fun n -> n = "sync") x_slices);
      check_bool "durations are non-negative"
        (List.for_all
           (fun ev ->
             match J.member "dur" ev with
             | Some d -> Option.get (J.to_float d) >= 0.0
             | None -> true)
           events))

let trace_deterministic () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let capture () =
        let sink, read = Obs.Sink.collecting () in
        Obs.set_sink sink;
        R.Coop.run traced_program;
        Obs.set_sink Obs.Sink.null;
        read ()
      in
      let a = capture () in
      let b = capture () in
      Alcotest.(check int) "same event count" (List.length a) (List.length b);
      check_bool "non-trivial trace" (List.length a > 10);
      List.iteri
        (fun i (ea, eb) ->
          if not (E.equal_structure ea eb) then
            Alcotest.failf "event %d differs: %a vs %a" i E.pp ea E.pp eb)
        (List.combine a b))

let suite =
  [ Alcotest.test_case "verbosity: gating" `Quick verbosity_gating
  ; Alcotest.test_case "verbosity: string round-trip" `Quick verbosity_strings
  ; Alcotest.test_case "clock: strictly monotonic" `Quick clock_monotonic
  ; Alcotest.test_case "metrics: enable gate + counters" `Quick metrics_gating
  ; Alcotest.test_case "metrics: histograms" `Quick metrics_histogram
  ; Alcotest.test_case "metrics: kind clash rejected" `Quick metrics_name_clash
  ; Alcotest.test_case "event: binary codec round-trip" `Quick event_binary_roundtrip
  ; Alcotest.test_case "jsonl: line round-trip" `Quick jsonl_roundtrip
  ; Alcotest.test_case "jsonl: file sink round-trip" `Quick jsonl_file_roundtrip
  ; Alcotest.test_case "json: printer/parser" `Quick json_parser
  ; Alcotest.test_case "sink: collecting + tee" `Quick sink_collect_and_tee
  ; Alcotest.test_case "span: end survives exceptions" `Quick span_exception_safe
  ; Alcotest.test_case "chrome: complete slices from a run" `Quick chrome_trace_valid
  ; Alcotest.test_case "determinism: coop trace structure" `Quick trace_deterministic
  ]
