(* lib/check self-tests: the shrinker, the seeded transform mutations, and
   the registry plumbing.  The point of a checker is that it catches bugs —
   so these tests inject bugs (Mutate) and assert the checker finds them and
   minimizes the evidence. *)

open Test_support
module Check = Sm_check
module Report = Sm_check.Report

let find name =
  match Check.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "%s not in the check registry" name

let mutated name kind = Check.Registry.run ~mutation:kind ~depth:2 (find name)

let cex_of (r : Report.t) =
  match r.verdict with
  | Report.Fail cex -> cex
  | Report.Pass -> Alcotest.failf "%s: expected a violation, got PASS" r.name

(* --- the generic shrinker -------------------------------------------------- *)

(* fails = "some op > 2 survives": minimization must land on exactly one op,
   and shrink_elt (decrement) must stop at 3 — the smallest failing value. *)
let shrink_converges () =
  let scenario = [ [ 1; 2; 3 ]; [ 4 ]; []; [ 5 ] ] in
  let fails s = List.exists (fun seq -> List.exists (fun n -> n > 2) seq) s in
  let shrink_elt n = if n > 0 then [ n - 1 ] else [] in
  let small, steps = Check.Shrink.minimize ~fails ~shrink_elt scenario in
  check_bool "still fails" (fails small);
  check_bool "one op left" (List.length (List.concat small) = 1);
  check_bool "op shrunk to the boundary" (List.concat small = [ 3 ]);
  check_bool "took steps" (steps > 0);
  check_bool "shape preserved" (List.length small = 4)

let shrink_respects_max_steps () =
  (* non-well-founded shrink_elt: the backstop must terminate the loop *)
  let scenario = [ [ 10 ]; []; []; [] ] in
  let fails s = s <> [ []; []; []; [] ] in
  let shrink_elt n = [ n ] in
  (* always "smaller", never progresses *)
  let _small, steps = Check.Shrink.minimize ~max_steps:7 ~fails ~shrink_elt scenario in
  check_bool "bounded" (steps <= 7)

(* --- seeded mutations are caught and minimized ----------------------------- *)

(* Tie_bias forces every tie to Incoming regardless of policy, so both sides
   of a concurrent insert/insert tie think they won: the canonical TP1 bug.
   ISSUE 3 satellite: the minimized counterexample must be tiny (<= 3 ops). *)
let tie_bias_on_lists () =
  let r = mutated "mlist" Check.Mutate.Tie_bias in
  check_bool "caught" (not (Report.passed r));
  let cex = cex_of r in
  check_bool "minimized to <= 3 ops" (cex.ops_total <= 3);
  check_bool "pairwise property" (cex.property = Report.Tp1 || cex.property = Report.Cross)

let identity_on_lists () =
  let r = mutated "mlist" Check.Mutate.Identity in
  check_bool "caught" (not (Report.passed r));
  check_bool "minimized to <= 3 ops" ((cex_of r).ops_total <= 3)

let drop_last_on_lists () =
  let r = mutated "mlist" Check.Mutate.Drop_last in
  check_bool "caught" (not (Report.passed r))

(* Reverse only bites where a transform returns multiple ops: text deletes
   split around a concurrent insert inside their range. *)
let reverse_on_text () =
  let r = mutated "mtext" Check.Mutate.Reverse in
  check_bool "caught" (not (Report.passed r))

(* A mutation is not guaranteed to bite: counter adds are tie-free, so
   Tie_bias must NOT produce a violation there — the checker reports honest
   passes on mutants that happen to be semantics-preserving. *)
let tie_bias_harmless_on_counter () =
  let r = mutated "mcounter" Check.Mutate.Tie_bias in
  check_bool "counter is tie-free" (Report.passed r)

(* Mutated runs never consult the known-issue list: mqueue's expected TP1
   divergence must come back as a hard FAIL under Identity (which leaves
   the queue's real transform intact — it already is the identity — so the
   same push/push violation surfaces, now unexcused). *)
let mutation_ignores_known_issues () =
  let r = mutated "mqueue" Check.Mutate.Identity in
  check_bool "no XFAIL excuse for mutants" (not (Report.passed r));
  check_bool "expected not set" (r.expected = None)

(* --- shrinking preserves the failing property ------------------------------ *)

(* Drive Checker.Make directly over a mutated module: the raw counterexample
   must still fail after minimize (holds = false), which is the shrinker's
   contract — it may only move to scenarios on which the property still
   fails. *)
module Bad_list = (val Check.Mutate.wrap Check.Mutate.Tie_bias (module Check.Instances.List_e))
module Bad_checker = Check.Checker.Make (Bad_list)

let shrink_preserves_failure () =
  match Bad_checker.check ~depth:2 () with
  | Ok _ -> Alcotest.fail "tie-biased list transform must fail"
  | Error (_, cex) ->
    let ops (c : Bad_checker.cex) =
      List.length c.applied + List.length c.left + List.length c.right + List.length c.nested
    in
    check_bool "minimized cex still violates the property" (not (Bad_checker.holds cex));
    check_bool "re-minimizing is a fixpoint" (ops (Bad_checker.minimize cex) = ops cex)

(* --- registry plumbing ----------------------------------------------------- *)

let lenient_lookup () =
  List.iter
    (fun spelling ->
      match Check.Registry.find spelling with
      | Some e -> check_bool spelling (Check.Registry.name e = "mtext")
      | None -> Alcotest.failf "lookup %S failed" spelling)
    [ "mtext"; "text"; "Op_text"; "TEXT" ];
  check_bool "unknown is None" (Check.Registry.find "nope" = None)

(* The paper's extension point: a user-defined module registers and is
   checked like the built-ins — including its documented expected failure. *)
module Always_left = struct
  include Check.Instances.Counter

  let name = "alwaysleft"

  (* deliberately broken: drops the incoming op entirely *)
  let transform _a ~against:_ ~tie:_ = []

  (* the counter's [commutes _ _ = true] would promise identity transforms
     that this broken [transform] does not deliver; withdraw the hint so the
     fixture fails only the two excused properties *)
  let commutes _ _ = false
end

let register_and_xfail () =
  let before = List.length (Check.Registry.all ()) in
  (* the fixture breaks both pairwise properties, and — since compaction
     soundness presumes a lawful transform — compaction equivalence too
     (a sum-zero chain compacts to an empty journal, changing what the
     broken transform drops); with skip-and-continue, each failing
     property needs its own excuse or the next one fails the gate *)
  Check.Registry.register
    ~known:
      (List.map
         (fun property ->
           { Check.Registry.id = "always-left"
           ; property
           ; reason = "test fixture: drops incoming ops by design"
           })
         [ Report.Tp1; Report.Cross; Report.Compact ])
    (module Always_left : Check.Enum.S);
  let e = find "alwaysleft" in
  let r = Check.Registry.run ~depth:1 e in
  check_bool "registered" (List.length (Check.Registry.all ()) = before + 1);
  check_bool "violation found" (r.verdict <> Report.Pass);
  check_bool "excused by the known issue" (Report.passed r);
  match r.expected with
  | Some reason -> check_bool "carries the reason" (String.length reason > 0)
  | None -> Alcotest.fail "expected reason missing"

let suite =
  [ Alcotest.test_case "shrink: converges to the boundary" `Quick shrink_converges
  ; Alcotest.test_case "shrink: max_steps backstop" `Quick shrink_respects_max_steps
  ; Alcotest.test_case "mutation: tie-bias on lists, cex <= 3 ops" `Quick tie_bias_on_lists
  ; Alcotest.test_case "mutation: identity on lists" `Quick identity_on_lists
  ; Alcotest.test_case "mutation: drop-last on lists" `Quick drop_last_on_lists
  ; Alcotest.test_case "mutation: reverse on text" `Quick reverse_on_text
  ; Alcotest.test_case "mutation: tie-bias harmless on counter" `Quick tie_bias_harmless_on_counter
  ; Alcotest.test_case "mutation: known issues do not excuse mutants" `Quick
      mutation_ignores_known_issues
  ; Alcotest.test_case "shrink preserves the failing property" `Quick shrink_preserves_failure
  ; Alcotest.test_case "registry: lenient lookup" `Quick lenient_lookup
  ; Alcotest.test_case "registry: user module registers and XFAILs" `Quick register_and_xfail
  ]
