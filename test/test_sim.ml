(* The evaluation substrate: workload invariants, both simulator
   implementations, the cross-implementation trajectory invariant, and the
   headline determinism claims of Section III. *)

open Test_support
module W = Sm_sim.Workload
module Conv = Sm_sim.Sim_conventional
module Sm = Sm_sim.Sim_spawnmerge
module Np = Sm_sim.Netpipe

let small mode = { W.hosts = 4; messages = 6; ttl = 5; load = 2; mode; topology = W.Full; seed = 7L }

let workload_initials () =
  let c = small W.Hash_destination in
  let ms = W.initial_messages c in
  Alcotest.(check int) "count" 6 (List.length ms);
  Alcotest.(check (list int)) "round-robin placement" [ 0; 1; 2; 3; 0; 1 ] (List.map fst ms);
  List.iter (fun (_, m) -> Alcotest.(check int) "full ttl" 5 m.W.ttl_left) ms;
  let again = W.initial_messages c in
  check_bool "seeded: identical payloads"
    (List.for_all2 (fun (_, a) (_, b) -> W.equal_message a b) ms again);
  let other = W.initial_messages { c with seed = 8L } in
  check_bool "different seed differs"
    (not (List.for_all2 (fun (_, a) (_, b) -> W.equal_message a b) ms other));
  Alcotest.(check int) "total hops" 30 (W.total_hops c)

let workload_process () =
  let c = small W.Ring_destination in
  let m = { W.payload = "seed"; ttl_left = 2 } in
  (match W.process c ~host:1 m with
  | Some m', dest ->
    Alcotest.(check int) "ring destination" 2 dest;
    Alcotest.(check int) "ttl decremented" 1 m'.W.ttl_left;
    check_bool "payload evolved" (m'.W.payload <> m.W.payload);
    (* the hop is deterministic *)
    (match W.process c ~host:1 m with
    | Some m'', dest' -> check_bool "replayable" (W.equal_message m' m'' && dest = dest')
    | None, _ -> Alcotest.fail "expected survivor")
  | None, _ -> Alcotest.fail "expected survivor");
  (match W.process c ~host:3 { m with W.ttl_left = 1 } with
  | None, dest ->
    Alcotest.(check int) "ring wraps" 0 dest
  | Some _, _ -> Alcotest.fail "expected death");
  (* hash destinations depend on the worked payload *)
  let ch = small W.Hash_destination in
  let _, d1 = W.process ch ~host:0 m in
  let _, d2 = W.process ch ~host:0 { m with W.payload = "other" } in
  check_bool "hash destination in range" (d1 >= 0 && d1 < 4 && d2 >= 0 && d2 < 4);
  Alcotest.check_raises "bad config" (Invalid_argument "Workload: hosts must be positive")
    (fun () -> W.validate { ch with W.hosts = 0 })

let all_hops r c = Alcotest.(check int) "all hops processed" (W.total_hops c) r.W.hops

let conventional_completes () =
  List.iter
    (fun mode ->
      let c = small mode in
      let r = Conv.run c in
      all_hops r c;
      Alcotest.(check int) "per_host sums to hops" r.W.hops (Array.fold_left ( + ) 0 r.W.per_host))
    [ W.Hash_destination; W.Ring_destination ]

let spawnmerge_completes () =
  List.iter
    (fun mode ->
      let c = small mode in
      let r = Sm.run c in
      all_hops r c;
      check_bool "cycles at least ttl" (Sm.cycles_of_last_run () >= c.W.ttl))
    [ W.Hash_destination; W.Ring_destination ]

(* Message trajectories are schedule-independent, so the multiset of
   processing events must agree between the two implementations, in both
   modes. *)
let cross_implementation_events () =
  List.iter
    (fun mode ->
      let c = small mode in
      let conv = Conv.run c and sm = Sm.run c in
      Alcotest.(check string) "event multiset identical" conv.W.event_digest sm.W.event_digest)
    [ W.Hash_destination; W.Ring_destination ]

(* Section III's headline: with Spawn/Merge even the hash-destination
   ("non-deterministic") simulation yields the same results in every run —
   including processing order. *)
let spawnmerge_deterministic () =
  List.iter
    (fun mode ->
      let c = small mode in
      let rs = List.init 3 (fun _ -> Sm.run c) in
      match rs with
      | first :: rest ->
        List.iter
          (fun r ->
            Alcotest.(check string) "event digest stable" first.W.event_digest r.W.event_digest;
            Alcotest.(check string) "order digest stable" first.W.order_digest r.W.order_digest)
          rest
      | [] -> assert false)
    [ W.Hash_destination; W.Ring_destination ]

(* The conventional *ring* setup is deterministic by construction (single
   producer per queue): its order digest must also be stable. *)
let conventional_ring_deterministic () =
  let c = small W.Ring_destination in
  let a = Conv.run c and b = Conv.run c in
  Alcotest.(check string) "event digest stable" a.W.event_digest b.W.event_digest;
  Alcotest.(check string) "order digest stable" a.W.order_digest b.W.order_digest

let netpipe_roundtrip () =
  let l = Np.listen () in
  let server_log = ref [] in
  let server =
    Thread.create
      (fun () ->
        match Np.accept l with
        | None -> ()
        | Some conn ->
          let rec loop () =
            match Np.recv conn with
            | Some msg ->
              server_log := msg :: !server_log;
              Np.send conn ("ack:" ^ msg);
              loop ()
            | None -> ()
          in
          loop ())
      ()
  in
  let client = Np.connect l in
  Np.send client "one";
  Np.send client "two";
  Alcotest.(check (option string)) "ack one" (Some "ack:one") (Np.recv client);
  Alcotest.(check (option string)) "ack two" (Some "ack:two") (Np.recv client);
  Np.close client;
  Thread.join server;
  Alcotest.(check (list string)) "server saw both" [ "one"; "two" ] (List.rev !server_log);
  Np.shutdown l;
  check_bool "accept after shutdown" (Np.accept l = None);
  check_bool "connect after shutdown refused"
    (match Np.connect l with _ -> false | exception Invalid_argument _ -> true)

let netpipe_close_semantics () =
  let l = Np.listen () in
  let client = Np.connect l in
  let server = match Np.accept l with Some c -> c | None -> Alcotest.fail "no conn" in
  Np.send server "pending";
  Np.close server;
  Alcotest.(check (option string)) "drain before eof" (Some "pending") (Np.recv client);
  Alcotest.(check (option string)) "eof" None (Np.recv client);
  Np.send client "ignored";
  Np.close client

let suite =
  [ Alcotest.test_case "workload: initial messages" `Quick workload_initials
  ; Alcotest.test_case "workload: hop processing" `Quick workload_process
  ; Alcotest.test_case "conventional sim completes" `Quick conventional_completes
  ; Alcotest.test_case "spawn/merge sim completes" `Quick spawnmerge_completes
  ; Alcotest.test_case "implementations process identical trajectories" `Quick cross_implementation_events
  ; Alcotest.test_case "spawn/merge sim fully deterministic" `Slow spawnmerge_deterministic
  ; Alcotest.test_case "conventional ring deterministic" `Quick conventional_ring_deterministic
  ; Alcotest.test_case "netpipe: request/response" `Quick netpipe_roundtrip
  ; Alcotest.test_case "netpipe: close and drain" `Quick netpipe_close_semantics
  ]
