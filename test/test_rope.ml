(* The rope/flat differential battery.

   The chunked rope behind [Op_text] must be observationally identical to
   the flat-string model: same documents, same lengths, same printed form
   (hence same workspace digests), same errors.  Three layers of evidence:

   - a differential sweep over every operation and operation sequence the
     lib/check enumerator produces for text, applied to both
     representations (apply, transform, compact and digest equality);
   - adversarial chunk-boundary fixtures on multi-chunk documents —
     inserts and deletes spanning leaf seams, whole-chunk deletes,
     repeated edge appends;
   - rope structural invariants ([Rope.check]: honest cached sizes, leaf
     bounds, balance) maintained across 10k random edits, with the depth
     staying logarithmic in the chunk count. *)

open Test_support
module T = Sm_ot.Op_text
module Rope = Sm_ot.Rope
module Tx = Sm_check.Instances.Text
module Ws = Sm_mergeable.Workspace
module Mtext = Sm_mergeable.Mtext
module Rng = Sm_util.Det_rng

let pp_of st = Format.asprintf "%a" T.pp_state st

(* Apply [op] to flat and rope builds of the same document and demand
   byte-, length-, print- and equality-level agreement. *)
let differential_step s op =
  let f = T.apply (T.flat_of_string s) op in
  let r = T.apply (T.rope_of_string s) op in
  let ok =
    String.equal (T.to_string f) (T.to_string r)
    && T.length f = T.length r
    && T.equal_state f r && T.equal_state r f
    && String.equal (pp_of f) (pp_of r)
  in
  if not ok then
    Alcotest.failf "divergence: state %S op %s (flat %S, rope %S)" s
      (Format.asprintf "%a" T.pp_op op) (T.to_string f) (T.to_string r);
  T.to_string f

(* every enumerated single op, on every enumerated state *)
let enumerated_ops_differential () =
  let states = [ ""; "a"; "ab"; "abcd"; "abcdef" ] in
  let total = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun op ->
          ignore (differential_step s op);
          incr total)
        (Tx.ops (T.flat_of_string s)))
    states;
  check_bool "swept a real op space" (!total > 50)

(* every enumerated 2-op sequence: apply both raw and compacted, on both
   representations — four runs that must land on the same document *)
let enumerated_sequences_differential () =
  let states = [ ""; "ab"; "abcdef" ] in
  List.iter
    (fun s ->
      List.iter
        (fun a ->
          let s1 = differential_step s a in
          List.iter
            (fun b ->
              let s2 = differential_step s1 b in
              let compacted = T.compact [ a; b ] in
              let apply_all st ops = List.fold_left T.apply st ops in
              let fc = apply_all (T.flat_of_string s) compacted in
              let rc = apply_all (T.rope_of_string s) compacted in
              check_bool "compacted flat agrees" (String.equal (T.to_string fc) s2);
              check_bool "compacted rope agrees" (String.equal (T.to_string rc) s2);
              check_bool "compacted reps agree" (T.equal_state fc rc))
            (Tx.ops (T.flat_of_string s1)))
        (Tx.ops (T.flat_of_string s)))
    states

(* every enumerated concurrent pair, transformed both ways under both tie
   winners, applied on both representations: TP1 with the convergence
   judged across representations *)
let enumerated_transforms_differential () =
  let states = [ ""; "ab"; "abcd" ] in
  List.iter
    (fun s ->
      let ops = Tx.ops (T.flat_of_string s) in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun a_wins ->
                  let tie_a = Sm_ot.Side.uniform (if a_wins then Sm_ot.Side.Incoming else Sm_ot.Side.Applied) in
                  let tie_b = Sm_ot.Side.flip tie_a in
                  let a' = T.transform a ~against:b ~tie:tie_a in
                  let b' = T.transform b ~against:a ~tie:tie_b in
                  let seq st ops = List.fold_left T.apply st ops in
                  (* four routes to the merged document: flat and rope,
                     via-a and via-b — all must agree *)
                  let flat_via_b = seq (T.apply (T.flat_of_string s) b) a' in
                  let rope_via_b = seq (T.apply (T.rope_of_string s) b) a' in
                  let flat_via_a = seq (T.apply (T.flat_of_string s) a) b' in
                  let rope_via_a = seq (T.apply (T.rope_of_string s) a) b' in
                  check_bool "tp1 across representations"
                    (T.equal_state flat_via_b rope_via_b
                    && T.equal_state flat_via_a rope_via_a
                    && T.equal_state rope_via_b rope_via_a))
                [ true; false ])
            ops)
        ops)
    states

(* the end-to-end digest: the same edit script journaled through a
   workspace digests identically whichever representation [init] picked *)
let workspace_digest_invariant () =
  let script ws k =
    Mtext.append ws k "hello world, this is a document";
    Mtext.insert ws k 5 " there";
    Mtext.delete ws k ~pos:0 ~len:3;
    Mtext.append ws k (String.make 2500 'z');
    Mtext.insert ws k 2000 "seam";
    Mtext.delete ws k ~pos:1500 ~len:600
  in
  let digest rope =
    let was = T.rope_enabled () in
    Fun.protect
      ~finally:(fun () -> T.set_rope was)
      (fun () ->
        T.set_rope rope;
        let ws = Ws.create () in
        let k = Mtext.key ~name:"rope.digest" in
        Mtext.init ws k "seed";
        script ws k;
        (Ws.digest ws, Mtext.get ws k))
  in
  let df, cf = digest false in
  let dr, cr = digest true in
  Alcotest.(check string) "documents agree" cf cr;
  Alcotest.(check string) "digests agree" df dr

(* --- chunk-boundary fixtures ------------------------------------------------- *)

let assert_valid r label =
  match Rope.check r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invariant violated: %s" label msg

(* run an op list against a rope and a flat string model, validating the
   rope and comparing content after every step *)
let run_model label initial ops =
  let rope = ref (Rope.of_string initial) in
  let model = ref initial in
  List.iteri
    (fun i op ->
      (match op with
      | T.Ins (p, s) ->
        rope := Rope.insert !rope p s;
        model := String.sub !model 0 p ^ s ^ String.sub !model p (String.length !model - p)
      | T.Del (p, l) ->
        rope := Rope.delete !rope ~pos:p ~len:l;
        model := String.sub !model 0 p ^ String.sub !model (p + l) (String.length !model - p - l));
      let step = Printf.sprintf "%s[%d]" label i in
      assert_valid !rope step;
      if not (Rope.equal_string !rope !model) then
        Alcotest.failf "%s: content diverged (rope %d bytes, model %d bytes)" step
          (Rope.length !rope) (String.length !model))
    ops;
  !rope

let seam_fixtures () =
  (* a document big enough for several chunks, with recognizable bytes *)
  let doc = String.init 8192 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  let c = Rope.target_chunk in
  let big = String.make (Rope.max_chunk + 700) 'I' in
  ignore
    (run_model "seam-ins" doc
       [ T.Ins (c, "xx") (* exactly on the first seam *)
       ; T.Ins (c - 1, "yy") (* one byte left of it *)
       ; T.Ins ((2 * c) + 1, big) (* oversized insert astride a seam *)
       ; T.Ins (0, "front")
       ; T.Ins (8192 + 2 + 2 + String.length big + 5, "back")
       ]);
  ignore
    (run_model "seam-del" doc
       [ T.Del (c, c) (* a whole chunk-sized span on the seam *)
       ; T.Del (c - 3, 7) (* small range astride the seam *)
       ; T.Del (0, 1)
       ; T.Del (8192 - (2 * c) - 8 - 1, 1)
       ]);
  (* delete everything in two crossing bites, then rebuild from empty *)
  let r = run_model "seam-drain" doc [ T.Del (100, 8000); T.Del (0, 192) ] in
  check_bool "drained empty" (Rope.is_empty r);
  ignore (run_model "seam-regrow" "" [ T.Ins (0, doc); T.Del (c / 2, 2 * c); T.Ins (17, big) ])

let edge_appends () =
  (* 10k single-byte appends — the pathological editing pattern for a
     naive tree: must stay balanced and within leaf bounds throughout *)
  let r = ref Rope.empty in
  for i = 0 to 9_999 do
    r := Rope.insert !r (Rope.length !r) (String.make 1 (Char.chr (Char.code 'a' + (i mod 26))))
  done;
  assert_valid !r "append-10k";
  let st = Rope.stats !r in
  Alcotest.(check int) "length after appends" 10_000 (Rope.length !r);
  check_bool "chunks bounded below" (st.Rope.chunks <= 10_000 / 2);
  check_bool "appends coalesce into large leaves"
    (st.Rope.chunks <= (10_000 / Rope.target_chunk * 4) + 4);
  (* and the mirror image: 2k prepends *)
  let l = ref Rope.empty in
  for _ = 1 to 2_000 do
    l := Rope.insert !l 0 "qq"
  done;
  assert_valid !l "prepend-2k";
  Alcotest.(check int) "length after prepends" 4_000 (Rope.length !l);
  check_bool "prepends stay shallow" ((Rope.stats !l).Rope.depth <= 24)

(* --- rebalance invariants under random load ---------------------------------- *)

let random_ops_invariants () =
  let rng = Rng.create ~seed:0x0FE11AL in
  let rope = ref (Rope.of_string "") in
  let model = Buffer.create 4096 in
  let model_str () = Buffer.contents model in
  for i = 1 to 10_000 do
    let n = Rope.length !rope in
    let ins = n = 0 || Rng.float rng < 0.6 in
    if ins then begin
      let pos = Rng.int rng ~bound:(n + 1) in
      let len = 1 + Rng.int rng ~bound:40 in
      let s = String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int rng ~bound:26)) in
      rope := Rope.insert !rope pos s;
      let m = model_str () in
      Buffer.clear model;
      Buffer.add_string model (String.sub m 0 pos);
      Buffer.add_string model s;
      Buffer.add_string model (String.sub m pos (String.length m - pos))
    end
    else begin
      let pos = Rng.int rng ~bound:n in
      let len = 1 + Rng.int rng ~bound:(min 64 (n - pos)) in
      rope := Rope.delete !rope ~pos ~len;
      let m = model_str () in
      Buffer.clear model;
      Buffer.add_string model (String.sub m 0 pos);
      Buffer.add_string model (String.sub m (pos + len) (String.length m - pos - len))
    end;
    if i mod 500 = 0 then begin
      assert_valid !rope (Printf.sprintf "random[%d]" i);
      if not (Rope.equal_string !rope (model_str ())) then
        Alcotest.failf "random[%d]: content diverged" i
    end
  done;
  assert_valid !rope "random-final";
  check_bool "final content agrees" (Rope.equal_string !rope (model_str ()));
  (* depth bound: height-balanced with sibling skew <= 2 means depth is
     within a small factor of log2(chunks) *)
  let st = Rope.stats !rope in
  let log2 x = int_of_float (ceil (log (float_of_int (max 2 x)) /. log 2.)) in
  check_bool
    (Printf.sprintf "depth %d logarithmic in %d chunks" st.Rope.depth st.Rope.chunks)
    (st.Rope.depth <= (2 * log2 st.Rope.chunks) + 4);
  check_bool "no oversized leaf" (st.Rope.max_leaf <= Rope.max_chunk);
  check_bool "no empty leaf" (st.Rope.min_leaf >= 1);
  (* a straight rebuild of the same content is equal, chunking aside *)
  check_bool "boundary-independent equality"
    (Rope.equal !rope (Rope.of_string (model_str ())))

(* split/join round-trips at and around every kind of boundary *)
let split_join_roundtrip () =
  let doc = String.init 5000 (fun i -> Char.chr (Char.code 'A' + (i mod 26))) in
  let r = Rope.of_string doc in
  List.iter
    (fun i ->
      let a, b = Rope.split r i in
      assert_valid a (Printf.sprintf "split-left@%d" i);
      assert_valid b (Printf.sprintf "split-right@%d" i);
      Alcotest.(check int) "split lengths" 5000 (Rope.length a + Rope.length b);
      let j = Rope.join a b in
      assert_valid j (Printf.sprintf "join@%d" i);
      check_bool "join restores content" (Rope.equal_string j doc))
    [ 0; 1; Rope.target_chunk - 1; Rope.target_chunk; Rope.target_chunk + 1
    ; Rope.max_chunk; 2500; 4999; 5000 ];
  (* sub addresses slices without disturbing the rope *)
  Alcotest.(check string) "sub mid" (String.sub doc 1000 300) (Rope.sub r 1000 300);
  Alcotest.(check string) "sub whole" doc (Rope.sub r 0 5000)

(* copies are content-equal but share no chunk strings with the source *)
let copy_freshness () =
  let r = Rope.of_string (String.make 5000 'x') in
  let c = Rope.copy r in
  check_bool "copy equal" (Rope.equal r c);
  assert_valid c "copy";
  let srcs = ref [] in
  Rope.iter_chunks (fun s -> srcs := s :: !srcs) r;
  Rope.iter_chunks (fun s -> check_bool "chunk not shared" (not (List.memq s !srcs))) c

let suite =
  [ Alcotest.test_case "differential: enumerated ops" `Quick enumerated_ops_differential
  ; Alcotest.test_case "differential: enumerated sequences + compact" `Quick
      enumerated_sequences_differential
  ; Alcotest.test_case "differential: enumerated transforms (TP1 across reps)" `Quick
      enumerated_transforms_differential
  ; Alcotest.test_case "differential: workspace digests agree" `Quick workspace_digest_invariant
  ; Alcotest.test_case "fixtures: chunk-seam inserts and deletes" `Quick seam_fixtures
  ; Alcotest.test_case "fixtures: 10k edge appends stay balanced" `Quick edge_appends
  ; Alcotest.test_case "invariants: 10k random ops" `Quick random_ops_invariants
  ; Alcotest.test_case "invariants: split/join round-trips" `Quick split_join_roundtrip
  ; Alcotest.test_case "invariants: copies are fresh" `Quick copy_freshness
  ]
