(* ISSUE 4: journal compaction and the control-algorithm fast paths, proven
   equivalent to the textbook slow path.

   The optimized Control.Make carries three rewrites: empty-side and
   all-pairs-commute fast paths in cross/transform_op/transform_seq, a
   chunked (linear) merge accumulator, and metered journal compaction used
   by Workspace.merge_child.  Each must be *sequence*-identical (not just
   state-equal) to the textbook algorithm — asserted here against a local
   reference implementation over the enumerated corpora of lib/check, as
   golden per-module compaction cases, as transform-call accounting, and
   end-to-end over randomized runtime spawn trees with the compaction flag
   on and off, under both schedulers. *)

open Test_support
module Check = Sm_check
module Side = Sm_ot.Side
module Control = Sm_ot.Control
module Ws = Sm_mergeable.Workspace
module Rt = Sm_core.Runtime
module Detcheck = Sm_core.Detcheck
module Rng = Sm_util.Det_rng
module Metrics = Sm_obs.Metrics
module Mcounter = Sm_mergeable.Mcounter
module Mtext = Sm_mergeable.Mtext
module Mmap = Sm_mergeable.Mmap.Make (Str_elt) (Int_elt)
module Mregister = Sm_mergeable.Mregister.Make (Str_elt)

let with_compaction on f =
  let saved = Ws.compaction_enabled () in
  Ws.set_compaction on;
  Fun.protect ~finally:(fun () -> Ws.set_compaction saved) f

let with_metrics f =
  let saved = Metrics.is_enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) f

(* guaranteed left-to-right, unlike List.init/List.map evaluation order *)
let map_in_order f n = List.rev (List.fold_left (fun acc i -> f i :: acc) [] (List.init n Fun.id))

(* --- the reference slow path ----------------------------------------------

   The textbook control algorithm exactly as Control.Make shipped before the
   fast paths: unconditional recursion and the quadratic
   [serialized @ child'] merge fold.  No metering, no shortcuts. *)

module Slow (O : Sm_ot.Op_sig.S) = struct
  let rec cross ~incoming ~applied ~tie =
    match incoming with
    | [] -> ([], applied)
    | a :: rest ->
      let a', applied' = include_one a ~applied ~tie in
      let rest', applied'' = cross ~incoming:rest ~applied:applied' ~tie in
      (a' @ rest', applied'')

  and include_one a ~applied ~tie =
    match applied with
    | [] -> ([ a ], [])
    | b :: bs ->
      let a_pieces = O.transform a ~against:b ~tie in
      let b_pieces = O.transform b ~against:a ~tie:(Side.flip tie) in
      let a_final, bs' = cross ~incoming:a_pieces ~applied:bs ~tie in
      (a_final, b_pieces @ bs')

  let transform_seq ops ~against ~tie = fst (cross ~incoming:ops ~applied:against ~tie)

  let merge ~applied ~children ~tie =
    List.fold_left
      (fun serialized child -> serialized @ transform_seq child ~against:serialized ~tie)
      applied children
end

(* Both serialization directions and both uniform winners: the fast paths
   must be tie-blind because they skip the transform without consulting the
   policy. *)
let all_ties =
  [ Side.serialization
  ; Side.flip Side.serialization
  ; Side.uniform Side.Incoming
  ; Side.uniform Side.Applied
  ]

(* Every 0/1/2-op sequence pair of the enumerated corpus through fast and
   slow cross *and* merge, compared structurally.  Returns the case count so
   the caller can pin corpus size. *)
let fast_matches_slow ~depth (enum : (module Check.Enum.S)) =
  let module E = (val enum) in
  let module Fast = Sm_ot.Control.Make (E) in
  let module S = Slow (E) in
  let cases = ref 0 in
  List.iter
    (fun state ->
      let ops = E.ops state in
      let seqs =
        ([ [] ] @ List.map (fun a -> [ a ]) ops)
        @ List.concat_map (fun a -> List.map (fun a2 -> [ a; a2 ]) (E.ops (E.apply state a))) ops
      in
      List.iter
        (fun left ->
          List.iter
            (fun right ->
              List.iter
                (fun tie ->
                  incr cases;
                  let f = Fast.cross ~incoming:left ~applied:right ~tie in
                  let s = S.cross ~incoming:left ~applied:right ~tie in
                  if f <> s then
                    Alcotest.failf "%s: fast cross diverges from the textbook algorithm" E.name;
                  let fm = Fast.merge ~applied:[] ~children:[ left; right ] ~tie in
                  let sm = S.merge ~applied:[] ~children:[ left; right ] ~tie in
                  if fm <> sm then
                    Alcotest.failf "%s: fast merge diverges from the textbook fold" E.name)
                all_ties)
            seqs)
        seqs)
    (E.states ~depth);
  !cases

let fast_slow_all_modules_depth1 () =
  let total =
    List.fold_left (fun acc e -> acc + fast_matches_slow ~depth:1 e) 0 (Check.Instances.all)
  in
  (* the depth-1 sweep across all nine modules must not silently shrink *)
  check_bool (Printf.sprintf "corpus size (%d)" total) (total > 50_000)

let fast_slow_depth2 () =
  List.iter
    (fun (name, enum, floor) ->
      let n = fast_matches_slow ~depth:2 enum in
      check_bool (Printf.sprintf "%s depth-2 corpus (%d >= %d)" name n floor) (n >= floor))
    [ ("mcounter", (module Check.Instances.Counter : Check.Enum.S), 500)
    ; ("mregister", (module Check.Instances.Register), 500)
    ; ("mset", (module Check.Instances.Set_e), 1500)
    ; ("mmap", (module Check.Instances.Map_e), 1500)
    ; ("mqueue", (module Check.Instances.Queue_e), 500)
    ; ("mstack", (module Check.Instances.Stack_e), 1500)
    ; ("mlist", (module Check.Instances.List_e), 1500)
    ]

(* --- golden compaction cases ----------------------------------------------- *)

module Lst = Sm_ot.Op_list.Make (Str_elt)
module Txt = Sm_ot.Op_text
module Map_o = Sm_ot.Op_map.Make (Str_elt) (Int_elt)
module Set_o = Sm_ot.Op_set.Make (Int_elt)
module Reg = Sm_ot.Op_register.Make (Str_elt)
module Que = Sm_ot.Op_queue.Make (Int_elt)
module Stk = Sm_ot.Op_stack.Make (Str_elt)
module Tre = Sm_ot.Op_tree.Make (Str_elt)

let compact_golden () =
  let module Cn = Sm_ot.Op_counter in
  check_bool "counter sums" (Cn.compact [ Cn.add 2; Cn.add 3 ] = [ Cn.add 5 ]);
  check_bool "counter cancels to nothing" (Cn.compact [ Cn.add 2; Cn.add (-2) ] = []);
  check_bool "register keeps the last write"
    (Reg.compact [ Reg.assign "a"; Reg.assign "b"; Reg.assign "c" ] = [ Reg.assign "c" ]);
  check_bool "map keeps the last op per key, in final-occurrence order"
    (Map_o.compact [ Map_o.put "k" 1; Map_o.put "j" 5; Map_o.put "k" 2 ]
    = [ Map_o.put "j" 5; Map_o.put "k" 2 ]);
  check_bool "map remove supersedes put"
    (Map_o.compact [ Map_o.put "k" 1; Map_o.remove "k" ] = [ Map_o.remove "k" ]);
  check_bool "set keeps the last op per element"
    (Set_o.compact [ Set_o.add 1; Set_o.remove 1; Set_o.add 2 ] = [ Set_o.remove 1; Set_o.add 2 ]);
  check_bool "list insert+delete cancels" (Lst.compact [ Lst.ins 0 "x"; Lst.del 0 ] = []);
  check_bool "list insert+set folds" (Lst.compact [ Lst.ins 1 "x"; Lst.set 1 "y" ] = [ Lst.ins 1 "y" ]);
  check_bool "list set+set keeps the last" (Lst.compact [ Lst.set 0 "a"; Lst.set 0 "b" ] = [ Lst.set 0 "b" ]);
  check_bool "list set+delete keeps the delete" (Lst.compact [ Lst.set 2 "a"; Lst.del 2 ] = [ Lst.del 2 ]);
  check_bool "list cascade reaches a fixpoint"
    (Lst.compact [ Lst.ins 0 "x"; Lst.set 0 "y"; Lst.del 0 ] = []);
  check_bool "text adjacent inserts coalesce"
    (Txt.compact [ Txt.ins 0 "ab"; Txt.ins 2 "cd" ] = [ Txt.ins 0 "abcd" ]);
  check_bool "text insert-then-inner-delete shrinks the insert"
    (Txt.compact [ Txt.ins 0 "abc"; Txt.del ~pos:1 ~len:1 ] = [ Txt.ins 0 "ac" ]);
  check_bool "text insert fully deleted cancels"
    (Txt.compact [ Txt.ins 3 "abc"; Txt.del ~pos:3 ~len:3 ] = []);
  check_bool "text adjacent deletes fuse"
    (Txt.compact [ Txt.del ~pos:2 ~len:2 ; Txt.del ~pos:2 ~len:3 ] = [ Txt.del ~pos:2 ~len:5 ]);
  check_bool "queue compaction is the (sound) identity"
    (Que.compact [ Que.push 1; Que.pop ] = [ Que.push 1; Que.pop ]);
  check_bool "stack push+pop at one slot cancels" (Stk.compact [ Stk.push "x"; Stk.pop ] = []);
  check_bool "tree insert+delete cancels"
    (Tre.compact [ Tre.insert [ 0 ] (Tre.leaf "x"); Tre.delete [ 0 ] ] = []);
  check_bool "tree insert+relabel folds"
    (Tre.compact [ Tre.insert [ 1 ] (Tre.leaf "x"); Tre.relabel [ 1 ] "y" ]
    = [ Tre.insert [ 1 ] (Tre.leaf "y") ]);
  check_bool "tree relabel+relabel keeps the last"
    (Tre.compact [ Tre.relabel [ 0 ] "a"; Tre.relabel [ 0 ] "b" ] = [ Tre.relabel [ 0 ] "b" ])

(* --- transform-call accounting --------------------------------------------- *)

(* k commuting single-op children: the commutes fast path must serialize
   them without a single pairwise transform. *)
let commuting_children_skip_transforms () =
  with_metrics @@ fun () ->
  let module Cn = Sm_ot.Op_counter in
  let module C = Sm_ot.Control.Make (Cn) in
  let k = 12 in
  let children = List.init k (fun i -> [ Cn.add (i + 1) ]) in
  let before = Metrics.value Control.transform_calls in
  let merged = C.merge ~applied:[] ~children ~tie:Side.serialization in
  Alcotest.(check int) "zero transform calls" 0 (Metrics.value Control.transform_calls - before);
  Alcotest.(check int) "all ops serialized" k (List.length merged);
  Alcotest.(check int) "sum preserved" (k * (k + 1) / 2) (C.apply_seq 0 merged)

(* k conflicting single-op children: child i transforms against i-1 chunks
   of one op each, so MergeAll is exactly k(k-1) counted calls — linear in
   the pairs, proving the chunked accumulator did not change the transform
   sequence (ISSUE 4 satellite: the [serialized @ child'] fix). *)
let conflicting_children_transform_linearly () =
  with_metrics @@ fun () ->
  let module C = Sm_ot.Control.Make (Lst) in
  let k = 12 in
  let children = List.init k (fun i -> [ Lst.ins 0 (string_of_int i) ]) in
  let before = Metrics.value Control.transform_calls in
  let merged = C.merge ~applied:[] ~children ~tie:Side.serialization in
  Alcotest.(check int) "k(k-1) transform calls" (k * (k - 1))
    (Metrics.value Control.transform_calls - before);
  Alcotest.(check int) "all ops serialized" k (List.length merged);
  Alcotest.(check int) "all elements present" k (List.length (C.apply_seq [] merged))

(* --- workspace wiring ------------------------------------------------------ *)

let compaction_default_on () = check_bool "compaction defaults to on" (Ws.compaction_enabled ())

let kt_metrics = Mtext.key ~name:"compact.metrics.text"

(* A journal-heavy merge through the real Workspace: 40 coalescible text
   appends against one concurrent parent edit.  Compaction must shrink the
   journal 40 -> 1 (metered), cut transform calls 80 -> 2, and land on the
   identical state and digest as the uncompacted merge. *)
let workspace_compacts_child_journals () =
  with_metrics @@ fun () ->
  let run ~compaction =
    with_compaction compaction @@ fun () ->
    let parent = Ws.create () in
    Mtext.init parent kt_metrics "";
    let base = Ws.snapshot parent in
    let child = Ws.copy parent in
    for _ = 1 to 40 do
      Mtext.append child kt_metrics "ab"
    done;
    Mtext.insert parent kt_metrics 0 "Z";
    let t0 = Metrics.value Control.transform_calls in
    let ci0 = Metrics.value Control.compact_in in
    let co0 = Metrics.value Control.compact_out in
    Ws.merge_child ~parent ~child ~base;
    ( Mtext.get parent kt_metrics
    , Ws.digest parent
    , Metrics.value Control.transform_calls - t0
    , Metrics.value Control.compact_in - ci0
    , Metrics.value Control.compact_out - co0 )
  in
  let s_on, d_on, t_on, ci_on, co_on = run ~compaction:true in
  let s_off, d_off, t_off, ci_off, co_off = run ~compaction:false in
  check_bool "merged states equal" (String.equal s_on s_off);
  check_bool "digests equal" (String.equal d_on d_off);
  Alcotest.(check int) "40 journal ops metered in" 40 ci_on;
  Alcotest.(check int) "1 op metered out" 1 co_on;
  Alcotest.(check int) "2 transform calls with compaction" 2 t_on;
  Alcotest.(check int) "80 transform calls without" 80 t_off;
  check_bool "compaction off meters nothing" (ci_off = 0 && co_off = 0)

(* --- randomized runtime stress --------------------------------------------- *)

(* keys minted once, at module level — the clean pattern DetSan enforces *)
let kc = Mcounter.key ~name:"compact.stress.counter"
let kt = Mtext.key ~name:"compact.stress.text"
let km = Mmap.key ~name:"compact.stress.map"
let kr = Mregister.key ~name:"compact.stress.reg"

let random_ops rng w n =
  for _ = 1 to n do
    match Rng.int rng ~bound:4 with
    | 0 -> Mcounter.add w kc (1 + Rng.int rng ~bound:5)
    | 1 -> Mtext.append w kt (string_of_int (Rng.int rng ~bound:10))
    | 2 ->
      Mmap.put w km
        (String.make 1 (Char.chr (Char.code 'a' + Rng.int rng ~bound:4)))
        (Rng.int rng ~bound:100)
    | _ -> Mregister.set w kr (string_of_int (Rng.int rng ~bound:100))
  done

(* A two-level spawn tree over four mergeable types, everything derived from
   the seed: children journal mixed compactable runs, even children merge a
   grandchild of their own first, the root edits concurrently and merges in
   spawn order. *)
let stress_program ~seed ctx =
  let ws = Rt.workspace ctx in
  Ws.init ws kc 0;
  Mtext.init ws kt "";
  Ws.init ws km Mmap.Op.Key_map.empty;
  Ws.init ws kr "-";
  let rng = Rng.create ~seed in
  let spawn_child i =
    let child_seed = Int64.add (Int64.mul seed 1000L) (Int64.of_int i) in
    Rt.spawn ctx (fun c ->
        let crng = Rng.create ~seed:child_seed in
        random_ops crng (Rt.workspace c) (4 + Rng.int crng ~bound:8);
        if i land 1 = 0 then begin
          let g =
            Rt.spawn c (fun gc ->
                let grng = Rng.create ~seed:(Int64.add child_seed 500L) in
                random_ops grng (Rt.workspace gc) (3 + Rng.int grng ~bound:5))
          in
          Rt.merge_all_from_set c [ g ]
        end)
  in
  let handles = map_in_order spawn_child (2 + Rng.int rng ~bound:3) in
  random_ops rng ws (3 + Rng.int rng ~bound:5);
  Rt.merge_all_from_set ctx handles

let stress_digest ~seed ~compaction =
  with_compaction compaction @@ fun () ->
  Rt.Coop.run (fun ctx ->
      stress_program ~seed ctx;
      Ws.digest (Rt.workspace ctx))

let stress_digests_on_off () =
  for seed = 1 to 100 do
    let s = Int64.of_int seed in
    let on = stress_digest ~seed:s ~compaction:true in
    let off = stress_digest ~seed:s ~compaction:false in
    if not (String.equal on off) then
      Alcotest.failf "seed %d: digest %s with compaction, %s without" seed on off
  done

let executor = lazy (Sm_core.Executor.create ())

let stress_cross_scheduler () =
  List.iter
    (fun seed ->
      List.iter
        (fun compaction ->
          check_bool
            (Printf.sprintf "seed %Ld, compaction %b" seed compaction)
            (with_compaction compaction (fun () ->
                 Detcheck.cross_scheduler ~timeout_s:120. ~runs:2 ~executor:(Lazy.force executor)
                   (stress_program ~seed))))
        [ true; false ])
    [ 1L; 2L; 5L; 8L ]

let suite =
  [ Alcotest.test_case "fast paths match the slow path, all modules, depth 1" `Quick
      fast_slow_all_modules_depth1
  ; Alcotest.test_case "fast paths match the slow path at depth 2" `Quick fast_slow_depth2
  ; Alcotest.test_case "golden compaction cases" `Quick compact_golden
  ; Alcotest.test_case "commuting children merge with zero transforms" `Quick
      commuting_children_skip_transforms
  ; Alcotest.test_case "conflicting children transform linearly" `Quick
      conflicting_children_transform_linearly
  ; Alcotest.test_case "compaction defaults to on" `Quick compaction_default_on
  ; Alcotest.test_case "workspace compacts child journals" `Quick workspace_compacts_child_journals
  ; Alcotest.test_case "100 seeds: digests identical, compaction on vs off" `Quick
      stress_digests_on_off
  ; Alcotest.test_case "stress digests agree across schedulers" `Slow stress_cross_scheduler
  ]
