(* Section IV.A: semaphores simulated with Spawn and Merge only.  Mutual
   exclusion is measured with atomics from outside the framework; the
   deadlocked-semaphore system is detected as All_blocked instead of hanging
   (the paper's livelock argument, made observable). *)

open Test_support
module S = Sm_core.Semaphore

let outcome = Alcotest.testable (fun ppf -> function
    | S.Completed -> Format.pp_print_string ppf "Completed"
    | S.All_blocked -> Format.pp_print_string ppf "All_blocked")
    ( = )

(* Track how many workers overlap inside critical sections. *)
let overlap_meter () =
  let current = Atomic.make 0 and peak = Atomic.make 0 in
  let enter () =
    let now = Atomic.fetch_and_add current 1 + 1 in
    let rec bump () =
      let p = Atomic.get peak in
      if now > p && not (Atomic.compare_and_set peak p now) then bump ()
    in
    bump ()
  in
  let leave () = ignore (Atomic.fetch_and_add current (-1)) in
  (enter, leave, fun () -> Atomic.get peak)

let mutual_exclusion () =
  let enter, leave, peak = overlap_meter () in
  let worker (ops : S.ops) =
    for _ = 1 to 3 do
      ops.acquire 0;
      enter ();
      Thread.delay 0.002;
      leave ();
      ops.release 0
    done
  in
  let result = S.run_system ~values:[| 1 |] (List.init 3 (fun _ -> worker)) in
  Alcotest.check outcome "completed" S.Completed result;
  Alcotest.(check int) "never more than one holder" 1 (peak ())

let counting_semaphore () =
  let enter, leave, peak = overlap_meter () in
  let worker (ops : S.ops) =
    for _ = 1 to 2 do
      ops.acquire 0;
      enter ();
      Thread.delay 0.003;
      leave ();
      ops.release 0
    done
  in
  let result = S.run_system ~values:[| 2 |] (List.init 4 (fun _ -> worker)) in
  Alcotest.check outcome "completed" S.Completed result;
  check_bool "at most two holders" (peak () <= 2)

let blocked_forever_detected () =
  let result = S.run_system ~values:[| 0 |] [ (fun ops -> ops.acquire 0) ] in
  Alcotest.check outcome "deadlock equivalent detected" S.All_blocked result

let partial_block_detected () =
  (* one worker completes, one blocks: system ends blocked, not hung *)
  let result =
    S.run_system ~values:[| 1 |]
      [ (fun ops ->
          ops.acquire 0;
          ops.release 0)
      ; (fun ops ->
          ops.acquire 0
          (* never releases, then tries again: blocks *);
          ops.acquire 0)
      ]
  in
  Alcotest.check outcome "detected" S.All_blocked result

(* The classic two-lock deadlock: opposite acquisition order.  Depending on
   timing the system either completes or reaches the deadlock-equivalent
   state — either way run_system must return (no OS-level deadlock). *)
let opposite_order_terminates () =
  let w1 (ops : S.ops) =
    ops.acquire 0;
    Thread.delay 0.005;
    ops.acquire 1;
    ops.release 1;
    ops.release 0
  in
  let w2 (ops : S.ops) =
    ops.acquire 1;
    Thread.delay 0.005;
    ops.acquire 0;
    ops.release 0;
    ops.release 1
  in
  match S.run_system ~values:[| 1; 1 |] [ w1; w2 ] with
  | S.Completed | S.All_blocked -> ()

let release_wakes_waiter () =
  (* value starts at 0; one worker only releases, the other only acquires —
     the acquire must be granted by the release. *)
  let granted = ref false in
  let result =
    S.run_system ~values:[| 0 |]
      [ (fun ops ->
          Thread.delay 0.005;
          ops.release 0)
      ; (fun ops ->
          ops.acquire 0;
          granted := true)
      ]
  in
  Alcotest.check outcome "completed" S.Completed result;
  check_bool "waiter granted" !granted

let fifo_grant_order () =
  (* with value 1 and workers queueing behind a long holder, grants follow
     request (list) order *)
  let order = ref [] in
  let record id = order := id :: !order in
  let holder (ops : S.ops) =
    ops.acquire 0;
    Thread.delay 0.01;
    record ops.worker_id;
    ops.release 0
  in
  let waiter delay (ops : S.ops) =
    Thread.delay delay;
    ops.acquire 0;
    record ops.worker_id;
    ops.release 0
  in
  let result =
    S.run_system ~values:[| 1 |] [ holder; waiter 0.002; waiter 0.004 ]
  in
  Alcotest.check outcome "completed" S.Completed result;
  Alcotest.(check int) "all ran" 3 (List.length !order)

let out_of_range_semaphore () =
  let result = S.run_system ~values:[| 1 |] [ (fun ops -> ops.acquire 5) ] in
  (* the worker task fails; the system still terminates *)
  Alcotest.check outcome "terminates" S.Completed result

let suite =
  [ Alcotest.test_case "binary semaphore: mutual exclusion" `Quick mutual_exclusion
  ; Alcotest.test_case "counting semaphore: at most N holders" `Quick counting_semaphore
  ; Alcotest.test_case "acquire on zero: All_blocked" `Quick blocked_forever_detected
  ; Alcotest.test_case "partial block detected" `Quick partial_block_detected
  ; Alcotest.test_case "opposite-order acquires terminate" `Quick opposite_order_terminates
  ; Alcotest.test_case "release wakes waiter" `Quick release_wakes_waiter
  ; Alcotest.test_case "grants drain all waiters" `Quick fifo_grant_order
  ; Alcotest.test_case "bad semaphore index fails the worker only" `Quick out_of_range_semaphore
  ]
