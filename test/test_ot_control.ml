(* The transformation control algorithm: the paper's equations (4)-(8) on
   concrete scenarios, plus structural properties of cross/merge. *)

open Test_support
module L = Sm_ot.Op_list.Make (Str_elt)
module C = Sm_ot.Control.Make (L)
module Conv = Sm_ot.Convergence.Make (L)

let state = Alcotest.testable L.pp_state L.equal_state

(* The h(a) := f(a) || g(a) example from Section II.A: f and g both modify a
   list; merge(ops_f, ops_g) serializes them; the result is deterministic and
   merge order matters. *)
let paper_h_example () =
  let a = [ "1"; "2"; "3" ] in
  let ops_f = [ L.ins 3 "4" ] (* parent appends 4 *) in
  let ops_g = [ L.ins 3 "5" ] (* child appends 5 *) in
  let merged = C.merge ~applied:ops_f ~children:[ ops_g ] ~tie:Sm_ot.Side.serialization in
  Alcotest.check state "listing 1 result" [ "1"; "2"; "3"; "4"; "5" ] (C.apply_seq a merged);
  let merged_swapped = C.merge ~applied:ops_g ~children:[ ops_f ] ~tie:Sm_ot.Side.serialization in
  Alcotest.check state "merge(y,x) differs" [ "1"; "2"; "3"; "5"; "4" ] (C.apply_seq a merged_swapped)

let empty_cases () =
  let a = [ "x" ] in
  Alcotest.(check (list (testable L.pp_op ( = )))) "merge with no children" [ L.del 0 ]
    (C.merge ~applied:[ L.del 0 ] ~children:[] ~tie:Sm_ot.Side.serialization);
  Alcotest.(check (list (testable L.pp_op ( = )))) "transform vs empty" [ L.del 0 ]
    (C.transform_seq [ L.del 0 ] ~against:[] ~tie:Sm_ot.Side.serialization);
  let inc, app = C.cross ~incoming:[] ~applied:[ L.del 0 ] ~tie:Sm_ot.Side.serialization in
  check_bool "cross empty incoming" (inc = [] && app = [ L.del 0 ]);
  Alcotest.check state "apply_seq empty" a (C.apply_seq a [])

(* Three children merged in creation order; every child appended one element
   at the same position: order of results must follow merge order. *)
let three_children_order () =
  let base = [ "base" ] in
  let child i = [ L.ins 1 (string_of_int i) ] in
  let merged = C.merge ~applied:[] ~children:[ child 1; child 2; child 3 ] ~tie:Sm_ot.Side.serialization in
  Alcotest.check state "creation order preserved" [ "base"; "1"; "2"; "3" ] (C.apply_seq base merged)

(* Splitting inside cross: a text-range delete crossing an insert exercises
   one-to-many transforms inside sequences. *)
module T = Sm_ot.Op_text
module Ct = Sm_ot.Control.Make (T)

let cross_with_splits () =
  let base = T.of_string "abcdef" in
  let left = [ T.del ~pos:1 ~len:4 ] (* delete "bcde" *) in
  let right = [ T.ins 3 "XY" ] (* insert inside the deleted range *) in
  let left', right' = Ct.cross ~incoming:left ~applied:right ~tie:Sm_ot.Side.serialization in
  let via_right = T.to_string (Ct.apply_seq (Ct.apply_seq base right) left') in
  let via_left = T.to_string (Ct.apply_seq (Ct.apply_seq base left) right') in
  Alcotest.(check string) "converged" via_right via_left;
  Alcotest.(check string) "expected" "aXYf" via_right;
  Alcotest.(check int) "left split into two deletes" 2 (List.length left')

(* merge must be associative in the fold sense: merging [c1; c2] equals
   merging c1 then treating the result as applied and merging c2. *)
let merge_incremental_equivalence () =
  let base = [ "a"; "b"; "c" ] in
  let applied = [ L.set 0 "A" ] in
  let c1 = [ L.del 2; L.ins 0 "p" ] in
  let c2 = [ L.ins 1 "q"; L.set 1 "Q" ] in
  let all_at_once = C.merge ~applied ~children:[ c1; c2 ] ~tie:Sm_ot.Side.serialization in
  let step1 = C.merge ~applied ~children:[ c1 ] ~tie:Sm_ot.Side.serialization in
  let step2 = C.merge ~applied:step1 ~children:[ c2 ] ~tie:Sm_ot.Side.serialization in
  Alcotest.check state "incremental = batch" (C.apply_seq base all_at_once) (C.apply_seq base step2)

let gen_state =
  QCheck2.Gen.(map (List.map string_of_int) (list_size (int_range 1 6) (int_range 0 9)))

let gen_op_for len =
  let open QCheck2.Gen in
  if len = 0 then map (fun x -> L.ins 0 (string_of_int x)) (int_range 10 19)
  else
    frequency
      [ (2, map2 (fun i x -> L.ins i (string_of_int x)) (int_range 0 len) (int_range 10 19))
      ; (2, map (fun i -> L.del i) (int_range 0 (len - 1)))
      ; (1, map2 (fun i x -> L.set i (string_of_int x)) (int_range 0 (len - 1)) (int_range 10 19))
      ]

let gen_seq_for s =
  let open QCheck2.Gen in
  int_range 0 5 >>= fun n ->
  let rec go s acc n =
    if n = 0 then return (List.rev acc)
    else gen_op_for (List.length s) >>= fun op -> go (L.apply s op) (op :: acc) (n - 1)
  in
  go s [] n

(* N concurrent children with random logs: the merged sequence must apply
   cleanly, and per-child incremental merging must equal batch merging. *)
let gen_children =
  let open QCheck2.Gen in
  gen_state >>= fun s ->
  gen_seq_for s >>= fun applied ->
  list_size (int_range 0 4) (gen_seq_for s) >>= fun children -> return (s, applied, children)

let merge_random (s, applied, children) =
  let batch = C.merge ~applied ~children ~tie:Sm_ot.Side.serialization in
  let incremental =
    List.fold_left
      (fun acc child -> C.merge ~applied:acc ~children:[ child ] ~tie:Sm_ot.Side.serialization)
      applied children
  in
  L.equal_state (C.apply_seq s batch) (C.apply_seq s incremental)

let side_algebra () =
  let open Sm_ot.Side in
  check_bool "opposite involutive" (opposite (opposite Incoming) = Incoming);
  check_bool "flip involutive" (flip (flip serialization) = serialization);
  check_bool "uniform components" (uniform Applied = { position = Applied; value = Applied });
  check_bool "serialization policy" (serialization = { position = Applied; value = Incoming });
  check_bool "incoming_wins" (incoming_wins Incoming && not (incoming_wins Applied));
  Alcotest.(check string) "pp" "incoming" (Format.asprintf "%a" pp Incoming);
  Alcotest.(check string) "pp_policy" "{position=applied; value=incoming}"
    (Format.asprintf "%a" pp_policy serialization)

let transform_op_vs_sequence () =
  (* one op threaded through a whole sequence, with a split along the way *)
  let ops =
    Ct.transform_op
      (T.del ~pos:0 ~len:6)
      ~against:[ T.ins 2 "XY"; T.del ~pos:0 ~len:1 ]
      ~tie:Sm_ot.Side.serialization
  in
  (* base "abcdef": delete all 6; concurrent: insert XY at 2, then delete "a".
     surviving deletions must remove exactly the original characters *)
  let base = T.of_string "abcdef" in
  let after_concurrent = Ct.apply_seq base [ T.ins 2 "XY"; T.del ~pos:0 ~len:1 ] in
  Alcotest.(check string) "concurrent state" "bXYcdef" (T.to_string after_concurrent);
  Alcotest.(check string) "intention preserved" "XY"
    (T.to_string (Ct.apply_seq after_concurrent ops))

let suite =
  [ Alcotest.test_case "paper's h(a) = f(a) || g(a)" `Quick paper_h_example
  ; Alcotest.test_case "side algebra" `Quick side_algebra
  ; Alcotest.test_case "transform_op vs sequence with split" `Quick transform_op_vs_sequence
  ; Alcotest.test_case "empty sequences" `Quick empty_cases
  ; Alcotest.test_case "three children keep merge order" `Quick three_children_order
  ; Alcotest.test_case "cross handles splits" `Quick cross_with_splits
  ; Alcotest.test_case "incremental merge = batch merge" `Quick merge_incremental_equivalence
  ; qtest ~count:500 "random merges: incremental = batch" gen_children merge_random
  ]
