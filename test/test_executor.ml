(* The executor: domains + per-task threads, reuse across runs, shutdown
   semantics. *)

open Test_support
module E = Sm_core.Executor

let runs_jobs () =
  let e = E.create ~domains:1 () in
  let n = 50 in
  let counter = Atomic.make 0 in
  let m = Mutex.create () and cv = Condition.create () in
  for _ = 1 to n do
    E.submit e (fun () ->
        if Atomic.fetch_and_add counter 1 = n - 1 then begin
          Mutex.lock m;
          Condition.broadcast cv;
          Mutex.unlock m
        end)
  done;
  Mutex.lock m;
  while Atomic.get counter < n do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  E.shutdown e;
  Alcotest.(check int) "all jobs ran" n (Atomic.get counter)

let shutdown_waits () =
  let e = E.create ~domains:2 () in
  let slow_done = Atomic.make false in
  E.submit e (fun () ->
      Thread.delay 0.02;
      Atomic.set slow_done true);
  E.shutdown e;
  check_bool "shutdown joined the slow job" (Atomic.get slow_done)

let submit_after_shutdown () =
  let e = E.create ~domains:1 () in
  E.shutdown e;
  Alcotest.check_raises "submit refused"
    (Invalid_argument "Executor.submit: executor is shut down") (fun () -> E.submit e (fun () -> ()))

let domain_count () =
  let e = E.create ~domains:3 () in
  Alcotest.(check int) "count" 3 (E.domain_count e);
  E.shutdown e;
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Executor.create: domains must be >= 1") (fun () ->
      ignore (E.create ~domains:0 ()))

let blocked_jobs_do_not_starve () =
  (* one domain; a job that blocks until a later job releases it — requires
     thread-per-task, a pool would deadlock *)
  let e = E.create ~domains:1 () in
  let gate = Sm_util.Bqueue.create () in
  let released = Atomic.make false in
  E.submit e (fun () ->
      (match Sm_util.Bqueue.pop gate with Some () -> () | None -> ());
      Atomic.set released true);
  E.submit e (fun () -> Sm_util.Bqueue.push gate ());
  E.shutdown e;
  check_bool "blocked job released by a later one" (Atomic.get released)

let reuse_across_runs () =
  let e = E.create ~domains:1 () in
  for round = 1 to 30 do
    let v =
      Sm_core.Runtime.run ~executor:e (fun ctx ->
          let total = Atomic.make 0 in
          for _ = 1 to 5 do
            ignore (Sm_core.Runtime.spawn ctx (fun _ -> ignore (Atomic.fetch_and_add total 1)))
          done;
          Sm_core.Runtime.merge_all ctx;
          Atomic.get total)
    in
    Alcotest.(check int) (Printf.sprintf "round %d" round) 5 v
  done;
  E.shutdown e

let suite =
  [ Alcotest.test_case "runs all submitted jobs" `Quick runs_jobs
  ; Alcotest.test_case "shutdown waits for jobs" `Quick shutdown_waits
  ; Alcotest.test_case "submit after shutdown refused" `Quick submit_after_shutdown
  ; Alcotest.test_case "domain count and bounds" `Quick domain_count
  ; Alcotest.test_case "blocked jobs never starve later ones" `Quick blocked_jobs_do_not_starve
  ; Alcotest.test_case "executor reused across 30 runs" `Quick reuse_across_runs
  ]
