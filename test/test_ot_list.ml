(* List OT: the paper's Figures 1 and 2, the full IT matrix, and TP1
   convergence under random concurrent operations. *)

open Test_support

module L = Sm_ot.Op_list.Make (Str_elt)
module Conv = Sm_ot.Convergence.Make (L)
module C = Sm_ot.Control.Make (L)

let state = Alcotest.testable L.pp_state L.equal_state

(* Figure 1: applying the peer's operation *without* transformation makes the
   two sites diverge: A ends with [d;a;b], B with [d;a;c]. *)
let fig1_divergence () =
  let base = [ "a"; "b"; "c" ] in
  let op_a = L.del 2 and op_b = L.ins 0 "d" in
  let site_a = L.apply (L.apply base op_a) op_b in
  let site_b = L.apply (L.apply base op_b) op_a in
  Alcotest.check state "site A" [ "d"; "a"; "b" ] site_a;
  Alcotest.check state "site B" [ "d"; "a"; "c" ] site_b;
  check_bool "diverged" (not (L.equal_state site_a site_b))

(* Figure 2: with OT, del(2) transformed against ins(0,d) becomes del(3) and
   both sites converge to [d;a;b]. *)
let fig2_convergence () =
  let base = [ "a"; "b"; "c" ] in
  let op_a = L.del 2 and op_b = L.ins 0 "d" in
  let op_b' = L.transform op_b ~against:op_a ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) in
  let op_a' = L.transform op_a ~against:op_b ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) in
  Alcotest.(check (list (testable L.pp_op ( = )))) "del shifted" [ L.del 3 ] op_a';
  let site_a = List.fold_left L.apply (L.apply base op_a) op_b' in
  let site_b = List.fold_left L.apply (L.apply base op_b) op_a' in
  Alcotest.check state "site A" [ "d"; "a"; "b" ] site_a;
  Alcotest.check state "site B converged" site_a site_b

let apply_cases () =
  let base = [ "a"; "b"; "c" ] in
  Alcotest.check state "ins middle" [ "a"; "x"; "b"; "c" ] (L.apply base (L.ins 1 "x"));
  Alcotest.check state "ins append" [ "a"; "b"; "c"; "x" ] (L.apply base (L.ins 3 "x"));
  Alcotest.check state "del head" [ "b"; "c" ] (L.apply base (L.del 0));
  Alcotest.check state "set" [ "a"; "y"; "c" ] (L.apply base (L.set 1 "y"));
  Alcotest.check_raises "ins out of range" (Invalid_argument "Op_list.apply: ins position 4 out of range (len 3)")
    (fun () -> ignore (L.apply base (L.ins 4 "x")));
  Alcotest.check_raises "del out of range" (Invalid_argument "Op_list.apply: del position 3 out of range (len 3)")
    (fun () -> ignore (L.apply base (L.del 3)))

let ops = Alcotest.(list (testable L.pp_op ( = )))

(* Every cell of the IT matrix, pinned by hand. *)
let transform_matrix () =
  let t ?(tie = Sm_ot.Side.uniform Sm_ot.Side.Incoming) a b = L.transform a ~against:b ~tie in
  (* ins vs ins *)
  Alcotest.check ops "ins< ins" [ L.ins 1 "x" ] (t (L.ins 1 "x") (L.ins 3 "y"));
  Alcotest.check ops "ins> ins" [ L.ins 4 "x" ] (t (L.ins 3 "x") (L.ins 1 "y"));
  Alcotest.check ops "ins= ins (incoming wins)" [ L.ins 2 "x" ] (t (L.ins 2 "x") (L.ins 2 "y"));
  Alcotest.check ops "ins= ins (applied wins)" [ L.ins 3 "x" ]
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (L.ins 2 "x") (L.ins 2 "y"));
  (* ins vs del *)
  Alcotest.check ops "ins before del" [ L.ins 1 "x" ] (t (L.ins 1 "x") (L.del 2));
  Alcotest.check ops "ins after del" [ L.ins 2 "x" ] (t (L.ins 3 "x") (L.del 1));
  Alcotest.check ops "ins at del" [ L.ins 2 "x" ] (t (L.ins 2 "x") (L.del 2));
  (* del vs ins *)
  Alcotest.check ops "del before ins" [ L.del 1 ] (t (L.del 1) (L.ins 3 "y"));
  Alcotest.check ops "del at ins" [ L.del 3 ] (t (L.del 2) (L.ins 2 "y"));
  Alcotest.check ops "del after ins" [ L.del 3 ] (t (L.del 2) (L.ins 0 "y"));
  (* del vs del *)
  Alcotest.check ops "del< del" [ L.del 1 ] (t (L.del 1) (L.del 2));
  Alcotest.check ops "del> del" [ L.del 1 ] (t (L.del 2) (L.del 1));
  Alcotest.check ops "del= del drops" [] (t (L.del 2) (L.del 2));
  (* set interactions *)
  Alcotest.check ops "set vs ins shift" [ L.set 3 "x" ] (t (L.set 2 "x") (L.ins 1 "y"));
  Alcotest.check ops "set vs del same drops" [] (t (L.set 2 "x") (L.del 2));
  Alcotest.check ops "set vs del shift" [ L.set 1 "x" ] (t (L.set 2 "x") (L.del 0));
  Alcotest.check ops "set= set incoming wins" [ L.set 1 "x" ] (t (L.set 1 "x") (L.set 1 "y"));
  Alcotest.check ops "set= set applied wins" [] (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (L.set 1 "x") (L.set 1 "y"));
  Alcotest.check ops "set<> set" [ L.set 0 "x" ] (t (L.set 0 "x") (L.set 1 "y"));
  Alcotest.check ops "del vs set keeps" [ L.del 1 ] (t (L.del 1) (L.set 1 "y"));
  Alcotest.check ops "ins vs set keeps" [ L.ins 1 "x" ] (t (L.ins 1 "x") (L.set 1 "y"))

(* --- random TP1 / sequence convergence ---------------------------------- *)

let gen_state =
  QCheck2.Gen.(map (List.map string_of_int) (list_size (int_range 0 8) (int_range 0 99)))

let gen_op_for len =
  let open QCheck2.Gen in
  if len = 0 then map (fun x -> L.ins 0 (string_of_int x)) (int_range 100 199)
  else
    frequency
      [ (2, map2 (fun i x -> L.ins i (string_of_int x)) (int_range 0 len) (int_range 100 199))
      ; (2, map (fun i -> L.del i) (int_range 0 (len - 1)))
      ; (1, map2 (fun i x -> L.set i (string_of_int x)) (int_range 0 (len - 1)) (int_range 100 199))
      ]

let gen_pair =
  let open QCheck2.Gen in
  gen_state >>= fun s ->
  let len = List.length s in
  gen_op_for len >>= fun a ->
  gen_op_for len >>= fun b ->
  bool >>= fun a_wins -> return (s, a, b, a_wins)

let tp1_prop (s, a, b, a_wins) = Conv.tp1 ~state:s ~a ~b ~a_wins

let gen_seq_for s =
  (* A coherent sequence: each op generated against the evolving state. *)
  let open QCheck2.Gen in
  int_range 0 6 >>= fun n ->
  let rec go s acc n =
    if n = 0 then return (List.rev acc)
    else
      gen_op_for (List.length s) >>= fun op -> go (L.apply s op) (op :: acc) (n - 1)
  in
  go s [] n

let gen_two_seqs =
  let open QCheck2.Gen in
  gen_state >>= fun s ->
  gen_seq_for s >>= fun left ->
  gen_seq_for s >>= fun right ->
  oneofl [ Sm_ot.Side.uniform Sm_ot.Side.Incoming; Sm_ot.Side.uniform Sm_ot.Side.Applied; Sm_ot.Side.serialization; Sm_ot.Side.flip Sm_ot.Side.serialization ] >>= fun tie -> return (s, left, right, tie)

let seq_prop (s, left, right, tie) = Conv.seqs_converge ~state:s ~left ~right ~tie

(* Merging [x] then [y] need not equal merging [y] then [x] — but both must be
   *valid* serializations: same multiset effects applied without raising. *)
let merge_applies (s, left, right, _tie) =
  let m1 = Conv.merged_state ~state:s ~applied:[] ~children:[ left; right ] in
  let m2 = Conv.merged_state ~state:s ~applied:[] ~children:[ right; left ] in
  ignore m1;
  ignore m2;
  true

let suite =
  [ Alcotest.test_case "figure 1: divergence without OT" `Quick fig1_divergence
  ; Alcotest.test_case "figure 2: convergence with OT" `Quick fig2_convergence
  ; Alcotest.test_case "apply: positional edits" `Quick apply_cases
  ; Alcotest.test_case "IT matrix pinned" `Quick transform_matrix
  ; qtest ~count:2000 "TP1 on random op pairs" gen_pair tp1_prop
  ; qtest ~count:500 "cross converges random sequences" gen_two_seqs seq_prop
  ; qtest ~count:300 "merge serializations always apply" gen_two_seqs merge_applies
  ]
