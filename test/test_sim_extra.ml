(* Additional simulator properties: cross-scheduler equivalence, journal
   boundedness over long runs, netpipe under concurrency pressure, and
   executor-width invariance. *)

open Test_support
module W = Sm_sim.Workload
module Sm = Sm_sim.Sim_spawnmerge
module Np = Sm_sim.Netpipe

let cfg = { W.hosts = 5; messages = 8; ttl = 6; load = 1; mode = W.Hash_destination; topology = W.Full; seed = 21L }

(* the threaded and cooperative schedulers must produce identical digests on
   the same configuration *)
let schedulers_equivalent () =
  let threaded = Sm.run cfg in
  let coop = Sm.run_cooperative cfg in
  Alcotest.(check string) "event digest" threaded.W.event_digest coop.W.event_digest;
  Alcotest.(check string) "order digest" threaded.W.order_digest coop.W.order_digest;
  Alcotest.(check int) "hops" threaded.W.hops coop.W.hops

let executor_width_invariance () =
  let digests =
    List.map
      (fun domains -> ((Sm.run ~domains cfg).W.order_digest : string))
      [ 1; 2; 4 ]
  in
  match digests with
  | d :: rest -> List.iter (fun d' -> Alcotest.(check string) "width invariant" d d') rest
  | [] -> assert false

(* A long simulation must not accumulate unbounded journals in the root
   workspace: truncation after each merge keeps memory flat.  We proxy
   "journal size" by running a config with many cycles and checking it
   completes well inside the timeout — plus the trace accounting's exactness
   guarantees no hop was dropped. *)
let long_run_completes () =
  let long = { W.hosts = 4; messages = 8; ttl = 120; load = 0; mode = W.Ring_destination; topology = W.Full; seed = 2L } in
  let r = Sm.run_cooperative long in
  Alcotest.(check int) "all 960 hops" (W.total_hops long) r.W.hops

(* netpipe: many concurrent clients against one echo server *)
let netpipe_stress () =
  let l = Np.listen () in
  let server =
    Thread.create
      (fun () ->
        let rec accept_loop handlers =
          match Np.accept l with
          | None -> List.iter Thread.join handlers
          | Some conn ->
            let h =
              Thread.create
                (fun () ->
                  let rec loop () =
                    match Np.recv conn with
                    | Some msg ->
                      Np.send conn ("echo:" ^ msg);
                      loop ()
                    | None -> ()
                  in
                  loop ())
                ()
            in
            accept_loop (h :: handlers)
        in
        accept_loop [])
      ()
  in
  let clients =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            let c = Np.connect l in
            for r = 1 to 20 do
              let msg = Printf.sprintf "c%d-%d" i r in
              Np.send c msg;
              match Np.recv c with
              | Some reply -> if reply <> "echo:" ^ msg then failwith "wrong reply"
              | None -> failwith "lost connection"
            done;
            Np.close c)
          ())
  in
  List.iter Thread.join clients;
  Np.shutdown l;
  Thread.join server

(* replay property: under Coop, recording then replaying ANY of these random
   merge_any programs reproduces results even across scheduler flavors *)
module R = Sm_core.Runtime
module Mlist = Sm_mergeable.Mlist.Make (Str_elt)

let krl = Mlist.key ~name:"xreplay-list"
let executor = lazy (Sm_core.Executor.create ())

let racy n ctx =
  let ws = R.workspace ctx in
  Sm_mergeable.Workspace.init ws krl [];
  for i = 0 to n - 1 do
    ignore (R.spawn ctx (fun c -> Mlist.append (R.workspace c) krl (string_of_int i)))
  done;
  let rec drain () = match R.merge_any ctx with Some _ -> drain () | None -> () in
  drain ();
  Mlist.get ws krl

let record_threaded_replay_coop =
  qtest ~count:25 "trace recorded on threads replays under coop"
    QCheck2.Gen.(int_range 1 6)
    (fun n ->
      let trace = R.Trace.create () in
      let recorded = R.run ~executor:(Lazy.force executor) ~record:trace (racy n) in
      let replayed = R.Coop.run ~replay:trace (racy n) in
      recorded = replayed)

(* --- topologies ----------------------------------------------------------- *)

let neighbour_structure () =
  let with_topo topology hosts = { cfg with W.hosts; topology } in
  (* ring: two neighbours, wrapping *)
  Alcotest.(check (list int)) "ring interior" [ 2; 4 ] (W.neighbours (with_topo W.Ring_topology 6) 3);
  Alcotest.(check (list int)) "ring wrap" [ 5; 1 ] (W.neighbours (with_topo W.Ring_topology 6) 0);
  Alcotest.(check (list int)) "two-host ring" [ 1 ] (W.neighbours (with_topo W.Ring_topology 2) 0);
  (* star: leaves see the hub, the hub sees all leaves *)
  Alcotest.(check (list int)) "star leaf" [ 0 ] (W.neighbours (with_topo W.Star 5) 3);
  Alcotest.(check (list int)) "star hub" [ 1; 2; 3; 4 ] (W.neighbours (with_topo W.Star 5) 0);
  (* grid 3x3: corner, edge, centre *)
  let grid9 = with_topo W.Grid 9 in
  Alcotest.(check (list int)) "grid corner" [ 3; 1 ] (W.neighbours grid9 0);
  Alcotest.(check (list int)) "grid centre" [ 1; 7; 3; 5 ] (W.neighbours grid9 4);
  (* full: everyone but self *)
  Alcotest.(check int) "full degree" 5 (List.length (W.neighbours (with_topo W.Full 6) 2));
  check_bool "no self loops" (not (List.mem 2 (W.neighbours (with_topo W.Full 6) 2)));
  (* degenerate single host *)
  Alcotest.(check (list int)) "lonely host" [ 0 ] (W.neighbours (with_topo W.Grid 1) 0)

let all_neighbours_valid =
  qtest ~count:300 "neighbours in range, non-empty, no self (n>1)"
    QCheck2.Gen.(
      pair (int_range 1 30)
        (oneofl [ W.Full; W.Ring_topology; W.Star; W.Grid ]))
    (fun (hosts, topology) ->
      let c = { cfg with W.hosts; topology } in
      List.for_all
        (fun h ->
          let ns = W.neighbours c h in
          ns <> []
          && List.for_all (fun x -> x >= 0 && x < hosts) ns
          && (hosts = 1 || not (List.mem h ns)))
        (List.init hosts Fun.id))

(* every topology conserves hops and stays deterministic under spawn/merge *)
let topologies_complete_and_determine () =
  List.iter
    (fun topology ->
      let c = { cfg with W.topology; hosts = 6; messages = 8; ttl = 6 } in
      let a = Sm.run_cooperative c and b = Sm.run_cooperative c in
      Alcotest.(check int) "hops conserved" (W.total_hops c) a.W.hops;
      Alcotest.(check string) "deterministic" a.W.order_digest b.W.order_digest;
      (* and the conventional baseline processes the same trajectories *)
      let conv = Sm_sim.Sim_conventional.run c in
      Alcotest.(check string) "same trajectories" a.W.event_digest conv.W.event_digest)
    [ W.Full; W.Ring_topology; W.Star; W.Grid ]

let suite =
  [ Alcotest.test_case "threaded = cooperative digests" `Quick schedulers_equivalent
  ; Alcotest.test_case "topologies: neighbour structure" `Quick neighbour_structure
  ; all_neighbours_valid
  ; Alcotest.test_case "topologies: conservation + determinism" `Quick topologies_complete_and_determine
  ; Alcotest.test_case "executor width invariance" `Quick executor_width_invariance
  ; Alcotest.test_case "long run stays bounded" `Quick long_run_completes
  ; Alcotest.test_case "netpipe: 8 clients x 20 echoes" `Quick netpipe_stress
  ; record_threaded_replay_coop
  ]
