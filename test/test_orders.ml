(* The order-processing workload: conservation invariants, equivalence with
   a sequential model, and run-to-run determinism. *)

open Test_support
module O = Sm_sim.Orders

let executor = lazy (Sm_core.Executor.create ())
let run c = O.run ~executor:(Lazy.force executor) c

(* Products are owned by one worker each, so the outcome must equal the
   obvious sequential model: process each product's orders in stream order. *)
let model (c : O.config) =
  let stock = Array.make c.products c.initial_stock in
  let revenue = ref 0 and sold = ref 0 and filled = ref 0 and rejected = ref 0 in
  List.iter
    (fun (o : O.order) ->
      if stock.(o.product) >= o.qty then begin
        stock.(o.product) <- stock.(o.product) - o.qty;
        revenue := !revenue + (o.qty * o.price_cents);
        sold := !sold + o.qty;
        incr filled
      end
      else incr rejected)
    (O.generate_orders c);
  (!revenue, !sold, !filled, !rejected, Array.fold_left ( + ) 0 stock)

let conservation (c : O.config) (r : O.report) =
  r.units_sold + r.stock_remaining = c.products * c.initial_stock
  && r.orders_filled + r.orders_rejected = c.orders
  && r.audit_length = c.orders

let default_run () =
  let c = O.default in
  let r = run c in
  check_bool "conservation" (conservation c r);
  let revenue, sold, filled, rejected, remaining = model c in
  Alcotest.(check int) "revenue" revenue r.O.revenue_cents;
  Alcotest.(check int) "sold" sold r.O.units_sold;
  Alcotest.(check int) "filled" filled r.O.orders_filled;
  Alcotest.(check int) "rejected" rejected r.O.orders_rejected;
  Alcotest.(check int) "remaining" remaining r.O.stock_remaining;
  check_bool "some orders were rejected (stock pressure)" (r.O.orders_rejected > 0)

let gen_config =
  QCheck2.Gen.(
    let* products = int_range 1 6 in
    let* initial_stock = int_range 0 30 in
    let* orders = int_range 0 60 in
    let* workers = int_range 1 5 in
    let* batch = int_range 1 8 in
    let* seed = int_range 1 10_000 in
    return
      { O.products; initial_stock; orders; workers; batch; seed = Int64.of_int seed })

let matches_model =
  qtest ~count:60 "random configs: runtime = sequential model" gen_config (fun c ->
      let r = run c in
      conservation c r
      && model c = (r.O.revenue_cents, r.O.units_sold, r.O.orders_filled, r.O.orders_rejected, r.O.stock_remaining))

let deterministic_audit () =
  let c = { O.default with O.orders = 120; workers = 3 } in
  let a = run c and b = run c in
  Alcotest.(check string) "audit digest stable" a.O.audit_digest b.O.audit_digest;
  Alcotest.(check int) "audit length" c.O.orders a.O.audit_length

let bad_configs () =
  Alcotest.check_raises "zero workers" (Invalid_argument "Orders: workers must be positive")
    (fun () -> ignore (O.run { O.default with O.workers = 0 }));
  Alcotest.check_raises "zero batch" (Invalid_argument "Orders: batch must be positive") (fun () ->
      ignore (O.run { O.default with O.batch = 0 }))

let suite =
  [ Alcotest.test_case "default config matches model" `Quick default_run
  ; matches_model
  ; Alcotest.test_case "audit log deterministic" `Quick deterministic_audit
  ; Alcotest.test_case "config validation" `Quick bad_configs
  ]
