(* The Spawn/Merge runtime: the paper's Listings 1-4 behaviours, determinism
   under adversarial thread timing, sync/clone/abort/validation semantics,
   and failure handling. *)

open Test_support
module R = Sm_core.Runtime
module Detcheck = Sm_core.Detcheck
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Str_elt)
module Mcounter = Sm_mergeable.Mcounter
module Mregister = Sm_mergeable.Mregister.Make (Str_elt)
module Mqueue = Sm_mergeable.Mqueue.Make (Int_elt)

(* Module-level keys so digests are comparable across runs. *)
let kl = Mlist.key ~name:"list"
let kc = Mcounter.key ~name:"counter"
let kr = Mregister.key ~name:"register"
let kq = Mqueue.key ~name:"queue"

let ms n = Thread.delay (float_of_int n /. 1000.0)

(* Listing 1: child appends 5, parent appends 4, MergeAllFromSet, print
   [1;2;3;4;5]. *)
let listing1 () =
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kl [ "1"; "2"; "3" ];
        let t = R.spawn ctx (fun child -> Mlist.append (R.workspace child) kl "5") in
        Mlist.append ws kl "4";
        R.merge_all_from_set ctx [ t ];
        Mlist.get ws kl)
  in
  Alcotest.(check (list string)) "listing 1" [ "1"; "2"; "3"; "4"; "5" ] result

(* Children are merged in creation order even when they finish in reverse
   temporal order (staggered sleeps). *)
let merge_all_creation_order () =
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kl [];
        for i = 0 to 4 do
          ignore
            (R.spawn ctx (fun child ->
                 ms ((5 - i) * 4);
                 Mlist.append (R.workspace child) kl (string_of_int i)))
        done;
        R.merge_all ctx;
        Mlist.get ws kl)
  in
  Alcotest.(check (list string)) "creation order" [ "0"; "1"; "2"; "3"; "4" ] result

let merge_all_from_set_argument_order () =
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kl [];
        let handles =
          List.init 3 (fun i ->
              R.spawn ctx (fun child -> Mlist.append (R.workspace child) kl (string_of_int i)))
        in
        R.merge_all_from_set ctx (List.rev handles);
        Mlist.get ws kl)
  in
  Alcotest.(check (list string)) "argument order" [ "2"; "1"; "0" ] result

let merge_any_drains_children () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      for i = 1 to 3 do
        ignore (R.spawn ctx (fun child -> Mcounter.add (R.workspace child) kc i))
      done;
      let merged = ref 0 in
      let rec drain () =
        match R.merge_any ctx with
        | Some h ->
          incr merged;
          check_bool "merged child is retired" (R.status h = R.Retired);
          drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check int) "three merges" 3 !merged;
      Alcotest.(check int) "all contributions" 6 (Mcounter.get ws kc));
  Alcotest.(check unit) "done" () ()

let merge_any_empty_never_blocks () =
  R.run (fun ctx ->
      Alcotest.(check bool) "no children" false (R.has_children ctx);
      check_bool "merge_any" (R.merge_any ctx = None);
      check_bool "merge_any_from_set []" (R.merge_any_from_set ctx [] = None))

(* Listing 4's skeleton: a child loops on sync, accumulating both its own and
   the parent's increments; parent merges each round. *)
let sync_roundtrips () =
  let rounds = 4 in
  let observed = ref [] in
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      ignore
        (R.spawn ctx (fun child ->
             let cws = R.workspace child in
             for _ = 1 to rounds do
               Mcounter.incr cws kc;
               (match R.sync child with
               | Ok () -> observed := Mcounter.get cws kc :: !observed
               | Error _ -> Alcotest.fail "unexpected sync refusal")
             done));
      for _ = 1 to rounds do
        Mcounter.add ws kc 10;
        R.merge_all ctx
      done;
      R.merge_all ctx;
      Alcotest.(check int) "total" 44 (Mcounter.get ws kc));
  (* after each sync the child sees parent's 10s plus its own 1s *)
  Alcotest.(check (list int)) "child views" [ 11; 22; 33; 44 ] (List.rev !observed)

(* The timing-dependent mutex example from Section II.C: with Spawn/Merge the
   result is [1;2;3;4;5] no matter how long "DoSomething" takes. *)
let no_timing_dependence () =
  let run_with_delay d =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kl [ "1"; "2"; "3" ];
        let t = R.spawn ctx (fun child -> Mlist.append (R.workspace child) kl "5") in
        ms d;
        Mlist.append ws kl "4";
        R.merge_all_from_set ctx [ t ];
        Mlist.get ws kl)
  in
  Alcotest.(check (list string)) "no delay" [ "1"; "2"; "3"; "4"; "5" ] (run_with_delay 0);
  Alcotest.(check (list string)) "long DoSomething" [ "1"; "2"; "3"; "4"; "5" ] (run_with_delay 30)

let conflicting_registers_deterministic () =
  let program ctx =
    let ws = R.workspace ctx in
    Ws.init ws kr "initial";
    ignore (R.spawn ctx (fun c -> ms 7; Mregister.set (R.workspace c) kr "child-0"));
    ignore (R.spawn ctx (fun c -> Mregister.set (R.workspace c) kr "child-1"));
    R.merge_all ctx;
    Alcotest.(check string) "later creation wins" "child-1" (Mregister.get ws kr)
  in
  R.run program

let queue_merge_order () =
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kq [];
        ignore (R.spawn ctx (fun c -> ms 10; Mqueue.push (R.workspace c) kq 1));
        ignore (R.spawn ctx (fun c -> Mqueue.push (R.workspace c) kq 2));
        Mqueue.push ws kq 0;
        R.merge_all ctx;
        Mqueue.get ws kq)
  in
  Alcotest.(check (list int)) "parent then children in order" [ 0; 1; 2 ] result

let abort_discards () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 100;
      let errors = ref [] in
      let h =
        R.spawn ctx (fun child ->
            Mcounter.add (R.workspace child) kc 1;
            (match R.sync child with
            | Error R.Aborted -> errors := `First :: !errors
            | Ok () | Error R.Validation_failed -> Alcotest.fail "expected abort");
            (* keep going; still aborted *)
            Mcounter.add (R.workspace child) kc 1;
            match R.sync child with
            | Error R.Aborted -> errors := `Second :: !errors
            | Ok () | Error R.Validation_failed -> Alcotest.fail "expected abort")
      in
      R.abort ctx h;
      R.merge_all ctx;
      R.merge_all ctx;
      R.merge_all ctx;
      Alcotest.(check int) "changes discarded" 100 (Mcounter.get ws kc);
      Alcotest.(check int) "child saw both refusals" 2 (List.length !errors))

let validation_rollback () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let refused = ref false in
      let h =
        R.spawn ctx (fun child ->
            Mcounter.add (R.workspace child) kc 999;
            (match R.sync child with
            | Error R.Validation_failed -> refused := true
            | Ok () | Error R.Aborted -> Alcotest.fail "expected validation failure");
            (* post-rebase the child is on fresh parent data; a small change
               now passes validation *)
            Mcounter.add (R.workspace child) kc 1)
      in
      let small ws = Mcounter.get ws kc < 100 in
      R.merge_all_from_set ~validate:small ctx [ h ];
      Alcotest.(check int) "big change rolled back" 0 (Mcounter.get ws kc);
      R.merge_all ~validate:small ctx;
      Alcotest.(check int) "small change accepted" 1 (Mcounter.get ws kc);
      check_bool "child observed refusal" !refused)

let failed_child_discarded () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let h =
        R.spawn ctx (fun child ->
            Mcounter.add (R.workspace child) kc 5;
            failwith "task blew up")
      in
      R.merge_all ctx;
      Alcotest.(check int) "changes discarded" 0 (Mcounter.get ws kc);
      check_bool "status failed->retired" (R.status h = R.Retired);
      match R.error h with
      | Some (Failure msg) -> Alcotest.(check string) "exn preserved" "task blew up" msg
      | Some _ | None -> Alcotest.fail "expected recorded failure")

(* A child spawning grandchildren: completing the child implicitly merges
   them, and the parent sees the whole subtree's contributions. *)
let grandchildren_merge_upward () =
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kc 0;
        ignore
          (R.spawn ctx (fun child ->
               Mcounter.add (R.workspace child) kc 1;
               for _ = 1 to 3 do
                 ignore (R.spawn child (fun g -> Mcounter.add (R.workspace g) kc 10))
               done
               (* no explicit merge: completion runs the implicit MergeAll *)));
        R.merge_all ctx;
        Mcounter.get ws kc)
  in
  Alcotest.(check int) "subtree total" 31 result

let clone_creates_sibling () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      ignore
        (R.spawn ctx (fun accept ->
             (* pristine: clones allowed *)
             ignore (R.clone accept (fun conn -> Mcounter.add (R.workspace conn) kc 7))));
      (* both the accept task and the cloned sibling are children of root *)
      let merged = ref 0 in
      let rec drain () = match R.merge_any ctx with Some _ -> incr merged; drain () | None -> () in
      drain ();
      Alcotest.(check int) "two children retired" 2 !merged;
      Alcotest.(check int) "clone's work merged" 7 (Mcounter.get ws kc))

let clone_requires_pristine () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let saw = ref None in
      ignore
        (R.spawn ctx (fun child ->
             Mcounter.incr (R.workspace child) kc;
             match R.clone child (fun _ -> ()) with
             | (_ : R.handle) -> saw := Some `Allowed
             | exception Invalid_argument _ -> saw := Some `Refused));
      R.merge_all ctx;
      check_bool "clone with dirty workspace refused" (!saw = Some `Refused))

let root_restrictions () =
  R.run (fun ctx ->
      check_bool "sync from root" (match R.sync ctx with _ -> false | exception Invalid_argument _ -> true);
      check_bool "clone from root"
        (match R.clone ctx (fun _ -> ()) with _ -> false | exception Invalid_argument _ -> true))

let not_a_child () =
  R.run (fun ctx ->
      let h = R.spawn ctx (fun _ -> ()) in
      ignore
        (R.spawn ctx (fun other ->
             match R.merge_all_from_set other [ h ] with
             | () -> Alcotest.fail "expected Not_a_child"
             | exception R.Not_a_child _ -> ()));
      R.merge_all ctx)

(* Determinism oracle: a program full of scheduling noise (sleeps, many
   children, counter + list + register writes) digests identically across
   repeated runs. *)
let oracle_program ctx =
  let ws = R.workspace ctx in
  Ws.init ws kl [];
  Ws.init ws kc 0;
  Ws.init ws kr "r0";
  for i = 0 to 7 do
    ignore
      (R.spawn ctx (fun child ->
           let cws = R.workspace child in
           ms (7 - i);
           Mlist.append cws kl (string_of_int i);
           Mcounter.add cws kc i;
           Mregister.set cws kr (Printf.sprintf "r%d" i)))
  done;
  R.merge_all ctx

let deterministic_under_noise () =
  check_bool "digests agree across runs" (Detcheck.deterministic ~runs:4 oracle_program)

(* a sleep-free variant of the oracle program for the cross-scheduler check *)
let oracle_program_pure ctx =
  let ws = R.workspace ctx in
  Ws.init ws kl [];
  Ws.init ws kc 0;
  for i = 0 to 7 do
    ignore
      (R.spawn ctx (fun child ->
           let cws = R.workspace child in
           Mlist.append cws kl (string_of_int i);
           Mcounter.add cws kc i))
  done;
  R.merge_all ctx

let deterministic_across_schedulers () =
  check_bool "threaded digests = cooperative digest"
    (Detcheck.cross_scheduler ~runs:3 oracle_program_pure)

let stress_many_children () =
  let n = 60 in
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kc 0;
        for _ = 1 to n do
          ignore (R.spawn ctx (fun c -> Mcounter.incr (R.workspace c) kc))
        done;
        R.merge_all ctx;
        Mcounter.get ws kc)
  in
  Alcotest.(check int) "every increment merged" n result

let names_are_hierarchical () =
  R.run (fun ctx ->
      Alcotest.(check string) "root name" "root" (R.task_name ctx);
      let first = R.spawn ctx (fun child ->
          Alcotest.(check string) "child sees own name" "root/0" (R.task_name child);
          let grand = R.spawn child (fun _ -> ()) in
          Alcotest.(check string) "grandchild" "root/0/0" (R.handle_name grand))
      in
      let second = R.spawn ctx (fun _ -> ()) in
      Alcotest.(check string) "first child" "root/0" (R.handle_name first);
      Alcotest.(check string) "second child" "root/1" (R.handle_name second);
      check_bool "has children" (R.has_children ctx);
      R.merge_all ctx;
      check_bool "none left" (not (R.has_children ctx)))

let run_propagates_body_exception () =
  check_bool "exception surfaces"
    (match R.run (fun _ -> failwith "root boom") with
    | () -> false
    | exception Failure msg -> msg = "root boom")

let duplicate_handles_in_set () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let h = R.spawn ctx (fun c -> Mcounter.incr (R.workspace c) kc) in
      (* the same handle three times must merge exactly once *)
      R.merge_all_from_set ctx [ h; h; h ];
      Alcotest.(check int) "merged once" 1 (Mcounter.get ws kc);
      check_bool "retired" (R.status h = R.Retired);
      (* retired handles are silently skipped *)
      R.merge_all_from_set ctx [ h ])

let subset_merge_leaves_others () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let gate = Sm_util.Bqueue.create () in
      let slow =
        R.spawn ctx (fun c ->
            (match Sm_util.Bqueue.pop gate with Some () -> () | None -> ());
            Mcounter.add (R.workspace c) kc 100)
      in
      let fast = R.spawn ctx (fun c -> Mcounter.incr (R.workspace c) kc) in
      (* merging only [fast] must not wait for or touch [slow] *)
      R.merge_all_from_set ctx [ fast ];
      Alcotest.(check int) "fast merged" 1 (Mcounter.get ws kc);
      check_bool "slow still running" (R.status slow = R.Running);
      Sm_util.Bqueue.push gate ();
      R.merge_all ctx;
      Alcotest.(check int) "slow merged later" 101 (Mcounter.get ws kc))

let deep_hierarchy () =
  (* four generations; each level contributes, everything flows to the root *)
  let result =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kc 0;
        let rec descend ctx depth =
          Mcounter.add (R.workspace ctx) kc 1;
          if depth > 0 then begin
            ignore (R.spawn ctx (fun child -> descend child (depth - 1)));
            ignore (R.spawn ctx (fun child -> descend child (depth - 1)))
          end
          (* implicit merge_all collects the children *)
        in
        ignore (R.spawn ctx (fun child -> descend child 3));
        R.merge_all ctx;
        Mcounter.get ws kc)
  in
  (* a full binary tree of depth 3 rooted at one task: 1+2+4+8 = 15 *)
  Alcotest.(check int) "all generations merged" 15 result

let validate_on_merge_any () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      ignore (R.spawn ctx (fun c -> Mcounter.add (R.workspace c) kc 7));
      let validate w = Mcounter.get w kc < 5 in
      (match R.merge_any ~validate ctx with
      | Some h -> check_bool "returned the refused child" (R.status h = R.Retired)
      | None -> Alcotest.fail "expected a merge");
      Alcotest.(check int) "rejected by validation" 0 (Mcounter.get ws kc))

let abort_sync_waiting_child () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let outcome = ref None in
      let h =
        R.spawn ctx (fun child ->
            Mcounter.incr (R.workspace child) kc;
            outcome := Some (R.sync child))
      in
      (* let the child reach sync, then abort it while parked *)
      let rec wait_parked () = if R.status h <> R.Sync_waiting then (Thread.yield (); wait_parked ()) in
      wait_parked ();
      R.abort ctx h;
      R.merge_all ctx;
      R.merge_all ctx;
      Alcotest.(check int) "discarded" 0 (Mcounter.get ws kc);
      check_bool "child saw the abort" (!outcome = Some (Error R.Aborted)))

let merge_any_from_set_subset_only () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let a = R.spawn ctx (fun c -> Mcounter.add (R.workspace c) kc 1) in
      let b =
        R.spawn ctx (fun c ->
            Thread.delay 0.005;
            Mcounter.add (R.workspace c) kc 10)
      in
      (match R.merge_any_from_set ctx [ a ] with
      | Some h -> check_bool "merged a" (h == a)
      | None -> Alcotest.fail "expected a");
      (* b untouched by the subset call *)
      check_bool "b live" (R.status b <> R.Retired);
      R.merge_all ctx;
      Alcotest.(check int) "both merged in the end" 11 (Mcounter.get ws kc))

let same_digest_across_domain_counts () =
  let digests =
    List.map (fun domains -> Detcheck.digest_of_run ~domains oracle_program) [ 1; 2; 3 ]
  in
  match digests with
  | d :: rest -> List.iter (fun d' -> Alcotest.(check string) "domain-count invariant" d d') rest
  | [] -> assert false

let suite =
  [ Alcotest.test_case "listing 1 quickstart" `Quick listing1
  ; Alcotest.test_case "merge_all: creation order beats timing" `Quick merge_all_creation_order
  ; Alcotest.test_case "merge_all_from_set: argument order" `Quick merge_all_from_set_argument_order
  ; Alcotest.test_case "merge_any: drains children" `Quick merge_any_drains_children
  ; Alcotest.test_case "merge_any: never blocks on nothing" `Quick merge_any_empty_never_blocks
  ; Alcotest.test_case "sync: listing 4 roundtrips" `Quick sync_roundtrips
  ; Alcotest.test_case "section II.C: no timing dependence" `Quick no_timing_dependence
  ; Alcotest.test_case "registers: deterministic conflict winner" `Quick conflicting_registers_deterministic
  ; Alcotest.test_case "queues: merge-order pushes" `Quick queue_merge_order
  ; Alcotest.test_case "abort: changes discarded, child notified" `Quick abort_discards
  ; Alcotest.test_case "validate: transactional rollback" `Quick validation_rollback
  ; Alcotest.test_case "failure: exception discards task" `Quick failed_child_discarded
  ; Alcotest.test_case "grandchildren: implicit merge_all" `Quick grandchildren_merge_upward
  ; Alcotest.test_case "clone: sibling creation" `Quick clone_creates_sibling
  ; Alcotest.test_case "clone: requires pristine workspace" `Quick clone_requires_pristine
  ; Alcotest.test_case "root: sync/clone rejected" `Quick root_restrictions
  ; Alcotest.test_case "merge: foreign handles rejected" `Quick not_a_child
  ; Alcotest.test_case "determinism oracle under noise" `Slow deterministic_under_noise
  ; Alcotest.test_case "determinism across schedulers" `Quick deterministic_across_schedulers
  ; Alcotest.test_case "stress: 60 children" `Quick stress_many_children
  ; Alcotest.test_case "run: body exception propagates" `Quick run_propagates_body_exception
  ; Alcotest.test_case "task names are hierarchical and stable" `Quick names_are_hierarchical
  ; Alcotest.test_case "from_set: duplicate handles merge once" `Quick duplicate_handles_in_set
  ; Alcotest.test_case "from_set: subset leaves others running" `Quick subset_merge_leaves_others
  ; Alcotest.test_case "hierarchy: four generations" `Quick deep_hierarchy
  ; Alcotest.test_case "merge_any: validation applies" `Quick validate_on_merge_any
  ; Alcotest.test_case "abort: reaches a parked child" `Quick abort_sync_waiting_child
  ; Alcotest.test_case "merge_any_from_set: stays in subset" `Quick merge_any_from_set_subset_only
  ; Alcotest.test_case "digests invariant across domain counts" `Slow same_digest_across_domain_counts
  ]
