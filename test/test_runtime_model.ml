(* Model-based integration testing: random Spawn/Merge programs executed on
   the real (threaded) runtime must match a trivial sequential model, under
   scheduling noise and injected task failures.

   The model of [merge_all] over children created in order c0..cn-1, each
   with an operation script, is: parent ops first, then each non-failing
   child's ops serialized in creation order (with positional ties resolved
   earlier-first and value conflicts later-wins — but the scripts below are
   chosen conflict-free on registers to keep the model obvious: appends and
   adds only). *)

open Test_support
module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Int_elt)
module Mcounter = Sm_mergeable.Mcounter

let klist = Mlist.key ~name:"model-list"
let kcount = Mcounter.key ~name:"model-counter"

type action =
  | Append of int
  | Add of int
  | Sleep_a_bit

type child_spec =
  { actions : action list
  ; fails : bool
  }

type program =
  { parent_actions : action list
  ; children : child_spec list
  }

(* One shared executor for the whole suite: these properties run hundreds of
   programs. *)
let executor = lazy (Sm_core.Executor.create ())

let run_real program =
  R.run ~executor:(Lazy.force executor) (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws klist [];
      Ws.init ws kcount 0;
      List.iter
        (fun spec ->
          ignore
            (R.spawn ctx (fun child ->
                 let cws = R.workspace child in
                 List.iter
                   (function
                     | Append x -> Mlist.append cws klist x
                     | Add n -> Mcounter.add cws kcount n
                     | Sleep_a_bit -> Thread.delay 0.001)
                   spec.actions;
                 if spec.fails then failwith "injected fault")))
        program.children;
      List.iter
        (function
          | Append x -> Mlist.append ws klist x
          | Add n -> Mcounter.add ws kcount n
          | Sleep_a_bit -> Thread.delay 0.001)
        program.parent_actions;
      R.merge_all ctx;
      (Mlist.get ws klist, Mcounter.get ws kcount))

(* The sequential model: parent first, then surviving children in creation
   order.  Appends commute into concatenation under the serialization
   policy; adds sum. *)
let run_model program =
  let apply (l, c) actions =
    List.fold_left
      (fun (l, c) -> function
        | Append x -> (l @ [ x ], c)
        | Add n -> (l, c + n)
        | Sleep_a_bit -> (l, c))
      (l, c) actions
  in
  let state = apply ([], 0) program.parent_actions in
  List.fold_left
    (fun state spec -> if spec.fails then state else apply state spec.actions)
    state program.children

let gen_action =
  QCheck2.Gen.(
    frequency
      [ (3, map (fun x -> Append x) (int_range 0 99))
      ; (3, map (fun n -> Add n) (int_range (-5) 20))
      ; (1, return Sleep_a_bit)
      ])

let gen_child =
  QCheck2.Gen.(
    map2
      (fun actions fails -> { actions; fails })
      (list_size (int_range 0 5) gen_action)
      (frequency [ (4, return false); (1, return true) ]))

let gen_program =
  QCheck2.Gen.(
    map2
      (fun parent_actions children -> { parent_actions; children })
      (list_size (int_range 0 4) gen_action)
      (list_size (int_range 0 6) gen_child))

let real_matches_model =
  qtest ~count:150 "random programs: threaded runtime = sequential model" gen_program (fun p ->
      run_real p = run_model p)

let runtime_is_deterministic =
  qtest ~count:40 "random programs: two executions agree" gen_program (fun p ->
      run_real p = run_real p)

(* Sync-based variant: children deliver their work in rounds; the model is
   rounds of (parent, then children in creation order). *)
let run_real_sync ~rounds ~children =
  R.run ~executor:(Lazy.force executor) (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws klist [];
      Ws.init ws kcount 0;
      List.iteri
        (fun i _ ->
          ignore
            (R.spawn ctx (fun child ->
                 let cws = R.workspace child in
                 for r = 1 to rounds do
                   Mlist.append cws klist ((100 * r) + i);
                   Mcounter.incr cws kcount;
                   ignore (R.sync child)
                 done)))
        (List.init children Fun.id);
      for r = 1 to rounds do
        Mlist.append ws klist r;
        R.merge_all ctx
      done;
      R.merge_all ctx;
      (Mlist.get ws klist, Mcounter.get ws kcount))

let run_model_sync ~rounds ~children =
  let l = ref [] in
  for r = 1 to rounds do
    l := !l @ [ r ];
    for i = 0 to children - 1 do
      l := !l @ [ (100 * r) + i ]
    done
  done;
  (!l, rounds * children)

let sync_rounds_match =
  qtest ~count:25 "sync rounds: runtime = model"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 5))
    (fun (rounds, children) -> run_real_sync ~rounds ~children = run_model_sync ~rounds ~children)

let suite = [ real_matches_model; runtime_is_deterministic; sync_rounds_match ]
