open Test_support
module U = Sm_util

let hmap_basics () =
  let k1 : int U.Hmap.key = U.Hmap.Key.create ~name:"k1" in
  let k2 : string U.Hmap.key = U.Hmap.Key.create ~name:"k2" in
  let k3 : int U.Hmap.key = U.Hmap.Key.create ~name:"k1" in
  let m = U.Hmap.(empty |> add k1 42 |> add k2 "hi") in
  Alcotest.(check (option int)) "find k1" (Some 42) (U.Hmap.find k1 m);
  Alcotest.(check (option string)) "find k2" (Some "hi") (U.Hmap.find k2 m);
  Alcotest.(check (option int)) "same-name key does not alias" None (U.Hmap.find k3 m);
  Alcotest.(check int) "cardinal" 2 (U.Hmap.cardinal m);
  let m = U.Hmap.add k1 7 m in
  Alcotest.(check int) "replace keeps cardinal" 2 (U.Hmap.cardinal m);
  Alcotest.(check int) "replaced" 7 (U.Hmap.get k1 m);
  let m = U.Hmap.remove k1 m in
  check_bool "removed" (not (U.Hmap.mem k1 m));
  Alcotest.check_raises "get missing raises" Not_found (fun () -> ignore (U.Hmap.get k1 m))

let hmap_fold_order () =
  let ks = List.init 5 (fun i -> (U.Hmap.Key.create ~name:(string_of_int i) : int U.Hmap.key)) in
  let m = List.fold_left (fun m k -> U.Hmap.add k 0 m) U.Hmap.empty (List.rev ks) in
  let names = List.map (fun (U.Hmap.B (k, _)) -> U.Hmap.Key.name k) (U.Hmap.bindings m) in
  Alcotest.(check (list string)) "creation order" [ "0"; "1"; "2"; "3"; "4" ] names

let vec_basics () =
  let v = U.Vec.create () in
  Alcotest.(check int) "empty" 0 (U.Vec.length v);
  for i = 0 to 99 do
    U.Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (U.Vec.length v);
  Alcotest.(check int) "get" 57 (U.Vec.get v 57);
  Alcotest.(check (list int)) "slice" [ 97; 98; 99 ] (U.Vec.slice v ~from:97);
  Alcotest.(check (list int)) "slice all = to_list" (U.Vec.to_list v) (U.Vec.slice v ~from:0);
  Alcotest.(check (list int)) "slice at end empty" [] (U.Vec.slice v ~from:100);
  let w = U.Vec.copy v in
  U.Vec.push w (-1);
  Alcotest.(check int) "copy isolated" 100 (U.Vec.length v);
  U.Vec.clear v;
  Alcotest.(check int) "cleared" 0 (U.Vec.length v);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (U.Vec.get v 0))

let vec_of_list_roundtrip =
  qtest "Vec.of_list/to_list roundtrip" QCheck2.Gen.(list int) (fun xs ->
      U.Vec.to_list (U.Vec.of_list xs) = xs)

let rng_deterministic () =
  let a = U.Det_rng.create ~seed:42L and b = U.Det_rng.create ~seed:42L in
  let xs = List.init 50 (fun _ -> U.Det_rng.int64 a) in
  let ys = List.init 50 (fun _ -> U.Det_rng.int64 b) in
  check_bool "same seed, same stream" (xs = ys);
  let c = U.Det_rng.create ~seed:43L in
  let zs = List.init 50 (fun _ -> U.Det_rng.int64 c) in
  check_bool "different seed differs" (xs <> zs)

let rng_split_independent () =
  let a = U.Det_rng.create ~seed:7L in
  let b = U.Det_rng.split a in
  let xs = List.init 20 (fun _ -> U.Det_rng.int64 a) in
  let ys = List.init 20 (fun _ -> U.Det_rng.int64 b) in
  check_bool "split stream differs" (xs <> ys)

let rng_bounds =
  qtest "int stays in bound"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10000))
    (fun (bound, seed) ->
      let rng = U.Det_rng.create ~seed:(Int64.of_int seed) in
      let x = U.Det_rng.int rng ~bound in
      x >= 0 && x < bound)

let rng_shuffle_permutes =
  qtest "shuffle permutes" QCheck2.Gen.(list_size (int_range 0 20) int) (fun xs ->
      let rng = U.Det_rng.create ~seed:1L in
      List.sort compare (U.Det_rng.shuffle rng xs) = List.sort compare xs)

(* Golden stream values: the exact outputs of the generator, pinned so a
   change to the xoshiro/SplitMix64 implementation (or a platform with
   different integer semantics) cannot silently re-seed the whole fuzzer —
   every sm-fuzz seed and corpus entry depends on these streams. *)
let rng_golden_stream () =
  let a = U.Det_rng.create ~seed:0xDEADBEEFL in
  Alcotest.(check (list int64))
    "int64 stream, seed 0xDEADBEEF"
    [ 0xc5555444a74d7e83L
    ; 0x65c30d37b4b16e38L
    ; 0x54f773200a4efa23L
    ; 0x429aed75fb958af7L
    ; 0xfb0e1dd69c255b2eL
    ; 0x9d6d02ec58814a27L
    ]
    (List.init 6 (fun _ -> U.Det_rng.int64 a));
  let b = U.Det_rng.create ~seed:1L in
  Alcotest.(check (list int))
    "bounded stream, seed 1"
    [ 78; 61; 50; 91; 85; 81; 43; 14; 60; 4; 20; 55 ]
    (List.init 12 (fun _ -> U.Det_rng.int b ~bound:100));
  let c = U.Det_rng.create ~seed:7L in
  let d = U.Det_rng.split c in
  Alcotest.(check (list int64))
    "split stream, seed 7"
    [ 0x214c58958ca2a8a5L; 0x84a76abe9e4119dcL; 0xd9dd03480cc8f2e4L; 0x6aa8bb77bb77649cL ]
    (List.init 4 (fun _ -> U.Det_rng.int64 d))

(* Chi-square uniformity sanity over 16 buckets: with 10000 draws the
   statistic (df = 15) should sit well inside [2.6, 37.7] — the 0.9999 and
   0.001 tails.  Not a PRNG certification, just a tripwire against a broken
   bound reduction (e.g. modulo bias or a stuck high bit). *)
let rng_chi_square () =
  let buckets = 16 in
  let draws = 10_000 in
  let rng = U.Det_rng.create ~seed:123L in
  let counts = Array.make buckets 0 in
  for _ = 1 to draws do
    let i = U.Det_rng.int rng ~bound:buckets in
    counts.(i) <- counts.(i) + 1
  done;
  let expected = float_of_int draws /. float_of_int buckets in
  let chi2 =
    Array.fold_left
      (fun acc n ->
        let d = float_of_int n -. expected in
        acc +. ((d *. d) /. expected))
      0. counts
  in
  check_bool
    (Printf.sprintf "chi-square %.1f not suspiciously large (df 15)" chi2)
    (chi2 < 37.7);
  check_bool (Printf.sprintf "chi-square %.1f not suspiciously uniform" chi2) (chi2 > 2.6)

let stats_basics () =
  let s = U.Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "n" 4 s.n;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max;
  Alcotest.(check (float 1e-9)) "median" 2.0 s.median;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944 s.stddev;
  Alcotest.(check (float 1e-9)) "p100" 4.0 (U.Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:100.0);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (U.Stats.mean []))

let stats_single_element () =
  let s = U.Stats.summarize [ 42.0 ] in
  Alcotest.(check int) "n" 1 s.n;
  Alcotest.(check (float 1e-9)) "mean" 42.0 s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.stddev;
  Alcotest.(check (float 1e-9)) "min" 42.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 42.0 s.max;
  Alcotest.(check (float 1e-9)) "median" 42.0 s.median;
  Alcotest.(check (float 1e-9)) "p0" 42.0 (U.Stats.percentile [ 42.0 ] ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100" 42.0 (U.Stats.percentile [ 42.0 ] ~p:100.0)

let stats_percentile_bounds () =
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  (* nearest-rank: p=0 clamps to the smallest, p=100 is the largest *)
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (U.Stats.percentile xs ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (U.Stats.percentile xs ~p:100.0);
  Alcotest.(check (float 1e-9)) "p50 odd n" 3.0 (U.Stats.percentile xs ~p:50.0);
  (* even n: nearest-rank takes the lower middle, not an interpolation *)
  Alcotest.(check (float 1e-9)) "p50 even n" 2.0 (U.Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:50.0);
  Alcotest.(check (float 1e-9)) "p95 of 100" 95.0
    (U.Stats.percentile (List.init 100 (fun i -> float_of_int (i + 1))) ~p:95.0)

let stats_invalid () =
  Alcotest.check_raises "empty summarize" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (U.Stats.summarize []));
  Alcotest.check_raises "empty percentile" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (U.Stats.percentile [] ~p:50.0));
  Alcotest.check_raises "p below range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (U.Stats.percentile [ 1.0 ] ~p:(-0.1)));
  Alcotest.check_raises "p above range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (U.Stats.percentile [ 1.0 ] ~p:100.5))

let bqueue_fifo () =
  let q = U.Bqueue.create () in
  List.iter (U.Bqueue.push q) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (U.Bqueue.length q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (U.Bqueue.pop q);
  Alcotest.(check (option int)) "try_pop 2" (Some 2) (U.Bqueue.try_pop q);
  U.Bqueue.close q;
  Alcotest.(check (option int)) "drain after close" (Some 3) (U.Bqueue.pop q);
  Alcotest.(check (option int)) "closed empty" None (U.Bqueue.pop q);
  check_bool "is_closed" (U.Bqueue.is_closed q);
  Alcotest.check_raises "push after close" (Invalid_argument "Bqueue.push: closed queue") (fun () ->
      U.Bqueue.push q 9)

let bqueue_threads () =
  (* One producer thread, one consumer thread; blocking pop must deliver all
     items in order. *)
  let q = U.Bqueue.create () in
  let received = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match U.Bqueue.pop q with
          | Some x ->
            received := x :: !received;
            loop ()
          | None -> ()
        in
        loop ())
      ()
  in
  let producer =
    Thread.create
      (fun () ->
        for i = 1 to 100 do
          U.Bqueue.push q i
        done;
        U.Bqueue.close q)
      ()
  in
  Thread.join producer;
  Thread.join consumer;
  Alcotest.(check (list int)) "all delivered in order" (List.init 100 (fun i -> i + 1))
    (List.rev !received)

let sha1_vectors () =
  (* FIPS 180-1 / RFC 3174 test vectors. *)
  Alcotest.(check string) "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (U.Sha1.hex "");
  Alcotest.(check string) "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (U.Sha1.hex "abc");
  (* "abcdbcde...nopq": fourteen sliding 4-char windows over a..q *)
  let two_block =
    String.concat "" (List.init 14 (fun i -> String.init 4 (fun j -> Char.chr (97 + i + j))))
  in
  Alcotest.(check string) "two-block"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (U.Sha1.hex two_block);
  Alcotest.(check string) "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (U.Sha1.hex (String.make 1_000_000 'a'));
  Alcotest.(check int) "raw digest length" 20 (String.length (U.Sha1.digest "x"))

let sha1_iterate () =
  Alcotest.(check string) "zero iterations is identity" "seed" (U.Sha1.iterate "seed" ~times:0);
  Alcotest.(check string) "one iteration = digest" (U.Sha1.digest "seed") (U.Sha1.iterate "seed" ~times:1);
  Alcotest.(check string) "composition" (U.Sha1.digest (U.Sha1.digest "seed")) (U.Sha1.iterate "seed" ~times:2);
  Alcotest.check_raises "negative" (Invalid_argument "Sha1.iterate: negative times") (fun () ->
      ignore (U.Sha1.iterate "x" ~times:(-1)))

let sha1_padding_boundaries =
  (* Lengths straddling the 55/56/63/64 padding boundaries must not crash and
     must be stable. *)
  qtest ~count:80 "padding boundaries" QCheck2.Gen.(int_range 50 70) (fun n ->
      let s = String.make n 'q' in
      U.Sha1.hex s = U.Sha1.hex (String.init n (fun _ -> 'q')))

let fnv_stable () =
  Alcotest.(check string) "known value" "af63dc4c8601ec8c" (U.Fnv.to_hex (U.Fnv.hash "a"));
  check_bool "order sensitive"
    (U.Fnv.combine (U.Fnv.hash "a") (U.Fnv.hash "b")
    <> U.Fnv.combine (U.Fnv.hash "b") (U.Fnv.hash "a"))

let suite =
  [ Alcotest.test_case "hmap: typed bindings" `Quick hmap_basics
  ; Alcotest.test_case "hmap: deterministic fold order" `Quick hmap_fold_order
  ; Alcotest.test_case "vec: push/get/slice/copy" `Quick vec_basics
  ; vec_of_list_roundtrip
  ; Alcotest.test_case "rng: determinism" `Quick rng_deterministic
  ; Alcotest.test_case "rng: split independence" `Quick rng_split_independent
  ; rng_bounds
  ; rng_shuffle_permutes
  ; Alcotest.test_case "rng: golden stream values" `Quick rng_golden_stream
  ; Alcotest.test_case "rng: chi-square uniformity" `Quick rng_chi_square
  ; Alcotest.test_case "stats: summary" `Quick stats_basics
  ; Alcotest.test_case "stats: single element" `Quick stats_single_element
  ; Alcotest.test_case "stats: percentile boundaries" `Quick stats_percentile_bounds
  ; Alcotest.test_case "stats: invalid inputs" `Quick stats_invalid
  ; Alcotest.test_case "bqueue: fifo/close" `Quick bqueue_fifo
  ; Alcotest.test_case "bqueue: producer/consumer threads" `Quick bqueue_threads
  ; Alcotest.test_case "sha1: FIPS vectors" `Quick sha1_vectors
  ; Alcotest.test_case "sha1: iterate" `Quick sha1_iterate
  ; sha1_padding_boundaries
  ; Alcotest.test_case "fnv: stability and order" `Quick fnv_stable
  ]
