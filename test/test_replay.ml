(* Record/replay of non-deterministic merges: a program whose result depends
   on MergeAny arrival order becomes reproducible when replayed against a
   recorded trace — the debugging story the paper's determinism argument
   promises, extended to explicitly non-deterministic code. *)

open Test_support
module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Str_elt)

let kl = Mlist.key ~name:"replay-list"
let executor = lazy (Sm_core.Executor.create ())

(* Children race; merge_any order decides the final list.  [delays] perturbs
   the race without changing the program's structure. *)
let racy_program ~delays ctx =
  let ws = R.workspace ctx in
  Ws.init ws kl [];
  List.iteri
    (fun i d ->
      ignore
        (R.spawn ctx (fun child ->
             Thread.delay d;
             Mlist.append (R.workspace child) kl (Printf.sprintf "task-%d" i))))
    delays;
  let rec drain () = match R.merge_any ctx with Some _ -> drain () | None -> () in
  drain ();
  Mlist.get ws kl

let run ?record ?replay delays =
  R.run ~executor:(Lazy.force executor) ?record ?replay (racy_program ~delays)

let replay_reproduces () =
  let trace = R.Trace.create () in
  (* record with one timing... *)
  let recorded = run ~record:trace [ 0.008; 0.004; 0.0; 0.012 ] in
  Alcotest.(check int) "choices recorded" 4 (R.Trace.length trace);
  (* ...replay under the opposite timing: same result regardless *)
  let replayed = run ~replay:trace [ 0.0; 0.004; 0.012; 0.002 ] in
  Alcotest.(check (list string)) "replay reproduces the recorded order" recorded replayed

let trace_roundtrip () =
  let trace = R.Trace.create () in
  let recorded = run ~record:trace [ 0.003; 0.0; 0.006 ] in
  let wire = R.Trace.encode trace in
  let decoded = R.Trace.decode wire in
  Alcotest.(check int) "length survives" 3 (R.Trace.length decoded);
  let replayed = run ~replay:decoded [ 0.006; 0.003; 0.0 ] in
  Alcotest.(check (list string)) "decoded trace replays" recorded replayed;
  check_bool "malformed trace rejected"
    (match R.Trace.decode "\xff\xff\xff" with
    | (_ : R.Trace.t) -> false
    | exception Sm_util.Codec.Decode_error _ -> true)

let recording_does_not_disturb () =
  (* a deterministic program records an empty-or-not trace but must compute
     the same result as without recording *)
  let deterministic ctx =
    let ws = R.workspace ctx in
    Ws.init ws kl [];
    for i = 0 to 3 do
      ignore (R.spawn ctx (fun c -> Mlist.append (R.workspace c) kl (string_of_int i)))
    done;
    R.merge_all ctx;
    Mlist.get ws kl
  in
  let trace = R.Trace.create () in
  let a = R.run ~executor:(Lazy.force executor) ~record:trace deterministic in
  Alcotest.(check (list string)) "merge_all unaffected" [ "0"; "1"; "2"; "3" ] a;
  Alcotest.(check int) "merge_all records nothing" 0 (R.Trace.length trace)

let exhausted_trace_falls_back () =
  let trace = R.Trace.create () in
  let first = run ~record:trace [ 0.002; 0.0 ] in
  Alcotest.(check int) "two recorded" 2 (R.Trace.length trace);
  (* replay a program with MORE children than the trace knows about: the
     recorded prefix is forced, the rest merges freely *)
  let bigger =
    R.run ~executor:(Lazy.force executor) ~replay:trace
      (racy_program ~delays:[ 0.004; 0.0; 0.002 ])
  in
  Alcotest.(check int) "all three merged" 3 (List.length bigger);
  (* the recorded prefix is respected exactly *)
  Alcotest.(check (list string)) "prefix preserved" first (List.filteri (fun i _ -> i < 2) bigger)

let suite =
  [ Alcotest.test_case "replay reproduces a racy run" `Quick replay_reproduces
  ; Alcotest.test_case "traces encode/decode" `Quick trace_roundtrip
  ; Alcotest.test_case "recording is transparent" `Quick recording_does_not_disturb
  ; Alcotest.test_case "exhausted trace falls back" `Quick exhausted_trace_falls_back
  ]
