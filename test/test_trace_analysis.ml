(* The trace-analysis subsystem behind the sm-trace CLI: JSONL decode
   error paths, non-finite float round-trips, streaming folds, the trace
   model, critical-path tiling, structural diffing, the Prometheus
   exposition, and the bounded-histogram reservoir. *)

module Obs = Sm_obs
module E = Sm_obs.Event
module R = Sm_core.Runtime

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int msg a b = Alcotest.(check int) msg a b

let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level Obs.Off;
      Obs.reset_sink ();
      Obs.Metrics.set_enabled false;
      Obs.Metrics.set_sample_cap None;
      Obs.Metrics.reset ())
    f

let with_temp_file f =
  let path = Filename.temp_file "sm_trace_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let write_events path events =
  write_lines path (List.map Obs.Trace_jsonl.event_to_line events)

(* --- float_repr: nan/inf must stay valid JSON ------------------------------ *)

let float_json f = Obs.Json.to_string (Obs.Json.Float f)

let float_repr_finite () =
  Alcotest.(check string) "integer-valued keeps the dot" "1.0" (float_json 1.0);
  Alcotest.(check string) "negative" "-2.5" (float_json (-2.5));
  check_bool "pi round-trips" (Float.equal Float.pi (float_of_string (float_json Float.pi)))

let float_repr_non_finite () =
  (* JSON has no nan/inf literals: nan serializes as null, infinities as
     1e999 (a valid numeral that reads back as infinity). *)
  Alcotest.(check string) "nan is null" "null" (float_json Float.nan);
  Alcotest.(check string) "inf" "1e999" (float_json Float.infinity);
  Alcotest.(check string) "-inf" "-1e999" (float_json Float.neg_infinity);
  check_bool "1e999 parses to inf" (float_of_string "1e999" = Float.infinity);
  (* The whole document must be parseable, not just the fragment. *)
  List.iter
    (fun f ->
      let doc = Obs.Json.to_string (Obs.Json.List [ Obs.Json.Float f ]) in
      match Obs.Json.of_string doc with
      | _ -> ()
      | exception Obs.Json.Parse_error e ->
        Alcotest.failf "emitted unparseable JSON %S: %s" doc e)
    [ Float.nan; Float.infinity; Float.neg_infinity; 1.5; 0.0 ]

let float_arg_round_trip () =
  let ev f = E.make ~args:[ ("x", E.F f) ] ~task:"t" ~task_id:1 E.Note in
  List.iter
    (fun f ->
      let back = Obs.Trace_jsonl.event_of_line (Obs.Trace_jsonl.event_to_line (ev f)) in
      match List.assoc "x" back.E.args with
      | E.F g ->
        (* Float.equal nan nan = true, so this also covers the nan case. *)
        check_bool (Printf.sprintf "round-trips %h" f) (Float.equal f g)
      | _ -> Alcotest.fail "arg decoded to a non-float")
    [ Float.nan; Float.infinity; Float.neg_infinity; 3.25; -0.0 ]

(* --- JSONL decode error paths ---------------------------------------------- *)

let expect_decode_error name thunk =
  match thunk () with
  | _ -> Alcotest.failf "%s: expected Decode_error" name
  | exception Obs.Trace_jsonl.Decode_error _ -> ()

let decode_errors () =
  expect_decode_error "malformed JSON" (fun () ->
      Obs.Trace_jsonl.event_of_line "{not json at all");
  expect_decode_error "non-object line" (fun () -> Obs.Trace_jsonl.event_of_line "[1,2,3]");
  expect_decode_error "unknown kind" (fun () ->
      Obs.Trace_jsonl.event_of_line
        {|{"seq":1,"ts_ns":2,"kind":"teleport","task":"root","task_id":0,"args":{}}|});
  expect_decode_error "ill-typed seq" (fun () ->
      Obs.Trace_jsonl.event_of_line
        {|{"seq":"one","ts_ns":2,"kind":"note","task":"root","task_id":0,"args":{}}|});
  expect_decode_error "missing task" (fun () ->
      Obs.Trace_jsonl.event_of_line {|{"seq":1,"ts_ns":2,"kind":"note","task_id":0,"args":{}}|});
  expect_decode_error "nested arg value" (fun () ->
      Obs.Trace_jsonl.event_of_line
        {|{"seq":1,"ts_ns":2,"kind":"note","task":"root","task_id":0,"args":{"k":[1]}}|});
  expect_decode_error "arg_of_json on object" (fun () ->
      Obs.Trace_jsonl.arg_of_json (Obs.Json.Obj [ ("a", Obs.Json.Int 1) ]))

let decode_errors_in_files () =
  (* A bad line poisons every streaming reader the same way. *)
  let good = Obs.Trace_jsonl.event_to_line (E.make ~task:"root" ~task_id:1 E.Task_start) in
  with_temp_file (fun path ->
      write_lines path [ good; "{broken"; good ];
      expect_decode_error "load" (fun () -> Obs.Trace_jsonl.load path);
      expect_decode_error "fold" (fun () ->
          Obs.Trace_jsonl.fold path ~init:0 ~f:(fun n _ -> n + 1));
      expect_decode_error "of_file" (fun () -> Obs.Trace_model.of_file path);
      with_temp_file (fun other ->
          write_lines other [ good; good ];
          expect_decode_error "compare_files left" (fun () ->
              Obs.Trace_diff.compare_files path other);
          expect_decode_error "compare_files right" (fun () ->
              Obs.Trace_diff.compare_files other path)))

(* --- streaming fold -------------------------------------------------------- *)

let fold_streams () =
  let events =
    List.init 50 (fun i -> E.make ~args:[ ("i", E.I i) ] ~task:"t" ~task_id:1 E.Note)
  in
  with_temp_file (fun path ->
      (* Blank lines are allowed and skipped. *)
      let lines = List.concat_map (fun e -> [ Obs.Trace_jsonl.event_to_line e; "" ]) events in
      write_lines path lines;
      check_int "fold visits every event" 50
        (Obs.Trace_jsonl.fold path ~init:0 ~f:(fun n _ -> n + 1));
      let folded = List.rev (Obs.Trace_jsonl.fold path ~init:[] ~f:(fun acc e -> e :: acc)) in
      let loaded = Obs.Trace_jsonl.load path in
      check_int "fold and load agree" (List.length loaded) (List.length folded);
      List.iter2
        (fun a b -> check_bool "same structure" (E.equal_structure a b))
        folded loaded)

(* --- structural diff ------------------------------------------------------- *)

let mk ?args kind = E.make ?args ~task:"root" ~task_id:7 kind

let diff_equal () =
  let a = [ mk E.Task_start; mk E.Sync_begin; mk E.Sync_end; mk E.Task_end ] in
  (* Re-stamp the same structure: fresh seq/ts/task_id must not matter. *)
  let b =
    [ E.make ~task:"root" ~task_id:99 E.Task_start
    ; mk E.Sync_begin
    ; mk E.Sync_end
    ; mk E.Task_end
    ]
  in
  (match Obs.Trace_diff.compare_events a b with
  | Obs.Trace_diff.Equal n -> check_int "counts both" 4 n
  | Obs.Trace_diff.Diverged _ -> Alcotest.fail "structurally equal traces diverged");
  check_bool "equal_result" (Obs.Trace_diff.equal_result (Obs.Trace_diff.compare_events a b))

let diff_divergent () =
  let a = [ mk E.Task_start; mk E.Sync_begin; mk E.Task_end ] in
  let b = [ mk E.Task_start; mk E.Abort; mk E.Task_end ] in
  (match Obs.Trace_diff.compare_events a b with
  | Obs.Trace_diff.Equal _ -> Alcotest.fail "divergent traces compared equal"
  | Obs.Trace_diff.Diverged d ->
    check_int "diverges at the first mismatch" 1 d.Obs.Trace_diff.index;
    (match (d.Obs.Trace_diff.left, d.Obs.Trace_diff.right) with
    | Some l, Some r ->
      check_bool "left is the sync" (l.E.kind = E.Sync_begin);
      check_bool "right is the abort" (r.E.kind = E.Abort)
    | _ -> Alcotest.fail "both sides should be present"));
  (* Same kind, different args diverges too. *)
  let a = [ mk ~args:[ ("status", E.S "ok") ] E.Task_end ] in
  let b = [ mk ~args:[ ("status", E.S "failed") ] E.Task_end ] in
  check_bool "arg mismatch diverges"
    (not (Obs.Trace_diff.equal_result (Obs.Trace_diff.compare_events a b)))

let diff_length_mismatch () =
  let a = [ mk E.Task_start ] in
  let b = [ mk E.Task_start; mk E.Task_end ] in
  match Obs.Trace_diff.compare_events a b with
  | Obs.Trace_diff.Equal _ -> Alcotest.fail "prefix trace compared equal"
  | Obs.Trace_diff.Diverged d ->
    check_int "diverges where the short trace ends" 1 d.Obs.Trace_diff.index;
    check_bool "left ended" (d.Obs.Trace_diff.left = None);
    check_bool "right still has events" (d.Obs.Trace_diff.right <> None)

let diff_files () =
  let base = [ mk E.Task_start; mk E.Sync_begin; mk E.Sync_end; mk E.Task_end ] in
  let perturbed = [ mk E.Task_start; mk E.Sync_begin; mk E.Abort; mk E.Task_end ] in
  with_temp_file (fun pa ->
      with_temp_file (fun pb ->
          write_events pa base;
          write_events pb base;
          check_bool "identical files compare equal"
            (Obs.Trace_diff.equal_result (Obs.Trace_diff.compare_files pa pb));
          write_events pb perturbed;
          match Obs.Trace_diff.compare_files pa pb with
          | Obs.Trace_diff.Equal _ -> Alcotest.fail "perturbed file compared equal"
          | Obs.Trace_diff.Diverged d -> check_int "named event" 2 d.Obs.Trace_diff.index))

(* --- trace model + analyses on a real cooperative run ---------------------- *)

let counter = Sm_mergeable.Mcounter.key ~name:"trace-analysis-counter"

let traced_program ctx =
  let ws = R.workspace ctx in
  Sm_mergeable.Workspace.init ws counter 0;
  let hs =
    List.init 3 (fun _ ->
        R.spawn ctx (fun c ->
            Sm_mergeable.Mcounter.incr (R.workspace c) counter;
            ignore (R.sync c);
            Sm_mergeable.Mcounter.incr (R.workspace c) counter))
  in
  R.merge_all_from_set ctx hs

let capture_coop () =
  let sink, read = Obs.Sink.collecting () in
  Obs.set_sink sink;
  R.Coop.run traced_program;
  Obs.set_sink Obs.Sink.null;
  read ()

let model_from_coop_run () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let events = capture_coop () in
      let m = Obs.Trace_model.of_events events in
      check_int "event count" (List.length events) (Obs.Trace_model.event_count m);
      check_int "one root" 1 (List.length (Obs.Trace_model.roots m));
      check_int "root + 3 workers" 4 (Obs.Trace_model.task_count m);
      let root = Option.get (Obs.Trace_model.main_root m) in
      Alcotest.(check string) "root name" "root" root.Obs.Trace_model.name;
      check_bool "root started and ended"
        (root.Obs.Trace_model.started && root.Obs.Trace_model.ended);
      Alcotest.(check (option string)) "root ok" (Some "ok") root.Obs.Trace_model.status;
      check_int "three spawn edges" 3 (List.length root.Obs.Trace_model.children);
      (* Each worker is folded twice: once when its sync publishes the
         journal, once at completion inside merge_all. *)
      let recs = Obs.Trace_model.merge_records root in
      check_int "two folds per worker" 6 (List.length recs);
      List.iter
        (fun (r : Obs.Trace_model.merge_record) ->
          check_bool "outcome merged" (r.Obs.Trace_model.mc_outcome = Obs.Trace_model.Merged);
          check_bool "child id resolved" (r.Obs.Trace_model.mc_child <> None))
        recs;
      List.iter
        (fun cid ->
          let c = Option.get (Obs.Trace_model.task m cid) in
          check_bool "worker synced" (List.length c.Obs.Trace_model.syncs >= 1);
          check_bool "span covers blocked+self"
            (Obs.Trace_model.self_ns c + Obs.Trace_model.blocked_ns c
            <= Obs.Trace_model.span_ns c))
        root.Obs.Trace_model.children)

let model_streaming_matches_in_memory () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let events = capture_coop () in
      with_temp_file (fun path ->
          write_events path events;
          let a = Obs.Trace_model.of_events events in
          let b = Obs.Trace_model.of_file path in
          check_int "same tasks" (Obs.Trace_model.task_count a) (Obs.Trace_model.task_count b);
          check_int "same events" (Obs.Trace_model.event_count a)
            (Obs.Trace_model.event_count b);
          check_int "same duration" (Obs.Trace_model.duration_ns a)
            (Obs.Trace_model.duration_ns b)))

let critical_path_tiles () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let m = Obs.Trace_model.of_events (capture_coop ()) in
      let cp = Option.get (Obs.Critical_path.compute m) in
      check_bool "has segments" (cp.Obs.Critical_path.segments <> []);
      (* The backward walk tiles the root span exactly: contiguous,
         chronological, summing to wall-clock. *)
      let root = cp.Obs.Critical_path.root in
      let rec contiguous prev_end = function
        | [] -> prev_end = root.Obs.Trace_model.end_ts
        | (s : Obs.Critical_path.segment) :: rest ->
          s.Obs.Critical_path.seg_begin = prev_end
          && s.Obs.Critical_path.seg_end > s.Obs.Critical_path.seg_begin
          && contiguous s.Obs.Critical_path.seg_end rest
      in
      check_bool "segments tile the span"
        (contiguous root.Obs.Trace_model.start_ts cp.Obs.Critical_path.segments);
      check_int "total equals wall-clock" cp.Obs.Critical_path.wall_ns
        cp.Obs.Critical_path.total_ns;
      check_bool "coverage ~100%"
        (Float.abs (Obs.Critical_path.coverage_pct cp -. 100.0) < 0.5);
      check_bool "by_task is non-empty" (Obs.Critical_path.by_task cp <> []))

let critical_path_info_level () =
  with_obs (fun () ->
      (* Info traces have no merge spans: the path degrades to one compute
         segment covering the whole root span. *)
      Obs.set_level Obs.Info;
      let m = Obs.Trace_model.of_events (capture_coop ()) in
      let cp = Option.get (Obs.Critical_path.compute m) in
      check_bool "still tiles"
        (Float.abs (Obs.Critical_path.coverage_pct cp -. 100.0) < 0.5);
      List.iter
        (fun (s : Obs.Critical_path.segment) ->
          check_bool "all compute" (s.Obs.Critical_path.seg_kind = Obs.Critical_path.Compute))
        cp.Obs.Critical_path.segments)

let attribution_totals () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let m = Obs.Trace_model.of_events (capture_coop ()) in
      let rows = Obs.Attribution.of_model m in
      check_int "one row per started task" (Obs.Trace_model.task_count m) (List.length rows);
      let t = Obs.Attribution.totals rows in
      check_int "spawns" 3 t.Obs.Attribution.spawns;
      (* Two folds per worker: the sync-time fold and the completion fold. *)
      check_int "children merged" 6 t.Obs.Attribution.children_merged;
      check_int "all merged ok" 6 t.Obs.Attribution.merged_ok;
      check_int "no aborts" 0 t.Obs.Attribution.aborted;
      (* Each worker: incr, sync (journal flushed), incr, final merge
         carries one op; 3 workers x >=1 op. *)
      check_bool "ops were folded" (t.Obs.Attribution.ops_folded >= 3);
      let view = Obs.Attribution.metric_view rows in
      check_int "metric view agrees on spawns" 3 (List.assoc "runtime.spawns" view);
      check_int "metric view agrees on merged children" 6
        (List.assoc "runtime.merged_children" view))

(* --- trace run determinism through the whole pipeline ---------------------- *)

let coop_runs_diff_clean () =
  with_obs (fun () ->
      Obs.set_level Obs.Debug;
      let a = capture_coop () in
      let b = capture_coop () in
      match Obs.Trace_diff.compare_events a b with
      | Obs.Trace_diff.Equal n -> check_bool "non-trivial trace" (n > 10)
      | Obs.Trace_diff.Diverged d ->
        Alcotest.failf "deterministic runs diverged at %d" d.Obs.Trace_diff.index)

(* --- Prometheus exposition ------------------------------------------------- *)

let expo_sanitize () =
  Alcotest.(check string) "dots to underscores" "sm_runtime_merge_ns"
    (Obs.Expo.sanitize "runtime.merge_ns");
  Alcotest.(check string) "odd chars" "sm_a_b_c" (Obs.Expo.sanitize "a-b c")

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let expo_render () =
  let text =
    Obs.Expo.render
      ~counters:[ ("runtime.spawns", 5) ]
      ~histograms:[ ("runtime.merge_ns", [ 1.0; 2.0; 3.0; 4.0; Float.nan ]) ]
  in
  List.iter
    (fun needle -> check_bool ("exposition has " ^ needle) (contains ~needle text))
    [ "# TYPE sm_runtime_spawns counter"
    ; "sm_runtime_spawns 5"
    ; "# TYPE sm_runtime_merge_ns summary"
    ; {|sm_runtime_merge_ns{quantile="0.5"}|}
    ; "sm_runtime_merge_ns_sum 10"
    ; (* the nan sample is filtered, not counted *)
      "sm_runtime_merge_ns_count 4"
    ]

let expo_live_registry () =
  with_obs (fun () ->
      Obs.Metrics.set_enabled true;
      Obs.Metrics.add (Obs.Metrics.counter "expo.test.counter") 7;
      Obs.Metrics.observe (Obs.Metrics.histogram "expo.test.hist") 2.5;
      let text = Obs.Expo.text () in
      check_bool "counter present" (contains ~needle:"sm_expo_test_counter 7" text);
      check_bool "histogram present" (contains ~needle:"sm_expo_test_hist_count 1" text))

let expo_reporter () =
  with_obs (fun () ->
      Obs.Metrics.set_enabled true;
      Obs.Metrics.incr (Obs.Metrics.counter "expo.reporter.ticks");
      let got = Atomic.make 0 in
      let r = Obs.Expo.start ~period_s:0.02 (fun _ -> Atomic.incr got) in
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get got = 0 && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      Obs.Expo.stop r;
      check_bool "reporter fired" (Atomic.get got > 0);
      let after = Atomic.get got in
      Thread.delay 0.06;
      check_int "reporter stopped" after (Atomic.get got);
      match Obs.Expo.start ~period_s:0.0 (fun _ -> ()) with
      | _ -> Alcotest.fail "non-positive period accepted"
      | exception Invalid_argument _ -> ())

(* --- histogram reservoir --------------------------------------------------- *)

let metrics_sample_cap () =
  with_obs (fun () ->
      Obs.Metrics.set_enabled true;
      Obs.Metrics.set_sample_cap (Some 64);
      Alcotest.(check (option int)) "cap readable" (Some 64) (Obs.Metrics.sample_cap ());
      let h = Obs.Metrics.histogram "test.reservoir" in
      for i = 1 to 10_000 do
        Obs.Metrics.observe h (float_of_int i)
      done;
      check_int "retained at most cap" 64 (List.length (Obs.Metrics.samples h));
      check_int "true count survives" 10_000 (Obs.Metrics.observed_count h);
      (* Retained samples are a subset of what was observed. *)
      List.iter
        (fun s -> check_bool "sample from the window" (s >= 1.0 && s <= 10_000.0))
        (Obs.Metrics.samples h);
      (* A reservoir over 1..10000 should not be the first 64 observations:
         its mean sits near the window mean, far above 32.5. *)
      let samples = Obs.Metrics.samples h in
      let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples) in
      check_bool "reservoir displaces old residents" (mean > 1_000.0);
      check_bool "summary still works" (Obs.Metrics.summary h <> None);
      (match Obs.Metrics.set_sample_cap (Some 0) with
      | () -> Alcotest.fail "cap of 0 accepted"
      | exception Invalid_argument _ -> ());
      Obs.Metrics.reset ();
      check_int "reset zeroes observed_count" 0 (Obs.Metrics.observed_count h))

let metrics_uncapped_keeps_all () =
  with_obs (fun () ->
      Obs.Metrics.set_enabled true;
      Obs.Metrics.set_sample_cap None;
      let h = Obs.Metrics.histogram "test.uncapped" in
      for i = 1 to 500 do
        Obs.Metrics.observe h (float_of_int i)
      done;
      check_int "keeps every sample" 500 (List.length (Obs.Metrics.samples h));
      check_int "count matches" 500 (Obs.Metrics.observed_count h))

let suite =
  [ Alcotest.test_case "float_repr: finite" `Quick float_repr_finite
  ; Alcotest.test_case "float_repr: nan/inf are valid JSON" `Quick float_repr_non_finite
  ; Alcotest.test_case "float args round-trip through JSONL" `Quick float_arg_round_trip
  ; Alcotest.test_case "decode errors: malformed lines" `Quick decode_errors
  ; Alcotest.test_case "decode errors: poisoned files" `Quick decode_errors_in_files
  ; Alcotest.test_case "fold streams a trace file" `Quick fold_streams
  ; Alcotest.test_case "diff: structural equality" `Quick diff_equal
  ; Alcotest.test_case "diff: names first divergence" `Quick diff_divergent
  ; Alcotest.test_case "diff: length mismatch" `Quick diff_length_mismatch
  ; Alcotest.test_case "diff: streaming over files" `Quick diff_files
  ; Alcotest.test_case "model: coop run reconstructed" `Quick model_from_coop_run
  ; Alcotest.test_case "model: of_file matches of_events" `Quick model_streaming_matches_in_memory
  ; Alcotest.test_case "critical path: tiles the root span" `Quick critical_path_tiles
  ; Alcotest.test_case "critical path: info-level degrades" `Quick critical_path_info_level
  ; Alcotest.test_case "attribution: totals match the program" `Quick attribution_totals
  ; Alcotest.test_case "pipeline: coop runs diff clean" `Quick coop_runs_diff_clean
  ; Alcotest.test_case "expo: sanitize" `Quick expo_sanitize
  ; Alcotest.test_case "expo: render format" `Quick expo_render
  ; Alcotest.test_case "expo: live registry" `Quick expo_live_registry
  ; Alcotest.test_case "expo: periodic reporter" `Quick expo_reporter
  ; Alcotest.test_case "metrics: reservoir cap" `Quick metrics_sample_cap
  ; Alcotest.test_case "metrics: uncapped keeps all" `Quick metrics_uncapped_keeps_all
  ]
