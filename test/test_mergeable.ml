(* Workspace semantics: journaling, copy isolation, OT merging, rebasing,
   truncation, digests — plus every mergeable data structure's helpers and a
   user-defined mergeable type exercising the extension interface. *)

open Test_support
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Str_elt)
module Mqueue = Sm_mergeable.Mqueue.Make (Int_elt)
module Mcounter = Sm_mergeable.Mcounter
module Mregister = Sm_mergeable.Mregister.Make (Str_elt)
module Mset = Sm_mergeable.Mset.Make (Int_elt)
module Mmap = Sm_mergeable.Mmap.Make (Str_elt) (Int_elt)
module Mtext = Sm_mergeable.Mtext
module Mtree = Sm_mergeable.Mtree.Make (Str_elt)

(* A custom mergeable type: a max-register (state is an int, operations can
   only raise it; concurrent raises commute).  Demonstrates the paper's
   "interface to implement new mergeable data structures". *)
module Max_register = struct
  type state = int
  type op = Raise_to of int

  let type_name = "max-register"
  let apply s (Raise_to n) = max s n
  let transform a ~against:_ ~tie:_ = [ a ]

  (* identity compaction / no commute hint: the sound defaults *)
  include Sm_ot.Op_sig.Default
  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let pp_op ppf (Raise_to n) = Format.fprintf ppf "raise_to(%d)" n
end

let fresh_list () =
  let k = Mlist.key ~name:"l" in
  let ws = Ws.create () in
  Ws.init ws k [ "a"; "b"; "c" ];
  (ws, k)

let workspace_basics () =
  let ws, k = fresh_list () in
  Alcotest.(check (list string)) "read" [ "a"; "b"; "c" ] (Ws.read ws k);
  Alcotest.(check int) "version 0" 0 (Ws.version_of ws k);
  Mlist.append ws k "d";
  Alcotest.(check (list string)) "applied" [ "a"; "b"; "c"; "d" ] (Ws.read ws k);
  Alcotest.(check int) "version 1" 1 (Ws.version_of ws k);
  Alcotest.(check (list string)) "key names" [ "l" ] (Ws.key_names ws);
  check_bool "mem" (Ws.mem ws k);
  check_bool "not pristine" (not (Ws.is_pristine ws));
  Alcotest.check_raises "double init" (Ws.Already_bound "l") (fun () -> Ws.init ws k []);
  let other = Mlist.key ~name:"other" in
  Alcotest.check_raises "unbound" (Ws.Unbound_key "other") (fun () -> ignore (Ws.read ws other))

let copy_isolation () =
  let ws, k = fresh_list () in
  let child = Ws.copy ws in
  Mlist.append child k "x";
  Alcotest.(check (list string)) "parent untouched" [ "a"; "b"; "c" ] (Ws.read ws k);
  Alcotest.(check (list string)) "child changed" [ "a"; "b"; "c"; "x" ] (Ws.read child k);
  Alcotest.(check int) "child journal independent" 0 (Ws.version_of ws k);
  check_bool "copy is pristine" (Ws.is_pristine (Ws.copy ws))

(* Listing 1 at the workspace level: parent appends 4, child appends 5,
   merge produces [1;2;3;4;5]. *)
let listing1_merge () =
  let k = Mlist.key ~name:"listing1" in
  let ws = Ws.create () in
  Ws.init ws k [ "1"; "2"; "3" ];
  let base = Ws.snapshot ws in
  let child = Ws.copy ws in
  Mlist.append child k "5";
  Mlist.append ws k "4";
  Ws.merge_child ~parent:ws ~child ~base;
  Alcotest.(check (list string)) "merged" [ "1"; "2"; "3"; "4"; "5" ] (Ws.read ws k)

let two_children_merge_order () =
  let k = Mlist.key ~name:"order" in
  let ws = Ws.create () in
  Ws.init ws k [];
  let base = Ws.snapshot ws in
  let c1 = Ws.copy ws and c2 = Ws.copy ws in
  Mlist.append c1 k "first";
  Mlist.append c2 k "second";
  Ws.merge_child ~parent:ws ~child:c1 ~base;
  Ws.merge_child ~parent:ws ~child:c2 ~base;
  Alcotest.(check (list string)) "merge order" [ "first"; "second" ] (Ws.read ws k)

let register_last_merged_wins () =
  let k = Mregister.key ~name:"reg" in
  let ws = Ws.create () in
  Ws.init ws k "initial";
  let base = Ws.snapshot ws in
  let c1 = Ws.copy ws and c2 = Ws.copy ws in
  Mregister.set c1 k "from-c1";
  Mregister.set c2 k "from-c2";
  Ws.merge_child ~parent:ws ~child:c1 ~base;
  Ws.merge_child ~parent:ws ~child:c2 ~base;
  Alcotest.(check string) "later merged wins" "from-c2" (Ws.read ws k)

let rebase_and_sync_cycle () =
  let k = Mcounter.key ~name:"n" in
  let ws = Ws.create () in
  Ws.init ws k 0;
  let child = Ws.copy ws in
  let base = ref (Ws.snapshot ws) in
  (* two sync rounds: child adds 1 per round, parent adds 10 per round *)
  for _ = 1 to 2 do
    Mcounter.incr child k;
    Mcounter.add ws k 10;
    Ws.merge_child ~parent:ws ~child ~base:!base;
    Ws.rebase_from child ~parent:ws;
    base := Ws.snapshot ws
  done;
  Alcotest.(check int) "parent total" 22 (Ws.read ws k);
  Alcotest.(check int) "child sees fresh copy" 22 (Ws.read child k);
  check_bool "child pristine after rebase" (Ws.is_pristine child)

let key_created_in_child () =
  let k = Mlist.key ~name:"parent-key" in
  let fresh = Mcounter.key ~name:"child-key" in
  let ws = Ws.create () in
  Ws.init ws k [];
  let base = Ws.snapshot ws in
  let child = Ws.copy ws in
  Ws.init child fresh 7;
  Mcounter.incr child fresh;
  Ws.merge_child ~parent:ws ~child ~base;
  Alcotest.(check int) "installed in parent" 8 (Ws.read ws fresh);
  (* a second child that also initialized it conflicts *)
  let conflicting = Ws.create () in
  Ws.init conflicting fresh 0;
  Alcotest.check_raises "conflicting init" (Ws.Already_bound "child-key") (fun () ->
      Ws.merge_child ~parent:ws ~child:conflicting ~base:Ws.Versions.empty)

let truncation () =
  let k = Mcounter.key ~name:"t" in
  let ws = Ws.create () in
  Ws.init ws k 0;
  (* a child taken before any parent activity: version-0 base *)
  let stale_base = Ws.snapshot ws in
  let stale_child = Ws.copy ws in
  Mcounter.incr stale_child k;
  for _ = 1 to 10 do
    Mcounter.incr ws k
  done;
  let base = Ws.snapshot ws in
  let child = Ws.copy ws in
  Mcounter.add child k 5;
  (* keep only what the recent child needs *)
  Ws.truncate_to_min ws ~bases:[ base ];
  Ws.merge_child ~parent:ws ~child ~base;
  Alcotest.(check int) "merge after safe truncation" 15 (Ws.read ws k);
  (* the stale child's base now points into the truncated prefix *)
  check_bool "merge with pre-truncation base raises"
    (match Ws.merge_child ~parent:ws ~child:stale_child ~base:stale_base with
    | () -> false
    | exception Invalid_argument _ -> true)

let digest_and_equal () =
  let k = Mlist.key ~name:"d" in
  let mk contents =
    let ws = Ws.create () in
    Ws.init ws k contents;
    ws
  in
  let a = mk [ "x" ] and b = mk [ "x" ] and c = mk [ "y" ] in
  Alcotest.(check string) "equal states digest equal" (Ws.digest a) (Ws.digest b);
  check_bool "different states digest differently" (Ws.digest a <> Ws.digest c);
  check_bool "equal" (Ws.equal a b);
  check_bool "not equal" (not (Ws.equal a c));
  check_bool "cardinality respected" (not (Ws.equal a (Ws.create ())))

let custom_mergeable_type () =
  let k = Ws.create_key (module Max_register) ~name:"highwater" in
  let ws = Ws.create () in
  Ws.init ws k 0;
  let base = Ws.snapshot ws in
  let c1 = Ws.copy ws and c2 = Ws.copy ws in
  Ws.update c1 k (Max_register.Raise_to 42);
  Ws.update c2 k (Max_register.Raise_to 17);
  Ws.update ws k (Max_register.Raise_to 5);
  Ws.merge_child ~parent:ws ~child:c1 ~base;
  Ws.merge_child ~parent:ws ~child:c2 ~base;
  Alcotest.(check int) "max of all raises" 42 (Ws.read ws k)

(* --- per-structure helper coverage --------------------------------------- *)

let mlist_helpers () =
  let ws, k = fresh_list () in
  Mlist.insert ws k 1 "x";
  Mlist.set ws k 0 "A";
  Mlist.delete ws k 3;
  Alcotest.(check (list string)) "edits" [ "A"; "x"; "b" ] (Mlist.get ws k);
  Alcotest.(check int) "length" 3 (Mlist.length ws k);
  Alcotest.(check (option string)) "nth" (Some "x") (Mlist.nth ws k 1);
  Alcotest.(check (option string)) "nth out of range" None (Mlist.nth ws k 9)

let mqueue_helpers () =
  let k = Mqueue.key ~name:"q" in
  let ws = Ws.create () in
  Ws.init ws k [];
  check_bool "empty" (Mqueue.is_empty ws k);
  Alcotest.(check (option int)) "pop empty" None (Mqueue.pop ws k);
  Alcotest.(check int) "pop on empty journals nothing" 0 (Ws.version_of ws k);
  Mqueue.push ws k 1;
  Mqueue.push ws k 2;
  Alcotest.(check (option int)) "peek" (Some 1) (Mqueue.peek ws k);
  Alcotest.(check int) "length" 2 (Mqueue.length ws k);
  Alcotest.(check (option int)) "pop" (Some 1) (Mqueue.pop ws k);
  Alcotest.(check (list int)) "rest" [ 2 ] (Mqueue.get ws k)

let mstack_helpers () =
  let module Mstack = Sm_mergeable.Mstack.Make (Int_elt) in
  let k = Mstack.key ~name:"st" in
  let ws = Ws.create () in
  Ws.init ws k [];
  Alcotest.(check (option int)) "pop empty" None (Mstack.pop ws k);
  Alcotest.(check int) "pop on empty journals nothing" 0 (Ws.version_of ws k);
  Mstack.push ws k 1;
  Mstack.push ws k 2;
  Alcotest.(check (option int)) "peek top" (Some 2) (Mstack.peek ws k);
  Alcotest.(check int) "depth" 2 (Mstack.depth ws k);
  Alcotest.(check (option int)) "pop top" (Some 2) (Mstack.pop ws k);
  Alcotest.(check (list int)) "rest" [ 1 ] (Mstack.get ws k);
  (* two children pop the same top: only one removal after merging *)
  Mstack.push ws k 7;
  let base = Ws.snapshot ws in
  let c1 = Ws.copy ws and c2 = Ws.copy ws in
  Alcotest.(check (option int)) "c1 pops 7" (Some 7) (Mstack.pop c1 k);
  Alcotest.(check (option int)) "c2 pops 7" (Some 7) (Mstack.pop c2 k);
  Ws.merge_child ~parent:ws ~child:c1 ~base;
  Ws.merge_child ~parent:ws ~child:c2 ~base;
  Alcotest.(check (list int)) "one removal, 1 survives" [ 1 ] (Mstack.get ws k)

let mcounter_helpers () =
  let k = Mcounter.key ~name:"c" in
  let ws = Ws.create () in
  Ws.init ws k 10;
  Mcounter.incr ws k;
  Mcounter.decr ws k;
  Mcounter.add ws k 5;
  Alcotest.(check int) "value" 15 (Mcounter.get ws k)

let mset_helpers () =
  let k = Mset.key ~name:"s" in
  let ws = Ws.create () in
  Ws.init ws k Mset.Op.Elt_set.empty;
  Mset.add ws k 3;
  Mset.add ws k 1;
  Mset.add ws k 3;
  Mset.remove ws k 99;
  Alcotest.(check (list int)) "elements" [ 1; 3 ] (Mset.elements ws k);
  Alcotest.(check int) "cardinal" 2 (Mset.cardinal ws k);
  check_bool "mem" (Mset.mem ws k 1);
  Mset.remove ws k 1;
  check_bool "removed" (not (Mset.mem ws k 1))

let mmap_helpers () =
  let k = Mmap.key ~name:"m" in
  let ws = Ws.create () in
  Ws.init ws k Mmap.Op.Key_map.empty;
  Mmap.put ws k "a" 1;
  Mmap.put ws k "b" 2;
  Mmap.put ws k "a" 3;
  Mmap.remove ws k "b";
  Alcotest.(check (option int)) "find" (Some 3) (Mmap.find ws k "a");
  Alcotest.(check (option int)) "removed" None (Mmap.find ws k "b");
  Alcotest.(check int) "cardinal" 1 (Mmap.cardinal ws k);
  Alcotest.(check (list (pair string int))) "bindings" [ ("a", 3) ] (Mmap.bindings ws k)

let mtext_helpers () =
  let k = Mtext.key ~name:"txt" in
  let ws = Ws.create () in
  Mtext.init ws k "hello";
  Mtext.append ws k " world";
  Mtext.insert ws k 0 ">> ";
  Mtext.delete ws k ~pos:0 ~len:3;
  Mtext.insert ws k 2 "";
  Mtext.delete ws k ~pos:1 ~len:0;
  Alcotest.(check string) "contents" "hello world" (Mtext.get ws k);
  Alcotest.(check int) "length" 11 (Mtext.length ws k);
  Alcotest.(check int) "no-ops journal nothing" 3 (Ws.version_of ws k)

let mtree_helpers () =
  let k = Mtree.key ~name:"tree" in
  let ws = Ws.create () in
  Ws.init ws k [];
  Mtree.insert ws k [ 0 ] (Mtree.Op.branch "root" []);
  Mtree.insert ws k [ 0; 0 ] (Mtree.Op.leaf "kid");
  Mtree.relabel ws k [ 0; 0 ] "renamed";
  Alcotest.(check int) "size" 2 (Mtree.size ws k);
  Alcotest.(check (option string)) "find"
    (Some "renamed")
    (Option.map (fun n -> n.Mtree.Op.label) (Mtree.find ws k [ 0; 0 ]));
  Mtree.delete ws k [ 0 ];
  Alcotest.(check int) "deleted subtree" 0 (Mtree.size ws k)

let suite =
  [ Alcotest.test_case "workspace: init/read/update/version" `Quick workspace_basics
  ; Alcotest.test_case "workspace: copy isolation" `Quick copy_isolation
  ; Alcotest.test_case "workspace: listing 1 merge" `Quick listing1_merge
  ; Alcotest.test_case "workspace: merge order of children" `Quick two_children_merge_order
  ; Alcotest.test_case "workspace: register later-merged-wins" `Quick register_last_merged_wins
  ; Alcotest.test_case "workspace: sync-style rebase cycles" `Quick rebase_and_sync_cycle
  ; Alcotest.test_case "workspace: child-created keys" `Quick key_created_in_child
  ; Alcotest.test_case "workspace: journal truncation" `Quick truncation
  ; Alcotest.test_case "workspace: digest and equality" `Quick digest_and_equal
  ; Alcotest.test_case "workspace: custom mergeable type" `Quick custom_mergeable_type
  ; Alcotest.test_case "mlist helpers" `Quick mlist_helpers
  ; Alcotest.test_case "mqueue helpers" `Quick mqueue_helpers
  ; Alcotest.test_case "mstack helpers" `Quick mstack_helpers
  ; Alcotest.test_case "mcounter helpers" `Quick mcounter_helpers
  ; Alcotest.test_case "mset helpers" `Quick mset_helpers
  ; Alcotest.test_case "mmap helpers" `Quick mmap_helpers
  ; Alcotest.test_case "mtext helpers" `Quick mtext_helpers
  ; Alcotest.test_case "mtree helpers" `Quick mtree_helpers
  ]
