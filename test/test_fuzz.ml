(** lib/fuzz: generator/codec laws, oracle cleanliness on clean seeds, the
    seeded-mutation acceptance criterion (catch + shrink to <= 6 steps),
    byte-for-byte replay, and the two runtime corner cases this PR pins:
    queue push order across schedulers and [?validate] refusing a
    [merge_any_from_set]. *)

open Test_support
module P = Sm_fuzz.Program
module Rt = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Np = Sm_sim.Netpipe

let seeds_of n = List.init n (fun i -> Int64.of_int (i + 1))

(* --- program codec + generator ----------------------------------------------- *)

let codec_round_trip () =
  List.iter
    (fun profile ->
      List.iter
        (fun seed ->
          let p = Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth:3 ~profile in
          let p' = P.of_string (P.to_string p) in
          check_bool
            (Printf.sprintf "codec round-trips seed %Ld" seed)
            (p = p' && P.to_string p = P.to_string p'))
        (seeds_of 20))
    [ P.det_profile; P.full_profile ]

let generator_deterministic () =
  List.iter
    (fun seed ->
      let gen () = Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth:3 ~profile:P.full_profile in
      check_bool "same seed, same program" (gen () = gen ()))
    (seeds_of 10);
  let p1 = Sm_fuzz.Fuzzer.program_of_seed ~seed:1L ~depth:3 ~profile:P.det_profile in
  let p2 = Sm_fuzz.Fuzzer.program_of_seed ~seed:2L ~depth:3 ~profile:P.det_profile in
  check_bool "different seeds diverge" (p1 <> p2)

let generator_respects_profile () =
  List.iter
    (fun seed ->
      let p = Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth:4 ~profile:P.det_profile in
      check_bool "det profile: no any-merges" (not (P.uses_any_merge p));
      check_bool "det profile: no clones" (not (P.uses_clone p));
      check_bool "root spawns"
        (List.exists (function P.Spawn _ -> true | _ -> false) p.P.scripts.(0)))
    (seeds_of 20)

let profile_round_trip () =
  List.iter
    (fun p ->
      match P.profile_of_string (P.profile_to_string p) with
      | Some p' -> check_bool ("profile round-trips: " ^ P.profile_to_string p) (p = p')
      | None -> Alcotest.fail ("profile_of_string rejected " ^ P.profile_to_string p))
    [ P.det_profile; P.full_profile ];
  check_bool "unknown flag rejected" (P.profile_of_string "validate,warp" = None)

(* --- oracles ----------------------------------------------------------------- *)

let clean_seeds_pass () =
  Sm_fuzz.Oracle.with_env (fun env ->
      List.iter
        (fun (profile, name) ->
          List.iter
            (fun seed ->
              let p = Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth:2 ~profile in
              match Sm_fuzz.Oracle.check ~runs:2 env p with
              | Ok () -> ()
              | Error f ->
                Alcotest.failf "seed %Ld (%s): [%s] %s" seed name f.Sm_fuzz.Oracle.oracle
                  f.Sm_fuzz.Oracle.detail)
            (seeds_of 5))
        [ (P.det_profile, "det"); (P.full_profile, "full") ])

(* The rope oracle on clean seeds, from both starting representations: a
   focused run flips SM_ROPE inside the oracle, so driving it once with the
   ambient default and once from the flipped baseline exercises rope-vs-flat
   and flat-vs-rope digests on the same programs. *)
let rope_oracle_clean_seeds () =
  Sm_fuzz.Oracle.with_env (fun env ->
      let was = Sm_ot.Op_text.rope_enabled () in
      Fun.protect
        ~finally:(fun () -> Sm_ot.Op_text.set_rope was)
        (fun () ->
          List.iter
            (fun ambient ->
              Sm_ot.Op_text.set_rope ambient;
              List.iter
                (fun seed ->
                  let p =
                    Sm_fuzz.Fuzzer.program_of_seed ~seed ~depth:2 ~profile:P.full_profile
                  in
                  match Sm_fuzz.Oracle.check ~focus:"rope" ~runs:2 env p with
                  | Ok () -> ()
                  | Error f ->
                    Alcotest.failf "seed %Ld (ambient rope=%b): [%s] %s" seed ambient
                      f.Sm_fuzz.Oracle.oracle f.Sm_fuzz.Oracle.detail)
                (seeds_of 5))
            [ true; false ]))

(* The acceptance criterion: every PR-3 [Mutate] kind seeded into the data
   plane is caught by the differential oracle and shrinks to a program of at
   most 6 steps.  Driven through the corpus so the pinned entries and the
   test can never drift apart. *)
let corpus_catches_and_shrinks () =
  Sm_fuzz.Oracle.with_env (fun env ->
      List.iter
        (fun e ->
          match Sm_fuzz.Corpus.check ~runs:2 env e with
          | Error msg -> Alcotest.fail msg
          | Ok Sm_fuzz.Fuzzer.Passed ->
            check_bool (e.Sm_fuzz.Corpus.name ^ ": clean entry passes") (e.Sm_fuzz.Corpus.expect = None)
          | Ok (Sm_fuzz.Fuzzer.Failed r) ->
            let size = P.size r.Sm_fuzz.Fuzzer.shrunk in
            if size > 6 then
              Alcotest.failf "%s: shrunk to %d steps, want <= 6" e.Sm_fuzz.Corpus.name size;
            check_bool
              (e.Sm_fuzz.Corpus.name ^ ": shrunk program still fails differential")
              (Sm_fuzz.Oracle.check ~focus:"differential" ~runs:2
                 ?mutate:e.Sm_fuzz.Corpus.mutate env r.Sm_fuzz.Fuzzer.shrunk
              <> Ok ()))
        Sm_fuzz.Corpus.all)

let replay_byte_identical () =
  Sm_fuzz.Oracle.with_env (fun env ->
      let e =
        match Sm_fuzz.Corpus.find "catches-tie-bias" with
        | Some e -> e
        | None -> Alcotest.fail "corpus entry catches-tie-bias missing"
      in
      let once () =
        match
          Sm_fuzz.Fuzzer.fuzz_one ?mutate:e.Sm_fuzz.Corpus.mutate ~runs:2 env
            ~seed:e.Sm_fuzz.Corpus.seed ~depth:e.Sm_fuzz.Corpus.depth
            ~profile:e.Sm_fuzz.Corpus.profile ()
        with
        | Sm_fuzz.Fuzzer.Failed r -> Sm_fuzz.Fuzzer.report_to_string r
        | Sm_fuzz.Fuzzer.Passed -> Alcotest.fail "expected a failure to replay"
      in
      let a = once () in
      let b = once () in
      Alcotest.(check string) "replay reproduces the report byte-for-byte" a b)

(* --- satellite: queue push order pins merge serialization order --------------- *)

(* Op_queue's transform is the identity, so concurrent pushes land in merge
   *serialization* order — which for [merge_all] is child *creation* order.
   This is the [queue-push-order] known issue: pin it on both schedulers so
   any change to serialization order is caught as a digest break, not folk
   knowledge. *)
let queue_push_order () =
  let prog =
    P.of_string
      (String.concat "\n"
         [ "program v1"
         ; "task 0"
         ; "  spawn 0"  (* -> task 1, per target = idx + 1 + (j mod (n-idx-1)) *)
         ; "  spawn 1"  (* -> task 2 *)
         ; "  merge all 0 0"
         ; "task 1"
         ; "  op queue 0 3 0"  (* push 3 *)
         ; "task 2"
         ; "  op queue 0 7 0"  (* push 7 *)
         ; "end"
         ])
  in
  let keys = Sm_fuzz.Interp.Keyset.default () in
  let final ctx =
    Sm_fuzz.Interp.run keys prog ctx;
    Sm_fuzz.Interp.Keyset.queue_value (Rt.workspace ctx) keys
  in
  let coop = Rt.Coop.run final in
  Alcotest.(check (list int)) "coop: first-spawned child's push is first" [ 3; 7 ] coop;
  List.iter
    (fun domains ->
      let threaded = Rt.run ~domains final in
      Alcotest.(check (list int))
        (Printf.sprintf "threaded (%d domains) agrees with coop" domains)
        coop threaded)
    [ 1; 2 ]

(* --- satellite: ?validate refusing a merge_any_from_set ----------------------- *)

(* Refusal semantics for a sync-parked child (runtime.ml merge_child_locked):
   the child's pre-sync ops are rolled back, its [sync] returns
   [Error Validation_failed], and it *remains a running child* — the parent
   workspace is untouched.  Each child here does +1 / sync / +10; the refused
   child loses its +1 and later contributes only +10, the other contributes
   +1 then +10, so the final counter is exactly 21. *)
let validate_refuses_any_from_set () =
  let counter = Ws.create_key (module Sm_mergeable.Mcounter.Data) ~name:"t.counter" in
  let outcomes = Rt.Coop.run (fun ctx ->
      let ws = Rt.workspace ctx in
      Ws.init ws counter 0;
      let outcomes = ref [] in
      let child ctx =
        let ws = Rt.workspace ctx in
        Sm_mergeable.Mcounter.add ws counter 1;
        let r = Rt.sync ctx in
        outcomes := r :: !outcomes;
        Sm_mergeable.Mcounter.add ws counter 10
      in
      let h1 = Rt.spawn ctx child in
      let h2 = Rt.spawn ctx child in
      let before = Ws.digest ws in
      (match Rt.merge_any_from_set ~validate:(fun _ -> false) ctx [ h1; h2 ] with
      | Some _ -> ()
      | None -> Alcotest.fail "merge_any_from_set returned no handle");
      check_bool "refusal leaves the parent digest unchanged" (Ws.digest ws = before);
      check_bool "refused child is not retired"
        (Rt.status h1 <> Rt.Retired && Rt.status h2 <> Rt.Retired);
      check_bool "both children still pending" (Rt.has_children ctx);
      while Rt.has_children ctx do
        Rt.merge_all ctx
      done;
      Alcotest.(check int) "refused +1 lost, both +10s and one +1 land" 21
        (Sm_mergeable.Mcounter.get ws counter);
      !outcomes)
  in
  let errs =
    List.length (List.filter (function Error Rt.Validation_failed -> true | _ -> false) outcomes)
  in
  let oks = List.length (List.filter (function Ok () -> true | _ -> false) outcomes) in
  check_bool "exactly one sync was refused, one granted" (errs = 1 && oks = 1)

(* --- satellite: netpipe closed-connection sends are observable ---------------- *)

let netpipe_closed_send_observable () =
  Np.reset_stats ();
  let dropped = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Np.on_dropped_send None;
      Np.set_faults None;
      Np.reset_stats ())
    (fun () ->
      Np.on_dropped_send (Some (fun payload -> dropped := payload :: !dropped));
      let l = Np.listen () in
      let client = Np.connect l in
      let server = match Np.accept l with Some c -> c | None -> Alcotest.fail "accept" in
      Np.send client "alive";
      Alcotest.(check (option string)) "pre-close delivery" (Some "alive") (Np.recv server);
      Np.close client;
      Np.send client "lost-1";
      Np.send client "lost-2";
      Np.shutdown l;
      let st = Np.stats () in
      Alcotest.(check int) "dropped_closed counts both sends" 2 st.Np.dropped_closed;
      Alcotest.(check int) "delivered counts only the live send" 1 st.Np.delivered;
      Alcotest.(check (list string))
        "hook saw each dropped payload, in order" [ "lost-1"; "lost-2" ] (List.rev !dropped))

let netpipe_conservation () =
  List.iter
    (fun seed ->
      match Sm_fuzz.Net_target.check ~faults:Sm_fuzz.Net_target.default_faults ~seed () with
      | Ok _ -> ()
      | Error detail -> Alcotest.failf "seed %Ld: %s" seed detail)
    (seeds_of 8)

let netpipe_deterministic () =
  List.iter
    (fun seed ->
      match Sm_fuzz.Net_target.check_deterministic ~seed () with
      | Ok () -> ()
      | Error detail -> Alcotest.failf "seed %Ld: %s" seed detail)
    (seeds_of 4)

let netpipe_lossless_fifo () =
  List.iter
    (fun seed ->
      match Sm_fuzz.Net_target.check ~faults:Sm_fuzz.Net_target.no_faults ~seed () with
      | Ok _ -> ()
      | Error detail -> Alcotest.failf "seed %Ld: %s" seed detail)
    (seeds_of 4)

(* --- dist chaos invariance ---------------------------------------------------- *)

let dist_chaos_invariant () =
  List.iter
    (fun seed ->
      match Sm_fuzz.Dist_target.check ~seed () with
      | Ok _ -> ()
      | Error detail -> Alcotest.failf "seed %Ld: %s" seed detail)
    (seeds_of 2)

let suite =
  [ Alcotest.test_case "program: codec round-trip" `Quick codec_round_trip
  ; Alcotest.test_case "program: generator is seed-deterministic" `Quick generator_deterministic
  ; Alcotest.test_case "program: generator respects profile" `Quick generator_respects_profile
  ; Alcotest.test_case "program: profile string round-trip" `Quick profile_round_trip
  ; Alcotest.test_case "oracle: clean seeds pass everything" `Slow clean_seeds_pass
  ; Alcotest.test_case "oracle: rope differential from both representations" `Slow
      rope_oracle_clean_seeds
  ; Alcotest.test_case "corpus: seeded mutations caught, shrunk <= 6" `Slow
      corpus_catches_and_shrinks
  ; Alcotest.test_case "fuzz_one: failure report replays byte-for-byte" `Slow
      replay_byte_identical
  ; Alcotest.test_case "runtime: queue push order = spawn order, both schedulers" `Quick
      queue_push_order
  ; Alcotest.test_case "runtime: validate refusing merge_any_from_set" `Quick
      validate_refuses_any_from_set
  ; Alcotest.test_case "netpipe: closed-conn sends hit stats and hook" `Quick
      netpipe_closed_send_observable
  ; Alcotest.test_case "netpipe: conservation law under faults" `Quick netpipe_conservation
  ; Alcotest.test_case "netpipe: fault decisions are seed-deterministic" `Quick
      netpipe_deterministic
  ; Alcotest.test_case "netpipe: lossless runs deliver exact FIFO" `Quick netpipe_lossless_fifo
  ; Alcotest.test_case "dist: digest invariant under chaos relay" `Slow dist_chaos_invariant
  ]
