(* The cooperative effects-based scheduler: full API coverage on a single
   thread, deterministic merge_any, and interchangeability with the threaded
   scheduler. *)

open Test_support
module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Str_elt)
module Mcounter = Sm_mergeable.Mcounter

let kl = Mlist.key ~name:"coop-list"
let kc = Mcounter.key ~name:"coop-counter"

let listing1_coop () =
  let result =
    R.Coop.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kl [ "1"; "2"; "3" ];
        let t = R.spawn ctx (fun child -> Mlist.append (R.workspace child) kl "5") in
        Mlist.append ws kl "4";
        R.merge_all_from_set ctx [ t ];
        Mlist.get ws kl)
  in
  Alcotest.(check (list string)) "listing 1 cooperatively" [ "1"; "2"; "3"; "4"; "5" ] result

let sync_rounds_coop () =
  let result =
    R.Coop.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kc 0;
        for _ = 1 to 3 do
          ignore
            (R.spawn ctx (fun child ->
                 for _ = 1 to 2 do
                   Mcounter.incr (R.workspace child) kc;
                   ignore (R.sync child)
                 done))
        done;
        while R.has_children ctx do
          R.merge_all ctx
        done;
        Mcounter.get ws kc)
  in
  Alcotest.(check int) "3 tasks x 2 rounds" 6 result

(* merge_any picks by readiness order, which the FIFO schedule fixes: the
   sequence of merged children is identical on every cooperative run. *)
let merge_any_is_deterministic () =
  let one_run () =
    R.Coop.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kl [];
        for i = 0 to 5 do
          ignore
            (R.spawn ctx (fun child -> Mlist.append (R.workspace child) kl (string_of_int i)))
        done;
        let rec drain () = match R.merge_any ctx with Some _ -> drain () | None -> () in
        drain ();
        Mlist.get ws kl)
  in
  let a = one_run () and b = one_run () and c = one_run () in
  Alcotest.(check (list string)) "run 2 = run 1" a b;
  Alcotest.(check (list string)) "run 3 = run 1" a c;
  Alcotest.(check int) "all merged" 6 (List.length a)

let abort_validate_coop () =
  R.Coop.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let bad = R.spawn ctx (fun c -> Mcounter.add (R.workspace c) kc 100) in
      let good = R.spawn ctx (fun c -> Mcounter.incr (R.workspace c) kc) in
      R.abort ctx bad;
      R.merge_all ~validate:(fun w -> Mcounter.get w kc <= 50) ctx;
      Alcotest.(check int) "aborted discarded, good kept" 1 (Mcounter.get ws kc);
      check_bool "statuses" (R.status bad = R.Retired && R.status good = R.Retired))

let failures_coop () =
  R.Coop.run (fun ctx ->
      let ws = R.workspace ctx in
      Ws.init ws kc 0;
      let h =
        R.spawn ctx (fun c ->
            Mcounter.add (R.workspace c) kc 9;
            failwith "coop boom")
      in
      R.merge_all ctx;
      Alcotest.(check int) "discarded" 0 (Mcounter.get ws kc);
      check_bool "error kept" (match R.error h with Some (Failure m) -> m = "coop boom" | _ -> false))

let grandchildren_coop () =
  let total =
    R.Coop.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws kc 0;
        ignore
          (R.spawn ctx (fun child ->
               Mcounter.incr (R.workspace child) kc;
               ignore (R.spawn child (fun g -> Mcounter.add (R.workspace g) kc 10))));
        R.merge_all ctx;
        Mcounter.get ws kc)
  in
  Alcotest.(check int) "subtree merged" 11 total

let par_on_coop () =
  let result =
    R.Coop.run (fun ctx -> Sm_core.Par.reduce ~chunks:3 ctx ~map:(fun x -> x * x) ~combine:( + ) ~init:0 (List.init 10 Fun.id))
  in
  Alcotest.(check int) "Par works cooperatively" 285 result

(* the same program gives the same digest on both schedulers *)
let schedulers_agree () =
  let program ctx =
    let ws = R.workspace ctx in
    Ws.init ws kl [];
    Ws.init ws kc 0;
    for i = 0 to 4 do
      ignore
        (R.spawn ctx (fun c ->
             Mlist.append (R.workspace c) kl (string_of_int i);
             Mcounter.add (R.workspace c) kc i))
    done;
    R.merge_all ctx;
    Ws.digest ws
  in
  let threaded = R.run program in
  let coop = R.Coop.run program in
  Alcotest.(check string) "identical digests" threaded coop

let record_replay_coop () =
  (* record cooperatively, replay cooperatively: identity *)
  let trace = R.Trace.create () in
  let program ctx =
    let ws = R.workspace ctx in
    Ws.init ws kl [];
    for i = 0 to 3 do
      ignore (R.spawn ctx (fun c -> Mlist.append (R.workspace c) kl (string_of_int i)))
    done;
    let rec drain () = match R.merge_any ctx with Some _ -> drain () | None -> () in
    drain ();
    Mlist.get ws kl
  in
  let recorded = R.Coop.run ~record:trace program in
  Alcotest.(check int) "4 choices" 4 (R.Trace.length trace);
  let replayed = R.Coop.run ~replay:trace program in
  Alcotest.(check (list string)) "replay matches" recorded replayed

let coop_livelock_detected () =
  (* a root body that returns while a child is parked in sync and never
     merged again is impossible (implicit merges run) — but a child that
     syncs forever keeps the cooperative loop alive; we only check that a
     well-formed empty program terminates instantly *)
  Alcotest.(check int) "empty program" 7 (R.Coop.run (fun _ -> 7))

let suite =
  [ Alcotest.test_case "listing 1" `Quick listing1_coop
  ; Alcotest.test_case "sync rounds" `Quick sync_rounds_coop
  ; Alcotest.test_case "merge_any deterministic under FIFO" `Quick merge_any_is_deterministic
  ; Alcotest.test_case "abort + validate" `Quick abort_validate_coop
  ; Alcotest.test_case "failures discarded" `Quick failures_coop
  ; Alcotest.test_case "grandchildren" `Quick grandchildren_coop
  ; Alcotest.test_case "Par on the cooperative scheduler" `Quick par_on_coop
  ; Alcotest.test_case "threaded and coop digests agree" `Quick schedulers_agree
  ; Alcotest.test_case "record/replay cooperatively" `Quick record_replay_coop
  ; Alcotest.test_case "trivial program" `Quick coop_livelock_detected
  ]
