(* The determinism sanitizer (Sm_check.Detsan) and the Detcheck additions
   that ride along with it: the explained oracle and the cross_scheduler
   watchdog. *)

open Test_support
module Rt = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Mc = Sm_mergeable.Mcounter
module Detsan = Sm_check.Detsan
module Detcheck = Sm_core.Detcheck

(* keys minted once, at module level — the clean pattern DetSan enforces *)
let k = Mc.key ~name:"test_detsan.counter"
let tags hazards = List.map Detsan.hazard_tag hazards

(* --- hazard detection ------------------------------------------------------ *)

let clean_is_clean () =
  let hazards, digest =
    Detsan.run (fun ctx ->
        Ws.init (Rt.workspace ctx) k 0;
        let a = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
        let b = Rt.spawn ctx (fun c -> Mc.add (Rt.workspace c) k 2) in
        Rt.merge_all_from_set ctx [ a; b ])
  in
  check_bool "no hazards" (hazards = []);
  check_bool "digest computed" (String.length digest > 0)

let merge_any_flagged () =
  let hazards, _ =
    Detsan.run (fun ctx ->
        Ws.init (Rt.workspace ctx) k 0;
        let _a = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
        let _b = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
        ignore (Rt.merge_any ctx);
        Rt.merge_all ctx)
  in
  check_bool "nondet-merge flagged" (List.mem "nondet-merge" (tags hazards))

let key_minted_in_task_flagged () =
  let hazards, _ =
    Detsan.run (fun ctx ->
        let fresh = Mc.key ~name:"test_detsan.fresh" in
        Ws.init (Rt.workspace ctx) fresh 1)
  in
  match List.filter (function Detsan.Key_minted_in_task _ -> true | _ -> false) hazards with
  | [ Detsan.Key_minted_in_task { key; tasks } ] ->
    check_bool "names the key" (key = "test_detsan.fresh");
    check_bool "task provenance" (tasks <> [])
  | _ -> Alcotest.fail "expected exactly one key-in-task hazard"

let unmerged_children_flagged () =
  let hazards, _ =
    Detsan.run (fun ctx ->
        Ws.init (Rt.workspace ctx) k 0;
        ignore (Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k)))
  in
  match List.filter (function Detsan.Unmerged_children _ -> true | _ -> false) hazards with
  | [ Detsan.Unmerged_children { task; children } ] ->
    check_bool "root is the offender" (task = "root");
    check_bool "child named" (List.length children = 1)
  | _ -> Alcotest.fail "expected exactly one unmerged-children hazard"

let op_after_digest_flagged () =
  let hazards, _ =
    Detsan.run (fun ctx ->
        let ws = Rt.workspace ctx in
        Ws.init ws k 0;
        ignore (Ws.digest ws);
        Mc.incr ws k)
  in
  check_bool "op-after-digest flagged" (List.mem "op-after-digest" (tags hazards))

(* Hazards are deduplicated: merge_any in a loop is one finding. *)
let hazards_dedup () =
  let hazards, _ =
    Detsan.run (fun ctx ->
        Ws.init (Rt.workspace ctx) k 0;
        for _ = 1 to 4 do
          let _h = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
          ignore (Rt.merge_any ctx)
        done)
  in
  check_bool "one finding, not four"
    (List.length (List.filter (String.equal "nondet-merge") (tags hazards)) = 1)

(* Explicit merges mean no sanitizer noise: the same program with merge_all
   instead of merge_any is hazard-free, and the digest is reproducible. *)
let sanitized_program_still_deterministic () =
  let program ctx =
    Ws.init (Rt.workspace ctx) k 0;
    let a = Rt.spawn ctx (fun c -> Mc.add (Rt.workspace c) k 3) in
    let b = Rt.spawn ctx (fun c -> Mc.add (Rt.workspace c) k 4) in
    Rt.merge_all_from_set ctx [ a; b ]
  in
  let h1, d1 = Detsan.run program in
  let h2, d2 = Detsan.run program in
  check_bool "clean twice" (h1 = [] && h2 = []);
  check_bool "same digest" (String.equal d1 d2)

(* observe uninstalls its hooks even on exceptions: a later run must not
   inherit a stale listener. *)
let observe_uninstalls () =
  (try ignore (Detsan.observe (fun () -> failwith "boom")) with Failure _ -> ());
  check_bool "runtime hook gone" (not (Rt.Sanitizer_hook.active ()));
  check_bool "workspace hook gone" (not (Ws.Sanitizer_hook.active ()))

(* --- Detcheck.deterministic_explained -------------------------------------- *)

let explained_ok () =
  let program ctx =
    Ws.init (Rt.workspace ctx) k 0;
    let a = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
    Rt.merge_all_from_set ctx [ a ]
  in
  match Detcheck.deterministic_explained ~runs:3 program with
  | Ok () -> ()
  | Error d -> Alcotest.failf "unexpected divergence: %s" (Format.asprintf "%a" Detcheck.pp_divergence d)

let explained_names_the_run () =
  (* deterministically divergent: the program reads cross-run mutable state,
     so run 1 is the first to differ from run 0 *)
  let calls = ref 0 in
  let program ctx =
    incr calls;
    Ws.init (Rt.workspace ctx) k !calls
  in
  match Detcheck.deterministic_explained ~runs:3 program with
  | Ok () -> Alcotest.fail "expected divergence"
  | Error d ->
    check_bool "first diverging run" (d.run_index = 1);
    check_bool "digest differs from reference" (not (String.equal d.digest d.reference))

(* --- Detcheck.cross_scheduler watchdog ------------------------------------- *)

let cross_scheduler_ok () =
  let program ctx =
    Ws.init (Rt.workspace ctx) k 0;
    let a = Rt.spawn ctx (fun c -> Mc.add (Rt.workspace c) k 5) in
    Rt.merge_all_from_set ctx [ a ]
  in
  check_bool "converges across schedulers" (Detcheck.cross_scheduler ~timeout_s:30. ~runs:2 program)

let cross_scheduler_timeout () =
  (* A program that blocks its OS thread forever: under the cooperative
     scheduler this can never be preempted, so without the watchdog the
     check would stall.  ISSUE 3 satellite: it must fail with a diagnostic
     instead.  (The stuck worker thread is abandoned by design.) *)
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let program ctx =
    Ws.init (Rt.workspace ctx) k 0;
    Mutex.lock mu;
    while true do
      Condition.wait cond mu
    done
  in
  match Detcheck.cross_scheduler ~timeout_s:0.2 ~runs:2 program with
  | (_ : bool) -> Alcotest.fail "expected Timeout"
  | exception Detcheck.Timeout diag -> check_bool "diagnostic present" (String.length diag > 0)

(* A hazard is a crash-grade moment: DetSan must freeze every flight ring
   into a post-mortem snapshot the instant it fires, so the fuzz report can
   embed the last-N events that led up to it. *)
let hazard_triggers_flight_dump () =
  Fun.protect ~finally:(fun () -> Sm_obs.Flight_recorder.reset ())
  @@ fun () ->
  Sm_obs.Flight_recorder.reset ();
  let r = Sm_obs.Flight_recorder.create ~capacity:8 "detsan_lane" in
  Sm_obs.Flight_recorder.record r
    (Sm_obs.Event.make ~task:"detsan_lane" ~task_id:1
       ~args:[ ("op", Sm_obs.Event.S "before-hazard") ]
       Sm_obs.Event.Note);
  let hazards, _ =
    Detsan.run (fun ctx ->
        let fresh = Mc.key ~name:"test_detsan.flight_fresh" in
        Ws.init (Rt.workspace ctx) fresh 1)
  in
  check_bool "the seeded hazard fired" (hazards <> []);
  match Sm_obs.Flight_recorder.last_trigger () with
  | Some (reason, dumps) ->
    check_bool "reason names detsan"
      (String.length reason >= 6 && String.sub reason 0 6 = "detsan");
    (match List.assoc_opt "detsan_lane" dumps with
    | Some [ line ] ->
      check_bool "snapshot froze the pre-hazard event"
        (match Sm_obs.Json.of_string line with
        | Sm_obs.Json.Obj fields -> List.mem_assoc "args" fields
        | _ -> false)
    | _ -> Alcotest.fail "snapshot must hold exactly the one recorded event")
  | None -> Alcotest.fail "a hazard must trigger a flight snapshot"

(* --- representation parity: COW sharing vs the deep-copy baseline ----------- *)

(* The workspace representation must be invisible to the sanitizer: the same
   program yields the same hazard tags and digest whether spawns share
   persistent states (COW, default) or deep-copy them (the SM_COW=0
   baseline).  Lazy materialization emits no hooks, so it can neither add
   nor drop Updated/Digested provenance. *)
let cow_hazard_parity () =
  let clean ctx =
    Ws.init (Rt.workspace ctx) k 0;
    let a = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
    let b = Rt.spawn ctx (fun c -> Mc.add (Rt.workspace c) k 2) in
    Rt.merge_all_from_set ctx [ a; b ]
  in
  let hazardous ctx =
    Ws.init (Rt.workspace ctx) k 0;
    let _a = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
    let _b = Rt.spawn ctx (fun c -> Mc.incr (Rt.workspace c) k) in
    ignore (Rt.merge_any ctx);
    Rt.merge_all ctx
  in
  let under_cow on prog =
    let saved = Ws.cow_enabled () in
    Fun.protect
      ~finally:(fun () -> Ws.set_cow saved)
      (fun () ->
        Ws.set_cow on;
        Detsan.run prog)
  in
  let h_on, d_on = under_cow true clean in
  let h_off, d_off = under_cow false clean in
  check_bool "clean stays clean in both representations" (h_on = [] && h_off = []);
  check_bool "clean digests agree across representations" (String.equal d_on d_off);
  let hz_on, hd_on = under_cow true hazardous in
  let hz_off, hd_off = under_cow false hazardous in
  check_bool "identical hazard tags across representations" (tags hz_on = tags hz_off);
  check_bool "nondet-merge seen in both" (List.mem "nondet-merge" (tags hz_on));
  check_bool "hazardous digests agree across representations" (String.equal hd_on hd_off)

let suite =
  [ Alcotest.test_case "clean program has no hazards" `Quick clean_is_clean
  ; Alcotest.test_case "merge_any is flagged" `Quick merge_any_flagged
  ; Alcotest.test_case "key minted in task is flagged" `Quick key_minted_in_task_flagged
  ; Alcotest.test_case "unmerged children are flagged" `Quick unmerged_children_flagged
  ; Alcotest.test_case "op after digest is flagged" `Quick op_after_digest_flagged
  ; Alcotest.test_case "hazards deduplicate" `Quick hazards_dedup
  ; Alcotest.test_case "hazards and digests agree across COW/deep-copy" `Quick cow_hazard_parity
  ; Alcotest.test_case "hazard triggers a flight snapshot" `Quick hazard_triggers_flight_dump
  ; Alcotest.test_case "sanitized program stays deterministic" `Quick
      sanitized_program_still_deterministic
  ; Alcotest.test_case "observe uninstalls hooks on failure" `Quick observe_uninstalls
  ; Alcotest.test_case "deterministic_explained: ok" `Quick explained_ok
  ; Alcotest.test_case "deterministic_explained: names the run" `Quick explained_names_the_run
  ; Alcotest.test_case "cross_scheduler: passes a clean program" `Slow cross_scheduler_ok
  ; Alcotest.test_case "cross_scheduler: stall becomes Timeout" `Quick cross_scheduler_timeout
  ]
