(* Text OT: pinned range-transform cases (including the one-to-many split)
   plus randomized TP1 / sequence convergence. *)

open Test_support
module T = Sm_ot.Op_text
module Conv = Sm_ot.Convergence.Make (T)

let ops = Alcotest.(list (testable T.pp_op ( = )))

let apply_cases () =
  Alcotest.(check string) "ins" "heXYllo" (T.apply "hello" (T.ins 2 "XY"));
  Alcotest.(check string) "ins front" "XYhello" (T.apply "hello" (T.ins 0 "XY"));
  Alcotest.(check string) "ins back" "helloXY" (T.apply "hello" (T.ins 5 "XY"));
  Alcotest.(check string) "del" "heo" (T.apply "hello" (T.del ~pos:2 ~len:2));
  Alcotest.check_raises "ins out of range"
    (Invalid_argument "Op_text.apply: ins position 6 out of range (len 5)") (fun () ->
      ignore (T.apply "hello" (T.ins 6 "x")));
  Alcotest.check_raises "del out of range"
    (Invalid_argument "Op_text.apply: del range [4,6) out of range (len 5)") (fun () ->
      ignore (T.apply "hello" (T.Del (4, 2))));
  Alcotest.check_raises "del constructor rejects zero length"
    (Invalid_argument "Op_text.del: len must be positive") (fun () -> ignore (T.del ~pos:0 ~len:0))

let transform_cases () =
  let t ?(tie = Sm_ot.Side.uniform Sm_ot.Side.Incoming) a b = T.transform a ~against:b ~tie in
  (* ins vs ins *)
  Alcotest.check ops "ins before ins" [ T.ins 1 "a" ] (t (T.ins 1 "a") (T.ins 3 "bb"));
  Alcotest.check ops "ins after ins" [ T.ins 5 "a" ] (t (T.ins 3 "a") (T.ins 1 "bb"));
  Alcotest.check ops "ins tie incoming" [ T.ins 2 "a" ] (t (T.ins 2 "a") (T.ins 2 "bb"));
  Alcotest.check ops "ins tie applied" [ T.ins 4 "a" ]
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (T.ins 2 "a") (T.ins 2 "bb"));
  (* ins vs del *)
  Alcotest.check ops "ins before del" [ T.ins 1 "a" ] (t (T.ins 1 "a") (T.Del (2, 3)));
  Alcotest.check ops "ins after del" [ T.ins 2 "a" ] (t (T.ins 5 "a") (T.Del (1, 3)));
  Alcotest.check ops "ins inside del collapses" [ T.ins 1 "a" ] (t (T.ins 3 "a") (T.Del (1, 3)));
  (* del vs ins: the split case *)
  Alcotest.check ops "del after ins" [ T.Del (5, 2) ] (t (T.Del (3, 2)) (T.ins 1 "xy"));
  Alcotest.check ops "del before ins" [ T.Del (1, 2) ] (t (T.Del (1, 2)) (T.ins 5 "xy"));
  Alcotest.check ops "del split around ins" [ T.Del (1, 2); T.Del (3, 3) ]
    (t (T.Del (1, 5)) (T.ins 3 "xy"));
  (* del vs del *)
  Alcotest.check ops "del disjoint left" [ T.Del (1, 2) ] (t (T.Del (1, 2)) (T.Del (5, 2)));
  Alcotest.check ops "del disjoint right" [ T.Del (2, 2) ] (t (T.Del (5, 2)) (T.Del (2, 3)));
  Alcotest.check ops "del identical drops" [] (t (T.Del (2, 3)) (T.Del (2, 3)));
  Alcotest.check ops "del subsumed drops" [] (t (T.Del (3, 2)) (T.Del (2, 4)));
  Alcotest.check ops "del overlap left" [ T.Del (2, 2) ] (t (T.Del (2, 4)) (T.Del (4, 4)));
  Alcotest.check ops "del overlap right" [ T.Del (2, 2) ] (t (T.Del (3, 4)) (T.Del (2, 3)))

(* The paper's Figure 1/2 scenario transliterated to text. *)
let fig2_text () =
  let base = "abc" in
  let op_a = T.del ~pos:2 ~len:1 and op_b = T.ins 0 "d" in
  let a' = T.transform op_a ~against:op_b ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) in
  let site_b = List.fold_left T.apply (T.apply base op_b) a' in
  let b' = T.transform op_b ~against:op_a ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) in
  let site_a = List.fold_left T.apply (T.apply base op_a) b' in
  Alcotest.(check string) "converged" site_a site_b;
  Alcotest.(check string) "expected" "dab" site_a

let gen_state = QCheck2.Gen.(map (fun n -> String.init n (fun i -> Char.chr (97 + (i mod 26)))) (int_range 0 12))

let gen_op_for s =
  let open QCheck2.Gen in
  let n = String.length s in
  let gen_ins = map2 (fun p t -> T.ins (min p n) (String.make (1 + (t mod 3)) 'X')) (int_range 0 n) (int_range 0 2) in
  if n = 0 then gen_ins
  else
    frequency
      [ (1, gen_ins)
      ; ( 1
        , int_range 0 (n - 1) >>= fun p ->
          int_range 1 (n - p) >>= fun l -> return (T.Del (p, l)) )
      ]

let gen_pair =
  let open QCheck2.Gen in
  gen_state >>= fun s ->
  gen_op_for s >>= fun a ->
  gen_op_for s >>= fun b ->
  bool >>= fun a_wins -> return (s, a, b, a_wins)

let gen_seq_for s =
  let open QCheck2.Gen in
  int_range 0 5 >>= fun n ->
  let rec go s acc n =
    if n = 0 then return (List.rev acc)
    else gen_op_for s >>= fun op -> go (T.apply s op) (op :: acc) (n - 1)
  in
  go s [] n

let gen_two_seqs =
  let open QCheck2.Gen in
  gen_state >>= fun s ->
  gen_seq_for s >>= fun left ->
  gen_seq_for s >>= fun right ->
  oneofl [ Sm_ot.Side.uniform Sm_ot.Side.Incoming; Sm_ot.Side.uniform Sm_ot.Side.Applied; Sm_ot.Side.serialization; Sm_ot.Side.flip Sm_ot.Side.serialization ] >>= fun tie -> return (s, left, right, tie)

let suite =
  [ Alcotest.test_case "apply: substring edits" `Quick apply_cases
  ; Alcotest.test_case "IT cases incl. range split" `Quick transform_cases
  ; Alcotest.test_case "figure 2 on text" `Quick fig2_text
  ; qtest ~count:2000 "TP1 on random text ops" gen_pair (fun (s, a, b, a_wins) ->
        Conv.tp1 ~state:s ~a ~b ~a_wins)
  ; qtest ~count:500 "cross converges random text sequences" gen_two_seqs
      (fun (s, left, right, tie) -> Conv.seqs_converge ~state:s ~left ~right ~tie)
  ]
