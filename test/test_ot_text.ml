(* Text OT: pinned range-transform cases (including the one-to-many split)
   plus randomized TP1 / sequence convergence.  States go through
   [T.of_string], so the whole suite runs against whichever representation
   the SM_ROPE switch selects; the error-message parity case pins both
   representations explicitly. *)

open Test_support
module T = Sm_ot.Op_text
module Conv = Sm_ot.Convergence.Make (T)

let ops = Alcotest.(list (testable T.pp_op ( = )))
let apply_s s op = T.to_string (T.apply (T.of_string s) op)

let apply_cases () =
  Alcotest.(check string) "ins" "heXYllo" (apply_s "hello" (T.ins 2 "XY"));
  Alcotest.(check string) "ins front" "XYhello" (apply_s "hello" (T.ins 0 "XY"));
  Alcotest.(check string) "ins back" "helloXY" (apply_s "hello" (T.ins 5 "XY"));
  Alcotest.(check string) "del" "heo" (apply_s "hello" (T.del ~pos:2 ~len:2));
  Alcotest.check_raises "ins out of range"
    (Invalid_argument "Op_text.apply: ins position 6 out of range (len 5)") (fun () ->
      ignore (apply_s "hello" (T.ins 6 "x")));
  Alcotest.check_raises "del out of range"
    (Invalid_argument "Op_text.apply: del range [4,6) out of range (len 5)") (fun () ->
      ignore (apply_s "hello" (T.Del (4, 2))));
  Alcotest.check_raises "del constructor rejects zero length"
    (Invalid_argument "Op_text.del: len must be positive") (fun () -> ignore (T.del ~pos:0 ~len:0))

(* Invalid operations must fail with byte-identical messages whether the
   document is flat or a rope — error text is observable behaviour, and the
   differential battery compares it. *)
let error_message_parity () =
  let msg st f =
    match f st with
    | () -> "no exception"
    | exception Invalid_argument m -> m
  in
  let probes =
    [ ("ins position oob", fun st -> ignore (T.apply st (T.ins 6 "x")))
    ; ("ins position far oob", fun st -> ignore (T.apply st (T.ins 1000 "x")))
    ; ("ins negative position", fun st -> ignore (T.apply st (T.Ins (-1, "x"))))
    ; ("del range oob", fun st -> ignore (T.apply st (T.Del (4, 2))))
    ; ("del wholly oob", fun st -> ignore (T.apply st (T.Del (9, 3))))
    ; ("del zero length", fun st -> ignore (T.apply st (T.Del (2, 0))))
    ; ("del negative length", fun st -> ignore (T.apply st (T.Del (2, -1))))
    ]
  in
  List.iter
    (fun (name, f) ->
      Alcotest.(check string) name
        (msg (T.flat_of_string "hello") f)
        (msg (T.rope_of_string "hello") f))
    probes;
  (* and on a document long enough that the rope actually has chunks *)
  let long = String.concat "" (List.init 500 (fun i -> Printf.sprintf "line %04d\n" i)) in
  let oob = String.length long + 7 in
  List.iter
    (fun (name, f) ->
      Alcotest.(check string) name (msg (T.flat_of_string long) f) (msg (T.rope_of_string long) f))
    [ ("long ins oob", fun st -> ignore (T.apply st (T.Ins (oob, "x"))))
    ; ("long del oob", fun st -> ignore (T.apply st (T.Del (oob - 3, 5))))
    ]

let transform_cases () =
  let t ?(tie = Sm_ot.Side.uniform Sm_ot.Side.Incoming) a b = T.transform a ~against:b ~tie in
  (* ins vs ins *)
  Alcotest.check ops "ins before ins" [ T.ins 1 "a" ] (t (T.ins 1 "a") (T.ins 3 "bb"));
  Alcotest.check ops "ins after ins" [ T.ins 5 "a" ] (t (T.ins 3 "a") (T.ins 1 "bb"));
  Alcotest.check ops "ins tie incoming" [ T.ins 2 "a" ] (t (T.ins 2 "a") (T.ins 2 "bb"));
  Alcotest.check ops "ins tie applied" [ T.ins 4 "a" ]
    (t ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) (T.ins 2 "a") (T.ins 2 "bb"));
  (* ins vs del *)
  Alcotest.check ops "ins before del" [ T.ins 1 "a" ] (t (T.ins 1 "a") (T.Del (2, 3)));
  Alcotest.check ops "ins after del" [ T.ins 2 "a" ] (t (T.ins 5 "a") (T.Del (1, 3)));
  Alcotest.check ops "ins inside del collapses" [ T.ins 1 "a" ] (t (T.ins 3 "a") (T.Del (1, 3)));
  (* del vs ins: the split case *)
  Alcotest.check ops "del after ins" [ T.Del (5, 2) ] (t (T.Del (3, 2)) (T.ins 1 "xy"));
  Alcotest.check ops "del before ins" [ T.Del (1, 2) ] (t (T.Del (1, 2)) (T.ins 5 "xy"));
  Alcotest.check ops "del split around ins" [ T.Del (1, 2); T.Del (3, 3) ]
    (t (T.Del (1, 5)) (T.ins 3 "xy"));
  (* del vs del *)
  Alcotest.check ops "del disjoint left" [ T.Del (1, 2) ] (t (T.Del (1, 2)) (T.Del (5, 2)));
  Alcotest.check ops "del disjoint right" [ T.Del (2, 2) ] (t (T.Del (5, 2)) (T.Del (2, 3)));
  Alcotest.check ops "del identical drops" [] (t (T.Del (2, 3)) (T.Del (2, 3)));
  Alcotest.check ops "del subsumed drops" [] (t (T.Del (3, 2)) (T.Del (2, 4)));
  Alcotest.check ops "del overlap left" [ T.Del (2, 2) ] (t (T.Del (2, 4)) (T.Del (4, 4)));
  Alcotest.check ops "del overlap right" [ T.Del (2, 2) ] (t (T.Del (3, 4)) (T.Del (2, 3)))

(* The paper's Figure 1/2 scenario transliterated to text. *)
let fig2_text () =
  let base = T.of_string "abc" in
  let op_a = T.del ~pos:2 ~len:1 and op_b = T.ins 0 "d" in
  let a' = T.transform op_a ~against:op_b ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) in
  let site_b = T.to_string (List.fold_left T.apply (T.apply base op_b) a') in
  let b' = T.transform op_b ~against:op_a ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) in
  let site_a = T.to_string (List.fold_left T.apply (T.apply base op_a) b') in
  Alcotest.(check string) "converged" site_a site_b;
  Alcotest.(check string) "expected" "dab" site_a

let gen_str = QCheck2.Gen.(map (fun n -> String.init n (fun i -> Char.chr (97 + (i mod 26)))) (int_range 0 12))

let gen_op_for_len n =
  let open QCheck2.Gen in
  let gen_ins = map2 (fun p t -> T.ins (min p n) (String.make (1 + (t mod 3)) 'X')) (int_range 0 n) (int_range 0 2) in
  if n = 0 then gen_ins
  else
    frequency
      [ (1, gen_ins)
      ; ( 1
        , int_range 0 (n - 1) >>= fun p ->
          int_range 1 (n - p) >>= fun l -> return (T.Del (p, l)) )
      ]

let gen_pair =
  let open QCheck2.Gen in
  gen_str >>= fun s ->
  gen_op_for_len (String.length s) >>= fun a ->
  gen_op_for_len (String.length s) >>= fun b ->
  bool >>= fun a_wins -> return (T.of_string s, a, b, a_wins)

let gen_seq_for s =
  let open QCheck2.Gen in
  int_range 0 5 >>= fun n ->
  let rec go st acc n =
    if n = 0 then return (List.rev acc)
    else gen_op_for_len (T.length st) >>= fun op -> go (T.apply st op) (op :: acc) (n - 1)
  in
  go (T.of_string s) [] n

let gen_two_seqs =
  let open QCheck2.Gen in
  gen_str >>= fun s ->
  gen_seq_for s >>= fun left ->
  gen_seq_for s >>= fun right ->
  oneofl [ Sm_ot.Side.uniform Sm_ot.Side.Incoming; Sm_ot.Side.uniform Sm_ot.Side.Applied; Sm_ot.Side.serialization; Sm_ot.Side.flip Sm_ot.Side.serialization ] >>= fun tie -> return (T.of_string s, left, right, tie)

let suite =
  [ Alcotest.test_case "apply: substring edits" `Quick apply_cases
  ; Alcotest.test_case "error messages agree across representations" `Quick error_message_parity
  ; Alcotest.test_case "IT cases incl. range split" `Quick transform_cases
  ; Alcotest.test_case "figure 2 on text" `Quick fig2_text
  ; qtest ~count:2000 "TP1 on random text ops" gen_pair (fun (s, a, b, a_wins) ->
        Conv.tp1 ~state:s ~a ~b ~a_wins)
  ; qtest ~count:500 "cross converges random text sequences" gen_two_seqs
      (fun (s, left, right, tie) -> Conv.seqs_converge ~state:s ~left ~right ~tie)
  ]
