(* Binary codecs: pinned wire bytes plus roundtrip properties for every
   combinator, and malformed-input rejection. *)

open Test_support
module C = Sm_util.Codec

let roundtrip c v = C.decode c (C.encode c v) = v

let pinned_encodings () =
  Alcotest.(check string) "zero int" "\x00" (C.encode C.int 0);
  Alcotest.(check string) "one is zigzagged" "\x02" (C.encode C.int 1);
  Alcotest.(check string) "minus one" "\x01" (C.encode C.int (-1));
  Alcotest.(check string) "varint spill" "\x80\x02" (C.encode C.int 128);
  Alcotest.(check string) "string" "\x03abc" (C.encode C.string "abc");
  Alcotest.(check string) "bool" "\x01" (C.encode C.bool true);
  Alcotest.(check string) "unit is empty" "" (C.encode C.unit ());
  Alcotest.(check string) "list" "\x02\x02\x04" (C.encode (C.list C.int) [ 1; 2 ])

let malformed_inputs () =
  let rejects name c s =
    check_bool name (match C.decode c s with _ -> false | exception C.Decode_error _ -> true)
  in
  rejects "truncated varint" C.int "\x80";
  rejects "truncated string" C.string "\x05ab";
  rejects "bad bool" C.bool "\x07";
  rejects "trailing garbage" C.int "\x00\x00";
  rejects "empty input for int" C.int "";
  rejects "negative-ish huge list" (C.list C.int) "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"

let int_roundtrip =
  qtest ~count:1000 "int roundtrip" QCheck2.Gen.int (fun v -> roundtrip C.int v)

let int64_roundtrip =
  qtest ~count:1000 "int64 roundtrip"
    QCheck2.Gen.(map Int64.of_int int)
    (fun v -> roundtrip C.int64 v)

let extremes () =
  check_bool "max_int" (roundtrip C.int max_int);
  check_bool "min_int" (roundtrip C.int min_int);
  check_bool "int64 min" (roundtrip C.int64 Int64.min_int);
  check_bool "int64 max" (roundtrip C.int64 Int64.max_int);
  check_bool "nan" (Int64.bits_of_float (C.decode C.float (C.encode C.float Float.nan))
                    = Int64.bits_of_float Float.nan);
  check_bool "neg zero" (roundtrip C.float (-0.0));
  check_bool "infinity" (roundtrip C.float Float.infinity)

let float_roundtrip =
  qtest ~count:500 "float roundtrip" QCheck2.Gen.float (fun v -> roundtrip C.float v)

let string_roundtrip =
  qtest ~count:500 "string roundtrip (arbitrary bytes)" QCheck2.Gen.string (fun v ->
      roundtrip C.string v)

let composite_roundtrip =
  let codec =
    C.triple (C.list (C.pair C.int C.string)) (C.option C.bool) (C.array C.int64)
  in
  let gen =
    QCheck2.Gen.(
      triple
        (list (pair int string))
        (option bool)
        (map (fun l -> Array.of_list (List.map Int64.of_int l)) (list int)))
  in
  qtest ~count:300 "nested composite roundtrip" gen (fun v -> roundtrip codec v)

(* the wire messages themselves *)
let wire_roundtrip () =
  let module W = Sm_dist.Wire in
  let entries = [ (0, "\x00\xffpayload"); (3, "") ] in
  let msgs_down =
    [ W.Spawn { uid = 7; task = "worker"; argument = "a:b"; snapshot = entries }
    ; W.Reply { uid = 99; granted = false; snapshot = [] }
    ; W.Stop
    ]
  in
  List.iter
    (fun m -> check_bool "down roundtrip" (C.decode W.down_codec (C.encode W.down_codec m) = m))
    msgs_down;
  let msgs_up =
    [ W.Sync_request { uid = 1; journal = entries }
    ; W.Task_completed { uid = 2; journal = [] }
    ; W.Task_failed { uid = 3; reason = "boom" }
    ]
  in
  List.iter
    (fun m -> check_bool "up roundtrip" (C.decode W.up_codec (C.encode W.up_codec m) = m))
    msgs_up

(* codable data: ops and states survive the wire *)
let codable_roundtrips () =
  let module L = Sm_dist.Codable.Make_list (Sm_dist.Codable.String_elt) in
  check_bool "list state" (roundtrip L.state_codec [ "a"; ""; "\x00z" ]);
  check_bool "list op ins" (roundtrip L.op_codec (L.Op.ins 3 "x"));
  check_bool "list op del" (roundtrip L.op_codec (L.Op.del 0));
  check_bool "list op set" (roundtrip L.op_codec (L.Op.set 2 "y"));
  let module Q = Sm_dist.Codable.Make_queue (Sm_dist.Codable.Int_elt) in
  check_bool "queue ops" (roundtrip (C.list Q.op_codec) [ Q.Op.push 4; Q.Op.pop; Q.Op.push 5 ]);
  let module R = Sm_dist.Codable.Make_register (Sm_dist.Codable.String_elt) in
  check_bool "register op" (roundtrip R.op_codec (R.Op.assign "v"));
  let module M = Sm_dist.Codable.Make_map (Sm_dist.Codable.String_elt) (Sm_dist.Codable.Int_elt) in
  (* maps compare by bindings: tree shapes may legitimately differ *)
  let m = M.Op.Key_map.(empty |> add "k" 1 |> add "j" 2) in
  check_bool "map state"
    (M.Op.Key_map.equal Int.equal m (C.decode M.state_codec (C.encode M.state_codec m)));
  check_bool "map ops" (roundtrip (C.list M.op_codec) [ M.Op.put "a" 1; M.Op.remove "b" ]);
  check_bool "counter op" (roundtrip Sm_dist.Codable.Counter.op_codec (Sm_ot.Op_counter.add (-3)));
  check_bool "text ops"
    (roundtrip (C.list Sm_dist.Codable.Text.op_codec)
       [ Sm_ot.Op_text.ins 0 "ab"; Sm_ot.Op_text.del ~pos:1 ~len:2 ])

(* The packed text-journal codec: delta-encoded positions under a zigzag
   uvarint, negotiated by the frame version.  Golden vectors pin the exact
   bytes so the format can never drift silently — v3 frames must decode
   forever, like v1/v2 before them. *)
let packed_golden_vectors () =
  let j = Sm_dist.Codable.Text.journal_codec in
  let pin name bytes ops =
    Alcotest.(check string) name bytes (C.encode j ops);
    check_bool (name ^ " decodes") (C.decode j bytes = ops)
  in
  pin "empty journal" "\x00" [];
  pin "single ins at origin" "\x01\x00\x02ab" [ Sm_ot.Op_text.Ins (0, "ab") ];
  pin "single del" "\x01\x0d\x02" [ Sm_ot.Op_text.Del (3, 2) ];
  pin "ins then backward del (negative delta)" "\x02\x14\x01x\x03\x02"
    [ Sm_ot.Op_text.Ins (5, "x"); Sm_ot.Op_text.Del (4, 2) ];
  (* uvarint spill on the header once positions pass 63 *)
  let enc = C.encode j [ Sm_ot.Op_text.Ins (64, "z") ] in
  Alcotest.(check string) "multi-byte header" "\x01\x80\x02\x01z" enc

let packed_rejects_malformed () =
  let j = Sm_dist.Codable.Text.journal_codec in
  let rejects name s =
    check_bool name (match C.decode j s with _ -> false | exception C.Decode_error _ -> true)
  in
  rejects "truncated op count" "\x02\x00\x02ab";
  rejects "truncated ins payload" "\x01\x00\x05ab";
  rejects "truncated header varint" "\x01\x80";
  rejects "negative position" "\x01\x02\x01x";
  rejects "zero-length delete" "\x01\x0d\x00";
  rejects "trailing garbage" "\x00\x00"

(* 500 random sequential journals survive the packed codec byte-for-byte,
   and classic-coded journals keep decoding (the v1/v2 compatibility pin:
   old frames negotiate [Classic], which is [C.list op_codec]). *)
let packed_random_roundtrip () =
  let module T = Sm_ot.Op_text in
  let module Rng = Sm_util.Det_rng in
  let j = Sm_dist.Codable.Text.journal_codec in
  let classic = C.list Sm_dist.Codable.Text.op_codec in
  let rng = Rng.create ~seed:0xC0DECL in
  for _ = 1 to 500 do
    let len = ref (Rng.int rng ~bound:200) in
    let nops = Rng.int rng ~bound:12 in
    let ops =
      List.init nops (fun _ ->
          if !len = 0 || Rng.bool rng then begin
            let pos = Rng.int rng ~bound:(!len + 1) in
            let s = Rng.bytes rng ~len:(1 + Rng.int rng ~bound:8) in
            len := !len + String.length s;
            T.Ins (pos, s)
          end
          else begin
            let pos = Rng.int rng ~bound:!len in
            let l = 1 + Rng.int rng ~bound:(!len - pos) in
            len := !len - l;
            T.Del (pos, l)
          end)
    in
    check_bool "packed roundtrip" (roundtrip j ops);
    check_bool "classic still decodes" (roundtrip classic ops);
    (* packed never loses to classic on sequential journals *)
    check_bool "packed no larger than classic + slack"
      (String.length (C.encode j ops) <= String.length (C.encode classic ops) + 1)
  done

let suite =
  [ Alcotest.test_case "pinned encodings" `Quick pinned_encodings
  ; Alcotest.test_case "malformed inputs rejected" `Quick malformed_inputs
  ; int_roundtrip
  ; int64_roundtrip
  ; Alcotest.test_case "extreme values" `Quick extremes
  ; float_roundtrip
  ; string_roundtrip
  ; composite_roundtrip
  ; Alcotest.test_case "wire message roundtrips" `Quick wire_roundtrip
  ; Alcotest.test_case "codable data roundtrips" `Quick codable_roundtrips
  ; Alcotest.test_case "packed text journal: golden vectors" `Quick packed_golden_vectors
  ; Alcotest.test_case "packed text journal: malformed rejected" `Quick packed_rejects_malformed
  ; Alcotest.test_case "packed text journal: 500 random roundtrips" `Quick packed_random_roundtrip
  ]
