(** lib/ir + lib/lint: codec totality over generated programs (incl. the
    fixture-only [mint] step), shrinker well-formedness, the static twin of
    every DetSan hazard class, the pinned queue-order finding, matrix
    derivation, the static/dynamic agreement contract, and the Netpipe
    closed-connection accounting regression. *)

open Test_support
module P = Sm_ir.Program
module L = Sm_lint
module F = Sm_fuzz
module Np = Sm_sim.Netpipe

let seeds_of n = List.init n (fun i -> Int64.of_int (i + 1))

(* --- codec ------------------------------------------------------------------- *)

(* 500 generated programs (250 seeds x both profiles): decode o encode = id,
   and the sample actually exercises the vocabulary it claims to cover. *)
let codec_round_trip_500 () =
  let merge_kinds = Hashtbl.create 8 in
  let saw_validate = ref false in
  List.iter
    (fun profile ->
      List.iter
        (fun seed ->
          let p = F.Fuzzer.program_of_seed ~seed ~depth:3 ~profile in
          Array.iter
            (List.iter (function
              | P.Merge { kind; validate; _ } ->
                Hashtbl.replace merge_kinds (P.merge_kind_name kind) ();
                if validate > 0 then saw_validate := true
              | _ -> ()))
            p.P.scripts;
          let p' = P.of_string (P.to_string p) in
          check_bool (Printf.sprintf "round-trip seed %Ld" seed) (p = p');
          check_bool "well-formed" (P.well_formed p = Ok ()))
        (seeds_of 250))
    [ P.det_profile; P.full_profile ];
  List.iter
    (fun k -> check_bool ("sample covers merge " ^ k) (Hashtbl.mem merge_kinds k))
    [ "all"; "all-set"; "any"; "any-set" ];
  check_bool "sample covers ?validate > 0" !saw_validate

let mint_program =
  "program v1\ntask 0\n  spawn 0\n  mint 1\n  merge all 0 0\ntask 1\n  op counter 0 1 0\nend\n"

let codec_mint_and_well_formed () =
  let p = P.of_string mint_program in
  check_bool "mint parses" (P.uses_mint p);
  check_bool "mint round-trips" (P.of_string (P.to_string p) = p);
  check_bool "mint program well-formed" (P.well_formed p = Ok ());
  (match P.well_formed { P.scripts = [||] } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty program accepted");
  match P.well_formed { P.scripts = [| [ P.Spawn (-1) ] |] } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative payload accepted"

let shrinker_preserves_well_formedness () =
  List.iter
    (fun seed ->
      let p = F.Fuzzer.program_of_seed ~seed ~depth:3 ~profile:P.full_profile in
      Array.iteri
        (fun si script ->
          List.iteri
            (fun i step ->
              List.iter
                (fun step' ->
                  let script' = List.mapi (fun j s -> if j = i then step' else s) script in
                  let scripts = Array.copy p.P.scripts in
                  scripts.(si) <- script';
                  match P.well_formed { P.scripts } with
                  | Ok () -> ()
                  | Error msg ->
                    Alcotest.failf "seed %Ld task %d step %d: shrink candidate ill-formed: %s"
                      seed si i msg)
                (P.shrink_step step))
            script)
        p.P.scripts)
    (seeds_of 50)

(* --- static twins of the DetSan hazard classes -------------------------------- *)

let fixture_for_tag = function
  | "nondet-merge" ->
    "program v1\ntask 0\n  spawn 0\n  spawn 0\n  merge any 0 0\n  merge all 0 0\ntask 1\n  op counter 0 1 0\nend\n"
  | "key-in-task" -> mint_program
  | "unmerged-children" ->
    "program v1\ntask 0\n  op counter 0 1 0\n  spawn 0\ntask 1\n  op counter 0 2 0\nend\n"
  | "op-after-digest" ->
    "program v1\ntask 0\n  spawn 0\n  abort 0\ntask 1\n  op register 1 3 0\nend\n"
  | tag -> Alcotest.failf "no minimal fixture for hazard tag %s" tag

(* Every dynamic hazard class has a static twin, and the twin actually fires
   on a minimal program — the completeness half of the agreement contract,
   checked at the class level (the harness checks it per executed program). *)
let every_hazard_has_firing_twin () =
  List.iter
    (fun tag ->
      check_bool
        (Printf.sprintf "some finding class twins %s" tag)
        (List.exists (fun (_, _, twin, _) -> twin = Some tag) L.Finding.classes);
      let report = L.Lint.analyze (P.of_string (fixture_for_tag tag)) in
      check_bool
        (Printf.sprintf "twin of %s fires on its minimal fixture" tag)
        (L.Finding.covers_hazard report.L.Lint.findings ~tag))
    Sm_check.Detsan.hazard_tags

let queue_order_pinned () =
  let p =
    P.of_string
      "program v1\ntask 0\n  spawn 0\n  spawn 1\n  merge all-set 0 0\ntask 1\n  op queue 0 3 0\ntask 2\n  op queue 0 5 0\nend\n"
  in
  let report = L.Lint.analyze p in
  let mo =
    List.filter (fun (f : L.Finding.t) -> f.cls = "merge-order") report.L.Lint.findings
  in
  check_bool "merge-order finding fires" (mo <> []);
  List.iter
    (fun (f : L.Finding.t) ->
      check_bool "pinned by queue-push-order" (f.pinned = Some "queue-push-order");
      check_bool "warning severity under set merge" (f.severity = L.Finding.Warning))
    mo;
  check_bool "verdict is clean-except-pinned"
    (L.Lint.verdict report = L.Finding.Pinned_only);
  Alcotest.(check int) "exit code 3" 3 (L.Finding.verdict_exit_code (L.Lint.verdict report))

(* With an ordered merge_all the fold order is programmed, not incidental:
   the same write-sets downgrade to an advisory note. *)
let ordered_merge_downgrades () =
  let p =
    P.of_string
      "program v1\ntask 0\n  spawn 0\n  spawn 1\n  merge all 0 0\ntask 1\n  op queue 0 3 0\ntask 2\n  op queue 0 5 0\nend\n"
  in
  let report = L.Lint.analyze p in
  List.iter
    (fun (f : L.Finding.t) ->
      if f.cls = "merge-order" then
        check_bool "note severity under ordered merge" (f.severity = L.Finding.Note))
    report.L.Lint.findings;
  check_bool "ordered-merge program is clean" (L.Lint.verdict report = L.Finding.Clean)

let verdict_exit_codes () =
  Alcotest.(check int) "clean" 0 (L.Finding.verdict_exit_code L.Finding.Clean);
  Alcotest.(check int) "pinned-only" 3 (L.Finding.verdict_exit_code L.Finding.Pinned_only);
  Alcotest.(check int) "dirty" 1 (L.Finding.verdict_exit_code L.Finding.Dirty);
  let note = L.Finding.make ~cls:"conflict" ~task:0 ~step:0 "n" in
  let err = L.Finding.make ~cls:"nondet-merge" ~task:0 ~step:0 "e" in
  check_bool "notes never gate" (L.Finding.verdict [ note ] = L.Finding.Clean);
  check_bool "errors gate" (L.Finding.verdict [ note; err ] = L.Finding.Dirty);
  check_bool "clean report guarantees detsan-clean" (L.Finding.guarantees_detsan_clean [ note ]);
  check_bool "error with twin voids the guarantee"
    (not (L.Finding.guarantees_detsan_clean [ err ]))

let matrix_derivation () =
  (match L.Matrix.for_name "queue" with
  | None -> Alcotest.fail "no matrix for queue"
  | Some m ->
    check_bool "queue matrix is order-sensitive" (L.Matrix.order_sensitive m <> []);
    check_bool "queue matrix pinned" (m.L.Matrix.pinned = Some "queue-push-order"));
  match L.Matrix.for_name "counter" with
  | None -> Alcotest.fail "no matrix for counter"
  | Some m ->
    check_bool "counter ops all commute" (L.Matrix.all_commute m);
    check_bool "counter matrix not order-sensitive" (L.Matrix.order_sensitive m = [])

(* --- static/dynamic agreement -------------------------------------------------

   The contract the CI gate runs at scale, sampled here: statically-clean
   programs run DetSan-clean, every dynamic hazard is covered by a twin
   finding, and observed transform calls stay under the static bound. *)

let agreement_sampled () =
  F.Oracle.with_env (fun env ->
      List.iter
        (fun profile ->
          let outcomes =
            F.Agree.run_seeds env ~seed_base:1L ~seeds:25 ~depth:3 ~profile ()
          in
          List.iter
            (fun (o : F.Agree.outcome) ->
              if o.violations <> [] then
                Alcotest.failf "%s: %s" o.name (String.concat "; " o.violations))
            outcomes)
        [ P.det_profile; P.full_profile ];
      List.iter
        (fun (o : F.Agree.outcome) ->
          if o.violations <> [] then
            Alcotest.failf "corpus %s: %s" o.name (String.concat "; " o.violations))
        (F.Agree.corpus_outcomes env))

(* The agreement contract is about program structure, not workspace
   representation: it must hold identically when spawns deep-copy state
   (the SM_COW=0 baseline) instead of sharing it copy-on-write.  A smaller
   seed batch than [agreement_sampled] — the point is the mode flip, not
   coverage. *)
let agreement_cow_off () =
  let module Ws = Sm_mergeable.Workspace in
  let saved = Ws.cow_enabled () in
  Fun.protect
    ~finally:(fun () -> Ws.set_cow saved)
    (fun () ->
      Ws.set_cow false;
      F.Oracle.with_env (fun env ->
          let outcomes =
            F.Agree.run_seeds env ~seed_base:1L ~seeds:10 ~depth:3 ~profile:P.det_profile ()
          in
          List.iter
            (fun (o : F.Agree.outcome) ->
              if o.violations <> [] then
                Alcotest.failf "cow-off %s: %s" o.name (String.concat "; " o.violations))
            outcomes))

let lint_rides_in_fuzz_report () =
  F.Oracle.with_env (fun env ->
      match
        F.Fuzzer.fuzz_one ~mutate:Sm_check.Mutate.Tie_bias ~lint:true env ~seed:5L ~depth:3
          ~profile:P.det_profile ()
      with
      | F.Fuzzer.Passed -> Alcotest.fail "mutated corpus seed unexpectedly passed"
      | F.Fuzzer.Failed r ->
        (match r.F.Fuzzer.lint with
        | None -> Alcotest.fail "no lint summary in report despite ~lint:true"
        | Some s -> check_bool "summary mentions a verdict" (String.length s > 0));
        check_bool "report text carries the static section"
          (let text = F.Fuzzer.report_to_string r in
           let needle = "-- static analysis --" in
           let n = String.length needle in
           let found = ref false in
           for i = 0 to String.length text - n do
             if (not !found) && String.sub text i n = needle then found := true
           done;
           !found))

(* --- netpipe closed-connection accounting (regression) ----------------------- *)

(* A send on a closed connection must never consume a fault decision: with a
   100% drop plane, the drop still books as dropped_closed (hook fired),
   never as dropped_fault. *)
let netpipe_closed_send_under_faults () =
  Np.reset_stats ();
  let hook = ref 0 in
  Np.on_dropped_send (Some (fun _ -> incr hook));
  Np.set_faults (Some (Np.Faults.make ~drop:1.0 ~seed:7L ()));
  Fun.protect
    ~finally:(fun () ->
      Np.set_faults None;
      Np.on_dropped_send None)
    (fun () ->
      let l = Np.listen () in
      let client = Np.connect l in
      (match Np.accept l with Some _ -> () | None -> Alcotest.fail "accept failed");
      Np.close client;
      Np.send client "lost";
      let s = Np.stats () in
      Alcotest.(check int) "dropped_closed" 1 s.Np.dropped_closed;
      Alcotest.(check int) "hook fired once" 1 !hook;
      Alcotest.(check int) "no fault drop booked" 0 s.Np.dropped_fault;
      Np.shutdown l)

let suite =
  [ Alcotest.test_case "ir: codec round-trips 500 generated programs" `Quick codec_round_trip_500
  ; Alcotest.test_case "ir: mint step codec + well-formedness" `Quick codec_mint_and_well_formed
  ; Alcotest.test_case "ir: shrink candidates stay well-formed" `Quick
      shrinker_preserves_well_formedness
  ; Alcotest.test_case "lint: every detsan hazard has a firing static twin" `Quick
      every_hazard_has_firing_twin
  ; Alcotest.test_case "lint: queue-order warning pinned, exit 3" `Quick queue_order_pinned
  ; Alcotest.test_case "lint: ordered merge downgrades merge-order to note" `Quick
      ordered_merge_downgrades
  ; Alcotest.test_case "lint: verdicts, exit codes, detsan guarantee" `Quick verdict_exit_codes
  ; Alcotest.test_case "lint: matrix derivation (queue pinned, counter commutes)" `Quick
      matrix_derivation
  ; Alcotest.test_case "agree: contracts hold on 50 seeds + corpus" `Slow agreement_sampled
  ; Alcotest.test_case "agree: contract holds with COW disabled" `Slow agreement_cow_off
  ; Alcotest.test_case "fuzz: --lint verdict rides in the failure report" `Slow
      lint_rides_in_fuzz_report
  ; Alcotest.test_case "netpipe: closed send never consumes a fault decision" `Quick
      netpipe_closed_send_under_faults
  ]
