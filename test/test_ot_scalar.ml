(* Counter, register, set, map, and queue OT: pinned conflict rules plus
   randomized TP1. *)

open Test_support
module Counter = Sm_ot.Op_counter
module Register = Sm_ot.Op_register.Make (Str_elt)
module Iset = Sm_ot.Op_set.Make (Int_elt)
module Smap = Sm_ot.Op_map.Make (Str_elt) (Int_elt)
module Q = Sm_ot.Op_queue.Make (Int_elt)
module Conv_counter = Sm_ot.Convergence.Make (Counter)
module Conv_reg = Sm_ot.Convergence.Make (Register)
module Conv_set = Sm_ot.Convergence.Make (Iset)
module Conv_map = Sm_ot.Convergence.Make (Smap)
module Conv_q = Sm_ot.Convergence.Make (Q)

let counter_behaviour () =
  Alcotest.(check int) "apply" 5 (Counter.apply 2 (Counter.add 3));
  Alcotest.(check int) "negative" (-1) (Counter.apply 2 (Counter.add (-3)));
  check_bool "tp1" (Conv_counter.tp1 ~state:0 ~a:(Counter.add 2) ~b:(Counter.add 5) ~a_wins:true)

let counter_tp1 =
  qtest "counter TP1" QCheck2.Gen.(triple int int bool) (fun (a, b, a_wins) ->
      Conv_counter.tp1 ~state:17 ~a:(Counter.add a) ~b:(Counter.add b) ~a_wins)

let register_conflicts () =
  let a = Register.assign "x" and b = Register.assign "y" in
  Alcotest.(check string) "apply" "x" (Register.apply "old" a);
  check_bool "incoming wins keeps" (Register.transform a ~against:b ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) = [ a ]);
  check_bool "applied wins drops" (Register.transform a ~against:b ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = []);
  check_bool "tp1 a wins" (Conv_reg.tp1 ~state:"s" ~a ~b ~a_wins:true);
  check_bool "tp1 b wins" (Conv_reg.tp1 ~state:"s" ~a ~b ~a_wins:false)

let set_conflicts () =
  let open Iset in
  let s = List.fold_left apply Elt_set.empty [ add 1; add 2 ] in
  check_bool "add" (Elt_set.mem 2 s);
  check_bool "remove" (not (Elt_set.mem 2 (apply s (remove 2))));
  check_bool "remove absent is noop" (Elt_set.equal s (apply s (remove 99)));
  (* direct add/remove conflict on the same element *)
  check_bool "incoming add survives" (transform (add 1) ~against:(remove 1) ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) = [ add 1 ]);
  check_bool "losing add drops" (transform (add 1) ~against:(remove 1) ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = []);
  check_bool "distinct elements commute" (transform (add 1) ~against:(remove 2) ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = [ add 1 ])

let gen_set_op =
  QCheck2.Gen.(map2 (fun add x -> if add then Iset.add x else Iset.remove x) bool (int_range 0 5))

let set_tp1 =
  qtest ~count:1000 "set TP1" QCheck2.Gen.(triple gen_set_op gen_set_op bool) (fun (a, b, a_wins) ->
      let state = Iset.Elt_set.of_list [ 0; 2; 4 ] in
      Conv_set.tp1 ~state ~a ~b ~a_wins)

let map_conflicts () =
  let open Smap in
  let s = List.fold_left apply Key_map.empty [ put "a" 1; put "b" 2 ] in
  Alcotest.(check (option int)) "put" (Some 2) (Key_map.find_opt "b" s);
  check_bool "different keys commute" (transform (put "a" 9) ~against:(remove "b") ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = [ put "a" 9 ]);
  check_bool "same key losing put drops" (transform (put "a" 9) ~against:(put "a" 8) ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = []);
  check_bool "same key winning put survives" (transform (put "a" 9) ~against:(put "a" 8) ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) = [ put "a" 9 ]);
  check_bool "identical puts never conflict" (transform (put "a" 8) ~against:(put "a" 8) ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = [ put "a" 8 ]);
  check_bool "double remove keeps (idempotent)" (transform (remove "a") ~against:(remove "a") ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Applied) = [ remove "a" ])

let gen_map_op =
  let open QCheck2.Gen in
  let key = map (fun i -> String.make 1 (Char.chr (97 + i))) (int_range 0 3) in
  frequency [ (2, map2 Smap.put key (int_range 0 9)); (1, map Smap.remove key) ]

let map_tp1 =
  qtest ~count:1000 "map TP1" QCheck2.Gen.(triple gen_map_op gen_map_op bool) (fun (a, b, a_wins) ->
      let state = Smap.Key_map.(empty |> add "a" 1 |> add "c" 3) in
      Conv_map.tp1 ~state ~a ~b ~a_wins)

let queue_behaviour () =
  let open Q in
  Alcotest.(check (list int)) "push" [ 1; 2 ] (List.fold_left apply [] [ push 1; push 2 ]);
  Alcotest.(check (list int)) "pop front" [ 2 ] (apply [ 1; 2 ] pop);
  Alcotest.(check (list int)) "pop empty is noop" [] (apply [] pop);
  check_bool "transform identity" (transform pop ~against:pop ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming) = [ pop ])

(* The pop-intention invariant: k concurrent pops remove min(k, n) slots. *)
let queue_pop_intention =
  qtest "k concurrent pops consume k slots"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 0 6))
    (fun (n, k) ->
      let state = List.init n (fun i -> i) in
      let children = List.init k (fun _ -> [ Q.pop ]) in
      let merged = Conv_q.merged_state ~state ~applied:[] ~children in
      List.length merged = max 0 (n - k))

let gen_queue_op = QCheck2.Gen.(frequency [ (2, map Q.push (int_range 0 9)); (1, return Q.pop) ])

(* Two concurrent pushes converge only up to ordering (the deterministic
   merge order decides who is first), so push||push is checked as multiset
   convergence; every other pair satisfies exact TP1. *)
let queue_tp1 =
  qtest ~count:1000 "queue TP1 (modulo push ordering)"
    QCheck2.Gen.(triple gen_queue_op gen_queue_op bool)
    (fun (a, b, a_wins) ->
      match a, b with
      | Q.Push _, Q.Push _ ->
        let s = [ 1; 2; 3 ] in
        let tie = Sm_ot.Side.uniform (if a_wins then Sm_ot.Side.Incoming else Sm_ot.Side.Applied) in
        let via_b = List.fold_left Q.apply (Q.apply s b) (Q.transform a ~against:b ~tie) in
        let via_a =
          List.fold_left Q.apply (Q.apply s a)
            (Q.transform b ~against:a ~tie:(Sm_ot.Side.flip tie))
        in
        List.sort compare via_a = List.sort compare via_b
      | _ -> Conv_q.tp1 ~state:[ 1; 2; 3 ] ~a ~b ~a_wins)

(* --- stacks: positional pops vs the queue's slot pops -------------------- *)

module Stack = Sm_ot.Op_stack.Make (Int_elt)
module Conv_stack = Sm_ot.Convergence.Make (Stack)

let stack_behaviour () =
  let open Stack in
  Alcotest.(check (list int)) "push on top" [ 2; 1 ] (List.fold_left apply [] [ push 1; push 2 ]);
  Alcotest.(check (list int)) "pop top" [ 1 ] (apply [ 2; 1 ] pop);
  check_bool "pop out of range raises"
    (match apply [] pop with _ -> false | exception Invalid_argument _ -> true);
  (* the defining contrast with queues: two concurrent pops of the same
     element collapse into ONE removal *)
  let merged = Conv_stack.merged_state ~state:[ 9; 8 ] ~applied:[] ~children:[ [ pop ]; [ pop ] ] in
  Alcotest.(check (list int)) "same-element pops collapse" [ 8 ] merged;
  (* a pop transformed past a concurrent push digs deeper *)
  check_bool "pop shifts past push"
    (Stack.transform pop ~against:(push 5) ~tie:Sm_ot.Side.serialization = [ Stack.Pop_at 1 ])

let gen_stack_op depth =
  let open QCheck2.Gen in
  if depth = 0 then map Stack.push (int_range 0 9)
  else
    frequency
      [ (2, map Stack.push (int_range 0 9)); (1, map (fun i -> Stack.Pop_at i) (int_range 0 (depth - 1))) ]

let stack_tp1 =
  qtest ~count:1000 "stack TP1"
    QCheck2.Gen.(
      let state = [ 1; 2; 3 ] in
      triple (gen_stack_op 3) (gen_stack_op 3) bool |> map (fun (a, b, w) -> (state, a, b, w)))
    (fun (state, a, b, a_wins) -> Conv_stack.tp1 ~state ~a ~b ~a_wins)

let suite =
  [ Alcotest.test_case "counter: apply and commute" `Quick counter_behaviour
  ; counter_tp1
  ; Alcotest.test_case "register: last-merged-wins" `Quick register_conflicts
  ; Alcotest.test_case "set: add/remove conflict rules" `Quick set_conflicts
  ; set_tp1
  ; Alcotest.test_case "map: per-key register semantics" `Quick map_conflicts
  ; map_tp1
  ; Alcotest.test_case "queue: push/pop intention" `Quick queue_behaviour
  ; queue_pop_intention
  ; queue_tp1
  ; Alcotest.test_case "stack: positional pops" `Quick stack_behaviour
  ; stack_tp1
  ]
