(* Exhaustive small-case OT verification, driven by lib/check.  The
   registry runs each op module through the property engine — TP1 under
   both tie winners, every 1x1- and 1x2-op sequence pair through the
   control algorithm, and the workspace merge invariants — over the same
   small-state spaces the historical hand-rolled enumerations here covered.
   The count thresholds are the historical ones: they assert the enumerated
   space did not silently shrink below what the old per-type loops checked,
   on top of the verdicts themselves. *)

open Test_support
module Check = Sm_check

let report =
  (* one checker run per module, shared across test cases *)
  let cache : (string, Check.Report.t) Hashtbl.t = Hashtbl.create 16 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some r -> r
    | None ->
      let e =
        match Check.Registry.find name with
        | Some e -> e
        | None -> Alcotest.failf "%s not in the check registry" name
      in
      let r = Check.Registry.run ~depth:2 e in
      Hashtbl.add cache name r;
      r

let passing name =
  let r = report name in
  if not (Check.Report.passed r) then Alcotest.failf "%s" (Format.asprintf "%a" Check.Report.pp r);
  r

(* --- lists ---------------------------------------------------------------- *)

let list_pairs () =
  let r = passing "mlist" in
  check_bool "covered a real space" (r.counts.tp1 > 500)

let list_sequence_pairs () =
  let r = passing "mlist" in
  check_bool "covered" (r.counts.cross > 1_500)

(* --- text ----------------------------------------------------------------- *)

let text_pairs () =
  let r = passing "mtext" in
  check_bool "covered a real space" (r.counts.tp1 > 500)

(* --- stacks --------------------------------------------------------------- *)

let stack_pairs () =
  let r = passing "mstack" in
  check_bool "covered a real space" (r.counts.tp1 > 100)

(* --- trees ---------------------------------------------------------------- *)

let tree_pairs () =
  let r = passing "mtree" in
  check_bool "covered a real space" (r.counts.tp1 > 500)

(* --- the types the hand-rolled loops never covered ------------------------ *)

let newly_covered () =
  List.iter
    (fun name ->
      let r = passing name in
      check_bool (name ^ " checked something") (Check.Report.total r.counts > 0);
      check_bool (name ^ " merge invariants ran") (r.counts.merge_order > 0 && r.counts.merge_nested > 0))
    [ "mcounter"; "mregister"; "mset"; "mmap" ]

(* --- the queue's documented divergence (satellite-1 triage regression) ----- *)

(* Op_queue's transform is the identity, so two concurrent pushes land in
   local application order: TP1's minimal counterexample is push/push on the
   empty queue.  That is the module's documented intention (order = merge
   serialization order), encoded in the registry as "queue-push-order" —
   this test pins both the counterexample and the XFAIL plumbing, and
   checks the merge invariants still ran (and passed) behind it. *)
let queue_push_order () =
  let r = report "mqueue" in
  check_bool "expected failure, not a pass" (r.verdict <> Check.Report.Pass);
  check_bool "documented as known issue" (Check.Report.passed r);
  (match r.expected with
  | Some reason -> check_bool "right issue" (String.length reason >= 16 && String.sub reason 0 16 = "queue-push-order")
  | None -> Alcotest.fail "expected reason missing");
  (match r.verdict with
  | Check.Report.Fail cex ->
    check_bool "pairwise property" (cex.property = Check.Report.Tp1 || cex.property = Check.Report.Cross);
    check_bool "minimal: one push per side" (cex.ops_total = 2);
    check_bool "no totality exception" (cex.exn = None)
  | Check.Report.Pass -> assert false);
  check_bool "merge serialization still verified" (r.counts.merge_order > 0 && r.counts.merge_nested > 0)

(* --- the whole registry at the CI depth ------------------------------------ *)

let registry_gates () =
  List.iter
    (fun e ->
      let r = Check.Registry.run ~depth:1 e in
      if not (Check.Report.passed r) then
        Alcotest.failf "%s" (Format.asprintf "%a" Check.Report.pp r))
    (Check.Registry.all ())

let suite =
  [ Alcotest.test_case "lists: all op pairs, all ties" `Quick list_pairs
  ; Alcotest.test_case "lists: all 1x2-op sequence pairs" `Slow list_sequence_pairs
  ; Alcotest.test_case "text: all op pairs, all ties" `Quick text_pairs
  ; Alcotest.test_case "stacks: all op pairs, all ties" `Quick stack_pairs
  ; Alcotest.test_case "trees: all op pairs, all ties" `Quick tree_pairs
  ; Alcotest.test_case "scalars, sets, maps: newly covered" `Quick newly_covered
  ; Alcotest.test_case "queue: documented push-order divergence" `Quick queue_push_order
  ; Alcotest.test_case "registry: all entries gate at CI depth" `Quick registry_gates
  ]
