(* Exhaustive small-case OT verification: enumerate *every* pair of
   operations over small states and check TP1 under both tie winners, plus
   every pair of two-operation sequences through the control algorithm.
   Random testing samples this space; here the whole space (tens of
   thousands of cases) is covered, so a transform-matrix regression cannot
   hide. *)

open Test_support

module L = Sm_ot.Op_list.Make (Str_elt)
module Conv_l = Sm_ot.Convergence.Make (L)
module T = Sm_ot.Op_text
module Conv_t = Sm_ot.Convergence.Make (T)
module Stack = Sm_ot.Op_stack.Make (Int_elt)
module Conv_s = Sm_ot.Convergence.Make (Stack)
module Tree = Sm_ot.Op_tree.Make (Str_elt)
module Conv_tree = Sm_ot.Convergence.Make (Tree)

let count = ref 0

let check_tp1_all ~pp_op tp1 states ops_of =
  List.iter
    (fun state ->
      let ops = ops_of state in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun a_wins ->
                  incr count;
                  if not (tp1 ~state ~a ~b ~a_wins) then
                    Alcotest.failf "TP1 violated: a=%s b=%s a_wins=%b"
                      (Format.asprintf "%a" pp_op a)
                      (Format.asprintf "%a" pp_op b)
                      a_wins)
                [ true; false ])
            ops)
        ops)
    states

(* --- lists ---------------------------------------------------------------- *)

let list_states = List.init 4 (fun n -> List.init n string_of_int)

let list_ops state =
  let n = List.length state in
  List.concat
    [ List.concat_map (fun i -> [ L.ins i "x"; L.ins i "y" ]) (List.init (n + 1) Fun.id)
    ; List.map L.del (List.init n Fun.id)
    ; List.map (fun i -> L.set i "z") (List.init n Fun.id)
    ]

let list_pairs () =
  count := 0;
  check_tp1_all ~pp_op:L.pp_op (fun ~state ~a ~b ~a_wins -> Conv_l.tp1 ~state ~a ~b ~a_wins)
    list_states list_ops;
  check_bool "covered a real space" (!count > 500)

(* every pair of 2-op sequences on a fixed small state, through cross *)
let list_sequence_pairs () =
  let state = [ "0"; "1" ] in
  let ops1 = list_ops state in
  let seqs =
    List.concat_map
      (fun a ->
        let mid = L.apply state a in
        List.map (fun b -> [ a; b ]) (list_ops mid))
      ops1
  in
  let checked = ref 0 in
  List.iter
    (fun left ->
      List.iter
        (fun right ->
          List.iter
            (fun tie ->
              incr checked;
              if not (Conv_l.seqs_converge ~state ~left ~right ~tie) then
                Alcotest.failf "sequence divergence: left=[%s] right=[%s]"
                  (String.concat "; " (List.map (Format.asprintf "%a" L.pp_op) left))
                  (String.concat "; " (List.map (Format.asprintf "%a" L.pp_op) right)))
            [ Sm_ot.Side.serialization; Sm_ot.Side.flip Sm_ot.Side.serialization ])
        seqs)
    (* limit the left side to single-op prefixes of the same space to keep
       the matrix ~100k cases *)
    (List.map (fun a -> [ a ]) ops1);
  check_bool "covered" (!checked > 1_500)

(* --- text ----------------------------------------------------------------- *)

let text_states = [ ""; "a"; "ab"; "abcd" ]

let text_ops state =
  let n = String.length state in
  List.concat
    [ List.concat_map (fun p -> [ T.ins p "X"; T.ins p "YY" ]) (List.init (n + 1) Fun.id)
    ; List.concat_map
        (fun p -> List.filter_map (fun l -> if p + l <= n then Some (T.Del (p, l)) else None) [ 1; 2; 3 ])
        (List.init n Fun.id)
    ]

let text_pairs () =
  count := 0;
  check_tp1_all ~pp_op:T.pp_op (fun ~state ~a ~b ~a_wins -> Conv_t.tp1 ~state ~a ~b ~a_wins)
    text_states text_ops;
  check_bool "covered a real space" (!count > 500)

(* --- stacks --------------------------------------------------------------- *)

let stack_states = List.init 4 (fun n -> List.init n Fun.id)

let stack_ops state =
  let n = List.length state in
  List.concat
    [ List.concat_map (fun i -> [ Stack.Push_at (i, 77) ]) (List.init (n + 1) Fun.id)
    ; List.map (fun i -> Stack.Pop_at i) (List.init n Fun.id)
    ]

let stack_pairs () =
  count := 0;
  check_tp1_all ~pp_op:Stack.pp_op (fun ~state ~a ~b ~a_wins -> Conv_s.tp1 ~state ~a ~b ~a_wins)
    stack_states stack_ops;
  check_bool "covered a real space" (!count > 100)

(* --- trees ---------------------------------------------------------------- *)

let tree_states =
  [ []
  ; [ Tree.leaf "a" ]
  ; [ Tree.branch "a" [ Tree.leaf "x" ]; Tree.leaf "b" ]
  ; [ Tree.branch "a" [ Tree.leaf "x"; Tree.leaf "y" ]; Tree.leaf "b"; Tree.leaf "c" ]
  ]

let rec node_paths ?(prefix = []) forest =
  List.concat
    (List.mapi
       (fun i n ->
         let here = List.rev (i :: prefix) in
         here :: node_paths ~prefix:(i :: prefix) n.Tree.children)
       forest)

let rec gap_paths ?(prefix = []) forest =
  let here = List.init (List.length forest + 1) (fun i -> List.rev (i :: prefix)) in
  here @ List.concat (List.mapi (fun i n -> gap_paths ~prefix:(i :: prefix) n.Tree.children) forest)

let tree_ops state =
  List.concat
    [ List.map (fun p -> Tree.insert p (Tree.leaf "n")) (gap_paths state)
    ; List.map Tree.delete (node_paths state)
    ; List.map (fun p -> Tree.relabel p "r") (node_paths state)
    ]

let tree_pairs () =
  count := 0;
  check_tp1_all ~pp_op:Tree.pp_op (fun ~state ~a ~b ~a_wins -> Conv_tree.tp1 ~state ~a ~b ~a_wins)
    tree_states tree_ops;
  check_bool "covered a real space" (!count > 500)

let suite =
  [ Alcotest.test_case "lists: all op pairs, all ties" `Quick list_pairs
  ; Alcotest.test_case "lists: all 1x2-op sequence pairs" `Slow list_sequence_pairs
  ; Alcotest.test_case "text: all op pairs, all ties" `Quick text_pairs
  ; Alcotest.test_case "stacks: all op pairs, all ties" `Quick stack_pairs
  ; Alcotest.test_case "trees: all op pairs, all ties" `Quick tree_pairs
  ]
