(* Deterministic structured parallelism: order preservation, deterministic
   reduction of non-commutative combines, failure indexing, and composition
   with the mergeable workspace. *)

open Test_support
module R = Sm_core.Runtime
module Par = Sm_core.Par

let executor = lazy (Sm_core.Executor.create ())
let in_runtime f = R.run ~executor:(Lazy.force executor) f

let map_preserves_order () =
  let result = in_runtime (fun ctx -> Par.map ~chunks:3 ctx (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7 ]) in
  Alcotest.(check (list int)) "squares in order" [ 1; 4; 9; 16; 25; 36; 49 ] result

let mapi_indices () =
  let result = in_runtime (fun ctx -> Par.mapi ~chunks:2 ctx (fun i x -> (i, x)) [ "a"; "b"; "c" ]) in
  Alcotest.(check (list (pair int string))) "indexed" [ (0, "a"); (1, "b"); (2, "c") ] result

let empty_and_degenerate () =
  in_runtime (fun ctx ->
      Alcotest.(check (list int)) "empty map" [] (Par.map ctx Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Par.map ctx (fun x -> x + 1) [ 8 ]);
      Alcotest.(check (list int)) "more chunks than elements" [ 2; 3 ]
        (Par.map ~chunks:64 ctx (fun x -> x + 1) [ 1; 2 ]);
      Alcotest.(check (list int)) "one chunk" [ 2; 3; 4 ] (Par.map ~chunks:1 ctx (fun x -> x + 1) [ 1; 2; 3 ]);
      Alcotest.(check int) "reduce of empty is init" 42
        (Par.reduce ctx ~map:Fun.id ~combine:( + ) ~init:42 []);
      Alcotest.(check (list int)) "tabulate" [ 0; 2; 4 ] (Par.tabulate ctx 3 (fun i -> 2 * i));
      Alcotest.(check (list int)) "tabulate zero" [] (Par.tabulate ctx 0 (fun _ -> 0));
      check_bool "tabulate negative rejected"
        (match Par.tabulate ctx (-1) (fun _ -> 0) with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* string concatenation is non-commutative: chunked parallel reduce must
   still equal the sequential left fold *)
let reduce_non_commutative () =
  let xs = List.init 23 (fun i -> String.make 1 (Char.chr (97 + (i mod 26)))) in
  let expected = List.fold_left ( ^ ) "" xs in
  List.iter
    (fun chunks ->
      let got = in_runtime (fun ctx -> Par.reduce ~chunks ctx ~map:Fun.id ~combine:( ^ ) ~init:"" xs) in
      Alcotest.(check string) (Printf.sprintf "chunks=%d" chunks) expected got)
    [ 1; 2; 5; 23; 64 ]

let reduce_numeric () =
  let xs = List.init 100 (fun i -> i + 1) in
  let got =
    in_runtime (fun ctx -> Par.reduce ~chunks:7 ctx ~map:(fun x -> x * x) ~combine:( + ) ~init:0 xs)
  in
  Alcotest.(check int) "sum of squares" 338350 got

let both_runs_in_parallel () =
  let a, b =
    in_runtime (fun ctx ->
        Par.both ctx (fun () -> Sm_util.Sha1.hex "left") (fun () -> String.length "right"))
  in
  Alcotest.(check string) "left" (Sm_util.Sha1.hex "left") a;
  Alcotest.(check int) "right" 5 b

let failure_reports_lowest_index () =
  check_bool "lowest failing index"
    (match
       in_runtime (fun ctx ->
           Par.map ~chunks:4 ctx (fun x -> if x mod 5 = 0 then failwith "bad" else x) (List.init 20 Fun.id))
     with
    | _ -> false
    | exception Par.Worker_failure (0, Failure msg) -> msg = "bad"
    | exception Par.Worker_failure _ -> false);
  check_bool "failure in both"
    (match in_runtime (fun ctx -> Par.both ctx (fun () -> 1) (fun () -> failwith "snap")) with
    | _ -> false
    | exception Par.Worker_failure (1, Failure msg) -> msg = "snap"
    | exception _ -> false)

(* Par composes with workspace merging: the mapped results feed mergeable
   updates afterwards, all inside one runtime program. *)
module Mcounter = Sm_mergeable.Mcounter

let kc = Mcounter.key ~name:"par-counter"

let composes_with_workspace () =
  let total =
    in_runtime (fun ctx ->
        let ws = R.workspace ctx in
        Sm_mergeable.Workspace.init ws kc 0;
        let squares = Par.map ~chunks:4 ctx (fun x -> x * x) (List.init 10 Fun.id) in
        (* children that update the workspace, joined deterministically *)
        List.iter
          (fun v -> ignore (R.spawn ctx (fun c -> Mcounter.add (R.workspace c) kc v)))
          squares;
        R.merge_all ctx;
        Mcounter.get ws kc)
  in
  Alcotest.(check int) "sum of squares via merge" 285 total

let deterministic_under_noise =
  qtest ~count:30 "par pipelines deterministic"
    QCheck2.Gen.(pair (int_range 0 30) (int_range 1 6))
    (fun (n, chunks) ->
      let xs = List.init n Fun.id in
      let once () =
        in_runtime (fun ctx ->
            Par.reduce ~chunks ctx
              ~map:(fun x ->
                if x mod 3 = 0 then Thread.yield ();
                Printf.sprintf "%d." x)
              ~combine:( ^ ) ~init:"" xs)
      in
      once () = once ())

let suite =
  [ Alcotest.test_case "map preserves order" `Quick map_preserves_order
  ; Alcotest.test_case "mapi indices" `Quick mapi_indices
  ; Alcotest.test_case "degenerate shapes" `Quick empty_and_degenerate
  ; Alcotest.test_case "reduce: non-commutative combine" `Quick reduce_non_commutative
  ; Alcotest.test_case "reduce: sum of squares" `Quick reduce_numeric
  ; Alcotest.test_case "both" `Quick both_runs_in_parallel
  ; Alcotest.test_case "failures: lowest index, original exn" `Quick failure_reports_lowest_index
  ; Alcotest.test_case "composes with mergeable state" `Quick composes_with_workspace
  ; deterministic_under_noise
  ]
