(* The shard service: routing, the session protocol, delta sync, epoch
   determinism, and crash/resume convergence.

   The acceptance-grade scenario here is the resume test: a client that
   disconnects mid-epoch with a batch in flight, then resumes with stale
   cursors over a faulty Netpipe, must end at exactly the digest the
   always-connected clients reach — on both executors. *)

module Router = Sm_shard.Router
module Proto = Sm_shard.Proto
module Service = Sm_shard.Service
module Client = Sm_shard.Client
module Load = Sm_shard.Load
module Registry = Sm_dist.Registry
module Ws = Sm_mergeable.Workspace

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* One document set for the whole suite: wire ids are registration indices,
   so the registry must be minted at a single construction site (and some
   tests run under a live runtime, where re-minting would trip DetSan). *)
let docs =
  Service.make_docs
    [ `Text ("t/readme", "# readme\n")
    ; `Text ("t/scratch", "")
    ; `Tree ("t/outline", Service.Tree.Op.[ branch "root" [ leaf "a" ] ])
    ]

let readme_key = Service.text_key (Service.find_doc docs "t/readme")

(* --- router ----------------------------------------------------------------- *)

let test_router_determinism () =
  let names = List.init 64 (Printf.sprintf "doc/%d") in
  List.iter
    (fun n ->
      let s = Router.shard_of ~shards:4 n in
      checkb "stable" true (s = Router.shard_of ~shards:4 n);
      checkb "in range" true (s >= 0 && s < 4))
    names;
  (* FNV over 64 names must not degenerate to one shard. *)
  let buckets = Router.partition ~shards:4 names in
  Array.iter (fun b -> checkb "every shard owns something" true (b <> [])) buckets;
  check Alcotest.int "partition covers all" 64 (Array.fold_left (fun a b -> a + List.length b) 0 buckets);
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Router.shard_of: shards must be positive") (fun () ->
      ignore (Router.shard_of ~shards:0 "x"))

(* --- protocol frames -------------------------------------------------------- *)

let test_proto_roundtrip () =
  let c2s =
    [ Proto.Hello { client = "alice" }
    ; Proto.Resume { session = 3; req = 7; cursors = [ (0, 4); (2, 9) ] }
    ; Proto.Edit
        { session = 3; req = 8; eid = 2; base = [ (0, 4) ]; ops = [ (0, "opbytes") ] }
    ; Proto.Poll { session = 3; req = 9 }
    ; Proto.Bye { session = 3 }
    ]
  in
  List.iter (fun m -> checkb "c2s roundtrip" true (Proto.open_c2s (Proto.seal_c2s m) = m)) c2s;
  let s2c =
    [ Proto.Welcome { session = 3; payload = Proto.Delta [ (0, 1, 3, "ops") ] }
    ; Proto.Ack { session = 3; req = 8; payload = Proto.Snap [ (0, 5, "state") ] }
    ; Proto.Nack { session = 3; req = 8; reason = "unknown session" }
    ]
  in
  List.iter (fun m -> checkb "s2c roundtrip" true (Proto.open_s2c (Proto.seal_s2c m) = m)) s2c;
  check Alcotest.int "payload bytes count document bytes only" 3
    (Proto.payload_bytes (Proto.Delta [ (0, 1, 3, "ops") ]))

let test_frame_rejection () =
  (match Proto.open_s2c "not a frame" with
  | _ -> Alcotest.fail "garbage must not parse"
  | exception Sm_dist.Wire.Frame.Bad_frame _ -> ());
  (* A frame from an incompatible build: bump the version field.  Typed
     separately from Bad_frame so callers can tell "wrong build" from
     "corrupt bytes". *)
  let sealed = Bytes.of_string (Proto.seal_c2s (Proto.Hello { client = "x" })) in
  Bytes.set sealed 3 '\xff';
  (match Proto.open_c2s (Bytes.to_string sealed) with
  | _ -> Alcotest.fail "wrong version must not parse"
  | exception Sm_dist.Wire.Frame.Unsupported_version { got = 255; speaks }
    when speaks = Sm_dist.Wire.Frame.version -> ());
  (* Kind disagreeing with the payload: a Welcome carrying a Delta payload
     must travel in a Delta frame, not a Snapshot one. *)
  let payload =
    match Proto.open_s2c (Proto.seal_s2c (Proto.Welcome { session = 1; payload = Proto.Delta [] })) with
    | Proto.Welcome _ ->
      let (_kind, body) =
        Sm_dist.Wire.Frame.open_ (Proto.seal_s2c (Proto.Welcome { session = 1; payload = Proto.Delta [] }))
      in
      Sm_dist.Wire.Frame.seal Sm_dist.Wire.Frame.Snapshot body
    | _ -> assert false
  in
  match Proto.open_s2c payload with
  | _ -> Alcotest.fail "kind/payload disagreement must not parse"
  | exception Sm_dist.Wire.Frame.Bad_frame _ -> ()

let test_tree_codec_roundtrip () =
  let module T = Service.Tree in
  let forest = T.Op.[ branch "root" [ leaf "a"; branch "b" [ leaf "c" ] ]; leaf "d" ] in
  let bytes = Sm_util.Codec.encode T.state_codec forest in
  checkb "tree state roundtrip" true (Sm_util.Codec.decode T.state_codec bytes = forest);
  let op = T.Op.insert [ 0; 1 ] (T.Op.leaf "new") in
  let obytes = Sm_util.Codec.encode T.op_codec op in
  checkb "tree op roundtrip" true (Sm_util.Codec.decode T.op_codec obytes = op)

(* --- delta encode/apply ----------------------------------------------------- *)

let test_delta_encode_apply () =
  let reg = Service.registry docs in
  let server = Ws.create () in
  let replica = Ws.create () in
  Service.client_init (Service.create docs ~shards:1 ~mode:`Delta ~epoch_ticks:1) ~shard:0 server;
  Service.client_init (Service.create docs ~shards:1 ~mode:`Delta ~epoch_ticks:1) ~shard:0 replica;
  Ws.update server readme_key (Sm_ot.Op_text.Ins (0, "hello "));
  Ws.update server readme_key (Sm_ot.Op_text.Del (0, 6));
  let cursors = Hashtbl.create 4 in
  let cursor id = Option.value ~default:0 (Hashtbl.find_opt cursors id) in
  let entries = Registry.encode_delta reg server ~since:cursor in
  Registry.apply_delta reg ~into:replica ~cursor entries;
  List.iter (fun (id, _, to_rev, _) -> Hashtbl.replace cursors id to_rev) entries;
  check Alcotest.string "replica caught up" (Ws.digest server) (Ws.digest replica);
  (* Duplicate delivery: entries at or below the cursor are skipped. *)
  Registry.apply_delta reg ~into:replica ~cursor entries;
  check Alcotest.string "duplicate delta is a no-op" (Ws.digest server) (Ws.digest replica);
  (* A gap (delta starting past the cursor) is a protocol violation. *)
  Ws.update server readme_key (Sm_ot.Op_text.Ins (0, "x"));
  Ws.update server readme_key (Sm_ot.Op_text.Ins (0, "y"));
  let ahead = Registry.encode_delta reg server ~since:(fun id -> cursor id + 1) in
  checkb "gap raises" true
    (match Registry.apply_delta reg ~into:replica ~cursor ahead with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_clone_trimmed () =
  let ws = Ws.create () in
  Ws.init ws readme_key (Sm_ot.Op_text.of_string "abc");
  Ws.update ws readme_key (Sm_ot.Op_text.Ins (3, "d"));
  let c = Ws.clone_trimmed ws in
  check Alcotest.string "same digest" (Ws.digest ws) (Ws.digest c);
  check Alcotest.int "version preserved" (Ws.version_of ws readme_key) (Ws.version_of c readme_key);
  checkb "journal answers from the head" true (Ws.journal_since c readme_key ~version:1 = []);
  checkb "history is gone" true
    (match Ws.journal_since c readme_key ~version:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* update_trimming: state and version advance, history still absent. *)
  Ws.update_trimming c readme_key (Sm_ot.Op_text.Ins (0, "z"));
  check Alcotest.string "trimmed update applies" "zabcd" (Sm_ot.Op_text.to_string (Ws.read c readme_key));
  check Alcotest.int "trimmed update advances version" 2 (Ws.version_of c readme_key);
  checkb "trimmed update journals nothing" true (Ws.journal_since c readme_key ~version:2 = [])

(* --- sessions against a live service ---------------------------------------- *)

let make_service () = Service.create docs ~shards:2 ~mode:`Delta ~epoch_ticks:2

let drive svc clients pred =
  let budget = ref 2000 in
  while (not (pred ())) && !budget > 0 do
    Service.tick svc;
    List.iter Client.tick clients;
    decr budget
  done;
  checkb "scenario completed within its tick budget" true (pred ())

let connect svc ~shard name =
  Client.connect ~reg:(Service.registry docs) ~name
    ~init:(Service.client_init svc ~shard) (Service.listener svc shard)

let test_two_client_convergence () =
  let svc = make_service () in
  let shard = Service.shard_of svc "t/readme" in
  let a = connect svc ~shard "alice" and b = connect svc ~shard "bob" in
  drive svc [ a; b ] (fun () -> Client.ready a && Client.ready b);
  Client.edit a (fun ws -> Ws.update ws readme_key (Sm_ot.Op_text.Ins (0, "A")));
  Client.edit b (fun ws -> Ws.update ws readme_key (Sm_ot.Op_text.Ins (0, "B")));
  Client.flush a;
  Client.flush b;
  drive svc [ a; b ] (fun () -> Client.synced a && Client.synced b);
  let sd = Sm_shard.Server.digest (Service.shard svc shard) in
  check Alcotest.string "alice converged" sd (Ws.digest (Client.view a));
  check Alcotest.string "bob converged" sd (Ws.digest (Client.view b));
  check Alcotest.string "same text"
    (Sm_ot.Op_text.to_string (Ws.read (Client.view a) readme_key))
    (Sm_ot.Op_text.to_string (Ws.read (Client.view b) readme_key))

(* An idle replica that resumes must refresh its *view*, not only its
   shadow: bob hears about alice's edits exclusively through the resume
   Welcome, with nothing pending and hence no ack to re-clone the view. *)
let test_resume_refreshes_idle_view () =
  let svc = make_service () in
  let shard = Service.shard_of svc "t/readme" in
  let a = connect svc ~shard "alice" and b = connect svc ~shard "bob" in
  drive svc [ a; b ] (fun () -> Client.synced a && Client.synced b);
  Client.disconnect b;
  Client.edit a (fun ws -> Ws.update ws readme_key (Sm_ot.Op_text.Ins (0, "while you were out\n")));
  Client.flush a;
  drive svc [ a ] (fun () -> Client.synced a);
  Client.resume b (Service.listener svc shard);
  drive svc [ a; b ] (fun () -> Client.synced b);
  check Alcotest.string "idle resume reaches the view"
    (Sm_ot.Op_text.to_string (Ws.read (Client.view a) readme_key))
    (Sm_ot.Op_text.to_string (Ws.read (Client.view b) readme_key))

(* Satellite: disconnect mid-epoch with a batch in flight; the resumed
   client must land on the same digest as the always-connected one. *)
let test_resume_mid_epoch () =
  let svc = make_service () in
  let shard = Service.shard_of svc "t/readme" in
  let a = connect svc ~shard "alice" and b = connect svc ~shard "bob" in
  drive svc [ a; b ] (fun () -> Client.ready a && Client.ready b);
  Client.edit b (fun ws -> Ws.update ws readme_key (Sm_ot.Op_text.Ins (0, "B1")));
  Client.flush b;
  (* The flushed batch is in flight; crash before any ack can arrive. *)
  Client.disconnect b;
  Client.edit a (fun ws -> Ws.update ws readme_key (Sm_ot.Op_text.Ins (0, "A1")));
  Client.flush a;
  drive svc [ a ] (fun () -> Client.synced a);
  Client.resume b (Service.listener svc shard);
  drive svc [ a; b ] (fun () -> Client.synced a && Client.synced b);
  let sd = Sm_shard.Server.digest (Service.shard svc shard) in
  check Alcotest.string "connected client at head" sd (Ws.digest (Client.view a));
  check Alcotest.string "resumed client at the same digest" sd (Ws.digest (Client.view b));
  (* The interrupted batch merged exactly once: both replicas contain B1
     exactly once. *)
  let text = Sm_ot.Op_text.to_string (Ws.read (Client.view a) readme_key) in
  let occurrences hay needle =
    let n = ref 0 in
    for i = 0 to String.length hay - String.length needle do
      if String.sub hay i (String.length needle) = needle then incr n
    done;
    !n
  in
  check Alcotest.int "B1 merged exactly once" 1 (occurrences text "B1")

(* --- load: determinism, chaos, and the executors ----------------------------- *)

let chaos_profile =
  { Load.default with
    Load.seed = 7L
  ; shards = 2
  ; clients = 6
  ; ops_per_client = 12
  ; specs = []  (* ignored: the pre-minted [docs] is passed explicitly *)
  ; faults = Some { Load.drop = 0.10; dup = 0.10; delay = 0.15; reorder = 0.10 }
  ; disconnect_prob = 0.05
  ; max_ticks = 50_000
  }

let test_load_reproducible () =
  let r1 = Load.run ~docs chaos_profile in
  let r2 = Load.run ~docs chaos_profile in
  checkb "converged" true r1.Load.converged;
  check Alcotest.(list string) "same digests" r1.Load.shard_digests r2.Load.shard_digests;
  check Alcotest.int "same ticks" r1.Load.ticks r2.Load.ticks

let test_load_mode_invariance () =
  let delta = Load.run ~docs chaos_profile in
  let snap = Load.run ~docs { chaos_profile with Load.mode = `Snapshot } in
  checkb "both converged" true (delta.Load.converged && snap.Load.converged);
  check Alcotest.(list string) "delta and snapshot reach the same states"
    delta.Load.shard_digests snap.Load.shard_digests;
  checkb "snapshots cost more bytes" true (snap.Load.snapshot_bytes > delta.Load.delta_bytes)

(* Satellite: the chaos scenario (faults + mid-epoch disconnects and
   stale-cursor resumes) on both schedulers.  [converged] already asserts
   every replica's view digest equals its shard's digest — i.e. resumed
   clients ended exactly where always-connected ones did — and the digests
   must agree across executors. *)
let test_load_across_schedulers () =
  let e = Sm_core.Executor.create () in
  let threaded =
    Fun.protect
      ~finally:(fun () -> Sm_core.Executor.shutdown e)
      (fun () -> Sm_core.Runtime.run ~executor:e (fun _ -> Load.run ~docs chaos_profile))
  in
  let coop = Sm_core.Runtime.Coop.run (fun _ -> Load.run ~docs chaos_profile) in
  checkb "threaded converged" true threaded.Load.converged;
  checkb "coop converged" true coop.Load.converged;
  checkb "chaos actually exercised resume" true (threaded.Load.resumes > 0);
  check Alcotest.(list string) "digests agree across executors"
    threaded.Load.shard_digests coop.Load.shard_digests;
  check Alcotest.int "tick counts agree across executors" threaded.Load.ticks coop.Load.ticks

(* --- observability: trace propagation, stitching, flight dumps, hot docs ----- *)

module Obs = Sm_obs
module Shard_metrics = Sm_shard.Shard_metrics

let obs_profile =
  { Load.default with Load.seed = 11L; shards = 2; clients = 4; ops_per_client = 6 }

(* Run [f] with a Debug-level collecting sink installed, returning its
   result plus the events in emission order. *)
let with_debug_sink f =
  let events = ref [] in
  Obs.set_level Obs.Debug;
  Obs.set_sink (Obs.Sink.make (fun e -> events := e :: !events));
  Fun.protect
    ~finally:(fun () ->
      Obs.reset_sink ();
      Obs.set_level Obs.Off)
    (fun () ->
      let r = f () in
      (r, List.rev !events))

(* Lane = emitting task, as [Trace_jsonl.dir_sink] would split files;
   sorted by name so lane order never depends on emission interleaving. *)
let lanes_of events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Event.t) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl e.Obs.Event.task) in
      Hashtbl.replace tbl e.Obs.Event.task (e :: prev))
    events;
  Hashtbl.fold (fun lane rev acc -> (lane, List.rev rev) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* One traced load run under [run_in], stitched: the driver emits the shared
   request root on its own lane (else every client span would stitch as a
   dangling orphan), and every client gets that root as [?parent]. *)
let traced_run run_in =
  let root = Obs.Trace_ctx.root "test/req" in
  let driver op kind =
    Obs.emit
      (Obs.Event.make ~task:"driver" ~task_id:4_000_001
         ~args:(("op", Obs.Event.S op) :: Obs.Trace_ctx.args root)
         kind)
  in
  let report, events =
    with_debug_sink (fun () ->
        driver "begin" Obs.Event.Req_begin;
        let r = run_in (fun () -> Load.run ~docs ~parent:root obs_profile) in
        driver "end" Obs.Event.Req_end;
        r)
  in
  (root, report, Obs.Trace_stitch.stitch (lanes_of events))

let rec span_lanes (s : Obs.Trace_stitch.span) =
  List.map fst s.Obs.Trace_stitch.events @ List.concat_map span_lanes s.Obs.Trace_stitch.children

let prefixed p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p

let test_trace_tree_spans_processes () =
  let root, report, traces = traced_run (fun f -> f ()) in
  checkb "run converged" true report.Load.converged;
  match traces with
  | [ tr ] -> (
    match tr.Obs.Trace_stitch.roots with
    | [ r ] ->
      checkb "root is the request" true (Obs.Trace_ctx.equal r.Obs.Trace_stitch.ctx root);
      checkb "root resolved, not dangling" true (not r.Obs.Trace_stitch.dangling);
      let lanes = List.sort_uniq compare (span_lanes r) in
      checkb "a client lane participates" true (List.exists (prefixed "client") lanes);
      checkb "at least two shards participate" true
        (List.length (List.filter (prefixed "shard") lanes) >= 2)
    | l -> Alcotest.fail (Printf.sprintf "one root span expected, got %d" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "one trace expected, got %d" (List.length l))

let test_stitch_identical_across_executors () =
  let run_threaded f =
    let e = Sm_core.Executor.create () in
    Fun.protect
      ~finally:(fun () -> Sm_core.Executor.shutdown e)
      (fun () -> Sm_core.Runtime.run ~executor:e (fun _ -> f ()))
  in
  let run_coop f = Sm_core.Runtime.Coop.run (fun _ -> f ()) in
  let _, r1, t1 = traced_run run_threaded in
  let _, r2, t2 = traced_run run_coop in
  checkb "both converged" true (r1.Load.converged && r2.Load.converged);
  check Alcotest.string "stitched trees byte-identical across executors"
    (Obs.Trace_stitch.to_string t1) (Obs.Trace_stitch.to_string t2)

let test_flight_dump_across_executors () =
  Fun.protect ~finally:(fun () -> Obs.Flight_recorder.reset ())
  @@ fun () ->
  let capture run =
    Obs.Flight_recorder.reset ();
    Obs.Flight_recorder.set_enabled true;
    let r = run () in
    checkb "converged" true r.Load.converged;
    Obs.Flight_recorder.dump_all ()
  in
  let e = Sm_core.Executor.create () in
  let d1 =
    Fun.protect
      ~finally:(fun () -> Sm_core.Executor.shutdown e)
      (fun () ->
        capture (fun () ->
            Sm_core.Runtime.run ~executor:e (fun _ -> Load.run ~docs chaos_profile)))
  in
  let d2 = capture (fun () -> Sm_core.Runtime.Coop.run (fun _ -> Load.run ~docs chaos_profile)) in
  checkb "dumps are non-empty" true (List.exists (fun (_, lines) -> lines <> []) d1);
  checkb "flight dumps byte-identical across executors" true (d1 = d2)

let test_hot_docs_and_stats_report () =
  let saved = Obs.Metrics.is_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled saved;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let last = ref None in
  let r = Load.run ~docs ~on_tick:(fun _ svc -> last := Some svc) obs_profile in
  checkb "converged" true r.Load.converged;
  match !last with
  | None -> Alcotest.fail "on_tick never fired"
  | Some svc ->
    let rows = Shard_metrics.rows (Service.servers svc) in
    check Alcotest.int "one row per shard" obs_profile.Load.shards (List.length rows);
    checkb "edits were counted" true
      (List.fold_left (fun n row -> n + row.Shard_metrics.edits) 0 rows > 0);
    checkb "merge latency histograms populated" true
      (List.exists (fun row -> row.Shard_metrics.merge_p50_ns <> None) rows);
    let hot = Shard_metrics.hot_docs (Service.servers svc) in
    checkb "conflict profiler attributes documents" true (hot <> []);
    checkb "hot docs saw merges" true
      (List.for_all (fun (_, (d : Sm_shard.Server.doc_stat)) -> d.Sm_shard.Server.d_merges > 0) hot);
    let report = Service.stats_report svc in
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    checkb "report renders the shard table" true (contains "shard" report);
    checkb "report renders the hot-docs table" true (contains "document" report);
    checkb "report renders the net line" true (contains "net: sends=" report);
    let expo = Service.expo_text svc in
    let families =
      String.split_on_char '\n' expo
      |> List.filter (fun l -> prefixed "# TYPE" l)
      |> List.length
    in
    checkb "expo exports >= 10 metric families" true (families >= 10)

let suite =
  [ Alcotest.test_case "router: deterministic spread" `Quick test_router_determinism
  ; Alcotest.test_case "proto: frame roundtrips" `Quick test_proto_roundtrip
  ; Alcotest.test_case "proto: malformed frames rejected" `Quick test_frame_rejection
  ; Alcotest.test_case "tree codec roundtrip" `Quick test_tree_codec_roundtrip
  ; Alcotest.test_case "delta: encode/apply/dedup/gap" `Quick test_delta_encode_apply
  ; Alcotest.test_case "workspace: clone_trimmed and update_trimming" `Quick test_clone_trimmed
  ; Alcotest.test_case "service: two clients converge" `Quick test_two_client_convergence
  ; Alcotest.test_case "service: idle resume refreshes the view" `Quick test_resume_refreshes_idle_view
  ; Alcotest.test_case "service: resume mid-epoch, exactly-once merge" `Quick test_resume_mid_epoch
  ; Alcotest.test_case "load: seed-reproducible under chaos" `Quick test_load_reproducible
  ; Alcotest.test_case "load: delta and snapshot modes agree" `Quick test_load_mode_invariance
  ; Alcotest.test_case "load: chaos converges on both schedulers" `Quick test_load_across_schedulers
  ; Alcotest.test_case "obs: one request tree spans client + 2 shards" `Quick
      test_trace_tree_spans_processes
  ; Alcotest.test_case "obs: stitched tree identical across executors" `Quick
      test_stitch_identical_across_executors
  ; Alcotest.test_case "obs: flight dumps identical across executors" `Quick
      test_flight_dump_across_executors
  ; Alcotest.test_case "obs: hot docs, stats report, expo families" `Quick
      test_hot_docs_and_stats_report
  ]
