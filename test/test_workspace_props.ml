(* Cross-layer equivalence properties: the Workspace merge engine must agree
   with the bare Control algorithm on random histories, and copy/rebase obey
   their algebraic laws. *)

open Test_support
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Int_elt)
module L = Mlist.Op
module C = Sm_ot.Control.Make (L)

let gen_script =
  (* op constructors deferred: indexes are resolved against the live state *)
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (frequency
         [ (3, map (fun x -> `Append x) (int_range 0 99))
         ; (2, map (fun i -> `Delete i) (int_range 0 10))
         ; (2, map2 (fun i x -> `Set (i, x)) (int_range 0 10) (int_range 0 99))
         ]))

let apply_script ws key script =
  List.iter
    (fun step ->
      let len = Mlist.length ws key in
      match step with
      | `Append x -> Mlist.append ws key x
      | `Delete i -> if len > 0 then Mlist.delete ws key (i mod len)
      | `Set (i, x) -> if len > 0 then Mlist.set ws key (i mod len) x)
    script

let gen_case =
  QCheck2.Gen.(
    let* initial = list_size (int_range 0 5) (int_range 0 9) in
    let* parent_script = gen_script in
    let* c1 = gen_script in
    let* c2 = gen_script in
    return (initial, parent_script, c1, c2))

(* Workspace.merge_child over two children == Control.merge over their
   journals. *)
let workspace_matches_control =
  qtest ~count:300 "workspace merge = control merge" gen_case
    (fun (initial, parent_script, s1, s2) ->
      let key = Mlist.key ~name:"prop" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base = Ws.snapshot ws in
      let child1 = Ws.copy ws and child2 = Ws.copy ws in
      apply_script ws key parent_script;
      apply_script child1 key s1;
      apply_script child2 key s2;
      let parent_ops = Ws.journal ws key in
      let ops1 = Ws.journal child1 key in
      let ops2 = Ws.journal child2 key in
      Ws.merge_child ~parent:ws ~child:child1 ~base;
      Ws.merge_child ~parent:ws ~child:child2 ~base;
      let expected =
        C.apply_seq initial
          (C.merge ~applied:parent_ops ~children:[ ops1; ops2 ] ~tie:Sm_ot.Side.serialization)
      in
      Mlist.get ws key = expected)

(* rebase_from after merge reproduces the parent exactly and clears logs *)
let rebase_reproduces_parent =
  qtest ~count:200 "rebase = fresh copy of parent" gen_case
    (fun (initial, parent_script, s1, _) ->
      let key = Mlist.key ~name:"prop-rebase" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base = Ws.snapshot ws in
      let child = Ws.copy ws in
      apply_script ws key parent_script;
      apply_script child key s1;
      Ws.merge_child ~parent:ws ~child ~base;
      Ws.rebase_from child ~parent:ws;
      Ws.equal child ws && Ws.is_pristine child && Ws.digest child = Ws.digest ws)

(* merging a pristine child is always a no-op on the parent *)
let pristine_merge_is_noop =
  qtest ~count:200 "pristine child merge is identity" gen_case
    (fun (initial, parent_script, _, _) ->
      let key = Mlist.key ~name:"prop-noop" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base = Ws.snapshot ws in
      let child = Ws.copy ws in
      apply_script ws key parent_script;
      let before = Ws.digest ws in
      Ws.merge_child ~parent:ws ~child ~base;
      Ws.digest ws = before)

(* merge then truncate then merge another child with a fresh base: safe *)
let truncate_then_merge =
  qtest ~count:200 "truncate interleaves with merging" gen_case
    (fun (initial, parent_script, s1, s2) ->
      let key = Mlist.key ~name:"prop-trunc" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base1 = Ws.snapshot ws in
      let child1 = Ws.copy ws in
      apply_script ws key parent_script;
      apply_script child1 key s1;
      Ws.merge_child ~parent:ws ~child:child1 ~base:base1;
      (* second child spawns from the post-merge state *)
      let base2 = Ws.snapshot ws in
      let base2_state = Mlist.get ws key in
      let child2 = Ws.copy ws in
      apply_script child2 key s2;
      let ops2 = Ws.journal child2 key in
      Ws.truncate_to_min ws ~bases:[ base2 ];
      Ws.merge_child ~parent:ws ~child:child2 ~base:base2;
      (* the parent was quiescent after base2, so the merge is exactly
         child2's journal applied to the base2 state *)
      Mlist.get ws key = C.apply_seq base2_state ops2)

let suite =
  [ workspace_matches_control
  ; rebase_reproduces_parent
  ; pristine_merge_is_noop
  ; truncate_then_merge
  ]
