(* Cross-layer equivalence properties: the Workspace merge engine must agree
   with the bare Control algorithm on random histories, and copy/rebase obey
   their algebraic laws. *)

open Test_support
module Ws = Sm_mergeable.Workspace
module Mlist = Sm_mergeable.Mlist.Make (Int_elt)
module L = Mlist.Op
module C = Sm_ot.Control.Make (L)

let gen_script =
  (* op constructors deferred: indexes are resolved against the live state *)
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (frequency
         [ (3, map (fun x -> `Append x) (int_range 0 99))
         ; (2, map (fun i -> `Delete i) (int_range 0 10))
         ; (2, map2 (fun i x -> `Set (i, x)) (int_range 0 10) (int_range 0 99))
         ]))

let apply_script ws key script =
  List.iter
    (fun step ->
      let len = Mlist.length ws key in
      match step with
      | `Append x -> Mlist.append ws key x
      | `Delete i -> if len > 0 then Mlist.delete ws key (i mod len)
      | `Set (i, x) -> if len > 0 then Mlist.set ws key (i mod len) x)
    script

let gen_case =
  QCheck2.Gen.(
    let* initial = list_size (int_range 0 5) (int_range 0 9) in
    let* parent_script = gen_script in
    let* c1 = gen_script in
    let* c2 = gen_script in
    return (initial, parent_script, c1, c2))

(* Workspace.merge_child over two children == Control.merge over their
   journals. *)
let workspace_matches_control =
  qtest ~count:300 "workspace merge = control merge" gen_case
    (fun (initial, parent_script, s1, s2) ->
      let key = Mlist.key ~name:"prop" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base = Ws.snapshot ws in
      let child1 = Ws.copy ws and child2 = Ws.copy ws in
      apply_script ws key parent_script;
      apply_script child1 key s1;
      apply_script child2 key s2;
      let parent_ops = Ws.journal ws key in
      let ops1 = Ws.journal child1 key in
      let ops2 = Ws.journal child2 key in
      Ws.merge_child ~parent:ws ~child:child1 ~base;
      Ws.merge_child ~parent:ws ~child:child2 ~base;
      let expected =
        C.apply_seq initial
          (C.merge ~applied:parent_ops ~children:[ ops1; ops2 ] ~tie:Sm_ot.Side.serialization)
      in
      Mlist.get ws key = expected)

(* rebase_from after merge reproduces the parent exactly and clears logs *)
let rebase_reproduces_parent =
  qtest ~count:200 "rebase = fresh copy of parent" gen_case
    (fun (initial, parent_script, s1, _) ->
      let key = Mlist.key ~name:"prop-rebase" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base = Ws.snapshot ws in
      let child = Ws.copy ws in
      apply_script ws key parent_script;
      apply_script child key s1;
      Ws.merge_child ~parent:ws ~child ~base;
      Ws.rebase_from child ~parent:ws;
      Ws.equal child ws && Ws.is_pristine child && Ws.digest child = Ws.digest ws)

(* merging a pristine child is always a no-op on the parent *)
let pristine_merge_is_noop =
  qtest ~count:200 "pristine child merge is identity" gen_case
    (fun (initial, parent_script, _, _) ->
      let key = Mlist.key ~name:"prop-noop" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base = Ws.snapshot ws in
      let child = Ws.copy ws in
      apply_script ws key parent_script;
      let before = Ws.digest ws in
      Ws.merge_child ~parent:ws ~child ~base;
      Ws.digest ws = before)

(* merge then truncate then merge another child with a fresh base: safe *)
let truncate_then_merge =
  qtest ~count:200 "truncate interleaves with merging" gen_case
    (fun (initial, parent_script, s1, s2) ->
      let key = Mlist.key ~name:"prop-trunc" in
      let ws = Ws.create () in
      Ws.init ws key initial;
      let base1 = Ws.snapshot ws in
      let child1 = Ws.copy ws in
      apply_script ws key parent_script;
      apply_script child1 key s1;
      Ws.merge_child ~parent:ws ~child:child1 ~base:base1;
      (* second child spawns from the post-merge state *)
      let base2 = Ws.snapshot ws in
      let base2_state = Mlist.get ws key in
      let child2 = Ws.copy ws in
      apply_script child2 key s2;
      let ops2 = Ws.journal child2 key in
      Ws.truncate_to_min ws ~bases:[ base2 ];
      Ws.merge_child ~parent:ws ~child:child2 ~base:base2;
      (* the parent was quiescent after base2, so the merge is exactly
         child2's journal applied to the base2 state *)
      Mlist.get ws key = C.apply_seq base2_state ops2)

(* --- structural-sharing battery (copy-on-write workspaces) ------------------

   Spawn is O(cells) because children alias the parent's persistent state
   snapshots.  The battery pins the contract down observably: sharing costs
   zero copies ([ws.cow_hits] = 0 until someone writes, [ws.copy_bytes] = 0
   under COW), the first write per sharing window costs exactly one cow hit,
   writes are isolated across all nine mergeable types, clone chains
   preserve digests, and lazily merged journals materialize on observation.
   Every COW-specific assertion consults [cow_enabled] so the same battery
   passes under the SM_COW=0 deep-copy baseline. *)

module M = Sm_obs.Metrics
module Mcounter = Sm_mergeable.Mcounter
module Mtext = Sm_mergeable.Mtext
module Mreg = Sm_mergeable.Mregister.Make (Str_elt)
module Mq = Sm_mergeable.Mqueue.Make (Int_elt)
module Mstk = Sm_mergeable.Mstack.Make (Int_elt)
module Mset = Sm_mergeable.Mset.Make (Int_elt)
module Mmap = Sm_mergeable.Mmap.Make (Str_elt) (Int_elt)
module Mtree = Sm_mergeable.Mtree.Make (Str_elt)

(* one fixture key per mergeable type, minted once *)
let nk_counter = Mcounter.key ~name:"nine.counter"
let nk_reg = Mreg.key ~name:"nine.reg"
let nk_text = Mtext.key ~name:"nine.text"
let nk_list = Mlist.key ~name:"nine.list"
let nk_queue = Mq.key ~name:"nine.queue"
let nk_stack = Mstk.key ~name:"nine.stack"
let nk_set = Mset.key ~name:"nine.set"
let nk_map = Mmap.key ~name:"nine.map"
let nk_tree = Mtree.key ~name:"nine.tree"
let nk_lazy = Mlist.key ~name:"nine.lazy"
let nk_cow = Mlist.key ~name:"nine.cowprop"

let make_nine () =
  let ws = Ws.create () in
  Ws.init ws nk_counter 7;
  Ws.init ws nk_reg "init";
  Mtext.init ws nk_text "the quick brown fox";
  Ws.init ws nk_list [ 1; 2; 3 ];
  Ws.init ws nk_queue [ 10; 11 ];
  Ws.init ws nk_stack [ 20; 21 ];
  Ws.init ws nk_set Mset.Op.Elt_set.(add 1 (add 2 empty));
  Ws.init ws nk_map Mmap.Op.Key_map.(add "a" 1 (add "b" 2 empty));
  Ws.init ws nk_tree [ Mtree.Op.branch "root" [ Mtree.Op.leaf "kid" ] ];
  ws

(* one distinguishable write per type *)
let mutate_all ws n =
  Mcounter.add ws nk_counter n;
  Mreg.set ws nk_reg (Printf.sprintf "v%d" n);
  Mtext.append ws nk_text (string_of_int n);
  Mlist.append ws nk_list n;
  Mq.push ws nk_queue n;
  Mstk.push ws nk_stack n;
  Mset.add ws nk_set n;
  Mmap.put ws nk_map "k" n;
  Mtree.insert ws nk_tree [ 0; 0 ] (Mtree.Op.leaf (Printf.sprintf "n%d" n))

let with_metrics f =
  let saved = M.is_enabled () in
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled saved) f

let hits () = M.value Ws.cow_hits
let bytes () = M.value Ws.copy_bytes
let check_int name expected got = Alcotest.(check int) name expected got

let spawn_zero_copy () =
  with_metrics @@ fun () ->
  let ws = make_nine () in
  let h0 = hits () and b0 = bytes () in
  let child = Ws.copy ws in
  check_int "nine cells travel" 9 (Ws.cell_count child);
  check_int "spawn costs no cow hits" 0 (hits () - h0);
  if Ws.cow_enabled () then begin
    check_int "spawn copies zero bytes" 0 (bytes () - b0);
    (* the child aliases the parent's persistent states outright *)
    check_bool "text state shared" (Mtext.state ws nk_text == Mtext.state child nk_text);
    check_bool "list state shared" (Mlist.get ws nk_list == Mlist.get child nk_list);
    check_bool "tree state shared" (Mtree.get ws nk_tree == Mtree.get child nk_tree)
  end
  else check_bool "baseline deep-copies bytes" (bytes () - b0 > 0);
  check_bool "identical observations on both sides" (Ws.equal ws child);
  check_bool "identical digests" (String.equal (Ws.digest ws) (Ws.digest child));
  check_int "reading costs no cow hits either" 0 (hits () - h0)

let cow_hit_on_first_write () =
  with_metrics @@ fun () ->
  let ws = make_nine () in
  let child = Ws.copy ws in
  let h0 = hits () in
  Mtext.append child nk_text "!";
  let after_first = hits () - h0 in
  Mtext.append child nk_text "?";
  let after_second = hits () - h0 in
  if Ws.cow_enabled () then begin
    check_int "first write privatizes the cell once" 1 after_first;
    check_int "later writes are free" 1 after_second;
    Mtext.append ws nk_text "~";
    check_int "the parent's first write also counts" 2 (hits () - h0)
  end
  else begin
    check_int "the baseline never cow-hits" 0 after_second;
    Mtext.append ws nk_text "~"
  end;
  check_bool "the texts diverged regardless of mode"
    (not (String.equal (Mtext.get child nk_text) (Mtext.get ws nk_text)))

let write_isolation_nine () =
  let ws = make_nine () in
  let child = Ws.copy ws in
  let parent_digest = Ws.digest ws in
  mutate_all child 42;
  check_bool "child writes invisible to the parent (all nine types)"
    (String.equal parent_digest (Ws.digest ws));
  let child_digest = Ws.digest child in
  mutate_all ws 77;
  check_bool "parent writes invisible to the child (all nine types)"
    (String.equal child_digest (Ws.digest child));
  check_bool "both sides really diverged" (not (Ws.equal ws child))

let copy_chain_zero_copy () =
  with_metrics @@ fun () ->
  let ws = make_nine () in
  let d0 = Ws.digest ws in
  let h0 = hits () and b0 = bytes () in
  let deepest = List.fold_left (fun w _ -> Ws.copy w) ws (List.init 20 Fun.id) in
  check_int "20-deep spawn chain: no cow hits" 0 (hits () - h0);
  if Ws.cow_enabled () then check_int "and zero bytes copied" 0 (bytes () - b0);
  check_bool "deepest copy digests like the root" (String.equal d0 (Ws.digest deepest));
  let h1 = hits () in
  Mcounter.incr deepest nk_counter;
  if Ws.cow_enabled () then check_int "one hit at the deepest only" 1 (hits () - h1);
  check_bool "the root never noticed" (String.equal d0 (Ws.digest ws))

let clone_trimmed_chain () =
  let ws = make_nine () in
  mutate_all ws 5;
  let d0 = Ws.digest ws in
  let v0 = Ws.version_of ws nk_text in
  let c1 = Ws.clone_trimmed ws in
  let c2 = Ws.clone_trimmed c1 in
  let c3 = Ws.clone_full c2 in
  check_bool "clone_trimmed preserves the digest" (String.equal d0 (Ws.digest c1));
  check_bool "clone-of-clone preserves it too" (String.equal d0 (Ws.digest c2));
  check_bool "clone_full of the chain as well" (String.equal d0 (Ws.digest c3));
  check_int "versions preserved through the chain" v0 (Ws.version_of c2 nk_text);
  check_bool "trimmed clones are pristine" (Ws.is_pristine c1 && Ws.is_pristine c2);
  check_int "trimmed journals answer only from the head" 0
    (List.length (Ws.journal_since c2 nk_text ~version:v0));
  mutate_all c2 9;
  check_bool "chain isolation: earlier clone unchanged" (String.equal d0 (Ws.digest c1));
  check_bool "chain isolation: the root unchanged" (String.equal d0 (Ws.digest ws))

let lazy_merge_materializes () =
  let ws = Ws.create () in
  Ws.init ws nk_lazy [ 0 ];
  let base = Ws.snapshot ws in
  let child = Ws.copy ws in
  Mlist.append ws nk_lazy 1;
  Mlist.append child nk_lazy 2;
  let expected =
    C.apply_seq [ 0 ]
      (C.merge ~applied:(Ws.journal ws nk_lazy)
         ~children:[ Ws.journal child nk_lazy ]
         ~tie:Sm_ot.Side.serialization)
  in
  Ws.merge_child ~parent:ws ~child ~base;
  check_int "merge journals without observing" 2 (Ws.version_of ws nk_lazy);
  check_bool "observation materializes the merged suffix" (Mlist.get ws nk_lazy = expected);
  (* a lazily merged suffix survives truncation: the clamp keeps everything
     at or above the applied watermark *)
  let base2 = Ws.snapshot ws in
  let child2 = Ws.copy ws in
  Mlist.append child2 nk_lazy 9;
  Ws.merge_child ~parent:ws ~child:child2 ~base:base2;
  Ws.truncate_to_min ws ~bases:[];
  check_bool "truncation keeps the unapplied suffix readable"
    (Mlist.get ws nk_lazy = expected @ [ 9 ])

let copy_state_laws () =
  let law (type s o) name
      (module D : Sm_mergeable.Data.S with type state = s and type op = o) (s : s) ~fresh =
    let c = D.copy_state s in
    check_bool (name ^ ": copy is equal") (D.equal_state s c);
    check_bool (name ^ ": copy prints identically")
      (String.equal (Format.asprintf "%a" D.pp_state s) (Format.asprintf "%a" D.pp_state c));
    check_bool (name ^ ": size is positive") (D.state_size s > 0);
    (* scalars copy by identity (nothing structural to duplicate); aggregates
       must come back structurally fresh *)
    if fresh then check_bool (name ^ ": copy is structurally fresh") (not (s == c))
  in
  law "counter" (module Mcounter.Data) 41 ~fresh:false;
  law "register" (module Mreg.Data) "reg" ~fresh:false;
  law "text" (module Mtext.Data) (Sm_ot.Op_text.of_string "abcdef") ~fresh:true;
  law "list" (module Mlist.Data) [ 1; 2 ] ~fresh:true;
  law "queue" (module Mq.Data) [ 3 ] ~fresh:true;
  law "stack" (module Mstk.Data) [ 4 ] ~fresh:true;
  law "set" (module Mset.Data) Mset.Op.Elt_set.(add 1 (add 2 empty)) ~fresh:true;
  law "map" (module Mmap.Data) Mmap.Op.Key_map.(add "a" 1 empty) ~fresh:true;
  law "tree" (module Mtree.Data) [ Mtree.Op.leaf "x" ] ~fresh:true;
  check_bool "text size tracks content"
    (Mtext.Data.state_size (Sm_ot.Op_text.of_string (String.make 1000 'x'))
    > Mtext.Data.state_size (Sm_ot.Op_text.of_string "x"))

(* the full merge pipeline digests identically under both representations *)
let cow_equivalence =
  qtest ~count:200 "digest invariant under set_cow" gen_case
    (fun (initial, parent_script, s1, s2) ->
      let run () =
        let ws = Ws.create () in
        Ws.init ws nk_cow initial;
        let base = Ws.snapshot ws in
        let c1 = Ws.copy ws and c2 = Ws.copy ws in
        apply_script ws nk_cow parent_script;
        apply_script c1 nk_cow s1;
        apply_script c2 nk_cow s2;
        Ws.merge_child ~parent:ws ~child:c1 ~base;
        Ws.merge_child ~parent:ws ~child:c2 ~base;
        Ws.digest ws
      in
      let saved = Ws.cow_enabled () in
      Fun.protect
        ~finally:(fun () -> Ws.set_cow saved)
        (fun () ->
          Ws.set_cow true;
          let on = run () in
          Ws.set_cow false;
          let off = run () in
          String.equal on off))

let suite =
  [ workspace_matches_control
  ; rebase_reproduces_parent
  ; pristine_merge_is_noop
  ; truncate_then_merge
  ; Alcotest.test_case "spawn shares all nine types with zero copies" `Quick spawn_zero_copy
  ; Alcotest.test_case "first write costs exactly one cow hit" `Quick cow_hit_on_first_write
  ; Alcotest.test_case "write isolation across all nine types" `Quick write_isolation_nine
  ; Alcotest.test_case "20-deep copy chains share until written" `Quick copy_chain_zero_copy
  ; Alcotest.test_case "clone chains preserve digests and versions" `Quick clone_trimmed_chain
  ; Alcotest.test_case "lazy merges materialize on observation" `Quick lazy_merge_materializes
  ; Alcotest.test_case "copy_state/state_size laws (nine types)" `Quick copy_state_laws
  ; cow_equivalence
  ]
