(* The distributed Spawn/Merge runtime (Section VI future work): remote
   tasks on simulated ranks, byte-only channels, deterministic merging. *)

open Test_support
module D = Sm_dist.Coordinator
module Reg = Sm_dist.Registry
module Ws = Sm_mergeable.Workspace

(* One registry for the whole suite, mirroring an MPI program where all
   ranks share the same binary. *)
let registry = Reg.create ()

module Counter = Sm_dist.Codable.Counter
module Ilist = Sm_dist.Codable.Make_list (Sm_dist.Codable.Int_elt)
module Sreg = Sm_dist.Codable.Make_register (Sm_dist.Codable.String_elt)
module Smap = Sm_dist.Codable.Make_map (Sm_dist.Codable.String_elt) (Sm_dist.Codable.Int_elt)

let kc = Reg.value registry ~name:"counter" (module Counter)
let kl = Reg.value registry ~name:"list" (module Ilist)
let kr = Reg.value registry ~name:"register" (module Sreg)
let km = Reg.value registry ~name:"map" (module Smap)

let t_add =
  Reg.task registry ~name:"add" (fun ctx ->
      Reg.update ctx kc (Sm_ot.Op_counter.add (int_of_string (Reg.argument ctx))))

let t_append =
  Reg.task registry ~name:"append" (fun ctx ->
      let x = int_of_string (Reg.argument ctx) in
      Reg.update ctx kl (Ilist.Op.ins (List.length (Reg.read ctx kl)) x))

let t_assign =
  Reg.task registry ~name:"assign" (fun ctx -> Reg.update ctx kr (Sreg.Op.assign (Reg.argument ctx)))

let t_put_rank =
  Reg.task registry ~name:"put-rank" (fun ctx ->
      Reg.update ctx km (Smap.Op.put (Reg.argument ctx) (Reg.rank ctx)))

let t_sync_rounds =
  Reg.task registry ~name:"sync-rounds" (fun ctx ->
      let rounds = int_of_string (Reg.argument ctx) in
      for _ = 1 to rounds do
        Reg.update ctx kc (Sm_ot.Op_counter.add 1);
        ignore (Reg.sync ctx)
      done)

let t_fail = Reg.task registry ~name:"fail" (fun ctx ->
    Reg.update ctx kc (Sm_ot.Op_counter.add 999);
    failwith ("deliberate failure on rank " ^ string_of_int (Reg.rank ctx)))

let t_observe_after_sync =
  Reg.task registry ~name:"observe" (fun ctx ->
      (* contribute, sync, then record what the merged world looked like *)
      Reg.update ctx kc (Sm_ot.Op_counter.add 1);
      ignore (Reg.sync ctx);
      Reg.update ctx km (Smap.Op.put (Reg.argument ctx) (Reg.read ctx kc)))

(* A fresh cluster per test keeps tests independent; they are cheap. *)
let with_cluster ?(nodes = 2) f =
  let cluster = D.cluster ~nodes registry in
  Fun.protect ~finally:(fun () -> D.shutdown cluster) (fun () -> f cluster)

let init_all ctx =
  let ws = D.workspace ctx in
  Ws.init ws (Reg.workspace_key kc) 0;
  Ws.init ws (Reg.workspace_key kl) [];
  Ws.init ws (Reg.workspace_key kr) "initial";
  Ws.init ws (Reg.workspace_key km) Smap.Op.Key_map.empty

let remote_counters () =
  with_cluster (fun cluster ->
      let total =
        D.run cluster (fun ctx ->
            init_all ctx;
            for i = 1 to 10 do
              ignore (D.spawn ctx t_add ~argument:(string_of_int i))
            done;
            D.merge_all ctx;
            Ws.read (D.workspace ctx) (Reg.workspace_key kc))
      in
      Alcotest.(check int) "sum over ranks" 55 total)

let creation_order_is_deterministic () =
  with_cluster ~nodes:3 (fun cluster ->
      let run () =
        D.run cluster (fun ctx ->
            init_all ctx;
            for i = 0 to 7 do
              ignore (D.spawn ctx t_append ~argument:(string_of_int i))
            done;
            D.merge_all ctx;
            Ws.read (D.workspace ctx) (Reg.workspace_key kl))
      in
      let a = run () and b = run () in
      Alcotest.(check (list int)) "creation order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] a;
      Alcotest.(check (list int)) "repeatable" a b)

let same_digest_any_node_count () =
  let digest nodes =
    with_cluster ~nodes (fun cluster ->
        D.run cluster (fun ctx ->
            init_all ctx;
            for i = 0 to 5 do
              ignore (D.spawn ctx t_append ~argument:(string_of_int i));
              ignore (D.spawn ctx t_add ~argument:"3");
              ignore (D.spawn ctx t_assign ~argument:(Printf.sprintf "v%d" i))
            done;
            D.merge_all ctx;
            Ws.digest (D.workspace ctx)))
  in
  let d1 = digest 1 and d2 = digest 2 and d5 = digest 5 in
  Alcotest.(check string) "1 node = 2 nodes" d1 d2;
  Alcotest.(check string) "2 nodes = 5 nodes" d2 d5

let register_last_merged_wins () =
  with_cluster (fun cluster ->
      let v =
        D.run cluster (fun ctx ->
            init_all ctx;
            ignore (D.spawn ctx t_assign ~argument:"first");
            ignore (D.spawn ctx t_assign ~argument:"second");
            D.merge_all ctx;
            Ws.read (D.workspace ctx) (Reg.workspace_key kr))
      in
      Alcotest.(check string) "creation order decides" "second" v)

let sync_rounds_accumulate () =
  with_cluster (fun cluster ->
      let total =
        D.run cluster (fun ctx ->
            init_all ctx;
            ignore (D.spawn ctx t_sync_rounds ~argument:"4");
            ignore (D.spawn ctx t_sync_rounds ~argument:"4");
            (* each merge_all consumes one event per live task *)
            let rec drain () = if D.live_tasks ctx > 0 then (D.merge_all ctx; drain ()) in
            drain ();
            Ws.read (D.workspace ctx) (Reg.workspace_key kc))
      in
      Alcotest.(check int) "4 rounds x 2 tasks" 8 total)

let observers_see_merged_state () =
  with_cluster (fun cluster ->
      let bindings =
        D.run cluster (fun ctx ->
            init_all ctx;
            ignore (D.spawn ctx t_observe_after_sync ~argument:"a");
            ignore (D.spawn ctx t_observe_after_sync ~argument:"b");
            (* both sync (counter reaches 2), then both complete *)
            D.merge_all ctx;
            D.merge_all ctx;
            Smap.Op.Key_map.bindings (Ws.read (D.workspace ctx) (Reg.workspace_key km)))
      in
      (* merges happen in creation order: "a" is rebased right after its own
         merge (counter = 1), "b" after both (counter = 2) — deterministic *)
      Alcotest.(check (list (pair string int))) "observed merged counters" [ ("a", 1); ("b", 2) ]
        bindings)

let failures_discard () =
  with_cluster (fun cluster ->
      D.run cluster (fun ctx ->
          init_all ctx;
          let bad = D.spawn ctx t_fail ~argument:"" in
          let good = D.spawn ctx t_add ~argument:"7" in
          D.merge_all ctx;
          Alcotest.(check int) "only the good task merged" 7
            (Ws.read (D.workspace ctx) (Reg.workspace_key kc));
          check_bool "failure recorded"
            (match D.failure bad with Some r -> String.length r > 0 | None -> false);
          check_bool "good task clean" (D.failure good = None)))

let merge_any_drains () =
  with_cluster ~nodes:3 (fun cluster ->
      D.run cluster (fun ctx ->
          init_all ctx;
          for _ = 1 to 5 do
            ignore (D.spawn ctx t_add ~argument:"1")
          done;
          let merged = ref 0 in
          let rec drain () =
            match D.merge_any ctx with
            | Some _ ->
              incr merged;
              drain ()
            | None -> ()
          in
          drain ();
          Alcotest.(check int) "five events" 5 !merged;
          Alcotest.(check int) "all merged" 5 (Ws.read (D.workspace ctx) (Reg.workspace_key kc))))

let placement_is_explicit () =
  with_cluster ~nodes:3 (fun cluster ->
      D.run cluster (fun ctx ->
          init_all ctx;
          let t0 = D.spawn ctx ~node:2 t_put_rank ~argument:"x" in
          Alcotest.(check int) "placed on node 2" 2 (D.rank_of t0);
          D.merge_all ctx;
          Alcotest.(check (option int)) "task really ran on rank 2" (Some 2)
            (Smap.Op.Key_map.find_opt "x" (Ws.read (D.workspace ctx) (Reg.workspace_key km)));
          check_bool "unknown node rejected"
            (match D.spawn ctx ~node:9 t_add ~argument:"1" with
            | (_ : D.rtask) -> false
            | exception Invalid_argument _ -> true)))

let t_big_add =
  Reg.task registry ~name:"big-add" (fun ctx ->
      Reg.update ctx kc (Sm_ot.Op_counter.add 500);
      match Reg.sync ctx with
      | `Refused -> Reg.update ctx kc (Sm_ot.Op_counter.add 1) (* fall back to a small change *)
      | `Granted -> ())

let validation_over_the_wire () =
  with_cluster (fun cluster ->
      D.run cluster (fun ctx ->
          init_all ctx;
          ignore (D.spawn ctx t_big_add ~argument:"");
          let bounded w = Ws.read w (Reg.workspace_key kc) < 100 in
          (* sync refused: the big add never lands *)
          D.merge_all ~validate:bounded ctx;
          Alcotest.(check int) "rolled back" 0 (Ws.read (D.workspace ctx) (Reg.workspace_key kc));
          (* the task retries with a small change and completes *)
          D.merge_all ~validate:bounded ctx;
          Alcotest.(check int) "small change accepted" 1
            (Ws.read (D.workspace ctx) (Reg.workspace_key kc))))

let validation_preserves_history () =
  (* a refusal must not corrupt other children's version bases *)
  with_cluster (fun cluster ->
      D.run cluster (fun ctx ->
          init_all ctx;
          ignore (D.spawn ctx t_big_add ~argument:"");
          ignore (D.spawn ctx t_sync_rounds ~argument:"2");
          let bounded w = Ws.read w (Reg.workspace_key kc) < 100 in
          let rec drain () =
            if D.live_tasks ctx > 0 then begin
              D.merge_all ~validate:bounded ctx;
              drain ()
            end
          in
          drain ();
          (* big-add refused then added 1; sync-rounds contributed 2 *)
          Alcotest.(check int) "total" 3 (Ws.read (D.workspace ctx) (Reg.workspace_key kc))))

let cluster_reuse () =
  with_cluster (fun cluster ->
      for round = 1 to 5 do
        let v =
          D.run cluster (fun ctx ->
              init_all ctx;
              ignore (D.spawn ctx t_add ~argument:(string_of_int round));
              D.merge_all ctx;
              Ws.read (D.workspace ctx) (Reg.workspace_key kc))
        in
        Alcotest.(check int) (Printf.sprintf "round %d" round) round v
      done)

(* --- wire-frame version negotiation ------------------------------------------ *)

module Frame = Sm_dist.Wire.Frame

let frame_v1_compat () =
  (* New builds always stamp the current version — the frame version is the
     journal-format negotiation, so a ctx-less seal is a version-3 frame
     with a zero-length context slot. *)
  let sealed = Frame.seal Frame.Delta "payload" in
  Alcotest.(check int) "v3 ctx-less header is 10 bytes" (10 + String.length "payload")
    (String.length sealed);
  Alcotest.(check string) "magic" "SM" (String.sub sealed 0 2);
  Alcotest.(check int) "default seal stamps the current version" Frame.version
    (Char.code sealed.[3]);
  let kind, payload = Frame.open_ sealed in
  check_bool "kind survives" (kind = Frame.Delta);
  Alcotest.(check string) "payload survives" "payload" payload;
  let v, kind, ctx, payload = Frame.open_v sealed in
  check_bool "open_v agrees" (v = Frame.version && kind = Frame.Delta && payload = "payload");
  check_bool "ctx-less frames carry no context" (ctx = None);
  check_bool "current version implies packed journals"
    (Sm_dist.Wire.journal_format_of_version v = Sm_dist.Wire.Packed);
  (* Version-1 frames — what pre-context builds emitted — must decode
     forever, and classify as classic-journal speakers. *)
  let sealed1 = Frame.seal ~version:1 Frame.Delta "payload" in
  Alcotest.(check int) "v1 header is 9 bytes" (9 + String.length "payload")
    (String.length sealed1);
  Alcotest.(check int) "explicit v1 layout" 1 (Char.code sealed1.[3]);
  let v1, kind1, ctx1, payload1 = Frame.open_v sealed1 in
  check_bool "v1 decodes forever" (v1 = 1 && kind1 = Frame.Delta && payload1 = "payload");
  check_bool "v1 frames carry no context" (ctx1 = None);
  check_bool "v1 implies classic journals"
    (Sm_dist.Wire.journal_format_of_version v1 = Sm_dist.Wire.Classic);
  check_bool "v1 cannot carry a context"
    (match Frame.seal ~version:1 ~ctx:(Sm_obs.Trace_ctx.root "r") Frame.Control "x" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Version-2 frames (trace context, classic journals) also decode forever. *)
  let c = Sm_obs.Trace_ctx.child (Sm_obs.Trace_ctx.root "req") "hop" in
  let sealed2 = Frame.seal ~version:2 ~ctx:c Frame.Control "p2" in
  Alcotest.(check int) "explicit v2 layout" 2 (Char.code sealed2.[3]);
  let kind2, payload2 = Frame.open_ sealed2 in
  check_bool "plain open drops the context" (kind2 = Frame.Control && payload2 = "p2");
  (match Frame.open_v sealed2 with
  | 2, _, Some c', p when p = "p2" -> check_bool "context round-trips" (Sm_obs.Trace_ctx.equal c c')
  | _ -> Alcotest.fail "rich open must surface the v2 context");
  check_bool "v2 implies classic journals"
    (Sm_dist.Wire.journal_format_of_version 2 = Sm_dist.Wire.Classic);
  (* A context on a default seal rides the same version-3 frame. *)
  let sealed3 = Frame.seal ~ctx:c Frame.Control "p3" in
  Alcotest.(check int) "ctx seal is still current version" Frame.version
    (Char.code sealed3.[3]);
  match Frame.open_rich sealed3 with
  | _, Some c', p when p = "p3" -> check_bool "v3 context round-trips" (Sm_obs.Trace_ctx.equal c c')
  | _ -> Alcotest.fail "rich open must surface the v3 context"

let frame_unknown_version_rejected () =
  let sealed = Bytes.of_string (Frame.seal Frame.Control "x") in
  Bytes.set_uint16_be sealed 2 255;
  (match Frame.open_ (Bytes.to_string sealed) with
  | exception Frame.Unsupported_version { got; speaks } ->
    Alcotest.(check int) "reports the alien version" 255 got;
    Alcotest.(check int) "reports what this build speaks" Frame.version speaks
  | _ -> Alcotest.fail "version 255 must be rejected");
  (* Version 0 is below [min_version]: same typed rejection, not Bad_frame. *)
  Bytes.set_uint16_be sealed 2 0;
  (match Frame.open_rich (Bytes.to_string sealed) with
  | exception Frame.Unsupported_version { got; _ } ->
    Alcotest.(check int) "pre-v1 rejected too" 0 got
  | _ -> Alcotest.fail "version 0 must be rejected");
  (* Corrupt magic stays a [Bad_frame], distinguishable from wrong build. *)
  let bad = Bytes.of_string (Frame.seal Frame.Control "x") in
  Bytes.set bad 0 'X';
  match Frame.open_ (Bytes.to_string bad) with
  | exception Frame.Bad_frame _ -> ()
  | _ -> Alcotest.fail "corrupt magic must raise Bad_frame"

let frame_roundtrip_property () =
  let rng = Sm_util.Det_rng.create ~seed:0xF4A3E5L in
  for _ = 1 to 200 do
    let kind = Sm_util.Det_rng.pick rng [ Frame.Control; Frame.Delta; Frame.Snapshot ] in
    let payload = Sm_util.Det_rng.bytes rng ~len:(Sm_util.Det_rng.int rng ~bound:64) in
    let ctx =
      if Sm_util.Det_rng.bool rng then
        let root =
          Sm_obs.Trace_ctx.root (Printf.sprintf "req%Ld" (Sm_util.Det_rng.int64 rng))
        in
        if Sm_util.Det_rng.bool rng then Some (Sm_obs.Trace_ctx.child root "hop") else Some root
      else None
    in
    let kind', ctx', payload' = Frame.open_rich (Frame.seal ?ctx kind payload) in
    check_bool "kind round-trips" (kind = kind');
    check_bool "payload round-trips" (String.equal payload payload');
    match (ctx, ctx') with
    | None, None -> ()
    | Some a, Some b -> check_bool "context round-trips" (Sm_obs.Trace_ctx.equal a b)
    | _ -> Alcotest.fail "context presence must round-trip"
  done

(* A journal encoded classic (tagged op list, what v1/v2 frames imply) and
   one encoded packed (v3) carry different bytes but must merge to the same
   document and digest — the registry speaks both formats forever. *)
let journal_format_compat () =
  let reg = Reg.create () in
  let kt = Reg.value reg ~name:"doc" (module Sm_dist.Codable.Text) in
  let k = Reg.workspace_key kt in
  let parent = Ws.create () in
  Ws.init parent k (Sm_ot.Op_text.of_string "the quick brown fox");
  let base = Ws.snapshot parent in
  let child = Reg.build_workspace reg (Reg.encode_snapshot reg parent) in
  List.iter (Ws.update child k)
    [ Sm_ot.Op_text.ins 4 "very "; Sm_ot.Op_text.del ~pos:0 ~len:4; Sm_ot.Op_text.ins 0 "A " ];
  let packed = Reg.encode_journal reg child in
  let classic = Reg.encode_journal ~format:Sm_dist.Wire.Classic reg child in
  check_bool "wire images differ" (packed <> classic);
  check_bool "packed is denser"
    (List.fold_left (fun n (_, s) -> n + String.length s) 0 packed
    < List.fold_left (fun n (_, s) -> n + String.length s) 0 classic);
  let merged fmt entries =
    let ws = Reg.build_workspace reg (Reg.encode_snapshot reg parent) in
    Reg.merge_journal ~format:fmt reg ~into:ws ~base entries;
    (Sm_ot.Op_text.to_string (Ws.read ws k), Ws.digest ws)
  in
  let doc_p, dig_p = merged Sm_dist.Wire.Packed packed in
  let doc_c, dig_c = merged Sm_dist.Wire.Classic classic in
  Alcotest.(check string) "documents agree" doc_p doc_c;
  Alcotest.(check string) "digests agree" dig_p dig_c;
  Alcotest.(check string) "expected document" "A very quick brown fox" doc_p;
  (* feeding packed bytes to the classic decoder must fail loudly, not
     silently misparse *)
  check_bool "formats are not interchangeable"
    (match merged Sm_dist.Wire.Classic packed with
    | _ -> false
    | exception Sm_util.Codec.Decode_error _ -> true)

let suite =
  [ Alcotest.test_case "remote counters sum" `Quick remote_counters
  ; Alcotest.test_case "merge order deterministic across runs" `Quick creation_order_is_deterministic
  ; Alcotest.test_case "digest invariant under node count" `Quick same_digest_any_node_count
  ; Alcotest.test_case "register: last merged wins" `Quick register_last_merged_wins
  ; Alcotest.test_case "sync rounds accumulate" `Quick sync_rounds_accumulate
  ; Alcotest.test_case "observers see merged state after sync" `Quick observers_see_merged_state
  ; Alcotest.test_case "failed tasks discarded" `Quick failures_discard
  ; Alcotest.test_case "merge_any drains in arrival order" `Quick merge_any_drains
  ; Alcotest.test_case "explicit placement" `Quick placement_is_explicit
  ; Alcotest.test_case "validation over the wire" `Quick validation_over_the_wire
  ; Alcotest.test_case "refusal preserves sibling bases" `Quick validation_preserves_history
  ; Alcotest.test_case "cluster reused across runs" `Quick cluster_reuse
  ; Alcotest.test_case "frame: version negotiation + compat" `Quick frame_v1_compat
  ; Alcotest.test_case "frame: alien versions rejected" `Quick frame_unknown_version_rejected
  ; Alcotest.test_case "frame: seal/open round-trip property" `Quick frame_roundtrip_property
  ; Alcotest.test_case "journal formats: classic and packed merge identically" `Quick
      journal_format_compat
  ]
