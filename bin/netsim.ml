(* netsim — run the paper's network simulation from the command line.

     dune exec bin/netsim.exe -- --hosts 20 --messages 100 --ttl 100 \
       --load 1000 --impl spawnmerge --mode hash --runs 3

   Prints one line per run (time, hops, digests) so determinism is visible
   directly: spawn/merge runs repeat both digests; conventional hash-mode
   runs repeat only the event digest. *)

module W = Sm_sim.Workload

type impl =
  | Spawnmerge
  | Coop
  | Conventional
  | Dist

let run_once ~impl ~executor ~nodes ~chaos cfg =
  match impl with
  | Spawnmerge -> Sm_sim.Sim_spawnmerge.run ~executor cfg
  | Coop -> Sm_sim.Sim_spawnmerge.run_cooperative cfg
  | Conventional -> Sm_sim.Sim_conventional.run cfg
  | Dist -> Sm_sim.Sim_dist.run ~nodes ?chaos cfg

let main hosts messages ttl load impl mode topology seed runs per_host nodes drop dup delay
    reorder =
  let cfg = { W.hosts; messages; ttl; load; mode; topology; seed } in
  (match W.validate cfg with
  | () -> ()
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2);
  if (drop > 0. || dup > 0.) && impl = Dist then begin
    prerr_endline
      "netsim: the coordinator protocol assumes reliable channels — drop/dup would violate \
       it, not test it.  Its chaos relay only delays and reorders (--delay/--reorder); the \
       lossy fault plane lives in Netpipe: try `sm-shard demo --drop ...`.";
    exit 2
  end;
  if (drop > 0. || dup > 0. || delay > 0. || reorder > 0.) && impl <> Dist then begin
    prerr_endline "netsim: fault flags only apply to --impl dist";
    exit 2
  end;
  let chaos =
    if delay > 0. || reorder > 0. then
      Some
        (Sm_dist.Coordinator.Chaos.make ~hold_prob:(delay +. reorder)
           ~max_hold:(if delay > 0. then 4 else 1)
           ~seed:(Int64.logxor seed 0x6368616f73L) ())
    else None
  in
  let executor = Sm_core.Executor.create () in
  Format.printf "%d hosts, %d messages, ttl %d, load %d, %s destinations, seed %Ld (%s)@."
    hosts messages ttl load
    (match mode with W.Hash_destination -> "hash" | W.Ring_destination -> "ring")
    seed
    (match impl with
    | Spawnmerge -> "spawn/merge"
    | Coop -> "spawn/merge, cooperative scheduler"
    | Conventional -> "conventional threads+locks"
    | Dist -> Printf.sprintf "spawn/merge, distributed on %d nodes%s" nodes
                (if chaos <> None then " + chaos relay" else ""));
  Format.printf "%-5s %-12s %-8s %-18s %-18s@." "run" "time" "hops" "event digest" "order digest";
  for i = 1 to runs do
    let r = run_once ~impl ~executor ~nodes ~chaos cfg in
    Format.printf "%-5d %9.1f ms %-8d %-18s %-18s@." i (r.W.elapsed_s *. 1000.0) r.W.hops
      r.W.event_digest r.W.order_digest;
    if per_host && i = runs then begin
      Format.printf "@.hops per host (last run):@.";
      Array.iteri (fun h n -> Format.printf "  host %-3d %d@." h n) r.W.per_host
    end
  done;
  (match impl with
  | Spawnmerge | Coop ->
    Format.printf "(%d merge cycles in the last run)@." (Sm_sim.Sim_spawnmerge.cycles_of_last_run ())
  | Dist -> Format.printf "(%d rounds in the last run)@." (Sm_sim.Sim_dist.rounds_of_last_run ())
  | Conventional -> ());
  Sm_core.Executor.shutdown executor

open Cmdliner

let hosts =
  Arg.(value & opt int 20 & info [ "hosts" ] ~docv:"N" ~doc:"Number of simulated hosts.")

let messages =
  Arg.(value & opt int 100 & info [ "messages" ] ~docv:"N" ~doc:"Initial messages in the network.")

let ttl = Arg.(value & opt int 100 & info [ "ttl" ] ~docv:"N" ~doc:"Hops each message lives.")

let load =
  Arg.(
    value
    & opt int 0
    & info [ "load"; "l" ] ~docv:"N" ~doc:"SHA-1 iterations per processed message (the paper's $(i,l)).")

let impl =
  let variants =
    Arg.enum
      [ ("spawnmerge", Spawnmerge)
      ; ("coop", Coop)
      ; ("conventional", Conventional)
      ; ("dist", Dist)
      ]
  in
  Arg.(
    value
    & opt variants Spawnmerge
    & info [ "impl" ] ~docv:"IMPL"
        ~doc:
          "Implementation: $(b,spawnmerge), $(b,coop) (single-threaded effects scheduler), \
           $(b,conventional), or $(b,dist) (remote tasks on coordinator worker nodes).")

let mode =
  let variants = Arg.enum [ ("hash", W.Hash_destination); ("ring", W.Ring_destination) ] in
  Arg.(
    value
    & opt variants W.Hash_destination
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Destination rule: $(b,hash) (the racy, 'non-deterministic' variant) or $(b,ring) \
           (deterministic by construction).")

let topology =
  let variants =
    Arg.enum
      [ ("full", W.Full); ("ring", W.Ring_topology); ("star", W.Star); ("grid", W.Grid) ]
  in
  Arg.(
    value
    & opt variants W.Full
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:
          "Network shape for hash destinations: $(b,full) (the paper's setup), $(b,ring),            $(b,star), or $(b,grid).")

let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"S" ~doc:"Workload RNG seed.")

let runs = Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Repeat the simulation N times.")

let per_host =
  Arg.(value & flag & info [ "per-host" ] ~doc:"Print per-host hop counts for the last run.")

let nodes =
  Arg.(
    value & opt int 2 & info [ "nodes" ] ~docv:"N" ~doc:"Worker nodes for $(b,--impl dist).")

let fault name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)

let drop = fault "drop" "Rejected for $(b,--impl dist): coordinator channels are reliable."
let dup = fault "dup" "Rejected for $(b,--impl dist): coordinator channels are reliable."

let delay =
  fault "delay"
    "Per-message probability that the chaos relay holds an upstream message across 1-4 relay \
     ticks ($(b,--impl dist) only).  Digests must not change."

let reorder =
  fault "reorder"
    "Per-message probability of an adjacent swap in the chaos relay ($(b,--impl dist) only).  \
     Digests must not change."

let cmd =
  let doc = "the paper's network simulation, under either synchronization regime" in
  let man =
    [ `S Manpage.s_description
    ; `P
        "Simulates a network of message-passing hosts (Boelmann et al., IPDPSW 2014, Section \
         II-H/III).  Each processed message costs $(b,--load) SHA-1 iterations; destinations \
         follow $(b,--mode).  With $(b,--impl spawnmerge) the simulation is deterministic in \
         every mode: repeat with $(b,--runs) and compare the digests."
    ]
  in
  Cmd.v
    (Cmd.info "netsim" ~version:"1.0" ~doc ~man)
    Term.(
      const main $ hosts $ messages $ ttl $ load $ impl $ mode $ topology $ seed $ runs
      $ per_host $ nodes $ drop $ dup $ delay $ reorder)

let () = exit (Cmd.eval cmd)
