(* sm-fuzz — deterministic whole-program fuzzer for the Spawn/Merge runtime.

     sm-fuzz run --seeds 100 --depth 3            # fuzz generated spawn trees
     sm-fuzz run --faults validate,abort,sync,clone,any   # widen the step vocabulary
     sm-fuzz run --mutate tie-bias                # seeded bug: expect failures (exit 1)
     sm-fuzz run --target net                     # Netpipe fault-plane conservation laws
     sm-fuzz run --target dist                    # coordinator chaos invariance
     sm-fuzz run --target shard                   # editor fleets: digest convergence under chaos
     sm-fuzz replay --seed 0x2a                   # reproduce one seed's report exactly
     sm-fuzz replay --program failure.smp         # re-check a shrunk artifact
     sm-fuzz corpus --run                         # pinned seeds keep their outcomes

   Every failure prints a replayable report: the seed and config reproduce
   the run bit-for-bit, and the embedded shrunk program replays directly
   with --program.  With --lint, each failure report carries the sm-lint
   static pre-pass verdict of its shrunk program.

   Exit codes: 0 clean, 1 NEW failures found (or a corpus / replay
   mismatch), 2 usage, 3 only expected failures — every failure is the
   differential oracle catching the --mutate seeded bug, the outcome a
   mutation run exists to produce.  CI accepts 3 (`cmd; test $? = 3`) for
   mutation jobs and treats 1 as red everywhere. *)

module F = Sm_fuzz
module Program = F.Program
module Oracle = F.Oracle
module Fuzzer = F.Fuzzer

let die fmt = Format.kasprintf (fun msg -> prerr_endline ("sm-fuzz: " ^ msg); exit 2) fmt

let parse_profile s =
  match s with
  | "det" -> Program.det_profile
  | "full" -> Program.full_profile
  | s -> (
    match Program.profile_of_string s with
    | Some p -> p
    | None ->
      die "bad --faults %S (a comma list of validate,abort,sync,clone,any — or det, full, none)" s)

let parse_mutate = function
  | None -> None
  | Some m -> (
    match Sm_check.Mutate.of_string m with
    | Some k -> Some k
    | None ->
      die "unknown mutation %S (have: %s)" m
        (String.concat ", " (List.map Sm_check.Mutate.to_string Sm_check.Mutate.all)))

let write_report dir (r : Fuzzer.report) =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (Printf.sprintf "seed-0x%Lx.report" r.seed) in
  let oc = open_out path in
  output_string oc (Fuzzer.report_to_string r);
  close_out oc;
  path

(* --- run -------------------------------------------------------------------- *)

(* The expected failure of a mutation run: the differential oracle caught
   the seeded transform bug.  Anything else is news. *)
let expected_failure ~mutate (r : Fuzzer.report) =
  Option.is_some mutate && r.Fuzzer.failure.Oracle.oracle = "differential"

(* 0 none, 3 all expected, 1 any unexpected. *)
let exit_for_failures ~mutate failures =
  if failures = [] then ()
  else if List.for_all (expected_failure ~mutate) failures then exit 3
  else exit 1

let run_spawn ~seeds ~seed_base ~depth ~profile ~mutate ~runs ~lint ~report_dir =
  Oracle.with_env (fun env ->
      let progress ~seed = function
        | Fuzzer.Passed -> ()
        | Fuzzer.Failed r ->
          Format.printf "seed 0x%Lx: FAIL [%s] %s@." seed r.Fuzzer.failure.Oracle.oracle
            r.Fuzzer.failure.Oracle.detail;
          Format.printf "  shrunk %d -> %d steps%s@." (Program.size r.Fuzzer.program)
            (Program.size r.Fuzzer.shrunk)
            (match report_dir with
            | None -> ""
            | Some dir -> Printf.sprintf " (report: %s)" (write_report dir r))
      in
      let summary =
        Fuzzer.run_seeds ?mutate ~runs ~lint ~progress env ~seed_base ~seeds ~depth ~profile ()
      in
      let nfail = List.length summary.Fuzzer.failed in
      Format.printf "%d seed%s (base 0x%Lx, depth %d, faults %s%s): %d failure%s@." seeds
        (if seeds = 1 then "" else "s")
        seed_base depth
        (Program.profile_to_string profile)
        (match mutate with
        | None -> ""
        | Some k -> ", mutate " ^ Sm_check.Mutate.to_string k)
        nfail
        (if nfail = 1 then "" else "s");
      (match (report_dir, summary.Fuzzer.failed) with
      | Some dir, _ :: _ -> Format.printf "reports in %s/@." dir
      | _ -> ());
      exit_for_failures ~mutate summary.Fuzzer.failed)

let run_net ~seeds ~seed_base =
  let failures = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed_base (Int64.of_int i) in
    List.iter
      (fun (label, faults) ->
        match F.Net_target.check_deterministic ~faults ~seed () with
        | Ok () -> ()
        | Error detail ->
          incr failures;
          Format.printf "seed 0x%Lx (%s): FAIL %s@." seed label detail)
      [ ("no faults", F.Net_target.no_faults); ("faulty", F.Net_target.default_faults) ]
  done;
  Format.printf "net target: %d seed%s, %d failure%s@." seeds
    (if seeds = 1 then "" else "s")
    !failures
    (if !failures = 1 then "" else "s");
  if !failures > 0 then exit 1

let run_dist ~seeds ~seed_base =
  let failures = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed_base (Int64.of_int i) in
    match F.Dist_target.check ~seed () with
    | Ok _ -> ()
    | Error detail ->
      incr failures;
      Format.printf "seed 0x%Lx: FAIL %s@." seed detail
  done;
  Format.printf "dist target: %d seed%s, %d failure%s@." seeds
    (if seeds = 1 then "" else "s")
    !failures
    (if !failures = 1 then "" else "s");
  if !failures > 0 then exit 1

let lane_file name =
  String.map (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' as c -> c | _ -> '_') name

let write_flight dir ~seed flight =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.map
    (fun (lane, lines) ->
      let path =
        Filename.concat dir (Printf.sprintf "seed-0x%Lx-%s.flight.jsonl" seed (lane_file lane))
      in
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      path)
    flight

let run_shard ~seeds ~seed_base ~flight_dir =
  let failures = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed_base (Int64.of_int i) in
    match F.Shard_target.fuzz_one ~seed () with
    | F.Shard_target.Passed _ -> ()
    | F.Shard_target.Failed { detail; scenario; shrunk; shrink_steps; flight; flight_deterministic }
      ->
      incr failures;
      Format.printf "seed 0x%Lx: FAIL %s@.  scenario: %s@.  shrunk (%d step%s): %s@." seed detail
        (F.Shard_target.scenario_to_string scenario)
        shrink_steps
        (if shrink_steps = 1 then "" else "s")
        (F.Shard_target.scenario_to_string shrunk);
      let nev = List.fold_left (fun a (_, ls) -> a + List.length ls) 0 flight in
      Format.printf "  flight: %d event%s across %d lane%s%s@." nev
        (if nev = 1 then "" else "s")
        (List.length flight)
        (if List.length flight = 1 then "" else "s")
        (if flight_deterministic then "" else " [WARNING: dump did not replay identically]");
      (match flight_dir with
      | Some dir ->
        List.iter (fun p -> Format.printf "  flight dump: %s@." p) (write_flight dir ~seed flight)
      | None ->
        (* No dump dir: show each lane's tail inline — the last few ring
           events are the post-mortem a triager reads first. *)
        List.iter
          (fun (lane, lines) ->
            let n = List.length lines in
            let tail = if n > 5 then Printf.sprintf " (last 5 of %d)" n else "" in
            Format.printf "  [%s]%s@." lane tail;
            List.iteri (fun i l -> if i >= n - 5 then Format.printf "    %s@." l) lines)
          flight)
  done;
  (* With a dump dir, always leave an artifact: the final run's rings even
     on a clean pass, so CI uploads a post-mortem sample unconditionally. *)
  (match flight_dir with
  | Some dir when !failures = 0 -> Sm_obs.Flight_recorder.write_dir dir
  | _ -> ());
  Format.printf "shard target: %d seed%s, %d failure%s@." seeds
    (if seeds = 1 then "" else "s")
    !failures
    (if !failures = 1 then "" else "s");
  if !failures > 0 then exit 1

let run target seeds seed_base depth faults mutate runs lint report_dir flight_dir =
  let profile = parse_profile faults in
  let mutate = parse_mutate mutate in
  match target with
  | "spawn" -> run_spawn ~seeds ~seed_base ~depth ~profile ~mutate ~runs ~lint ~report_dir
  | "net" -> run_net ~seeds ~seed_base
  | "dist" -> run_dist ~seeds ~seed_base
  | "shard" -> run_shard ~seeds ~seed_base ~flight_dir
  | t -> die "unknown target %S (have: spawn, net, dist, shard)" t

(* --- replay ----------------------------------------------------------------- *)

let replay seed program_file depth faults mutate runs lint =
  let profile = parse_profile faults in
  let mutate = parse_mutate mutate in
  match (seed, program_file) with
  | None, None -> die "replay needs --seed or --program"
  | Some _, Some _ -> die "replay takes --seed or --program, not both"
  | Some seed, None ->
    Oracle.with_env (fun env ->
        match Fuzzer.fuzz_one ?mutate ~runs ~lint env ~seed ~depth ~profile () with
        | Fuzzer.Passed ->
          Format.printf "seed 0x%Lx: all oracles pass (depth %d, faults %s)@." seed depth
            (Program.profile_to_string profile)
        | Fuzzer.Failed r ->
          print_string (Fuzzer.report_to_string r);
          exit_for_failures ~mutate [ r ])
  | None, Some file ->
    let text =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error e -> die "cannot read %s: %s" file e
    in
    let program = try Program.of_string text with Invalid_argument e -> die "%s" e in
    Oracle.with_env (fun env ->
        match Oracle.check ?mutate ~runs env program with
        | Ok () -> Format.printf "%s: all oracles pass@." file
        | Error f ->
          Format.printf "%s: FAIL %a@." file Oracle.pp_failure f;
          if Option.is_some mutate && f.Oracle.oracle = "differential" then exit 3 else exit 1)

(* --- corpus ----------------------------------------------------------------- *)

let corpus list_only run_entries =
  let entries = F.Corpus.all in
  if list_only || not run_entries then
    List.iter
      (fun (e : F.Corpus.entry) ->
        Format.printf "%-24s seed 0x%Lx depth %d faults %s mutate %s expect %s@." e.name e.seed
          e.depth
          (Program.profile_to_string e.profile)
          (match e.mutate with None -> "none" | Some k -> Sm_check.Mutate.to_string k)
          (Option.value e.expect ~default:"pass"))
      entries
  else
    Oracle.with_env (fun env ->
        let failed = ref 0 in
        List.iter
          (fun (e : F.Corpus.entry) ->
            match F.Corpus.check env e with
            | Ok _ -> Format.printf "%-24s ok@." e.name
            | Error msg ->
              incr failed;
              Format.printf "%-24s MISMATCH %s@." e.name msg)
          entries;
        Format.printf "%d corpus entr%s, %d mismatch%s@." (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          !failed
          (if !failed = 1 then "" else "es");
        if !failed > 0 then exit 1)

(* --- cmdliner ---------------------------------------------------------------- *)

open Cmdliner

let seed_conv =
  let parse s =
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "not a seed: %S (decimal or 0x hex)" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "0x%Lx" v)

let depth_arg =
  Arg.(
    value & opt int 3
    & info [ "depth" ] ~docv:"D" ~doc:"Generator depth: scripts per program and steps per script scale with it.")

let faults_arg =
  Arg.(
    value & opt string "det"
    & info [ "faults" ] ~docv:"LIST"
        ~doc:"Fault vocabulary for generated programs: comma list of validate, abort, sync, \
              clone, any — or the presets det (default: validate,abort,sync) and full.")

let mutate_arg =
  Arg.(
    value & opt (some string) None
    & info [ "mutate" ] ~docv:"KIND"
        ~doc:"Seed a transform bug (tie-bias, identity, drop-last, reverse) into every \
              mergeable type; the differential oracle must catch it, so expect exit 1.")

let runs_arg =
  Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc:"Repetitions for the determinism oracle.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Run the sm-lint static pre-pass on each failure's shrunk program and embed its \
              verdict in the report.")

let exits =
  [ Cmd.Exit.info 0 ~doc:"clean — no failures"
  ; Cmd.Exit.info 1 ~doc:"new failures found, or a corpus/replay mismatch"
  ; Cmd.Exit.info 2 ~doc:"usage error"
  ; Cmd.Exit.info 3
      ~doc:"only expected failures — every one is the differential oracle catching the --mutate \
            seeded bug"
  ]

let run_cmd =
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"How many consecutive seeds to fuzz.")
  in
  let seed_base_arg =
    Arg.(value & opt seed_conv 1L & info [ "seed-base" ] ~docv:"S" ~doc:"First seed.")
  in
  let target_arg =
    Arg.(
      value & opt string "spawn"
      & info [ "target" ] ~docv:"T"
          ~doc:"What to fuzz: spawn (generated spawn-tree programs), net (Netpipe fault plane), \
                shard (sharded document service: convergence under chaos), \
                dist (coordinator under message chaos).")
  in
  let report_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "report-dir" ] ~docv:"DIR" ~doc:"Write each failure report to DIR/seed-S.report.")
  in
  let flight_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:"Shard target: write flight-recorder post-mortems to \
                DIR/seed-S-LANE.flight.jsonl (on a clean pass, the final run's rings).")
  in
  Cmd.v
    (Cmd.info "run" ~exits ~doc:"Fuzz N seeds against every applicable oracle, shrinking failures.")
    Term.(
      const run $ target_arg $ seeds_arg $ seed_base_arg $ depth_arg $ faults_arg $ mutate_arg
      $ runs_arg $ lint_arg $ report_dir_arg $ flight_dir_arg)

let replay_cmd =
  let seed_arg =
    Arg.(
      value & opt (some seed_conv) None
      & info [ "seed" ] ~docv:"S" ~doc:"Reproduce this seed's run (same --depth/--faults/--mutate as the original).")
  in
  let program_arg =
    Arg.(
      value & opt (some string) None
      & info [ "program" ] ~docv:"FILE" ~doc:"Re-check a program artifact instead of a seed.")
  in
  Cmd.v
    (Cmd.info "replay" ~exits
       ~doc:"Reproduce a failure byte-for-byte from its seed, or re-check a shrunk program file.")
    Term.(
      const replay $ seed_arg $ program_arg $ depth_arg $ faults_arg $ mutate_arg $ runs_arg
      $ lint_arg)

let corpus_cmd =
  let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List corpus entries (default).") in
  let run_arg = Arg.(value & flag & info [ "run" ] ~doc:"Re-check every entry's pinned outcome.") in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List or re-check the pinned seed corpus.")
    Term.(const corpus $ list_arg $ run_arg)

let () =
  let info =
    Cmd.info "sm-fuzz" ~version:"%%VERSION%%" ~exits
      ~doc:"Deterministic spawn-tree fuzzer with fault injection for Spawn/Merge."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; replay_cmd; corpus_cmd ]))
