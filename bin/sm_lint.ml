(* sm-lint — static determinism & cost analyzer for Spawn/Merge programs.

     sm-lint check prog.smp ...        # lint program artifacts
     sm-lint seed --seed 0x2a --depth 3 --faults full   # lint a generated program
     sm-lint corpus                    # lint every pinned fuzz-corpus program
     sm-lint matrix --type queue       # show a derived commutation matrix
     sm-lint agree --seeds 100         # static/dynamic agreement harness
     sm-lint cost --program prog.smp --run          # bound vs one metered run
     sm-lint cost --program prog.smp --trace t.jsonl  # bound vs a recorded trace

   Findings follow the severity contract of lib/lint: errors mean the
   program can be dynamically non-deterministic (each carries its DetSan
   twin tag), warnings mean deterministic-but-order-defined behavior that a
   registry known issue can pin, notes are advisory.  Exit codes: 0 clean,
   1 dirty findings / harness violation / bound exceeded, 2 usage,
   3 pinned-only (every gating finding expected by a known issue). *)

module F = Sm_fuzz
module L = Sm_lint
module Program = Sm_ir.Program

let die fmt = Format.kasprintf (fun msg -> prerr_endline ("sm-lint: " ^ msg); exit 2) fmt

let parse_profile s =
  match s with
  | "det" -> Program.det_profile
  | "full" -> Program.full_profile
  | s -> (
    match Program.profile_of_string s with
    | Some p -> p
    | None ->
      die "bad --faults %S (a comma list of validate,abort,sync,clone,any — or det, full, none)" s)

let load_program file =
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error e -> die "cannot read %s: %s" file e
  in
  try Program.of_string text with Invalid_argument e -> die "%s: %s" file e

(* Verdicts across several programs: the worst one wins (dirty > pinned-only
   > clean), matching how CI consumes a multi-file invocation. *)
let exit_of_verdicts vs =
  let rank = function L.Finding.Clean -> 0 | L.Finding.Pinned_only -> 1 | L.Finding.Dirty -> 2 in
  let worst = List.fold_left (fun a v -> if rank v > rank a then v else a) L.Finding.Clean vs in
  L.Finding.verdict_exit_code worst

let lint_programs named =
  let verdicts =
    List.map
      (fun (name, prog) ->
        let report = L.Lint.analyze prog in
        Format.printf "== %s ==@.%a@." name L.Lint.pp_report report;
        L.Lint.verdict report)
      named
  in
  exit (exit_of_verdicts verdicts)

(* --- check / seed / corpus --------------------------------------------------- *)

let check files =
  if files = [] then die "check needs at least one program file";
  lint_programs (List.map (fun f -> (f, load_program f)) files)

let seed seed depth faults =
  let profile = parse_profile faults in
  let prog = F.Fuzzer.program_of_seed ~seed ~depth ~profile in
  lint_programs [ (Printf.sprintf "seed-0x%Lx" seed, prog) ]

let corpus () =
  lint_programs
    (List.map
       (fun (e : F.Corpus.entry) ->
         (e.name, F.Fuzzer.program_of_seed ~seed:e.seed ~depth:e.depth ~profile:e.profile))
       F.Corpus.all)

(* --- matrix ------------------------------------------------------------------ *)

let matrix ty depth =
  let entries =
    match ty with
    | None -> Sm_check.Registry.all ()
    | Some t -> (
      match Sm_check.Registry.find t with
      | Some e -> [ e ]
      | None ->
        die "unknown type %S (have: %s)" t (String.concat ", " (Sm_check.Registry.names ())))
  in
  List.iter
    (fun e -> Format.printf "%a@." L.Matrix.pp (L.Matrix.of_entry ~depth e))
    entries

(* --- agree ------------------------------------------------------------------- *)

let agree use_corpus seeds seed_base depth faults =
  let profile = parse_profile faults in
  F.Oracle.with_env (fun env ->
      let progress ~name (o : F.Agree.outcome) =
        match o.violations with
        | [] -> ()
        | vs ->
          Format.printf "%s: AGREEMENT VIOLATION@." name;
          List.iter (fun v -> Format.printf "  %s@." v) vs
      in
      let outcomes =
        if use_corpus then F.Agree.corpus_outcomes ~progress env
        else F.Agree.run_seeds ~progress env ~seed_base ~seeds ~depth ~profile ()
      in
      let s = F.Agree.summarize outcomes in
      Format.printf
        "agreement: %d program%s (%d statically clean, %d with dynamic hazards), %d violation%s@."
        s.programs
        (if s.programs = 1 then "" else "s")
        s.static_clean s.hazardous (List.length s.failed)
        (if List.length s.failed = 1 then "" else "s");
      if s.failed <> [] then exit 1)

(* --- cost -------------------------------------------------------------------- *)

let cost program_file run trace_file compaction_off =
  let file = match program_file with Some f -> f | None -> die "cost needs --program FILE" in
  let prog = load_program file in
  let report = L.Lint.analyze ~compaction:(not compaction_off) prog in
  Format.printf "%a" L.Cost.pp report.L.Lint.cost;
  let bound = report.L.Lint.cost.L.Cost.total_calls in
  let compare_observed ~source observed =
    Format.printf "observed transform calls (%s): %d, static bound: %d@." source observed bound;
    if observed > bound then begin
      Format.printf "BOUND EXCEEDED: the static model must dominate every run@.";
      exit 1
    end
  in
  (match (run, trace_file) with
  | true, Some _ -> die "cost takes --run or --trace, not both"
  | false, None -> ()
  | true, None ->
    F.Oracle.with_env (fun env ->
        let o = F.Agree.check_program env ~name:file prog in
        compare_observed ~source:"metered coop run" o.F.Agree.observed_calls)
  | false, Some t ->
    if not (Sys.file_exists t) then die "no such trace: %s" t;
    let model =
      match Sm_obs.Trace_model.of_file t with
      | model -> model
      | exception Sm_obs.Trace_jsonl.Decode_error msg -> die "%s: %s" t msg
    in
    let rows = Sm_obs.Attribution.of_model model in
    compare_observed ~source:"trace attribution" (Sm_obs.Attribution.transforms_observed rows))

(* --- cmdliner ---------------------------------------------------------------- *)

open Cmdliner

let exits =
  [ Cmd.Exit.info 0 ~doc:"clean — no gating findings (or all contracts held)"
  ; Cmd.Exit.info 1 ~doc:"dirty — unpinned errors/warnings, agreement violation, or bound exceeded"
  ; Cmd.Exit.info 2 ~doc:"usage error"
  ; Cmd.Exit.info 3 ~doc:"pinned-only — every gating finding is expected by a registry known issue"
  ]

let seed_conv =
  let parse s =
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "not a seed: %S (decimal or 0x hex)" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "0x%Lx" v)

let depth_arg =
  Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc:"Generator depth for seed-derived programs.")

let faults_arg =
  Arg.(
    value & opt string "det"
    & info [ "faults" ] ~docv:"LIST"
        ~doc:"Fault vocabulary for seed-derived programs: comma list of validate, abort, sync, \
              clone, any — or the presets det (default) and full.")

let check_cmd =
  let files = Arg.(value & pos_all string [] & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "check" ~exits ~doc:"Lint program artifacts (Program.to_string files).")
    Term.(const check $ files)

let seed_cmd =
  let seed_arg = Arg.(value & opt seed_conv 1L & info [ "seed" ] ~docv:"S" ~doc:"Program seed.") in
  Cmd.v
    (Cmd.info "seed" ~exits ~doc:"Lint the program a fuzzer seed denotes.")
    Term.(const seed $ seed_arg $ depth_arg $ faults_arg)

let corpus_cmd =
  Cmd.v
    (Cmd.info "corpus" ~exits ~doc:"Lint every pinned fuzz-corpus program.")
    Term.(const corpus $ const ())

let matrix_cmd =
  let ty_arg =
    Arg.(
      value & opt (some string) None
      & info [ "type" ] ~docv:"T" ~doc:"One registered op module (default: all).")
  in
  let mdepth_arg =
    Arg.(value & opt int 1 & info [ "depth" ] ~docv:"N" ~doc:"Enumeration budget for the derivation.")
  in
  Cmd.v
    (Cmd.info "matrix" ~exits
       ~doc:"Show the commutation matrices derived from the registered op modules.")
    Term.(const matrix $ ty_arg $ mdepth_arg)

let agree_cmd =
  let corpus_arg =
    Arg.(value & flag & info [ "corpus" ] ~doc:"Check the pinned corpus programs instead of generated seeds.")
  in
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"How many consecutive seeds to check.")
  in
  let seed_base_arg =
    Arg.(value & opt seed_conv 1L & info [ "seed-base" ] ~docv:"S" ~doc:"First seed.")
  in
  Cmd.v
    (Cmd.info "agree" ~exits
       ~doc:"Static/dynamic agreement harness: statically-clean programs must run DetSan-clean, \
             every dynamic hazard must have a static twin finding, and observed transform calls \
             must stay under the static bound.")
    Term.(const agree $ corpus_arg $ seeds_arg $ seed_base_arg $ depth_arg $ faults_arg)

let cost_cmd =
  let program_arg =
    Arg.(value & opt (some string) None & info [ "program" ] ~docv:"FILE" ~doc:"Program artifact to cost.")
  in
  let run_arg =
    Arg.(value & flag & info [ "run" ] ~doc:"Also execute one metered cooperative run and check the bound.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Check the bound against a recorded trace's attribution (sm-trace attribute).")
  in
  let nocompact_arg =
    Arg.(value & flag & info [ "no-compaction" ] ~doc:"Model a compaction-off run (no journal ceilings).")
  in
  Cmd.v
    (Cmd.info "cost" ~exits
       ~doc:"Static transform-call and journal-byte upper bounds, optionally diffed against an \
             observed run or trace.")
    Term.(const cost $ program_arg $ run_arg $ trace_arg $ nocompact_arg)

let () =
  let info =
    Cmd.info "sm-lint" ~version:"%%VERSION%%" ~exits
      ~doc:"Static determinism and cost analyzer for Spawn/Merge programs."
  in
  exit (Cmd.eval (Cmd.group info [ check_cmd; seed_cmd; corpus_cmd; matrix_cmd; agree_cmd; cost_cmd ]))
