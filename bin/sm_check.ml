(* sm-check — static/dynamic analysis gate for the OT substrate.

     sm-check ot --all                      # verify the whole transform matrix
     sm-check ot --type mtext --depth 2     # one module, bigger budget
     sm-check ot --type mlist --mutate tie-bias   # prove the checker catches bugs
     sm-check detsan                        # determinism-hazard smoke on built-in scenarios
     sm-check detsan --scenario nondet --expect-hazards
     sm-check list                          # what can be checked

   Exit codes distinguish new failures from expected ones:

     0  clean — every gate passed with nothing surfaced
     1  NEW failure — an unexpected violation or hazard (with --mutate, a
        mutation the checker FAILED to catch; with --expect-hazards, the
        absence of any hazard)
     2  usage
     3  expected failure surfaced — a registry known-issue counterexample
        (XFAIL), a caught --mutate bug, or --expect-hazards seeing hazards

   CI distinguishes them with `cmd; test $? = 3` — a 3 is green for jobs
   that exercise known issues or seeded bugs, a 1 never is. *)

module Check = Sm_check
module Rt = Sm_core.Runtime

let die fmt = Format.kasprintf (fun msg -> prerr_endline ("sm-check: " ^ msg); exit 2) fmt

(* --- ot ------------------------------------------------------------------- *)

let run_entry ~depth ~mutation entry =
  let t0 = Unix.gettimeofday () in
  let report = Check.Registry.run ?mutation ~depth entry in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%a  (%.2fs)@." Check.Report.pp report dt;
  report

let ot all types depth mutation =
  let mutation =
    match mutation with
    | None -> None
    | Some m -> (
      match Check.Mutate.of_string m with
      | Some k -> Some k
      | None ->
        die "unknown mutation %S (have: %s)" m
          (String.concat ", " (List.map Check.Mutate.to_string Check.Mutate.all)))
  in
  let entries =
    if all then Check.Registry.all ()
    else if types = [] then
      die "nothing to check: pass --all or --type NAME (have: %s)"
        (String.concat ", " (Check.Registry.names ()))
    else
      List.map
        (fun t ->
          match Check.Registry.find t with
          | Some e -> e
          | None -> die "unknown type %S (have: %s)" t (String.concat ", " (Check.Registry.names ())))
        types
  in
  let reports = List.map (run_entry ~depth ~mutation) entries in
  let failed = List.filter (fun r -> not (Check.Report.passed r)) reports in
  let cases = List.fold_left (fun acc (r : Check.Report.t) -> acc + Check.Report.total r.counts) 0 reports in
  Format.printf "@.%d module%s, %d cases, %d violation%s%s@."
    (List.length reports)
    (if List.length reports = 1 then "" else "s")
    cases (List.length failed)
    (if List.length failed = 1 then "" else "s")
    (match mutation with
    | None -> ""
    | Some m -> Printf.sprintf " (transform mutated: %s)" (Check.Mutate.to_string m));
  match mutation with
  | Some _ ->
    (* Inverted gate: catching the seeded bug is the point.  Every module
       must fail; a module that still passes means the checker missed it. *)
    let uncaught = List.filter Check.Report.passed reports in
    if uncaught <> [] then begin
      List.iter
        (fun (r : Check.Report.t) -> Format.printf "mutation NOT caught by %s@." r.Check.Report.name)
        uncaught;
      exit 1
    end;
    exit 3
  | None ->
    if failed <> [] then exit 1;
    let xfailed =
      List.exists
        (fun (r : Check.Report.t) ->
          match r.Check.Report.verdict with Check.Report.Fail _ -> true | Check.Report.Pass -> false)
        reports
    in
    if xfailed then exit 3

(* --- detsan ---------------------------------------------------------------- *)

(* Built-in scenarios: one clean program and one per hazard class.  They use
   module-level keys (the clean pattern) except where the hazard *is* the
   key minting. *)
let counter_key = Sm_mergeable.Mcounter.key ~name:"detsan.counter"

let clean_program ctx =
  let ws = Rt.workspace ctx in
  Sm_mergeable.Workspace.init ws counter_key 0;
  let h1 = Rt.spawn ctx (fun c -> Sm_mergeable.Mcounter.incr (Rt.workspace c) counter_key) in
  let h2 = Rt.spawn ctx (fun c -> Sm_mergeable.Mcounter.add (Rt.workspace c) counter_key 2) in
  Rt.merge_all_from_set ctx [ h1; h2 ]

let nondet_program ctx =
  let ws = Rt.workspace ctx in
  Sm_mergeable.Workspace.init ws counter_key 0;
  let _h1 = Rt.spawn ctx (fun c -> Sm_mergeable.Mcounter.incr (Rt.workspace c) counter_key) in
  let _h2 = Rt.spawn ctx (fun c -> Sm_mergeable.Mcounter.incr (Rt.workspace c) counter_key) in
  ignore (Rt.merge_any ctx);
  Rt.merge_all ctx

let key_in_task_program ctx =
  let ws = Rt.workspace ctx in
  (* the pitfall detcheck.mli documents: a key minted per run *)
  let fresh = Sm_mergeable.Mcounter.key ~name:"detsan.fresh" in
  Sm_mergeable.Workspace.init ws fresh 41;
  Sm_mergeable.Mcounter.incr ws fresh

let unmerged_program ctx =
  let ws = Rt.workspace ctx in
  Sm_mergeable.Workspace.init ws counter_key 0;
  ignore (Rt.spawn ctx (fun c -> Sm_mergeable.Mcounter.incr (Rt.workspace c) counter_key))
(* no merge: the implicit MergeAll picks it up *)

let post_digest_program ctx =
  let ws = Rt.workspace ctx in
  Sm_mergeable.Workspace.init ws counter_key 0;
  let _premature = Sm_mergeable.Workspace.digest ws in
  Sm_mergeable.Mcounter.incr ws counter_key

let scenarios =
  [ ("clean", "deterministic spawn/merge_all program — expect no hazards", clean_program)
  ; ("nondet", "merge_any on a digested path", nondet_program)
  ; ("key-in-task", "workspace key minted inside the run", key_in_task_program)
  ; ("unmerged", "children left to the implicit MergeAll", unmerged_program)
  ; ("post-digest", "operation recorded after digesting", post_digest_program)
  ]

let detsan scenario expect_hazards list_scenarios =
  if list_scenarios then
    List.iter (fun (n, doc, _) -> Format.printf "%-12s %s@." n doc) scenarios
  else begin
    let name, _, program =
      match List.find_opt (fun (n, _, _) -> String.equal n scenario) scenarios with
      | Some s -> s
      | None ->
        die "unknown scenario %S (have: %s)" scenario
          (String.concat ", " (List.map (fun (n, _, _) -> n) scenarios))
    in
    let hazards, digest = Check.Detsan.run program in
    Format.printf "scenario %s: digest %s, %d hazard%s@." name digest (List.length hazards)
      (if List.length hazards = 1 then "" else "s");
    List.iter (fun h -> Format.printf "  [%s] %a@." (Check.Detsan.hazard_tag h) Check.Detsan.pp_hazard h) hazards;
    match (expect_hazards, hazards) with
    | false, [] -> ()
    | false, _ :: _ -> exit 1
    | true, [] ->
      Format.printf "expected hazards but the sanitizer reported none@.";
      exit 1
    | true, _ :: _ -> exit 3 (* the expected failure surfaced *)
  end

(* --- list ------------------------------------------------------------------ *)

let list_types () =
  List.iter (fun n -> print_endline n) (Check.Registry.names ());
  Format.printf "@.mutations: %s@."
    (String.concat ", " (List.map Check.Mutate.to_string Check.Mutate.all));
  Format.printf "properties:@.";
  List.iter
    (fun p ->
      Format.printf "  %-18s %s@." (Check.Report.property_name p) (Check.Report.property_doc p))
    [ Check.Report.Tp1
    ; Check.Report.Cross
    ; Check.Report.Merge_order
    ; Check.Report.Merge_nested
    ; Check.Report.Compact
    ]

(* --- cmdliner -------------------------------------------------------------- *)

open Cmdliner

let exits =
  [ Cmd.Exit.info 0 ~doc:"clean — every gate passed"
  ; Cmd.Exit.info 1 ~doc:"new failure — unexpected violation/hazard, or a mutation not caught"
  ; Cmd.Exit.info 2 ~doc:"usage error"
  ; Cmd.Exit.info 3
      ~doc:"expected failure surfaced — known-issue XFAIL, caught --mutate bug, or \
            --expect-hazards hazards"
  ]

let depth_arg =
  Arg.(
    value & opt int 2
    & info [ "depth" ] ~docv:"N"
        ~doc:"Size budget: container sizes up to N+1 are enumerated. Depth 2 is the exhaustive \
              default; 1 is the CI-sized budget.")

let ot_cmd =
  let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Check every registered op module.") in
  let type_arg =
    Arg.(
      value & opt_all string []
      & info [ "type"; "t" ] ~docv:"NAME" ~doc:"Op module to check (repeatable); see sm-check list.")
  in
  let mutate_arg =
    Arg.(
      value & opt (some string) None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:"Run against a deliberately mutated transform: expect exit 1 with a minimized \
                counterexample (known-issue exemptions do not apply).")
  in
  Cmd.v
    (Cmd.info "ot" ~exits
       ~doc:"Verify TP1, cross-convergence, merge serialization and totality for op modules, \
             with minimized counterexamples.")
    Term.(const ot $ all_arg $ type_arg $ depth_arg $ mutate_arg)

let detsan_cmd =
  let scenario_arg =
    Arg.(
      value & opt string "clean"
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Built-in program to sanitize; see --list.")
  in
  let expect_arg =
    Arg.(
      value & flag
      & info [ "expect-hazards" ] ~doc:"Invert the gate: exit 0 iff hazards are reported.")
  in
  let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List built-in scenarios.") in
  Cmd.v
    (Cmd.info "detsan" ~exits
       ~doc:"Run a program under the determinism sanitizer and report hazards with task \
             provenance.")
    Term.(const detsan $ scenario_arg $ expect_arg $ list_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List checkable types, mutations and properties.")
    Term.(const list_types $ const ())

let () =
  let info =
    Cmd.info "sm-check" ~version:"%%VERSION%%" ~exits
      ~doc:"OT correctness checker and determinism sanitizer for Spawn/Merge."
  in
  exit (Cmd.eval (Cmd.group info [ ot_cmd; detsan_cmd; list_cmd ]))
