(* sm-trace — query recorded JSONL traces (bench --trace-jsonl FILE,
   examples/tracing.exe) instead of eyeballing them.

     sm-trace summary trace.jsonl          # tasks, spans, blocked time
     sm-trace critical-path trace.jsonl    # what bound wall-clock, segment by segment
     sm-trace attribute trace.jsonl        # per-task ops/transform/latency breakdown
     sm-trace diff a.jsonl b.jsonl         # determinism check: first diverging event
     sm-trace expo trace.jsonl             # Prometheus exposition of trace totals

   Every reader streams through Trace_jsonl.fold (or a pairwise channel
   walk for diff), so traces larger than memory are fine. *)

module Obs = Sm_obs

let die fmt = Format.kasprintf (fun msg -> prerr_endline ("sm-trace: " ^ msg); exit 2) fmt

let load_model path =
  if not (Sys.file_exists path) then die "no such trace: %s" path;
  match Obs.Trace_model.of_file path with
  | model -> model
  | exception Obs.Trace_jsonl.Decode_error msg -> die "%s: %s" path msg

let summary path =
  let model = load_model path in
  Format.printf "trace: %s@.@." path;
  Obs.Trace_model.pp_summary Format.std_formatter model

let critical_path path root =
  let model = load_model path in
  match Obs.Critical_path.compute ?root model with
  | None -> die "%s: no started root task in the trace (Info-level events missing?)" path
  | Some cp ->
    Obs.Critical_path.pp Format.std_formatter cp;
    (* The tiling self-check the acceptance gate scripts look at. *)
    let cover = Obs.Critical_path.coverage_pct cp in
    Format.printf "@.path total %a vs root wall-clock %a (%.1f%%)@." Obs.Trace_model.pp_ms
      cp.Obs.Critical_path.total_ns Obs.Trace_model.pp_ms cp.Obs.Critical_path.wall_ns cover;
    if Float.abs (cover -. 100.0) > 10.0 then begin
      Format.printf "WARNING: path does not tile the root span (incomplete trace?)@.";
      exit 1
    end

let attribute path json =
  let model = load_model path in
  let rows = Obs.Attribution.of_model model in
  let docs = Obs.Attribution.docs_of_model model in
  if json then
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            [ ("tasks", Obs.Attribution.to_json rows)
            ; ("docs", Obs.Attribution.docs_to_json docs)
            ]))
  else begin
    Obs.Attribution.pp Format.std_formatter rows;
    if docs <> [] then begin
      Format.printf "@.hot documents:@.";
      Obs.Attribution.pp_docs Format.std_formatter docs
    end
  end

let diff path_a path_b =
  (match (Sys.file_exists path_a, Sys.file_exists path_b) with
  | true, true -> ()
  | false, _ -> die "no such trace: %s" path_a
  | _, false -> die "no such trace: %s" path_b);
  match Obs.Trace_diff.compare_files path_a path_b with
  | result ->
    Format.printf "%a@." Obs.Trace_diff.pp_result result;
    if not (Obs.Trace_diff.equal_result result) then begin
      (* CI pipelines routinely swallow stdout (tee to an artifact, > log);
         a determinism divergence must also land on stderr, next to the
         non-zero exit that fails the job. *)
      Format.eprintf "%a@." Obs.Trace_diff.pp_result result;
      exit 1
    end
  | exception Obs.Trace_jsonl.Decode_error msg -> die "%s" msg

let requests paths =
  List.iter (fun p -> if not (Sys.file_exists p) then die "no such trace: %s" p) paths;
  match Obs.Trace_stitch.of_files paths with
  | [] -> die "no trace contexts found in %s (trace at Info with contexts on?)" (String.concat ", " paths)
  | traces -> print_string (Obs.Trace_stitch.to_string traces)
  | exception Obs.Trace_jsonl.Decode_error msg -> die "%s" msg

let expo path =
  let model = load_model path in
  let rows = Obs.Attribution.of_model model in
  let totals = Obs.Attribution.totals rows in
  let merge_ns =
    List.concat_map
      (fun (t : Obs.Trace_model.task) ->
        List.map
          (fun (s : Obs.Trace_model.merge_span) ->
            float_of_int (max 0 (s.Obs.Trace_model.m_end - s.Obs.Trace_model.m_begin)))
          t.Obs.Trace_model.merges)
      (Obs.Trace_model.tasks model)
  in
  let sync_ns =
    List.concat_map
      (fun (t : Obs.Trace_model.task) ->
        List.map
          (fun (s : Obs.Trace_model.sync_span) ->
            float_of_int (max 0 (s.Obs.Trace_model.s_end - s.Obs.Trace_model.s_begin)))
          t.Obs.Trace_model.syncs)
      (Obs.Trace_model.tasks model)
  in
  let ops =
    List.concat_map
      (fun (t : Obs.Trace_model.task) ->
        List.map
          (fun (r : Obs.Trace_model.merge_record) -> float_of_int r.Obs.Trace_model.mc_ops)
          (Obs.Trace_model.merge_records t))
      (Obs.Trace_model.tasks model)
  in
  let counters =
    Obs.Attribution.metric_view rows
    @ [ ("trace.events", Obs.Trace_model.event_count model)
      ; ("trace.tasks", Obs.Trace_model.task_count model)
      ; ("trace.duration_ns", Obs.Trace_model.duration_ns model)
      ; ("trace.self_ns", totals.Obs.Attribution.self_ns)
      ]
  in
  let histograms =
    [ ("runtime.merge_ns", merge_ns)
    ; ("runtime.sync_wait_ns", sync_ns)
    ; ("trace.merge_child_ops", ops)
    ]
  in
  print_string (Obs.Expo.render ~counters ~histograms)

open Cmdliner

let trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file.")

let summary_cmd =
  Cmd.v
    (Cmd.info "summary" ~doc:"Task tree, spans and blocked time of a trace.")
    Term.(const summary $ trace_arg)

let root_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "root" ] ~docv:"ID"
        ~doc:"Task id to end the path at (default: the longest-running root).")

let critical_path_cmd =
  Cmd.v
    (Cmd.info "critical-path"
       ~doc:"Longest weighted path through the spawn/merge DAG: which tasks and merges bound \
             wall-clock.")
    Term.(const critical_path $ trace_arg $ root_arg)

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let attribute_cmd =
  Cmd.v
    (Cmd.info "attribute"
       ~doc:"Per-task cost breakdown: ops folded, OT transforms, merge/sync latency, outcomes.")
    Term.(const attribute $ trace_arg $ json_flag)

let diff_cmd =
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"LEFT" ~doc:"First trace.") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"RIGHT" ~doc:"Second trace.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Structural determinism diff; exits 1 naming the first diverging event.")
    Term.(const diff $ a $ b)

let expo_cmd =
  Cmd.v
    (Cmd.info "expo"
       ~doc:"Prometheus-style text exposition of the trace's metric totals and latency \
             distributions.")
    Term.(const expo $ trace_arg)

let requests_cmd =
  let lanes_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"LANES" ~doc:"Per-process/per-rank JSONL trace lanes to stitch.")
  in
  Cmd.v
    (Cmd.info "requests"
       ~doc:"Stitch per-rank/per-process trace lanes into causal request trees: every event \
             carrying a trace context, grouped by trace id across lanes, linked by span/parent \
             edges.")
    Term.(const requests $ lanes_arg)

let cmd =
  let doc = "analyze Spawn/Merge JSONL traces" in
  Cmd.group
    (Cmd.info "sm-trace" ~version:"1.0" ~doc)
    [ summary_cmd; critical_path_cmd; attribute_cmd; diff_cmd; expo_cmd; requests_cmd ]

let () = exit (Cmd.eval cmd)
