(* sm-shard — drive the sharded collaborative-document service.

     sm-shard demo --shards 2 --clients 8 --seed 1
     sm-shard demo --shards 4 --clients 100 --drop 0.05 --dup 0.05 --delay 0.1
     sm-shard demo --trace-dir lanes/ --flight-dir flight/   # leave lanes for sm-trace requests
     sm-shard stats --shards 4 --clients 100 --every 500     # sm-top over a seeded run
     sm-shard stats --expo metrics.prom                      # Prometheus textfile drop
     sm-shard route --shards 4 doc/readme doc/todo

   `demo` runs the seeded load generator to quiescence, twice, and checks
   both convergence (every client view digest equals its shard's digest)
   and reproducibility (the second run produces byte-identical digests).
   Exit 1 on either failure, so CI can use it as a smoke test. *)

module Load = Sm_shard.Load
module Router = Sm_shard.Router
module Shard_metrics = Sm_shard.Shard_metrics
module Service = Sm_shard.Service
module Obs = Sm_obs

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json (p : Load.profile) (r : Load.report) ~reproducible =
  let digests =
    String.concat ", " (List.map (fun d -> Printf.sprintf "\"%s\"" (json_escape d)) r.shard_digests)
  in
  Printf.printf
    "{\"shards\": %d, \"clients\": %d, \"ops_per_client\": %d, \"seed\": %Ld, \"mode\": \"%s\", \
     \"converged\": %b, \"reproducible\": %b, \"ticks\": %d, \"ops_applied\": %d, \
     \"edits_merged\": %d, \"epochs\": %d, \"delta_bytes\": %d, \"snapshot_bytes\": %d, \
     \"retransmits\": %d, \"resumes\": %d, \"shard_digests\": [%s]}\n"
    p.shards p.clients p.ops_per_client p.seed
    (match p.mode with `Delta -> "delta" | `Snapshot -> "snapshot")
    r.converged reproducible r.ticks r.ops_applied r.edits_merged r.epochs r.delta_bytes
    r.snapshot_bytes r.retransmits r.resumes digests

let print_human (p : Load.profile) (r : Load.report) ~reproducible =
  Format.printf "%d shards, %d clients x %d ops, %s sync, epoch every %d ticks, seed %Ld@."
    p.shards p.clients p.ops_per_client
    (match p.mode with `Delta -> "delta" | `Snapshot -> "snapshot")
    p.epoch_ticks p.seed;
  (match p.faults with
  | None -> ()
  | Some f ->
    Format.printf "faults: drop %.2f dup %.2f delay %.2f reorder %.2f@." f.drop f.dup f.delay
      f.reorder);
  if p.disconnect_prob > 0. then
    Format.printf "chaos: disconnect %.2f/tick, resume after %d ticks@." p.disconnect_prob
      p.resume_after;
  Format.printf "%s in %d ticks: %d ops placed, %d edit batches merged, %d epochs@."
    (if r.converged then "converged" else "DID NOT CONVERGE")
    r.ticks r.ops_applied r.edits_merged r.epochs;
  Format.printf "bytes shipped: delta %d, snapshot %d@." r.delta_bytes r.snapshot_bytes;
  if r.retransmits > 0 || r.resumes > 0 then
    Format.printf "recovered: %d retransmits, %d session resumes@." r.retransmits r.resumes;
  List.iter (fun (who, why) -> Format.printf "FAILED %s: %s@." who why) r.failures;
  List.iteri (fun i d -> Format.printf "  shard%d %s@." i (Sm_util.Fnv.to_hex (Sm_util.Fnv.hash d)))
    r.shard_digests;
  Format.printf "reproducible (second run, same seed): %s@." (if reproducible then "yes" else "NO")

let make_profile ~shards ~clients ~ops ~seed ~mode ~epoch_ticks ~drop ~dup ~delay ~reorder
    ~disconnect =
  let faults =
    if drop > 0. || dup > 0. || delay > 0. || reorder > 0. then
      Some { Load.drop; dup; delay; reorder }
    else None
  in
  { Load.default with
    shards
  ; clients
  ; ops_per_client = ops
  ; seed
  ; mode = (if mode then `Snapshot else `Delta)
  ; epoch_ticks
  ; faults
  ; disconnect_prob = disconnect
  }

let demo shards clients ops seed mode epoch_ticks drop dup delay reorder disconnect json
    trace_dir flight_dir =
  let profile =
    make_profile ~shards ~clients ~ops ~seed ~mode ~epoch_ticks ~drop ~dup ~delay ~reorder
      ~disconnect
  in
  (* A trace dir turns on per-lane JSONL export at Debug (contexts mint at
     Info; Debug adds the Doc_merge profiling events), one file per lane —
     exactly the layout `sm-trace requests` stitches.  Traced only on the
     first run, so the reproducibility rerun measures the bare service. *)
  let demo_tid = 4_000_000 in
  let parent =
    match trace_dir with
    | None -> None
    | Some dir ->
      Obs.set_level Obs.Debug;
      Obs.set_sink (Obs.Trace_jsonl.dir_sink dir);
      let root = Obs.Trace_ctx.root (Printf.sprintf "demo/seed%Ld" seed) in
      (* The root span must itself appear in a lane, or every request
         stitches as an orphan of an id no file contains. *)
      Obs.emit
        (Obs.Event.make ~task:"demo" ~task_id:demo_tid
           ~args:(("op", Obs.Event.S "demo") :: Obs.Trace_ctx.args root)
           Obs.Event.Req_begin);
      Some root
  in
  match Load.run ?parent profile with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2
  | r ->
    (match parent with
    | None -> ()
    | Some root ->
      Obs.emit
        (Obs.Event.make ~task:"demo" ~task_id:demo_tid
           ~args:(("status", Obs.Event.S "done") :: Obs.Trace_ctx.args root)
           Obs.Event.Req_end);
      Obs.flush ();
      Obs.reset_sink ();
      Obs.set_level Obs.Off);
    (match flight_dir with
    | None -> ()
    | Some dir -> Obs.Flight_recorder.write_dir dir);
    let r' = Load.run profile in
    let reproducible = r'.Load.shard_digests = r.Load.shard_digests && r'.Load.ticks = r.Load.ticks in
    if json then print_json profile r ~reproducible else print_human profile r ~reproducible;
    if r.Load.converged && reproducible then exit 0 else exit 1

let stats shards clients ops seed mode epoch_ticks drop dup delay reorder disconnect every limit
    expo_file =
  let profile =
    make_profile ~shards ~clients ~ops ~seed ~mode ~epoch_ticks ~drop ~dup ~delay ~reorder
      ~disconnect
  in
  Obs.Metrics.set_enabled true;
  let last_svc = ref None in
  let on_tick tick svc =
    last_svc := Some svc;
    if every > 0 && tick > 0 && tick mod every = 0 then begin
      Format.printf "--- tick %d ---@." tick;
      print_string (Service.stats_report ~limit svc)
    end
  in
  match Load.run ~on_tick profile with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2
  | r ->
    (match !last_svc with
    | None -> prerr_endline "sm-shard stats: the run made no ticks"
    | Some svc ->
      Format.printf "--- final (%d ticks, %s) ---@." r.Load.ticks
        (if r.Load.converged then "converged" else "DID NOT CONVERGE");
      print_string (Service.stats_report ~limit svc);
      match expo_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Service.expo_text svc);
        close_out oc;
        Format.printf "wrote %s@." path);
    if r.Load.converged then exit 0 else exit 1

let route shards names =
  let names =
    if names <> [] then names
    else List.map Sm_shard.Service.spec_name Load.default.Load.specs
  in
  List.iter
    (fun name -> Format.printf "%-30s -> shard%d@." name (Router.shard_of ~shards name))
    names

open Cmdliner

let shards = Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Coordinator shards.")
let clients = Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Simulated editors.")

let ops =
  Arg.(value & opt int 20 & info [ "ops" ] ~docv:"N" ~doc:"Operations each editor places.")

let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"S" ~doc:"Workload RNG seed.")

let snapshot_mode =
  Arg.(
    value & flag
    & info [ "snapshot" ] ~doc:"Ship full snapshots instead of delta journals (the baseline).")

let epoch_ticks =
  Arg.(value & opt int 4 & info [ "epoch-ticks" ] ~docv:"N" ~doc:"Ticks between epoch flushes.")

let fault name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)

let drop = fault "drop" "Netpipe per-send drop probability."
let dup = fault "dup" "Netpipe per-send duplication probability."
let delay = fault "delay" "Netpipe per-send delay probability."
let reorder = fault "reorder" "Netpipe per-send reorder probability."

let disconnect =
  fault "disconnect" "Per-tick probability an un-synced editor crashes (and later resumes)."

let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable one-line report.")

let trace_dir =
  Arg.(
    value & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:"Export the first run's events as per-lane JSONL files under DIR (one file per \
              client/shard lane) — feed them to $(b,sm-trace requests) to rebuild causal \
              request trees.")

let flight_dir =
  Arg.(
    value & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:"Dump every shard's flight-recorder ring to DIR/LANE.flight.jsonl after the \
              first run.")

let demo_cmd =
  let doc = "run a seeded editor fleet to quiescence and check convergence" in
  Cmd.v
    (Cmd.info "demo" ~doc)
    Term.(
      const demo $ shards $ clients $ ops $ seed $ snapshot_mode $ epoch_ticks $ drop $ dup
      $ delay $ reorder $ disconnect $ json $ trace_dir $ flight_dir)

let stats_cmd =
  let doc = "run a seeded fleet with live metrics on, reporting per-shard stats" in
  let every =
    Arg.(
      value & opt int 0
      & info [ "every" ] ~docv:"TICKS"
          ~doc:"Print the stats table every N simulation ticks (0: only the final report).")
  in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "hot-docs" ] ~docv:"N" ~doc:"Rows in the hot-documents conflict table.")
  in
  let expo_file =
    Arg.(
      value & opt (some string) None
      & info [ "expo" ] ~docv:"FILE"
          ~doc:"Also write the final Prometheus exposition (live registry + per-shard + \
                fault-plane counters) to FILE.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(
      const stats $ shards $ clients $ ops $ seed $ snapshot_mode $ epoch_ticks $ drop $ dup
      $ delay $ reorder $ disconnect $ every $ limit $ expo_file)

let route_cmd =
  let doc = "show which shard owns each document name" in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"NAME") in
  Cmd.v (Cmd.info "route" ~doc) Term.(const route $ shards $ names)

let cmd =
  let doc = "sharded collaborative-document service (deterministic OT sync)" in
  let man =
    [ `S Manpage.s_description
    ; `P
        "N coordinator shards each own the documents a deterministic hash router assigns \
         them; editors hold stop-and-wait sessions and sync via compacted delta journals \
         merged in epoch batches.  Runs are single-threaded discrete-event simulations: a \
         seed fully determines every digest, byte count and tick, even under the \
         $(b,--drop/--dup/--delay/--reorder) fault plane and $(b,--disconnect) crash chaos."
    ]
  in
  Cmd.group (Cmd.info "sm-shard" ~version:"1.0" ~doc ~man) [ demo_cmd; stats_cmd; route_cmd ]

let () = exit (Cmd.eval cmd)
