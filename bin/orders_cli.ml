(* ordersim — the enterprise order-processing workload from the command
   line.

     dune exec bin/orders_cli.exe -- --orders 500 --workers 8 --runs 3

   Repeat with --runs to watch the audit digest stay identical: the books
   balance the same way every time, whatever the thread scheduler does. *)

module O = Sm_sim.Orders

let main products stock orders workers batch seed runs =
  let cfg =
    { O.products; initial_stock = stock; orders; workers; batch; seed = Int64.of_int seed }
  in
  (match O.validate cfg with
  | () -> ()
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2);
  let executor = Sm_core.Executor.create () in
  Format.printf "%d orders, %d workers, %d products x %d units, batch %d, seed %d@." orders
    workers products stock batch seed;
  for i = 1 to runs do
    let r = O.run ~executor cfg in
    Format.printf "run %d: %a@." i O.pp_report r
  done;
  Sm_core.Executor.shutdown executor

open Cmdliner

let products = Arg.(value & opt int 8 & info [ "products" ] ~docv:"N" ~doc:"Distinct products.")
let stock = Arg.(value & opt int 50 & info [ "stock" ] ~docv:"N" ~doc:"Initial units per product.")
let orders = Arg.(value & opt int 200 & info [ "orders" ] ~docv:"N" ~doc:"Orders in the stream.")
let workers = Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Concurrent worker tasks.")

let batch =
  Arg.(value & opt int 5 & info [ "batch" ] ~docv:"N" ~doc:"Orders a worker handles between syncs.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Order-stream seed.")
let runs = Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Repeat the run N times.")

let cmd =
  let doc = "deterministic concurrent order processing (Spawn/Merge)" in
  Cmd.v
    (Cmd.info "ordersim" ~version:"1.0" ~doc)
    Term.(const main $ products $ stock $ orders $ workers $ batch $ seed $ runs)

let () = exit (Cmd.eval cmd)
