(* Server software — the paper's Listing 3.

   The root task owns the server state (a per-client request map and a
   served-requests counter).  A spawned [accept] task blocks on incoming
   connections and *clones* a sibling task per connection; each connection
   task syncs fresh data, handles requests, and merges its changes back
   after every request.  The root loops MergeAny — explicitly
   non-deterministic, because client arrival order is non-deterministic —
   yet the final state is the same every run, because each client's effects
   are deterministic and commute under OT.

   A validation condition on the merges rejects any connection that drops
   the served counter (a corrupted request), demonstrating the rollback
   path: the offending connection's Sync fails, it reports the error on its
   socket and aborts, and the server state is untouched.

     dune exec examples/server.exe
*)

module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Np = Sm_sim.Netpipe

module Str_elt = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp ppf s = Format.fprintf ppf "%s" s
end

module Int_elt = struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end

module Mmap = Sm_mergeable.Mmap.Make (Str_elt) (Int_elt)
module Mcounter = Sm_mergeable.Mcounter

let requests_by_client = Mmap.key ~name:"requests-by-client"
let served = Mcounter.key ~name:"served"

(* req.doWork(data): requests are "<client> hello" or "<client> corrupt". *)
let do_work ws request =
  match String.split_on_char ' ' request with
  | [ client; "hello" ] ->
    let n = Option.value ~default:0 (Mmap.find ws requests_by_client client) in
    Mmap.put ws requests_by_client client (n + 1);
    Mcounter.incr ws served
  | [ _; "corrupt" ] ->
    (* a buggy handler: damages the shared counter; validation catches it *)
    Mcounter.add ws served (-1000)
  | _ -> failwith ("malformed request: " ^ request)

(* func conn(socket, data) — Listing 3's per-connection task. *)
let conn socket ctx =
  Fun.protect ~finally:(fun () -> Np.close socket) @@ fun () ->
  match R.sync ctx with
  | Error _ -> ()
  | Ok () ->
    let rec loop () =
      match Np.recv socket with
      | None -> () (* connection closed by the client *)
      | Some request -> (
        do_work (R.workspace ctx) request;
        match R.sync ctx with
        | Ok () ->
          Np.send socket "ok";
          loop ()
        | Error _ ->
          Np.send socket "error: request rejected";
          failwith "merge refused")
    in
    loop ()

(* func accept(data) — clones one sibling per connection. *)
let accept listener ctx =
  let rec loop () =
    match Np.accept listener with
    | None -> () (* listener shut down: accept task completes *)
    | Some socket ->
      ignore (R.clone ctx (conn socket));
      loop ()
  in
  loop ()

(* A client: send [n] requests, read the replies, close. *)
let client listener ~name ~requests () =
  let c = Np.connect listener in
  List.iter
    (fun r ->
      Np.send c (name ^ " " ^ r);
      ignore (Np.recv c))
    requests;
  Np.close c

let () =
  let listener = Np.listen () in
  R.run (fun root ->
      let ws = R.workspace root in
      Ws.init ws requests_by_client Mmap.Op.Key_map.empty;
      Ws.init ws served 0;
      ignore (R.spawn root (accept listener));
      let clients =
        [ Thread.create (client listener ~name:"alice" ~requests:[ "hello"; "hello"; "hello" ]) ()
        ; Thread.create (client listener ~name:"bob" ~requests:[ "hello" ]) ()
        ; Thread.create (client listener ~name:"mallory" ~requests:[ "corrupt"; "hello" ]) ()
        ; Thread.create (client listener ~name:"carol" ~requests:[ "hello"; "hello" ]) ()
        ]
      in
      (* shut the listener once every client is done, so accept completes *)
      let closer =
        Thread.create
          (fun () ->
            List.iter Thread.join clients;
            Np.shutdown listener)
          ()
      in
      (* for { MergeAny() } — with a post-condition guarding the counter *)
      let validate ws = Mcounter.get ws served >= 0 in
      let rec serve () = match R.merge_any ~validate root with Some _ -> serve () | None -> () in
      serve ();
      Thread.join closer;
      Format.printf "served %d requests@." (Mcounter.get ws served);
      List.iter
        (fun (client, n) -> Format.printf "  %-8s %d@." client n)
        (Mmap.bindings ws requests_by_client));
  print_endline "note: mallory's corrupt request was rolled back by validation"
