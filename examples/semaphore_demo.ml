(* Semaphores from Spawn and Merge — the paper's Section IV.A construction.

   Three producers and two consumers share a bounded buffer guarded by two
   counting semaphores (free slots, filled slots) plus a binary mutex — the
   textbook arrangement, except no OS synchronization primitive is used:
   the semaphores are mergeable lists managed by the Spawn/Merge protocol.

   The second half deliberately deadlocks two workers (opposite acquisition
   order) and shows the property Section IV.B derives: the Spawn/Merge
   simulation of a deadlocked semaphore system cannot deadlock — the
   manager observes that every worker left the merge set and reports the
   blocked state instead of hanging.

     dune exec examples/semaphore_demo.exe
*)

module S = Sm_core.Semaphore

(* semaphore indices *)
let free = 0 (* counting: empty buffer slots *)
let filled = 1 (* counting: occupied buffer slots *)
let mutex = 2 (* binary: protects the buffer *)

let () =
  let capacity = 3 in
  let per_producer = 4 in
  (* The buffer itself is outside the framework on purpose: the semaphores
     must provide all the mutual exclusion, exactly like the paper's
     equivalence argument assumes. *)
  let buffer = Queue.create () in
  let consumed = Atomic.make 0 in
  let produced_total = 3 * per_producer in
  let producer id (ops : S.ops) =
    for i = 1 to per_producer do
      ops.acquire free;
      ops.acquire mutex;
      Queue.push (Printf.sprintf "item %d from producer %d" i id) buffer;
      ops.release mutex;
      ops.release filled
    done
  in
  let consumer budget (ops : S.ops) =
    for _ = 1 to budget do
      ops.acquire filled;
      ops.acquire mutex;
      ignore (Queue.pop buffer);
      ignore (Atomic.fetch_and_add consumed 1);
      ops.release mutex;
      ops.release free
    done
  in
  Format.printf "bounded buffer (capacity %d) with Spawn/Merge semaphores...@." capacity;
  let outcome =
    S.run_system
      ~values:[| capacity; 0; 1 |]
      [ producer 1; producer 2; producer 3; consumer 6; consumer 6 ]
  in
  (match outcome with
  | S.Completed ->
    Format.printf "completed: %d items produced, %d consumed, buffer leftover %d@."
      produced_total (Atomic.get consumed) (Queue.length buffer)
  | S.All_blocked -> print_endline "unexpected: blocked");

  print_endline "";
  print_endline "now the classic deadlock: two workers acquire two locks in opposite order";
  let w1 (ops : S.ops) =
    ops.acquire 0;
    Thread.delay 0.01;
    ops.acquire 1;
    ops.release 1;
    ops.release 0
  in
  let w2 (ops : S.ops) =
    ops.acquire 1;
    Thread.delay 0.01;
    ops.acquire 0;
    ops.release 0;
    ops.release 1
  in
  (match S.run_system ~values:[| 1; 1 |] [ w1; w2 ] with
  | S.Completed -> print_endline "lucky schedule: both finished"
  | S.All_blocked ->
    print_endline "blocked state detected and reported -- no deadlock, no hang:";
    print_endline "the manager's MergeAnyFromSet saw an empty set and returned immediately")
