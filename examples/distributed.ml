(* Distributed Spawn/Merge — the paper's Section VI future work ("apply the
   concept of Spawn and Merge to distributed computing by using MPI"),
   realized over simulated ranks: every node is a domain reachable only
   through byte channels; task names, arguments, states and operation
   journals are the only things on the wire.

   The job: a distributed word count.  The coordinator shards a corpus,
   spawns one "count" task per shard (round-robin over ranks), and merges
   everything into a custom mergeable type — a counting map whose Bump
   operations commute, so concurrent counts of the same word always sum
   correctly.  Merge order is creation order, so the final map and its
   digest are identical no matter how many nodes run the job or how
   message timing interleaves.

     dune exec examples/distributed.exe
*)

module D = Sm_dist.Coordinator
module Reg = Sm_dist.Registry
module Ws = Sm_mergeable.Workspace
module C = Sm_util.Codec

(* A custom codable mergeable type: word -> count with commutative bumps.
   This is the paper's "interface to implement new mergeable data
   structures", wire-ready. *)
module Count_map = struct
  module M = Map.Make (String)

  type state = int M.t

  type op = Bump of string * int

  let type_name = "count-map"
  let apply s (Bump (w, n)) = M.update w (fun v -> Some (Option.value ~default:0 v + n)) s
  let transform a ~against:_ ~tie:_ = [ a ]

  (* bumps always commute (identity transform both ways); compaction is
     left at the sound identity to keep the extension example minimal *)
  let compact ops = ops
  let commutes _ _ = true

  let equal_state = M.equal Int.equal
  let copy_state s = M.fold M.add s M.empty
  let state_size s = Sm_ot.Op_sig.word_bytes * (1 + (6 * M.cardinal s))

  let pp_state ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (w, n) -> Format.fprintf ppf "%s:%d" w n))
      (M.bindings s)

  let pp_op ppf (Bump (w, n)) = Format.fprintf ppf "bump(%s, %d)" w n

  let state_codec =
    C.map M.bindings
      (fun bindings -> List.fold_left (fun m (w, n) -> M.add w n m) M.empty bindings)
      (C.list (C.pair C.string C.int))

  let op_codec = C.map (fun (Bump (w, n)) -> (w, n)) (fun (w, n) -> Bump (w, n)) (C.pair C.string C.int)
  let journal_codec = C.list op_codec
end

let registry = Reg.create ()

module Counter = Sm_dist.Codable.Counter

let k_counts = Reg.value registry ~name:"word-counts" (module Count_map)
let k_shards_done = Reg.value registry ~name:"shards-done" (module Counter)

(* The remote task: bump each word of its shard, syncing halfway so partial
   results stream back to the coordinator mid-task. *)
let t_count =
  Reg.task registry ~name:"count" (fun ctx ->
      let words =
        String.split_on_char ' ' (Reg.argument ctx)
        |> List.filter (fun w -> String.length w > 0)
      in
      let half = List.length words / 2 in
      List.iteri
        (fun i w ->
          if i = half then (match Reg.sync ctx with `Granted | `Refused -> ());
          Reg.update ctx k_counts (Count_map.Bump (w, 1)))
        words;
      Reg.update ctx k_shards_done (Sm_ot.Op_counter.add 1))

let corpus =
  [ "the quick brown fox jumps over the lazy dog"
  ; "the dog barks and the fox runs"
  ; "merge the results the same way every time"
  ; "no locks no races no surprises"
  ]

let run_job ~nodes =
  let cluster = D.cluster ~nodes registry in
  Fun.protect ~finally:(fun () -> D.shutdown cluster) @@ fun () ->
  D.run cluster (fun ctx ->
      let ws = D.workspace ctx in
      Ws.init ws (Reg.workspace_key k_counts) Count_map.M.empty;
      Ws.init ws (Reg.workspace_key k_shards_done) 0;
      List.iter (fun shard -> ignore (D.spawn ctx t_count ~argument:shard)) corpus;
      let rec drain () = if D.live_tasks ctx > 0 then (D.merge_all ctx; drain ()) in
      drain ();
      assert (Ws.read ws (Reg.workspace_key k_shards_done) = List.length corpus);
      (Ws.read ws (Reg.workspace_key k_counts), Ws.digest ws))

let () =
  print_endline "distributed word count over simulated MPI ranks";
  let results = List.map (fun nodes -> (nodes, run_job ~nodes)) [ 1; 2; 4 ] in
  (match results with
  | (_, (counts, _)) :: _ ->
    let top =
      Count_map.M.bindings counts
      |> List.sort (fun (wa, a) (wb, b) -> compare (b, wa) (a, wb))
      |> fun l -> List.filteri (fun i _ -> i < 5) l
    in
    print_endline "top words:";
    List.iter (fun (w, n) -> Format.printf "  %-10s %d@." w n) top
  | [] -> ());
  print_endline "";
  List.iter
    (fun (nodes, (_, digest)) -> Format.printf "%d node(s): workspace digest %s@." nodes digest)
    results;
  match results with
  | (_, (_, d)) :: rest when List.for_all (fun (_, (_, d')) -> d' = d) rest ->
    print_endline "identical on every cluster size: placement and timing do not matter"
  | _ -> print_endline "UNEXPECTED: digests differ"
