(* Enterprise order processing — the paper's intro motivation ("scalable web
   application, distributed enterprise software") as a runnable scenario.

   Worker tasks process an order stream against shared inventory, revenue
   and an audit log.  Write conflicts on stock are avoided by ownership
   (each product belongs to one worker — the same idiom as Listing 4's
   per-host queues); the counters and the audit log genuinely merge from
   all workers.  Every run yields the same books: same revenue, same
   rejections, same audit log in the same order.

     dune exec examples/enterprise.exe
*)

module O = Sm_sim.Orders

let () =
  let config = { O.default with O.orders = 300; products = 10; initial_stock = 40 } in
  Format.printf "processing %d orders, %d workers, %d products x %d units@." config.O.orders
    config.O.workers config.O.products config.O.initial_stock;
  let runs = List.init 3 (fun _ -> O.run config) in
  List.iteri (fun i r -> Format.printf "run %d: %a@." (i + 1) O.pp_report r) runs;
  match runs with
  | first :: rest ->
    if List.for_all (fun r -> r.O.audit_digest = first.O.audit_digest) rest then
      print_endline "books balance identically on every run -- audit-stable concurrency"
    else print_endline "UNEXPECTED: audit logs differ";
    Format.printf "unsold inventory: %d units; every order audited: %b@." first.O.stock_remaining
      (first.O.audit_length = config.O.orders)
  | [] -> ()
