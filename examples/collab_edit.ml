(* Operational transformation up close — the paper's Figures 1 and 2, then a
   three-author collaborative edit on a mergeable text buffer.

   Figure 1: two sites apply each other's raw operations and diverge.
   Figure 2: the same operations, transformed, converge to [d; a; b].
   Finally three tasks edit one document concurrently; MergeAll serializes
   their edits deterministically.

     dune exec examples/collab_edit.exe
*)

module Side = Sm_ot.Side

module L = Sm_ot.Op_list.Make (struct
  type t = string

  let equal = String.equal
  let pp ppf s = Format.fprintf ppf "%s" s
end)

let pp_list ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_string)
    l

let figures () =
  let base = [ "a"; "b"; "c" ] in
  let op_a = L.del 2 (* process A deletes "c" *) in
  let op_b = L.ins 0 "d" (* process B inserts "d" at the front *) in
  Format.printf "base list: %a,  A does del(2),  B does ins(0, d)@." pp_list base;

  (* Figure 1: no transformation *)
  let site_a = L.apply (L.apply base op_a) op_b in
  let site_b = L.apply (L.apply base op_b) op_a in
  Format.printf "@.without OT (figure 1):@.";
  Format.printf "  site A: %a@." pp_list site_a;
  Format.printf "  site B: %a   <- diverged!@." pp_list site_b;

  (* Figure 2: transform the remote operation before applying it *)
  let b_for_a = L.transform op_b ~against:op_a ~tie:(Side.uniform Side.Incoming) in
  let a_for_b = L.transform op_a ~against:op_b ~tie:(Side.uniform Side.Applied) in
  let site_a = List.fold_left L.apply (L.apply base op_a) b_for_a in
  let site_b = List.fold_left L.apply (L.apply base op_b) a_for_b in
  Format.printf "@.with OT (figure 2):@.";
  Format.printf "  A's del(2) transformed against B's insert becomes %a@."
    (Format.pp_print_list L.pp_op) a_for_b;
  Format.printf "  site A: %a@." pp_list site_a;
  Format.printf "  site B: %a   <- converged@." pp_list site_b

(* --- concurrent text editing over the runtime ----------------------------- *)

module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Mtext = Sm_mergeable.Mtext

let doc = Mtext.key ~name:"document"

let edit_session () =
  let final =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Mtext.init ws doc "The quick fox jumps over the dog.";
        (* three authors edit concurrently on their own copies *)
        ignore
          (R.spawn ctx (fun author ->
               (* insert "brown " before "fox" *)
               Mtext.insert (R.workspace author) doc 10 "brown "));
        ignore
          (R.spawn ctx (fun author ->
               (* insert "lazy " before "dog" *)
               Mtext.insert (R.workspace author) doc 29 "lazy "));
        ignore
          (R.spawn ctx (fun author ->
               (* delete the trailing period and shout instead *)
               let ws = R.workspace author in
               Mtext.delete ws doc ~pos:32 ~len:1;
               Mtext.append ws doc "!"));
        R.merge_all ctx;
        Mtext.get ws doc)
  in
  Format.printf "@.three concurrent authors, one merge:@.  %S@." final;
  print_endline "  (same result on every run; offsets were transformed, not locked)"

let () =
  figures ();
  edit_session ()
