(* The shard service up close: a two-shard deployment of three named
   documents, two editors collaborating on one of them, and a crash in the
   middle of the session.

   Documents are declared once and hash-routed to shards; each client holds
   a stop-and-wait session with the shard owning the documents it edits.
   Sync is by delta journal: every reply carries the compacted operation
   suffix since the session's cursors, never a snapshot.  When bob crashes
   mid-session and resumes with stale cursors, the shard re-ships exactly
   the suffix he missed — and his in-flight batch, re-issued under its
   original batch id, merges exactly once.

   The service watches itself while all this happens: the crash leaves its
   last moments in the shard's flight-recorder ring, and the wrap-up prints
   the per-shard live-stats table with the conflict profiler's hot-documents
   view (DESIGN 6.1).

     dune exec examples/collab_shard.exe
*)

module Service = Sm_shard.Service
module Client = Sm_shard.Client
module Ws = Sm_mergeable.Workspace
module Obs = Sm_obs

(* Declared once, at module level: registration order defines wire ids, so
   every participant — shards and clients alike — must mint from the same
   construction site. *)
let docs =
  Service.make_docs
    [ `Text ("notes/minutes", "agenda:\n")
    ; `Text ("notes/todo", "")
    ; `Tree ("notes/outline", [])
    ]

let minutes = Service.find_doc docs "notes/minutes"
let k_minutes = Service.text_key minutes

let () =
  let svc = Service.create docs ~shards:2 ~mode:`Delta ~epoch_ticks:2 in
  Format.printf "two shards, three documents:@.";
  List.iter
    (fun d ->
      Format.printf "  %-15s -> shard %d@." (Service.doc_name d)
        (Service.shard_of svc (Service.doc_name d)))
    (Service.doc_list docs);

  (* Both editors work on notes/minutes, so both connect to its shard. *)
  let shard = Service.shard_of svc "notes/minutes" in
  let listener = Service.listener_for svc ~doc:"notes/minutes" in
  let connect name =
    Client.connect ~reg:(Service.registry docs) ~name
      ~init:(Service.client_init svc ~shard) listener
  in
  let alice = connect "alice" in
  let bob = connect "bob" in

  (* One scheduler turn: the shard runs (epochs fire on its tick), then the
     clients drain replies and retransmit if needed. *)
  let turn () =
    Service.tick svc;
    Client.tick alice;
    Client.tick bob
  in
  let until pred =
    let budget = ref 1000 in
    while (not (pred ())) && !budget > 0 do
      turn ();
      decr budget
    done;
    assert (pred ())
  in
  until (fun () -> Client.ready alice && Client.ready bob);

  (* Concurrent edits against the same revision: both batches land in the
     same epoch and are transformed in creation order. *)
  Client.edit alice (fun ws -> Ws.update ws k_minutes (Sm_ot.Op_text.Ins (8, "- ship the demo\n")));
  Client.edit bob (fun ws -> Ws.update ws k_minutes (Sm_ot.Op_text.Ins (8, "- fix the build\n")));
  Client.flush alice;
  Client.flush bob;
  until (fun () -> Client.synced alice && Client.synced bob);
  Format.printf "@.after one concurrent round, alice sees:@.%s"
    (Sm_ot.Op_text.to_string (Ws.read (Client.view alice) k_minutes));

  (* Bob starts a batch, flushes it — and crashes before the ack arrives. *)
  Client.edit bob (fun ws -> Ws.update ws k_minutes (Sm_ot.Op_text.Ins (0, "MINUTES\n")));
  Client.flush bob;
  Client.disconnect bob;
  Format.printf "@.bob crashed with a batch in flight...@.";

  (* Alice keeps editing while bob is gone. *)
  Client.edit alice (fun ws ->
      let len = Sm_ot.Op_text.length (Ws.read (Client.view alice) k_minutes) in
      Ws.update ws k_minutes (Sm_ot.Op_text.Ins (len, "- write the paper\n")));
  Client.flush alice;
  until (fun () -> Client.synced alice);

  (* Resume: stale cursors go up, the missed suffix comes down, and the
     interrupted batch is re-issued under its original id. *)
  (* The shard's flight recorder kept the crash's prologue: the ring holds
     the last served requests regardless of sink verbosity, so even this
     untraced run has a post-mortem to show. *)
  let ring = Sm_shard.Server.recorder (List.nth (Service.servers svc) shard) in
  Format.printf "the shard's flight ring holds bob's last moments (%d events):@."
    (Obs.Flight_recorder.length ring);
  List.iteri
    (fun i line -> if i < 3 then Format.printf "  %s@." line)
    (List.rev (Obs.Flight_recorder.dump_lines ring));

  Client.resume bob listener;
  until (fun () -> Client.synced alice && Client.synced bob);
  Format.printf "...and resumed.  both replicas now read:@.%s"
    (Sm_ot.Op_text.to_string (Ws.read (Client.view bob) k_minutes));
  assert (
    String.equal
      (Sm_ot.Op_text.to_string (Ws.read (Client.view alice) k_minutes))
      (Sm_ot.Op_text.to_string (Ws.read (Client.view bob) k_minutes)));
  Format.printf "@.shard digests: %s@." (String.concat " " (Service.digests svc));
  Format.printf "delta bytes shipped: %d (snapshots: %d)@."
    (Service.delta_bytes_sent svc) (Service.snapshot_bytes_sent svc);

  (* The operator view of the same session: per-shard rows and the conflict
     profiler's hot-documents table (notes/minutes paid the transform bill). *)
  Format.printf "@.%s" (Service.stats_report svc)
