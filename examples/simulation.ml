(* Simulation software — the paper's Listing 4 and the Section III
   evaluation scenario.

   A network of hosts exchanges messages; each host is a task holding a
   copy of every host's mergeable queue.  Hosts loop Sync/pop/process/push;
   the root loops MergeAll, so every simulation cycle merges all hosts in
   creation order — the schedule can do anything, the result cannot.

   This example runs the racy variant (destinations derived from message
   hashes, the case that is non-deterministic under conventional locking)
   three times with both implementations and prints the digests: the
   Spawn/Merge rows are identical, the conventional rows may differ in
   processing order.

     dune exec examples/simulation.exe
*)

module W = Sm_sim.Workload

let config =
  { W.hosts = 6; messages = 12; ttl = 15; load = 50; mode = W.Hash_destination; topology = W.Full; seed = 42L }

let () =
  Format.printf "network simulation: %d hosts, %d messages, ttl %d, load %d (hash destinations)@."
    config.W.hosts config.W.messages config.W.ttl config.W.load;
  Format.printf "@.%-24s %-10s %-18s %-18s@." "implementation" "hops" "event digest" "order digest";
  for i = 1 to 3 do
    let r = Sm_sim.Sim_spawnmerge.run config in
    Format.printf "%-24s %-10d %-18s %-18s@."
      (Printf.sprintf "spawn-merge (run %d)" i)
      r.W.hops r.W.event_digest r.W.order_digest
  done;
  for i = 1 to 3 do
    let r = Sm_sim.Sim_conventional.run config in
    Format.printf "%-24s %-10d %-18s %-18s@."
      (Printf.sprintf "conventional (run %d)" i)
      r.W.hops r.W.event_digest r.W.order_digest
  done;
  print_newline ();
  print_endline "spawn-merge: both digests identical on every run (deterministic by default).";
  print_endline "conventional: same event multiset, but the order digest is timing-dependent.";
  Format.printf "last spawn-merge run took %d MergeAll cycles@."
    (Sm_sim.Sim_spawnmerge.cycles_of_last_run ())
