(* Observability tour — capture a Chrome trace and a JSONL event log of a
   Spawn/Merge run.

   The program below builds a small task tree (a parent spawning workers
   that sync mid-flight, one nested respawn) purely to give the trace some
   shape.  Every lifecycle edge — spawn, task start/end, sync, each child's
   merge — is emitted through [Sm_obs] and recorded twice via a tee sink:

   - [tracing_trace.json]: Chrome trace_event format.  Open
     chrome://tracing or https://ui.perfetto.dev and load the file; every
     task is a swimlane, spawn→merge renders as one complete slice.
   - [tracing_events.jsonl]: one structured event per line, greppable and
     machine-parseable (schema in lib/obs/trace_jsonl.mli).

     dune exec examples/tracing.exe
*)

module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Obs = Sm_obs

let counter = Sm_mergeable.Mcounter.key ~name:"work-done"

(* A worker bumps the shared counter a few times, syncing between bumps so
   the trace shows Sync_begin/Sync_end pairs nested inside the task slice. *)
let worker rounds ctx =
  for _ = 1 to rounds do
    Sm_mergeable.Mcounter.incr (R.workspace ctx) counter;
    match R.sync ctx with
    | Ok () -> ()
    | Error _ -> () (* refusals still leave us on fresh data *)
  done

(* One worker respawns a child of its own, so the trace shows a two-level
   tree: lanes for task ids 1..4 plus the nested task 5. *)
let forking_worker ctx =
  Sm_mergeable.Mcounter.incr (R.workspace ctx) counter;
  ignore (R.spawn ctx (worker 2));
  R.merge_all ctx

let () =
  (* Everything below Debug is emitted; metrics are on so the run also
     produces counters and latency histograms. *)
  Obs.set_level Obs.Debug;
  Obs.Metrics.set_enabled true;
  let recorder = Obs.Trace_chrome.recorder () in
  let jsonl = Obs.Trace_jsonl.file_sink "tracing_events.jsonl" in
  Obs.set_sink (Obs.Sink.tee (Obs.Trace_chrome.sink recorder) jsonl);

  let total =
    R.run (fun ctx ->
        let ws = R.workspace ctx in
        Ws.init ws counter 0;
        let workers = List.init 3 (fun _ -> R.spawn ctx (worker 3)) in
        let forker = R.spawn ctx forking_worker in
        R.merge_all_from_set ctx (forker :: workers);
        Sm_mergeable.Mcounter.get ws counter)
  in
  Obs.flush ();
  Obs.reset_sink ();
  jsonl.Obs.Sink.close ();
  Obs.Trace_chrome.write_file recorder "tracing_trace.json";

  Format.printf "counter after merge: %d@." total;
  let events = Obs.Trace_chrome.events recorder in
  Format.printf "recorded %d events across the run@." (List.length events);
  Format.printf "@.-- metrics --@.";
  Obs.Metrics.dump Format.std_formatter ();
  Format.printf "@.wrote tracing_trace.json   (open in chrome://tracing or ui.perfetto.dev)@.";
  Format.printf "wrote tracing_events.jsonl (one JSON event per line)@."
