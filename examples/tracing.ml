(* Observability tour — capture a Chrome trace and a JSONL event log of a
   Spawn/Merge run.

   The program below builds a small task tree (a parent spawning workers
   that sync mid-flight, one nested respawn) purely to give the trace some
   shape.  Every lifecycle edge — spawn, task start/end, sync, each child's
   merge — is emitted through [Sm_obs] and recorded twice via a tee sink:

   - [tracing_trace.json]: Chrome trace_event format.  Open
     chrome://tracing or https://ui.perfetto.dev and load the file; every
     task is a swimlane, spawn→merge renders as one complete slice.
   - [tracing_events.jsonl]: one structured event per line, greppable and
     machine-parseable (schema in lib/obs/trace_jsonl.mli) — the input of
     the sm-trace CLI.

     dune exec examples/tracing.exe
     dune exec examples/tracing.exe -- --coop --prefix run1
     dune exec examples/tracing.exe -- --coop --prefix run2
     dune exec bin/sm_trace.exe -- diff run1_events.jsonl run2_events.jsonl

   Under --coop the program runs on the cooperative single-threaded
   scheduler, whose event structure is a pure function of the program: two
   runs produce structurally identical JSONL traces, which is exactly what
   `sm-trace diff` checks.  --prefix NAME redirects the two output files to
   NAME_trace.json / NAME_events.jsonl. *)

module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Obs = Sm_obs

let counter = Sm_mergeable.Mcounter.key ~name:"work-done"

(* A worker bumps the shared counter a few times, syncing between bumps so
   the trace shows Sync_begin/Sync_end pairs nested inside the task slice. *)
let worker rounds ctx =
  for _ = 1 to rounds do
    Sm_mergeable.Mcounter.incr (R.workspace ctx) counter;
    match R.sync ctx with
    | Ok () -> ()
    | Error _ -> () (* refusals still leave us on fresh data *)
  done

(* One worker respawns a child of its own, so the trace shows a two-level
   tree: lanes for task ids 1..4 plus the nested task 5. *)
let forking_worker ctx =
  Sm_mergeable.Mcounter.incr (R.workspace ctx) counter;
  ignore (R.spawn ctx (worker 2));
  R.merge_all ctx

let () =
  let args = Array.to_list Sys.argv in
  let coop = List.mem "--coop" args in
  let prefix =
    let rec find = function
      | "--prefix" :: p :: _ -> p
      | _ :: rest -> find rest
      | [] -> "tracing"
    in
    find args
  in
  let trace_file = prefix ^ "_trace.json" and jsonl_file = prefix ^ "_events.jsonl" in
  (* Everything below Debug is emitted; metrics are on so the run also
     produces counters and latency histograms. *)
  Obs.set_level Obs.Debug;
  Obs.Metrics.set_enabled true;
  let recorder = Obs.Trace_chrome.recorder () in
  let jsonl = Obs.Trace_jsonl.file_sink jsonl_file in
  Obs.set_sink (Obs.Sink.tee (Obs.Trace_chrome.sink recorder) jsonl);

  let program ctx =
    let ws = R.workspace ctx in
    Ws.init ws counter 0;
    let workers = List.init 3 (fun _ -> R.spawn ctx (worker 3)) in
    let forker = R.spawn ctx forking_worker in
    R.merge_all_from_set ctx (forker :: workers);
    Sm_mergeable.Mcounter.get ws counter
  in
  (* The cooperative scheduler makes the event *structure* a pure function
     of the program — two --coop runs diff clean under `sm-trace diff`. *)
  let total = if coop then R.Coop.run program else R.run program in
  Obs.flush ();
  Obs.reset_sink ();
  jsonl.Obs.Sink.close ();
  Obs.Trace_chrome.write_file recorder trace_file;

  Format.printf "counter after merge: %d@." total;
  let events = Obs.Trace_chrome.events recorder in
  Format.printf "recorded %d events across the run (%s scheduler)@." (List.length events)
    (if coop then "cooperative" else "threaded");
  Format.printf "@.-- metrics --@.";
  Obs.Metrics.dump Format.std_formatter ();
  Format.printf "@.wrote %s   (open in chrome://tracing or ui.perfetto.dev)@." trace_file;
  Format.printf "wrote %s (one JSON event per line; try `sm-trace summary %s`)@." jsonl_file
    jsonl_file
