(* Quickstart — the paper's Listing 1.

   A parent task and a spawned child task both append to the same logical
   list without any locking: each works on its own copy, and
   MergeAllFromSet reconciles the copies with operational transformation.
   The output is [1; 2; 3; 4; 5] on every run, on any number of cores.

     dune exec examples/quickstart.exe
*)

module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace

module Mlist = Sm_mergeable.Mlist.Make (struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end)

let list = Mlist.key ~name:"list"

(* func f(l List) { l.Append(5) } *)
let f child = Mlist.append (R.workspace child) list 5

let () =
  R.run (fun ctx ->
      let ws = R.workspace ctx in
      (* list := NewList(1,2,3) *)
      Ws.init ws list [ 1; 2; 3 ];
      (* t := Spawn(f, list) *)
      let t = R.spawn ctx f in
      (* list.Append(4) *)
      Mlist.append ws list 4;
      (* MergeAllFromSet(t) *)
      R.merge_all_from_set ctx [ t ];
      (* Print(list) *)
      Format.printf "merged list: [%a]@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Format.pp_print_int)
        (Mlist.get ws list));
  (* The mutex-based version of this program (paper Listing 2) can print
     [1;2;3;5;4] or [1;2;3;4;5] depending on scheduler timing.  Here the
     merge order is part of the program, so the answer never changes. *)
  print_endline "deterministic: always [1; 2; 3; 4; 5]"
