(** Thread-safe blocking FIFO queues (Mutex + Condition).

    Two consumers in the repository:
    - the executor's per-domain job inbox, and
    - the conventional (lock-based) network-simulator baseline, where each
      simulated host owns one incoming queue and performs a blocking [pop] —
      exactly the structure the paper's evaluation section describes.

    Closing a queue wakes all blocked consumers; a closed, drained queue
    yields [None] from {!pop}. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** @raise Invalid_argument if the queue is closed. *)

val pop : 'a t -> 'a option
(** Blocks until an element is available or the queue is closed and drained.
    [None] only after [close]. *)

val try_pop : 'a t -> 'a option
(** Non-blocking variant; [None] when currently empty. *)

val length : 'a t -> int

val close : 'a t -> unit
(** Idempotent.  Subsequent [push]es fail; blocked and future [pop]s return
    remaining elements, then [None]. *)

val is_closed : 'a t -> bool
