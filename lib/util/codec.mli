(** Binary codecs: serialize operation logs and states for the distributed
    Spawn/Merge runtime ({!Sm_dist}).

    Combinator style: build a ['a t] from the primitives and [map]/[list]/
    [pair]/..., then {!encode}/{!decode} whole values.  The format is a
    straightforward length-prefixed/varint encoding — compact, endianness-
    free, and with no OCaml-specific representation leakage (unlike
    [Marshal]), which is what a wire protocol between simulated MPI ranks
    should look like. *)

type 'a t

exception Decode_error of string
(** Raised by {!decode} on truncated or malformed input. *)

val encode : 'a t -> 'a -> string

val decode : 'a t -> string -> 'a
(** @raise Decode_error on malformed input or trailing garbage. *)

(** {1 Primitives} *)

val int : int t
(** Zig-zag varint: small magnitudes are small on the wire. *)

val int64 : int64 t

val bool : bool t

val float : float t

val string : string t
(** Length-prefixed bytes. *)

val unit : unit t

val uvarint : int t
(** Plain LEB128 varint (no zig-zag) for non-negative values — counts and
    packed headers.  Writing a negative value raises [Invalid_argument];
    reading a value that overflows [int] raises {!Decode_error}. *)

(** {1 Combinators} *)

val list : 'a t -> 'a list t

val array : 'a t -> 'a array t

val option : 'a t -> 'a option t

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val map : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [map inj prj c]: encode ['a] by projecting to ['b] with [inj]... note
    argument order: [inj : 'a -> 'b] is used when writing, [prj] when
    reading. *)

type writer = Buffer.t

type reader

val custom : write:(writer -> 'a -> unit) -> read:(reader -> 'a) -> 'a t
(** Escape hatch for hand-rolled formats (e.g. delta-encoded op journals):
    [write]/[read] compose with {!W} and {!R} like a {!tagged} payload.
    [read] must consume exactly the bytes [write] produced and raise
    {!Decode_error} on malformed input. *)

val tagged :
  tag:('a -> int) -> write:(writer -> 'a -> unit) -> read:(int -> reader -> 'a) -> 'a t
(** Variants: [tag] names the constructor, [write] emits its payload,
    [read tag] rebuilds the value ([read] may raise {!Decode_error} on an
    unknown tag).  Payload access goes through {!W} and {!R}. *)

(** Low-level access for {!tagged} payloads. *)
module W : sig
  val int : writer -> int -> unit
  val int64 : writer -> int64 -> unit
  val bool : writer -> bool -> unit
  val string : writer -> string -> unit
  val value : 'a t -> writer -> 'a -> unit
end

module R : sig
  val int : reader -> int
  val int64 : reader -> int64
  val bool : reader -> bool
  val string : reader -> string
  val value : 'a t -> reader -> 'a
end
