(** SHA-1 (RFC 3174), implemented from scratch.

    The container has no crypto library, and the paper's evaluation derives
    message destinations from iterated SHA-1 over the payload, so we provide
    our own.  SHA-1 is used here purely as a CPU workload and a stable content
    digest — not for security. *)

val digest : string -> string
(** 20-byte raw digest. *)

val hex : string -> string
(** 40-character lowercase hex digest. *)

val iterate : string -> times:int -> string
(** [iterate s ~times] applies [digest] [times] times ([times = 0] returns
    [s] unchanged).  This is the paper's host-workload knob [l].
    @raise Invalid_argument if [times < 0]. *)
