(** Small descriptive-statistics helpers for the benchmark harness. *)

type summary =
  { n : int
  ; mean : float
  ; stddev : float  (** sample standard deviation (n-1 denominator) *)
  ; min : float
  ; max : float
  ; median : float
  }

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p] in [\[0, 100\]].
    @raise Invalid_argument on the empty list or [p] out of range. *)

val pp_summary : Format.formatter -> summary -> unit
