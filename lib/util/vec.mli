(** Growable arrays (OCaml 5.1 has no [Dynarray] yet).

    Used for operation journals: cheap amortized append, O(1) random access,
    and slice extraction for "operations since version [v]" queries.  Not
    thread-safe; journals are confined to one task at a time by the runtime. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Appends an element; amortized O(1). *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** Replace an existing element in place.
    @raise Invalid_argument on out-of-bounds access. *)

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val slice : 'a t -> from:int -> 'a list
(** [slice v ~from] returns elements [from .. length-1] as a list.
    @raise Invalid_argument if [from < 0] or [from > length v]. *)

val clear : 'a t -> unit

val iter : 'a t -> f:('a -> unit) -> unit

val append_list : 'a t -> 'a list -> unit

val copy : 'a t -> 'a t
