(** Heterogeneous maps with typed keys.

    An {!t} stores values of arbitrary types, each addressed by a typed
    {!type:key}.  Keys carry a runtime witness (an extensible-variant
    constructor), so lookups recover the value at its original type without
    [Obj.magic].  Keys are compared by identity: two keys created by separate
    calls to {!Key.create} never alias, even with the same name.

    This is the backing store for task workspaces in the Spawn/Merge runtime:
    every mergeable data structure registered with a workspace lives under one
    key. *)

type 'a key
(** A typed key addressing a value of type ['a]. *)

module Key : sig
  val create : name:string -> 'a key
  (** [create ~name] mints a fresh key.  [name] is used for diagnostics
      only and need not be unique. *)

  val name : 'a key -> string

  val id : 'a key -> int
  (** Unique integer identity, totally ordered by creation time.  Key
      iteration order in {!fold} follows this order, which makes traversals
      deterministic. *)
end

type t
(** An immutable heterogeneous map. *)

type binding = B : 'a key * 'a -> binding
(** An existentially typed binding, as seen by {!fold}. *)

val empty : t

val is_empty : t -> bool

val cardinal : t -> int

val add : 'a key -> 'a -> t -> t
(** [add k v m] binds [k] to [v], replacing any previous binding of [k]. *)

val find : 'a key -> t -> 'a option

val get : 'a key -> t -> 'a
(** @raise Not_found if the key is unbound. *)

val mem : 'a key -> t -> bool

val remove : 'a key -> t -> t

val fold : t -> init:'acc -> f:('acc -> binding -> 'acc) -> 'acc
(** Folds over bindings in increasing key-id order. *)

val bindings : t -> binding list
(** All bindings in increasing key-id order. *)
