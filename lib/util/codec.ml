exception Decode_error of string

type writer = Buffer.t

type reader =
  { src : string
  ; mutable pos : int
  }

type 'a t =
  { write : writer -> 'a -> unit
  ; read : reader -> 'a
  }

let fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

let byte r =
  if r.pos >= String.length r.src then fail "truncated input at %d" r.pos;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

(* LEB128 on the zig-zag transform, so negative ints stay short. *)
let write_uvarint buf v =
  let rec go v =
    let low = Int64.to_int (Int64.logand v 0x7FL) in
    let rest = Int64.shift_right_logical v 7 in
    if Int64.equal rest 0L then Buffer.add_char buf (Char.chr low)
    else begin
      Buffer.add_char buf (Char.chr (low lor 0x80));
      go rest
    end
  in
  go v

let read_uvarint r =
  let rec go shift acc =
    if shift > 63 then fail "varint too long at %d" r.pos;
    let b = byte r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)
let unzigzag v = Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

let int64 =
  { write = (fun buf v -> write_uvarint buf (zigzag v))
  ; read = (fun r -> unzigzag (read_uvarint r))
  }

let int =
  { write = (fun buf v -> int64.write buf (Int64.of_int v))
  ; read =
      (fun r ->
        let v = int64.read r in
        if Int64.of_int (Int64.to_int v) <> v then fail "int overflow";
        Int64.to_int v)
  }

let bool =
  { write = (fun buf b -> Buffer.add_char buf (if b then '\001' else '\000'))
  ; read =
      (fun r ->
        match byte r with 0 -> false | 1 -> true | b -> fail "invalid bool byte %d" b)
  }

let float =
  { write = (fun buf f -> write_uvarint buf (Int64.bits_of_float f))
  ; read = (fun r -> Int64.float_of_bits (read_uvarint r))
  }

let string =
  { write =
      (fun buf s ->
        write_uvarint buf (Int64.of_int (String.length s));
        Buffer.add_string buf s)
  ; read =
      (fun r ->
        let n = Int64.to_int (read_uvarint r) in
        if n < 0 || r.pos + n > String.length r.src then fail "bad string length %d at %d" n r.pos;
        let s = String.sub r.src r.pos n in
        r.pos <- r.pos + n;
        s)
  }

let unit = { write = (fun _ () -> ()); read = (fun _ -> ()) }

(* Plain LEB128 without the zig-zag: for values that are non-negative by
   construction (counts, lengths, packed op headers) it saves the doubling
   bit and keeps golden byte vectors easy to read. *)
let uvarint =
  { write =
      (fun buf v ->
        if v < 0 then invalid_arg "Codec.uvarint: negative value";
        write_uvarint buf (Int64.of_int v))
  ; read =
      (fun r ->
        let v = read_uvarint r in
        if Int64.of_int (Int64.to_int v) <> v || Int64.compare v 0L < 0 then
          fail "uvarint overflow";
        Int64.to_int v)
  }

let custom ~write ~read = { write; read }

let list elt =
  { write =
      (fun buf xs ->
        write_uvarint buf (Int64.of_int (List.length xs));
        List.iter (elt.write buf) xs)
  ; read =
      (fun r ->
        let n = Int64.to_int (read_uvarint r) in
        if n < 0 then fail "negative list length";
        List.init n (fun _ -> elt.read r))
  }

let array elt =
  let of_l = list elt in
  { write = (fun buf xs -> of_l.write buf (Array.to_list xs))
  ; read = (fun r -> Array.of_list (of_l.read r))
  }

let option elt =
  { write =
      (fun buf -> function
        | None -> bool.write buf false
        | Some v ->
          bool.write buf true;
          elt.write buf v)
  ; read = (fun r -> if bool.read r then Some (elt.read r) else None)
  }

let pair a b =
  { write =
      (fun buf (x, y) ->
        a.write buf x;
        b.write buf y)
  ; read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y))
  }

let triple a b c =
  { write =
      (fun buf (x, y, z) ->
        a.write buf x;
        b.write buf y;
        c.write buf z)
  ; read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        let z = c.read r in
        (x, y, z))
  }

let map inj prj c =
  { write = (fun buf v -> c.write buf (inj v)); read = (fun r -> prj (c.read r)) }

let tagged ~tag ~write ~read =
  { write =
      (fun buf v ->
        int.write buf (tag v);
        write buf v)
  ; read =
      (fun r ->
        let t = int.read r in
        read t r)
  }

module W = struct
  let int = int.write
  let int64 = int64.write
  let bool = bool.write
  let string = string.write
  let value c = c.write
end

module R = struct
  let int = int.read
  let int64 = int64.read
  let bool = bool.read
  let string = string.read
  let value c = c.read
end

let encode c v =
  let buf = Buffer.create 64 in
  c.write buf v;
  Buffer.contents buf

let decode c s =
  let r = { src = s; pos = 0 } in
  let v = c.read r in
  if r.pos <> String.length s then fail "trailing garbage: %d of %d bytes consumed" r.pos (String.length s);
  v
