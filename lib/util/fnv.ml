let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let hash s =
  let h = ref offset_basis in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let combine a b = Int64.mul (Int64.logxor (Int64.mul a prime) b) prime
let to_hex h = Printf.sprintf "%016Lx" h
