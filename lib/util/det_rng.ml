type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: expands a 64-bit seed into the xoshiro state.  Reference:
   Steele, Lea, Flood, "Fast splittable pseudorandom number generators". *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let u = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 u;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(int64 t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Det_rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let bool t = Int64.logand (int64 t) 1L = 1L

let float t =
  let bits53 = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Det_rng.pick: empty list"
  | xs -> List.nth xs (int t ~bound:(List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let bytes t ~len =
  String.init len (fun _ -> Char.chr (int t ~bound:256))
