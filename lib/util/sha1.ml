(* SHA-1 per RFC 3174.  The compression function works on Int32 words; OCaml's
   boxed Int32 is slower than native int tricks but keeps the code an obvious
   transcription of the spec, which matters more for auditability here. *)

let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let padding message =
  let len = String.length message in
  let bit_len = Int64.of_int (len * 8) in
  (* message ^ 0x80 ^ zeros ^ 8-byte big-endian bit length, total multiple of 64 *)
  let rem = (len + 1 + 8) mod 64 in
  let zeros = if rem = 0 then 0 else 64 - rem in
  let b = Bytes.create (len + 1 + zeros + 8) in
  Bytes.blit_string message 0 b 0 len;
  Bytes.set b len '\x80';
  Bytes.fill b (len + 1) zeros '\x00';
  Bytes.set_int64_be b (len + 1 + zeros) bit_len;
  b

let digest message =
  let data = padding message in
  let h0 = ref 0x67452301l
  and h1 = ref 0xEFCDAB89l
  and h2 = ref 0x98BADCFEl
  and h3 = ref 0x10325476l
  and h4 = ref 0xC3D2E1F0l in
  let w = Array.make 80 0l in
  let blocks = Bytes.length data / 64 in
  for blk = 0 to blocks - 1 do
    let base = blk * 64 in
    for t = 0 to 15 do
      w.(t) <- Bytes.get_int32_be data (base + (t * 4))
    done;
    for t = 16 to 79 do
      w.(t) <- rotl32 (Int32.logxor (Int32.logxor w.(t - 3) w.(t - 8)) (Int32.logxor w.(t - 14) w.(t - 16))) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), 0x5A827999l)
        else if t < 40 then (Int32.logxor (Int32.logxor !b !c) !d, 0x6ED9EBA1l)
        else if t < 60 then
          ( Int32.logor
              (Int32.logor (Int32.logand !b !c) (Int32.logand !b !d))
              (Int32.logand !c !d)
          , 0x8F1BBCDCl )
        else (Int32.logxor (Int32.logxor !b !c) !d, 0xCA62C1D6l)
      in
      let temp = Int32.add (Int32.add (Int32.add (Int32.add (rotl32 !a 5) f) !e) k) w.(t) in
      e := !d;
      d := !c;
      c := rotl32 !b 30;
      b := !a;
      a := temp
    done;
    h0 := Int32.add !h0 !a;
    h1 := Int32.add !h1 !b;
    h2 := Int32.add !h2 !c;
    h3 := Int32.add !h3 !d;
    h4 := Int32.add !h4 !e
  done;
  let out = Bytes.create 20 in
  Bytes.set_int32_be out 0 !h0;
  Bytes.set_int32_be out 4 !h1;
  Bytes.set_int32_be out 8 !h2;
  Bytes.set_int32_be out 12 !h3;
  Bytes.set_int32_be out 16 !h4;
  Bytes.unsafe_to_string out

let hex message =
  let raw = digest message in
  let buf = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let iterate s ~times =
  if times < 0 then invalid_arg "Sha1.iterate: negative times";
  let rec go s n = if n = 0 then s else go (digest s) (n - 1) in
  go s times
