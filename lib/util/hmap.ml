type packed = ..

type 'a key =
  { id : int
  ; name : string
  ; inj : 'a -> packed
  ; prj : packed -> 'a option
  }

let next_id = Atomic.make 0

module Key = struct
  let create (type a) ~name : a key =
    let module M = struct
      type packed += B of a
    end in
    let inj v = M.B v in
    let prj = function M.B v -> Some v | _ -> None in
    { id = Atomic.fetch_and_add next_id 1; name; inj; prj }

  let name k = k.name
  let id k = k.id
end

module Imap = Map.Make (Int)

type binding = B : 'a key * 'a -> binding

(* Values are stored packed; the key id recovers the binding.  We keep the
   [binding] itself (key + packed payload) so [fold] can expose the key. *)
type t = binding Imap.t

let empty = Imap.empty
let is_empty = Imap.is_empty
let cardinal = Imap.cardinal
let add k v m = Imap.add k.id (B (k, v)) m

let find (type a) (k : a key) (m : t) : a option =
  match Imap.find_opt k.id m with
  | None -> None
  | Some (B (k', v)) -> k.prj (k'.inj v)

let get k m = match find k m with Some v -> v | None -> raise Not_found
let mem k m = Imap.mem k.id m
let remove k m = Imap.remove k.id m

let fold m ~init ~f = Imap.fold (fun _ b acc -> f acc b) m init
let bindings m = List.rev (fold m ~init:[] ~f:(fun acc b -> b :: acc))
