type 'a t =
  { q : 'a Queue.t
  ; m : Mutex.t
  ; cv : Condition.t
  ; mutable closed : bool
  }

let create () = { q = Queue.create (); m = Mutex.create (); cv = Condition.create (); closed = false }

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

let push t x =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Bqueue.push: closed queue";
      Queue.push x t.q;
      Condition.signal t.cv)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.cv t.m;
          wait ()
        end
      in
      wait ())

let try_pop t = with_lock t (fun () -> if Queue.is_empty t.q then None else Some (Queue.pop t.q))
let length t = with_lock t (fun () -> Queue.length t.q)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cv)

let is_closed t = with_lock t (fun () -> t.closed)
