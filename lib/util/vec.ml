type 'a t =
  { mutable data : 'a array
  ; mutable len : int
  }

let create () = { data = [||]; len = 0 }
let length v = v.len

let grow v =
  let cap = Array.length v.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  (* [v.len > 0] whenever we grow a non-empty vector, so [v.data.(0)] is a
     valid seed element for [Array.make]. *)
  let data =
    if cap = 0 then v.data
    else begin
      let data = Array.make new_cap v.data.(0) in
      Array.blit v.data 0 data 0 v.len;
      data
    end
  in
  v.data <- data

let push v x =
  if v.len = Array.length v.data then begin
    if v.len = 0 then v.data <- Array.make 8 x else grow v
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let slice v ~from =
  if from < 0 || from > v.len then invalid_arg "Vec.slice: bad bound";
  let rec collect i acc = if i < from then acc else collect (i - 1) (v.data.(i) :: acc) in
  collect (v.len - 1) []

let to_list v = slice v ~from:0
let clear v = v.len <- 0

let iter v ~f =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let append_list v xs = List.iter (push v) xs

let of_list xs =
  let v = create () in
  append_list v xs;
  v

let copy v = { data = Array.copy v.data; len = v.len }
