type summary =
  { n : int
  ; mean : float
  ; stddev : float
  ; min : float
  ; max : float
  ; median : float
  }

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else min (n - 1) (rank - 1) in
  List.nth sorted idx

let summarize xs =
  if xs = [] then invalid_arg "Stats.summarize: empty";
  let n = List.length xs in
  let m = mean xs in
  let var =
    if n < 2 then 0.0
    else
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. float_of_int (n - 1)
  in
  { n
  ; mean = m
  ; stddev = sqrt var
  ; min = List.fold_left min infinity xs
  ; max = List.fold_left max neg_infinity xs
  ; median = percentile xs ~p:50.0
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f med=%.2f max=%.2f" s.n s.mean s.stddev
    s.min s.median s.max
