(** FNV-1a 64-bit hashing — cheap, stable string digests.

    Workspace digests in the determinism oracle hash the pretty-printed state
    of every mergeable value; FNV keeps that cheap enough to run after every
    simulation cycle.  Collisions merely weaken the oracle (two diverging runs
    could in principle collide), so equality checks back the digests in unit
    tests. *)

val hash : string -> int64
(** FNV-1a over the bytes of the string. *)

val combine : int64 -> int64 -> int64
(** Order-sensitive combination of two hashes. *)

val to_hex : int64 -> string
