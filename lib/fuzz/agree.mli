(** The static/dynamic agreement harness — the cross-validation contract
    between [sm-lint] and the dynamic toolchain.

    For each program, three claims are checked against one real execution:

    - {b soundness}: if the lint findings
      {!Sm_lint.Finding.guarantees_detsan_clean}, a {!Sm_check.Detsan} run
      must report zero hazards;
    - {b completeness}: every DetSan hazard tag observed dynamically must be
      covered by some finding's twin class;
    - {b cost}: the observed [ot.transform_calls] of a metered cooperative
      run must not exceed the static {!Sm_lint.Cost} bound.

    Any violated claim is a harness failure — the gate CI runs over the
    pinned corpus and hundreds of generated seeds. *)

type outcome =
  { name : string
  ; program : Program.t
  ; report : Sm_lint.Lint.report
  ; hazards : string list  (** deduplicated DetSan tags from one threaded run *)
  ; observed_calls : int  (** ot.transform_calls of one metered coop run *)
  ; violations : string list  (** empty = the contracts held *)
  }

val check_program : Oracle.env -> ?name:string -> Program.t -> outcome

type summary =
  { programs : int
  ; static_clean : int
  ; hazardous : int
  ; failed : outcome list
  }

val summarize : outcome list -> summary

val run_seeds :
  ?progress:(name:string -> outcome -> unit) ->
  Oracle.env ->
  seed_base:int64 ->
  seeds:int ->
  depth:int ->
  profile:Program.profile ->
  unit ->
  outcome list
(** Generated programs for seeds [seed_base .. seed_base + seeds - 1]. *)

val corpus_outcomes : ?progress:(name:string -> outcome -> unit) -> Oracle.env -> outcome list
(** Every pinned {!Corpus} entry's program (the clean ones and the
    mutation-catching ones — mutations affect the data plane, not the
    program, so the same IR is linted either way). *)
