(* The program IR was promoted to [lib/ir] (PR 8) so the static analyzer can
   depend on it without pulling in the fuzzer; this alias keeps every
   existing [Sm_fuzz.Program] reference — and the fuzzer's own modules —
   source-compatible. *)
include Sm_ir.Program
