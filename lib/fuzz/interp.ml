module Rt = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module P = Program

module Int_elt = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
end

module Str_elt = struct
  type t = string

  let equal = String.equal
  let pp ppf s = Format.fprintf ppf "%S" s
end

module Ilist = Sm_mergeable.Mlist.Make (Int_elt)
module Iset = Sm_mergeable.Mset.Make (Int_elt)
module Imap = Sm_mergeable.Mmap.Make (Int_elt) (Str_elt)
module Iqueue = Sm_mergeable.Mqueue.Make (Int_elt)
module Istack = Sm_mergeable.Mstack.Make (Int_elt)
module Sreg = Sm_mergeable.Mregister.Make (Str_elt)
module Stree = Sm_mergeable.Mtree.Make (Str_elt)

module Keyset = struct
  type t =
    { counter : Sm_mergeable.Mcounter.handle
    ; register : Sreg.handle
    ; text : Sm_mergeable.Mtext.handle
    ; list : Ilist.handle
    ; set : Iset.handle
    ; map : Imap.handle
    ; queue : Iqueue.handle
    ; stack : Istack.handle
    ; tree : Stree.handle
    }

  let wrap : type s o.
      Sm_check.Mutate.kind option ->
      (module Sm_mergeable.Data.S with type state = s and type op = o) ->
      (module Sm_mergeable.Data.S with type state = s and type op = o) =
   fun mutate data -> match mutate with None -> data | Some k -> Sm_check.Mutate.wrap_data k data

  let make ?mutate () =
    let key data name = Ws.create_key (wrap mutate data) ~name in
    { counter = key (module Sm_mergeable.Mcounter.Data) "fuzz.counter"
    ; register = key (module Sreg.Data) "fuzz.register"
    ; text = key (module Sm_mergeable.Mtext.Data) "fuzz.text"
    ; list = key (module Ilist.Data) "fuzz.list"
    ; set = key (module Iset.Data) "fuzz.set"
    ; map = key (module Imap.Data) "fuzz.map"
    ; queue = key (module Iqueue.Data) "fuzz.queue"
    ; stack = key (module Istack.Data) "fuzz.stack"
    ; tree = key (module Stree.Data) "fuzz.tree"
    }

  let default_keys = lazy (make ())
  let default () = Lazy.force default_keys
  let mutated_keys : (Sm_check.Mutate.kind, t) Hashtbl.t = Hashtbl.create 4

  let mutated kind =
    match Hashtbl.find_opt mutated_keys kind with
    | Some t -> t
    | None ->
      let t = make ~mutate:kind () in
      Hashtbl.add mutated_keys kind t;
      t

  let counter_value ws t = Sm_mergeable.Mcounter.get ws t.counter
  let queue_value ws t = Iqueue.get ws t.queue
end

let init (k : Keyset.t) ws =
  Ws.init ws k.counter 0;
  Ws.init ws k.register "r0";
  Ws.init ws k.text (Sm_ot.Op_text.of_string "");
  Ws.init ws k.list [];
  Ws.init ws k.set Iset.Op.Elt_set.empty;
  Ws.init ws k.map Imap.Op.Key_map.empty;
  Ws.init ws k.queue [];
  Ws.init ws k.stack [];
  Ws.init ws k.tree []

(* --- operations ------------------------------------------------------------- *)

let label n = Printf.sprintf "v%d" (n mod 16)

let apply_op (k : Keyset.t) ws { P.ty; sel; a; b } =
  match ty with
  | P.Counter ->
    let n = 1 + (a mod 4) in
    Sm_mergeable.Mcounter.add ws k.counter (if sel mod 2 = 0 then n else -n)
  | P.Register -> Sreg.set ws k.register (label a)
  | P.Text -> (
    let len = Sm_mergeable.Mtext.length ws k.text in
    match sel mod 3 with
    | 1 when len > 0 ->
      let pos = a mod len in
      let dlen = 1 + (b mod min 3 (len - pos)) in
      Sm_mergeable.Mtext.delete ws k.text ~pos ~len:dlen
    | 2 -> Sm_mergeable.Mtext.append ws k.text (label b)
    | _ -> Sm_mergeable.Mtext.insert ws k.text (a mod (len + 1)) (label b))
  | P.List -> (
    let len = Ilist.length ws k.list in
    match sel mod 3 with
    | 1 when len > 0 -> Ilist.delete ws k.list (a mod len)
    | 2 when len > 0 -> Ilist.set ws k.list (a mod len) (b mod 16)
    | _ -> Ilist.insert ws k.list (a mod (len + 1)) (b mod 16))
  | P.Set ->
    if sel mod 2 = 0 then Iset.add ws k.set (a mod 8) else Iset.remove ws k.set (a mod 8)
  | P.Map ->
    if sel mod 2 = 0 then Imap.put ws k.map (a mod 8) (label b) else Imap.remove ws k.map (a mod 8)
  | P.Queue ->
    if sel mod 2 = 0 then Iqueue.push ws k.queue (a mod 16) else ignore (Iqueue.pop ws k.queue)
  | P.Stack ->
    if sel mod 2 = 0 then Istack.push ws k.stack (a mod 16) else ignore (Istack.pop ws k.stack)
  | P.Tree -> (
    let roots = Stree.get ws k.tree in
    let nroots = List.length roots in
    let insert_somewhere () =
      let path =
        if nroots > 0 && b land 1 = 1 then begin
          let i = a mod nroots in
          let node = List.nth roots i in
          [ i; b mod (List.length node.Stree.Op.children + 1) ]
        end
        else [ a mod (nroots + 1) ]
      in
      Stree.insert ws k.tree path (Stree.Op.leaf (label b))
    in
    let existing_path () =
      let i = a mod nroots in
      let node = List.nth roots i in
      if b land 1 = 1 && node.Stree.Op.children <> [] then
        [ i; b mod (List.length node.Stree.Op.children) ]
      else [ i ]
    in
    match sel mod 3 with
    | 1 when nroots > 0 -> Stree.delete ws k.tree (existing_path ())
    | 2 when nroots > 0 -> Stree.relabel ws k.tree (existing_path ()) (label (b + 1))
    | _ -> insert_somewhere ())

(* --- execution -------------------------------------------------------------- *)

let validate_fun (k : Keyset.t) v =
  if v <= 0 then None
  else begin
    let m = 2 + ((v - 1) mod 3) in
    Some (fun child_ws -> Keyset.counter_value child_ws k mod m <> 0)
  end

(* Live-children subset for the *_set merge variants: bit [i mod 30] of the
   mask picks child [i] (mask bits recycle past 30 children). *)
let select mask handles = List.filteri (fun i _ -> (mask lsr (i mod 30)) land 1 = 1) handles

let run ?(task_budget = 256) (k : Keyset.t) (prog : P.t) ctx =
  let n = Array.length prog.P.scripts in
  let budget = Atomic.make 0 in
  let rec exec idx ~root ctx =
    let ws = Rt.workspace ctx in
    let children = ref [] in
    let live () = List.filter (fun h -> Rt.status h <> Rt.Retired) !children in
    let target j = P.resolve_target ~nscripts:n ~idx j in
    let step = function
      | P.Op spec -> apply_op k ws spec
      | P.Spawn j -> (
        match target j with
        | Some t when Atomic.fetch_and_add budget 1 < task_budget ->
          children := !children @ [ Rt.spawn ctx (exec t ~root:false) ]
        | _ -> ())
      | P.Merge { kind; sel; validate } -> (
        let validate = validate_fun k validate in
        match kind with
        | P.All -> Rt.merge_all ?validate ctx
        | P.All_set -> Rt.merge_all_from_set ?validate ctx (select sel (live ()))
        | P.Any -> ignore (Rt.merge_any ?validate ctx)
        | P.Any_set -> ignore (Rt.merge_any_from_set ?validate ctx (select sel (live ()))))
      | P.Sync -> if not root then ignore (Rt.sync ctx)
      | P.Clone j -> (
        match target j with
        | Some t
          when (not root)
               && Ws.is_pristine ws
               && Atomic.fetch_and_add budget 1 < task_budget ->
          ignore (Rt.clone ctx (exec t ~root:false))
        | _ -> ())
      | P.Abort j -> (
        match live () with
        | [] -> ()
        | l -> Rt.abort ctx (List.nth l (j mod List.length l)))
      | P.Mint j ->
        (* the DetSan key-in-task pitfall, on purpose: minting alone is the
           hazard, so the key is neither initialized nor written — state and
           digest stay untouched and the step is deterministic.  Only four
           distinct names exist so repeated mints dedup in hazard reports. *)
        ignore
          (Ws.create_key
             (module Sm_mergeable.Mcounter.Data)
             ~name:(Printf.sprintf "fuzz.minted.%d" (j mod 4)))
    in
    List.iter step prog.P.scripts.(idx);
    (* never leave children to the implicit MergeAll: sync-parked children
       resume and finish, so loop until the task tree below us is gone *)
    while Rt.has_children ctx do
      Rt.merge_all ctx
    done
  in
  init k (Rt.workspace ctx);
  exec 0 ~root:true ctx
