module P = Program
module L = Sm_lint

type outcome =
  { name : string
  ; program : P.t
  ; report : L.Lint.report
  ; hazards : string list
  ; observed_calls : int
  ; violations : string list
  }

(* One metered cooperative run: the observed ot.transform_calls the static
   bound must dominate.  Metrics are global; save/restore the enable flag so
   the harness composes with callers that profile. *)
let observed_transform_calls keys prog =
  let was = Sm_obs.Metrics.is_enabled () in
  Fun.protect
    ~finally:(fun () -> Sm_obs.Metrics.set_enabled was)
    (fun () ->
      Sm_obs.Metrics.set_enabled true;
      let before = Sm_obs.Metrics.value Sm_ot.Control.transform_calls in
      ignore (Oracle.coop_digest keys prog);
      Sm_obs.Metrics.value Sm_ot.Control.transform_calls - before)

let check_program (env : Oracle.env) ?(name = "program") prog =
  let report = L.Lint.analyze prog in
  let keys = Interp.Keyset.default () in
  let hazards =
    let hs, _digest =
      Sm_check.Detsan.run ~executor:(Oracle.threaded_executor env) (Interp.run keys prog)
    in
    List.sort_uniq compare (List.map Sm_check.Detsan.hazard_tag hs)
  in
  let observed_calls = observed_transform_calls keys prog in
  let violations = ref [] in
  let add fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  (* soundness: a statically-clean program must be DetSan-clean *)
  if L.Finding.guarantees_detsan_clean report.L.Lint.findings && hazards <> [] then
    add "statically clean but DetSan reported: %s" (String.concat ", " hazards);
  (* completeness: every dynamic hazard needs a static twin finding *)
  List.iter
    (fun tag ->
      if not (L.Finding.covers_hazard report.L.Lint.findings ~tag) then
        add "dynamic hazard %s has no static twin finding" tag)
    hazards;
  (* the cost model is an upper bound on any run *)
  if observed_calls > report.L.Lint.cost.L.Cost.total_calls then
    add "observed %d transform calls > static bound %d" observed_calls
      report.L.Lint.cost.L.Cost.total_calls;
  { name; program = prog; report; hazards; observed_calls; violations = List.rev !violations }

type summary =
  { programs : int
  ; static_clean : int  (** programs whose findings guarantee DetSan-clean *)
  ; hazardous : int  (** programs with at least one dynamic hazard *)
  ; failed : outcome list  (** outcomes with violations, run order *)
  }

let summarize outcomes =
  { programs = List.length outcomes
  ; static_clean =
      List.length
        (List.filter
           (fun o -> L.Finding.guarantees_detsan_clean o.report.L.Lint.findings)
           outcomes)
  ; hazardous = List.length (List.filter (fun o -> o.hazards <> []) outcomes)
  ; failed = List.filter (fun o -> o.violations <> []) outcomes
  }

let run_seeds ?(progress = fun ~name:_ _ -> ()) env ~seed_base ~seeds ~depth ~profile () =
  let outcomes = ref [] in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed_base (Int64.of_int i) in
    let prog = Fuzzer.program_of_seed ~seed ~depth ~profile in
    let name = Printf.sprintf "seed-0x%Lx" seed in
    let o = check_program env ~name prog in
    progress ~name o;
    outcomes := o :: !outcomes
  done;
  List.rev !outcomes

let corpus_outcomes ?progress env =
  List.map
    (fun (e : Corpus.entry) ->
      let prog = Fuzzer.program_of_seed ~seed:e.Corpus.seed ~depth:e.Corpus.depth ~profile:e.Corpus.profile in
      let o = check_program env ~name:e.Corpus.name prog in
      (match progress with None -> () | Some f -> f ~name:e.Corpus.name o);
      o)
    Corpus.all
