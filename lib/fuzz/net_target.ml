module Np = Sm_sim.Netpipe
module Rng = Sm_util.Det_rng

type spec =
  { drop : float
  ; dup : float
  ; delay : float
  ; reorder : float
  }

let no_faults = { drop = 0.; dup = 0.; delay = 0.; reorder = 0. }
let default_faults = { drop = 0.05; dup = 0.05; delay = 0.10; reorder = 0.10 }
let lossless s = s.drop = 0. && s.dup = 0. && s.delay = 0. && s.reorder = 0.

(* One scenario: a few client connections, each driven single-threadedly —
   connect, accept, a burst of sends (some after an early close, to hit the
   closed-connection drop path), then drain the server end.  Single-threaded
   on purpose: the only concurrency Netpipe itself needs is in its queues,
   and a sequential driver makes the whole observation (message lists and
   stats) a pure function of the seed. *)
let scenario ~seed ~faults =
  let rng = Rng.create ~seed in
  let hook_drops = ref 0 in
  Np.reset_stats ();
  Np.on_dropped_send (Some (fun _ -> incr hook_drops));
  Np.set_faults
    (if lossless faults then None
     else
       Some
         (Np.Faults.make ~drop:faults.drop ~dup:faults.dup ~delay:faults.delay
            ~reorder:faults.reorder ~seed:(Int64.logxor seed 0x6e657470L) ()));
  Fun.protect
    ~finally:(fun () ->
      Np.set_faults None;
      Np.on_dropped_send None)
    (fun () ->
      let listener = Np.listen () in
      let nconns = 1 + Rng.int rng ~bound:3 in
      let expected_closed = ref 0 in
      let conns =
        List.init nconns (fun ci ->
            let client = Np.connect listener in
            let server =
              match Np.accept listener with
              | Some c -> c
              | None -> failwith "accept returned None on a live listener"
            in
            let nmsgs = 5 + Rng.int rng ~bound:20 in
            let cut = if Rng.bool rng then Some (Rng.int rng ~bound:nmsgs) else None in
            (* every post-cut send is exactly one closed-connection drop,
               fault plane or not — the strengthened conservation law *)
            (match cut with Some c -> expected_closed := !expected_closed + (nmsgs - c) | None -> ());
            let sent = ref [] in
            for i = 0 to nmsgs - 1 do
              (match cut with Some c when i = c -> Np.close client | _ -> ());
              let msg = Printf.sprintf "c%d-m%d" ci i in
              (match cut with Some c when i >= c -> () | _ -> sent := msg :: !sent);
              Np.send client msg
            done;
            if cut = None then Np.close client;
            let received = ref [] in
            let rec drain () =
              match Np.recv server with
              | Some m ->
                received := m :: !received;
                drain ()
              | None -> ()
            in
            drain ();
            (List.rev !sent, List.rev !received))
      in
      Np.shutdown listener;
      (conns, Np.stats (), !hook_drops, !expected_closed))

let check ?(faults = no_faults) ~seed () =
  let conns, stats, hook_drops, expected_closed = scenario ~seed ~faults in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let total_received = List.fold_left (fun acc (_, r) -> acc + List.length r) 0 conns in
  if stats.Np.delivered + stats.Np.dropped_closed
     <> stats.Np.sends + stats.Np.duplicated - stats.Np.dropped_fault
  then
    fail "conservation violated: delivered %d + closed %d <> sends %d + dup %d - drop %d"
      stats.Np.delivered stats.Np.dropped_closed stats.Np.sends stats.Np.duplicated
      stats.Np.dropped_fault
  else if hook_drops <> stats.Np.dropped_closed then
    fail "on_dropped_send fired %d times for %d closed-connection drops" hook_drops
      stats.Np.dropped_closed
  else if stats.Np.dropped_closed <> expected_closed then
    fail "%d sends landed after a close but dropped_closed says %d" expected_closed
      stats.Np.dropped_closed
  else if total_received <> stats.Np.delivered then
    fail "received %d messages but delivered counter says %d" total_received stats.Np.delivered
  else if
    List.exists
      (fun (sent, received) -> List.exists (fun m -> not (List.mem m sent)) received)
      conns
  then fail "received a message that was never sent (before the early close)"
  else if lossless faults && List.exists (fun (sent, received) -> received <> sent) conns then
    fail "fault-free run is not exact FIFO"
  else begin
    let buf = Buffer.create 256 in
    List.iteri
      (fun i (sent, received) ->
        Buffer.add_string buf
          (Printf.sprintf "conn %d: sent %d received [%s]\n" i (List.length sent)
             (String.concat ";" received)))
      conns;
    Buffer.add_string buf
      (Printf.sprintf "stats: s%d d%d dc%d df%d dup%d del%d ro%d" stats.Np.sends
         stats.Np.delivered stats.Np.dropped_closed stats.Np.dropped_fault stats.Np.duplicated
         stats.Np.delayed stats.Np.reordered);
    Ok (Digest.to_hex (Digest.string (Buffer.contents buf)))
  end

let check_deterministic ?faults ~seed () =
  match (check ?faults ~seed (), check ?faults ~seed ()) with
  | Error e, _ | _, Error e -> Error e
  | Ok a, Ok b ->
    if a = b then Ok ()
    else Error (Printf.sprintf "fault decisions are not seed-deterministic: %s <> %s" a b)
