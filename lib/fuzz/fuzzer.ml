module Rng = Sm_util.Det_rng

type report =
  { seed : int64
  ; depth : int
  ; profile : Program.profile
  ; mutate : Sm_check.Mutate.kind option
  ; failure : Oracle.failure
  ; program : Program.t
  ; shrunk : Program.t
  ; shrink_steps : int
  ; lint : string option
  }

type outcome =
  | Passed
  | Failed of report

let program_of_seed ~seed ~depth ~profile =
  Program.generate (Rng.create ~seed) ~depth ~profile

let fuzz_one ?mutate ?runs ?(lint = false) env ~seed ~depth ~profile () =
  let program = program_of_seed ~seed ~depth ~profile in
  match Oracle.check ?mutate ?runs env program with
  | Ok () -> Passed
  | Error failure ->
    let focus = failure.Oracle.oracle in
    (* Shrink against the *failing* oracle only: one oracle per candidate
       keeps shrinking fast, and requiring the same oracle name means the
       minimized program witnesses the original bug, not a new one. *)
    let fails scripts =
      match
        Oracle.check ~focus ?mutate ~runs:2 env { Program.scripts = Array.of_list scripts }
      with
      | Error f -> f.Oracle.oracle = focus
      | Ok () -> false
      | exception _ -> false
    in
    let shrunk, shrink_steps =
      Sm_check.Shrink.minimize ~fails ~shrink_elt:Program.shrink_step
        (Array.to_list program.Program.scripts)
    in
    let shrunk = { Program.scripts = Array.of_list shrunk } in
    (* The static pre-pass verdict rides along in the report: a dynamic
       failure on a program sm-lint already flags (any-merge taint, pinned
       merge-order) triages very differently from one on a clean program. *)
    let lint =
      if lint then Some (Sm_lint.Lint.summary (Sm_lint.Lint.analyze shrunk)) else None
    in
    Failed { seed; depth; profile; mutate; failure; program; shrunk; shrink_steps; lint }

let mutate_name = function None -> "none" | Some k -> Sm_check.Mutate.to_string k

let pp_report ppf r =
  Format.fprintf ppf "sm-fuzz failure report v1@.";
  Format.fprintf ppf "seed: 0x%Lx@." r.seed;
  Format.fprintf ppf "depth: %d@." r.depth;
  Format.fprintf ppf "profile: %s@." (Program.profile_to_string r.profile);
  Format.fprintf ppf "mutate: %s@." (mutate_name r.mutate);
  Format.fprintf ppf "oracle: %s@." r.failure.Oracle.oracle;
  Format.fprintf ppf "detail: %s@." r.failure.Oracle.detail;
  Format.fprintf ppf "steps: %d -> %d (%d shrink moves)@." (Program.size r.program)
    (Program.size r.shrunk) r.shrink_steps;
  (match r.lint with
  | None -> ()
  | Some s ->
    Format.fprintf ppf "-- static analysis --@.";
    Format.fprintf ppf "sm-lint: %s@." s);
  Format.fprintf ppf "-- shrunk program --@.";
  Program.pp ppf r.shrunk

let report_to_string r = Format.asprintf "%a" pp_report r

type summary =
  { seeds : int
  ; failed : report list
  }

let run_seeds ?mutate ?runs ?lint ?progress env ~seed_base ~seeds ~depth ~profile () =
  let failed = ref [] in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed_base (Int64.of_int i) in
    let outcome = fuzz_one ?mutate ?runs ?lint env ~seed ~depth ~profile () in
    (match outcome with Passed -> () | Failed r -> failed := r :: !failed);
    match progress with None -> () | Some f -> f ~seed outcome
  done;
  { seeds; failed = List.rev !failed }
