type entry =
  { name : string
  ; seed : int64
  ; depth : int
  ; profile : Program.profile
  ; mutate : Sm_check.Mutate.kind option
  ; expect : string option
  }

(* Seed 0x5 at depth 3 happens to generate a program whose text-edit bursts
   expose all four transform mutations — including Reverse, which needs a
   range delete split by a concurrent insert and is by far the rarest. *)
let mutation_seed = 0x5L

let all =
  [ { name = "clean-det"
    ; seed = 0x1L
    ; depth = 3
    ; profile = Program.det_profile
    ; mutate = None
    ; expect = None
    }
  ; { name = "clean-full"
    ; seed = 0x2L
    ; depth = 3
    ; profile = Program.full_profile
    ; mutate = None
    ; expect = None
    }
  ; { name = "catches-tie-bias"
    ; seed = mutation_seed
    ; depth = 3
    ; profile = Program.det_profile
    ; mutate = Some Sm_check.Mutate.Tie_bias
    ; expect = Some "differential"
    }
  ; { name = "catches-identity"
    ; seed = mutation_seed
    ; depth = 3
    ; profile = Program.det_profile
    ; mutate = Some Sm_check.Mutate.Identity
    ; expect = Some "differential"
    }
  ; { name = "catches-drop-last"
    ; seed = mutation_seed
    ; depth = 3
    ; profile = Program.det_profile
    ; mutate = Some Sm_check.Mutate.Drop_last
    ; expect = Some "differential"
    }
  ; { name = "catches-reverse"
    ; seed = mutation_seed
    ; depth = 3
    ; profile = Program.det_profile
    ; mutate = Some Sm_check.Mutate.Reverse
    ; expect = Some "differential"
    }
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let check ?runs env e =
  match
    Fuzzer.fuzz_one ?mutate:e.mutate ?runs env ~seed:e.seed ~depth:e.depth ~profile:e.profile ()
  with
  | Fuzzer.Passed as o -> (
    match e.expect with
    | None -> Ok o
    | Some oracle ->
      Error (Printf.sprintf "%s: expected a %s failure but every oracle passed" e.name oracle))
  | Fuzzer.Failed r as o -> (
    match e.expect with
    | Some oracle when oracle = r.Fuzzer.failure.Oracle.oracle -> Ok o
    | Some oracle ->
      Error
        (Printf.sprintf "%s: expected a %s failure but got [%s] %s" e.name oracle
           r.Fuzzer.failure.Oracle.oracle r.Fuzzer.failure.Oracle.detail)
    | None ->
      Error
        (Printf.sprintf "%s: expected a clean pass but got [%s] %s" e.name
           r.Fuzzer.failure.Oracle.oracle r.Fuzzer.failure.Oracle.detail))
