(** The network fault target: fuzz {!Sm_sim.Netpipe} under its own fault
    plane and check message conservation.

    A seeded scenario opens a listener, runs a server thread that drains
    every accepted connection, and drives a few client connections through
    sends, early closes (to exercise the closed-connection drop path and its
    {!Sm_sim.Netpipe.on_dropped_send} hook), and a final drain.  With faults
    installed the checks are conservation laws over
    {!Sm_sim.Netpipe.stats} — delivery accounting must balance exactly even
    under drop/dup/delay/reorder — plus determinism of the fault decisions
    themselves (same seed, same stats).  Without faults the check sharpens
    to exact FIFO delivery. *)

type spec =
  { drop : float
  ; dup : float
  ; delay : float
  ; reorder : float
  }

val no_faults : spec
val default_faults : spec  (** 5% drop, 5% dup, 10% delay, 10% reorder *)

val check : ?faults:spec -> seed:int64 -> unit -> (string, string) result
(** Run the scenario once; [Ok digest] summarizes everything observed
    (received messages per connection + final stats), [Error detail] names
    the violated conservation law.  The digest is a pure function of [seed]
    and [faults] — the runner asserts that by running twice. *)

val check_deterministic : ?faults:spec -> seed:int64 -> unit -> (unit, string) result
(** {!check} twice; also fails when the two digests differ. *)
