module Rt = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace
module Obs = Sm_obs

type failure =
  { oracle : string
  ; detail : string
  }

let pp_failure ppf { oracle; detail } = Format.fprintf ppf "[%s] %s" oracle detail

let oracle_names =
  [ "crash"
  ; "differential"
  ; "determinism"
  ; "compaction"
  ; "cow"
  ; "rope"
  ; "detsan"
  ; "trace"
  ; "replay"
  ]

type env =
  { exec2 : Sm_core.Executor.t
  ; exec1 : Sm_core.Executor.t
  }

let with_env f =
  let exec2 = Sm_core.Executor.create ~domains:2 () in
  let exec1 = Sm_core.Executor.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () ->
      Sm_core.Executor.shutdown exec2;
      Sm_core.Executor.shutdown exec1)
    (fun () -> f { exec2; exec1 })

let threaded_executor env = env.exec2

let short d = if String.length d > 16 then String.sub d 0 16 else d

let coop_digest keys prog =
  Rt.Coop.run (fun ctx ->
      Interp.run keys prog ctx;
      Ws.digest (Rt.workspace ctx))

(* Each oracle returns [Ok ()] or the failure; [check] sequences them.  The
   [fail] formatter keeps details one-line so reports stay greppable. *)
let fail oracle fmt = Format.kasprintf (fun detail -> Error { oracle; detail }) fmt

let crash_oracle env keys prog baseline =
  match baseline with
  | Error exn -> fail "crash" "cooperative run raised %s" (Printexc.to_string exn)
  | Ok _ -> (
    match Sm_core.Detcheck.digest_of_run ~executor:env.exec2 (Interp.run keys prog) with
    | (_ : string) -> Ok ()
    | exception exn -> fail "crash" "threaded run raised %s" (Printexc.to_string exn))

let differential_oracle prog baseline = function
  | None -> Ok ()
  | Some kind -> (
    let mutated = Interp.Keyset.mutated kind in
    match coop_digest mutated prog with
    | exception exn ->
      fail "differential" "mutated (%s) run raised %s" (Sm_check.Mutate.to_string kind)
        (Printexc.to_string exn)
    | d when d <> baseline ->
      fail "differential" "mutated (%s) digest %s <> clean %s" (Sm_check.Mutate.to_string kind)
        (short d) (short baseline)
    | _ -> Ok ())

let determinism_oracle env keys prog baseline ~runs =
  if Program.uses_any_merge prog then Ok ()
  else begin
    let threaded executor =
      Sm_core.Detcheck.digest_of_run ~executor (Interp.run keys prog)
    in
    let rec go i =
      if i >= runs then Ok ()
      else
        let d = threaded (if i = runs - 1 then env.exec1 else env.exec2) in
        if d <> baseline then
          fail "determinism" "threaded run %d digest %s <> coop %s" i (short d) (short baseline)
        else go (i + 1)
    in
    go 0
  end

let compaction_oracle keys prog baseline =
  let was = Ws.compaction_enabled () in
  let d =
    Fun.protect
      ~finally:(fun () -> Ws.set_compaction was)
      (fun () ->
        Ws.set_compaction false;
        coop_digest keys prog)
  in
  if d <> baseline then
    fail "compaction" "compaction-off digest %s <> on %s" (short d) (short baseline)
  else Ok ()

(* Differential over the workspace representation: the copy-on-write sharing
   (default) and the paper's literal deep-copy-per-spawn baseline must be
   observationally identical — same final states, hence byte-identical
   digests.  Mirrors [compaction_oracle]'s flag save/flip/restore. *)
let cow_oracle keys prog baseline =
  let was = Ws.cow_enabled () in
  let d =
    Fun.protect
      ~finally:(fun () -> Ws.set_cow was)
      (fun () ->
        Ws.set_cow (not was);
        coop_digest keys prog)
  in
  if d <> baseline then
    fail "cow" "cow-%s digest %s <> cow-%s %s"
      (if was then "off" else "on")
      (short d)
      (if was then "on" else "off")
      (short baseline)
  else Ok ()

(* Differential over the text representation: the chunked rope (default)
   and the flat-string baseline must be observationally identical — digests
   render states through the same escaped form, so a mismatch is a rope
   apply/transform/print divergence.  Same flag flip-and-restore shape as
   [cow_oracle]. *)
let rope_oracle keys prog baseline =
  let was = Sm_ot.Op_text.rope_enabled () in
  let d =
    Fun.protect
      ~finally:(fun () -> Sm_ot.Op_text.set_rope was)
      (fun () ->
        Sm_ot.Op_text.set_rope (not was);
        coop_digest keys prog)
  in
  if d <> baseline then
    fail "rope" "rope-%s digest %s <> rope-%s %s"
      (if was then "off" else "on")
      (short d)
      (if was then "on" else "off")
      (short baseline)
  else Ok ()

let detsan_oracle env keys prog =
  if Program.uses_any_merge prog then Ok ()
  else begin
    let hazards, _digest = Sm_check.Detsan.run ~executor:env.exec2 (Interp.run keys prog) in
    match hazards with
    | [] -> Ok ()
    | h :: _ -> fail "detsan" "%a" Sm_check.Detsan.pp_hazard h
  end

let collect_trace keys prog =
  let sink, read = Obs.Sink.collecting () in
  let level = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset_sink ();
      Obs.set_level level)
    (fun () ->
      Obs.set_level Obs.Info;
      Obs.set_sink sink;
      ignore (coop_digest keys prog);
      read ())

let trace_oracle keys prog =
  let a = collect_trace keys prog in
  let b = collect_trace keys prog in
  match Obs.Trace_diff.compare_events a b with
  | Obs.Trace_diff.Equal _ -> Ok ()
  | Obs.Trace_diff.Diverged _ as r -> fail "trace" "%a" Obs.Trace_diff.pp_result r

let replay_oracle env keys prog =
  if not (Program.uses_any_merge prog) || Program.uses_clone prog then Ok ()
  else begin
    let trace = Rt.Trace.create () in
    let recorded =
      Rt.run ~executor:env.exec2 ~record:trace (fun ctx ->
          Interp.run keys prog ctx;
          Ws.digest (Rt.workspace ctx))
    in
    match
      Rt.run ~executor:env.exec2 ~replay:trace (fun ctx ->
          Interp.run keys prog ctx;
          Ws.digest (Rt.workspace ctx))
    with
    | replayed when replayed <> recorded ->
      fail "replay" "replayed digest %s <> recorded %s (%d choices)" (short replayed)
        (short recorded) (Rt.Trace.length trace)
    | exception exn -> fail "replay" "replaying raised %s" (Printexc.to_string exn)
    | _ -> Ok ()
  end

let check ?focus ?(runs = 3) ?mutate env prog =
  let keys = Interp.Keyset.default () in
  let baseline = try Ok (coop_digest keys prog) with exn -> Error exn in
  let want name = match focus with None -> true | Some f -> f = name in
  let oracles base =
    [ ("crash", fun () -> crash_oracle env keys prog baseline)
    ; ("differential", fun () -> differential_oracle prog base mutate)
    ; ("determinism", fun () -> determinism_oracle env keys prog base ~runs)
    ; ("compaction", fun () -> compaction_oracle keys prog base)
    ; ("cow", fun () -> cow_oracle keys prog base)
    ; ("rope", fun () -> rope_oracle keys prog base)
    ; ("detsan", fun () -> detsan_oracle env keys prog)
    ; ("trace", fun () -> trace_oracle keys prog)
    ; ("replay", fun () -> replay_oracle env keys prog)
    ]
  in
  match baseline with
  | Error exn when want "crash" ->
    fail "crash" "cooperative run raised %s" (Printexc.to_string exn)
  | Error _ -> Ok () (* focused elsewhere: a crashing program can't exhibit it *)
  | Ok base ->
    List.fold_left
      (fun acc (name, oracle) ->
        match acc with
        | Error _ -> acc
        | Ok () -> if want name then oracle () else Ok ())
      (Ok ()) (oracles base)
