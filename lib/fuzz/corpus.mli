(** The checked-in seed corpus: configurations with a known, pinned outcome.

    Each entry is a complete {!Fuzzer.fuzz_one} configuration plus the
    outcome it must produce — [expect = None] for seeds that pass every
    oracle, [Some oracle] for seeds whose (usually mutation-seeded) failure
    the fuzzer must find and shrink.  [sm-fuzz corpus --run] re-checks every
    entry and the test suite replays one byte-for-byte, so the corpus
    doubles as a regression pin on generator, oracles and shrinker. *)

type entry =
  { name : string
  ; seed : int64
  ; depth : int
  ; profile : Program.profile
  ; mutate : Sm_check.Mutate.kind option
  ; expect : string option  (** failing oracle name, [None] = must pass *)
  }

val all : entry list

val find : string -> entry option

val check : ?runs:int -> Oracle.env -> entry -> (Fuzzer.outcome, string) result
(** Run the entry and compare against [expect]; [Error] describes the
    mismatch ("expected differential failure but every oracle passed"). *)
