(** The fuzz-program interpreter: runs a {!Program.t} against the real
    Spawn/Merge runtime.

    Interpretation is {e total} and, for programs without any-merges,
    {e deterministic}: payload integers are reduced modulo the current
    state's bounds (list length, live-child count, tree arity), guards skip
    steps whose preconditions do not hold ([Sync] in the root, [Clone] from
    a non-pristine task, [Abort] with no live children), and every script
    ends with an explicit MergeAll loop so no children are left to the
    implicit merge — which keeps DetSan-clean a valid oracle. *)

(** The nine workspace keys a fuzz program operates on.  Keys are minted
    once per keyset (never inside a run — re-minting per run is the exact
    hazard DetSan flags) and key {e names} are fixed, so digests of runs
    over different keysets are comparable — the differential oracle merges
    that fact with {!Sm_check.Mutate.wrap_data}'s name-preservation. *)
module Keyset : sig
  type t

  val default : unit -> t
  (** The clean keyset (memoized). *)

  val mutated : Sm_check.Mutate.kind -> t
  (** A keyset whose nine [Data] modules carry the mutated transform
      (memoized per kind). *)

  val counter_value : Sm_mergeable.Workspace.t -> t -> int
  (** The fuzz counter's current value — what generated [?validate]
      predicates judge. *)

  val queue_value : Sm_mergeable.Workspace.t -> t -> int list
  (** The fuzz queue's current value, front first — lets tests pin merge
      serialization order (the [queue-push-order] known issue) through the
      fuzz interpreter. *)
end

val init : Keyset.t -> Sm_mergeable.Workspace.t -> unit
(** Bind all nine keys to canonical initial states (root task only). *)

val run : ?task_budget:int -> Keyset.t -> Program.t -> Sm_core.Runtime.ctx -> unit
(** Initialize the workspace and execute script 0 as the given task.
    [task_budget] (default 256) is a hard cap on spawned+cloned tasks — a
    backstop for hand-written [--program] inputs; generator output stays far
    below it, so the cap never perturbs a generated run. *)
