(** The distributed fault target: fuzz the {!Sm_dist.Coordinator} /
    {!Sm_dist.Node} path under message-timing chaos.

    A seeded scenario spawns a random mix of registered remote tasks
    (counter adds, list appends, register assigns, multi-round sync loops)
    over a random node count, merges deterministically, and digests the
    coordinator's workspace.  The oracle is chaos invariance: the digest
    must be identical with the upstream chaos relay
    ({!Sm_dist.Coordinator.Chaos}) off, on, and on again with a different
    chaos seed — [merge_all]'s per-task buffering makes message timing
    unobservable, which is precisely the paper's determinism claim
    transported to the distributed runtime. *)

val digest : ?chaos_seed:int64 -> seed:int64 -> unit -> string
(** Run the scenario once on a fresh cluster (with the chaos relay when
    [chaos_seed] is given) and return the final workspace digest. *)

val check : seed:int64 -> unit -> (string, string) result
(** Three runs — no chaos, chaos, chaos with another seed — and compare.
    [Ok digest] on agreement, [Error detail] naming the diverging pair
    otherwise. *)
