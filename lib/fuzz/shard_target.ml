module Load = Sm_shard.Load
module Service = Sm_shard.Service
module Rng = Sm_util.Det_rng
module Obs = Sm_obs

(* Pre-minted document set, shared by every scenario in the process: the
   cross-scheduler and Detsan checks run workloads under live observation,
   and re-minting keys there would itself be the key-in-task hazard. *)
let docs =
  Service.make_docs
    [ `Text ("fuzz/alpha", "alpha document\n")
    ; `Text ("fuzz/beta", "")
    ; `Tree ("fuzz/tree", Service.Tree.Op.[ branch "root" [ leaf "a"; leaf "b" ] ])
    ; `Text ("fuzz/gamma", "gamma")
    ]

type scenario =
  { shards : int
  ; clients : int
  ; ops : int
  ; epoch_ticks : int
  ; faults : Load.faults option
  ; disconnect : float
  }

let fault_levels =
  [ None
  ; Some { Load.drop = 0.05; dup = 0.05; delay = 0.10; reorder = 0.10 }
  ; Some { Load.drop = 0.15; dup = 0.10; delay = 0.15; reorder = 0.10 }
  ]

let scenario_of_seed seed =
  let rng = Rng.create ~seed in
  { shards = 1 + Rng.int rng ~bound:4
  ; clients = 2 + Rng.int rng ~bound:10
  ; ops = 5 + Rng.int rng ~bound:20
  ; epoch_ticks = 1 + Rng.int rng ~bound:5
  ; faults = Rng.pick rng fault_levels
  ; disconnect = Rng.pick rng [ 0.; 0.; 0.01; 0.05 ]
  }

let scenario_to_string s =
  Printf.sprintf "shards=%d clients=%d ops=%d epoch_ticks=%d faults=%s disconnect=%.2f" s.shards
    s.clients s.ops s.epoch_ticks
    (match s.faults with
    | None -> "none"
    | Some f -> Printf.sprintf "drop%.2f/dup%.2f/delay%.2f/reorder%.2f" f.drop f.dup f.delay f.reorder)
    s.disconnect

let profile_of ~seed s =
  { Load.default with
    seed
  ; shards = s.shards
  ; clients = s.clients
  ; ops_per_client = s.ops
  ; epoch_ticks = s.epoch_ticks
  ; faults = s.faults
  ; disconnect_prob = s.disconnect
  ; max_ticks = 50_000
  }

(* The oracles, in order of blame precision:
   1. convergence — every client view digest equals its shard's digest;
   2. DetSan-clean — the run triggers no determinism hazards;
   3. reproducibility — a second identical run matches digests and ticks;
   4. mode invariance — a snapshot-mode run reaches the same digests
      (delta journals and full snapshots describe the same states). *)
let check_scenario ~seed s =
  let profile = profile_of ~seed s in
  let r1, hazards = Sm_check.Detsan.observe (fun () -> Load.run ~docs profile) in
  if not r1.Load.converged then
    Error
      (Printf.sprintf "did not converge in %d ticks (%d ops placed of %d, %d batches merged%s)"
         r1.Load.ticks r1.Load.ops_applied (s.clients * s.ops) r1.Load.edits_merged
         (match r1.Load.failures with
         | [] -> ""
         | (who, why) :: _ -> Printf.sprintf "; %s: %s" who why))
  else
    match hazards with
    | h :: _ -> Error (Format.asprintf "detsan: %a" Sm_check.Detsan.pp_hazard h)
    | [] ->
      let r2 = Load.run ~docs profile in
      if r2.Load.shard_digests <> r1.Load.shard_digests then
        Error "rerun with the same seed changed the shard digests"
      else if r2.Load.ticks <> r1.Load.ticks then
        Error
          (Printf.sprintf "rerun with the same seed changed the tick count (%d vs %d)"
             r1.Load.ticks r2.Load.ticks)
      else
        let snap = Load.run ~docs { profile with mode = `Snapshot } in
        if snap.Load.shard_digests <> r1.Load.shard_digests then
          Error "snapshot-mode run diverged from the delta-mode digests"
        else
          Ok (String.concat "," (List.map (fun d -> String.sub d 0 (min 8 (String.length d))) r1.Load.shard_digests))

let check ~seed () = check_scenario ~seed (scenario_of_seed seed)

(* Greedy first-improvement shrink over the scenario, mirroring
   Sm_check.Shrink's discipline: deterministic candidate order, accept a
   candidate only if it still fails (any oracle), repeat to fixpoint. *)
let shrink_candidates s =
  List.concat
    [ (if s.clients > 2 then [ { s with clients = max 2 (s.clients / 2) }; { s with clients = s.clients - 1 } ] else [])
    ; (if s.ops > 1 then [ { s with ops = max 1 (s.ops / 2) }; { s with ops = s.ops - 1 } ] else [])
    ; (if s.shards > 1 then [ { s with shards = 1 } ] else [])
    ; (if s.disconnect > 0. then [ { s with disconnect = 0. } ] else [])
    ; (if s.faults <> None then [ { s with faults = None } ] else [])
    ; (if s.epoch_ticks > 1 then [ { s with epoch_ticks = 1 } ] else [])
    ]

let shrink ~seed s =
  let steps = ref 0 in
  let rec go s =
    let next =
      List.find_opt
        (fun c -> match check_scenario ~seed c with Error _ -> true | Ok _ -> false)
        (shrink_candidates s)
    in
    match next with
    | Some c ->
      incr steps;
      go c
    | None -> s
  in
  let s' = go s in
  (s', !steps)

type outcome =
  | Passed of string  (** digest summary *)
  | Failed of
      { detail : string
      ; scenario : scenario
      ; shrunk : scenario
      ; shrink_steps : int
      ; flight : (string * string list) list
      ; flight_deterministic : bool
      }

(* The post-mortem: replay the shrunk failing scenario once more with fresh
   rings and take the flight dump — the hazard-triggered snapshot when the
   failure path fired one (its rings are frozen at the moment of the nack /
   chaos resume), the end-of-run rings otherwise (e.g. a plain convergence
   miss).  Replaying twice checks the dump itself is deterministic: the
   whole run is a function of the seed and dumps are structural, so the two
   captures must be byte-identical — if they are not, the post-mortem is
   untrustworthy and the report says so. *)
let flight_of ~seed s =
  let capture () =
    Obs.Flight_recorder.reset ();
    ignore (check_scenario ~seed s);
    match Obs.Flight_recorder.last_trigger () with
    | Some (_reason, dumps) -> dumps
    | None -> Obs.Flight_recorder.dump_all ()
  in
  let d1 = capture () in
  let d2 = capture () in
  (d1, d1 = d2)

let fuzz_one ~seed () =
  let s = scenario_of_seed seed in
  match check_scenario ~seed s with
  | Ok digest -> Passed digest
  | Error detail ->
    let shrunk, shrink_steps = shrink ~seed s in
    let flight, flight_deterministic = flight_of ~seed shrunk in
    Failed { detail; scenario = s; shrunk; shrink_steps; flight; flight_deterministic }
