(** The shard-service fuzz target: seeded editor fleets under chaos, with
    an all-replica digest-convergence oracle.

    A seed denotes a {!scenario} (shard count, fleet size, session length,
    epoch width, Netpipe fault level, crash/resume chaos); the scenario runs
    on {!Sm_shard.Load} over a pre-minted document set and must satisfy, in
    order: convergence (every client view digest equals its shard's
    authoritative digest), DetSan cleanliness, seed-reproducibility
    (identical digests and tick count on a rerun), and mode invariance
    (a snapshot-mode run reaches the same digests as delta sync).

    Failures shrink greedily over the scenario — fewer clients, fewer ops,
    one shard, chaos off, tighter epochs — to the smallest configuration
    that still fails, mirroring {!Sm_check.Shrink}'s first-improvement
    discipline. *)

type scenario =
  { shards : int
  ; clients : int
  ; ops : int
  ; epoch_ticks : int
  ; faults : Sm_shard.Load.faults option
  ; disconnect : float
  }

val scenario_of_seed : int64 -> scenario
val scenario_to_string : scenario -> string

val check_scenario : seed:int64 -> scenario -> (string, string) result
(** [Ok digest_summary] or [Error detail] naming the violated oracle. *)

val check : seed:int64 -> unit -> (string, string) result
(** {!check_scenario} on the seed's own scenario. *)

val shrink : seed:int64 -> scenario -> scenario * int
(** Minimize a failing scenario; returns it with the accepted-step count. *)

type outcome =
  | Passed of string
  | Failed of
      { detail : string
      ; scenario : scenario
      ; shrunk : scenario
      ; shrink_steps : int
      ; flight : (string * string list) list
        (** flight-recorder post-mortem of the shrunk failure: per-lane
            structural dump lines (the hazard-triggered snapshot when one
            fired, the end-of-run rings otherwise) *)
      ; flight_deterministic : bool
        (** the dump replayed byte-identically on a second run of the
            shrunk scenario *)
      }

val fuzz_one : seed:int64 -> unit -> outcome
(** {!check_scenario}, then on failure {!shrink} and replay the shrunk
    scenario to capture its flight-recorder dump. *)
