module D = Sm_dist.Coordinator
module Reg = Sm_dist.Registry
module Ws = Sm_mergeable.Workspace
module Rng = Sm_util.Det_rng

(* One registry for the whole process, as in an MPI binary: coordinator and
   nodes share it by construction. *)
let registry = Reg.create ()

module Counter = Sm_dist.Codable.Counter
module Ilist = Sm_dist.Codable.Make_list (Sm_dist.Codable.Int_elt)
module Sreg = Sm_dist.Codable.Make_register (Sm_dist.Codable.String_elt)

let kc = Reg.value registry ~name:"fuzz.counter" (module Counter)
let kl = Reg.value registry ~name:"fuzz.list" (module Ilist)
let kr = Reg.value registry ~name:"fuzz.register" (module Sreg)

let t_add =
  Reg.task registry ~name:"fuzz-add" (fun ctx ->
      Reg.update ctx kc (Sm_ot.Op_counter.add (int_of_string (Reg.argument ctx))))

let t_append =
  Reg.task registry ~name:"fuzz-append" (fun ctx ->
      let x = int_of_string (Reg.argument ctx) in
      Reg.update ctx kl (Ilist.Op.ins (List.length (Reg.read ctx kl)) x))

let t_assign =
  Reg.task registry ~name:"fuzz-assign" (fun ctx ->
      Reg.update ctx kr (Sreg.Op.assign (Reg.argument ctx)))

let t_sync_rounds =
  Reg.task registry ~name:"fuzz-sync-rounds" (fun ctx ->
      let rounds = int_of_string (Reg.argument ctx) in
      for _ = 1 to rounds do
        Reg.update ctx kc (Sm_ot.Op_counter.add 1);
        ignore (Reg.sync ctx)
      done)

let digest ?chaos_seed ~seed () =
  let rng = Rng.create ~seed in
  let nodes = 2 + Rng.int rng ~bound:2 in
  let ntasks = 3 + Rng.int rng ~bound:6 in
  let spawns =
    List.init ntasks (fun i ->
        match Rng.int rng ~bound:4 with
        | 0 -> (t_add, string_of_int (1 + Rng.int rng ~bound:9))
        | 1 -> (t_append, string_of_int i)
        | 2 -> (t_assign, Printf.sprintf "r%d" (Rng.int rng ~bound:8))
        | _ -> (t_sync_rounds, string_of_int (1 + Rng.int rng ~bound:3)))
  in
  let chaos =
    Option.map (fun seed -> D.Chaos.make ~hold_prob:0.35 ~max_hold:5 ~seed ()) chaos_seed
  in
  let cluster = D.cluster ~nodes ?chaos registry in
  Fun.protect
    ~finally:(fun () -> D.shutdown cluster)
    (fun () ->
      D.run cluster (fun ctx ->
          let ws = D.workspace ctx in
          Ws.init ws (Reg.workspace_key kc) 0;
          Ws.init ws (Reg.workspace_key kl) [];
          Ws.init ws (Reg.workspace_key kr) "initial";
          List.iter (fun (name, argument) -> ignore (D.spawn ctx name ~argument)) spawns;
          while D.live_tasks ctx > 0 do
            D.merge_all ctx
          done;
          Ws.digest ws))

let check ~seed () =
  let plain = digest ~seed () in
  let chaotic = digest ~chaos_seed:(Int64.logxor seed 0x63686130L) ~seed () in
  let chaotic' = digest ~chaos_seed:(Int64.logxor seed 0x63686131L) ~seed () in
  if plain <> chaotic then
    Error (Printf.sprintf "chaos changed the digest: %s <> %s" plain chaotic)
  else if plain <> chaotic' then
    Error (Printf.sprintf "chaos (second seed) changed the digest: %s <> %s" plain chaotic')
  else Ok plain
