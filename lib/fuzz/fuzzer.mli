(** The fuzz loop: seed → program → oracles → shrink → replayable report.

    Everything here is a pure function of its parameters: {!program_of_seed}
    derives the program from the seed alone, the oracles are deterministic,
    and shrinking is greedy first-improvement over a deterministic candidate
    order — so {!fuzz_one} on the same inputs produces the same outcome, and
    a failure report replays byte-for-byte from its header
    ([sm-fuzz replay --seed S] asserts exactly that). *)

type report =
  { seed : int64
  ; depth : int
  ; profile : Program.profile
  ; mutate : Sm_check.Mutate.kind option
  ; failure : Oracle.failure  (** the original program's first failure *)
  ; program : Program.t  (** as generated *)
  ; shrunk : Program.t  (** minimized, still failing [failure.oracle] *)
  ; shrink_steps : int  (** accepted shrink moves *)
  ; lint : string option
    (** {!Sm_lint.Lint.summary} of the shrunk program when the run was
        started with [~lint:true] — the static pre-pass verdict that
        triages the dynamic failure (flagged-as-nondeterministic vs
        statically clean). *)
  }

type outcome =
  | Passed
  | Failed of report

val program_of_seed : seed:int64 -> depth:int -> profile:Program.profile -> Program.t
(** The program seed [seed] denotes: a fresh {!Sm_util.Det_rng} fed to
    {!Program.generate}. *)

val fuzz_one :
  ?mutate:Sm_check.Mutate.kind ->
  ?runs:int ->
  ?lint:bool ->
  Oracle.env ->
  seed:int64 ->
  depth:int ->
  profile:Program.profile ->
  unit ->
  outcome
(** Generate, check every oracle, and on failure shrink with
    {!Sm_check.Shrink.minimize} focused on the failing oracle (candidates
    that fail a {e different} oracle are rejected, so the report's program
    still witnesses the original failure). *)

val report_to_string : report -> string
(** The canonical replay artifact: a deterministic text header
    (seed/depth/profile/mutate/oracle/detail/sizes) followed by the shrunk
    program in {!Program.to_string} form. *)

val pp_report : Format.formatter -> report -> unit

type summary =
  { seeds : int
  ; failed : report list  (** failing seeds in run order *)
  }

val run_seeds :
  ?mutate:Sm_check.Mutate.kind ->
  ?runs:int ->
  ?lint:bool ->
  ?progress:(seed:int64 -> outcome -> unit) ->
  Oracle.env ->
  seed_base:int64 ->
  seeds:int ->
  depth:int ->
  profile:Program.profile ->
  unit ->
  summary
(** Fuzz seeds [seed_base .. seed_base + seeds - 1] sequentially (the
    shared executors in {!Oracle.env} are not reentrant). *)
