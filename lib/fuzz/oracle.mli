(** The fuzzer's correctness oracles.

    Given a {!Program.t}, {!check} runs every applicable oracle and returns
    the first failure.  The cooperative scheduler's digest is the reference
    — [Coop] is deterministic even for any-merges, so every program has a
    canonical outcome — and the other oracles compare against it:

    - ["crash"]: the cooperative and threaded runs complete without raising.
    - ["differential"]: with [?mutate], the run over a
      {!Sm_check.Mutate.wrap_data}-mutated keyset digests {e identically} to
      the clean run (key names match, so digests are comparable).  A
      difference means the oracle {e caught} the transform bug — for a
      seeded mutation that is the expected failure the fuzzer then shrinks.
    - ["determinism"]: deterministic programs (no any-merges) digest
      identically across repeated threaded runs on 2-domain and 1-domain
      executors, all equal to the cooperative reference
      ({!Sm_core.Detcheck} with shared executors).
    - ["compaction"]: the digest is invariant under
      {!Sm_mergeable.Workspace.set_compaction} off.
    - ["cow"]: the digest is invariant under flipping
      {!Sm_mergeable.Workspace.set_cow} — copy-on-write sharing and the
      paper's literal deep-copy-per-spawn baseline are observationally
      identical.  (Run with [SM_COW=0] this checks the other direction:
      baseline process, COW run inside the oracle.)
    - ["rope"]: the digest is invariant under flipping
      {!Sm_ot.Op_text.set_rope} — the chunked-rope text backend and the
      flat-string baseline are observationally identical.  (Run with
      [SM_ROPE=0] this checks the other direction: flat process, rope run
      inside the oracle.)
    - ["detsan"]: deterministic programs run {!Sm_check.Detsan}-clean — the
      interpreter's merge epilogue and module-level keys make any hazard a
      real bug.
    - ["trace"]: two cooperative runs emit structurally equal Info-level
      event traces ({!Sm_obs.Trace_diff}).
    - ["replay"]: any-merge programs (without clones) record their threaded
      merge choices and replay to the same digest
      ({!Sm_core.Runtime.Trace}). *)

type failure =
  { oracle : string  (** which oracle, from {!oracle_names} *)
  ; detail : string  (** human-readable evidence (digests, hazard, diff) *)
  }

val pp_failure : Format.formatter -> failure -> unit

val oracle_names : string list
(** In the order {!check} runs them. *)

(** Shared executors: domain teardown costs a systhreads tick (~50ms), so
    one [env] is reused across every program of a fuzz run. *)
type env

val with_env : (env -> 'a) -> 'a
(** Create the executors, run, always shut them down. *)

val threaded_executor : env -> Sm_core.Executor.t
(** The shared 2-domain executor — what {!Agree} hands to
    {!Sm_check.Detsan.run} so the harness reuses this env's domains. *)

val coop_digest : Interp.Keyset.t -> Program.t -> string
(** One cooperative reference run's workspace digest — also the metered run
    the {!Agree} cost check observes [ot.transform_calls] around. *)

val check :
  ?focus:string ->
  ?runs:int ->
  ?mutate:Sm_check.Mutate.kind ->
  env ->
  Program.t ->
  (unit, failure) result
(** Run the applicable oracles in {!oracle_names} order and stop at the
    first failure.  [focus] restricts to the oracle of that name — what the
    shrinker uses so each candidate costs one oracle, not all nine.  [runs]
    (default 3) is the repetition count for the determinism oracle.
    [mutate] enables the differential oracle over that mutated keyset. *)
