module C = Sm_util.Codec

type t =
  { trace : int
  ; span : int
  ; parent : int
  }

(* Ids are derived purely from names, never from counters or clocks, so the
   same request in two runs (or under two executors) mints the same context
   — the property the stitched-tree determinism oracle rests on.  FNV-1a
   with a SplitMix64 finalizer (the Router's recipe) avalanches short
   similar names; ids are folded to 62 bits so they survive the Codec's
   OCaml-int varints on any platform. *)
let mix h =
  let open Int64 in
  let h = logxor h (shift_right_logical h 30) in
  let h = mul h 0xbf58476d1ce4e5b9L in
  let h = logxor h (shift_right_logical h 27) in
  let h = mul h 0x94d049bb133111ebL in
  logxor h (shift_right_logical h 31)

let id_of_string s = Int64.to_int (mix (Sm_util.Fnv.hash s)) land 0x3FFF_FFFF_FFFF_FFFF

let span_of ~trace label = id_of_string (Printf.sprintf "%x/%s" trace label)

let root label =
  let trace = id_of_string label in
  { trace; span = span_of ~trace label; parent = 0 }

let child t label = { trace = t.trace; span = span_of ~trace:t.trace label; parent = t.span }

let equal a b = a.trace = b.trace && a.span = b.span && a.parent = b.parent

let to_string t = Printf.sprintf "t%x:s%x:p%x" t.trace t.span t.parent

let of_string s =
  match String.split_on_char ':' s with
  | [ t; sp; p ]
    when String.length t > 1 && t.[0] = 't' && String.length sp > 1 && sp.[0] = 's'
         && String.length p > 1 && p.[0] = 'p' -> (
    let num field = int_of_string ("0x" ^ String.sub field 1 (String.length field - 1)) in
    match (num t, num sp, num p) with
    | trace, span, parent -> Some { trace; span; parent }
    | exception _ -> None)
  | _ -> None

let codec : t C.t =
  C.map
    (fun t -> (t.trace, t.span, t.parent))
    (fun (trace, span, parent) -> { trace; span; parent })
    (C.triple C.int C.int C.int)

(* The event-args embedding: contexts ride ordinary events, so the JSONL
   sinks, the structural differ and the wire codec all carry them with no
   schema change. *)
let arg_trace = "trace"
let arg_span = "span"
let arg_parent = "parent"

let args t =
  [ (arg_trace, Event.I t.trace); (arg_span, Event.I t.span); (arg_parent, Event.I t.parent) ]

let of_args args =
  let int name =
    match List.assoc_opt name args with Some (Event.I i) -> Some i | _ -> None
  in
  match (int arg_trace, int arg_span) with
  | Some trace, Some span ->
    Some { trace; span; parent = Option.value ~default:0 (int arg_parent) }
  | _ -> None

let of_event (e : Event.t) = of_args e.Event.args

let pp ppf t = Format.pp_print_string ppf (to_string t)
