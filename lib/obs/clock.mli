(** Process-wide event timestamps.

    Nanoseconds since the epoch, forced strictly increasing across every
    domain and thread (ties are resolved by bumping): two calls never return
    the same value, and a later call never returns a smaller one.  Resolution
    is whatever [gettimeofday] gives (~1 us), so treat differences below a
    microsecond as ordering, not duration. *)

val now_ns : unit -> int
