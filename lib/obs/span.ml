let begin_ ?(level = Verbosity.Debug) ?(args = []) ~task ~task_id name =
  if Verbosity.enabled level then
    Sink.emit (Event.make ~task ~task_id ~args:(("name", Event.S name) :: args) Event.Phase_begin)

let end_ ?(level = Verbosity.Debug) ?(args = []) ~task ~task_id name =
  if Verbosity.enabled level then
    Sink.emit (Event.make ~task ~task_id ~args:(("name", Event.S name) :: args) Event.Phase_end)

let with_ ?(level = Verbosity.Debug) ?(args = []) ?hist ~task ~task_id name f =
  let traced = Verbosity.enabled level in
  let timed = match hist with Some _ -> Metrics.is_enabled () | None -> false in
  if not (traced || timed) then f ()
  else begin
    if traced then
      Sink.emit (Event.make ~task ~task_id ~args:(("name", Event.S name) :: args) Event.Phase_begin);
    let t0 = if timed then Clock.now_ns () else 0 in
    Fun.protect
      ~finally:(fun () ->
        (match hist with
        | Some h when timed -> Metrics.observe_ns h ~since:t0
        | Some _ | None -> ());
        if traced then
          Sink.emit (Event.make ~task ~task_id ~args:[ ("name", Event.S name) ] Event.Phase_end))
      f
  end
