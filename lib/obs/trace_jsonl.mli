(** JSON-lines event export: one self-describing JSON object per event, one
    per line — greppable, streamable, and parseable back into {!Event.t}
    (the decoder is the round-trip test's oracle and the foundation for
    later record/replay tooling). *)

exception Decode_error of string

val arg_to_json : Event.arg -> Json.t

val arg_of_json : Json.t -> Event.arg
(** [Null] decodes as [F nan] (the printer's image of a nan float — see
    {!Json}).
    @raise Decode_error on list/object JSON. *)

val event_to_json : Event.t -> Json.t
val event_of_json : Json.t -> Event.t
(** @raise Decode_error on missing/ill-typed fields or unknown kinds. *)

val event_to_line : Event.t -> string
val event_of_line : string -> Event.t
(** @raise Decode_error on malformed JSON or schema violations. *)

val sink : out_channel -> Sink.t
(** Write each event as a line to the channel (mutex-serialized).  Flushing
    the sink flushes the channel; the channel is not closed. *)

val file_sink : string -> Sink.t
(** {!sink} on a fresh file; closing the sink closes the file. *)

val dir_sink : ?lane:(Event.t -> string) -> string -> Sink.t
(** Route each event to [dir/<lane e>.jsonl] (default lane: the emitting
    task's name, sanitized), creating [dir] and lane files on demand — a
    single-process run leaves the same lane-per-file layout a multi-process
    run does, ready for {!Trace_stitch.of_files}.  Closing the sink closes
    every lane file. *)

val events_of_channel : in_channel -> Event.t list

val fold : string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Stream a JSONL trace file through [f] one event at a time, skipping
    blank lines — constant memory in the trace length, so analysis passes
    ({!Trace_model.of_file}, the [sm-trace] CLI) never materialize the
    event list the way {!load} does.
    @raise Decode_error on malformed lines. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** {!fold} over an already-open channel (reads to [End_of_file]). *)

val load : string -> Event.t list
(** Read a JSONL trace file back, skipping blank lines.
    @raise Decode_error on malformed lines. *)
