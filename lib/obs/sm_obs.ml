(** The observability facade: [Sm_obs] re-exports every obs module and
    offers the two operations instrumentation sites actually use — the
    verbosity check and the emit.

    The intended site shape keeps the disabled path to one load+branch and
    allocates the event only when it will be consumed:

    {[
      if Sm_obs.on Sm_obs.Debug then
        Sm_obs.emit (Sm_obs.Event.make ~task ~task_id ~args Sm_obs.Event.Merge_child)
    ]} *)

module Clock = Clock
module Verbosity = Verbosity
module Event = Event
module Metrics = Metrics
module Sink = Sink
module Span = Span
module Json = Json
module Trace_jsonl = Trace_jsonl
module Trace_chrome = Trace_chrome
module Trace_model = Trace_model
module Trace_diff = Trace_diff
module Trace_ctx = Trace_ctx
module Trace_stitch = Trace_stitch
module Critical_path = Critical_path
module Attribution = Attribution
module Expo = Expo
module Flight_recorder = Flight_recorder

type level = Verbosity.level =
  | Off
  | Error
  | Info
  | Debug
  | Trace

let set_level = Verbosity.set
let level = Verbosity.get
let on = Verbosity.enabled
let set_sink = Sink.set
let reset_sink = Sink.reset
let emit = Sink.emit
let flush = Sink.flush

let note ?(level = Verbosity.Trace) ?(args = []) ~task ~task_id name =
  if Verbosity.enabled level then
    emit (Event.make ~task ~task_id ~args:(("name", Event.S name) :: args) Event.Note)
