(** Prometheus-style text exposition of the {!Metrics} registry, plus an
    in-process periodic reporter.

    Counters render as `# TYPE sm_<name> counter` samples; histograms as
    summaries (p50/p90/p95/p99 quantile series, `_sum`, `_count`) computed
    from their retained samples — under a {!Metrics.set_sample_cap}
    reservoir these are unbiased estimates of the full window.  Metric
    names are sanitized to the Prometheus grammar and prefixed [sm_]
    ([runtime.merge_ns] → [sm_runtime_merge_ns]). *)

val sanitize : string -> string

val render : counters:(string * int) list -> histograms:(string * float list) list -> string
(** Exposition of explicit data — e.g. trace-derived totals from
    {!Attribution.metric_view}, which is how [sm-trace expo] renders a
    recorded run without a live registry. *)

val text : unit -> string
(** Exposition of the live registry. *)

val write_file : string -> unit
(** {!text} to a fresh file (a node-exporter-style textfile drop). *)

(** {1 Periodic reporter} *)

type reporter

val start : ?period_s:float -> (string -> unit) -> reporter
(** Spawn a daemon thread that hands the current exposition to the callback
    every [period_s] (default 5s) until {!stop}.  Callback exceptions are
    swallowed; with a {!Metrics.set_sample_cap} bound in place the registry
    stays O(cap) however long the reporter runs.
    @raise Invalid_argument on a non-positive period. *)

val stop : reporter -> unit
(** Signal and join the reporter thread (returns within ~50ms). *)

val stderr_reporter : ?period_s:float -> unit -> reporter
(** {!start} writing to stderr. *)
