(** The flight recorder: an always-on bounded ring of recent events per
    component, independent of the sink verbosity.

    Tracing answers "what happened" when you asked in advance; the flight
    recorder answers it after the fact.  Each component (one per shard
    server, say) {!record}s its noteworthy events into a fixed ring at the
    cost of one atomic load, a branch and a ring store; when something goes
    wrong — a refused merge, a chaos-induced resume, a DetSan hazard — the
    failure path {!trigger}s a snapshot of every registered ring and the
    failure report ships the last-N-events post-mortem automatically.

    Dumps are {e structural} JSONL (kind/task/args, no seq or timestamps),
    so the same seeded failure dumps byte-identical post-mortems under both
    executors — the fuzz targets assert exactly that. *)

type t

val create : ?capacity:int -> string -> t
(** A recorder registered process-globally under [name] (newest instance
    per name wins — re-created components keep one live ring per lane).
    Default capacity {!default_capacity}.
    @raise Invalid_argument if [capacity < 1]. *)

val default_capacity : int

val set_enabled : bool -> unit
(** Global switch, default [true].  Off, {!record} is one atomic load and a
    branch — the overhead bench gates that the default-on cost stays within
    noise of this. *)

val enabled : unit -> bool

val record : t -> Event.t -> unit
(** Append, evicting the oldest event once the ring is full. *)

val name : t -> string
val capacity : t -> int

val length : t -> int
(** Events currently held (≤ capacity). *)

val recorded : t -> int
(** Total events ever recorded, evicted ones included. *)

val clear : t -> unit

val events : t -> Event.t list
(** Ring contents, oldest first. *)

val dump_lines : t -> string list
(** Structural JSONL lines (kind/task/structural args — no [seq]/[ts_ns]),
    oldest first: deterministic for a deterministic workload. *)

val all : unit -> (string * t) list
(** Registered recorders, sorted by name. *)

val dump_all : unit -> (string * string list) list
(** [dump_lines] of every registered recorder, by name. *)

(** {1 Hazard-triggered dumps} *)

val trigger : reason:string -> unit
(** Snapshot every ring now (a failure is being reported); retrievable via
    {!last_trigger} until the next trigger or {!clear_trigger}. *)

val last_trigger : unit -> (string * (string * string list) list) option
(** [(reason, dumps)] of the most recent {!trigger}. *)

val clear_trigger : unit -> unit

val reset : unit -> unit
(** Forget every registered recorder and any pending trigger — run
    isolation for loops that re-create components with varying lane sets
    (a shrunk 1-shard replay must not dump a previous 4-shard run's stale
    rings). *)

val write_dir : string -> unit
(** Write every recorder's dump to [dir/<lane>.flight.jsonl] (creating
    [dir] if needed) — the CI artifact path. *)
