(** Process-wide named counters and latency histograms.

    Metrics live in a global registry keyed by name: {!counter}/{!histogram}
    return the existing metric when the name is already registered, so a
    module can declare its handles at top level and an unrelated reader
    (benchmark harness, test) can reach the same cells by name.

    Recording is gated by {!set_enabled} (default off).  A disabled
    {!incr}/{!observe} is one atomic load and a branch — cheap enough for OT
    inner loops.  Reads ({!value}, {!summary}, ...) always work.

    Histograms keep every sample (a growable vector guarded by a mutex) and
    summarize through {!Sm_util.Stats}; call {!reset} between measurement
    windows, or install a {!set_sample_cap} reservoir bound, to keep memory
    bounded over long runs. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val set_sample_cap : int option -> unit
(** Bound every histogram to at most [cap] retained samples.  Once a
    histogram is full, further observations displace uniformly chosen
    residents (reservoir sampling, algorithm R), so {!samples} stays a
    uniform sample of the whole window and {!summary} an unbiased estimate;
    {!observed_count} still reports the true observation count.  [None]
    (the default) keeps every sample.
    @raise Invalid_argument on [Some c] with [c < 1]. *)

val sample_cap : unit -> int option

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find or register.  @raise Invalid_argument if the name is a histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Find or register.  @raise Invalid_argument if the name is a counter. *)

val observe : histogram -> float -> unit

val observe_ns : histogram -> since:int -> unit
(** Record [Clock.now_ns () - since] — the idiom for latency samples. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, recording its duration in nanoseconds when metrics are
    enabled (the clock is not even read when disabled). *)

val samples : histogram -> float list

val observed_count : histogram -> int
(** Observations recorded since the last {!reset}, including any dropped by
    the {!set_sample_cap} reservoir. *)

val summary : histogram -> Sm_util.Stats.summary option
val percentile : histogram -> p:float -> float option
val histogram_name : histogram -> string

(** {1 Registry} *)

val counters : unit -> (string * int) list
(** All counters with their current values, sorted by name. *)

val histograms : unit -> (string * Sm_util.Stats.summary) list
(** All non-empty histograms summarized, sorted by name. *)

val raw_histograms : unit -> (string * float list) list
(** All non-empty histograms with their retained samples, sorted by name —
    the feed for exporters ({!Expo}) that need quantiles, not summaries. *)

val reset : unit -> unit
(** Zero every counter and drop every histogram's samples. *)

val dump : Format.formatter -> unit -> unit
(** Human-readable report of every non-zero metric. *)
