(** Critical-path extraction over the spawn/merge DAG of a recorded run.

    Walks backward from a root task's [Task_end]: stretches where the root
    sat in a merge-family call are attributed to the {e binding} child (the
    one whose completion — or sync arrival — released the wait last), and
    the walk recurses into that child's own timeline, re-entering the
    parent at the child's spawn point.  The result is a connected chain of
    segments tiling the root's wall-clock span, each labeled with the task
    and what it was doing — exactly which tasks and merges bound the run.

    Needs a Debug-level trace (merge spans + [Merge_child] accounting); on
    an Info-level trace the whole span degrades to one compute segment. *)

type seg_kind =
  | Compute  (** the task's own work *)
  | Merge_fold  (** OT transform + fold time in the parent's merge *)
  | Merge_wait  (** blocked in a merge with no traced binding child *)
  | Sync_wait  (** a child blocked at a sync point awaiting its parent *)

val seg_kind_to_string : seg_kind -> string

type segment =
  { seg_task : string
  ; seg_task_id : int
  ; seg_kind : seg_kind
  ; seg_begin : int
  ; seg_end : int
  }

type t =
  { root : Trace_model.task
  ; segments : segment list  (** chronological; tiles the root's span *)
  ; total_ns : int  (** sum of segment durations *)
  ; wall_ns : int  (** the root's own span *)
  }

val seg_ns : segment -> int

val compute : ?root:int -> Trace_model.t -> t option
(** Critical path ending at [root] (a task id; default
    {!Trace_model.main_root}).  [None] when the trace has no started root
    task. *)

val by_task : t -> (string * int * seg_kind * int) list
(** On-path nanoseconds aggregated per (task, id, kind), largest first —
    the "what do I optimize" view. *)

val coverage_pct : t -> float
(** [total_ns] as a percentage of [wall_ns]; ~100 whenever the walk tiled
    the span (the self-check the CLI prints). *)

val pp : ?max_segments:int -> Format.formatter -> t -> unit
