(** Trace contexts: the compact trace-id/span-id triple that ties one
    logical request together across processes.

    A context is minted at the edge ({!root} on the client action), refined
    at every hop ({!child} as the request crosses the wire into a shard and
    again into the epoch merge), and carried two ways: as three integer
    event args ({!args}) on ordinary {!Event}s, and as an optional field of
    version-2 {!Sm_dist.Wire.Frame}s.  [sm-trace requests] then groups
    per-rank JSONL lanes by [trace] and rebuilds the causal tree by
    [span]/[parent] edges.

    Ids are {e derived}, not allocated: FNV-1a over the label, avalanched,
    folded to 62 bits.  Same labels ⇒ same ids in every run and under every
    executor, which is what makes stitched trees byte-comparable across
    runs — the cross-process extension of the structural trace-diff
    oracle. *)

type t =
  { trace : int  (** the request tree's identity, shared by every hop *)
  ; span : int  (** this hop *)
  ; parent : int  (** the hop that caused it; 0 on roots *)
  }

val root : string -> t
(** Mint a root context from a label (e.g. ["client3/req7"] or a user-level
    action name).  Deterministic: same label, same context. *)

val child : t -> string -> t
(** A hop caused by [t]: same trace, fresh span derived from the label,
    parent = [t.span]. *)

val equal : t -> t -> bool

val to_string : t -> string
(** ["t<hex>:s<hex>:p<hex>"] — also the {!of_string} form. *)

val of_string : string -> t option
val codec : t Sm_util.Codec.t

(** {1 Event-args embedding} *)

val args : t -> (string * Event.arg) list
(** [[("trace", I _); ("span", I _); ("parent", I _)]] — prepend to an
    event's args to put it on the request tree. *)

val of_args : (string * Event.arg) list -> t option
val of_event : Event.t -> t option

val pp : Format.formatter -> t -> unit
