(** Structured lifecycle events.

    One event per lifecycle edge of the runtime: spawns, merges, syncs,
    clones, aborts, validation failures, plus generic phase spans and
    instant notes.  Events carry the emitting task's hierarchical name (the
    deterministic identity), its numeric id (unique per process, {e not}
    deterministic across runs — useful as a Chrome-trace thread id), a
    strictly monotonic timestamp, and a small list of structured arguments.

    Argument conventions used by the built-in instrumentation:
    - [Spawn]/[Clone]: ["child"], ["child_id"].
    - [Task_start]: ["parent"] (absent for the root); remote tasks add
      ["rank"].
    - [Task_end]: ["status"] of ["ok"]/["failed"].
    - [Merge_begin]/[Merge_end]: ["kind"] of ["merge_all"],
      ["merge_all_from_set"], ["merge_any"], ["merge_any_from_set"].
    - [Merge_child]: ["child"], ["ops"] (journal length folded in),
      ["transforms"] (OT transform calls it took — 0 unless {!Metrics} are
      enabled), ["outcome"] of ["merged"]/["aborted"]/["validation_failed"].
    - [Sync_end]: ["outcome"] as for [Merge_child].
    - [Phase_begin]/[Phase_end]: ["name"].

    Durations are deliberately {e not} arguments: sinks derive them from
    begin/end timestamps, so {!structure} (everything except [seq], [ts_ns],
    [task_id] and ["child_id"]) is deterministic whenever the program's merge structure
    is — see the trace-determinism test. *)

type arg =
  | I of int
  | F of float
  | S of string
  | B of bool

type kind =
  | Task_start
  | Task_end
  | Spawn
  | Clone
  | Merge_begin
  | Merge_child
  | Merge_end
  | Sync_begin
  | Sync_end
  | Abort
  | Validation_fail
  | Phase_begin
  | Phase_end
  | Note
  | Epoch_begin  (** a shard starts one batched transform pass *)
  | Epoch_end  (** ...and finishes it; ["edits"], ["ops"] *)
  | Delta_sync
      (** a shard answered a sync: ["mode"] of ["delta"]/["snapshot"],
          ["bytes"], and the counterfactual ["snapshot_bytes"] *)
  | Req_begin
      (** a client put a request in flight: ["req"], ["op"] of
          ["hello"]/["resume"]/["edit"]/["poll"], plus {!Trace_ctx.args} *)
  | Req_end
      (** ...and saw its reply: ["req"], ["status"] of ["ok"]/["nack"],
          same context as the matching [Req_begin] *)
  | Serve
      (** a shard served a request: ["op"], ["req"], ["session"], context
          args parented on the client's request span *)
  | Epoch_merge
      (** one edit batch merged inside an epoch: ["ops"], ["eid"], context
          args parented on the batch's [Serve] span *)
  | Doc_merge
      (** per-document epoch profile: ["doc"], ["ops"], ["transforms"],
          ["compact_in"], ["compact_out"] — the conflict profiler's feed *)

type t =
  { seq : int  (** process-wide emission number *)
  ; ts_ns : int  (** {!Clock.now_ns} at creation: strictly monotonic *)
  ; kind : kind
  ; task : string  (** hierarchical task name, or a ["rank<n>"] tag *)
  ; task_id : int
  ; args : (string * arg) list
  }

val make : ?args:(string * arg) list -> task:string -> task_id:int -> kind -> t
(** Stamp a fresh event ([seq] and [ts_ns] are assigned here). *)

val structure : t -> kind * string * (string * arg) list
(** The deterministic part of an event: kind, task name, arguments minus
    ["child_id"] (which, like [task_id], is allocation-ordered and so not
    stable across runs). *)

val equal_structure : t -> t -> bool
(** Structural equality ignoring [seq], [ts_ns], [task_id] and the
    ["child_id"] argument. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val all_kinds : kind list
(** Every constructor once, in declaration order. *)

val codec : t Sm_util.Codec.t
(** Binary round-trip, e.g. for shipping event streams between ranks. *)

val pp : Format.formatter -> t -> unit
val pp_arg : Format.formatter -> arg -> unit
