(** The global verbosity gate for structured events.

    Per the DebugLevels discipline, instrumentation is written against a
    level and compiled down to a cheap branch when disabled: sites do
    [if Verbosity.enabled Debug then ...], so with the default [Off] level no
    event is ever allocated.  Conventions used by the built-in
    instrumentation:

    - [Error]: validation failures, remote task failures.
    - [Info]: lifecycle edges — spawn, clone, task start/end, abort.
    - [Debug]: per-merge and per-sync detail (ops merged, transform counts,
      outcomes) plus generic phase spans.
    - [Trace]: high-volume wire/executor/coordinator-buffer events. *)

type level =
  | Off
  | Error
  | Info
  | Debug
  | Trace

val set : level -> unit
(** Set the process-wide level (default [Off]). *)

val get : unit -> level

val enabled : level -> bool
(** [enabled l] is true when an event at level [l] should be emitted, i.e.
    [l <> Off] and [l] is at or below the current level.  One atomic load. *)

val of_env : ?var:string -> unit -> unit
(** Initialize the level from an environment variable (default
    [SM_OBS_LEVEL], values [off]/[error]/[info]/[debug]/[trace]); unknown or
    missing values leave the level unchanged. *)

val to_int : level -> int
val of_int : int -> level
val to_string : level -> string
val of_string : string -> level option
val pp : Format.formatter -> level -> unit
