(** Determinism regression checking: structural diff of two traces.

    Two runs of a deterministic Spawn/Merge program must emit the same
    event {e structure} ({!Event.structure}: everything except [seq],
    [ts_ns], [task_id] and the ["child_id"] argument).  Instead of the bare
    bool the trace-determinism test computes, this module names the first
    diverging event — the actionable artifact when a scheduler change
    breaks determinism. *)

type divergence =
  { index : int  (** position of the first structural mismatch *)
  ; left : Event.t option  (** [None]: the left trace ended early *)
  ; right : Event.t option
  }

type result =
  | Equal of int  (** both traces: this many events, structurally equal *)
  | Diverged of divergence

val equal_result : result -> bool

val compare_events : Event.t list -> Event.t list -> result
(** Pairwise structural comparison in list order. *)

val compare_files : string -> string -> result
(** Streaming comparison of two JSONL traces — constant memory, stops at
    the first divergence.
    @raise Trace_jsonl.Decode_error on a malformed line in either file. *)

val pp_result : Format.formatter -> result -> unit
