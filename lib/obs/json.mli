(** A minimal JSON tree, printer and parser — just enough for the JSONL and
    Chrome-trace exporters and the benchmark harness's [--json] output,
    without pulling a dependency into the tree.

    Printing guarantees [Float]s carry a ['.'] or exponent, so [Int] vs
    [Float] survives {!to_string}/{!of_string} round-trips.  Non-finite
    floats never corrupt the output: [Float nan] prints as [null], and the
    infinities print as the overflowing numerals [1e999]/[-1e999] (valid
    JSON that parses back to [Float infinity]/[Float neg_infinity]).  The
    parser accepts standard JSON (with [\uXXXX] escapes re-encoded as
    UTF-8) and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val pp : Format.formatter -> t -> unit

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
