module C = Sm_util.Codec

type arg =
  | I of int
  | F of float
  | S of string
  | B of bool

type kind =
  | Task_start
  | Task_end
  | Spawn
  | Clone
  | Merge_begin
  | Merge_child
  | Merge_end
  | Sync_begin
  | Sync_end
  | Abort
  | Validation_fail
  | Phase_begin
  | Phase_end
  | Note
  | Epoch_begin
  | Epoch_end
  | Delta_sync
  | Req_begin
  | Req_end
  | Serve
  | Epoch_merge
  | Doc_merge

type t =
  { seq : int
  ; ts_ns : int
  ; kind : kind
  ; task : string
  ; task_id : int
  ; args : (string * arg) list
  }

let seq_counter = Atomic.make 0

let make ?(args = []) ~task ~task_id kind =
  { seq = Atomic.fetch_and_add seq_counter 1; ts_ns = Clock.now_ns (); kind; task; task_id; args }

(* ["child_id"] carries the child's process-global numeric id (a Chrome
   thread-id convenience); like [task_id] it is allocation-ordered, not
   run-stable, so the structural view drops it. *)
let structural_args args = List.filter (fun (k, _) -> not (String.equal k "child_id")) args

let structure e = (e.kind, e.task, structural_args e.args)

let equal_arg a b =
  match (a, b) with
  | I x, I y -> Int.equal x y
  | F x, F y -> Float.equal x y
  | S x, S y -> String.equal x y
  | B x, B y -> Bool.equal x y
  | (I _ | F _ | S _ | B _), _ -> false

let equal_structure a b =
  let args_a = structural_args a.args and args_b = structural_args b.args in
  a.kind = b.kind && String.equal a.task b.task
  && List.length args_a = List.length args_b
  && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal_arg va vb) args_a args_b

let kind_to_string = function
  | Task_start -> "task_start"
  | Task_end -> "task_end"
  | Spawn -> "spawn"
  | Clone -> "clone"
  | Merge_begin -> "merge_begin"
  | Merge_child -> "merge_child"
  | Merge_end -> "merge_end"
  | Sync_begin -> "sync_begin"
  | Sync_end -> "sync_end"
  | Abort -> "abort"
  | Validation_fail -> "validation_fail"
  | Phase_begin -> "phase_begin"
  | Phase_end -> "phase_end"
  | Note -> "note"
  | Epoch_begin -> "epoch_begin"
  | Epoch_end -> "epoch_end"
  | Delta_sync -> "delta_sync"
  | Req_begin -> "req_begin"
  | Req_end -> "req_end"
  | Serve -> "serve"
  | Epoch_merge -> "epoch_merge"
  | Doc_merge -> "doc_merge"

let all_kinds =
  [ Task_start; Task_end; Spawn; Clone; Merge_begin; Merge_child; Merge_end; Sync_begin
  ; Sync_end; Abort; Validation_fail; Phase_begin; Phase_end; Note; Epoch_begin; Epoch_end
  ; Delta_sync; Req_begin; Req_end; Serve; Epoch_merge; Doc_merge
  ]

let kind_of_string s = List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds

(* Integer tags for the wire codec: stable, append-only. *)
let kind_tag = function
  | Task_start -> 0
  | Task_end -> 1
  | Spawn -> 2
  | Clone -> 3
  | Merge_begin -> 4
  | Merge_child -> 5
  | Merge_end -> 6
  | Sync_begin -> 7
  | Sync_end -> 8
  | Abort -> 9
  | Validation_fail -> 10
  | Phase_begin -> 11
  | Phase_end -> 12
  | Note -> 13
  | Epoch_begin -> 14
  | Epoch_end -> 15
  | Delta_sync -> 16
  | Req_begin -> 17
  | Req_end -> 18
  | Serve -> 19
  | Epoch_merge -> 20
  | Doc_merge -> 21

let kind_of_tag = function
  | 0 -> Task_start
  | 1 -> Task_end
  | 2 -> Spawn
  | 3 -> Clone
  | 4 -> Merge_begin
  | 5 -> Merge_child
  | 6 -> Merge_end
  | 7 -> Sync_begin
  | 8 -> Sync_end
  | 9 -> Abort
  | 10 -> Validation_fail
  | 11 -> Phase_begin
  | 12 -> Phase_end
  | 13 -> Note
  | 14 -> Epoch_begin
  | 15 -> Epoch_end
  | 16 -> Delta_sync
  | 17 -> Req_begin
  | 18 -> Req_end
  | 19 -> Serve
  | 20 -> Epoch_merge
  | 21 -> Doc_merge
  | t -> raise (C.Decode_error (Printf.sprintf "Event.codec: unknown kind tag %d" t))

let arg_codec : arg C.t =
  C.tagged
    ~tag:(function I _ -> 0 | F _ -> 1 | S _ -> 2 | B _ -> 3)
    ~write:(fun w -> function
      | I i -> C.W.int w i
      | F f -> C.W.value C.float w f
      | S s -> C.W.string w s
      | B b -> C.W.bool w b)
    ~read:(fun tag r ->
      match tag with
      | 0 -> I (C.R.int r)
      | 1 -> F (C.R.value C.float r)
      | 2 -> S (C.R.string r)
      | 3 -> B (C.R.bool r)
      | t -> raise (C.Decode_error (Printf.sprintf "Event.codec: unknown arg tag %d" t)))

let kind_codec : kind C.t = C.map kind_tag kind_of_tag C.int

let codec : t C.t =
  C.map
    (fun e -> ((e.seq, e.ts_ns, e.kind), (e.task, e.task_id, e.args)))
    (fun ((seq, ts_ns, kind), (task, task_id, args)) -> { seq; ts_ns; kind; task; task_id; args })
    (C.pair
       (C.triple C.int C.int kind_codec)
       (C.triple C.string C.int (C.list (C.pair C.string arg_codec))))

let pp_arg ppf = function
  | I i -> Format.pp_print_int ppf i
  | F f -> Format.fprintf ppf "%g" f
  | S s -> Format.fprintf ppf "%S" s
  | B b -> Format.pp_print_bool ppf b

let pp ppf e =
  Format.fprintf ppf "@[<h>#%d %s %s(%d)%a@]" e.seq (kind_to_string e.kind) e.task e.task_id
    (Format.pp_print_list ~pp_sep:(fun _ () -> ())
       (fun ppf (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg v))
    e.args
