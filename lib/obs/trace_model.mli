(** Reconstruct a run from its event stream.

    Folds a {!Trace_jsonl} stream (or an in-memory {!Event.t} list) into a
    task tree: per-task span intervals, spawn/clone edges, merge spans with
    the {!Event.Merge_child} accounting recorded inside them, sync-wait
    spans, and abort/validation counts.  The model is the shared input of
    the analysis passes ({!Critical_path}, {!Attribution}) and of the
    [sm-trace] CLI.

    Tasks are keyed by the process-global numeric [task_id], so one trace
    file holding several sequential runs (each with its own ["root"]) never
    conflates same-named tasks; names are kept for display and resolved to
    ids only within the emitting parent's own children.

    Works on Info-level traces (lifecycle only; no merge spans) and richer
    Debug-level ones alike: whatever was emitted is modeled, the rest stays
    empty. *)

type outcome =
  | Merged
  | Aborted
  | Validation_failed

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option

(** One {!Event.Merge_child}: a child's journal folded into (or refused by)
    its parent. *)
type merge_record =
  { mc_child : int option  (** resolved child task id, when the spawn edge was traced *)
  ; mc_child_name : string
  ; mc_ops : int  (** journal operations folded in *)
  ; mc_transforms : int  (** OT transform calls the fold took *)
  ; mc_compact_in : int  (** operations handed to journal compaction *)
  ; mc_compact_out : int  (** operations surviving compaction *)
  ; mc_outcome : outcome
  ; mc_ts : int
  }

(** A [Merge_begin]/[Merge_end] bracket: the parent blocked in a
    merge-family call. *)
type merge_span =
  { m_kind : string  (** ["merge_all"], ["merge_any_from_set"], ... *)
  ; m_begin : int
  ; mutable m_end : int
  ; mutable m_children : merge_record list  (** reverse-chronological *)
  ; mutable m_closed : bool  (** false: ran to the end of the trace *)
  }

(** A [Sync_begin]/[Sync_end] bracket: the child blocked waiting to be
    merged. *)
type sync_span =
  { s_begin : int
  ; mutable s_end : int
  ; mutable s_outcome : string option
  ; mutable s_closed : bool
  }

type task =
  { id : int
  ; name : string
  ; mutable parent : int option
  ; mutable children : int list  (** spawn order *)
  ; mutable started : bool  (** saw [Task_start] *)
  ; mutable start_ts : int
  ; mutable ended : bool  (** saw [Task_end] *)
  ; mutable end_ts : int  (** last seen timestamp when [not ended] *)
  ; mutable status : string option  (** ["ok"]/["failed"] *)
  ; mutable merges : merge_span list  (** chronological *)
  ; mutable syncs : sync_span list  (** chronological *)
  ; mutable clones_spawned : int  (** of [children], how many came from [Clone] *)
  ; mutable spawn_cells : int
      (** workspace cells shared across this task's spawns/clones (from the
          Debug-level [ws_cells] spawn-cost arg; 0 on Info-level traces) *)
  ; mutable spawn_copy_bytes : int
      (** bytes those spawns deep-copied — 0 under copy-on-write; the
          [Workspace.set_cow]-off baseline meters its per-spawn copies here *)
  ; mutable aborts_sent : int
  ; mutable validation_fails : int  (** as the merging parent *)
  ; mutable notes : int
  ; mutable phases : int
  ; mutable epochs : int  (** [Epoch_end] events (shard transform passes) *)
  ; mutable epoch_edits : int  (** client edits folded across those epochs *)
  ; mutable delta_bytes : int  (** sync payload bytes shipped as deltas *)
  ; mutable snapshot_bytes : int
      (** snapshot payload bytes: shipped (snapshot mode) or counterfactual
          (what a delta sync {e would} have cost as a snapshot) *)
  ; mutable requests : int  (** [Req_begin] events (client requests put in flight) *)
  ; mutable served : int  (** [Serve] events (shard requests handled) *)
  ; mutable first_ts : int
  ; mutable last_ts : int
  }

(** Per-document conflict profile, accumulated from {!Event.Doc_merge}
    events across every task in the trace — the conflict profiler's
    "hot documents" input. *)
type doc_stat =
  { doc : string  (** document wire name *)
  ; mutable d_merges : int  (** epochs that touched it *)
  ; mutable d_ops : int  (** journal ops folded in *)
  ; mutable d_transforms : int  (** OT transform calls those folds took *)
  ; mutable d_compact_in : int
  ; mutable d_compact_out : int
  }

type t

(** {1 Construction} *)

val of_events : Event.t list -> t
(** Build from an in-memory list (sorted by [seq] first). *)

val of_file : string -> t
(** Stream a JSONL trace through {!Trace_jsonl.fold} — constant memory in
    the trace length.
    @raise Trace_jsonl.Decode_error on malformed lines. *)

(** {1 Incremental building} *)

type builder

val create_builder : unit -> builder
val add_event : builder -> Event.t -> unit

val finish : builder -> t
(** Seal the model: orders lists chronologically, closes dangling spans at
    the last timestamp.  Idempotent; {!add_event} afterwards raises. *)

(** {1 Accessors} *)

val task : t -> int -> task option
val tasks : t -> task list  (** first-appearance order *)

val roots : t -> task list
(** Started tasks with no traced parent — one per [Runtime.run] in the
    trace (executor/note-only pseudo-tasks are excluded). *)

val main_root : t -> task option
(** The root with the longest span: the run an analysis should explain by
    default. *)

val duration_ns : t -> int
val event_count : t -> int
val task_count : t -> int

val span_ns : task -> int
val merge_wait_ns : task -> int
val sync_wait_ns : task -> int

val blocked_ns : task -> int
(** Merge wait + sync wait. *)

val self_ns : task -> int
(** Span minus blocked time: the task's own compute. *)

val merge_records : task -> merge_record list
(** Every child fold the task performed, chronological. *)

val doc_stats : t -> doc_stat list
(** Per-document conflict profiles, hottest (most transform calls) first;
    ties break on ops then name.  Empty unless the trace carries
    [Doc_merge] events (shard service at Debug verbosity). *)

(** {1 Printing} *)

val pp_ms : Format.formatter -> int -> unit
val pp_task : Format.formatter -> task -> unit
val pp_summary : Format.formatter -> t -> unit
