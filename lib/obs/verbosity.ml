type level =
  | Off
  | Error
  | Info
  | Debug
  | Trace

let to_int = function Off -> 0 | Error -> 1 | Info -> 2 | Debug -> 3 | Trace -> 4

let of_int = function
  | 0 -> Off
  | 1 -> Error
  | 2 -> Info
  | 3 -> Debug
  | _ -> Trace

let to_string = function
  | Off -> "off"
  | Error -> "error"
  | Info -> "info"
  | Debug -> "debug"
  | Trace -> "trace"

let of_string = function
  | "off" -> Some Off
  | "error" -> Some Error
  | "info" -> Some Info
  | "debug" -> Some Debug
  | "trace" -> Some Trace
  | _ -> None

let pp ppf l = Format.pp_print_string ppf (to_string l)

(* The whole point of keeping the level as a bare int in one Atomic: the
   disabled path of every instrumentation site is a single load and compare. *)
let current = Atomic.make 0

let set l = Atomic.set current (to_int l)
let get () = of_int (Atomic.get current)
let enabled l =
  let i = to_int l in
  i > 0 && i <= Atomic.get current

let of_env ?(var = "SM_OBS_LEVEL") () =
  match Sys.getenv_opt var with
  | None -> ()
  | Some s -> ( match of_string (String.lowercase_ascii s) with Some l -> set l | None -> ())
