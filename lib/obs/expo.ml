(* Prometheus text exposition format, version 0.0.4: one `# TYPE` line per
   metric, counters as bare samples, histograms as summaries (quantile
   series + _sum + _count).  No labels beyond the quantile, no timestamps:
   scrape time is the collector's business. *)

let sanitize name =
  let buf = Buffer.create (String.length name + 3) in
  Buffer.add_string buf "sm_";
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf c
      | '0' .. '9' when i > 0 -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let quantiles = [ 0.5; 0.9; 0.95; 0.99 ]

(* Exposition floats: Prometheus accepts Go-syntax numerals; OCaml's %g is
   compatible for finite values, and non-finite samples are skipped at the
   histogram layer below (they cannot arise from Clock timing, but nothing
   stops a caller observing [infinity] as an open histogram bound).  This
   mirrors — deliberately does NOT reuse — {!Json.float_repr}'s rule: Json
   keeps the infinities as the overflowing numerals 1e999/-1e999 so a
   [Metrics.dump] round-trips through {!Json.of_string}, whereas the
   Prometheus text format has no such idiom, so here they are filtered
   before the quantile/_sum/_count math rather than rendered.  [_count]
   therefore counts finite samples only. *)
let float_str f = Printf.sprintf "%g" f

let render ~counters ~histograms =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    counters;
  List.iter
    (fun (name, samples) ->
      let samples = List.filter (fun x -> Float.is_finite x) samples in
      match samples with
      | [] -> ()
      | _ ->
        let n = sanitize name in
        let count = List.length samples in
        let sum = List.fold_left ( +. ) 0.0 samples in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun q ->
            let v = Sm_util.Stats.percentile samples ~p:(q *. 100.0) in
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n (float_str q) (float_str v)))
          quantiles;
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (float_str sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count))
    histograms;
  Buffer.contents buf

let text () = render ~counters:(Metrics.counters ()) ~histograms:(Metrics.raw_histograms ())

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (text ()))

(* --- the periodic in-process reporter --------------------------------------- *)

type reporter =
  { stop_flag : bool Atomic.t
  ; thread : Thread.t
  }

let start ?(period_s = 5.0) emit =
  if period_s <= 0.0 then invalid_arg "Expo.start: period must be positive";
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        (* Sleep in short slices so [stop] returns promptly even with a
           multi-second period. *)
        let rec sleep remaining =
          if (not (Atomic.get stop_flag)) && remaining > 0.0 then begin
            let slice = Float.min 0.05 remaining in
            Thread.delay slice;
            sleep (remaining -. slice)
          end
        in
        let rec loop () =
          sleep period_s;
          if not (Atomic.get stop_flag) then begin
            (try emit (text ()) with _ -> ());
            loop ()
          end
        in
        loop ())
      ()
  in
  { stop_flag; thread }

let stop r =
  Atomic.set r.stop_flag true;
  Thread.join r.thread

let stderr_reporter ?period_s () =
  start ?period_s (fun txt ->
      prerr_string txt;
      flush stderr)
