exception Decode_error of string

let arg_to_json = function
  | Event.I i -> Json.Int i
  | Event.F f -> Json.Float f
  | Event.S s -> Json.String s
  | Event.B b -> Json.Bool b

let arg_of_json = function
  | Json.Int i -> Event.I i
  | Json.Float f -> Event.F f
  | Json.String s -> Event.S s
  | Json.Bool b -> Event.B b
  (* Json prints [Float nan] as [null] (no JSON literal exists for it), so
     [null] decodes back to an nan-valued float argument. *)
  | Json.Null -> Event.F Float.nan
  | Json.List _ | Json.Obj _ -> raise (Decode_error "Trace_jsonl: argument is not a scalar")

let event_to_json (e : Event.t) =
  Json.Obj
    [ ("seq", Json.Int e.seq)
    ; ("ts_ns", Json.Int e.ts_ns)
    ; ("kind", Json.String (Event.kind_to_string e.kind))
    ; ("task", Json.String e.task)
    ; ("task_id", Json.Int e.task_id)
    ; ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) e.args))
    ]

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "Trace_jsonl: missing or ill-typed field %S" name))

let event_of_json j : Event.t =
  let kind_s = field "kind" Json.to_str j in
  let kind =
    match Event.kind_of_string kind_s with
    | Some k -> k
    | None -> raise (Decode_error (Printf.sprintf "Trace_jsonl: unknown kind %S" kind_s))
  in
  let args =
    match Json.member "args" j with
    | Some (Json.Obj fields) -> List.map (fun (k, v) -> (k, arg_of_json v)) fields
    | Some _ -> raise (Decode_error "Trace_jsonl: args is not an object")
    | None -> []
  in
  { seq = field "seq" Json.to_int j
  ; ts_ns = field "ts_ns" Json.to_int j
  ; kind
  ; task = field "task" Json.to_str j
  ; task_id = field "task_id" Json.to_int j
  ; args
  }

let event_to_line e = Json.to_string (event_to_json e)

let event_of_line line =
  match Json.of_string line with
  | j -> event_of_json j
  | exception Json.Parse_error msg -> raise (Decode_error ("Trace_jsonl: " ^ msg))

let sink oc =
  let lock = Mutex.create () in
  Sink.make
    ~flush:(fun () -> Mutex.protect lock (fun () -> flush oc))
    (fun e ->
      let line = event_to_line e in
      Mutex.protect lock (fun () ->
          output_string oc line;
          output_char oc '\n'))

let file_sink path =
  let oc = open_out path in
  let inner = sink oc in
  Sink.make
    ~flush:inner.Sink.flush
    ~close:(fun () ->
      inner.Sink.flush ();
      close_out oc)
    inner.Sink.emit

(* Per-lane routing: one JSONL file per task name under [dir], so a
   multi-component run (clients + shards in one process) leaves the same
   lane-per-file layout a true multi-process run does — ready for
   [Trace_stitch.of_files]. *)
let dir_sink ?(lane = fun (e : Event.t) -> e.Event.task) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let lock = Mutex.create () in
  let files : (string, out_channel) Hashtbl.t = Hashtbl.create 8 in
  let sanitize name =
    String.map
      (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' as c -> c | _ -> '_')
      name
  in
  let chan name =
    match Hashtbl.find_opt files name with
    | Some oc -> oc
    | None ->
      let oc = open_out (Filename.concat dir (sanitize name ^ ".jsonl")) in
      Hashtbl.replace files name oc;
      oc
  in
  Sink.make
    ~flush:(fun () -> Mutex.protect lock (fun () -> Hashtbl.iter (fun _ oc -> flush oc) files))
    ~close:(fun () ->
      Mutex.protect lock (fun () ->
          Hashtbl.iter (fun _ oc -> close_out oc) files;
          Hashtbl.reset files))
    (fun e ->
      let line = event_to_line e in
      Mutex.protect lock (fun () ->
          let oc = chan (lane e) in
          output_string oc line;
          output_char oc '\n'))

let fold_channel ic ~init ~f =
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else f acc (event_of_line line))
    | exception End_of_file -> acc
  in
  go init

let fold path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> fold_channel ic ~init ~f)

let events_of_channel ic = List.rev (fold_channel ic ~init:[] ~f:(fun acc e -> e :: acc))
let load path = List.rev (fold path ~init:[] ~f:(fun acc e -> e :: acc))
