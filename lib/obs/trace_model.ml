type outcome =
  | Merged
  | Aborted
  | Validation_failed

let outcome_to_string = function
  | Merged -> "merged"
  | Aborted -> "aborted"
  | Validation_failed -> "validation_failed"

let outcome_of_string = function
  | "merged" -> Some Merged
  | "aborted" -> Some Aborted
  | "validation_failed" -> Some Validation_failed
  | _ -> None

type merge_record =
  { mc_child : int option
  ; mc_child_name : string
  ; mc_ops : int
  ; mc_transforms : int
  ; mc_compact_in : int
  ; mc_compact_out : int
  ; mc_outcome : outcome
  ; mc_ts : int
  }

type merge_span =
  { m_kind : string
  ; m_begin : int
  ; mutable m_end : int
  ; mutable m_children : merge_record list
  ; mutable m_closed : bool
  }

type sync_span =
  { s_begin : int
  ; mutable s_end : int
  ; mutable s_outcome : string option
  ; mutable s_closed : bool
  }

type task =
  { id : int
  ; name : string
  ; mutable parent : int option
  ; mutable children : int list
  ; mutable started : bool
  ; mutable start_ts : int
  ; mutable ended : bool
  ; mutable end_ts : int
  ; mutable status : string option
  ; mutable merges : merge_span list
  ; mutable syncs : sync_span list
  ; mutable clones_spawned : int
  ; mutable spawn_cells : int
  ; mutable spawn_copy_bytes : int
  ; mutable aborts_sent : int
  ; mutable validation_fails : int
  ; mutable notes : int
  ; mutable phases : int
  ; mutable epochs : int
  ; mutable epoch_edits : int
  ; mutable delta_bytes : int
  ; mutable snapshot_bytes : int
  ; mutable requests : int
  ; mutable served : int
  ; mutable first_ts : int
  ; mutable last_ts : int
  }

(* Per-document conflict profile, fed by [Doc_merge] events: which documents
   draw the transform storms and how well their journals compact. *)
type doc_stat =
  { doc : string
  ; mutable d_merges : int
  ; mutable d_ops : int
  ; mutable d_transforms : int
  ; mutable d_compact_in : int
  ; mutable d_compact_out : int
  }

type t =
  { tasks : (int, task) Hashtbl.t
  ; docs : (string, doc_stat) Hashtbl.t
  ; mutable order : int list  (* reverse first-appearance while building *)
  ; mutable events : int
  ; mutable t0 : int
  ; mutable t1 : int
  ; mutable finished : bool
  }

(* --- construction ----------------------------------------------------------- *)

(* Per-task transient state while folding the stream: the stack of open
   merge spans (an end closes the innermost begin, mirroring the Chrome
   exporter), the open sync span, and the latest child id for each child
   name (Merge_child carries only the name; ids resolve against the
   emitting parent's own children, so name reuse across sequential runs in
   one trace file never cross-links). *)
type builder =
  { model : t
  ; open_merges : (int, merge_span list) Hashtbl.t
  ; open_syncs : (int, sync_span) Hashtbl.t
  ; child_by_name : (int, (string, int) Hashtbl.t) Hashtbl.t
  }

let create_builder () =
  { model =
      { tasks = Hashtbl.create 64
      ; docs = Hashtbl.create 16
      ; order = []
      ; events = 0
      ; t0 = max_int
      ; t1 = min_int
      ; finished = false
      }
  ; open_merges = Hashtbl.create 16
  ; open_syncs = Hashtbl.create 16
  ; child_by_name = Hashtbl.create 16
  }

let find_or_create b ~name ~id ts =
  match Hashtbl.find_opt b.model.tasks id with
  | Some t ->
    t.last_ts <- max t.last_ts ts;
    t
  | None ->
    let t =
      { id
      ; name
      ; parent = None
      ; children = []
      ; started = false
      ; start_ts = ts
      ; ended = false
      ; end_ts = ts
      ; status = None
      ; merges = []
      ; syncs = []
      ; clones_spawned = 0
      ; spawn_cells = 0
      ; spawn_copy_bytes = 0
      ; aborts_sent = 0
      ; validation_fails = 0
      ; notes = 0
      ; phases = 0
      ; epochs = 0
      ; epoch_edits = 0
      ; delta_bytes = 0
      ; snapshot_bytes = 0
      ; requests = 0
      ; served = 0
      ; first_ts = ts
      ; last_ts = ts
      }
    in
    Hashtbl.replace b.model.tasks id t;
    b.model.order <- id :: b.model.order;
    t

let int_arg name (e : Event.t) =
  match List.assoc_opt name e.Event.args with Some (Event.I i) -> Some i | _ -> None

let str_arg name (e : Event.t) =
  match List.assoc_opt name e.Event.args with Some (Event.S s) -> Some s | _ -> None

let resolve_child b (parent : task) child_name =
  Option.bind (Hashtbl.find_opt b.child_by_name parent.id) (fun tbl ->
      Hashtbl.find_opt tbl child_name)

let add_event b (e : Event.t) =
  if b.model.finished then invalid_arg "Trace_model: add_event after finish";
  let m = b.model in
  m.events <- m.events + 1;
  if e.ts_ns < m.t0 then m.t0 <- e.ts_ns;
  if e.ts_ns > m.t1 then m.t1 <- e.ts_ns;
  let t = find_or_create b ~name:e.task ~id:e.task_id e.ts_ns in
  (match e.kind with
  | Event.Task_start ->
    t.started <- true;
    t.start_ts <- e.ts_ns
  | Event.Task_end ->
    t.ended <- true;
    t.end_ts <- e.ts_ns;
    t.status <- str_arg "status" e
  | Event.Spawn | Event.Clone -> (
    if e.kind = Event.Clone then t.clones_spawned <- t.clones_spawned + 1;
    (* spawn-cost args ride only on Debug-level traces; absent means 0 *)
    t.spawn_cells <- t.spawn_cells + Option.value ~default:0 (int_arg "ws_cells" e);
    t.spawn_copy_bytes <- t.spawn_copy_bytes + Option.value ~default:0 (int_arg "copy_bytes" e);
    match (str_arg "child" e, int_arg "child_id" e) with
    | Some cname, Some cid ->
      let child = find_or_create b ~name:cname ~id:cid e.ts_ns in
      child.parent <- Some t.id;
      t.children <- cid :: t.children;
      let tbl =
        match Hashtbl.find_opt b.child_by_name t.id with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace b.child_by_name t.id tbl;
          tbl
      in
      Hashtbl.replace tbl cname cid
    | _ -> ())
  | Event.Merge_begin ->
    let span =
      { m_kind = Option.value ~default:"?" (str_arg "kind" e)
      ; m_begin = e.ts_ns
      ; m_end = e.ts_ns
      ; m_children = []
      ; m_closed = false
      }
    in
    t.merges <- span :: t.merges;
    Hashtbl.replace b.open_merges t.id
      (span :: Option.value ~default:[] (Hashtbl.find_opt b.open_merges t.id))
  | Event.Merge_child ->
    let cname = Option.value ~default:"?" (str_arg "child" e) in
    let record =
      { mc_child = resolve_child b t cname
      ; mc_child_name = cname
      ; mc_ops = Option.value ~default:0 (int_arg "ops" e)
      ; mc_transforms = Option.value ~default:0 (int_arg "transforms" e)
      ; mc_compact_in = Option.value ~default:0 (int_arg "compact_in" e)
      ; mc_compact_out = Option.value ~default:0 (int_arg "compact_out" e)
      ; mc_outcome =
          Option.value ~default:Merged (Option.bind (str_arg "outcome" e) outcome_of_string)
      ; mc_ts = e.ts_ns
      }
    in
    (match Hashtbl.find_opt b.open_merges t.id with
    | Some (span :: _) -> span.m_children <- record :: span.m_children
    | Some [] | None ->
      (* Merge_child outside a span (verbosity raised mid-merge): keep it on
         a synthetic zero-length span so attribution still sees it. *)
      let span =
        { m_kind = "?"
        ; m_begin = e.ts_ns
        ; m_end = e.ts_ns
        ; m_children = [ record ]
        ; m_closed = true
        }
      in
      t.merges <- span :: t.merges)
  | Event.Merge_end -> (
    match Hashtbl.find_opt b.open_merges t.id with
    | Some (span :: rest) ->
      span.m_end <- e.ts_ns;
      span.m_closed <- true;
      Hashtbl.replace b.open_merges t.id rest
    | Some [] | None -> ())
  | Event.Sync_begin ->
    let span = { s_begin = e.ts_ns; s_end = e.ts_ns; s_outcome = None; s_closed = false } in
    t.syncs <- span :: t.syncs;
    Hashtbl.replace b.open_syncs t.id span
  | Event.Sync_end ->
    (match Hashtbl.find_opt b.open_syncs t.id with
    | Some span ->
      span.s_end <- e.ts_ns;
      span.s_outcome <- str_arg "outcome" e;
      span.s_closed <- true;
      Hashtbl.remove b.open_syncs t.id
    | None -> ())
  | Event.Abort -> t.aborts_sent <- t.aborts_sent + 1
  | Event.Validation_fail -> t.validation_fails <- t.validation_fails + 1
  | Event.Note -> t.notes <- t.notes + 1
  | Event.Phase_begin -> t.phases <- t.phases + 1
  | Event.Phase_end -> ()
  | Event.Epoch_begin -> ()
  | Event.Epoch_end ->
    t.epochs <- t.epochs + 1;
    t.epoch_edits <- t.epoch_edits + Option.value ~default:0 (int_arg "edits" e)
  | Event.Delta_sync ->
    let bytes = Option.value ~default:0 (int_arg "bytes" e) in
    (match str_arg "mode" e with
    | Some "delta" ->
      t.delta_bytes <- t.delta_bytes + bytes;
      t.snapshot_bytes <- t.snapshot_bytes + Option.value ~default:0 (int_arg "snapshot_bytes" e)
    | _ -> t.snapshot_bytes <- t.snapshot_bytes + bytes)
  | Event.Req_begin -> t.requests <- t.requests + 1
  | Event.Req_end -> ()
  | Event.Serve -> t.served <- t.served + 1
  | Event.Epoch_merge -> ()
  | Event.Doc_merge ->
    let doc = Option.value ~default:"?" (str_arg "doc" e) in
    let d =
      match Hashtbl.find_opt m.docs doc with
      | Some d -> d
      | None ->
        let d = { doc; d_merges = 0; d_ops = 0; d_transforms = 0; d_compact_in = 0; d_compact_out = 0 } in
        Hashtbl.replace m.docs doc d;
        d
    in
    d.d_merges <- d.d_merges + 1;
    d.d_ops <- d.d_ops + Option.value ~default:0 (int_arg "ops" e);
    d.d_transforms <- d.d_transforms + Option.value ~default:0 (int_arg "transforms" e);
    d.d_compact_in <- d.d_compact_in + Option.value ~default:0 (int_arg "compact_in" e);
    d.d_compact_out <- d.d_compact_out + Option.value ~default:0 (int_arg "compact_out" e));
  t.last_ts <- max t.last_ts e.ts_ns

let finish b =
  let m = b.model in
  if not m.finished then begin
    let t1 = if m.events = 0 then 0 else m.t1 in
    if m.events = 0 then begin
      m.t0 <- 0;
      m.t1 <- 0
    end;
    Hashtbl.iter
      (fun _ (t : task) ->
        t.children <- List.rev t.children;
        t.merges <- List.rev t.merges;
        t.syncs <- List.rev t.syncs;
        (* Dangling spans and never-ended tasks run to the end of the trace. *)
        List.iter (fun s -> if not s.m_closed then s.m_end <- t1) t.merges;
        List.iter (fun s -> if not s.s_closed then s.s_end <- t1) t.syncs;
        if not t.ended then t.end_ts <- t.last_ts)
      m.tasks;
    m.order <- List.rev m.order;
    m.finished <- true
  end;
  m

let of_events events =
  let b = create_builder () in
  let sorted = List.sort (fun (a : Event.t) c -> compare a.seq c.seq) events in
  List.iter (add_event b) sorted;
  finish b

let of_file path =
  (* Streaming: the file is in emission order already (the JSONL sink
     serializes writers), so aggregates build in one constant-memory pass. *)
  let b = create_builder () in
  Trace_jsonl.fold path ~init:() ~f:(fun () e -> add_event b e);
  finish b

(* --- accessors -------------------------------------------------------------- *)

let task m id = Hashtbl.find_opt m.tasks id

let tasks m = List.filter_map (fun id -> Hashtbl.find_opt m.tasks id) m.order

let roots m = List.filter (fun t -> t.parent = None && t.started) (tasks m)

let duration_ns m = m.t1 - m.t0
let event_count m = m.events
let task_count m = Hashtbl.length m.tasks

let span_ns (t : task) = max 0 (t.end_ts - t.start_ts)

let merge_wait_ns (t : task) =
  List.fold_left (fun acc s -> acc + max 0 (s.m_end - s.m_begin)) 0 t.merges

let sync_wait_ns (t : task) =
  List.fold_left (fun acc s -> acc + max 0 (s.s_end - s.s_begin)) 0 t.syncs

let blocked_ns t = merge_wait_ns t + sync_wait_ns t
let self_ns t = max 0 (span_ns t - blocked_ns t)

let merge_records (t : task) = List.concat_map (fun s -> List.rev s.m_children) t.merges

(* Hottest first: transform calls are the conflict cost the profiler is
   hunting; ties break on ops then name so the table is deterministic. *)
let doc_stats m =
  Hashtbl.fold (fun _ d acc -> d :: acc) m.docs []
  |> List.sort (fun a b ->
         match compare b.d_transforms a.d_transforms with
         | 0 -> ( match compare b.d_ops a.d_ops with 0 -> compare a.doc b.doc | c -> c)
         | c -> c)

let main_root m =
  List.fold_left
    (fun best (t : task) ->
      match best with
      | None -> Some t
      | Some b -> if span_ns t > span_ns b then Some t else best)
    None (roots m)

(* --- printing --------------------------------------------------------------- *)

let pp_ms ppf ns = Format.fprintf ppf "%.2fms" (float_of_int ns /. 1e6)

let pp_task ppf (t : task) =
  Format.fprintf ppf "@[<h>%-24s id=%-5d span=%a self=%a merge-wait=%a sync-wait=%a%s@]" t.name
    t.id pp_ms (span_ns t) pp_ms (self_ns t) pp_ms (merge_wait_ns t) pp_ms (sync_wait_ns t)
    (match t.status with Some s -> " status=" ^ s | None -> "")

let pp_summary ppf m =
  let ts = tasks m in
  let started = List.filter (fun t -> t.started) ts in
  let total_merges = List.fold_left (fun a t -> a + List.length t.merges) 0 ts in
  let total_children = List.fold_left (fun a t -> a + List.length (merge_records t)) 0 ts in
  let total_syncs = List.fold_left (fun a t -> a + List.length t.syncs) 0 ts in
  let total_ops =
    List.fold_left
      (fun a t -> a + List.fold_left (fun a r -> a + r.mc_ops) 0 (merge_records t))
      0 ts
  in
  let total_transforms =
    List.fold_left
      (fun a t -> a + List.fold_left (fun a r -> a + r.mc_transforms) 0 (merge_records t))
      0 ts
  in
  Format.fprintf ppf "events:          %d@." m.events;
  Format.fprintf ppf "tasks:           %d (%d with a lifecycle, %d roots)@."
    (task_count m) (List.length started) (List.length (roots m));
  Format.fprintf ppf "duration:        %a@." pp_ms (duration_ns m);
  Format.fprintf ppf "merge batches:   %d (%d children folded, %d journal ops, %d transforms)@."
    total_merges total_children total_ops total_transforms;
  Format.fprintf ppf "syncs:           %d@." total_syncs;
  (match main_root m with
  | Some r -> Format.fprintf ppf "main root:       %s (id %d, %a)@." r.name r.id pp_ms (span_ns r)
  | None -> ());
  let by_span = List.sort (fun a b -> compare (span_ns b) (span_ns a)) started in
  let top = List.filteri (fun i _ -> i < 12) by_span in
  if top <> [] then begin
    Format.fprintf ppf "@.top tasks by span:@.";
    List.iter (fun t -> Format.fprintf ppf "  %a@." pp_task t) top
  end
