(** Chrome [trace_event] export.

    Record events with {!sink}, then {!write_file} a JSON object whose
    [traceEvents] array loads directly into [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.  Begin/end event pairs
    ([Task_start]/[Task_end], [Merge_begin]/[Merge_end],
    [Sync_begin]/[Sync_end], [Phase_begin]/[Phase_end]) are matched per
    task id and emitted as complete ["X"] slices with derived durations;
    everything else becomes an instant.  Task ids map to trace thread ids
    (with ["thread_name"] metadata naming each after its task), so a
    spawn/merge tree renders as one swimlane per task. *)

type recorder

val recorder : unit -> recorder

val sink : recorder -> Sink.t
(** Append every event to the recorder (thread-safe). *)

val events : recorder -> Event.t list
(** Everything recorded so far, in timestamp order. *)

val to_json : recorder -> Json.t
(** The full trace document: [{"traceEvents": [...], ...}]. *)

val write : recorder -> out_channel -> unit
val write_file : recorder -> string -> unit
