module M = Trace_model

type row =
  { task : string
  ; task_id : int
  ; spawns : int
  ; clones : int
  ; spawn_cells : int
  ; spawn_copy_bytes : int
  ; merge_batches : int
  ; children_merged : int
  ; ops_folded : int
  ; transforms : int
  ; compact_in : int
  ; compact_out : int
  ; merged_ok : int
  ; aborted : int
  ; validation_failed : int
  ; merge_ns : int
  ; sync_waits : int
  ; sync_ns : int
  ; epochs : int
  ; epoch_edits : int
  ; delta_bytes : int
  ; snapshot_bytes : int
  ; self_ns : int
  ; span_ns : int
  }

let row_of_task (t : M.task) =
  let records = M.merge_records t in
  let count o = List.length (List.filter (fun r -> r.M.mc_outcome = o) records) in
  { task = t.M.name
  ; task_id = t.M.id
  ; spawns = List.length t.M.children - t.M.clones_spawned
  ; clones = t.M.clones_spawned
  ; spawn_cells = t.M.spawn_cells
  ; spawn_copy_bytes = t.M.spawn_copy_bytes
  ; merge_batches = List.length t.M.merges
  ; children_merged = List.length records
  ; ops_folded = List.fold_left (fun a r -> a + r.M.mc_ops) 0 records
  ; transforms = List.fold_left (fun a r -> a + r.M.mc_transforms) 0 records
  ; compact_in = List.fold_left (fun a r -> a + r.M.mc_compact_in) 0 records
  ; compact_out = List.fold_left (fun a r -> a + r.M.mc_compact_out) 0 records
  ; merged_ok = count M.Merged
  ; aborted = count M.Aborted
  ; validation_failed = count M.Validation_failed
  ; merge_ns = M.merge_wait_ns t
  ; sync_waits = List.length t.M.syncs
  ; sync_ns = M.sync_wait_ns t
  ; epochs = t.M.epochs
  ; epoch_edits = t.M.epoch_edits
  ; delta_bytes = t.M.delta_bytes
  ; snapshot_bytes = t.M.snapshot_bytes
  ; self_ns = M.self_ns t
  ; span_ns = M.span_ns t
  }

let of_model model = List.map row_of_task (List.filter (fun (t : M.task) -> t.M.started) (M.tasks model))

(* --- conflict profiler: hot documents ---------------------------------------- *)

(* Per-document view of the same accounting: which documents drew the
   transform storms.  Rows come pre-sorted hottest-first from
   {!Trace_model.doc_stats}; only traces carrying [Doc_merge] events (the
   shard service at Debug) produce any. *)
type doc_row =
  { doc : string
  ; doc_merges : int
  ; doc_ops : int
  ; doc_transforms : int
  ; doc_compact_in : int
  ; doc_compact_out : int
  }

let docs_of_model model =
  List.map
    (fun (d : M.doc_stat) ->
      { doc = d.M.doc
      ; doc_merges = d.M.d_merges
      ; doc_ops = d.M.d_ops
      ; doc_transforms = d.M.d_transforms
      ; doc_compact_in = d.M.d_compact_in
      ; doc_compact_out = d.M.d_compact_out
      })
    (M.doc_stats model)

let doc_to_json d =
  Json.Obj
    [ ("doc", Json.String d.doc)
    ; ("merges", Json.Int d.doc_merges)
    ; ("ops", Json.Int d.doc_ops)
    ; ("transforms", Json.Int d.doc_transforms)
    ; ("compact_in", Json.Int d.doc_compact_in)
    ; ("compact_out", Json.Int d.doc_compact_out)
    ]

let docs_to_json docs = Json.List (List.map doc_to_json docs)

let pp_docs ppf docs =
  Format.fprintf ppf "%-24s %7s %7s %7s %9s %11s@." "document" "merges" "ops" "xform"
    "compact" "ratio";
  List.iter
    (fun d ->
      let ratio =
        if d.doc_compact_in > 0 then
          Printf.sprintf "%.2f" (float_of_int d.doc_compact_out /. float_of_int d.doc_compact_in)
        else "-"
      in
      Format.fprintf ppf "%-24s %7d %7d %7d %4d->%-4d %11s@." d.doc d.doc_merges d.doc_ops
        d.doc_transforms d.doc_compact_in d.doc_compact_out ratio)
    docs

let totals rows =
  List.fold_left
    (fun acc r ->
      { acc with
        spawns = acc.spawns + r.spawns
      ; clones = acc.clones + r.clones
      ; spawn_cells = acc.spawn_cells + r.spawn_cells
      ; spawn_copy_bytes = acc.spawn_copy_bytes + r.spawn_copy_bytes
      ; merge_batches = acc.merge_batches + r.merge_batches
      ; children_merged = acc.children_merged + r.children_merged
      ; ops_folded = acc.ops_folded + r.ops_folded
      ; transforms = acc.transforms + r.transforms
      ; compact_in = acc.compact_in + r.compact_in
      ; compact_out = acc.compact_out + r.compact_out
      ; merged_ok = acc.merged_ok + r.merged_ok
      ; aborted = acc.aborted + r.aborted
      ; validation_failed = acc.validation_failed + r.validation_failed
      ; merge_ns = acc.merge_ns + r.merge_ns
      ; sync_waits = acc.sync_waits + r.sync_waits
      ; sync_ns = acc.sync_ns + r.sync_ns
      ; epochs = acc.epochs + r.epochs
      ; epoch_edits = acc.epoch_edits + r.epoch_edits
      ; delta_bytes = acc.delta_bytes + r.delta_bytes
      ; snapshot_bytes = acc.snapshot_bytes + r.snapshot_bytes
      ; self_ns = acc.self_ns + r.self_ns
      ; span_ns = acc.span_ns + r.span_ns
      })
    { task = "TOTAL"
    ; task_id = -1
    ; spawns = 0
    ; clones = 0
    ; spawn_cells = 0
    ; spawn_copy_bytes = 0
    ; merge_batches = 0
    ; children_merged = 0
    ; ops_folded = 0
    ; transforms = 0
    ; compact_in = 0
    ; compact_out = 0
    ; merged_ok = 0
    ; aborted = 0
    ; validation_failed = 0
    ; merge_ns = 0
    ; sync_waits = 0
    ; sync_ns = 0
    ; epochs = 0
    ; epoch_edits = 0
    ; delta_bytes = 0
    ; snapshot_bytes = 0
    ; self_ns = 0
    ; span_ns = 0
    }
    rows

let transforms_observed rows = (totals rows).transforms

(* The trace-derived totals under the very names the live {!Metrics}
   registry uses, so a post-hoc [sm-trace attribute] (or [expo]) can be
   compared 1:1 against a `bench --obs` dump of the same run. *)
let metric_view rows =
  let t = totals rows in
  [ ("ot.compact_in", t.compact_in)
  ; ("ot.compact_out", t.compact_out)
  ; ("ot.transform_calls", t.transforms)
  ; ("runtime.clones", t.clones)
  ; ("runtime.merged_children", t.children_merged)
  ; ("runtime.ops_merged", t.ops_folded)
  ; ("runtime.spawns", t.spawns)
  ; ("runtime.syncs", t.sync_waits)
  ; ("runtime.validation_failures", t.validation_failed)
  ; ("shard.epochs", t.epochs)
  ; ("shard.epoch_edits", t.epoch_edits)
  ; ("shard.delta_bytes", t.delta_bytes)
  ; ("shard.snapshot_bytes", t.snapshot_bytes)
  ]

let to_json rows =
  let obj r =
    Json.Obj
      [ ("task", Json.String r.task)
      ; ("task_id", Json.Int r.task_id)
      ; ("spawns", Json.Int r.spawns)
      ; ("clones", Json.Int r.clones)
      ; ("spawn_cells", Json.Int r.spawn_cells)
      ; ("spawn_copy_bytes", Json.Int r.spawn_copy_bytes)
      ; ("merge_batches", Json.Int r.merge_batches)
      ; ("children_merged", Json.Int r.children_merged)
      ; ("ops_folded", Json.Int r.ops_folded)
      ; ("transforms", Json.Int r.transforms)
      ; ("compact_in", Json.Int r.compact_in)
      ; ("compact_out", Json.Int r.compact_out)
      ; ("merged", Json.Int r.merged_ok)
      ; ("aborted", Json.Int r.aborted)
      ; ("validation_failed", Json.Int r.validation_failed)
      ; ("merge_ns", Json.Int r.merge_ns)
      ; ("sync_waits", Json.Int r.sync_waits)
      ; ("sync_ns", Json.Int r.sync_ns)
      ; ("epochs", Json.Int r.epochs)
      ; ("epoch_edits", Json.Int r.epoch_edits)
      ; ("delta_bytes", Json.Int r.delta_bytes)
      ; ("snapshot_bytes", Json.Int r.snapshot_bytes)
      ; ("self_ns", Json.Int r.self_ns)
      ; ("span_ns", Json.Int r.span_ns)
      ]
  in
  Json.Obj
    [ ("tasks", Json.List (List.map obj rows))
    ; ("totals", obj (totals rows))
    ; ( "metrics"
      , Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (metric_view rows)) )
    ]

let pp ppf rows =
  let ms ns = float_of_int ns /. 1e6 in
  Format.fprintf ppf "%-24s %6s %6s %7s %7s %6s %5s %5s %9s %9s %9s@." "task" "spawns"
    "merges" "folded" "ops" "xform" "abrt" "vfail" "merge" "sync" "self";
  let line r =
    Format.fprintf ppf "%-24s %6d %6d %7d %7d %6d %5d %5d %7.2fms %7.2fms %7.2fms@." r.task
      r.spawns r.merge_batches r.children_merged r.ops_folded r.transforms r.aborted
      r.validation_failed (ms r.merge_ns) (ms r.sync_ns) (ms r.self_ns)
  in
  let by_span = List.sort (fun a b -> compare b.span_ns a.span_ns) rows in
  List.iter line by_span;
  line (totals rows);
  Format.fprintf ppf "@.trace-derived metric totals (compare with a --obs dump):@.";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-32s %d@." k v) (metric_view rows);
  let t = totals rows in
  if t.compact_in > 0 then
    Format.fprintf ppf "  %-32s %.2f (%d -> %d ops)@." "compaction ratio"
      (float_of_int t.compact_out /. float_of_int t.compact_in)
      t.compact_in t.compact_out;
  if t.spawn_cells > 0 then
    Format.fprintf ppf "  %-32s %d cells shared, %d bytes deep-copied%s@." "spawn cost"
      t.spawn_cells t.spawn_copy_bytes
      (if t.spawn_copy_bytes = 0 then " (copy-on-write)" else "");
  if t.epochs > 0 then
    Format.fprintf ppf "  %-32s %d epochs, %d edits folded@." "shard epochs" t.epochs
      t.epoch_edits;
  if t.snapshot_bytes > 0 && t.delta_bytes > 0 then
    Format.fprintf ppf "  %-32s %.1f%% (%d of %d snapshot bytes)@." "delta/snapshot bytes"
      (100. *. float_of_int t.delta_bytes /. float_of_int t.snapshot_bytes)
      t.delta_bytes t.snapshot_bytes
