(* The flight recorder is the always-on counterpart of the sink: a bounded
   ring of recent events per component, recorded regardless of the sink
   verbosity, so a crash or refusal can ship its last-N-events post-mortem
   even from a run that traced nothing.  Recording is one gated branch plus
   a ring store; dumping renders the *structural* view (kind/task/args, no
   seq/ts), which is what makes dumps byte-comparable across executors and
   reruns of the same seed. *)

type t =
  { name : string
  ; cap : int
  ; ring : Event.t option array
  ; mutable head : int  (* next write slot *)
  ; mutable len : int
  ; mutable recorded : int  (* total ever recorded, evicted included *)
  }

let default_capacity = 256

(* One global on/off switch, separate from the sink verbosity: the recorder
   defaults ON (it is the post-mortem of last resort) and the overhead
   bench gates that this default stays within noise of recorder-off. *)
let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Process-global registry, newest instance wins per name: components that
   are re-created per run (shard servers in a fuzz loop) keep one live
   recorder per lane, and [dump_all] sees exactly the latest run's rings. *)
let registry : (string * t) list ref = ref []
let registry_lock = Mutex.create ()

let create ?(capacity = default_capacity) name =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity must be positive";
  let t = { name; cap = capacity; ring = Array.make capacity None; head = 0; len = 0; recorded = 0 } in
  Mutex.protect registry_lock (fun () ->
      registry := (name, t) :: List.remove_assoc name !registry);
  t

let name t = t.name
let capacity t = t.cap
let length t = t.len
let recorded t = t.recorded

let record t e =
  if Atomic.get enabled_flag then begin
    t.ring.(t.head) <- Some e;
    t.head <- (t.head + 1) mod t.cap;
    if t.len < t.cap then t.len <- t.len + 1;
    t.recorded <- t.recorded + 1
  end

let clear t =
  Array.fill t.ring 0 t.cap None;
  t.head <- 0;
  t.len <- 0

(* Oldest-first: the ring's eviction order is the dump's reading order. *)
let events t =
  let start = (t.head - t.len + t.cap) mod t.cap in
  List.init t.len (fun i ->
      match t.ring.((start + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

(* Structural dump lines: kind, task and structural args only.  seq/ts_ns
   are run-local (allocation- and clock-ordered) and would make two
   identical post-mortems compare unequal; what a dump must witness is the
   event *sequence*, which survives intact. *)
let line_of_event (e : Event.t) =
  let kind, task, args = Event.structure e in
  Json.to_string
    (Json.Obj
       [ ("kind", Json.String (Event.kind_to_string kind))
       ; ("task", Json.String task)
       ; ( "args"
         , Json.Obj
             (List.map
                (fun (k, v) ->
                  ( k
                  , match v with
                    | Event.I i -> Json.Int i
                    | Event.F f -> Json.Float f
                    | Event.S s -> Json.String s
                    | Event.B b -> Json.Bool b ))
                args) )
       ])

let dump_lines t = List.map line_of_event (events t)

let all () = List.sort (fun (a, _) (b, _) -> String.compare a b) !registry

let dump_all () = List.map (fun (name, t) -> (name, dump_lines t)) (all ())

(* --- hazard-triggered dumps -------------------------------------------------- *)

(* [trigger] snapshots every registered ring at the moment something went
   wrong (a Nack, a chaos resume, a DetSan hazard) and keeps the latest
   snapshot for whoever reports the failure — the fuzz targets embed it in
   their reports, [write_dir] persists it for CI artifacts. *)
let last : (string * (string * string list) list) option ref = ref None

let trigger ~reason =
  if Atomic.get enabled_flag then
    let dumps = dump_all () in
    Mutex.protect registry_lock (fun () -> last := Some (reason, dumps))

let last_trigger () = !last
let clear_trigger () = Mutex.protect registry_lock (fun () -> last := None)

(* Run isolation for fuzz loops: a shrunk 1-shard replay must not dump the
   stale shard1..3 rings a previous 4-shard run left registered. *)
let reset () =
  Mutex.protect registry_lock (fun () ->
      registry := [];
      last := None)

let lane_file name =
  String.map (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' as c -> c | _ -> '_') name

let write_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, lines) ->
      let path = Filename.concat dir (lane_file name ^ ".flight.jsonl") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            lines))
    (dump_all ())
