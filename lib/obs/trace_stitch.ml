(* Cross-replica trace stitching: several per-rank (or per-process) JSONL
   lanes go in, one causal tree per request comes out.  Events that carry a
   {!Trace_ctx} (as "trace"/"span"/"parent" int args) are grouped by trace
   id across every lane, then linked span -> parent-span; everything the
   renderer prints is structural (lane names, kinds, args — never seq or
   timestamps), so the stitched view of a deterministic run is
   byte-identical across executors and reruns. *)

type span =
  { ctx : Trace_ctx.t
  ; mutable events : (string * Event.t) list  (* (lane, event) *)
  ; mutable children : span list
  ; mutable dangling : bool  (* parent <> 0 but never seen: orphaned root *)
  }

type trace =
  { trace_id : int
  ; roots : span list
  ; span_count : int
  ; event_count : int
  }

(* Lanes are stitched in the caller-supplied order and events keep their
   in-lane order (the JSONL sink serializes writers, so in-lane order is
   emission order — deterministic whenever the run is). *)
let stitch lanes =
  let spans : (int * int, span) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (lane, events) ->
      List.iter
        (fun (e : Event.t) ->
          match Trace_ctx.of_event e with
          | None -> ()
          | Some ctx ->
            let key = (ctx.Trace_ctx.trace, ctx.Trace_ctx.span) in
            let s =
              match Hashtbl.find_opt spans key with
              | Some s -> s
              | None ->
                let s = { ctx; events = []; children = []; dangling = false } in
                Hashtbl.replace spans key s;
                order := key :: !order;
                s
            in
            s.events <- (lane, e) :: s.events)
        events)
    lanes;
  let all = List.rev_map (fun key -> Hashtbl.find spans key) !order in
  List.iter (fun s -> s.events <- List.rev s.events) all;
  (* Link children; spans whose parent never showed up in any lane stay
     roots, flagged dangling so the renderer can say so. *)
  let traces : (int, span list ref) Hashtbl.t = Hashtbl.create 16 in
  let trace_order = ref [] in
  List.iter
    (fun s ->
      let tid = s.ctx.Trace_ctx.trace in
      let roots =
        match Hashtbl.find_opt traces tid with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace traces tid r;
          trace_order := tid :: !trace_order;
          r
      in
      let parent = s.ctx.Trace_ctx.parent in
      if parent = 0 then roots := s :: !roots
      else
        match Hashtbl.find_opt spans (tid, parent) with
        | Some p -> p.children <- s :: p.children
        | None ->
          s.dangling <- true;
          roots := s :: !roots)
    all;
  (* Deterministic shape regardless of lane arrival order: children and
     roots sort by span id (label-derived, so stable across runs). *)
  let by_span a b = compare a.ctx.Trace_ctx.span b.ctx.Trace_ctx.span in
  List.iter (fun s -> s.children <- List.sort by_span s.children) all;
  let rec count_spans s = 1 + List.fold_left (fun a c -> a + count_spans c) 0 s.children
  and count_events s =
    List.length s.events + List.fold_left (fun a c -> a + count_events c) 0 s.children
  in
  List.rev_map
    (fun tid ->
      let roots = List.sort by_span !(Hashtbl.find traces tid) in
      { trace_id = tid
      ; roots
      ; span_count = List.fold_left (fun a s -> a + count_spans s) 0 roots
      ; event_count = List.fold_left (fun a s -> a + count_events s) 0 roots
      })
    !trace_order
  |> List.sort (fun a b -> compare a.trace_id b.trace_id)

let lane_of_file path = Filename.remove_extension (Filename.basename path)

let of_files paths =
  stitch (List.map (fun p -> (lane_of_file p, Trace_jsonl.load p)) paths)

(* --- rendering --------------------------------------------------------------- *)

let ctx_arg = function "trace" | "span" | "parent" -> true | _ -> false

let pp_event ppf (lane, (e : Event.t)) =
  Format.fprintf ppf "[%s] %s %s" lane (Event.kind_to_string e.Event.kind) e.Event.task;
  List.iter
    (fun (k, v) -> if not (ctx_arg k) then Format.fprintf ppf " %s=%a" k Event.pp_arg v)
    (Event.structure e |> fun (_, _, args) -> args)

let rec pp_span ppf ~indent s =
  let pad = String.make indent ' ' in
  Format.fprintf ppf "%sspan s%x%s@." pad s.ctx.Trace_ctx.span
    (if s.dangling then Printf.sprintf " (orphan of s%x)" s.ctx.Trace_ctx.parent else "");
  List.iter (fun le -> Format.fprintf ppf "%s  %a@." pad pp_event le) s.events;
  List.iter (pp_span ppf ~indent:(indent + 2)) s.children

let pp_trace ppf t =
  Format.fprintf ppf "trace t%x: %d spans, %d events@." t.trace_id t.span_count t.event_count;
  List.iter (pp_span ppf ~indent:2) t.roots

let pp ppf traces =
  Format.fprintf ppf "%d trace%s stitched@." (List.length traces)
    (if List.length traces = 1 then "" else "s");
  List.iter (fun t -> Format.fprintf ppf "@.%a" pp_trace t) traces

let to_string traces = Format.asprintf "%a" pp traces
