(** Generic named spans: a [Phase_begin]/[Phase_end] event pair on the same
    task, which trace exporters render as one slice.  Durations are derived
    by sinks from the two timestamps; pass [?hist] to additionally feed a
    latency histogram (only sampled when {!Metrics} are enabled). *)

val with_ :
  ?level:Verbosity.level ->
  ?args:(string * Event.arg) list ->
  ?hist:Metrics.histogram ->
  task:string ->
  task_id:int ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_ ~task ~task_id name f] brackets [f] with a span named [name]
    (default level [Debug]).  When neither tracing nor [?hist] timing is
    active this is one branch around [f].  [?args] decorate the begin event
    only.  The end event is emitted even when [f] raises. *)

val begin_ :
  ?level:Verbosity.level ->
  ?args:(string * Event.arg) list ->
  task:string ->
  task_id:int ->
  string ->
  unit

val end_ :
  ?level:Verbosity.level ->
  ?args:(string * Event.arg) list ->
  task:string ->
  task_id:int ->
  string ->
  unit
(** Manual halves of {!with_}, for spans that cross scopes. *)
