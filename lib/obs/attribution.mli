(** Per-task and per-merge cost breakdown of a recorded run.

    Joins the accounting the runtime stamps on {!Event.Merge_child} events
    (journal ops folded, OT transform calls, outcome) with the span-derived
    durations of {!Trace_model}: for every task, how much it spawned,
    merged, folded, transformed, aborted, and how its wall-clock split into
    own compute vs merge/sync blocking.  {!metric_view} re-states the trace
    totals under the live {!Metrics} registry's names, so a post-hoc
    [sm-trace attribute] is directly comparable with a [--obs] dump of the
    same run. *)

type row =
  { task : string
  ; task_id : int
  ; spawns : int
  ; clones : int
  ; spawn_cells : int
      (** workspace cells shared across this task's spawns/clones (Debug
          traces only — the spawn-cost args ride at Debug) *)
  ; spawn_copy_bytes : int
      (** bytes those spawns deep-copied: 0 under copy-on-write, the
          per-spawn [Data.S.copy_state] total under the [set_cow]-off
          baseline *)
  ; merge_batches : int  (** merge-family calls *)
  ; children_merged : int  (** [Merge_child] folds performed *)
  ; ops_folded : int
  ; transforms : int
  ; compact_in : int  (** operations handed to journal compaction *)
  ; compact_out : int  (** operations surviving compaction *)
  ; merged_ok : int
  ; aborted : int
  ; validation_failed : int
  ; merge_ns : int  (** time blocked in merge-family calls *)
  ; sync_waits : int
  ; sync_ns : int  (** time blocked at sync points *)
  ; epochs : int  (** shard epochs closed ([Epoch_end]) *)
  ; epoch_edits : int  (** client edits folded across those epochs *)
  ; delta_bytes : int  (** sync payload bytes shipped as deltas *)
  ; snapshot_bytes : int  (** snapshot bytes, shipped or counterfactual *)
  ; self_ns : int
  ; span_ns : int
  }

val row_of_task : Trace_model.task -> row

val of_model : Trace_model.t -> row list
(** One row per started task, first-appearance order. *)

val totals : row list -> row
(** Sum row (named ["TOTAL"], id [-1]). *)

val metric_view : row list -> (string * int) list
(** Trace-derived totals keyed by the corresponding live metric names
    ([ot.transform_calls], [runtime.ops_merged], ...), sorted by name. *)

val transforms_observed : row list -> int
(** The summed [transforms] across rows — the observed OT work of the
    recorded run, what a static [sm-lint cost] bound must dominate
    ([sm-lint cost --trace] diffs exactly this number). *)

val to_json : row list -> Json.t
val pp : Format.formatter -> row list -> unit

(** {1 Conflict profiler: hot documents} *)

(** Per-document attribution from {!Event.Doc_merge} events: which
    documents drew the transform calls and how well their journals
    compacted.  Empty unless the trace was taken at Debug verbosity over
    the shard service. *)
type doc_row =
  { doc : string  (** document wire name *)
  ; doc_merges : int  (** epochs that folded edits into it *)
  ; doc_ops : int
  ; doc_transforms : int
  ; doc_compact_in : int
  ; doc_compact_out : int
  }

val docs_of_model : Trace_model.t -> doc_row list
(** Hottest (most transforms) first. *)

val docs_to_json : doc_row list -> Json.t
val pp_docs : Format.formatter -> doc_row list -> unit
