type divergence =
  { index : int
  ; left : Event.t option
  ; right : Event.t option
  }

type result =
  | Equal of int
  | Diverged of divergence

let equal_result = function Equal _ -> true | Diverged _ -> false

(* Structural comparison only: seq, ts_ns, task_id and the "child_id"
   argument are allocation/time artifacts that legitimately differ between
   two runs of the same program (see Event.structure). *)
let compare_events a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> Equal i
    | ea :: _, [] -> Diverged { index = i; left = Some ea; right = None }
    | [], eb :: _ -> Diverged { index = i; left = None; right = Some eb }
    | ea :: ra, eb :: rb ->
      if Event.equal_structure ea eb then go (i + 1) ra rb
      else Diverged { index = i; left = Some ea; right = Some eb }
  in
  go 0 a b

(* Streaming pairwise walk over two files: constant memory, stops at the
   first divergence. *)
let compare_files path_a path_b =
  let ic_a = open_in path_a and ic_b = open_in path_b in
  Fun.protect
    ~finally:(fun () ->
      close_in_noerr ic_a;
      close_in_noerr ic_b)
    (fun () ->
      let next ic =
        let rec go () =
          match input_line ic with
          | line -> if String.trim line = "" then go () else Some (Trace_jsonl.event_of_line line)
          | exception End_of_file -> None
        in
        go ()
      in
      let rec walk i =
        match (next ic_a, next ic_b) with
        | None, None -> Equal i
        | (Some _ as l), None -> Diverged { index = i; left = l; right = None }
        | None, (Some _ as r) -> Diverged { index = i; left = None; right = r }
        | (Some ea as l), (Some eb as r) ->
          if Event.equal_structure ea eb then walk (i + 1)
          else Diverged { index = i; left = l; right = r }
      in
      walk 0)

let pp_side ppf = function
  | Some e -> Event.pp ppf e
  | None -> Format.pp_print_string ppf "<trace ended>"

let pp_result ppf = function
  | Equal n -> Format.fprintf ppf "traces are structurally identical (%d events)" n
  | Diverged d ->
    Format.fprintf ppf
      "@[<v>traces diverge at event %d:@;<1 2>left:  %a@;<1 2>right: %a@]" d.index pp_side
      d.left pp_side d.right
