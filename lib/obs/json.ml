type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats always print with a '.' or exponent so they parse back as Float,
   keeping Int/Float distinguishable across a round-trip.  JSON has no
   literal for non-finite numbers ("%.17g" would emit nan/inf and corrupt
   the document): nan becomes null, and the infinities are emitted as the
   overflowing-but-valid numerals 1e999/-1e999, which float_of_string reads
   back as the infinities — so they survive a round-trip as Float. *)
let float_repr f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* --- parsing ---------------------------------------------------------------- *)

type parser_state =
  { src : string
  ; mutable pos : int
  }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if st.pos + 4 >= String.length st.src then fail st "truncated \\u escape";
        let hex = String.sub st.src (st.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some u -> utf8_of_code buf u
        | None -> fail st "bad \\u escape");
        st.pos <- st.pos + 4
      | _ -> fail st "bad escape");
      st.pos <- st.pos + 1;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> ( match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elems (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elems [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- accessors -------------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
