(* Wall time squeezed into a strictly increasing nanosecond counter.  OCaml
   5.1 has no monotonic clock in the stdlib, so we clamp gettimeofday: any
   read that is not strictly greater than the previous one across the whole
   process becomes previous+1.  Strict monotonicity gives every event a
   unique timestamp, which keeps Chrome-trace spans well-nested even when
   two events land in the same gettimeofday tick. *)

let last = Atomic.make 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec bump () =
    let prev = Atomic.get last in
    let t' = if t > prev then t else prev + 1 in
    if Atomic.compare_and_set last prev t' then t' else bump ()
  in
  bump ()
