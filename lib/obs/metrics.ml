type counter =
  { cname : string
  ; cell : int Atomic.t
  }

type histogram =
  { hname : string
  ; hlock : Mutex.t
  ; samples : float Sm_util.Vec.t
  ; mutable hseen : int  (* observations since the last reset, kept vs dropped *)
  ; mutable hrng : int  (* per-histogram LCG state for reservoir replacement *)
  }

type metric =
  | Counter of counter
  | Histogram of histogram

(* Recording is gated on one flag so the hot paths (OT transform counting,
   workspace-copy timing) cost an atomic load and a branch when profiling is
   off.  Reading is always allowed. *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let is_enabled () = Atomic.get enabled_flag

(* 0 means unbounded (the historical behavior).  With a cap, histograms
   switch to reservoir sampling (algorithm R) once full, so a long --obs run
   or a periodic reporter holds at most [cap] floats per histogram while the
   kept set stays a uniform sample of everything observed. *)
let cap_cell = Atomic.make 0

let set_sample_cap = function
  | None -> Atomic.set cap_cell 0
  | Some c when c >= 1 -> Atomic.set cap_cell c
  | Some c -> invalid_arg (Printf.sprintf "Metrics.set_sample_cap: cap %d < 1" c)

let sample_cap () = match Atomic.get cap_cell with 0 -> None | c -> Some c

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let register name make cast =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> cast m
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        cast m)

let counter name =
  register name
    (fun () -> Counter { cname = name; cell = Atomic.make 0 })
    (function
      | Counter c -> c
      | Histogram _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is a histogram" name))

let histogram name =
  register name
    (fun () ->
      Histogram
        { hname = name
        ; hlock = Mutex.create ()
        ; samples = Sm_util.Vec.create ()
        ; hseen = 0
        ; hrng = Hashtbl.hash name land 0x3FFFFFFF
        })
    (function
      | Histogram h -> h
      | Counter _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is a counter" name))

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let value c = Atomic.get c.cell
let counter_name c = c.cname

let observe h x =
  if Atomic.get enabled_flag then
    Mutex.protect h.hlock (fun () ->
        h.hseen <- h.hseen + 1;
        let cap = Atomic.get cap_cell in
        if cap = 0 || Sm_util.Vec.length h.samples < cap then Sm_util.Vec.push h.samples x
        else begin
          (* Vitter's algorithm R: keep the new sample with probability
             cap/seen, evicting a uniformly chosen resident.  A 31-bit LCG
             is plenty for sampling and keeps the module dependency-free. *)
          h.hrng <- ((h.hrng * 1103515245) + 12345) land 0x3FFFFFFFFFFF;
          let j = h.hrng mod h.hseen in
          if j < cap then Sm_util.Vec.set h.samples j x
        end)

let observe_ns h ~since = observe h (float_of_int (Clock.now_ns () - since))

let samples h = Mutex.protect h.hlock (fun () -> Sm_util.Vec.to_list h.samples)
let observed_count h = Mutex.protect h.hlock (fun () -> h.hseen)
let histogram_name h = h.hname

let summary h =
  match samples h with [] -> None | xs -> Some (Sm_util.Stats.summarize xs)

let percentile h ~p =
  match samples h with [] -> None | xs -> Some (Sm_util.Stats.percentile xs ~p)

let time h f =
  if Atomic.get enabled_flag then begin
    let t0 = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> observe_ns h ~since:t0) f
  end
  else f ()

let sorted_metrics () =
  Mutex.protect registry_lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  |> List.sort (fun a b ->
         let name = function Counter c -> c.cname | Histogram h -> h.hname in
         String.compare (name a) (name b))

let counters () =
  List.filter_map (function Counter c -> Some (c.cname, value c) | Histogram _ -> None)
    (sorted_metrics ())

let histograms () =
  List.filter_map
    (function
      | Histogram h -> Option.map (fun s -> (h.hname, s)) (summary h)
      | Counter _ -> None)
    (sorted_metrics ())

let raw_histograms () =
  List.filter_map
    (function
      | Histogram h -> ( match samples h with [] -> None | xs -> Some (h.hname, xs))
      | Counter _ -> None)
    (sorted_metrics ())

let reset () =
  List.iter
    (function
      | Counter c -> Atomic.set c.cell 0
      | Histogram h ->
        Mutex.protect h.hlock (fun () ->
            Sm_util.Vec.clear h.samples;
            h.hseen <- 0))
    (sorted_metrics ())

let dump ppf () =
  List.iter
    (function
      | Counter c ->
        let v = value c in
        if v <> 0 then Format.fprintf ppf "%-32s %d@." c.cname v
      | Histogram h -> (
        match summary h with
        | None -> ()
        | Some s ->
          let p95 = Option.value ~default:nan (percentile h ~p:95.0) in
          Format.fprintf ppf "%-32s n=%d mean=%.0f p50=%.0f p95=%.0f max=%.0f@." h.hname s.n
            s.mean s.median p95 s.max))
    (sorted_metrics ())
