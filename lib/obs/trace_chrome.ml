type recorder =
  { lock : Mutex.t
  ; events : Event.t Sm_util.Vec.t
  }

let recorder () = { lock = Mutex.create (); events = Sm_util.Vec.create () }

let sink r = Sink.make (fun e -> Mutex.protect r.lock (fun () -> Sm_util.Vec.push r.events e))

let events r =
  Mutex.protect r.lock (fun () -> Sm_util.Vec.to_list r.events)
  |> List.sort (fun (a : Event.t) b -> compare (a.ts_ns, a.seq) (b.ts_ns, b.seq))

(* Which begin kind a given end kind closes. *)
let opener = function
  | Event.Task_end -> Some Event.Task_start
  | Event.Merge_end -> Some Event.Merge_begin
  | Event.Sync_end -> Some Event.Sync_begin
  | Event.Phase_end -> Some Event.Phase_begin
  | Event.Epoch_end -> Some Event.Epoch_begin
  | _ -> None

let is_opener = function
  | Event.Task_start | Event.Merge_begin | Event.Sync_begin | Event.Phase_begin
  | Event.Epoch_begin ->
    true
  | _ -> false

let str_arg name (e : Event.t) =
  match List.assoc_opt name e.args with Some (Event.S s) -> Some s | _ -> None

let span_name (e : Event.t) =
  match e.kind with
  | Event.Task_start -> "task " ^ e.task
  | Event.Merge_begin -> "merge:" ^ Option.value ~default:"?" (str_arg "kind" e)
  | Event.Sync_begin -> "sync"
  | Event.Phase_begin -> Option.value ~default:"phase" (str_arg "name" e)
  | Event.Epoch_begin -> "epoch"
  | k -> Event.kind_to_string k

let args_json (e : Event.t) =
  Json.Obj
    (("kind", Json.String (Event.kind_to_string e.kind))
    :: ("task", Json.String e.task)
    :: List.map (fun (k, v) -> (k, Trace_jsonl.arg_to_json v)) e.args)

(* Pair begin/end events per thread id into Chrome "X" (complete) slices;
   everything unpaired becomes an instant.  The per-tid stack tolerates
   interleaved span kinds (an end closes the nearest matching begin). *)
let to_json r =
  let evs = events r in
  let t0 = match evs with [] -> 0 | e :: _ -> e.Event.ts_ns in
  let last_ts = List.fold_left (fun _ (e : Event.t) -> e.ts_ns) t0 evs in
  let us ts = float_of_int (ts - t0) /. 1000.0 in
  let stacks : (int, Event.t list) Hashtbl.t = Hashtbl.create 16 in
  let names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let complete (b : Event.t) ~until ~(closing : Event.t option) =
    let extra = match closing with None -> [] | Some e -> e.args in
    let merged = { b with Event.args = b.Event.args @ extra } in
    out :=
      Json.Obj
        [ ("name", Json.String (span_name b))
        ; ("ph", Json.String "X")
        ; ("pid", Json.Int 1)
        ; ("tid", Json.Int b.task_id)
        ; ("ts", Json.Float (us b.ts_ns))
        ; ("dur", Json.Float (Float.max 0.001 (us until -. us b.ts_ns)))
        ; ("args", args_json merged)
        ]
      :: !out
  in
  let instant (e : Event.t) =
    out :=
      Json.Obj
        [ ("name", Json.String (Event.kind_to_string e.kind))
        ; ("ph", Json.String "i")
        ; ("s", Json.String "t")
        ; ("pid", Json.Int 1)
        ; ("tid", Json.Int e.task_id)
        ; ("ts", Json.Float (us e.ts_ns))
        ; ("args", args_json e)
        ]
      :: !out
  in
  List.iter
    (fun (e : Event.t) ->
      if not (Hashtbl.mem names e.task_id) then Hashtbl.replace names e.task_id e.task;
      if is_opener e.kind then
        Hashtbl.replace stacks e.task_id
          (e :: Option.value ~default:[] (Hashtbl.find_opt stacks e.task_id))
      else
        match opener e.kind with
        | None -> instant e
        | Some bk -> (
          let stack = Option.value ~default:[] (Hashtbl.find_opt stacks e.task_id) in
          let rec split acc = function
            | [] -> None
            | (b : Event.t) :: rest when b.kind = bk -> Some (b, List.rev_append acc rest)
            | b :: rest -> split (b :: acc) rest
          in
          match split [] stack with
          | Some (b, rest) ->
            Hashtbl.replace stacks e.task_id rest;
            complete b ~until:e.ts_ns ~closing:(Some e)
          | None -> instant e))
    evs;
  (* Spans still open at the end of the trace run to the last timestamp. *)
  Hashtbl.iter
    (fun _ stack -> List.iter (fun b -> complete b ~until:last_ts ~closing:None) stack)
    stacks;
  let metadata =
    Hashtbl.fold
      (fun tid name acc ->
        Json.Obj
          [ ("name", Json.String "thread_name")
          ; ("ph", Json.String "M")
          ; ("pid", Json.Int 1)
          ; ("tid", Json.Int tid)
          ; ("args", Json.Obj [ ("name", Json.String name) ])
          ]
        :: acc)
      names []
  in
  Json.Obj
    [ ("traceEvents", Json.List (metadata @ List.rev !out))
    ; ("displayTimeUnit", Json.String "ms")
    ]

let write r oc = output_string oc (Json.to_string (to_json r))

let write_file r path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write r oc)
