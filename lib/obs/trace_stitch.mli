(** Cross-replica trace stitching.

    Takes the per-rank/per-process JSONL lanes a distributed run leaves
    behind and rebuilds one causal tree per request: events carrying a
    {!Trace_ctx} are grouped by trace id {e across} lanes, then linked by
    their span/parent edges.  [sm-trace requests] is the CLI face.

    Everything the renderer prints is structural — lane names, span ids
    (label-derived), kinds, args; never [seq] or timestamps — so the
    stitched view of a deterministic run is byte-identical across the
    threaded and cooperative executors for the same seed.  That makes
    stitched output diffable the same way single-lane traces are. *)

(** One hop of a request: every event (from any lane) that carried this
    span id, plus the hops it caused. *)
type span =
  { ctx : Trace_ctx.t
  ; mutable events : (string * Event.t) list
        (** [(lane, event)], lane order then in-lane emission order *)
  ; mutable children : span list  (** sorted by span id *)
  ; mutable dangling : bool
        (** parent id never appeared in any lane (lost lane / truncated
            trace): rendered as a root, flagged *)
  }

type trace =
  { trace_id : int
  ; roots : span list
  ; span_count : int
  ; event_count : int
  }

val stitch : (string * Event.t list) list -> trace list
(** [(lane_name, events)] lanes in, traces out, sorted by trace id.
    Events without a context are ignored. *)

val of_files : string list -> trace list
(** Load each path via {!Trace_jsonl.load}; lane name = basename minus
    extension.
    @raise Trace_jsonl.Decode_error on malformed lines. *)

val pp_trace : Format.formatter -> trace -> unit
val pp : Format.formatter -> trace list -> unit

val to_string : trace list -> string
(** Full deterministic rendering, for diffing and tests. *)
