(** Pluggable event consumers.

    A sink receives every event that passes the {!Verbosity} gate.  Sinks
    must be thread-safe: tasks on any domain emit directly.  The default is
    {!null}; installing a real sink ({!Trace_jsonl.sink},
    {!Trace_chrome.sink}, or a {!tee} of several) turns tracing on, subject
    to the verbosity level. *)

type t =
  { emit : Event.t -> unit
  ; flush : unit -> unit
  ; close : unit -> unit
  }

val make : ?flush:(unit -> unit) -> ?close:(unit -> unit) -> (Event.t -> unit) -> t

val null : t
(** Drops everything. *)

val tee : t -> t -> t
(** Fan out to both sinks, in order. *)

val collecting : unit -> t * (unit -> Event.t list)
(** An in-memory sink plus a reader returning everything collected so far,
    ordered by emission sequence number.  Used by tests. *)

(** {1 The installed sink} *)

val set : t -> unit
val get : unit -> t

val emit : Event.t -> unit
(** Deliver to the installed sink.  Callers are expected to have checked
    {!Verbosity.enabled} first — see [Sm_obs]. *)

val flush : unit -> unit

val reset : unit -> unit
(** Flush and close the installed sink, reinstalling {!null}. *)
