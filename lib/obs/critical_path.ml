module M = Trace_model

type seg_kind =
  | Compute
  | Merge_fold
  | Merge_wait
  | Sync_wait

let seg_kind_to_string = function
  | Compute -> "compute"
  | Merge_fold -> "merge"
  | Merge_wait -> "merge-wait"
  | Sync_wait -> "sync-wait"

type segment =
  { seg_task : string
  ; seg_task_id : int
  ; seg_kind : seg_kind
  ; seg_begin : int
  ; seg_end : int
  }

type t =
  { root : M.task
  ; segments : segment list  (* chronological; tiles [path start, root end] *)
  ; total_ns : int
  ; wall_ns : int
  }

let seg_ns s = max 0 (s.seg_end - s.seg_begin)

let seg (t : M.task) kind b e =
  { seg_task = t.M.name; seg_task_id = t.M.id; seg_kind = kind; seg_begin = b; seg_end = e }

(* When did merge record [r]'s child release the parent's wait?  A completed
   child at its Task_end; a child merged mid-flight at the Sync_begin where
   it arrived (the sync span containing the fold timestamp). *)
let release_ts model span_end (r : M.merge_record) =
  Option.bind r.M.mc_child (fun cid ->
      Option.bind (M.task model cid) (fun (c : M.task) ->
          if c.M.ended && c.M.end_ts <= span_end then Some (c, c.M.end_ts)
          else
            List.fold_left
              (fun best (s : M.sync_span) ->
                if s.M.s_begin <= r.M.mc_ts then
                  match best with
                  | Some (_, b) when b >= s.M.s_begin -> best
                  | _ -> Some (c, s.M.s_begin)
                else best)
              None c.M.syncs))

(* Walk backward from horizon [h]: produce segments tiling [reached, h] of
   task [t]'s wall-clock (prepended to [acc]) and return [reached].  Time
   inside a merge-family call follows the *binding* child — the one whose
   release came last — and recurses into that child's timeline; the chain
   re-enters the parent at the child's own start (its spawn point), so
   parent work concurrent with the child is correctly skipped.  Without a
   traced binding child the span stays on the parent as fold work or bare
   wait. *)
let rec walk model (t : M.task) h acc =
  let spans =
    List.filter (fun (s : M.merge_span) -> s.M.m_begin < h) t.M.merges
    |> List.sort (fun (a : M.merge_span) b -> compare b.M.m_begin a.M.m_begin)
  in
  let rec go cur acc = function
    | [] ->
      let floor = min cur t.M.start_ts in
      if cur > t.M.start_ts then (seg t Compute t.M.start_ts cur :: acc, floor) else (acc, floor)
    | (span : M.merge_span) :: rest ->
      if span.M.m_begin >= cur then go cur acc rest
      else begin
        let span_end = min span.M.m_end cur in
        let acc = if span_end < cur then seg t Compute span_end cur :: acc else acc in
        let binding =
          List.fold_left
            (fun best r ->
              match release_ts model span_end r with
              | None -> best
              | Some (c, rel) -> (
                match best with
                | Some (_, brel) when brel >= rel -> best
                | _ -> Some (c, rel)))
            None (List.rev span.M.m_children)
        in
        match binding with
        | Some (c, rel) when rel > span.M.m_begin && c.M.id <> t.M.id ->
          let rel = min rel span_end in
          let acc = if rel < span_end then seg t Merge_fold rel span_end :: acc else acc in
          let acc, reached = walk model c rel acc in
          go (min reached span.M.m_begin) acc rest
        | Some _ | None ->
          let kind = if span.M.m_children = [] then Merge_wait else Merge_fold in
          go span.M.m_begin (seg t kind span.M.m_begin span_end :: acc) rest
      end
  in
  go h acc spans

(* A Compute segment lying inside the task's own sync span was in fact
   blocked waiting for the parent's merge — split those stretches out as
   Sync_wait so the path doesn't credit wait as work. *)
let relabel_syncs model segs =
  let split s =
    match (s.seg_kind, Option.map (fun (t : M.task) -> t.M.syncs) (M.task model s.seg_task_id)) with
    | Compute, Some syncs when syncs <> [] ->
      let rec carve b e =
        if b >= e then []
        else
          let overlapping =
            List.filter (fun (sp : M.sync_span) -> sp.M.s_end > b && sp.M.s_begin < e) syncs
            |> List.sort (fun (a : M.sync_span) c -> compare a.M.s_begin c.M.s_begin)
          in
          match overlapping with
          | [] -> [ { s with seg_begin = b; seg_end = e } ]
          | sp :: _ ->
            let sb = max b sp.M.s_begin and se = min e sp.M.s_end in
            (if sb > b then [ { s with seg_begin = b; seg_end = sb } ] else [])
            @ [ { s with seg_kind = Sync_wait; seg_begin = sb; seg_end = se } ]
            @ carve se e
      in
      carve s.seg_begin s.seg_end
    | _ -> [ s ]
  in
  List.concat_map split segs

let compute ?root model =
  let root =
    match root with Some id -> M.task model id | None -> M.main_root model
  in
  Option.map
    (fun (r : M.task) ->
      let segs, _reached = walk model r r.M.end_ts [] in
      let segs = relabel_syncs model segs in
      let segments =
        List.filter (fun s -> seg_ns s > 0) segs
        |> List.sort (fun a b -> compare (a.seg_begin, a.seg_end) (b.seg_begin, b.seg_end))
      in
      let total_ns = List.fold_left (fun a s -> a + seg_ns s) 0 segments in
      { root = r; segments; total_ns; wall_ns = M.span_ns r })
    root

(* --- reporting -------------------------------------------------------------- *)

let by_task cp =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let key = (s.seg_task, s.seg_task_id, s.seg_kind) in
      Hashtbl.replace tbl key (seg_ns s + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    cp.segments;
  Hashtbl.fold (fun (task, id, kind) ns acc -> (task, id, kind, ns) :: acc) tbl []
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)

let coverage_pct cp = 100.0 *. float_of_int cp.total_ns /. float_of_int (max 1 cp.wall_ns)

let pp ?(max_segments = 40) ppf cp =
  let pct ns = 100.0 *. float_of_int ns /. float_of_int (max 1 cp.total_ns) in
  Format.fprintf ppf "critical path of %s (id %d): %a on-path over a %a span (%.1f%% of wall-clock)@."
    cp.root.M.name cp.root.M.id M.pp_ms cp.total_ns M.pp_ms cp.wall_ns (coverage_pct cp);
  let n = List.length cp.segments in
  Format.fprintf ppf "@.%-6s %-24s %-10s %12s %7s@." "#" "task" "kind" "duration" "share";
  List.iteri
    (fun i s ->
      if i < max_segments then
        Format.fprintf ppf "%-6d %-24s %-10s %12.3fms %6.1f%%@." i s.seg_task
          (seg_kind_to_string s.seg_kind)
          (float_of_int (seg_ns s) /. 1e6)
          (pct (seg_ns s)))
    cp.segments;
  if n > max_segments then Format.fprintf ppf "... (%d more segments)@." (n - max_segments);
  Format.fprintf ppf "@.aggregated by task and kind:@.";
  List.iter
    (fun (task, id, kind, ns) ->
      Format.fprintf ppf "  %-24s id=%-5d %-10s %12.3fms %6.1f%%@." task id
        (seg_kind_to_string kind)
        (float_of_int ns /. 1e6)
        (pct ns))
    (by_task cp)
