type t =
  { emit : Event.t -> unit
  ; flush : unit -> unit
  ; close : unit -> unit
  }

let make ?(flush = fun () -> ()) ?(close = fun () -> ()) emit = { emit; flush; close }

let null = { emit = ignore; flush = (fun () -> ()); close = (fun () -> ()) }

let tee a b =
  { emit =
      (fun e ->
        a.emit e;
        b.emit e)
  ; flush =
      (fun () ->
        a.flush ();
        b.flush ())
  ; close =
      (fun () ->
        a.close ();
        b.close ())
  }

let collecting () =
  let lock = Mutex.create () in
  let events = Sm_util.Vec.create () in
  let sink = make (fun e -> Mutex.protect lock (fun () -> Sm_util.Vec.push events e)) in
  let collected () =
    Mutex.protect lock (fun () -> Sm_util.Vec.to_list events)
    |> List.sort (fun (a : Event.t) b -> compare a.seq b.seq)
  in
  (sink, collected)

(* The installed sink.  Verbosity gating happens before [emit] is even
   called (see Sm_obs), so with the default configuration the sink is never
   consulted; [null] here is belt and braces. *)
let current = Atomic.make null

let set s = Atomic.set current s
let get () = Atomic.get current
let emit e = (Atomic.get current).emit e
let flush () = (Atomic.get current).flush ()

let reset () =
  let s = Atomic.exchange current null in
  s.flush ();
  s.close ()
