module Rng = Sm_util.Det_rng
module Netpipe = Sm_sim.Netpipe

type faults =
  { drop : float
  ; dup : float
  ; delay : float
  ; reorder : float
  }

type profile =
  { seed : int64
  ; shards : int
  ; clients : int
  ; specs : Service.spec list
  ; ops_per_client : int
  ; think_max : int
  ; burst_max : int
  ; ins_bias : float
  ; mode : Server.mode
  ; epoch_ticks : int
  ; faults : faults option
  ; disconnect_prob : float
  ; resume_after : int
  ; max_ticks : int
  }

let default_specs =
  [ `Text ("doc/readme", "# shared notes\n")
  ; `Text ("doc/todo", "todo:\n")
  ; `Tree ("doc/outline", [])
  ; `Text ("doc/scratch", "")
  ]

let default =
  { seed = 1L
  ; shards = 2
  ; clients = 8
  ; specs = default_specs
  ; ops_per_client = 20
  ; think_max = 3
  ; burst_max = 4
  ; ins_bias = 0.7
  ; mode = `Delta
  ; epoch_ticks = 4
  ; faults = None
  ; disconnect_prob = 0.
  ; resume_after = 12
  ; max_ticks = 200_000
  }

type report =
  { converged : bool
  ; shard_digests : string list
  ; ticks : int
  ; ops_applied : int
  ; edits_merged : int
  ; epochs : int
  ; delta_bytes : int
  ; snapshot_bytes : int
  ; retransmits : int
  ; resumes : int
  ; failures : (string * string) list
  }

type actor =
  { name : string
  ; client : Client.t
  ; rng : Rng.t
  ; shard : int
  ; mutable remaining : int
  ; mutable think : int
  ; mutable resume_at : int  (* tick to reconnect at; -1 while connected *)
  ; mutable polled : bool  (* sent the drain-phase catch-up poll *)
  }

let run ?docs ?parent ?on_tick profile =
  if profile.clients < 0 then invalid_arg "Load.run: clients must be non-negative";
  if profile.ops_per_client < 0 then invalid_arg "Load.run: ops_per_client must be non-negative";
  if profile.burst_max <= 0 then invalid_arg "Load.run: burst_max must be positive";
  let docs =
    match docs with
    | Some d -> d
    | None -> Service.make_docs profile.specs
  in
  let svc =
    Service.create docs ~shards:profile.shards ~mode:profile.mode
      ~epoch_ticks:profile.epoch_ticks
  in
  (match profile.faults with
  | None -> ()
  | Some f ->
    Netpipe.set_faults
      (Some
         (Netpipe.Faults.make ~drop:f.drop ~dup:f.dup ~delay:f.delay ~reorder:f.reorder
            ~seed:(Int64.logxor profile.seed 0x6e657470697065L) ())));
  Fun.protect ~finally:(fun () -> if profile.faults <> None then Netpipe.set_faults None)
  @@ fun () ->
  let master = Rng.create ~seed:profile.seed in
  let actors =
    Array.init profile.clients (fun i ->
        let shard = i mod profile.shards in
        let rng = Rng.split master in
        let name = Printf.sprintf "client%d" i in
        let client =
          Client.connect ~reg:(Service.registry docs) ~name
            ~obs_tid:(Client.obs_client_tid i) ?parent
            ~init:(Service.client_init svc ~shard)
            (Service.listener svc shard)
        in
        { name
        ; client
        ; rng
        ; shard
        ; remaining = profile.ops_per_client
        ; think = (if profile.think_max > 0 then Rng.int rng ~bound:(profile.think_max + 1) else 0)
        ; resume_at = -1
        ; polled = false
        })
  in
  let tick = ref 0 in
  let ops_applied = ref 0 in
  let finished a =
    Client.failed a.client <> None
    || (a.remaining = 0 && a.resume_at < 0 && Client.synced a.client)
  in
  let quiesced () = Array.for_all finished actors && Service.idle svc in
  (* Editing done and everything acked ⇒ the shards' states are final; one
     catch-up poll per client then brings every replica to the head —
     including clients that sent nothing into the last epochs and would
     otherwise never hear about them (request/reply protocol: no push). *)
  let drained () =
    Array.for_all (fun a -> Client.failed a.client <> None || (a.polled && finished a)) actors
  in
  let step ~drain a =
    if Client.failed a.client = None then
      if a.resume_at >= 0 then begin
        if !tick >= a.resume_at then begin
          Client.resume a.client (Service.listener svc a.shard);
          a.resume_at <- -1
        end
      end
      else begin
        Client.tick a.client;
        if
          profile.disconnect_prob > 0.
          && Client.connected a.client
          && not (Client.synced a.client)
          && Rng.float a.rng < profile.disconnect_prob
        then begin
          Client.disconnect a.client;
          a.resume_at <- !tick + profile.resume_after
        end
        else if drain then begin
          if (not a.polled) && Client.synced a.client then begin
            Client.poll a.client;
            a.polled <- true
          end
        end
        else if a.remaining > 0 && Client.ready a.client then begin
          if a.think > 0 then a.think <- a.think - 1
          else begin
            match Service.docs_on svc a.shard with
            | [] -> a.remaining <- 0 (* nothing routed here: this editor is done *)
            | docs_here ->
              let burst = min a.remaining (1 + Rng.int a.rng ~bound:profile.burst_max) in
              for _ = 1 to burst do
                Client.edit a.client
                  (Service.edit_doc ~rng:a.rng ~ins_bias:profile.ins_bias
                     (Rng.pick a.rng docs_here))
              done;
              Client.flush a.client;
              a.remaining <- a.remaining - burst;
              ops_applied := !ops_applied + burst;
              a.think <-
                (if profile.think_max > 0 then Rng.int a.rng ~bound:(profile.think_max + 1)
                 else 0)
          end
        end
      end
  in
  let drain = ref false in
  while !tick < profile.max_ticks && not (!drain && drained ()) do
    if (not !drain) && quiesced () then drain := true;
    Service.tick svc;
    Array.iter (step ~drain:!drain) actors;
    (match on_tick with Some f -> f !tick svc | None -> ());
    incr tick
  done;
  let failures =
    Array.to_list actors
    |> List.filter_map (fun a ->
           Option.map (fun reason -> (a.name, reason)) (Client.failed a.client))
  in
  let converged =
    failures = [] && quiesced () && drained ()
    && Array.for_all
         (fun a ->
           String.equal
             (Sm_mergeable.Workspace.digest (Client.view a.client))
             (Server.digest (Service.shard svc a.shard)))
         actors
  in
  { converged
  ; shard_digests = Service.digests svc
  ; ticks = !tick
  ; ops_applied = !ops_applied
  ; edits_merged = Service.edits_merged svc
  ; epochs = Service.epochs_run svc
  ; delta_bytes = Service.delta_bytes_sent svc
  ; snapshot_bytes = Service.snapshot_bytes_sent svc
  ; retransmits = Array.fold_left (fun acc a -> acc + Client.retransmits a.client) 0 actors
  ; resumes = Array.fold_left (fun acc a -> acc + Client.resumes a.client) 0 actors
  ; failures
  }
