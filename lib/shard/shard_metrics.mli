(** Per-shard live metrics: point-in-time snapshot rows built from
    {!Server}'s accounting accessors and the per-shard merge-latency
    histogram, rendered three ways — an [sm-top]-style text table
    ({!report}, what [sm-shard stats] prints), a hot-documents conflict
    table aggregated over shards, and a Prometheus text exposition
    ({!expo_text}) that extends the live {!Sm_obs.Metrics} registry with
    per-shard and {!Sm_sim.Netpipe} fault-plane counters.

    Snapshots read live servers; nothing here mutates them, so a report can
    be taken mid-run (between ticks) without perturbing determinism. *)

type row =
  { shard : int
  ; sessions : int
  ; cursor_lag : int  (** {!Server.max_cursor_lag} *)
  ; epochs : int
  ; edits : int
  ; replays : int  (** reply-cache hits *)
  ; rejects : int
  ; nacks : int
  ; delta_bytes : int
  ; snapshot_bytes : int
  ; merge_p50_ns : float option  (** [None] until the shard has merged with metrics on *)
  ; merge_p95_ns : float option
  }

val row_of_server : Server.t -> row
val rows : Server.t list -> row list

val hot_docs : ?limit:int -> Server.t list -> (string * Server.doc_stat) list
(** The conflict profiler's table: per-document stats summed across shards
    (documents are sharded disjointly, so at most one shard contributes per
    document), hottest first — most transform calls, then most ops, then
    name.  At most [limit] (default 10) rows. *)

val pp_rows : Format.formatter -> row list -> unit
val pp_hot_docs : Format.formatter -> (string * Server.doc_stat) list -> unit
val pp_net : Format.formatter -> Sm_sim.Netpipe.stats -> unit

val report : ?limit:int -> Server.t list -> string
(** The full text report: shard table, hot documents, fault-plane line. *)

val expo_text : Server.t list -> string
(** Prometheus exposition of the live registry plus per-shard rows
    ([sm_shard0_sessions], ...) and Netpipe counters ([sm_net_sends], ...). *)
