(* FNV-1a alone has weakly mixed low bits for short, similar names (document
   sets like doc/a, doc/b land on one shard suspiciously often), and the
   modulo only looks at those bits.  A SplitMix64 finalizer avalanches the
   full hash first. *)
let mix h =
  let open Int64 in
  let h = logxor h (shift_right_logical h 30) in
  let h = mul h 0xbf58476d1ce4e5b9L in
  let h = logxor h (shift_right_logical h 27) in
  let h = mul h 0x94d049bb133111ebL in
  logxor h (shift_right_logical h 31)

let shard_of ~shards name =
  if shards <= 0 then invalid_arg "Router.shard_of: shards must be positive";
  let h = Int64.to_int (mix (Sm_util.Fnv.hash name)) land max_int in
  h mod shards

let partition ~shards names =
  let buckets = Array.make shards [] in
  List.iter
    (fun name ->
      let s = shard_of ~shards name in
      buckets.(s) <- name :: buckets.(s))
    names;
  Array.map List.rev buckets
