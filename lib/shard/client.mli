(** A document replica holding a session with one shard.

    The client keeps two workspaces: [shadow] — the server's state as of the
    last applied reply — and [view] — shadow plus local operations not yet
    acknowledged.  An editor mutates the view ({!edit}); {!flush} ships the
    accumulated batch with the revisions it was recorded against; the Ack's
    delta (which includes the client's own transformed operations) advances
    the shadow, and the view is re-cloned from it.

    Like {!Server}, the client is tick-driven and single-threaded: {!tick}
    drains replies, re-issues an interrupted batch after a resume, and
    retransmits the in-flight request frame on a timeout.  Sessions are
    stop-and-wait — at most one request is outstanding — which is what makes
    replies applicable at most once and in order (see {!Proto}).

    Crash recovery: {!disconnect} abandons the connection mid-flight;
    {!resume} reconnects with the stale cursors, the server re-ships
    everything after them, and the interrupted batch is re-issued under its
    original [eid] so it merges exactly once whether or not the original
    request survived. *)

type t

val connect :
  reg:Sm_dist.Registry.t ->
  name:string ->
  ?obs_tid:int ->
  ?parent:Sm_obs.Trace_ctx.t ->
  init:(Sm_mergeable.Workspace.t -> unit) ->
  Sm_sim.Netpipe.listener ->
  t
(** Open a session: seeds the local replica with [init] (which must match
    the server's — revision-0 states agree by construction) and sends
    [Hello].

    [obs_tid] is the client's trace lane (default {!obs_client_tid}[ 0]).
    [parent], when given, is the user action this session serves: every
    request context nests under it, so sessions on {e different} shards
    sharing one parent stitch into a single request tree.  When tracing is
    off no contexts are minted and every frame stays wire version 1. *)

val obs_client_tid : int -> int
(** The trace lane for editor [i] — parked above the distributed layer's
    and the shard servers' lanes. *)

val tick : t -> unit
val view : t -> Sm_mergeable.Workspace.t

val shadow : t -> Sm_mergeable.Workspace.t
(** Exposed for tests; treat as read-only. *)

val edit : t -> (Sm_mergeable.Workspace.t -> unit) -> unit
(** Apply an editing function to the view.
    @raise Invalid_argument while a flushed batch is unacknowledged (its
    [eid] is fixed; adding operations to it could lose them to the server's
    exactly-once dedup). *)

val flush : t -> unit
(** Ship pending operations as one edit batch, if {!ready} and there are
    any. *)

val poll : t -> unit
(** Ask the shard for everything since this replica's cursors without
    shipping anything — how an idle client catches up on epochs it sent no
    edits into.  A no-op unless {!ready} with zero pending operations
    ({!flush} covers the other case: its ack carries the same delta). *)

val ready : t -> bool
(** Connected, nothing outstanding, no batch awaiting ack. *)

val synced : t -> bool
(** {!ready} and no pending local operations: the view equals the server
    state as of the last reply. *)

val pending_ops : t -> int

val disconnect : t -> unit
(** Abandon the connection like a crash — no goodbye, in-flight request and
    all; the session survives on the server for {!resume}. *)

val resume : t -> Sm_sim.Netpipe.listener -> unit
(** Reconnect and re-attach to the session with the last applied cursors
    (falls back to a fresh [Hello] when no session was established yet). *)

val bye : t -> unit
(** Polite goodbye: tells the shard to forget the session. *)

val session : t -> int option
val connected : t -> bool

val failed : t -> string option
(** Set on a [Nack] or an undecodable reply; the client stops acting. *)

val retransmits : t -> int
val resumes : t -> int
