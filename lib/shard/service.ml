module Ws = Sm_mergeable.Workspace
module Registry = Sm_dist.Registry
module Codable = Sm_dist.Codable
module Rng = Sm_util.Det_rng

module Tree = Codable.Make_tree (Codable.String_elt)

type spec =
  [ `Text of string * string
  | `Tree of string * Tree.Op.node list
  ]

type kind =
  | Text_doc of (Sm_ot.Op_text.state, Sm_ot.Op_text.op) Registry.rkey * string
  | Tree_doc of (Tree.Op.state, Tree.Op.op) Registry.rkey * Tree.Op.state

type doc =
  { name : string
  ; kind : kind
  }

type docs =
  { reg : Registry.t
  ; docs : doc list
  }

let spec_name = function `Text (n, _) | `Tree (n, _) -> n

let make_docs specs =
  let reg = Registry.create () in
  let seen = Hashtbl.create 8 in
  let docs =
    List.map
      (fun spec ->
        let name = spec_name spec in
        if Hashtbl.mem seen name then
          invalid_arg (Printf.sprintf "Service.make_docs: duplicate document %S" name);
        Hashtbl.replace seen name ();
        match spec with
        | `Text (name, initial) ->
          { name; kind = Text_doc (Registry.value reg ~name (module Codable.Text), initial) }
        | `Tree (name, initial) ->
          { name; kind = Tree_doc (Registry.value reg ~name (module Tree), initial) })
      specs
  in
  { reg; docs }

let registry d = d.reg
let doc_name d = d.name
let doc_list d = d.docs

let find_doc d name =
  match List.find_opt (fun doc -> String.equal doc.name name) d.docs with
  | Some doc -> doc
  | None -> invalid_arg (Printf.sprintf "Service: unknown document %S" name)

let text_key doc =
  match doc.kind with
  | Text_doc (rk, _) -> Registry.workspace_key rk
  | Tree_doc _ -> invalid_arg (Printf.sprintf "Service.text_key: %S is a tree document" doc.name)

let tree_key doc =
  match doc.kind with
  | Tree_doc (rk, _) -> Registry.workspace_key rk
  | Text_doc _ -> invalid_arg (Printf.sprintf "Service.tree_key: %S is a text document" doc.name)

let init_doc ws doc =
  match doc.kind with
  | Text_doc (rk, initial) ->
    Ws.init ws (Registry.workspace_key rk) (Sm_ot.Op_text.of_string initial)
  | Tree_doc (rk, initial) -> Ws.init ws (Registry.workspace_key rk) initial

type t =
  { docs : docs
  ; shards : Server.t array
  ; by_shard : doc list array
  }

let create (docs : docs) ~shards ~mode ~epoch_ticks =
  if shards <= 0 then invalid_arg "Service.create: shards must be positive";
  let by_shard = Array.make shards [] in
  List.iter
    (fun doc ->
      let s = Router.shard_of ~shards doc.name in
      by_shard.(s) <- by_shard.(s) @ [ doc ])
    docs.docs;
  let servers =
    Array.init shards (fun shard_id ->
        Server.create ~reg:docs.reg ~shard_id ~mode ~epoch_ticks ~init:(fun ws ->
            List.iter (init_doc ws) by_shard.(shard_id)))
  in
  { docs; shards = servers; by_shard }

let shard_count t = Array.length t.shards
let shard_of t name = Router.shard_of ~shards:(Array.length t.shards) name
let shard t k = t.shards.(k)
let listener t k = Server.listener t.shards.(k)
let listener_for t ~doc = listener t (shard_of t doc)
let docs_on t k = t.by_shard.(k)
let tick t = Array.iter Server.tick t.shards
let digests t = Array.to_list (Array.map Server.digest t.shards)

let client_init t ~shard ws = List.iter (init_doc ws) t.by_shard.(shard)

let servers t = Array.to_list t.shards
let stats_report ?limit t = Shard_metrics.report ?limit (servers t)
let expo_text t = Shard_metrics.expo_text (servers t)

let delta_bytes_sent t = Array.fold_left (fun a s -> a + Server.delta_bytes_sent s) 0 t.shards

let snapshot_bytes_sent t =
  Array.fold_left (fun a s -> a + Server.snapshot_bytes_sent s) 0 t.shards

let epochs_run t = Array.fold_left (fun a s -> a + Server.epochs_run s) 0 t.shards
let edits_merged t = Array.fold_left (fun a s -> a + Server.edits_merged s) 0 t.shards
let idle t = Array.for_all Server.idle t.shards

(* --- random edits (the load generator's edit mix) --------------------------- *)

let random_label rng = Printf.sprintf "n%d" (Rng.int rng ~bound:1000)

let random_string rng =
  let n = 1 + Rng.int rng ~bound:8 in
  String.init n (fun _ -> Char.chr (Char.code 'a' + Rng.int rng ~bound:26))

(* A path to an existing node (nonempty forest assumed). *)
let rec random_node_path rng (forest : Tree.Op.node list) =
  let i = Rng.int rng ~bound:(List.length forest) in
  let node = List.nth forest i in
  if node.Tree.Op.children <> [] && Rng.bool rng then i :: random_node_path rng node.Tree.Op.children
  else [ i ]

(* A path whose last component is a gap index (valid insert position). *)
let rec random_gap_path rng (forest : Tree.Op.node list) =
  let n = List.length forest in
  let i = Rng.int rng ~bound:(n + 1) in
  if i < n && Rng.bool rng then i :: random_gap_path rng (List.nth forest i).Tree.Op.children
  else [ i ]

let edit_doc ~rng ~ins_bias doc ws =
  match doc.kind with
  | Text_doc (rk, _) ->
    let k = Registry.workspace_key rk in
    let len = Sm_ot.Op_text.length (Ws.read ws k) in
    if len = 0 || Rng.float rng < ins_bias then
      Ws.update ws k (Sm_ot.Op_text.Ins (Rng.int rng ~bound:(len + 1), random_string rng))
    else begin
      let pos = Rng.int rng ~bound:len in
      let dlen = 1 + Rng.int rng ~bound:(min 4 (len - pos)) in
      Ws.update ws k (Sm_ot.Op_text.Del (pos, dlen))
    end
  | Tree_doc (rk, _) ->
    let k = Registry.workspace_key rk in
    let forest = Ws.read ws k in
    if forest = [] || Rng.float rng < ins_bias then
      Ws.update ws k (Tree.Op.insert (random_gap_path rng forest) (Tree.Op.leaf (random_label rng)))
    else if Rng.bool rng then Ws.update ws k (Tree.Op.relabel (random_node_path rng forest) (random_label rng))
    else Ws.update ws k (Tree.Op.delete (random_node_path rng forest))
