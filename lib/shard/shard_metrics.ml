module Obs = Sm_obs
module Netpipe = Sm_sim.Netpipe

type row =
  { shard : int
  ; sessions : int
  ; cursor_lag : int
  ; epochs : int
  ; edits : int
  ; replays : int
  ; rejects : int
  ; nacks : int
  ; delta_bytes : int
  ; snapshot_bytes : int
  ; merge_p50_ns : float option
  ; merge_p95_ns : float option
  }

let merge_histogram shard_id = Obs.Metrics.histogram (Printf.sprintf "shard%d.merge_ns" shard_id)

let row_of_server s =
  let shard = Server.shard_id s in
  let h = merge_histogram shard in
  { shard
  ; sessions = Server.session_count s
  ; cursor_lag = Server.max_cursor_lag s
  ; epochs = Server.epochs_run s
  ; edits = Server.edits_merged s
  ; replays = Server.replayed_replies s
  ; rejects = Server.rejected_frames s
  ; nacks = Server.nacks_sent s
  ; delta_bytes = Server.delta_bytes_sent s
  ; snapshot_bytes = Server.snapshot_bytes_sent s
  ; merge_p50_ns = Obs.Metrics.percentile h ~p:50.0
  ; merge_p95_ns = Obs.Metrics.percentile h ~p:95.0
  }

let rows servers = List.map row_of_server servers

(* --- hot documents (conflict profiler, aggregated over shards) -------------- *)

let hot_docs ?(limit = 10) servers =
  let acc : (string, Server.doc_stat) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter
        (fun (doc, (d : Server.doc_stat)) ->
          match Hashtbl.find_opt acc doc with
          | Some t ->
            t.Server.d_merges <- t.Server.d_merges + d.Server.d_merges;
            t.Server.d_ops <- t.Server.d_ops + d.Server.d_ops;
            t.Server.d_transforms <- t.Server.d_transforms + d.Server.d_transforms;
            t.Server.d_compact_in <- t.Server.d_compact_in + d.Server.d_compact_in;
            t.Server.d_compact_out <- t.Server.d_compact_out + d.Server.d_compact_out
          | None ->
            Hashtbl.replace acc doc
              { Server.d_merges = d.Server.d_merges
              ; d_ops = d.Server.d_ops
              ; d_transforms = d.Server.d_transforms
              ; d_compact_in = d.Server.d_compact_in
              ; d_compact_out = d.Server.d_compact_out
              })
        (Server.doc_stats s))
    servers;
  let all = Hashtbl.fold (fun doc d l -> (doc, d) :: l) acc [] in
  let sorted =
    List.sort
      (fun (n1, (a : Server.doc_stat)) (n2, (b : Server.doc_stat)) ->
        match compare b.Server.d_transforms a.Server.d_transforms with
        | 0 -> (
          match compare b.Server.d_ops a.Server.d_ops with
          | 0 -> String.compare n1 n2
          | c -> c)
        | c -> c)
      all
  in
  List.filteri (fun i _ -> i < limit) sorted

(* --- text report (the sm-top table) ----------------------------------------- *)

let ns_str = function
  | None -> "-"
  | Some ns when ns >= 1e6 -> Printf.sprintf "%.1fms" (ns /. 1e6)
  | Some ns when ns >= 1e3 -> Printf.sprintf "%.1fus" (ns /. 1e3)
  | Some ns -> Printf.sprintf "%.0fns" ns

let pp_rows ppf rows =
  Format.fprintf ppf "%-5s %5s %5s %6s %6s %7s %7s %5s %9s %9s %9s %9s@." "shard" "sess" "lag"
    "epochs" "edits" "replays" "rejects" "nacks" "deltaB" "snapB" "merge p50" "p95";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-5d %5d %5d %6d %6d %7d %7d %5d %9d %9d %9s %9s@." r.shard r.sessions
        r.cursor_lag r.epochs r.edits r.replays r.rejects r.nacks r.delta_bytes r.snapshot_bytes
        (ns_str r.merge_p50_ns) (ns_str r.merge_p95_ns))
    rows

let pp_hot_docs ppf docs =
  match docs with
  | [] -> Format.fprintf ppf "(no epoch merges profiled)@."
  | _ ->
    Format.fprintf ppf "%-24s %6s %6s %6s %12s %6s@." "document" "merges" "ops" "xform" "compact"
      "ratio";
    List.iter
      (fun (doc, (d : Server.doc_stat)) ->
        let ratio =
          if d.Server.d_compact_in = 0 then "-"
          else
            Printf.sprintf "%.2f"
              (float_of_int d.Server.d_compact_out /. float_of_int d.Server.d_compact_in)
        in
        Format.fprintf ppf "%-24s %6d %6d %6d %6d->%-5d %6s@." doc d.Server.d_merges
          d.Server.d_ops d.Server.d_transforms d.Server.d_compact_in d.Server.d_compact_out ratio)
      docs

(* Workspace sharing counters (process-global): how many cells hit their
   copy-on-first-write, and how many bytes the deep-copy baseline
   materialized (0 under COW). *)
let pp_ws ppf () =
  Format.fprintf ppf "ws: cow=%s cow_hits=%d copy_bytes=%d@."
    (if Sm_mergeable.Workspace.cow_enabled () then "on" else "off")
    (Obs.Metrics.value Sm_mergeable.Workspace.cow_hits)
    (Obs.Metrics.value Sm_mergeable.Workspace.copy_bytes)

let pp_net ppf (st : Netpipe.stats) =
  Format.fprintf ppf
    "net: sends=%d delivered=%d dropped(closed)=%d dropped(fault)=%d dup=%d delayed=%d \
     reordered=%d@."
    st.sends st.delivered st.dropped_closed st.dropped_fault st.duplicated st.delayed st.reordered

let report ?limit servers =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  pp_rows ppf (rows servers);
  Format.fprintf ppf "@.";
  pp_hot_docs ppf (hot_docs ?limit servers);
  Format.fprintf ppf "@.";
  pp_ws ppf ();
  pp_net ppf (Netpipe.stats ());
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* --- Prometheus exposition --------------------------------------------------- *)

let shard_counters r =
  let k fmt = Printf.sprintf fmt r.shard in
  [ (k "shard%d.sessions", r.sessions)
  ; (k "shard%d.cursor_lag", r.cursor_lag)
  ; (k "shard%d.epochs", r.epochs)
  ; (k "shard%d.edits_merged", r.edits)
  ; (k "shard%d.replayed_replies", r.replays)
  ; (k "shard%d.rejected_frames", r.rejects)
  ; (k "shard%d.nacks", r.nacks)
  ; (k "shard%d.delta_bytes", r.delta_bytes)
  ; (k "shard%d.snapshot_bytes", r.snapshot_bytes)
  ]

let net_counters () =
  let st = Netpipe.stats () in
  [ ("net.sends", st.sends)
  ; ("net.delivered", st.delivered)
  ; ("net.dropped_closed", st.dropped_closed)
  ; ("net.dropped_fault", st.dropped_fault)
  ; ("net.duplicated", st.duplicated)
  ; ("net.delayed", st.delayed)
  ; ("net.reordered", st.reordered)
  ]

let expo_text servers =
  let counters =
    Obs.Metrics.counters ()
    @ List.concat_map shard_counters (rows servers)
    @ net_counters ()
  in
  Obs.Expo.render ~counters ~histograms:(Obs.Metrics.raw_histograms ())
