module Ws = Sm_mergeable.Workspace
module Registry = Sm_dist.Registry
module Netpipe = Sm_sim.Netpipe
module Obs = Sm_obs
module E = Sm_obs.Event

(* Client trace lanes park above the distributed layer's (1_000_00x) and the
   shard servers' (2_000_00x): one lane per editor. *)
let obs_client_tid i = 3_000_000 + i

type outstanding =
  | Connect of
      { frame : string
      ; tctx : Obs.Trace_ctx.t option
      }  (* awaiting a Welcome *)
  | Editing of
      { frame : string
      ; req : int
      ; tctx : Obs.Trace_ctx.t option
      }  (* awaiting the Ack for [req] *)

type t =
  { reg : Registry.t
  ; name : string
  ; mutable conn : Netpipe.conn option
  ; mutable session : int option
  ; mutable shadow : Ws.t  (* last server state this replica applied *)
  ; mutable view : Ws.t  (* shadow + local ops not yet acked *)
  ; cursors : (int, int) Hashtbl.t  (* wire_id -> server revision applied *)
  ; local_base : (int, int) Hashtbl.t  (* wire_id -> shadow version at last view reset *)
  ; mutable pending_base : (int * int) list  (* server revisions the pending ops are against *)
  ; mutable pending_eid : int option  (* batch id once the pending ops were first flushed *)
  ; mutable next_req : int
  ; mutable next_eid : int
  ; mutable last_acked_req : int
  ; mutable outstanding : outstanding option
  ; mutable ticks_waiting : int
  ; retry_after : int
  ; mutable failed : string option
  ; mutable retransmits : int
  ; mutable resumes : int
  ; obs_tid : int
  ; parent : Obs.Trace_ctx.t option
      (* the user action this session serves: request contexts nest under
         it, so several sessions sharing a parent stitch into one tree *)
  }

(* Request contexts are minted only when tracing is on: off, requests carry
   no context (the frame's context slot is empty).  Either way frames are
   sealed at the current version, advertising packed journals. *)
let mint t label =
  if Obs.on Obs.Info then
    Some
      (match t.parent with
      | Some p -> Obs.Trace_ctx.child p (t.name ^ "/" ^ label)
      | None -> Obs.Trace_ctx.root (t.name ^ "/" ^ label))
  else None

let req_begin t ~op ~req tctx =
  match tctx with
  | None -> ()
  | Some c ->
    Obs.emit
      (E.make ~task:t.name ~task_id:t.obs_tid
         ~args:([ ("op", E.S op); ("req", E.I req) ] @ Obs.Trace_ctx.args c)
         E.Req_begin)

let req_end t ~status ~req tctx =
  match tctx with
  | None -> ()
  | Some c ->
    if Obs.on Obs.Info then
      Obs.emit
        (E.make ~task:t.name ~task_id:t.obs_tid
           ~args:([ ("status", E.S status); ("req", E.I req) ] @ Obs.Trace_ctx.args c)
           E.Req_end)

let outstanding_finished t ~status =
  match t.outstanding with
  | Some (Connect { tctx; _ }) -> req_end t ~status ~req:0 tctx
  | Some (Editing { req; tctx; _ }) -> req_end t ~status ~req tctx
  | None -> ()

let cursor_of t id = Option.value ~default:0 (Hashtbl.find_opt t.cursors id)
let cursor_list t = Hashtbl.fold (fun id rev acc -> (id, rev) :: acc) t.cursors []

let reset_bases t =
  Hashtbl.reset t.local_base;
  List.iter (fun (id, v) -> Hashtbl.replace t.local_base id v) (Registry.revisions t.reg t.shadow);
  t.pending_base <- List.sort compare (cursor_list t)

let send_new t frame =
  (match t.conn with Some c -> Netpipe.send c frame | None -> ());
  t.ticks_waiting <- 0

let connect ~reg ~name ?(obs_tid = obs_client_tid 0) ?parent ~init listener =
  let shadow = Ws.create () in
  init shadow;
  let t =
    { reg
    ; name
    ; conn = Some (Netpipe.connect listener)
    ; session = None
    ; shadow
    ; view = Ws.clone_trimmed shadow
    ; cursors = Hashtbl.create 8
    ; local_base = Hashtbl.create 8
    ; pending_base = []
    ; pending_eid = None
    ; next_req = 1
    ; next_eid = 0
    ; last_acked_req = -1
    ; outstanding = None
    ; ticks_waiting = 0
    ; retry_after = 8
    ; failed = None
    ; retransmits = 0
    ; resumes = 0
    ; obs_tid
    ; parent
    }
  in
  reset_bases t;
  let tctx = mint t "hello" in
  let frame = Proto.seal_c2s ?ctx:tctx (Proto.Hello { client = name }) in
  req_begin t ~op:"hello" ~req:0 tctx;
  t.outstanding <- Some (Connect { frame; tctx });
  send_new t frame;
  t

let view t = t.view
let shadow t = t.shadow
let session t = t.session
let failed t = t.failed
let retransmits t = t.retransmits
let resumes t = t.resumes
let connected t = t.conn <> None && t.session <> None && t.failed = None

let pending_ops t =
  List.fold_left
    (fun acc (id, v) -> acc + (v - Option.value ~default:0 (Hashtbl.find_opt t.local_base id)))
    0
    (Registry.revisions t.reg t.view)

let ready t =
  t.conn <> None && t.session <> None && t.outstanding = None && t.pending_eid = None
  && t.failed = None

let synced t = ready t && pending_ops t = 0

let edit t f =
  if t.pending_eid <> None then
    invalid_arg "Client.edit: a flushed batch is still in flight — wait for its ack";
  f t.view

(* --- payload application ---------------------------------------------------- *)

let apply_payload t fmt = function
  | Proto.Delta entries ->
    Registry.apply_delta ~format:fmt t.reg ~into:t.shadow ~cursor:(cursor_of t) entries;
    List.iter
      (fun (id, _, to_rev, _) ->
        if to_rev > cursor_of t id then Hashtbl.replace t.cursors id to_rev)
      entries
  | Proto.Snap entries ->
    (* Replies are applied at most once and in request order (stop-and-wait),
       so a snapshot is always current: rebuild the replica around it. *)
    t.shadow <- Registry.build_workspace t.reg (List.map (fun (id, _, st) -> (id, st)) entries);
    List.iter (fun (id, rev, _) -> Hashtbl.replace t.cursors id rev) entries

let after_ack t =
  t.view <- Ws.clone_trimmed t.shadow;
  t.pending_eid <- None;
  reset_bases t

let handle_frame t frame =
  match Proto.open_s2c_v frame with
  | fmt, Proto.Welcome { session; payload } -> (
    match t.outstanding with
    | Some (Connect _) ->
      if t.session = None then t.session <- Some session;
      apply_payload t fmt payload;
      (* With local operations (flushed or not) in play, the view keeps them
         and the next ack re-clones it; with nothing pending no ack will
         ever follow, so the epochs this welcome carried must reach the view
         here or the replica reports synced while rendering stale state. *)
      if t.pending_eid = None && pending_ops t = 0 then after_ack t;
      outstanding_finished t ~status:"ok";
      t.outstanding <- None;
      t.ticks_waiting <- 0
    | _ -> () (* duplicate of an applied welcome *))
  | fmt, Proto.Ack { req; payload; _ } -> (
    match t.outstanding with
    | Some (Editing { req = r; _ }) when req = r ->
      apply_payload t fmt payload;
      t.last_acked_req <- req;
      outstanding_finished t ~status:"ok";
      t.outstanding <- None;
      t.ticks_waiting <- 0;
      after_ack t
    | _ -> () (* replayed ack for an already-acked request *))
  | _, Proto.Nack { reason; _ } ->
    outstanding_finished t ~status:"nack";
    t.failed <- Some reason
  | exception (Sm_dist.Wire.Frame.Bad_frame msg | Sm_util.Codec.Decode_error msg) ->
    t.failed <- Some msg

(* --- driving ---------------------------------------------------------------- *)

let flush t =
  if ready t then begin
    let entries =
      Registry.encode_delta t.reg t.view ~since:(fun id ->
          Option.value ~default:0 (Hashtbl.find_opt t.local_base id))
    in
    match entries with
    | [] -> ()
    | entries ->
      let ops = List.map (fun (id, _, _, bytes) -> (id, bytes)) entries in
      let eid = t.next_eid in
      t.next_eid <- t.next_eid + 1;
      t.pending_eid <- Some eid;
      let req = t.next_req in
      t.next_req <- t.next_req + 1;
      let session = Option.get t.session in
      let tctx = mint t (Printf.sprintf "req%d" req) in
      let frame =
        Proto.seal_c2s ?ctx:tctx (Proto.Edit { session; req; eid; base = t.pending_base; ops })
      in
      req_begin t ~op:"edit" ~req tctx;
      t.outstanding <- Some (Editing { frame; req; tctx });
      send_new t frame
  end

let poll t =
  (* Only meaningful when there is nothing to ship (flush covers that case
     and its ack carries the same catch-up delta). *)
  if ready t && pending_ops t = 0 then begin
    let req = t.next_req in
    t.next_req <- t.next_req + 1;
    let session = Option.get t.session in
    let tctx = mint t (Printf.sprintf "req%d" req) in
    let frame = Proto.seal_c2s ?ctx:tctx (Proto.Poll { session; req }) in
    req_begin t ~op:"poll" ~req tctx;
    t.outstanding <- Some (Editing { frame; req; tctx });
    send_new t frame
  end

(* Re-issue a batch that was flushed before a disconnect: same eid and base
   (the server merges each eid exactly once), fresh request number. *)
let reissue_pending t =
  match (t.pending_eid, t.session) with
  | Some eid, Some session ->
    let entries =
      Registry.encode_delta t.reg t.view ~since:(fun id ->
          Option.value ~default:0 (Hashtbl.find_opt t.local_base id))
    in
    let ops = List.map (fun (id, _, _, bytes) -> (id, bytes)) entries in
    let req = t.next_req in
    t.next_req <- t.next_req + 1;
    let tctx = mint t (Printf.sprintf "req%d" req) in
    let frame =
      Proto.seal_c2s ?ctx:tctx (Proto.Edit { session; req; eid; base = t.pending_base; ops })
    in
    req_begin t ~op:"edit" ~req tctx;
    t.outstanding <- Some (Editing { frame; req; tctx });
    send_new t frame
  | _ -> ()

let tick t =
  (match t.conn with
  | None -> ()
  | Some c ->
    let rec drain () =
      match Netpipe.try_recv c with
      | Some frame ->
        handle_frame t frame;
        drain ()
      | None -> ()
    in
    drain ());
  (* After a resume's welcome has landed, put the interrupted batch back in
     flight. *)
  if t.outstanding = None && t.pending_eid <> None && t.conn <> None && t.failed = None then
    reissue_pending t;
  match t.outstanding with
  | None -> ()
  | Some o ->
    t.ticks_waiting <- t.ticks_waiting + 1;
    if t.ticks_waiting >= t.retry_after then begin
      let frame = match o with Connect { frame; _ } | Editing { frame; _ } -> frame in
      (match t.conn with Some c -> Netpipe.send c frame | None -> ());
      t.retransmits <- t.retransmits + 1;
      t.ticks_waiting <- 0
    end

let disconnect t =
  (* A crash, not a goodbye: the connection is abandoned with whatever was
     in flight, and the session's state survives on the server. *)
  t.conn <- None;
  t.outstanding <- None;
  t.ticks_waiting <- 0

let resume t listener =
  match t.session with
  | None ->
    t.conn <- Some (Netpipe.connect listener);
    let tctx = mint t "hello" in
    let frame = Proto.seal_c2s ?ctx:tctx (Proto.Hello { client = t.name }) in
    req_begin t ~op:"hello" ~req:0 tctx;
    t.outstanding <- Some (Connect { frame; tctx });
    send_new t frame
  | Some session ->
    t.conn <- Some (Netpipe.connect listener);
    t.resumes <- t.resumes + 1;
    let req = t.next_req in
    t.next_req <- t.next_req + 1;
    let tctx = mint t (Printf.sprintf "req%d" req) in
    let frame =
      Proto.seal_c2s ?ctx:tctx
        (Proto.Resume { session; req; cursors = List.sort compare (cursor_list t) })
    in
    req_begin t ~op:"resume" ~req tctx;
    t.outstanding <- Some (Connect { frame; tctx });
    send_new t frame

let bye t =
  (match (t.conn, t.session) with
  | Some c, Some session -> Netpipe.send c (Proto.seal_c2s (Proto.Bye { session }))
  | _ -> ());
  t.conn <- None
