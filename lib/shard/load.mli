(** A {!Sm_util.Det_rng}-seeded load generator simulating fleets of editors
    against a {!Service}.

    Everything — shard epochs, client think times, edit bursts, the Netpipe
    fault plane, disconnect/resume chaos — runs in one discrete-event tick
    loop on the calling thread, so a run is a pure function of the profile
    (in particular of [seed]): same profile ⇒ same tick count, same byte
    counters, byte-identical shard digests.  That is the property the bench
    gate and the fuzz target check.

    The loop ends when every editor has placed its operations and every
    replica is synced (or an editor failed, or [max_ticks] ran out); the
    report then compares every surviving client view digest against its
    shard's authoritative digest. *)

type faults =
  { drop : float
  ; dup : float
  ; delay : float
  ; reorder : float
  }

type profile =
  { seed : int64
  ; shards : int
  ; clients : int
  ; specs : Service.spec list  (** ignored when [run ~docs] supplies pre-minted docs *)
  ; ops_per_client : int
  ; think_max : int  (** max idle ticks between bursts (0 = edit every tick) *)
  ; burst_max : int  (** max operations per flushed batch *)
  ; ins_bias : float  (** probability an edit inserts (vs deletes/relabels) *)
  ; mode : Server.mode
  ; epoch_ticks : int
  ; faults : faults option  (** installed process-globally for the run's duration *)
  ; disconnect_prob : float  (** per-tick crash probability while un-synced *)
  ; resume_after : int  (** ticks a crashed editor stays away before {!Client.resume} *)
  ; max_ticks : int  (** safety net: give up (non-converged) past this *)
  }

val default : profile
(** 2 shards, 8 clients, 4 small documents, 20 ops each, delta mode, no
    chaos — the demo configuration. *)

type report =
  { converged : bool
    (** all editors finished and every client view digest matches its
        shard's digest *)
  ; shard_digests : string list
  ; ticks : int
  ; ops_applied : int  (** operations placed by editors *)
  ; edits_merged : int  (** edit batches merged by shards *)
  ; epochs : int
  ; delta_bytes : int
  ; snapshot_bytes : int
  ; retransmits : int
  ; resumes : int
  ; failures : (string * string) list  (** client name, Nack/decode reason *)
  }

val run :
  ?docs:Service.docs ->
  ?parent:Sm_obs.Trace_ctx.t ->
  ?on_tick:(int -> Service.t -> unit) ->
  profile ->
  report
(** Run a workload to quiescence.  Pass [~docs] to reuse pre-minted
    documents (required when calling [run] repeatedly in one process with
    the same document names — registry keys must be minted once; the fuzz
    target does this).  The profile's [specs] are used only when [~docs] is
    absent.  [?parent] is handed to every client as its trace root, so a
    whole run's requests — across every shard — stitch into one causal
    tree under that span (see {!Client.connect}).  [?on_tick] runs after
    every simulation tick with the tick number and the live service — the
    [sm-shard stats] periodic reporter; it must not mutate the service. *)
