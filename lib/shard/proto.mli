(** The shard service's client/server protocol.

    Sessions are {e stop-and-wait}: a client has at most one request in
    flight, retransmits it verbatim on a timeout, and the server answers
    each fresh request once — replaying the cached reply frame for any
    request number it has already served.  Together with cursor-based dedup
    on the client this yields exactly-once {e application} over the lossy
    {!Sm_sim.Netpipe} fault plane (drop, duplicate, delay, reorder).

    All messages travel as {!Sm_dist.Wire.Frame}s; server replies advertise
    their payload in the frame kind ([Delta]/[Snapshot]), so byte accounting
    and taps can classify traffic without decoding. *)

(** What a server reply carries to bring the client current. *)
type payload =
  | Delta of (int * int * int * string) list
      (** [(wire_id, from_rev, to_rev, ops_bytes)]: compacted journal
          suffixes ({!Sm_dist.Registry.encode_delta}) — never full states *)
  | Snap of (int * int * string) list
      (** [(wire_id, rev, state_bytes)]: full encoded states, the fallback
          (and the baseline the delta/snapshot byte gate compares against) *)

type c2s =
  | Hello of { client : string }  (** open a fresh session (cursors all 0) *)
  | Resume of
      { session : int
      ; req : int  (** per-session, strictly increasing across all requests *)
      ; cursors : (int * int) list
          (** last {e applied} revision per document — the server rolls its
              shipped-revision watermark back to this, however stale *)
      }  (** re-attach after a disconnect, on a brand-new connection *)
  | Edit of
      { session : int
      ; req : int  (** per-session, strictly increasing across all requests *)
      ; eid : int
          (** edit-batch id: stable across re-issues of the same local ops
              (a fresh [req] after a resume), so the server merges each
              batch exactly once *)
      ; base : (int * int) list  (** revisions the ops were recorded against *)
      ; ops : (int * string) list  (** [(wire_id, encoded op list)] *)
      }
  | Poll of
      { session : int
      ; req : int  (** per-session, strictly increasing across all requests *)
      }
      (** pull without pushing: answered immediately (outside the epoch) with
          whatever accumulated since the session's watermark — how an idle
          client catches up on epochs it did not participate in *)
  | Bye of { session : int }

type s2c =
  | Welcome of
      { session : int
      ; payload : payload
      }
  | Ack of
      { session : int
      ; req : int
      ; payload : payload  (** includes the sender's own transformed ops *)
      }
  | Nack of
      { session : int
      ; req : int
      ; reason : string
      }

val seal_c2s : ?ctx:Sm_obs.Trace_ctx.t -> c2s -> string
(** Seals a current-version frame (optionally carrying the request's trace
    context) — the version tells the shard this client ships packed
    journals in its [Edit] batches. *)

val open_c2s : string -> c2s
(** @raise Sm_dist.Wire.Frame.Bad_frame / [Sm_util.Codec.Decode_error] *)

val open_c2s_ctx : string -> Sm_obs.Trace_ctx.t option * c2s
(** {!open_c2s}, surfacing the frame's trace context — how a shard joins
    the client's request tree. *)

val open_c2s_full : string -> Sm_obs.Trace_ctx.t option * Sm_dist.Wire.journal_format * c2s
(** {!open_c2s_ctx}, also surfacing the journal format the client's frame
    version implies — the shard must decode [Edit] ops with the sender's
    codec, so version-1/2 clients keep working. *)

val seal_s2c : ?ctx:Sm_obs.Trace_ctx.t -> s2c -> string

val open_s2c : string -> s2c
(** Additionally checks the frame kind agrees with the payload.
    @raise Sm_dist.Wire.Frame.Bad_frame on disagreement. *)

val open_s2c_v : string -> Sm_dist.Wire.journal_format * s2c
(** {!open_s2c}, surfacing the journal format of the shard's frame —
    clients decode delta payloads with the sender's codec. *)

val payload_bytes : payload -> int
(** Document bytes carried (op/state payloads, excluding message and frame
    overhead) — the delta-vs-snapshot accounting unit. *)
