(** A multi-shard collaborative-document service: N {!Server} shards, each
    owning the disjoint set of named documents the {!Router} hashes to it.

    Documents are declared once as {!spec}s and minted into a shared
    {!Sm_dist.Registry} by {!make_docs} — registration order defines wire
    ids, so mint at module level and reuse the same {!docs} for every
    service instance, client and fuzz iteration (see the registry's
    single-construction-site rule).  A {!t} is then one deployment of those
    documents across [shards] coordinator shards. *)

module Tree : module type of Sm_dist.Codable.Make_tree (Sm_dist.Codable.String_elt)

type spec =
  [ `Text of string * string  (** name, initial text *)
  | `Tree of string * Tree.Op.node list  (** name, initial forest *)
  ]

type doc
type docs

val spec_name : spec -> string

val make_docs : spec list -> docs
(** Mint the registry and typed keys for a document set.
    @raise Invalid_argument on duplicate names. *)

val registry : docs -> Sm_dist.Registry.t
val doc_list : docs -> doc list
val doc_name : doc -> string

val find_doc : docs -> string -> doc
(** @raise Invalid_argument for unknown names. *)

val text_key : doc -> (Sm_ot.Op_text.state, Sm_ot.Op_text.op) Sm_mergeable.Workspace.key
(** The workspace key of a text document — read a replica's content with
    {!Sm_mergeable.Workspace.read}.
    @raise Invalid_argument for tree documents. *)

val tree_key : doc -> (Tree.Op.state, Tree.Op.op) Sm_mergeable.Workspace.key
(** The workspace key of a tree document.
    @raise Invalid_argument for text documents. *)

type t

val create : docs -> shards:int -> mode:Server.mode -> epoch_ticks:int -> t
(** Deploy: each document lands on shard [Router.shard_of ~shards name],
    and each shard's workspace binds exactly its own documents. *)

val shard_count : t -> int
val shard_of : t -> string -> int
val shard : t -> int -> Server.t
val listener : t -> int -> Sm_sim.Netpipe.listener

val listener_for : t -> doc:string -> Sm_sim.Netpipe.listener
(** The listener of the shard owning document [doc]. *)

val docs_on : t -> int -> doc list

val client_init : t -> shard:int -> Sm_mergeable.Workspace.t -> unit
(** Workspace initializer for a client of shard [shard] — binds the same
    documents, with the same initial states, as the shard itself. *)

val tick : t -> unit
(** Tick every shard once, in shard order. *)

val digests : t -> string list
(** Per-shard workspace digests, in shard order. *)

val idle : t -> bool

(** {1 Live stats} *)

val servers : t -> Server.t list
(** The shard servers in shard order — the feed for {!Shard_metrics}. *)

val stats_report : ?limit:int -> t -> string
(** {!Shard_metrics.report} over every shard (what [sm-shard stats]
    prints); [limit] bounds the hot-documents table. *)

val expo_text : t -> string
(** {!Shard_metrics.expo_text} over every shard. *)

(** {1 Aggregate counters (summed over shards)} *)

val delta_bytes_sent : t -> int
val snapshot_bytes_sent : t -> int
val epochs_run : t -> int
val edits_merged : t -> int

(** {1 Random edits (the load generator's edit mix)} *)

val edit_doc : rng:Sm_util.Det_rng.t -> ins_bias:float -> doc -> Sm_mergeable.Workspace.t -> unit
(** Apply one random operation to [doc] in a client view: for text, an
    insert with probability [ins_bias] else a delete; for trees, an insert
    with probability [ins_bias] else a relabel or subtree delete.  Empty
    documents always get inserts. *)
