(** One coordinator shard: the authoritative workspace for the documents the
    {!Router} assigns it, served to sessions over {!Sm_sim.Netpipe}.

    The server is a {e poll-driven state machine}, not a thread-per-client
    accept loop: the owner calls {!tick} repeatedly and each tick accepts
    pending connections, drains every connection's frames in accept order,
    and — every [epoch_ticks] ticks — runs one {e epoch}: the buffered edit
    batches are merged in one pass, in session-creation order, each reply
    carrying a delta (or snapshot) that brings its client current.  Driving
    N shards and thousands of simulated clients from a single thread makes
    a whole run a pure function of the seed, which is what the determinism
    acceptance gate (same seed ⇒ byte-identical shard digests) needs even
    under Netpipe's fault plane.

    Reliability: the server answers each request number once and caches the
    sealed reply frame, replaying it verbatim for duplicate requests; edit
    batches are deduplicated by [eid] so a batch re-issued after a session
    resume merges exactly once (see {!Proto}). *)

type t

type mode =
  [ `Delta  (** replies ship compacted journal suffixes *)
  | `Snapshot  (** replies ship full states — the byte-accounting baseline *)
  ]

(** Per-document conflict profile: how many epoch merges touched the
    document, the operations and OT transform calls they took, and the
    journal-compaction in/out op counts — the live feed of the conflict
    profiler ([sm-shard stats] hot-documents table).  Transform/compaction
    deltas are only recorded while {!Sm_obs.Metrics} is enabled. *)
type doc_stat =
  { mutable d_merges : int
  ; mutable d_ops : int
  ; mutable d_transforms : int
  ; mutable d_compact_in : int
  ; mutable d_compact_out : int
  }

val create :
  reg:Sm_dist.Registry.t ->
  shard_id:int ->
  mode:mode ->
  epoch_ticks:int ->
  init:(Sm_mergeable.Workspace.t -> unit) ->
  t
(** A shard serving the documents [init] binds into its workspace.  [init]
    must be the same function clients use to seed their replicas (rev-0
    states must agree).  @raise Invalid_argument if [epoch_ticks <= 0]. *)

val listener : t -> Sm_sim.Netpipe.listener
val tick : t -> unit

val workspace : t -> Sm_mergeable.Workspace.t
(** The authoritative workspace (read-only use: digests, assertions). *)

val digest : t -> string

val idle : t -> bool
(** No edits buffered for the next epoch. *)

val delta_bytes_sent : t -> int
(** Document payload bytes shipped in delta replies so far. *)

val snapshot_bytes_sent : t -> int

val epochs_run : t -> int
val edits_merged : t -> int
val session_count : t -> int

val shard_id : t -> int

val replayed_replies : t -> int
(** Reply-cache hits: duplicate requests answered by resending the cached
    frame (the fault plane's dup/reorder signature). *)

val rejected_frames : t -> int
(** Undecodable or version-incompatible frames dropped. *)

val nacks_sent : t -> int

val max_cursor_lag : t -> int
(** The worst catch-up debt any live session carries: head revisions not
    yet shipped to it, summed across documents. *)

val doc_stats : t -> (string * doc_stat) list
(** Hottest documents first (most transform calls, then most ops). *)

val recorder : t -> Sm_obs.Flight_recorder.t
(** The shard's flight ring (registered under {!obs_shard_name}); every
    served request, epoch bracket, rejection and nack is recorded here
    regardless of sink verbosity. *)

(** {1 Observability conventions} *)

val obs_shard_tid : int -> int
(** Trace lane for shard [k] — above the dist layer's [1_000_000]+ lanes. *)

val obs_shard_name : int -> string
