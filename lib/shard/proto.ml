module C = Sm_util.Codec
module Frame = Sm_dist.Wire.Frame

type payload =
  | Delta of (int * int * int * string) list
  | Snap of (int * int * string) list

type c2s =
  | Hello of { client : string }
  | Resume of
      { session : int
      ; req : int
      ; cursors : (int * int) list
      }
  | Edit of
      { session : int
      ; req : int
      ; eid : int
      ; base : (int * int) list
      ; ops : (int * string) list
      }
  | Poll of
      { session : int
      ; req : int
      }
  | Bye of { session : int }

type s2c =
  | Welcome of
      { session : int
      ; payload : payload
      }
  | Ack of
      { session : int
      ; req : int
      ; payload : payload
      }
  | Nack of
      { session : int
      ; req : int
      ; reason : string
      }

let delta_entries_codec = C.list (C.pair (C.pair C.int C.int) (C.pair C.int C.string))
let snap_entries_codec = C.list (C.pair C.int (C.pair C.int C.string))

let payload_codec =
  C.tagged
    ~tag:(function Delta _ -> 0 | Snap _ -> 1)
    ~write:(fun buf -> function
      | Delta entries ->
        C.W.value delta_entries_codec buf
          (List.map (fun (id, f, t, ops) -> ((id, f), (t, ops))) entries)
      | Snap entries ->
        C.W.value snap_entries_codec buf (List.map (fun (id, rev, st) -> (id, (rev, st))) entries))
    ~read:(fun tag r ->
      match tag with
      | 0 ->
        Delta
          (List.map (fun ((id, f), (t, ops)) -> (id, f, t, ops)) (C.R.value delta_entries_codec r))
      | 1 -> Snap (List.map (fun (id, (rev, st)) -> (id, rev, st)) (C.R.value snap_entries_codec r))
      | t -> raise (C.Decode_error (Printf.sprintf "Proto.payload: unknown tag %d" t)))

let revs_codec = C.list (C.pair C.int C.int)
let ops_codec = C.list (C.pair C.int C.string)

let c2s_codec =
  C.tagged
    ~tag:(function Hello _ -> 0 | Resume _ -> 1 | Edit _ -> 2 | Bye _ -> 3 | Poll _ -> 4)
    ~write:(fun buf -> function
      | Hello { client } -> C.W.string buf client
      | Resume { session; req; cursors } ->
        C.W.int buf session;
        C.W.int buf req;
        C.W.value revs_codec buf cursors
      | Edit { session; req; eid; base; ops } ->
        C.W.int buf session;
        C.W.int buf req;
        C.W.int buf eid;
        C.W.value revs_codec buf base;
        C.W.value ops_codec buf ops
      | Poll { session; req } ->
        C.W.int buf session;
        C.W.int buf req
      | Bye { session } -> C.W.int buf session)
    ~read:(fun tag r ->
      match tag with
      | 0 -> Hello { client = C.R.string r }
      | 1 ->
        let session = C.R.int r in
        let req = C.R.int r in
        let cursors = C.R.value revs_codec r in
        Resume { session; req; cursors }
      | 2 ->
        let session = C.R.int r in
        let req = C.R.int r in
        let eid = C.R.int r in
        let base = C.R.value revs_codec r in
        let ops = C.R.value ops_codec r in
        Edit { session; req; eid; base; ops }
      | 3 -> Bye { session = C.R.int r }
      | 4 ->
        let session = C.R.int r in
        let req = C.R.int r in
        Poll { session; req }
      | t -> raise (C.Decode_error (Printf.sprintf "Proto.c2s: unknown tag %d" t)))

let s2c_codec =
  C.tagged
    ~tag:(function Welcome _ -> 0 | Ack _ -> 1 | Nack _ -> 2)
    ~write:(fun buf -> function
      | Welcome { session; payload } ->
        C.W.int buf session;
        C.W.value payload_codec buf payload
      | Ack { session; req; payload } ->
        C.W.int buf session;
        C.W.int buf req;
        C.W.value payload_codec buf payload
      | Nack { session; req; reason } ->
        C.W.int buf session;
        C.W.int buf req;
        C.W.string buf reason)
    ~read:(fun tag r ->
      match tag with
      | 0 ->
        let session = C.R.int r in
        let payload = C.R.value payload_codec r in
        Welcome { session; payload }
      | 1 ->
        let session = C.R.int r in
        let req = C.R.int r in
        let payload = C.R.value payload_codec r in
        Ack { session; req; payload }
      | 2 ->
        let session = C.R.int r in
        let req = C.R.int r in
        let reason = C.R.string r in
        Nack { session; req; reason }
      | t -> raise (C.Decode_error (Printf.sprintf "Proto.s2c: unknown tag %d" t)))

(* The frame kind advertises what the payload carries, so a tap (or a future
   proxy) can tell delta traffic from snapshot traffic without decoding. *)
let kind_of_s2c = function
  | Welcome { payload = Delta _; _ } | Ack { payload = Delta _; _ } -> Frame.Delta
  | Welcome { payload = Snap _; _ } | Ack { payload = Snap _; _ } -> Frame.Snapshot
  | Nack _ -> Frame.Control

let seal_c2s ?ctx msg = Frame.seal ?ctx Frame.Control (C.encode c2s_codec msg)

let open_c2s_full frame =
  match Frame.open_v frame with
  | v, Frame.Control, ctx, payload ->
    (ctx, Sm_dist.Wire.journal_format_of_version v, C.decode c2s_codec payload)
  | _, k, _, _ ->
    raise
      (Frame.Bad_frame
         (Printf.sprintf "client frames are control frames, got %s" (Frame.kind_to_string k)))

let open_c2s_ctx frame =
  let ctx, _fmt, msg = open_c2s_full frame in
  (ctx, msg)

let open_c2s frame = snd (open_c2s_ctx frame)

let seal_s2c ?ctx msg = Frame.seal ?ctx (kind_of_s2c msg) (C.encode s2c_codec msg)

let open_s2c_v frame =
  let v, kind, _ctx, payload = Frame.open_v frame in
  let msg = C.decode s2c_codec payload in
  if kind_of_s2c msg <> kind then
    raise
      (Frame.Bad_frame
         (Printf.sprintf "frame advertises %s but carries a %s payload" (Frame.kind_to_string kind)
            (Frame.kind_to_string (kind_of_s2c msg))));
  (Sm_dist.Wire.journal_format_of_version v, msg)

let open_s2c frame = snd (open_s2c_v frame)

let payload_bytes = function
  | Delta entries -> List.fold_left (fun a (_, _, _, ops) -> a + String.length ops) 0 entries
  | Snap entries -> List.fold_left (fun a (_, _, st) -> a + String.length st) 0 entries
