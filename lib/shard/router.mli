(** Deterministic document placement: which shard owns a named document.

    Placement is a pure function of the document {e name} and the shard
    count — every participant (shards, clients, tools) computes it locally
    and agrees, with no placement directory to keep consistent.  FNV-1a is
    the same stable hash the determinism oracle uses, so placement is also
    identical across runs and executors. *)

val shard_of : shards:int -> string -> int
(** The shard (in [\[0, shards)]) owning document [name].
    @raise Invalid_argument when [shards <= 0]. *)

val partition : shards:int -> string list -> string list array
(** All names grouped by owning shard, input order preserved per shard. *)
