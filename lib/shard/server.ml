module Ws = Sm_mergeable.Workspace
module Registry = Sm_dist.Registry
module Netpipe = Sm_sim.Netpipe
module Obs = Sm_obs
module E = Sm_obs.Event

let m_epochs = Obs.Metrics.counter "shard.epochs"
let m_epoch_edits = Obs.Metrics.counter "shard.epoch_edits"
let m_delta_bytes = Obs.Metrics.counter "shard.delta_bytes"
let m_snapshot_bytes = Obs.Metrics.counter "shard.snapshot_bytes"
let m_replays = Obs.Metrics.counter "shard.replayed_replies"
let m_rejected = Obs.Metrics.counter "shard.rejected_frames"
let h_epoch_size = Obs.Metrics.histogram "shard.epoch_size"

(* Trace lanes: shards park above the dist layer's 1M-range coordinator and
   task lanes, one lane per shard. *)
let obs_shard_tid k = 2_000_000 + k
let obs_shard_name k = Printf.sprintf "shard%d" k

type mode =
  [ `Delta
  | `Snapshot
  ]

type session =
  { sid : int
  ; client : string
  ; mutable sconn : Netpipe.conn
  ; acked : (int, int) Hashtbl.t  (* wire_id -> last revision shipped to this client *)
  ; mutable last_req : int  (* highest request number answered *)
  ; mutable cached : string option  (* sealed reply frame for [last_req] *)
  ; mutable last_eid : int  (* highest edit batch merged (dedup across re-issues) *)
  }

type t =
  { reg : Registry.t
  ; ws : Ws.t
  ; shard_id : int
  ; mode : mode
  ; epoch_ticks : int
  ; listener : Netpipe.listener
  ; mutable conns : Netpipe.conn list  (* accept order — the deterministic poll order *)
  ; sessions : (int, session) Hashtbl.t
  ; mutable next_sid : int
  ; mutable epoch_buffer : (session * int * int * (int * int) list * (int * string) list) list
      (* (session, req, eid, base, ops), arrival order (reversed) *)
  ; mutable tick_count : int
  ; h_merge : Obs.Metrics.histogram  (* per-shard merge latency *)
  ; mutable delta_payload_bytes : int  (* document bytes shipped as deltas *)
  ; mutable snap_payload_bytes : int  (* document bytes shipped as snapshots *)
  ; delta_memo : (int * int * int, string) Hashtbl.t
      (* shared encoded-suffix cache for one epoch's replies *)
  ; mutable epochs_run : int
  ; mutable edits_merged : int
  ; obs_task : string
  ; obs_tid : int
  }

let create ~reg ~shard_id ~mode ~epoch_ticks ~init =
  if epoch_ticks <= 0 then invalid_arg "Server.create: epoch_ticks must be positive";
  let ws = Ws.create () in
  init ws;
  { reg
  ; ws
  ; shard_id
  ; mode
  ; epoch_ticks
  ; listener = Netpipe.listen ()
  ; conns = []
  ; sessions = Hashtbl.create 32
  ; next_sid = 0
  ; epoch_buffer = []
  ; tick_count = 0
  ; h_merge = Obs.Metrics.histogram (Printf.sprintf "shard%d.merge_ns" shard_id)
  ; delta_payload_bytes = 0
  ; snap_payload_bytes = 0
  ; delta_memo = Hashtbl.create 64
  ; epochs_run = 0
  ; edits_merged = 0
  ; obs_task = obs_shard_name shard_id
  ; obs_tid = obs_shard_tid shard_id
  }

let listener t = t.listener
let workspace t = t.ws
let digest t = Ws.digest t.ws
let delta_bytes_sent t = t.delta_payload_bytes
let snapshot_bytes_sent t = t.snap_payload_bytes
let epochs_run t = t.epochs_run
let edits_merged t = t.edits_merged
let session_count t = Hashtbl.length t.sessions
let idle t = t.epoch_buffer = []

(* --- replies ---------------------------------------------------------------- *)

let snapshot_payload t =
  let revs = Registry.revisions t.reg t.ws in
  let states = Registry.encode_snapshot t.reg t.ws in
  Proto.Snap
    (List.map
       (fun (id, bytes) ->
         (id, (try List.assoc id revs with Not_found -> 0), bytes))
       states)

(* Fresh payload bringing [s] from what we last shipped it to the current
   head; advances the shipped-revision watermark. *)
let fresh_payload t (s : session) =
  let payload =
    match t.mode with
    | `Snapshot -> snapshot_payload t
    | `Delta ->
      Proto.Delta
        (Registry.encode_delta ~memo:t.delta_memo t.reg t.ws ~since:(fun id ->
             Option.value ~default:0 (Hashtbl.find_opt s.acked id)))
  in
  List.iter (fun (id, rev) -> Hashtbl.replace s.acked id rev) (Registry.revisions t.reg t.ws);
  payload

let account_payload t payload =
  let bytes = Proto.payload_bytes payload in
  (match payload with
  | Proto.Delta _ ->
    t.delta_payload_bytes <- t.delta_payload_bytes + bytes;
    Obs.Metrics.add m_delta_bytes bytes
  | Proto.Snap _ ->
    t.snap_payload_bytes <- t.snap_payload_bytes + bytes;
    Obs.Metrics.add m_snapshot_bytes bytes);
  if Obs.on Obs.Info then begin
    (* The counterfactual: what this sync would have cost as a snapshot. *)
    let snapshot_bytes =
      match payload with
      | Proto.Snap _ -> bytes
      | Proto.Delta _ -> Proto.payload_bytes (snapshot_payload t)
    in
    Obs.emit
      (E.make ~task:t.obs_task ~task_id:t.obs_tid
         ~args:
           [ ( "mode"
             , E.S (match payload with Proto.Delta _ -> "delta" | Proto.Snap _ -> "snapshot") )
           ; ("bytes", E.I bytes)
           ; ("snapshot_bytes", E.I snapshot_bytes)
           ]
         E.Delta_sync)
  end

let reply (s : session) ~req msg =
  let frame = Proto.seal_s2c msg in
  s.last_req <- req;
  s.cached <- Some frame;
  Netpipe.send s.sconn frame

(* --- receive path ----------------------------------------------------------- *)

let handle_hello t conn ~client =
  let s =
    { sid = t.next_sid
    ; client
    ; sconn = conn
    ; acked = Hashtbl.create 8
    ; last_req = -1
    ; cached = None
    ; last_eid = -1
    }
  in
  t.next_sid <- t.next_sid + 1;
  Hashtbl.replace t.sessions s.sid s;
  let payload = fresh_payload t s in
  account_payload t payload;
  reply s ~req:0 (Proto.Welcome { session = s.sid; payload })

let handle_resume t conn ~session ~req ~cursors =
  match Hashtbl.find_opt t.sessions session with
  | None -> Netpipe.send conn (Proto.seal_s2c (Proto.Nack { session; req; reason = "unknown session" }))
  | Some s ->
    s.sconn <- conn;
    if req <= s.last_req then begin
      (* Duplicate (dup/reorder fault): replay the identical welcome. *)
      Obs.Metrics.incr m_replays;
      match s.cached with Some frame -> Netpipe.send conn frame | None -> ()
    end
    else begin
      (* The client's cursors are authoritative: acks it never saw must be
         re-shipped, so roll the watermark back to what it actually holds. *)
      Hashtbl.reset s.acked;
      List.iter (fun (id, rev) -> Hashtbl.replace s.acked id rev) cursors;
      let payload = fresh_payload t s in
      account_payload t payload;
      reply s ~req (Proto.Welcome { session = s.sid; payload })
    end

let handle_edit t conn ~session ~req ~eid ~base ~ops =
  match Hashtbl.find_opt t.sessions session with
  | None -> Netpipe.send conn (Proto.seal_s2c (Proto.Nack { session; req; reason = "unknown session" }))
  | Some s ->
    s.sconn <- conn;
    if req <= s.last_req then begin
      Obs.Metrics.incr m_replays;
      match s.cached with Some frame -> Netpipe.send s.sconn frame | None -> ()
    end
    else if List.exists (fun (s', req', _, _, _) -> s'.sid = s.sid && req' = req) t.epoch_buffer
    then () (* retransmit of an edit already waiting for the epoch *)
    else t.epoch_buffer <- (s, req, eid, base, ops) :: t.epoch_buffer

let handle_poll t conn ~session ~req =
  match Hashtbl.find_opt t.sessions session with
  | None -> Netpipe.send conn (Proto.seal_s2c (Proto.Nack { session; req; reason = "unknown session" }))
  | Some s ->
    s.sconn <- conn;
    if req <= s.last_req then begin
      Obs.Metrics.incr m_replays;
      match s.cached with Some frame -> Netpipe.send s.sconn frame | None -> ()
    end
    else begin
      (* Answered immediately (not at the epoch): a poll carries no ops, it
         just reads the head — it is how an idle client hears about epochs
         it sent nothing into. *)
      let payload = fresh_payload t s in
      account_payload t payload;
      reply s ~req (Proto.Ack { session = s.sid; req; payload })
    end

let handle_bye t ~session = Hashtbl.remove t.sessions session

let handle_frame t conn frame =
  match Proto.open_c2s frame with
  | Proto.Hello { client } -> handle_hello t conn ~client
  | Proto.Resume { session; req; cursors } -> handle_resume t conn ~session ~req ~cursors
  | Proto.Edit { session; req; eid; base; ops } -> handle_edit t conn ~session ~req ~eid ~base ~ops
  | Proto.Poll { session; req } -> handle_poll t conn ~session ~req
  | Proto.Bye { session } -> handle_bye t ~session
  | exception (Sm_dist.Wire.Frame.Bad_frame _ | Sm_util.Codec.Decode_error _) ->
    Obs.Metrics.incr m_rejected

(* --- epoch flush ------------------------------------------------------------ *)

let flush_epoch t =
  match t.epoch_buffer with
  | [] -> ()
  | buffered ->
    (* One batched transform pass: stable session-creation order, so the
       epoch's composition is insensitive to arrival interleavings within
       the window.  Entries whose request number a later Resume already
       superseded are dropped whole — the client discarded that request and
       will re-issue the batch (same eid) if it still matters. *)
    let edits =
      List.stable_sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a.sid b.sid)
        (List.rev buffered)
      |> List.filter (fun ((s : session), req, _, _, _) -> req > s.last_req)
    in
    t.epoch_buffer <- [];
    (* The memo keys embed the revision window, so entries never go stale;
       clearing per epoch just bounds the table to one epoch's windows. *)
    Hashtbl.reset t.delta_memo;
    let n = List.length edits in
    if Obs.on Obs.Debug then
      Obs.emit (E.make ~task:t.obs_task ~task_id:t.obs_tid ~args:[ ("edits", E.I n) ] E.Epoch_begin);
    let total_ops = ref 0 in
    (* Merge pass first, replies second: every participant's ack reflects
       the WHOLE epoch, not the prefix merged before its own batch. *)
    List.iter
      (fun ((s : session), _req, eid, base, ops) ->
        if eid > s.last_eid then begin
          (* A batch this session has not merged yet (re-issues after a
             resume carry the old eid and are skipped: exactly-once). *)
          Obs.Metrics.time t.h_merge (fun () ->
              Registry.merge_edit t.reg ~into:t.ws
                ~base_rev:(fun id -> Option.value ~default:0 (List.assoc_opt id base))
                ops);
          s.last_eid <- eid;
          t.edits_merged <- t.edits_merged + 1;
          total_ops := !total_ops + List.length ops
        end)
      edits;
    List.iter
      (fun ((s : session), req, _, _, _) ->
        let payload = fresh_payload t s in
        account_payload t payload;
        reply s ~req (Proto.Ack { session = s.sid; req; payload }))
      edits;
    t.epochs_run <- t.epochs_run + 1;
    Obs.Metrics.incr m_epochs;
    Obs.Metrics.add m_epoch_edits n;
    Obs.Metrics.observe h_epoch_size (float_of_int n);
    if Obs.on Obs.Debug then
      Obs.emit
        (E.make ~task:t.obs_task ~task_id:t.obs_tid
           ~args:[ ("edits", E.I n); ("ops", E.I !total_ops) ]
           E.Epoch_end)

(* --- tick ------------------------------------------------------------------- *)

let tick t =
  let rec accept_all () =
    match Netpipe.try_accept t.listener with
    | Some conn ->
      t.conns <- t.conns @ [ conn ];
      accept_all ()
    | None -> ()
  in
  accept_all ();
  List.iter
    (fun conn ->
      let rec drain () =
        match Netpipe.try_recv conn with
        | Some frame ->
          handle_frame t conn frame;
          drain ()
        | None -> ()
      in
      drain ())
    t.conns;
  t.tick_count <- t.tick_count + 1;
  if t.tick_count mod t.epoch_ticks = 0 then flush_epoch t
