module Ws = Sm_mergeable.Workspace
module Registry = Sm_dist.Registry
module Netpipe = Sm_sim.Netpipe
module Obs = Sm_obs
module E = Sm_obs.Event

let m_epochs = Obs.Metrics.counter "shard.epochs"
let m_epoch_edits = Obs.Metrics.counter "shard.epoch_edits"
let m_delta_bytes = Obs.Metrics.counter "shard.delta_bytes"
let m_snapshot_bytes = Obs.Metrics.counter "shard.snapshot_bytes"
let m_replays = Obs.Metrics.counter "shard.replayed_replies"
let m_rejected = Obs.Metrics.counter "shard.rejected_frames"
let m_nacks = Obs.Metrics.counter "shard.nacks"
let h_epoch_size = Obs.Metrics.histogram "shard.epoch_size"

(* The OT layer's global counters, read as deltas around each per-document
   merge so the conflict profiler can attribute transform calls and
   compaction to individual documents.  Deltas are only meaningful when
   {!Obs.Metrics} is enabled — otherwise they read 0 and the profile stays
   empty, at zero cost. *)
let m_ot_transforms = Obs.Metrics.counter "ot.transform_calls"
let m_ot_compact_in = Obs.Metrics.counter "ot.compact_in"
let m_ot_compact_out = Obs.Metrics.counter "ot.compact_out"

(* Trace lanes: shards park above the dist layer's 1M-range coordinator and
   task lanes, one lane per shard. *)
let obs_shard_tid k = 2_000_000 + k
let obs_shard_name k = Printf.sprintf "shard%d" k

type mode =
  [ `Delta
  | `Snapshot
  ]

(* Per-document conflict profile, the live counterpart of the trace-side
   [Doc_merge] accounting. *)
type doc_stat =
  { mutable d_merges : int
  ; mutable d_ops : int
  ; mutable d_transforms : int
  ; mutable d_compact_in : int
  ; mutable d_compact_out : int
  }

type session =
  { sid : int
  ; client : string
  ; mutable sconn : Netpipe.conn
  ; acked : (int, int) Hashtbl.t  (* wire_id -> last revision shipped to this client *)
  ; mutable last_req : int  (* highest request number answered *)
  ; mutable cached : string option  (* sealed reply frame for [last_req] *)
  ; mutable last_eid : int  (* highest edit batch merged (dedup across re-issues) *)
  }

type t =
  { reg : Registry.t
  ; ws : Ws.t
  ; shard_id : int
  ; mode : mode
  ; epoch_ticks : int
  ; listener : Netpipe.listener
  ; mutable conns : Netpipe.conn list  (* accept order — the deterministic poll order *)
  ; sessions : (int, session) Hashtbl.t
  ; mutable next_sid : int
  ; mutable epoch_buffer :
      (session
      * int
      * int
      * (int * int) list
      * (int * string) list
      * Sm_dist.Wire.journal_format
      * Obs.Trace_ctx.t option)
      list
      (* (session, req, eid, base, ops, journal format, serve ctx), arrival
         order (reversed); the format is the sender's — ops decode with it *)
  ; mutable tick_count : int
  ; h_merge : Obs.Metrics.histogram  (* per-shard merge latency *)
  ; mutable delta_payload_bytes : int  (* document bytes shipped as deltas *)
  ; mutable snap_payload_bytes : int  (* document bytes shipped as snapshots *)
  ; delta_memo : (int * int * int, string) Hashtbl.t
      (* shared encoded-suffix cache for one epoch's replies *)
  ; mutable epochs_run : int
  ; mutable edits_merged : int
  ; mutable replays : int  (* reply-cache hits: duplicate requests answered from cache *)
  ; mutable rejects : int  (* undecodable/incompatible frames dropped *)
  ; mutable nacks : int
  ; docs : (string, doc_stat) Hashtbl.t
  ; recorder : Obs.Flight_recorder.t
  ; obs_task : string
  ; obs_tid : int
  }

let create ~reg ~shard_id ~mode ~epoch_ticks ~init =
  if epoch_ticks <= 0 then invalid_arg "Server.create: epoch_ticks must be positive";
  let ws = Ws.create () in
  init ws;
  { reg
  ; ws
  ; shard_id
  ; mode
  ; epoch_ticks
  ; listener = Netpipe.listen ()
  ; conns = []
  ; sessions = Hashtbl.create 32
  ; next_sid = 0
  ; epoch_buffer = []
  ; tick_count = 0
  ; h_merge = Obs.Metrics.histogram (Printf.sprintf "shard%d.merge_ns" shard_id)
  ; delta_payload_bytes = 0
  ; snap_payload_bytes = 0
  ; delta_memo = Hashtbl.create 64
  ; epochs_run = 0
  ; edits_merged = 0
  ; replays = 0
  ; rejects = 0
  ; nacks = 0
  ; docs = Hashtbl.create 16
  ; recorder = Obs.Flight_recorder.create (obs_shard_name shard_id)
  ; obs_task = obs_shard_name shard_id
  ; obs_tid = obs_shard_tid shard_id
  }

(* The flight recorder rides every request regardless of sink verbosity:
   the event is built only when recording is on, and the ring store is the
   whole cost — the overhead bench gates it. *)
let fr t kind args =
  if Obs.Flight_recorder.enabled () then
    Obs.Flight_recorder.record t.recorder (E.make ~task:t.obs_task ~task_id:t.obs_tid ~args kind)

let listener t = t.listener
let workspace t = t.ws
let digest t = Ws.digest t.ws
let delta_bytes_sent t = t.delta_payload_bytes
let snapshot_bytes_sent t = t.snap_payload_bytes
let epochs_run t = t.epochs_run
let edits_merged t = t.edits_merged
let session_count t = Hashtbl.length t.sessions
let idle t = t.epoch_buffer = []
let replayed_replies t = t.replays
let rejected_frames t = t.rejects
let nacks_sent t = t.nacks
let recorder t = t.recorder
let shard_id t = t.shard_id

let doc_stats t =
  Hashtbl.fold (fun doc d acc -> (doc, d) :: acc) t.docs []
  |> List.sort (fun (da, a) (db, b) ->
         match compare b.d_transforms a.d_transforms with
         | 0 -> ( match compare b.d_ops a.d_ops with 0 -> compare da db | c -> c)
         | c -> c)

(* The worst catch-up debt any session carries: revisions at the head that
   the session has not been shipped yet, summed across documents.  What
   [sm-shard stats] reports as cursor lag. *)
let max_cursor_lag t =
  let head = Registry.revisions t.reg t.ws in
  Hashtbl.fold
    (fun _ (s : session) acc ->
      let lag =
        List.fold_left
          (fun a (id, rev) ->
            a + max 0 (rev - Option.value ~default:0 (Hashtbl.find_opt s.acked id)))
          0 head
      in
      max acc lag)
    t.sessions 0

(* --- replies ---------------------------------------------------------------- *)

let snapshot_payload t =
  let revs = Registry.revisions t.reg t.ws in
  let states = Registry.encode_snapshot t.reg t.ws in
  Proto.Snap
    (List.map
       (fun (id, bytes) ->
         (id, (try List.assoc id revs with Not_found -> 0), bytes))
       states)

(* Fresh payload bringing [s] from what we last shipped it to the current
   head; advances the shipped-revision watermark. *)
let fresh_payload t (s : session) =
  let payload =
    match t.mode with
    | `Snapshot -> snapshot_payload t
    | `Delta ->
      Proto.Delta
        (Registry.encode_delta ~memo:t.delta_memo t.reg t.ws ~since:(fun id ->
             Option.value ~default:0 (Hashtbl.find_opt s.acked id)))
  in
  List.iter (fun (id, rev) -> Hashtbl.replace s.acked id rev) (Registry.revisions t.reg t.ws);
  payload

let account_payload t payload =
  let bytes = Proto.payload_bytes payload in
  (match payload with
  | Proto.Delta _ ->
    t.delta_payload_bytes <- t.delta_payload_bytes + bytes;
    Obs.Metrics.add m_delta_bytes bytes
  | Proto.Snap _ ->
    t.snap_payload_bytes <- t.snap_payload_bytes + bytes;
    Obs.Metrics.add m_snapshot_bytes bytes);
  if Obs.on Obs.Info then begin
    (* The counterfactual: what this sync would have cost as a snapshot. *)
    let snapshot_bytes =
      match payload with
      | Proto.Snap _ -> bytes
      | Proto.Delta _ -> Proto.payload_bytes (snapshot_payload t)
    in
    Obs.emit
      (E.make ~task:t.obs_task ~task_id:t.obs_tid
         ~args:
           [ ( "mode"
             , E.S (match payload with Proto.Delta _ -> "delta" | Proto.Snap _ -> "snapshot") )
           ; ("bytes", E.I bytes)
           ; ("snapshot_bytes", E.I snapshot_bytes)
           ]
         E.Delta_sync)
  end

(* One Serve record per handled request: always into the flight ring, and —
   when the request carried a context — also onto the request tree, as a
   span child of the client's request span.  Returns the serve span for the
   epoch merge to parent on. *)
let serve t ~op ~req ~session tctx =
  let args = [ ("op", E.S op); ("req", E.I req); ("session", E.I session) ] in
  fr t E.Serve args;
  match tctx with
  | None -> None
  | Some c ->
    let sctx = Obs.Trace_ctx.child c (Printf.sprintf "%s/%s/s%d/r%d" t.obs_task op session req) in
    if Obs.on Obs.Info then
      Obs.emit
        (E.make ~task:t.obs_task ~task_id:t.obs_tid
           ~args:(args @ Obs.Trace_ctx.args sctx)
           E.Serve);
    Some sctx

let reply ?ctx (s : session) ~req msg =
  let frame = Proto.seal_s2c ?ctx msg in
  s.last_req <- req;
  s.cached <- Some frame;
  Netpipe.send s.sconn frame

let replay t (s : session) =
  t.replays <- t.replays + 1;
  Obs.Metrics.incr m_replays;
  fr t E.Note [ ("name", E.S "replay"); ("session", E.I s.sid); ("req", E.I s.last_req) ];
  match s.cached with Some frame -> Netpipe.send s.sconn frame | None -> ()

(* A Nack is a service hazard (protocol violation or lost session): besides
   refusing, snapshot every flight ring so the post-mortem ships with the
   failure. *)
let nack t conn ~session ~req ~reason =
  t.nacks <- t.nacks + 1;
  Obs.Metrics.incr m_nacks;
  fr t E.Validation_fail
    [ ("name", E.S "nack"); ("session", E.I session); ("req", E.I req); ("reason", E.S reason) ];
  Obs.Flight_recorder.trigger
    ~reason:(Printf.sprintf "%s: nack session %d req %d: %s" t.obs_task session req reason);
  Netpipe.send conn (Proto.seal_s2c (Proto.Nack { session; req; reason }))

(* --- receive path ----------------------------------------------------------- *)

let handle_hello t conn ~client ~tctx =
  let s =
    { sid = t.next_sid
    ; client
    ; sconn = conn
    ; acked = Hashtbl.create 8
    ; last_req = -1
    ; cached = None
    ; last_eid = -1
    }
  in
  t.next_sid <- t.next_sid + 1;
  Hashtbl.replace t.sessions s.sid s;
  let sctx = serve t ~op:"hello" ~req:0 ~session:s.sid tctx in
  let payload = fresh_payload t s in
  account_payload t payload;
  reply ?ctx:sctx s ~req:0 (Proto.Welcome { session = s.sid; payload })

let handle_resume t conn ~session ~req ~cursors ~tctx =
  match Hashtbl.find_opt t.sessions session with
  | None -> nack t conn ~session ~req ~reason:"unknown session"
  | Some s ->
    s.sconn <- conn;
    if req <= s.last_req then begin
      (* Duplicate (dup/reorder fault): replay the identical welcome. *)
      replay t s
    end
    else begin
      (* A resume means the client lost its connection — chaos at work.
         Snapshot the rings so the run's post-mortem covers the window the
         disconnect interrupted, then re-ship from the client's cursors. *)
      let sctx = serve t ~op:"resume" ~req ~session tctx in
      Obs.Flight_recorder.trigger
        ~reason:(Printf.sprintf "%s: resume session %d req %d" t.obs_task session req);
      (* The client's cursors are authoritative: acks it never saw must be
         re-shipped, so roll the watermark back to what it actually holds. *)
      Hashtbl.reset s.acked;
      List.iter (fun (id, rev) -> Hashtbl.replace s.acked id rev) cursors;
      let payload = fresh_payload t s in
      account_payload t payload;
      reply ?ctx:sctx s ~req (Proto.Welcome { session = s.sid; payload })
    end

let handle_edit t conn ~session ~req ~eid ~base ~ops ~fmt ~tctx =
  match Hashtbl.find_opt t.sessions session with
  | None -> nack t conn ~session ~req ~reason:"unknown session"
  | Some s ->
    s.sconn <- conn;
    if req <= s.last_req then replay t s
    else if
      List.exists (fun (s', req', _, _, _, _, _) -> s'.sid = s.sid && req' = req) t.epoch_buffer
    then () (* retransmit of an edit already waiting for the epoch *)
    else begin
      let sctx = serve t ~op:"edit" ~req ~session tctx in
      t.epoch_buffer <- (s, req, eid, base, ops, fmt, sctx) :: t.epoch_buffer
    end

let handle_poll t conn ~session ~req ~tctx =
  match Hashtbl.find_opt t.sessions session with
  | None -> nack t conn ~session ~req ~reason:"unknown session"
  | Some s ->
    s.sconn <- conn;
    if req <= s.last_req then replay t s
    else begin
      (* Answered immediately (not at the epoch): a poll carries no ops, it
         just reads the head — it is how an idle client hears about epochs
         it sent nothing into. *)
      let sctx = serve t ~op:"poll" ~req ~session tctx in
      let payload = fresh_payload t s in
      account_payload t payload;
      reply ?ctx:sctx s ~req (Proto.Ack { session = s.sid; req; payload })
    end

let handle_bye t ~session =
  fr t E.Serve [ ("op", E.S "bye"); ("session", E.I session) ];
  Hashtbl.remove t.sessions session

let reject t reason =
  t.rejects <- t.rejects + 1;
  Obs.Metrics.incr m_rejected;
  fr t E.Note [ ("name", E.S "rejected_frame"); ("reason", E.S reason) ]

let handle_frame t conn frame =
  match Proto.open_c2s_full frame with
  | tctx, _, Proto.Hello { client } -> handle_hello t conn ~client ~tctx
  | tctx, _, Proto.Resume { session; req; cursors } ->
    handle_resume t conn ~session ~req ~cursors ~tctx
  | tctx, fmt, Proto.Edit { session; req; eid; base; ops } ->
    handle_edit t conn ~session ~req ~eid ~base ~ops ~fmt ~tctx
  | tctx, _, Proto.Poll { session; req } -> handle_poll t conn ~session ~req ~tctx
  | _, _, Proto.Bye { session } -> handle_bye t ~session
  | exception (Sm_dist.Wire.Frame.Bad_frame msg | Sm_util.Codec.Decode_error msg) -> reject t msg
  | exception Sm_dist.Wire.Frame.Unsupported_version { got; speaks } ->
    reject t (Printf.sprintf "frame version %d (this build speaks %d)" got speaks)

(* --- epoch flush ------------------------------------------------------------ *)

let flush_epoch t =
  match t.epoch_buffer with
  | [] -> ()
  | buffered ->
    (* One batched transform pass: stable session-creation order, so the
       epoch's composition is insensitive to arrival interleavings within
       the window.  Entries whose request number a later Resume already
       superseded are dropped whole — the client discarded that request and
       will re-issue the batch (same eid) if it still matters. *)
    let edits =
      List.stable_sort (fun (a, _, _, _, _, _, _) (b, _, _, _, _, _, _) -> compare a.sid b.sid)
        (List.rev buffered)
      |> List.filter (fun ((s : session), req, _, _, _, _, _) -> req > s.last_req)
    in
    t.epoch_buffer <- [];
    (* The memo keys embed the revision window, so entries never go stale;
       clearing per epoch just bounds the table to one epoch's windows. *)
    Hashtbl.reset t.delta_memo;
    let n = List.length edits in
    fr t E.Epoch_begin [ ("edits", E.I n) ];
    if Obs.on Obs.Debug then
      Obs.emit (E.make ~task:t.obs_task ~task_id:t.obs_tid ~args:[ ("edits", E.I n) ] E.Epoch_begin);
    let total_ops = ref 0 in
    (* Merge pass first, replies second: every participant's ack reflects
       the WHOLE epoch, not the prefix merged before its own batch. *)
    List.iter
      (fun ((s : session), _req, eid, base, ops, fmt, sctx) ->
        if eid > s.last_eid then begin
          (* A batch this session has not merged yet (re-issues after a
             resume carry the old eid and are skipped: exactly-once).
             Merged entry-by-entry so the conflict profiler can read the OT
             counter deltas per document. *)
          let batch_ops = ref 0 in
          Obs.Metrics.time t.h_merge (fun () ->
              List.iter
                (fun ((id, _) as entry) ->
                  let tr0 = Obs.Metrics.value m_ot_transforms in
                  let ci0 = Obs.Metrics.value m_ot_compact_in in
                  let co0 = Obs.Metrics.value m_ot_compact_out in
                  let merged =
                    Registry.merge_edit ~format:fmt t.reg ~into:t.ws
                      ~base_rev:(fun id -> Option.value ~default:0 (List.assoc_opt id base))
                      [ entry ]
                  in
                  batch_ops := !batch_ops + merged;
                  let transforms = Obs.Metrics.value m_ot_transforms - tr0 in
                  let compact_in = Obs.Metrics.value m_ot_compact_in - ci0 in
                  let compact_out = Obs.Metrics.value m_ot_compact_out - co0 in
                  let doc = Registry.wire_name t.reg id in
                  let d =
                    match Hashtbl.find_opt t.docs doc with
                    | Some d -> d
                    | None ->
                      let d =
                        { d_merges = 0; d_ops = 0; d_transforms = 0; d_compact_in = 0; d_compact_out = 0 }
                      in
                      Hashtbl.replace t.docs doc d;
                      d
                  in
                  d.d_merges <- d.d_merges + 1;
                  d.d_ops <- d.d_ops + merged;
                  d.d_transforms <- d.d_transforms + transforms;
                  d.d_compact_in <- d.d_compact_in + compact_in;
                  d.d_compact_out <- d.d_compact_out + compact_out;
                  if Obs.on Obs.Debug then
                    Obs.emit
                      (E.make ~task:t.obs_task ~task_id:t.obs_tid
                         ~args:
                           [ ("doc", E.S doc)
                           ; ("ops", E.I merged)
                           ; ("transforms", E.I transforms)
                           ; ("compact_in", E.I compact_in)
                           ; ("compact_out", E.I compact_out)
                           ]
                         E.Doc_merge))
                ops);
          (* The merge joins the request tree as a child of the batch's
             Serve span: client request -> shard serve -> epoch merge. *)
          (match sctx with
          | Some c when Obs.on Obs.Info ->
            (* Span labels must be unique within the trace (ids are
               label-derived): eids restart per session, so the label
               carries the session id too. *)
            let mctx =
              Obs.Trace_ctx.child c (Printf.sprintf "%s/merge/s%d/e%d" t.obs_task s.sid eid)
            in
            Obs.emit
              (E.make ~task:t.obs_task ~task_id:t.obs_tid
                 ~args:
                   ([ ("ops", E.I !batch_ops); ("eid", E.I eid) ] @ Obs.Trace_ctx.args mctx)
                 E.Epoch_merge)
          | _ -> ());
          s.last_eid <- eid;
          t.edits_merged <- t.edits_merged + 1;
          total_ops := !total_ops + List.length ops
        end)
      edits;
    List.iter
      (fun ((s : session), req, _, _, _, _, sctx) ->
        let payload = fresh_payload t s in
        account_payload t payload;
        reply ?ctx:sctx s ~req (Proto.Ack { session = s.sid; req; payload }))
      edits;
    t.epochs_run <- t.epochs_run + 1;
    Obs.Metrics.incr m_epochs;
    Obs.Metrics.add m_epoch_edits n;
    Obs.Metrics.observe h_epoch_size (float_of_int n);
    fr t E.Epoch_end [ ("edits", E.I n); ("ops", E.I !total_ops) ];
    if Obs.on Obs.Debug then
      Obs.emit
        (E.make ~task:t.obs_task ~task_id:t.obs_tid
           ~args:[ ("edits", E.I n); ("ops", E.I !total_ops) ]
           E.Epoch_end)

(* --- tick ------------------------------------------------------------------- *)

let tick t =
  let rec accept_all () =
    match Netpipe.try_accept t.listener with
    | Some conn ->
      t.conns <- t.conns @ [ conn ];
      accept_all ()
    | None -> ()
  in
  accept_all ();
  List.iter
    (fun conn ->
      let rec drain () =
        match Netpipe.try_recv conn with
        | Some frame ->
          handle_frame t conn frame;
          drain ()
        | None -> ()
      in
      drain ())
    t.conns;
  t.tick_count <- t.tick_count + 1;
  if t.tick_count mod t.epoch_ticks = 0 then flush_epoch t
