(** Wire-ready mergeable types: the {!Sm_mergeable} structures paired with
    codecs, for registration with {!Registry.value}.

    Functors take the element's OT interface plus its codec; [Counter] is
    ready-made since its state is a bare int. *)

module type CODABLE_ELT = sig
  include Sm_ot.Op_sig.ELT

  val codec : t Sm_util.Codec.t
end

module type CODABLE_ORDERED_ELT = sig
  include Sm_ot.Op_sig.ORDERED_ELT

  val codec : t Sm_util.Codec.t
end

module Counter : Registry.CODABLE_DATA with type state = int and type op = Sm_ot.Op_counter.op

module Text :
  Registry.CODABLE_DATA with type state = Sm_ot.Op_text.state and type op = Sm_ot.Op_text.op
(** Text snapshots ship flattened bytes (representation-independent); the
    {!Registry.CODABLE_DATA.journal_codec} is the packed binary form —
    delta-encoded positions, varint-framed — that version-3 frames carry. *)

module Make_list (Elt : CODABLE_ELT) : sig
  module Op : module type of Sm_ot.Op_list.Make (Elt)

  include Registry.CODABLE_DATA with type state = Elt.t list and type op = Op.op
end

module Make_queue (Elt : CODABLE_ELT) : sig
  module Op : module type of Sm_ot.Op_queue.Make (Elt)

  include Registry.CODABLE_DATA with type state = Elt.t list and type op = Op.op
end

module Make_tree (Label : CODABLE_ELT) : sig
  module Op : module type of Sm_ot.Op_tree.Make (Label)

  include Registry.CODABLE_DATA with type state = Op.node list and type op = Op.op

  val node_codec : Op.node Sm_util.Codec.t
  (** Preorder (label, child-count, children) encoding — exposed for shard
      payloads that ship single subtrees. *)
end

module Make_register (V : CODABLE_ELT) : sig
  module Op : module type of Sm_ot.Op_register.Make (V)

  include Registry.CODABLE_DATA with type state = V.t and type op = Op.op
end

module Make_map (Key : CODABLE_ORDERED_ELT) (Value : CODABLE_ELT) : sig
  module Op : module type of Sm_ot.Op_map.Make (Key) (Value)

  include Registry.CODABLE_DATA with type state = Value.t Op.Key_map.t and type op = Op.op
end

(** Ready-made codable elements. *)
module Int_elt : CODABLE_ORDERED_ELT with type t = int

module String_elt : CODABLE_ORDERED_ELT with type t = string
