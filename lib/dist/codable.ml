module C = Sm_util.Codec

module type CODABLE_ELT = sig
  include Sm_ot.Op_sig.ELT

  val codec : t C.t
end

module type CODABLE_ORDERED_ELT = sig
  include Sm_ot.Op_sig.ORDERED_ELT

  val codec : t C.t
end

module Int_elt = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
  let codec = C.int
end

module String_elt = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp ppf s = Format.fprintf ppf "%S" s
  let codec = C.string
end

module Counter = struct
  include Sm_ot.Op_counter

  let type_name = "counter"
  let state_codec = C.int
  let op_codec = C.map (fun (Sm_ot.Op_counter.Add n) -> n) (fun n -> Sm_ot.Op_counter.Add n) C.int

  (* Counter journals are already minimal: the packed form is the classic
     list form, so frame-version negotiation is a no-op for this type. *)
  let journal_codec = C.list op_codec
end

module Text = struct
  include Sm_ot.Op_text

  let type_name = "text"

  (* Snapshots ship the flattened bytes, so the wire image is independent of
     the sender's representation and the receiver rebuilds in its own. *)
  let state_codec = C.map Sm_ot.Op_text.to_string Sm_ot.Op_text.of_string C.string

  let op_codec =
    C.tagged
      ~tag:(function Sm_ot.Op_text.Ins _ -> 0 | Sm_ot.Op_text.Del _ -> 1)
      ~write:(fun buf -> function
        | Sm_ot.Op_text.Ins (p, s) ->
          C.W.int buf p;
          C.W.string buf s
        | Sm_ot.Op_text.Del (p, l) ->
          C.W.int buf p;
          C.W.int buf l)
      ~read:(fun tag r ->
        match tag with
        | 0 ->
          let p = C.R.int r in
          let s = C.R.string r in
          Sm_ot.Op_text.Ins (p, s)
        | 1 ->
          let p = C.R.int r in
          let l = C.R.int r in
          Sm_ot.Op_text.Del (p, l)
        | t -> raise (C.Decode_error (Printf.sprintf "Text op: unknown tag %d" t)))

  (* The packed journal, the payload of version-3 frames: a uvarint count,
     then per op one header [zigzag(pos - prev_pos) * 2 + kind] (kind 0 =
     Ins, 1 = Del) followed by the insert bytes (uvarint length-prefixed)
     or the uvarint delete length.  Positions are delta-encoded against the
     previous op's position — journals hammer on nearby offsets, so most
     headers are one byte where the classic tagged form spends four or
     more. *)
  let journal_codec =
    C.custom
      ~write:(fun buf ops ->
        C.W.value C.uvarint buf (List.length ops);
        let prev = ref 0 in
        List.iter
          (fun op ->
            let pos, kind =
              match op with Sm_ot.Op_text.Ins (p, _) -> (p, 0) | Sm_ot.Op_text.Del (p, _) -> (p, 1)
            in
            let d = pos - !prev in
            let zz = (d lsl 1) lxor (d asr (Sys.int_size - 1)) in
            C.W.value C.uvarint buf ((zz lsl 1) lor kind);
            (match op with
            | Sm_ot.Op_text.Ins (_, s) -> C.W.string buf s
            | Sm_ot.Op_text.Del (_, l) -> C.W.value C.uvarint buf l);
            prev := pos)
          ops)
      ~read:(fun r ->
        let n = C.R.value C.uvarint r in
        let prev = ref 0 in
        List.init n (fun _ ->
            let h = C.R.value C.uvarint r in
            let zz = h lsr 1 in
            let d = (zz lsr 1) lxor (-(zz land 1)) in
            let pos = !prev + d in
            if pos < 0 then raise (C.Decode_error "Text journal: negative position");
            prev := pos;
            if h land 1 = 0 then Sm_ot.Op_text.Ins (pos, C.R.string r)
            else begin
              let l = C.R.value C.uvarint r in
              if l <= 0 then raise (C.Decode_error "Text journal: non-positive delete length");
              Sm_ot.Op_text.Del (pos, l)
            end))
end

module Make_list (Elt : CODABLE_ELT) = struct
  module Op = Sm_ot.Op_list.Make (Elt)
  include Op

  let type_name = "list"
  let state_codec = C.list Elt.codec

  let op_codec =
    C.tagged
      ~tag:(function Op.Ins _ -> 0 | Op.Del _ -> 1 | Op.Set _ -> 2)
      ~write:(fun buf -> function
        | Op.Ins (i, x) ->
          C.W.int buf i;
          C.W.value Elt.codec buf x
        | Op.Del i -> C.W.int buf i
        | Op.Set (i, x) ->
          C.W.int buf i;
          C.W.value Elt.codec buf x)
      ~read:(fun tag r ->
        match tag with
        | 0 ->
          let i = C.R.int r in
          let x = C.R.value Elt.codec r in
          Op.Ins (i, x)
        | 1 -> Op.Del (C.R.int r)
        | 2 ->
          let i = C.R.int r in
          let x = C.R.value Elt.codec r in
          Op.Set (i, x)
        | t -> raise (C.Decode_error (Printf.sprintf "List op: unknown tag %d" t)))

  let journal_codec = C.list op_codec
end

module Make_queue (Elt : CODABLE_ELT) = struct
  module Op = Sm_ot.Op_queue.Make (Elt)
  include Op

  let type_name = "queue"
  let state_codec = C.list Elt.codec

  let op_codec =
    C.tagged
      ~tag:(function Op.Push _ -> 0 | Op.Pop -> 1)
      ~write:(fun buf -> function
        | Op.Push x -> C.W.value Elt.codec buf x
        | Op.Pop -> ())
      ~read:(fun tag r ->
        match tag with
        | 0 -> Op.Push (C.R.value Elt.codec r)
        | 1 -> Op.Pop
        | t -> raise (C.Decode_error (Printf.sprintf "Queue op: unknown tag %d" t)))

  let journal_codec = C.list op_codec
end

module Make_tree (Label : CODABLE_ELT) = struct
  module Op = Sm_ot.Op_tree.Make (Label)
  include Op

  let type_name = "tree"

  let node_codec =
    (* Recursive structure: encode a node as its label, child count, then the
       children — a preorder walk.  [tagged] gives us a writer/reader pair to
       recurse with; the tag itself is constant. *)
    C.tagged
      ~tag:(fun (_ : Op.node) -> 0)
      ~write:(fun buf n ->
        let rec write_node n =
          C.W.value Label.codec buf n.Op.label;
          C.W.int buf (List.length n.Op.children);
          List.iter write_node n.Op.children
        in
        write_node n)
      ~read:(fun tag r ->
        if tag <> 0 then raise (C.Decode_error (Printf.sprintf "Tree node: unknown tag %d" tag));
        let rec read_node () =
          let label = C.R.value Label.codec r in
          let n = C.R.int r in
          if n < 0 then raise (C.Decode_error "Tree node: negative child count");
          let children = List.init n (fun _ -> read_node ()) in
          { Op.label; children }
        in
        read_node ())

  let state_codec = C.list node_codec
  let path_codec = C.list C.int

  let op_codec =
    C.tagged
      ~tag:(function Op.Insert _ -> 0 | Op.Delete _ -> 1 | Op.Relabel _ -> 2)
      ~write:(fun buf -> function
        | Op.Insert (p, n) ->
          C.W.value path_codec buf p;
          C.W.value node_codec buf n
        | Op.Delete p -> C.W.value path_codec buf p
        | Op.Relabel (p, l) ->
          C.W.value path_codec buf p;
          C.W.value Label.codec buf l)
      ~read:(fun tag r ->
        match tag with
        | 0 ->
          let p = C.R.value path_codec r in
          let n = C.R.value node_codec r in
          Op.Insert (p, n)
        | 1 -> Op.Delete (C.R.value path_codec r)
        | 2 ->
          let p = C.R.value path_codec r in
          let l = C.R.value Label.codec r in
          Op.Relabel (p, l)
        | t -> raise (C.Decode_error (Printf.sprintf "Tree op: unknown tag %d" t)))

  let journal_codec = C.list op_codec
end

module Make_register (V : CODABLE_ELT) = struct
  module Op = Sm_ot.Op_register.Make (V)
  include Op

  let type_name = "register"
  let state_codec = V.codec
  let op_codec = C.map (fun (Op.Assign v) -> v) (fun v -> Op.Assign v) V.codec
  let journal_codec = C.list op_codec
end

module Make_map (Key : CODABLE_ORDERED_ELT) (Value : CODABLE_ELT) = struct
  module Op = Sm_ot.Op_map.Make (Key) (Value)
  include Op

  let type_name = "map"

  let state_codec =
    C.map Op.Key_map.bindings
      (fun bindings -> List.fold_left (fun m (k, v) -> Op.Key_map.add k v m) Op.Key_map.empty bindings)
      (C.list (C.pair Key.codec Value.codec))

  let op_codec =
    C.tagged
      ~tag:(function Op.Put _ -> 0 | Op.Remove _ -> 1)
      ~write:(fun buf -> function
        | Op.Put (k, v) ->
          C.W.value Key.codec buf k;
          C.W.value Value.codec buf v
        | Op.Remove k -> C.W.value Key.codec buf k)
      ~read:(fun tag r ->
        match tag with
        | 0 ->
          let k = C.R.value Key.codec r in
          let v = C.R.value Value.codec r in
          Op.Put (k, v)
        | 1 -> Op.Remove (C.R.value Key.codec r)
        | t -> raise (C.Decode_error (Printf.sprintf "Map op: unknown tag %d" t)))

  let journal_codec = C.list op_codec
end
