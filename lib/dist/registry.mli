(** The shared vocabulary of a distributed Spawn/Merge system: which
    mergeable values exist and which task bodies can be spawned remotely.

    The paper's Section VI names "apply the concept of Spawn and Merge to
    distributed computing by using MPI" as future work; this library builds
    that system over simulated ranks (one domain per node, byte-only
    channels).  Like MPI programs, both sides run the same code: a registry
    is constructed identically on the coordinator and on every node, so a
    value or task is identified on the wire by its registration index alone.
    Closures never cross the wire — only registered task {e names}, string
    arguments, encoded states and encoded operation journals.

    Registration order matters (it defines wire ids): build the registry in
    one place, at module level. *)

type t

type ('s, 'o) rkey
(** A registered mergeable value: a {!Sm_mergeable.Workspace.key} plus
    codecs and a wire id. *)

(** A mergeable type that can cross the wire. *)
module type CODABLE_DATA = sig
  include Sm_mergeable.Data.S

  val state_codec : state Sm_util.Codec.t
  val op_codec : op Sm_util.Codec.t

  val journal_codec : op list Sm_util.Codec.t
  (** The type's packed whole-journal encoding, carried by version-3
      frames.  Types with no denser form than a tagged op list use
      [Sm_util.Codec.list op_codec], making packed and classic wire images
      coincide; {!Codable.Text} ships a varint/delta form that does not. *)
end

val create : unit -> t

val value :
  t ->
  name:string ->
  (module CODABLE_DATA with type state = 's and type op = 'o) ->
  ('s, 'o) rkey
(** Register a mergeable value.  Its wire id is the registration index. *)

val workspace_key : ('s, 'o) rkey -> ('s, 'o) Sm_mergeable.Workspace.key
(** The underlying workspace key — use it to initialize the coordinator's
    workspace and to read results. *)

val wire_name : t -> int -> string
(** The registration name behind a wire id — what the conflict profiler
    prints for a document.
    @raise Invalid_argument on an unknown id. *)

(** {1 Task bodies (run on nodes)} *)

type ctx
(** What a remote task sees: its private workspace, its rank, its spawn
    argument, and [sync]. *)

val read : ctx -> ('s, 'o) rkey -> 's

val update : ctx -> ('s, 'o) rkey -> 'o -> unit

val sync : ctx -> [ `Granted | `Refused ]
(** Ship the journal to the coordinator, block for the merge, continue on a
    fresh snapshot (either way). *)

val rank : ctx -> int
(** The node this task runs on. *)

val argument : ctx -> string

val task : t -> name:string -> (ctx -> unit) -> string
(** Register a task body under [name]; returns [name] for symmetry.
    @raise Invalid_argument on duplicate names. *)

(** {1 Internal plumbing (used by {!Node} and {!Coordinator})} *)

val encode_snapshot : t -> Sm_mergeable.Workspace.t -> (int * string) list
(** Encoded state of every registered-and-bound value, by wire id. *)

val build_workspace : t -> (int * string) list -> Sm_mergeable.Workspace.t
(** Reconstruct a workspace from an encoded snapshot.
    @raise Sm_util.Codec.Decode_error / [Invalid_argument] on unknown ids. *)

val encode_journal : ?format:Wire.journal_format -> t -> Sm_mergeable.Workspace.t -> (int * string) list
(** Encoded operation journal of every bound value with pending operations.
    [format] (default [Packed]) selects the whole-journal codec; senders
    must seal the result in a frame whose version implies the same format
    (the default [Frame.seal] / [Packed] pairing is always consistent). *)

val merge_journal :
  ?format:Wire.journal_format ->
  t ->
  into:Sm_mergeable.Workspace.t ->
  base:Sm_mergeable.Workspace.Versions.t ->
  (int * string) list ->
  unit
(** Decode a remote journal and OT-merge it into [into] against [base] —
    the distributed counterpart of {!Sm_mergeable.Workspace.merge_child}.
    [format] (default [Packed]) must be the journal format implied by the
    frame the entries arrived in ({!Wire.journal_format_of_version}). *)

(** {1 Delta sync (used by {!Sm_shard})}

    Shard sync addresses values by per-wire-id integer revisions (a value's
    revision is its {!Sm_mergeable.Workspace.version_of}), not by the
    workspace-keyed {!Sm_mergeable.Workspace.Versions.t} the coordinator
    protocol uses — clients only ever see wire ids. *)

val revisions : t -> Sm_mergeable.Workspace.t -> (int * int) list
(** [(wire_id, revision)] for every registered-and-bound value. *)

val encode_delta :
  ?memo:(int * int * int, string) Hashtbl.t ->
  ?format:Wire.journal_format ->
  t ->
  Sm_mergeable.Workspace.t ->
  since:(int -> int) ->
  (int * int * int * string) list
(** [(wire_id, from_rev, to_rev, ops_bytes)] for every bound value that has
    operations after [since wire_id]; the shipped ops are the {e compacted}
    journal suffix (apply-equivalent to the raw slice, usually shorter).
    [memo] caches encoded suffixes by [(wire_id, from_rev, to_rev)] — within
    one epoch a shard answers many sessions whose cursors sit at the same
    boundary, and the suffix only depends on the revision window, so the
    caller may share a table across replies and invalidate it when the
    workspace advances (keys embed [to_rev], so staleness is impossible —
    the table is cleared only to bound its size).  A shared [memo] table
    assumes a fixed [format] — the key does not embed it, and every
    in-tree caller encodes [Packed].
    @raise Invalid_argument when [since] predates a truncation point — the
    caller must fall back to a snapshot. *)

val apply_delta :
  ?format:Wire.journal_format ->
  t ->
  into:Sm_mergeable.Workspace.t ->
  cursor:(int -> int) ->
  (int * int * int * string) list ->
  unit
(** Replay delta entries onto a replica that has seen [cursor wire_id]
    revisions of each value.  Entries with [to_rev <= cursor] are duplicates
    and are skipped; an entry starting past the cursor is a protocol-level
    gap ([Invalid_argument]) — stop-and-wait sessions never produce one.
    The caller advances its cursors to each applied entry's [to_rev]. *)

val merge_edit :
  ?format:Wire.journal_format ->
  t ->
  into:Sm_mergeable.Workspace.t ->
  base_rev:(int -> int) ->
  (int * string) list ->
  int
(** OT-merge a client's pending operations, recorded against revision
    [base_rev wire_id] of each value, into the shard's authoritative
    workspace — {!merge_journal} with integer bases.  Returns the number of
    operations merged (summed across entries), which the shard's conflict
    profiler attributes per document by calling this entry-by-entry. *)

val find_task : t -> string -> ctx -> unit
(** @raise Not_found for unregistered task names. *)

val make_ctx :
  ws:Sm_mergeable.Workspace.t ref ->
  do_sync:(unit -> [ `Granted | `Refused ]) ->
  rank:int ->
  argument:string ->
  ctx
(** Used by {!Node} to run task bodies. *)
