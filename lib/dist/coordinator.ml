module C = Sm_util.Codec
module Ws = Sm_mergeable.Workspace
module Obs = Sm_obs
module E = Sm_obs.Event

let m_remote_spawns = Obs.Metrics.counter "dist.remote_spawns"
let m_remote_syncs = Obs.Metrics.counter "dist.remote_syncs"
let m_remote_refusals = Obs.Metrics.counter "dist.remote_refusals"
let m_buffered = Obs.Metrics.counter "dist.buffered_events"
let h_buffer_depth = Obs.Metrics.histogram "dist.buffer_depth"

let coord_task = "coordinator"
let coord_tid = Wire.obs_coordinator_tid

module Chaos = struct
  type t =
    { hold_prob : float
    ; max_hold : int
    ; rng : Sm_util.Det_rng.t
    ; mu : Mutex.t
    }

  let make ?(hold_prob = 0.25) ?(max_hold = 4) ~seed () =
    if hold_prob < 0. || hold_prob > 1. then
      invalid_arg "Coordinator.Chaos.make: hold_prob must be in [0, 1]";
    if max_hold < 1 then invalid_arg "Coordinator.Chaos.make: max_hold must be at least 1";
    { hold_prob; max_hold; rng = Sm_util.Det_rng.create ~seed; mu = Mutex.create () }

  let draw t =
    Mutex.lock t.mu;
    let r = Sm_util.Det_rng.float t.rng in
    let hold = 1 + Sm_util.Det_rng.int t.rng ~bound:t.max_hold in
    Mutex.unlock t.mu;
    (r, hold)
end

type cluster =
  { registry : Registry.t
  ; upstream : string Sm_util.Bqueue.t  (** what the coordinator reads *)
  ; node_inbox : string Sm_util.Bqueue.t  (** what nodes write; [== upstream] without chaos *)
  ; relay : Thread.t option
  ; nodes : Node.t array
  ; next_uid : int Atomic.t
  ; next_node : int Atomic.t
  }

exception Remote_failure of string

(* The chaos relay: pump [inner] into [out], randomly parking a task's
   messages for a few ticks.  Once a uid is held, its subsequent messages
   queue behind the held ones — per-task order is preserved, only cross-task
   interleaving changes, which is exactly the non-determinism the
   coordinator's per-task buffering must absorb. *)
let relay_loop (chaos : Chaos.t) ~inner ~out =
  let held : (int, string Queue.t * int ref) Hashtbl.t = Hashtbl.create 8 in
  let release uid =
    match Hashtbl.find_opt held uid with
    | None -> ()
    | Some (q, _) ->
      Queue.iter (Sm_util.Bqueue.push out) q;
      Hashtbl.remove held uid
  in
  let tick () =
    let ready =
      Hashtbl.fold
        (fun uid (_, left) acc ->
          decr left;
          if !left <= 0 then uid :: acc else acc)
        held []
    in
    List.iter release (List.sort compare ready)
  in
  let flush_all () =
    let uids = Hashtbl.fold (fun uid _ acc -> uid :: acc) held [] in
    List.iter release (List.sort compare uids)
  in
  let forward bytes =
    let uid = try Wire.uid_of_up (C.decode Wire.up_codec (Wire.open_control bytes)) with _ -> -1 in
    match Hashtbl.find_opt held uid with
    | Some (q, _) -> Queue.push bytes q
    | None ->
      let r, hold = Chaos.draw chaos in
      if uid >= 0 && r < chaos.hold_prob then begin
        let q = Queue.create () in
        Queue.push bytes q;
        Hashtbl.add held uid (q, ref hold)
      end
      else Sm_util.Bqueue.push out bytes
  in
  let rec loop () =
    match Sm_util.Bqueue.try_pop inner with
    | Some bytes ->
      forward bytes;
      tick ();
      loop ()
    | None ->
      if Hashtbl.length held > 0 then begin
        (* nothing inbound but messages are parked: tick them out on a
           timer so a quiet channel cannot deadlock the coordinator *)
        Thread.delay 0.0005;
        tick ();
        loop ()
      end
      else begin
        match Sm_util.Bqueue.pop inner with
        | Some bytes ->
          forward bytes;
          tick ();
          loop ()
        | None ->
          (* inner closed and drained: shutdown *)
          flush_all ();
          Sm_util.Bqueue.close out
      end
  in
  loop ()

let cluster ?(nodes = 2) ?chaos registry =
  if nodes < 1 then invalid_arg "Coordinator.cluster: need at least one node";
  let upstream = Sm_util.Bqueue.create () in
  let node_inbox, relay =
    match chaos with
    | None -> (upstream, None)
    | Some ch ->
      let inner = Sm_util.Bqueue.create () in
      (inner, Some (Thread.create (fun () -> relay_loop ch ~inner ~out:upstream) ()))
  in
  { registry
  ; upstream
  ; node_inbox
  ; relay
  ; nodes = Array.init nodes (fun rank -> Node.start ~rank ~registry ~upstream:node_inbox)
  ; next_uid = Atomic.make 0
  ; next_node = Atomic.make 0
  }

let node_count cluster = Array.length cluster.nodes

let send_down ?ctx cluster rank msg =
  Sm_util.Bqueue.push
    (Node.downstream cluster.nodes.(rank))
    (Wire.seal_control ?ctx (C.encode Wire.down_codec msg))

let shutdown cluster =
  Array.iter (fun node -> send_down cluster (Node.rank node) Wire.Stop) cluster.nodes;
  Array.iter Node.join cluster.nodes;
  match cluster.relay with
  | None -> Sm_util.Bqueue.close cluster.upstream
  | Some t ->
    (* the relay flushes held messages and closes [upstream] itself *)
    Sm_util.Bqueue.close cluster.node_inbox;
    Thread.join t

type child_state =
  | Live
  | Retired_ok
  | Retired_failed of string

type rtask =
  { uid : int
  ; node : int
  ; mutable base : Ws.Versions.t
  ; mutable cstate : child_state
  ; mutable aborted : bool
  }

type ctx =
  { cluster : cluster
  ; ws : Ws.t
  ; mutable children : rtask list (* creation order, retired included *)
  ; buffered : (Wire.journal_format * Wire.up) Queue.t
    (* events read from upstream in arrival order, each tagged with the
       journal format its frame version implied *)
  }

let workspace ctx = ctx.ws
let live ctx = List.filter (fun c -> c.cstate = Live) ctx.children
let live_tasks ctx = List.length (live ctx)
let rank_of c = c.node
let failure c = match c.cstate with Retired_failed r -> Some r | Live | Retired_ok -> None

let spawn ctx ?node task ~argument =
  let cluster = ctx.cluster in
  let node =
    match node with
    | Some n ->
      if n < 0 || n >= Array.length cluster.nodes then
        invalid_arg (Printf.sprintf "Coordinator.spawn: no node %d" n);
      n
    | None -> Atomic.fetch_and_add cluster.next_node 1 mod Array.length cluster.nodes
  in
  let uid = Atomic.fetch_and_add cluster.next_uid 1 in
  let child = { uid; node; base = Ws.snapshot ctx.ws; cstate = Live; aborted = false } in
  ctx.children <- ctx.children @ [ child ];
  Obs.Metrics.incr m_remote_spawns;
  (* The spawn's trace context crosses the wire with the Spawn frame, so
     the node's Task_start lands on the same request tree as this Spawn
     event — [sm-trace requests] stitches them by these ids.  Minted only
     when tracing; either way the frame carries the current version, which
     tells the node this coordinator speaks packed journals. *)
  let tctx =
    if Obs.on Obs.Info then Some (Obs.Trace_ctx.root (Wire.obs_task_name ~rank:node ~uid))
    else None
  in
  if Obs.on Obs.Info then
    Obs.emit
      (E.make ~task:coord_task ~task_id:coord_tid
         ~args:
           ([ ("child", E.S (Wire.obs_task_name ~rank:node ~uid))
            ; ("child_id", E.I (Wire.obs_task_tid uid))
            ; ("rank", E.I node)
            ; ("task", E.S task)
            ]
           @ match tctx with Some c -> Obs.Trace_ctx.args c | None -> [])
         E.Spawn);
  send_down ?ctx:tctx cluster node
    (Wire.Spawn { uid; task; argument; snapshot = Registry.encode_snapshot cluster.registry ctx.ws });
  child

(* Decode an upstream frame, remembering which journal format its version
   implied — a version-1/2 node ships classic journals and its messages
   must be merged with the classic codec. *)
let decode_up bytes =
  match
    let fmt, payload = Wire.open_control_v bytes in
    (fmt, C.decode Wire.up_codec payload)
  with
  | up -> up
  | exception C.Decode_error msg -> raise (Remote_failure ("corrupt upstream message: " ^ msg))
  | exception Wire.Frame.Bad_frame msg -> raise (Remote_failure ("rejected frame: " ^ msg))
  | exception Wire.Frame.Unsupported_version { got; speaks } ->
    raise
      (Remote_failure
         (Printf.sprintf "rejected frame: peer speaks frame version %d, this build %d" got speaks))

(* Pull upstream until an event for [uid] is available; buffer strangers in
   arrival order. *)
let next_event_for ctx uid =
  let rec from_buffer pending =
    match Queue.take_opt ctx.buffered with
    | Some (_, ev) as item when Wire.uid_of_up ev = uid ->
      Queue.transfer ctx.buffered pending;
      Queue.transfer pending ctx.buffered;
      item
    | Some item ->
      Queue.add item pending;
      from_buffer pending
    | None ->
      Queue.transfer pending ctx.buffered;
      None
  in
  match from_buffer (Queue.create ()) with
  | Some ev -> ev
  | None ->
    let rec pull () =
      match Sm_util.Bqueue.pop ctx.cluster.upstream with
      | None -> raise (Remote_failure "cluster shut down while merging")
      | Some bytes ->
        let (_, ev) as item = decode_up bytes in
        if Wire.uid_of_up ev = uid then item
        else begin
          (* Out-of-order upstream event: journal the buffering so merge
             skew between ranks is visible (depth spikes = one slow rank). *)
          Queue.add item ctx.buffered;
          Obs.Metrics.incr m_buffered;
          Obs.Metrics.observe h_buffer_depth (float_of_int (Queue.length ctx.buffered));
          Obs.note ~task:coord_task ~task_id:coord_tid "coord.buffer"
            ~args:
              [ ("uid", E.I (Wire.uid_of_up ev)); ("depth", E.I (Queue.length ctx.buffered)) ];
          pull ()
        end
    in
    pull ()

let next_event_any ctx =
  match Queue.take_opt ctx.buffered with
  | Some item -> item
  | None -> (
    match Sm_util.Bqueue.pop ctx.cluster.upstream with
    | None -> raise (Remote_failure "cluster shut down while merging")
    | Some bytes -> decode_up bytes)

let find_child ctx uid =
  match List.find_opt (fun c -> c.uid = uid) ctx.children with
  | Some c -> c
  | None -> raise (Remote_failure (Printf.sprintf "event for unknown remote task %d" uid))

let merge_decode_error name msg =
  Remote_failure (Printf.sprintf "merging remote task %d: %s" name msg)

let default_validate _ = true

(* Validation for remote merges inspects the would-be post-merge state: the
   journal is merged into a full clone (history included, so other
   children's bases stay valid), the predicate judges the clone, and
   acceptance adopts it.  The coordinator never materializes the child's
   workspace, so this is the remote analogue of validating the child's
   data. *)
let try_merge ctx child ~format journal ~validate =
  let cluster = ctx.cluster in
  match
    if validate == default_validate then begin
      Registry.merge_journal ~format cluster.registry ~into:ctx.ws ~base:child.base journal;
      true
    end
    else begin
      let trial = Ws.clone_full ctx.ws in
      Registry.merge_journal ~format cluster.registry ~into:trial ~base:child.base journal;
      if validate trial then begin
        Ws.adopt ctx.ws ~from:trial;
        true
      end
      else false
    end
  with
  | granted -> granted
  | exception C.Decode_error msg -> raise (merge_decode_error child.uid msg)

let obs_merge_child child ~journal ~outcome =
  if Obs.on Obs.Debug then
    Obs.emit
      (E.make ~task:coord_task ~task_id:coord_tid
         ~args:
           [ ("child", E.S (Wire.obs_task_name ~rank:child.node ~uid:child.uid))
           ; ("rank", E.I child.node)
           ; ("journal_keys", E.I (List.length journal))
           ; ("outcome", E.S outcome)
           ]
         E.Merge_child)

let process ?(validate = default_validate) ctx child (format, ev) =
  let cluster = ctx.cluster in
  match ev with
  | Wire.Sync_request { journal; _ } ->
    let granted = if child.aborted then false else try_merge ctx child ~format journal ~validate in
    Obs.Metrics.incr m_remote_syncs;
    if not granted then Obs.Metrics.incr m_remote_refusals;
    obs_merge_child child ~journal ~outcome:(if granted then "merged" else "refused");
    child.base <- Ws.snapshot ctx.ws;
    send_down cluster child.node
      (Wire.Reply { uid = child.uid; granted; snapshot = Registry.encode_snapshot cluster.registry ctx.ws })
  | Wire.Task_completed { journal; _ } ->
    let merged = if child.aborted then false else try_merge ctx child ~format journal ~validate in
    if not merged then Obs.Metrics.incr m_remote_refusals;
    obs_merge_child child ~journal ~outcome:(if merged then "merged" else "refused");
    child.cstate <- Retired_ok
  | Wire.Task_failed { reason; _ } ->
    if Obs.on Obs.Error then
      Obs.note ~level:Obs.Error ~task:coord_task ~task_id:coord_tid "remote_task_failed"
        ~args:[ ("rank", E.I child.node); ("uid", E.I child.uid); ("reason", E.S reason) ];
    child.cstate <- Retired_failed reason

let merge_all ?validate ctx =
  List.iter (fun child -> process ?validate ctx child (next_event_for ctx child.uid)) (live ctx)

let merge_any ?validate ctx =
  if live ctx = [] then None
  else begin
    let (_, ev) as item = next_event_any ctx in
    let child = find_child ctx (Wire.uid_of_up ev) in
    process ?validate ctx child item;
    Some child
  end

let run cluster body =
  let ctx = { cluster; ws = Ws.create (); children = []; buffered = Queue.create () } in
  let drain () =
    while live_tasks ctx > 0 do
      merge_all ctx
    done
  in
  match body ctx with
  | result ->
    drain ();
    result
  | exception e ->
    (* abandon the run: refuse every outstanding task's merges, then drain *)
    List.iter (fun c -> c.aborted <- true) ctx.children;
    (try drain () with _ -> ());
    raise e
