(** A worker node: one domain running remote Spawn/Merge tasks.

    A node owns a downstream byte channel (commands and sync replies from
    the coordinator) and shares the coordinator's upstream channel with its
    peers.  On [Spawn] it reconstructs the task's workspace from the shipped
    snapshot and runs the registered body on a fresh thread; [sync] inside
    the body sends the journal upstream and parks on a per-task mailbox
    until the coordinator's [Reply] routes back.  On [Stop] the node joins
    its task threads and its domain exits. *)

type t

val start :
  rank:int -> registry:Registry.t -> upstream:string Sm_util.Bqueue.t -> t
(** Launch the node domain.  [upstream] carries encoded {!Wire.up} values;
    the node's downstream channel is created internally. *)

val downstream : t -> string Sm_util.Bqueue.t
(** Where the coordinator writes encoded {!Wire.down} values for this
    node. *)

val rank : t -> int

val join : t -> unit
(** Wait for the node domain to exit (send {!Wire.Stop} first). *)
