module C = Sm_util.Codec
module Obs = Sm_obs
module E = Sm_obs.Event

let m_node_tasks = Obs.Metrics.counter "dist.node_tasks"

type t =
  { rank : int
  ; down : string Sm_util.Bqueue.t
  ; domain : unit Domain.t
  }

type reply =
  { granted : bool
  ; snapshot : Wire.entries
  }

let run_task ~registry ~rank ~upstream ~mailbox ~uid ~task ~argument ~snapshot ~tctx () =
  let obs_task = Wire.obs_task_name ~rank ~uid in
  let obs_tid = Wire.obs_task_tid uid in
  (* The Spawn frame's trace context, refined one hop: the task's own span
     is a child of the coordinator's spawn span, so the stitched request
     tree shows coordinator -> rank task as one causal edge. *)
  let tctx = Option.map (fun c -> Obs.Trace_ctx.child c "run") tctx in
  let ctx_args = match tctx with Some c -> Obs.Trace_ctx.args c | None -> [] in
  Obs.Metrics.incr m_node_tasks;
  if Obs.on Obs.Info then
    Obs.emit
      (E.make ~task:obs_task ~task_id:obs_tid
         ~args:([ ("rank", E.I rank); ("task", E.S task) ] @ ctx_args)
         E.Task_start);
  let ws = ref (Registry.build_workspace registry snapshot) in
  let send up = Sm_util.Bqueue.push upstream (Wire.seal_control (C.encode Wire.up_codec up)) in
  let do_sync () =
    if Obs.on Obs.Debug then Obs.emit (E.make ~task:obs_task ~task_id:obs_tid E.Sync_begin);
    send (Wire.Sync_request { uid; journal = Registry.encode_journal registry !ws });
    let outcome =
      match Sm_util.Bqueue.pop mailbox with
      | None -> `Refused (* node shutting down mid-sync; treat as refusal *)
      | Some { granted; snapshot } ->
        ws := Registry.build_workspace registry snapshot;
        if granted then `Granted else `Refused
    in
    if Obs.on Obs.Debug then
      Obs.emit
        (E.make ~task:obs_task ~task_id:obs_tid
           ~args:
             [ ("outcome", E.S (match outcome with `Granted -> "merged" | `Refused -> "refused")) ]
           E.Sync_end);
    outcome
  in
  let ctx = Registry.make_ctx ~ws ~do_sync ~rank ~argument in
  let finish status =
    if Obs.on Obs.Info then
      Obs.emit
        (E.make ~task:obs_task ~task_id:obs_tid
           ~args:([ ("status", E.S status); ("rank", E.I rank) ] @ ctx_args)
           E.Task_end)
  in
  match Registry.find_task registry task ctx with
  | () ->
    send (Wire.Task_completed { uid; journal = Registry.encode_journal registry !ws });
    finish "ok"
  | exception e ->
    send (Wire.Task_failed { uid; reason = Printexc.to_string e });
    finish "failed"

(* The node's main loop: decode commands, start task threads, route replies.
   Only this thread touches the mailbox table, so no lock is needed. *)
let node_loop ~rank ~registry ~upstream ~down () =
  let mailboxes : (int, reply Sm_util.Bqueue.t) Hashtbl.t = Hashtbl.create 16 in
  let rec loop threads =
    match Sm_util.Bqueue.pop down with
    | None -> List.iter Thread.join threads (* channel closed: abandon ship *)
    | Some bytes -> (
      let tctx, payload = Wire.open_control_rich bytes in
      match C.decode Wire.down_codec payload with
      | Wire.Spawn { uid; task; argument; snapshot } ->
        let mailbox = Sm_util.Bqueue.create () in
        Hashtbl.replace mailboxes uid mailbox;
        let thread =
          Thread.create
            (run_task ~registry ~rank ~upstream ~mailbox ~uid ~task ~argument ~snapshot ~tctx)
            ()
        in
        loop (thread :: threads)
      | Wire.Reply { uid; granted; snapshot } ->
        (match Hashtbl.find_opt mailboxes uid with
        | Some mailbox -> Sm_util.Bqueue.push mailbox { granted; snapshot }
        | None -> () (* reply for a task we never saw: drop *));
        loop threads
      | Wire.Stop -> List.iter Thread.join threads)
  in
  loop []

let start ~rank ~registry ~upstream =
  let down = Sm_util.Bqueue.create () in
  let domain = Domain.spawn (node_loop ~rank ~registry ~upstream ~down) in
  { rank; down; domain }

let downstream t = t.down
let rank t = t.rank
let join t = Domain.join t.domain
