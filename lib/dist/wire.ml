module C = Sm_util.Codec

(* --- framing ---------------------------------------------------------------- *)

module Frame = struct
  exception Bad_frame of string

  exception
    Unsupported_version of
      { got : int
      ; speaks : int
      }

  type kind =
    | Control
    | Delta
    | Snapshot

  let magic = "SM"

  (* Version 1: magic, u16 version, kind byte, u32 payload length, payload.
     Version 2 appends an optional trace context between header and
     payload: a u8 context length then that many context bytes (the
     {!Sm_obs.Trace_ctx.codec} encoding).  Version 3 keeps the version-2
     byte layout (the u8 context length is always present, 0 when there is
     no context) and changes only what the version number *means*: a
     version-3 peer packs text journals with the binary journal codec,
     while versions 1..2 carry classic tagged op lists.  [seal] therefore
     always stamps the current version — the frame version is the
     journal-format negotiation — and [open_] accepts 1..3 so pre-packed
     peers interoperate. *)
  let version = 3
  let min_version = 1

  let kind_to_string = function Control -> "control" | Delta -> "delta" | Snapshot -> "snapshot"
  let kind_tag = function Control -> 0 | Delta -> 1 | Snapshot -> 2

  let kind_of_tag = function
    | 0 -> Control
    | 1 -> Delta
    | 2 -> Snapshot
    | t -> raise (Bad_frame (Printf.sprintf "unknown frame kind %d" t))

  let header_len = 2 + 2 + 1 + 4 (* magic + u16 version + kind + u32 length *)

  let ctx_bytes ctx = C.encode Sm_obs.Trace_ctx.codec ctx

  (* [?version] exists for compatibility tests and simulated old peers; real
     senders take the default.  A version-1 frame has no context slot, so
     sealing one with [?ctx] is a caller error. *)
  let seal ?version:(v = version) ?ctx kind payload =
    if v < min_version || v > version then
      invalid_arg (Printf.sprintf "Wire.Frame.seal: cannot emit version %d" v);
    if v = 1 && ctx <> None then invalid_arg "Wire.Frame.seal: version-1 frames carry no context";
    let n = String.length payload in
    if n > 0xFFFF_FFFF then invalid_arg "Wire.Frame.seal: payload too large";
    if v = 1 then begin
      let b = Bytes.create (header_len + n) in
      Bytes.blit_string magic 0 b 0 2;
      Bytes.set_uint16_be b 2 1;
      Bytes.set_uint8 b 4 (kind_tag kind);
      Bytes.set_int32_be b 5 (Int32.of_int n);
      Bytes.blit_string payload 0 b header_len n;
      Bytes.unsafe_to_string b
    end
    else begin
      let cb = match ctx with None -> "" | Some ctx -> ctx_bytes ctx in
      let cn = String.length cb in
      if cn > 0xFF then invalid_arg "Wire.Frame.seal: context too large";
      let b = Bytes.create (header_len + 1 + cn + n) in
      Bytes.blit_string magic 0 b 0 2;
      Bytes.set_uint16_be b 2 v;
      Bytes.set_uint8 b 4 (kind_tag kind);
      Bytes.set_int32_be b 5 (Int32.of_int n);
      Bytes.set_uint8 b header_len cn;
      Bytes.blit_string cb 0 b (header_len + 1) cn;
      Bytes.blit_string payload 0 b (header_len + 1 + cn) n;
      Bytes.unsafe_to_string b
    end

  let open_v frame =
    let len = String.length frame in
    if len < header_len then
      raise (Bad_frame (Printf.sprintf "short frame: %d bytes (< %d-byte header)" len header_len));
    if String.sub frame 0 2 <> magic then
      raise
        (Bad_frame
           (Printf.sprintf "bad magic %S: not a Spawn/Merge frame" (String.sub frame 0 2)));
    let v = String.get_uint16_be frame 2 in
    if v < min_version || v > version then raise (Unsupported_version { got = v; speaks = version });
    let kind = kind_of_tag (String.get_uint8 frame 4) in
    let n = Int32.to_int (String.get_int32_be frame 5) land 0xFFFF_FFFF in
    if v = min_version then begin
      if len - header_len <> n then
        raise
          (Bad_frame
             (Printf.sprintf "frame length mismatch: header says %d payload bytes, got %d" n
                (len - header_len)));
      (v, kind, None, String.sub frame header_len n)
    end
    else begin
      if len < header_len + 1 then
        raise (Bad_frame (Printf.sprintf "version-%d frame truncated before context" v));
      let cn = String.get_uint8 frame header_len in
      if len - header_len - 1 - cn <> n then
        raise
          (Bad_frame
             (Printf.sprintf "frame length mismatch: header says %d payload bytes, got %d" n
                (len - header_len - 1 - cn)));
      let ctx =
        if cn = 0 then None
        else
          match C.decode Sm_obs.Trace_ctx.codec (String.sub frame (header_len + 1) cn) with
          | ctx -> Some ctx
          | exception C.Decode_error msg ->
            raise (Bad_frame (Printf.sprintf "bad frame context: %s" msg))
      in
      (v, kind, ctx, String.sub frame (header_len + 1 + cn) n)
    end

  let open_rich frame =
    let _v, kind, ctx, payload = open_v frame in
    (kind, ctx, payload)

  let open_ frame =
    let kind, _ctx, payload = open_rich frame in
    (kind, payload)
end

(* --- journal-format negotiation ---------------------------------------------- *)

type journal_format =
  | Classic  (** tagged op lists — what version-1/2 frames carry *)
  | Packed  (** binary journals (varint-framed, delta positions) — version 3+ *)

let journal_format_of_version v = if v >= 3 then Packed else Classic

let journal_format_to_string = function Classic -> "classic" | Packed -> "packed"

let seal_control ?ctx payload = Frame.seal ?ctx Frame.Control payload

let control_payload kind payload =
  match kind with
  | Frame.Control -> payload
  | k ->
    raise
      (Frame.Bad_frame
         (Printf.sprintf "expected a control frame, got a %s frame" (Frame.kind_to_string k)))

let open_control frame =
  let kind, payload = Frame.open_ frame in
  control_payload kind payload

let open_control_rich frame =
  let kind, ctx, payload = Frame.open_rich frame in
  (ctx, control_payload kind payload)

let open_control_v frame =
  let v, kind, _ctx, payload = Frame.open_v frame in
  (journal_format_of_version v, control_payload kind payload)

type entries = (int * string) list

type down =
  | Spawn of
      { uid : int
      ; task : string
      ; argument : string
      ; snapshot : entries
      }
  | Reply of
      { uid : int
      ; granted : bool
      ; snapshot : entries
      }
  | Stop

type up =
  | Sync_request of
      { uid : int
      ; journal : entries
      }
  | Task_completed of
      { uid : int
      ; journal : entries
      }
  | Task_failed of
      { uid : int
      ; reason : string
      }

let entries_codec = C.list (C.pair C.int C.string)

let down_codec =
  C.tagged
    ~tag:(function Spawn _ -> 0 | Reply _ -> 1 | Stop -> 2)
    ~write:(fun buf -> function
      | Spawn { uid; task; argument; snapshot } ->
        C.W.int buf uid;
        C.W.string buf task;
        C.W.string buf argument;
        C.W.value entries_codec buf snapshot
      | Reply { uid; granted; snapshot } ->
        C.W.int buf uid;
        C.W.bool buf granted;
        C.W.value entries_codec buf snapshot
      | Stop -> ())
    ~read:(fun tag r ->
      match tag with
      | 0 ->
        let uid = C.R.int r in
        let task = C.R.string r in
        let argument = C.R.string r in
        let snapshot = C.R.value entries_codec r in
        Spawn { uid; task; argument; snapshot }
      | 1 ->
        let uid = C.R.int r in
        let granted = C.R.bool r in
        let snapshot = C.R.value entries_codec r in
        Reply { uid; granted; snapshot }
      | 2 -> Stop
      | t -> raise (C.Decode_error (Printf.sprintf "Wire.down: unknown tag %d" t)))

let up_codec =
  C.tagged
    ~tag:(function Sync_request _ -> 0 | Task_completed _ -> 1 | Task_failed _ -> 2)
    ~write:(fun buf -> function
      | Sync_request { uid; journal } | Task_completed { uid; journal } ->
        C.W.int buf uid;
        C.W.value entries_codec buf journal
      | Task_failed { uid; reason } ->
        C.W.int buf uid;
        C.W.string buf reason)
    ~read:(fun tag r ->
      match tag with
      | 0 ->
        let uid = C.R.int r in
        let journal = C.R.value entries_codec r in
        Sync_request { uid; journal }
      | 1 ->
        let uid = C.R.int r in
        let journal = C.R.value entries_codec r in
        Task_completed { uid; journal }
      | 2 ->
        let uid = C.R.int r in
        let reason = C.R.string r in
        Task_failed { uid; reason }
      | t -> raise (C.Decode_error (Printf.sprintf "Wire.up: unknown tag %d" t)))

let uid_of_up = function
  | Sync_request { uid; _ } | Task_completed { uid; _ } | Task_failed { uid; _ } -> uid

(* Trace lane ids: local Runtime tasks use their small allocation-ordered
   ids, so the distributed layer parks far above them — the coordinator on
   one fixed lane, each remote task on a lane derived from its uid.  Shared
   here because both the coordinator and the node sides tag events. *)
let obs_coordinator_tid = 1_000_000
let obs_task_tid uid = 1_000_001 + uid
let obs_task_name ~rank ~uid = Printf.sprintf "rank%d/task%d" rank uid
