module C = Sm_util.Codec

type entries = (int * string) list

type down =
  | Spawn of
      { uid : int
      ; task : string
      ; argument : string
      ; snapshot : entries
      }
  | Reply of
      { uid : int
      ; granted : bool
      ; snapshot : entries
      }
  | Stop

type up =
  | Sync_request of
      { uid : int
      ; journal : entries
      }
  | Task_completed of
      { uid : int
      ; journal : entries
      }
  | Task_failed of
      { uid : int
      ; reason : string
      }

let entries_codec = C.list (C.pair C.int C.string)

let down_codec =
  C.tagged
    ~tag:(function Spawn _ -> 0 | Reply _ -> 1 | Stop -> 2)
    ~write:(fun buf -> function
      | Spawn { uid; task; argument; snapshot } ->
        C.W.int buf uid;
        C.W.string buf task;
        C.W.string buf argument;
        C.W.value entries_codec buf snapshot
      | Reply { uid; granted; snapshot } ->
        C.W.int buf uid;
        C.W.bool buf granted;
        C.W.value entries_codec buf snapshot
      | Stop -> ())
    ~read:(fun tag r ->
      match tag with
      | 0 ->
        let uid = C.R.int r in
        let task = C.R.string r in
        let argument = C.R.string r in
        let snapshot = C.R.value entries_codec r in
        Spawn { uid; task; argument; snapshot }
      | 1 ->
        let uid = C.R.int r in
        let granted = C.R.bool r in
        let snapshot = C.R.value entries_codec r in
        Reply { uid; granted; snapshot }
      | 2 -> Stop
      | t -> raise (C.Decode_error (Printf.sprintf "Wire.down: unknown tag %d" t)))

let up_codec =
  C.tagged
    ~tag:(function Sync_request _ -> 0 | Task_completed _ -> 1 | Task_failed _ -> 2)
    ~write:(fun buf -> function
      | Sync_request { uid; journal } | Task_completed { uid; journal } ->
        C.W.int buf uid;
        C.W.value entries_codec buf journal
      | Task_failed { uid; reason } ->
        C.W.int buf uid;
        C.W.string buf reason)
    ~read:(fun tag r ->
      match tag with
      | 0 ->
        let uid = C.R.int r in
        let journal = C.R.value entries_codec r in
        Sync_request { uid; journal }
      | 1 ->
        let uid = C.R.int r in
        let journal = C.R.value entries_codec r in
        Task_completed { uid; journal }
      | 2 ->
        let uid = C.R.int r in
        let reason = C.R.string r in
        Task_failed { uid; reason }
      | t -> raise (C.Decode_error (Printf.sprintf "Wire.up: unknown tag %d" t)))

let uid_of_up = function
  | Sync_request { uid; _ } | Task_completed { uid; _ } | Task_failed { uid; _ } -> uid

(* Trace lane ids: local Runtime tasks use their small allocation-ordered
   ids, so the distributed layer parks far above them — the coordinator on
   one fixed lane, each remote task on a lane derived from its uid.  Shared
   here because both the coordinator and the node sides tag events. *)
let obs_coordinator_tid = 1_000_000
let obs_task_tid uid = 1_000_001 + uid
let obs_task_name ~rank ~uid = Printf.sprintf "rank%d/task%d" rank uid
