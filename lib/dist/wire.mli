(** The wire protocol between the coordinator and its nodes.

    Everything that crosses a channel is one encoded {!down} or {!up} value;
    snapshots and journals are [(wire_id, bytes)] association lists whose
    payloads were themselves encoded by the registry's per-value codecs. *)

(** Length-prefixed, versioned frames.  Every message on a channel is
    [seal]ed before send and [open_]ed after receive, so the payload kind
    (control message, delta journal, snapshot) is distinguishable on the
    wire and a frame from an incompatible build is rejected with a clear
    {!Frame.Bad_frame} instead of a deep decode exception. *)
module Frame : sig
  exception Bad_frame of string
  (** Malformed header: wrong magic, unknown kind, or payload length
      disagreeing with the header. *)

  exception
    Unsupported_version of
      { got : int
      ; speaks : int
      }
  (** The frame's version is outside [[min_version, version]] — a peer
      from an incompatible build.  Typed separately from {!Bad_frame} so
      callers can distinguish "corrupt bytes" from "wrong build". *)

  type kind =
    | Control  (** coordinator/node protocol messages ({!down}/{!up}) *)
    | Delta  (** compacted operation-journal suffixes (shard sync) *)
    | Snapshot  (** full encoded states (shard fallback sync) *)

  val version : int
  (** The newest frame version this build speaks (u16 on the wire).
      Version 2 added the optional trace context; version 3 keeps the
      version-2 byte layout and signals that journal payloads use the
      packed binary codecs (see {!journal_format_of_version}). *)

  val min_version : int
  (** The oldest version still accepted: version-1 and version-2 frames
      decode forever. *)

  val kind_to_string : kind -> string

  val seal : ?version:int -> ?ctx:Sm_obs.Trace_ctx.t -> kind -> string -> string
  (** Prefix [payload] with the header: magic ["SM"], u16 version, kind
      byte, u32 payload length, then (version >= 2) a u8 context length and
      the encoded context bytes — 0 and absent without [?ctx].  The default
      [?version] is {!version}: new builds always stamp the current version
      because the version number doubles as the journal-format negotiation.
      Passing an explicit older [?version] emits that version's byte layout
      — for compatibility tests and simulated old peers.
      @raise Invalid_argument on a version outside the speakable range, or
      on [~version:1] with a context (version 1 has no context slot). *)

  val open_ : string -> kind * string
  (** Strip and validate the header, accepting versions 1 through
      {!version} (any context is dropped).
      @raise Bad_frame as described above.
      @raise Unsupported_version on a version outside the accepted range. *)

  val open_rich : string -> kind * Sm_obs.Trace_ctx.t option * string
  (** {!open_}, but surface the trace context when the frame carries one. *)

  val open_v : string -> int * kind * Sm_obs.Trace_ctx.t option * string
  (** {!open_rich}, but also surface the frame version — the receiver needs
      it to pick the journal decoder. *)
end

type journal_format =
  | Classic  (** tagged op lists — what version-1/2 frames carry *)
  | Packed  (** binary journals (varint-framed, delta positions) — version 3+ *)

val journal_format_of_version : int -> journal_format
(** The journal encoding implied by a frame version: [Packed] for 3+,
    [Classic] below.  Decoders pick the codec from the {e sender's} frame
    version; encoders always speak [Packed] (they seal current-version
    frames). *)

val journal_format_to_string : journal_format -> string

val seal_control : ?ctx:Sm_obs.Trace_ctx.t -> string -> string
(** [Frame.seal Control] — the coordinator/node link carries only control
    frames. *)

val open_control : string -> string
(** Unwrap a frame that must be {!Frame.Control}.
    @raise Frame.Bad_frame on malformed frames or any other kind.
    @raise Frame.Unsupported_version on a version outside the accepted range. *)

val open_control_rich : string -> Sm_obs.Trace_ctx.t option * string
(** {!open_control}, surfacing the trace context. *)

val open_control_v : string -> journal_format * string
(** {!open_control}, surfacing the sender's journal format — what the
    coordinator uses to decode journals from mixed-version nodes. *)

type entries = (int * string) list

type down =
  | Spawn of
      { uid : int  (** remote task id, unique per coordinator run *)
      ; task : string  (** registered task name *)
      ; argument : string
      ; snapshot : entries
      }
  | Reply of
      { uid : int
      ; granted : bool  (** false: the merge was refused (validation) *)
      ; snapshot : entries  (** fresh data either way, like [Runtime.sync] *)
      }
  | Stop

type up =
  | Sync_request of
      { uid : int
      ; journal : entries
      }
  | Task_completed of
      { uid : int
      ; journal : entries
      }
  | Task_failed of
      { uid : int
      ; reason : string
      }

val down_codec : down Sm_util.Codec.t

val up_codec : up Sm_util.Codec.t

val uid_of_up : up -> int

(** {1 Observability conventions}

    The [Sm_obs] task-id lanes used by the distributed layer, kept well away
    from local runtime task ids so mixed local/remote Chrome traces stay
    readable. *)

val obs_coordinator_tid : int
val obs_task_tid : int -> int
val obs_task_name : rank:int -> uid:int -> string
