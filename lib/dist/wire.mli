(** The wire protocol between the coordinator and its nodes.

    Everything that crosses a channel is one encoded {!down} or {!up} value;
    snapshots and journals are [(wire_id, bytes)] association lists whose
    payloads were themselves encoded by the registry's per-value codecs. *)

type entries = (int * string) list

type down =
  | Spawn of
      { uid : int  (** remote task id, unique per coordinator run *)
      ; task : string  (** registered task name *)
      ; argument : string
      ; snapshot : entries
      }
  | Reply of
      { uid : int
      ; granted : bool  (** false: the merge was refused (validation) *)
      ; snapshot : entries  (** fresh data either way, like [Runtime.sync] *)
      }
  | Stop

type up =
  | Sync_request of
      { uid : int
      ; journal : entries
      }
  | Task_completed of
      { uid : int
      ; journal : entries
      }
  | Task_failed of
      { uid : int
      ; reason : string
      }

val down_codec : down Sm_util.Codec.t

val up_codec : up Sm_util.Codec.t

val uid_of_up : up -> int

(** {1 Observability conventions}

    The [Sm_obs] task-id lanes used by the distributed layer, kept well away
    from local runtime task ids so mixed local/remote Chrome traces stay
    readable. *)

val obs_coordinator_tid : int
val obs_task_tid : int -> int
val obs_task_name : rank:int -> uid:int -> string
