(** The coordinator: the distributed counterpart of {!Sm_core.Runtime}.

    The coordinator owns the authoritative workspace.  [spawn] ships a
    snapshot and a registered task name to a node; the merge family is the
    same as the local runtime's, except children live on remote ranks and
    their journals arrive as messages:

    - {!merge_all} processes each live remote task's {e next} event in
      creation order — deterministic, whatever order the messages landed in
      (early arrivals are buffered per task).
    - {!merge_any} processes whichever event arrives first — explicitly
      non-deterministic, as in the paper.
    - a sync request is merged via OT against the coordinator's operations
      since that task's base, then answered with a fresh snapshot;
      completions retire the task; failures discard its journal.

    Determinism carries over: a program using only [merge_all] computes the
    same workspace digest regardless of node count, message timing, or how
    tasks are placed — asserted by the test suite. *)

type cluster

(** Message-timing chaos for the upstream (node → coordinator) channel.

    A seeded relay that randomly {e holds} a remote task's messages and
    releases them later, preserving each task's own message order — the
    channel equivalent of permuting task completion order.  Because
    deterministic merges buffer early arrivals per task and process them in
    creation order, a [merge_all]-only program must digest identically with
    chaos on or off, at any hold probability: that is the property the
    fuzzer's distributed target asserts.  (Lossy faults — drop, duplicate —
    would violate the reliable-channel assumption the wire protocol is
    built on and are exercised at the {!Sm_sim.Netpipe} layer instead.) *)
module Chaos : sig
  type t

  val make : ?hold_prob:float -> ?max_hold:int -> seed:int64 -> unit -> t
  (** [hold_prob] (default 0.25) is the per-message probability of being
      held; a held task releases after 1..[max_hold] (default 4) relay
      ticks.  @raise Invalid_argument on a probability outside [\[0, 1\]] or
      [max_hold < 1]. *)
end

val cluster : ?nodes:int -> ?chaos:Chaos.t -> Registry.t -> cluster
(** Launch [nodes] (default 2) worker nodes.  The cluster may serve many
    {!run}s before {!shutdown}.  With [chaos], upstream messages pass
    through the chaos relay. *)

val node_count : cluster -> int

val shutdown : cluster -> unit
(** Stop every node and join their domains.  All runs must have finished. *)

type ctx

type rtask
(** A handle to a remote child task. *)

exception Remote_failure of string
(** Raised by merges when decoding a corrupt journal (protocol bug), never
    for ordinary task failures — those are reported via {!failure}. *)

val run : cluster -> (ctx -> 'a) -> 'a
(** Run a coordinator program.  Remaining remote tasks are merged to
    completion when the body returns (implicit MergeAll loop). *)

val workspace : ctx -> Sm_mergeable.Workspace.t
(** The authoritative data.  Initialize every registered value here before
    the first {!spawn}. *)

val spawn : ctx -> ?node:int -> string -> argument:string -> rtask
(** [spawn ctx task_name ~argument] starts a registered task on a node
    (round-robin placement unless [node] is given) with a snapshot of the
    current workspace.
    @raise Invalid_argument on an unknown node index. *)

val merge_all : ?validate:(Sm_mergeable.Workspace.t -> bool) -> ctx -> unit
(** Process one event (sync or completion) from {e every} live remote task,
    in creation order.  [validate] judges the {e would-be post-merge}
    workspace (a trial clone); refusal discards the journal and answers the
    task's sync with [`Refused]. *)

val merge_any : ?validate:(Sm_mergeable.Workspace.t -> bool) -> ctx -> rtask option
(** Process the next event from whichever task produces one first; [None]
    when no remote tasks are live. *)

val live_tasks : ctx -> int

val failure : rtask -> string option
(** Why the task failed, if it did. *)

val rank_of : rtask -> int
(** The node the task was placed on. *)
