module Ws = Sm_mergeable.Workspace

module type CODABLE_DATA = sig
  include Sm_mergeable.Data.S

  val state_codec : state Sm_util.Codec.t
  val op_codec : op Sm_util.Codec.t
end

type ('s, 'o) rkey =
  { wire_id : int
  ; wkey : ('s, 'o) Ws.key
  ; state_codec : 's Sm_util.Codec.t
  ; op_codec : 'o Sm_util.Codec.t
  }

type packed = V : ('s, 'o) rkey -> packed

type ctx =
  { ws : Ws.t ref
  ; do_sync : unit -> [ `Granted | `Refused ]
  ; rank : int
  ; argument : string
  }

type t =
  { mutable values : packed list (* reverse registration order *)
  ; tasks : (string, ctx -> unit) Hashtbl.t
  }

let create () = { values = []; tasks = Hashtbl.create 8 }

let value (type s o) t ~name (module D : CODABLE_DATA with type state = s and type op = o) :
    (s, o) rkey =
  let rkey =
    { wire_id = List.length t.values
    ; wkey = Ws.create_key (module D) ~name
    ; state_codec = D.state_codec
    ; op_codec = D.op_codec
    }
  in
  t.values <- V rkey :: t.values;
  rkey

let values_in_order t = List.rev t.values
let workspace_key rk = rk.wkey

let find_value t id =
  match List.find_opt (fun (V rk) -> rk.wire_id = id) t.values with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Registry: unknown wire id %d" id)

(* --- task ctx -------------------------------------------------------------- *)

let read ctx rk = Ws.read !(ctx.ws) rk.wkey
let update ctx rk op = Ws.update !(ctx.ws) rk.wkey op
let sync ctx = ctx.do_sync ()
let rank ctx = ctx.rank
let argument ctx = ctx.argument
let make_ctx ~ws ~do_sync ~rank ~argument = { ws; do_sync; rank; argument }

let task t ~name body =
  if Hashtbl.mem t.tasks name then invalid_arg (Printf.sprintf "Registry: duplicate task %S" name);
  Hashtbl.replace t.tasks name body;
  name

let find_task t name = Hashtbl.find t.tasks name

(* --- wire plumbing ---------------------------------------------------------- *)

let encode_snapshot t ws =
  List.filter_map
    (fun (V rk) ->
      if Ws.mem ws rk.wkey then
        Some (rk.wire_id, Sm_util.Codec.encode rk.state_codec (Ws.read ws rk.wkey))
      else None)
    (values_in_order t)

let build_workspace t snapshot =
  let ws = Ws.create () in
  List.iter
    (fun (id, bytes) ->
      let (V rk) = find_value t id in
      Ws.init ws rk.wkey (Sm_util.Codec.decode rk.state_codec bytes))
    snapshot;
  ws

let encode_journal t ws =
  List.filter_map
    (fun (V rk) ->
      if Ws.mem ws rk.wkey then
        match Ws.journal ws rk.wkey with
        | [] -> None
        | ops -> Some (rk.wire_id, Sm_util.Codec.encode (Sm_util.Codec.list rk.op_codec) ops)
      else None)
    (values_in_order t)

let merge_journal t ~into ~base entries =
  List.iter
    (fun (id, bytes) ->
      let (V rk) = find_value t id in
      let ops = Sm_util.Codec.decode (Sm_util.Codec.list rk.op_codec) bytes in
      Ws.merge_ops into rk.wkey ~ops ~base_version:(Ws.version_in base rk.wkey))
    entries
