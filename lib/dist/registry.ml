module Ws = Sm_mergeable.Workspace

module type CODABLE_DATA = sig
  include Sm_mergeable.Data.S

  val state_codec : state Sm_util.Codec.t
  val op_codec : op Sm_util.Codec.t

  val journal_codec : op list Sm_util.Codec.t
  (* the packed whole-journal form; [C.list op_codec] when the type has no
     denser encoding *)
end

type ('s, 'o) rkey =
  { wire_id : int
  ; wkey : ('s, 'o) Ws.key
  ; state_codec : 's Sm_util.Codec.t
  ; op_codec : 'o Sm_util.Codec.t
  ; journal_codec : 'o list Sm_util.Codec.t
  ; compact : 'o list -> 'o list
  }

type packed = V : ('s, 'o) rkey -> packed

type ctx =
  { ws : Ws.t ref
  ; do_sync : unit -> [ `Granted | `Refused ]
  ; rank : int
  ; argument : string
  }

type t =
  { mutable values : packed list (* reverse registration order *)
  ; tasks : (string, ctx -> unit) Hashtbl.t
  }

let create () = { values = []; tasks = Hashtbl.create 8 }

let value (type s o) t ~name (module D : CODABLE_DATA with type state = s and type op = o) :
    (s, o) rkey =
  let module Ctl = Sm_ot.Control.Make (D) in
  let rkey =
    { wire_id = List.length t.values
    ; wkey = Ws.create_key (module D) ~name
    ; state_codec = D.state_codec
    ; op_codec = D.op_codec
    ; journal_codec = D.journal_codec
    ; compact = Ctl.compact
    }
  in
  t.values <- V rkey :: t.values;
  rkey

let values_in_order t = List.rev t.values
let workspace_key rk = rk.wkey

let find_value t id =
  match List.find_opt (fun (V rk) -> rk.wire_id = id) t.values with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Registry: unknown wire id %d" id)

let wire_name t id =
  let (V rk) = find_value t id in
  Ws.key_name rk.wkey

(* --- task ctx -------------------------------------------------------------- *)

let read ctx rk = Ws.read !(ctx.ws) rk.wkey
let update ctx rk op = Ws.update !(ctx.ws) rk.wkey op
let sync ctx = ctx.do_sync ()
let rank ctx = ctx.rank
let argument ctx = ctx.argument
let make_ctx ~ws ~do_sync ~rank ~argument = { ws; do_sync; rank; argument }

let task t ~name body =
  if Hashtbl.mem t.tasks name then invalid_arg (Printf.sprintf "Registry: duplicate task %S" name);
  Hashtbl.replace t.tasks name body;
  name

let find_task t name = Hashtbl.find t.tasks name

(* --- wire plumbing ---------------------------------------------------------- *)

let encode_snapshot t ws =
  List.filter_map
    (fun (V rk) ->
      if Ws.mem ws rk.wkey then
        Some (rk.wire_id, Sm_util.Codec.encode rk.state_codec (Ws.read ws rk.wkey))
      else None)
    (values_in_order t)

let build_workspace t snapshot =
  let ws = Ws.create () in
  List.iter
    (fun (id, bytes) ->
      let (V rk) = find_value t id in
      Ws.init ws rk.wkey (Sm_util.Codec.decode rk.state_codec bytes))
    snapshot;
  ws

(* Which whole-journal codec a given frame version implies.  [Classic] is
   the original [list op_codec] image — kept decodable forever so version
   1/2 peers interoperate; [Packed] is the type's own [journal_codec]. *)
let journal_codec_for rk = function
  | Wire.Packed -> rk.journal_codec
  | Wire.Classic -> Sm_util.Codec.list rk.op_codec

let encode_journal ?(format = Wire.Packed) t ws =
  List.filter_map
    (fun (V rk) ->
      if Ws.mem ws rk.wkey then
        match Ws.journal ws rk.wkey with
        | [] -> None
        | ops -> Some (rk.wire_id, Sm_util.Codec.encode (journal_codec_for rk format) ops)
      else None)
    (values_in_order t)

(* --- shard sync (delta journals, per-wire-id revisions) --------------------- *)

let applied_ops = Sm_obs.Metrics.counter "registry.applied_delta_ops"

let revisions t ws =
  List.filter_map
    (fun (V rk) -> if Ws.mem ws rk.wkey then Some (rk.wire_id, Ws.version_of ws rk.wkey) else None)
    (values_in_order t)

let encode_delta ?memo ?(format = Wire.Packed) t ws ~since =
  List.filter_map
    (fun (V rk) ->
      if not (Ws.mem ws rk.wkey) then None
      else
        let to_rev = Ws.version_of ws rk.wkey in
        let from_rev = since rk.wire_id in
        if from_rev >= to_rev then None
        else
          let encode () =
            let ops = rk.compact (Ws.journal_since ws rk.wkey ~version:from_rev) in
            Sm_util.Codec.encode (journal_codec_for rk format) ops
          in
          let bytes =
            match memo with
            | None -> encode ()
            | Some tbl -> (
              let key = (rk.wire_id, from_rev, to_rev) in
              match Hashtbl.find_opt tbl key with
              | Some b -> b
              | None ->
                let b = encode () in
                Hashtbl.add tbl key b;
                b)
          in
          Some (rk.wire_id, from_rev, to_rev, bytes))
    (values_in_order t)

(* Compacted suffixes are apply-equivalent to the journal slice but not
   op-for-op aligned with it, so a partially applied delta cannot be
   prefix-skipped.  The shard protocol never produces partial overlap
   (stop-and-wait sessions + per-session reply replay): a delta is either
   entirely stale ([to_rev <= cursor], a duplicate — skipped) or applies
   exactly at the cursor. *)
let apply_delta ?(format = Wire.Packed) t ~into ~cursor entries =
  List.iter
    (fun (id, from_rev, to_rev, bytes) ->
      let cur = cursor id in
      if to_rev > cur then begin
        if from_rev <> cur then
          invalid_arg
            (Printf.sprintf "Registry.apply_delta: gap for wire id %d (have rev %d, delta %d..%d)"
               id cur from_rev to_rev);
        let (V rk) = find_value t id in
        let ops = Sm_util.Codec.decode (journal_codec_for rk format) bytes in
        Sm_obs.Metrics.add applied_ops (List.length ops);
        List.iter (fun op -> Ws.update_trimming into rk.wkey op) ops
      end)
    entries

let merge_edit ?(format = Wire.Packed) t ~into ~base_rev entries =
  List.fold_left
    (fun acc (id, bytes) ->
      let (V rk) = find_value t id in
      let ops = Sm_util.Codec.decode (journal_codec_for rk format) bytes in
      Ws.merge_ops into rk.wkey ~ops ~base_version:(base_rev id);
      acc + List.length ops)
    0 entries

let merge_journal ?(format = Wire.Packed) t ~into ~base entries =
  List.iter
    (fun (id, bytes) ->
      let (V rk) = find_value t id in
      let ops = Sm_util.Codec.decode (journal_codec_for rk format) bytes in
      Ws.merge_ops into rk.wkey ~ops ~base_version:(Ws.version_in base rk.wkey))
    entries
