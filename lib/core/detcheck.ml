let digest_of_run ?domains ?executor program =
  Runtime.run ?domains ?executor (fun ctx ->
      program ctx;
      Runtime.merge_all ctx;
      Sm_mergeable.Workspace.digest (Runtime.workspace ctx))

let digests ?(runs = 5) ?domains ?executor program =
  List.init runs (fun _ -> digest_of_run ?domains ?executor program)

let deterministic ?runs ?domains ?executor program =
  match digests ?runs ?domains ?executor program with
  | [] -> true
  | d :: rest -> List.for_all (String.equal d) rest

let cross_scheduler ?(runs = 3) ?executor program =
  let reference =
    Runtime.Coop.run (fun ctx ->
        program ctx;
        Runtime.merge_all ctx;
        Sm_mergeable.Workspace.digest (Runtime.workspace ctx))
  in
  List.for_all (String.equal reference) (digests ~runs ?executor program)
