exception Timeout of string

let digest_of_run ?domains ?executor program =
  Runtime.run ?domains ?executor (fun ctx ->
      program ctx;
      Runtime.merge_all ctx;
      Sm_mergeable.Workspace.digest (Runtime.workspace ctx))

let digests ?(runs = 5) ?domains ?executor program =
  List.init runs (fun _ -> digest_of_run ?domains ?executor program)

let deterministic ?runs ?domains ?executor program =
  match digests ?runs ?domains ?executor program with
  | [] -> true
  | d :: rest -> List.for_all (String.equal d) rest

type divergence =
  { run_index : int
  ; digest : string
  ; reference : string
  }

let pp_divergence ppf d =
  Format.fprintf ppf "run %d digested %s, run 0 digested %s" d.run_index d.digest d.reference

let deterministic_explained ?runs ?domains ?executor program =
  match digests ?runs ?domains ?executor program with
  | [] -> Ok ()
  | reference :: rest ->
    let rec scan i = function
      | [] -> Ok ()
      | d :: _ when not (String.equal d reference) ->
        Error { run_index = i; digest = d; reference }
      | _ :: tl -> scan (i + 1) tl
    in
    scan 1 rest

(* Run [f] on a watchdog thread and poll for its outcome.  We cannot kill the
   worker on timeout (OCaml threads are not cancellable, and the paper's own
   abort semantics refuse to kill threads); the worker is abandoned and the
   caller gets a diagnostic instead of a stalled suite. *)
let with_timeout ~timeout_s ~diag f =
  let result = Atomic.make None in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let outcome = match f () with v -> Ok v | exception e -> Error e in
        Atomic.set result (Some outcome))
      ()
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    match Atomic.get result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None ->
      if Unix.gettimeofday () > deadline then raise (Timeout (diag ()))
      else begin
        Thread.delay 0.002;
        wait ()
      end
  in
  wait ()

let cross_scheduler ?timeout_s ?(runs = 3) ?executor program =
  let check () =
    let reference =
      Runtime.Coop.run (fun ctx ->
          program ctx;
          Runtime.merge_all ctx;
          Sm_mergeable.Workspace.digest (Runtime.workspace ctx))
    in
    List.for_all (String.equal reference) (digests ~runs ?executor program)
  in
  match timeout_s with
  | None -> check ()
  | Some timeout_s ->
    with_timeout ~timeout_s
      ~diag:(fun () ->
        Printf.sprintf
          "Detcheck.cross_scheduler: no verdict after %gs — the program likely blocks the OS \
           thread (Thread.delay, blocking I/O, or an un-signalled wait), which stalls the \
           cooperative scheduler; the stuck run was abandoned"
          timeout_s)
      check
