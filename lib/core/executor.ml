type t =
  { inboxes : (unit -> unit) Sm_util.Bqueue.t array
  ; workers : unit Domain.t array
  ; next : int Atomic.t
  }

let m_jobs = Sm_obs.Metrics.counter "executor.jobs"
let m_job_threads = Sm_obs.Metrics.counter "executor.job_threads"
let m_domains = Sm_obs.Metrics.counter "executor.domains"

(* Each domain loops popping jobs and giving each its own thread; finished
   threads are reaped opportunistically (executors may outlive many runs),
   and on inbox close the stragglers are joined before the domain exits. *)
let worker_loop inbox () =
  let reap threads =
    List.filter
      (fun (t, finished) ->
        if Atomic.get finished then begin
          Thread.join t;
          false
        end
        else true)
      threads
  in
  let rec loop threads =
    match Sm_util.Bqueue.pop inbox with
    | Some job ->
      Sm_obs.Metrics.incr m_job_threads;
      let finished = Atomic.make false in
      let t =
        Thread.create (fun () -> Fun.protect ~finally:(fun () -> Atomic.set finished true) job) ()
      in
      loop ((t, finished) :: reap threads)
    | None -> List.iter (fun (t, _) -> Thread.join t) threads
  in
  loop []

let create ?domains () =
  let n =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Executor.create: domains must be >= 1";
      n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let inboxes = Array.init n (fun _ -> Sm_util.Bqueue.create ()) in
  let workers = Array.map (fun inbox -> Domain.spawn (worker_loop inbox)) inboxes in
  Sm_obs.Metrics.add m_domains n;
  { inboxes; workers; next = Atomic.make 0 }

let submit t job =
  Sm_obs.Metrics.incr m_jobs;
  let i = Atomic.fetch_and_add t.next 1 mod Array.length t.inboxes in
  Sm_obs.note ~task:"executor" ~task_id:0 "executor.submit" ~args:[ ("worker", Sm_obs.Event.I i) ];
  try Sm_util.Bqueue.push t.inboxes.(i) job
  with Invalid_argument _ -> invalid_arg "Executor.submit: executor is shut down"

let shutdown t =
  Array.iter Sm_util.Bqueue.close t.inboxes;
  Array.iter Domain.join t.workers

let domain_count t = Array.length t.workers
