(** The determinism oracle.

    Runs a Spawn/Merge program repeatedly — optionally under different
    executor widths, which perturbs real scheduling — and compares digests of
    the root task's merged workspace.  A program restricted to deterministic
    merges ([merge_all], [merge_all_from_set]) must digest identically every
    time; this is the paper's core claim, and the property the test suite
    and the evaluation's "note that using Spawn and Merge also the
    'non-deterministic' test setup becomes deterministic" rely on.

    Programs must create their workspace keys once at module level:
    re-minting keys per run changes key identities and makes digests
    incomparable. *)

exception Timeout of string
(** Raised by {!cross_scheduler} when [?timeout_s] expires; the payload is a
    diagnostic naming the likely cause. *)

val digest_of_run : ?domains:int -> ?executor:Executor.t -> (Runtime.ctx -> unit) -> string
(** Run the program, merge all remaining children, digest the root
    workspace. *)

val digests : ?runs:int -> ?domains:int -> ?executor:Executor.t -> (Runtime.ctx -> unit) -> string list
(** [runs] (default 5) digests of independent executions. *)

val deterministic : ?runs:int -> ?domains:int -> ?executor:Executor.t -> (Runtime.ctx -> unit) -> bool
(** All digests equal. *)

type divergence =
  { run_index : int  (** first run whose digest differs from run 0's *)
  ; digest : string
  ; reference : string  (** run 0's digest *)
  }

val pp_divergence : Format.formatter -> divergence -> unit

val deterministic_explained :
  ?runs:int -> ?domains:int -> ?executor:Executor.t -> (Runtime.ctx -> unit) -> (unit, divergence) result
(** {!deterministic}, but a failure names the first diverging run instead of
    collapsing to [false] — the starting point for a hazard hunt with
    [Sm_check.Detsan], which explains {e why} a program can diverge. *)

val cross_scheduler : ?timeout_s:float -> ?runs:int -> ?executor:Executor.t -> (Runtime.ctx -> unit) -> bool
(** The strongest oracle: the program must digest identically across
    repeated {e threaded} runs {b and} match the {e cooperative} scheduler's
    digest — determinism independent of scheduling technology, the paper's
    "regardless of the number of cores" taken to its limit.  The program
    must not block the OS thread (no [Thread.delay]) or it will stall the
    cooperative runs; pass [timeout_s] to turn that stall into a
    {!Timeout} with a diagnostic (the stuck worker thread is abandoned, not
    killed — threads are not cancellable). *)
