(** Task execution substrate: a pool of domains, one thread per task.

    The paper notes "tasks may also be scheduled to be executed on a pool of
    threads".  Two constraints shape this executor:

    - Tasks block (in [Sync] and in the [Merge] family), so a task must never
      hold a pool worker while parked — each task gets its own {e thread}.
    - OCaml 5 parallelism comes from {e domains}, which are too heavy to give
      one to each task (and capped by the runtime).

    So the executor spawns a small fixed set of domains and creates the
    per-task threads {e inside} them, round-robin: blocked threads park
    without stalling their domain, and runnable threads across domains run in
    parallel.  Determinism never depends on the schedule — that is the whole
    point of Spawn/Merge — so the assignment policy is a pure throughput
    knob. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to [max 1 (Domain.recommended_domain_count () - 1)]
    (the main thread's domain does the root task's work).
    @raise Invalid_argument if [domains < 1]. *)

val submit : t -> (unit -> unit) -> unit
(** Run a job on a fresh thread on the next domain.  The job must not raise
    (task bodies are wrapped by the runtime).
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Stop accepting jobs, wait for every submitted job's thread, then join
    the domains.  Callers must ensure all jobs have logically finished
    (the Spawn/Merge tree guarantees this: a task retires only after all its
    children have). *)

val domain_count : t -> int
