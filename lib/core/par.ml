exception Worker_failure of int * exn

let m_chunk_tasks = Sm_obs.Metrics.counter "par.chunk_tasks"
let h_par_ns = Sm_obs.Metrics.histogram "par.region_ns"

(* Every Par combinator runs inside a named span on the calling task, so
   traces show data-parallel regions as one slice over their fork/join. *)
let par_span ctx name ~items f =
  Sm_obs.Span.with_ ~hist:h_par_ns
    ~args:[ ("items", Sm_obs.Event.I items) ]
    ~task:(Runtime.task_name ctx) ~task_id:(Runtime.task_id ctx) name f

(* Split [0..n-1] into at most [chunks] contiguous ranges. *)
let ranges n chunks =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and extra = n mod chunks in
  let rec go i start acc =
    if i = chunks then List.rev acc
    else
      let len = base + if i < extra then 1 else 0 in
      go (i + 1) (start + len) ((start, len) :: acc)
  in
  if n = 0 then [] else go 0 0 []

(* Core fork/join: fill [slots] (one owner per index) with chunked children,
   join deterministically, surface the lowest-index failure. *)
let run_chunks ?(chunks = 8) ctx n ~(compute : int -> unit) =
  par_span ctx "par.chunks" ~items:n @@ fun () ->
  let failures : (int * exn) option array = Array.make (max 1 chunks) None in
  let rs = ranges n chunks in
  Sm_obs.Metrics.add m_chunk_tasks (List.length rs);
  let handles =
    List.mapi
      (fun chunk_idx (start, len) ->
        Runtime.spawn ctx (fun _child ->
            let rec go i =
              if i < start + len then
                match compute i with
                | () -> go (i + 1)
                | exception e -> failures.(chunk_idx) <- Some (i, e)
            in
            go start))
      rs
  in
  Runtime.merge_all_from_set ctx handles;
  Array.iter
    (function
      | Some (index, e) -> raise (Worker_failure (index, e))
      | None -> ())
    failures

let mapi ?chunks ctx f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let out = Array.make n None in
  run_chunks ?chunks ctx n ~compute:(fun i -> out.(i) <- Some (f i input.(i)));
  Array.to_list out
  |> List.map (function Some v -> v | None -> assert false (* every slot written or raised *))

let map ?chunks ctx f xs = mapi ?chunks ctx (fun _ x -> f x) xs
let iter ?chunks ctx f xs = ignore (map ?chunks ctx f xs)

let reduce ?(chunks = 8) ctx ~map:f ~combine ~init xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  par_span ctx "par.reduce" ~items:n @@ fun () ->
  let rs = ranges n chunks in
  let partials : 'b option array = Array.make (max 1 (List.length rs)) None in
  let failures : (int * exn) option array = Array.make (max 1 (List.length rs)) None in
  let handles =
    List.mapi
      (fun chunk_idx (start, len) ->
        Runtime.spawn ctx (fun _child ->
            let acc = ref None in
            let rec go i =
              if i = start + len then partials.(chunk_idx) <- !acc
              else
                match f input.(i) with
                | v ->
                  acc := Some (match !acc with None -> v | Some a -> combine a v);
                  go (i + 1)
                | exception e -> failures.(chunk_idx) <- Some (i, e)
            in
            go start))
      rs
  in
  Runtime.merge_all_from_set ctx handles;
  Array.iter
    (function Some (index, e) -> raise (Worker_failure (index, e)) | None -> ())
    failures;
  Array.fold_left
    (fun acc -> function Some v -> combine acc v | None -> acc)
    init partials

let both ctx fa fb =
  par_span ctx "par.both" ~items:2 @@ fun () ->
  let a = ref None and b = ref None in
  let ha = Runtime.spawn ctx (fun _ -> a := Some (fa ())) in
  let hb = Runtime.spawn ctx (fun _ -> b := Some (fb ())) in
  Runtime.merge_all_from_set ctx [ ha; hb ];
  match (!a, !b, Runtime.error ha, Runtime.error hb) with
  | Some va, Some vb, _, _ -> (va, vb)
  | None, _, Some e, _ -> raise (Worker_failure (0, e))
  | _, None, _, Some e -> raise (Worker_failure (1, e))
  | _ -> assert false

let tabulate ?chunks ctx n f =
  if n < 0 then invalid_arg "Par.tabulate: negative length";
  let out = Array.make (max 1 n) None in
  run_chunks ?chunks ctx n ~compute:(fun i -> out.(i) <- Some (f i));
  List.init n (fun i -> match out.(i) with Some v -> v | None -> assert false)
