(** Semaphores built from Spawn and Merge alone — the paper's Section IV.A
    expressiveness construction.

    A semaphore is a mergeable list [L]: its first element is the semaphore
    value, the rest are ids of tasks waiting on it.  To acquire, a worker
    appends its id and calls [Sync] twice — the first sync delivers the
    request to the parent, the second parks the worker until the parent
    grants.  The parent loops on [merge_any_from_set S]: after each merge it
    scans every [L], increments values for release entries (negative ids),
    grants waiting requests FIFO while the value is positive (re-admitting
    the granted worker to [S]), and evicts denied waiters from [S] so they
    stay parked.  To release, a worker appends its negated id and syncs
    once.

    "While this procedure is inefficient and cumbersome, it shows that we
    can achieve the same parallel execution that a semaphore-based system
    can realize" — this module is the runnable proof, and the test suite
    measures that at most [value] workers ever overlap in a critical
    section.

    When a semaphore program deadlocks, its Spawn/Merge simulation does not:
    every blocked worker leaves [S], the parent's [merge_any_from_set]
    returns [None] on the (effectively) empty set, and the manager reports
    {!outcome.All_blocked} instead of hanging — the observable form of the
    paper's "the simulation livelocks where the original deadlocks". *)

type outcome =
  | Completed  (** every worker ran to completion *)
  | All_blocked
      (** live workers remain but none can ever be granted — the semaphore
          program this system simulates has deadlocked *)

type ops =
  { acquire : int -> unit  (** [acquire s]: block until semaphore [s] is granted *)
  ; release : int -> unit  (** [release s]: release one unit of semaphore [s] *)
  ; worker_id : int  (** this worker's positive id (1-based) *)
  }

val run_system :
  ?domains:int -> ?executor:Executor.t -> values:int array -> (ops -> unit) list -> outcome
(** [run_system ~values workers] runs the workers concurrently against semaphores with initial [values].
    Workers may interleave acquires and releases of any semaphore index;
    each worker must balance its own acquires with releases or hold
    forever.  Returns when all workers completed or when the system is
    detected blocked.
    @raise Invalid_argument on an out-of-range semaphore index (raised
    inside the offending worker, failing that task). *)
