(** Deterministic structured parallelism on top of Spawn and Merge.

    The paper's Section VI wants to "reason about the generality ... for
    further interesting use cases like scientific computing"; these
    combinators are that use case.  Each call spawns child tasks for chunks
    of the input and joins them with a deterministic merge, so results are
    always assembled in input order — [reduce] is deterministic even for
    non-commutative, non-associative combine functions, because the
    combine sequence is fixed by the program, not the schedule.

    Results travel through single-writer slots (each child owns a disjoint
    range) and become visible at the merge join, so no locks and no races —
    the same discipline the runtime's workspaces enforce, specialized to
    fork/join shapes.  Exceptions inside [f] fail only that child; the
    combinator re-raises the {e lowest-indexed} failure, again
    deterministically. *)

exception Worker_failure of int * exn
(** [(input index, original exception)] of the first (lowest-index) failing
    element. *)

val map : ?chunks:int -> Runtime.ctx -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map, results in input order.  [chunks] bounds the number of
    child tasks (default 8).
    @raise Worker_failure if [f] raised. *)

val mapi : ?chunks:int -> Runtime.ctx -> (int -> 'a -> 'b) -> 'a list -> 'b list

val iter : ?chunks:int -> Runtime.ctx -> ('a -> unit) -> 'a list -> unit
(** Parallel iteration for element-local effects (e.g. filling caller-owned
    disjoint slots).  Effects on shared structures must go through the
    workspace as usual. *)

val reduce :
  ?chunks:int -> Runtime.ctx -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a list -> 'b
(** [reduce ctx ~map ~combine ~init xs] maps in parallel and folds the
    chunk results left-to-right in input order:
    [combine (... (combine init r0) ...) rn]. *)

val both : Runtime.ctx -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two computations in parallel tasks; deterministic pairing. *)

val tabulate : ?chunks:int -> Runtime.ctx -> int -> (int -> 'a) -> 'a list
(** [tabulate ctx n f] is [List.init n f] with parallel chunks.
    @raise Invalid_argument on negative [n]. *)
