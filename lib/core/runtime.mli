(** Spawn and Merge: deterministic synchronization of concurrent tasks.

    The paper's programming model, transliterated from its GO-like pseudo
    language:

    - {!run} executes a root task.
    - {!spawn} creates a child task with a {e copy} of the parent's mergeable
      data (its {!Sm_mergeable.Workspace.t}); parent and child then execute
      concurrently with no shared mutable state and no locks.
    - The {b Merge} family folds children's recorded operations back into the
      parent via operational transformation: {!merge_all} and
      {!merge_all_from_set} are deterministic (creation order / argument
      order); {!merge_any} and {!merge_any_from_set} introduce
      non-determinism explicitly, for workloads with inherently
      non-deterministic input (servers, interactive programs).
    - {!sync} lets a {e running} child merge with its parent and continue on
      a fresh copy — equivalent to completing and being respawned, but
      without tearing the task down.
    - {!clone} lets a child create a sibling (the blocking-accept pattern).
    - {!abort} marks a child so its changes are discarded at merge time; a
      child that raises is treated the same way.
    - A [?validate] post-condition on any merge turns it into a transaction:
      when validation of the child's data fails, the merge is skipped —
      rollback without aborts, unlike transactional memory there is no
      conflict-triggered retry.

    Programs that use only deterministic merges produce identical results on
    every run and any number of cores; see {!Detcheck}.  Deadlocks are
    impossible by construction: the only waits are parent-waits-for-child
    (merge) and child-waits-for-parent (sync), and the task graph is a tree —
    when both ends of one edge wait for each other, the merge fires and
    unblocks both (Section IV.B of the paper). *)

type ctx
(** A task's identity, held by its own body: gives access to the task's
    workspace and names it as the parent of the tasks it spawns.  Every
    function below taking a [ctx] must be called from the task that owns it. *)

type handle
(** A parent's reference to one of its children. *)

type merge_error =
  | Validation_failed  (** the [?validate] post-condition rejected the child's data *)
  | Aborted  (** the parent externally {!abort}ed this task *)

type status =
  | Running
  | Sync_waiting  (** parked in {!sync}, waiting for the parent to merge *)
  | Completed  (** body returned; waiting to be merged and retired *)
  | Failed  (** body raised; its changes will be discarded *)
  | Retired  (** merged for the last time; no longer a child *)

exception Not_a_child of string
(** Raised when a merge/abort names a handle that is not (or no longer) a
    child of the calling task. *)

(** Merge-choice traces: record which child every [merge_any] /
    [merge_any_from_set] picked, then replay the run with those choices
    forced.  The paper sells determinism as a debugging aid — "a bug will
    not appear only in some executions of a program"; traces extend that to
    programs that opted into non-determinism: record a failing run once,
    then reproduce it at will.

    Tasks are identified by their hierarchical names, so replay requires the
    task tree itself to be reproducible (spawns from deterministic code —
    true unless clones race, in which case record/replay of the clone
    pattern is out of scope).  A replayed [merge_any] waits for the specific
    recorded child; when a trace runs out, execution continues untraced. *)
module Trace : sig
  type t

  val create : unit -> t
  (** An empty trace to record into. *)

  val length : t -> int
  (** Number of recorded choices. *)

  val encode : t -> string
  (** Serialize (for storing next to a bug report). *)

  val decode : string -> t
  (** @raise Sm_util.Codec.Decode_error on malformed input. *)
end

val run :
  ?domains:int ->
  ?executor:Executor.t ->
  ?record:Trace.t ->
  ?replay:Trace.t ->
  (ctx -> 'a) ->
  'a
(** Execute a root task.  When the body returns, implicit {!merge_all}s
    retire any remaining children (the paper: "whenever a task that still
    has running child tasks finishes, MergeAll is called implicitly").
    Re-raises the body's exception after draining children.

    By default a fresh {!Executor} is created ([domains] sizes it) and shut
    down afterwards; tearing down a domain that hosted threads costs one
    systhreads tick (~50 ms), so callers running many programs — the
    benchmark harness, the determinism oracle — should create one executor
    and pass it as [executor], which [run] will then {e not} shut down. *)

(** A cooperative, single-threaded scheduler for the same runtime API.

    [Coop.run body] executes the whole task tree on the calling thread using
    OCaml effects: tasks run until they would block (in [sync] or a merge
    wait), then yield to a deterministic FIFO of runnable tasks.  Every
    primitive — [spawn], [sync], the merge family, [clone], [abort],
    [Par.map], ... — works unchanged on a [Coop] context.

    Because the schedule itself is deterministic, {e even [merge_any]}
    becomes reproducible under [Coop]: run a non-deterministic program
    cooperatively to debug it, then ship it on the parallel scheduler.  The
    flip side is cooperation: a task that blocks the OS thread (e.g.
    [Thread.delay], blocking I/O) stalls everyone, and there is no
    parallel speedup. *)
module Coop : sig
  val run : ?record:Trace.t -> ?replay:Trace.t -> (ctx -> 'a) -> 'a
end

val workspace : ctx -> Sm_mergeable.Workspace.t
(** The task's private mergeable data.  Initialize values here (root task),
    read and update them from the owning task only. *)

val spawn : ctx -> (ctx -> unit) -> handle
(** Create and start a child task on a copy of the caller's workspace. *)

val clone : ctx -> (ctx -> unit) -> handle
(** Create a {e sibling} of the calling task (a new child of its parent),
    seeded with a copy of the caller's data and base.  The caller must be
    pristine — no unmerged local operations — which is the natural state of
    an accept-loop task; the sibling typically calls {!sync} first to fetch
    fresh data (Listing 3).
    @raise Invalid_argument from the root task or with unmerged local ops. *)

val sync : ctx -> (unit, merge_error) result
(** Park until the parent merges this task (any merge flavor reaches it),
    then continue on a fresh copy of the parent's data.  [Error] means the
    merge was refused (validation failure or external abort) — the task
    still continues on a fresh copy and decides itself whether to retry,
    compensate, or raise.
    @raise Invalid_argument from the root task. *)

val merge_all : ?validate:(Sm_mergeable.Workspace.t -> bool) -> ctx -> unit
(** Wait until {e every} child is mergeable (completed, failed, or parked in
    sync), then merge them in creation order — deterministic.  Completed and
    failed children retire; sync-parked children resume on fresh copies. *)

val merge_all_from_set :
  ?validate:(Sm_mergeable.Workspace.t -> bool) -> ctx -> handle list -> unit
(** As {!merge_all} but for the given children, merged in {e argument}
    order — deterministic.  Retired handles are skipped.
    @raise Not_a_child on a handle from a different parent. *)

val merge_any : ?validate:(Sm_mergeable.Workspace.t -> bool) -> ctx -> handle option
(** Wait for the {e first} child to become mergeable and merge just that one
    — explicitly non-deterministic.  [None] when the task has no children
    (never blocks on nothing, Section IV.B).  Returns the merged child. *)

val merge_any_from_set :
  ?validate:(Sm_mergeable.Workspace.t -> bool) -> ctx -> handle list -> handle option
(** As {!merge_any} within the given set.  [None] when the set holds no
    live children — the deadlocked-semaphore simulation relies on
    [merge_any_from_set ctx \[\] = None] returning immediately. *)

val abort : ctx -> handle -> unit
(** Mark a child externally aborted: its changes will be discarded at every
    subsequent merge and its [sync] returns [Error Aborted].  Does not stop
    the task (most systems cannot kill threads gracefully; Section II.F).
    @raise Not_a_child on a handle from a different parent. *)

val status : handle -> status

val error : handle -> exn option
(** The exception that failed the task, once it has failed. *)

val has_children : ctx -> bool

val task_name : ctx -> string
(** Hierarchical name, e.g. ["root/2/0"] — stable across runs for
    deterministically spawned tasks. *)

val handle_name : handle -> string

val task_id : ctx -> int
(** Process-unique numeric id — allocation-ordered, so {e not} stable across
    runs; use {!task_name} for deterministic identity.  This is the id
    {!Sm_obs} events carry and Chrome traces use as the thread lane. *)

val handle_id : handle -> int

(** Observation points for the determinism sanitizer (DetSan, in
    [Sm_check.Detsan]) — hooked through the runtime the same way {!Sm_obs}
    tracing is: every site is a single load + branch while nothing is
    installed, and the runtime attaches no policy to what a listener does.
    At most one listener at a time (a second {!install} replaces the
    first). *)
module Sanitizer_hook : sig
  type event =
    | Nondet_merge of { task : string; prim : string }
        (** [task] called {!merge_any} / {!merge_any_from_set} ([prim]) —
            explicit non-determinism; any digest downstream depends on
            scheduling *)
    | Task_started of { task : string }  (** a root/spawned/cloned task began *)
    | Task_finished of { task : string; unmerged : string list }
        (** [task]'s body returned; [unmerged] are children left for the
            implicit MergeAll (empty when the body raised — those children
            are drained and discarded) *)

  val install : (event -> unit) -> unit
  val uninstall : unit -> unit

  val active : unit -> bool
  (** A listener is installed (e.g. asserting hook hygiene in tests). *)
end
