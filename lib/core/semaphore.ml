module Ws = Sm_mergeable.Workspace

module Mlist_int = Sm_mergeable.Mlist.Make (struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end)

type outcome =
  | Completed
  | All_blocked

type ops =
  { acquire : int -> unit
  ; release : int -> unit
  ; worker_id : int
  }

(* Raised inside a worker when the manager tore the system down (detected
   All_blocked and aborted the stragglers): the worker must not proceed as if
   its acquire had been granted. *)
exception Torn_down

(* Worker-side protocol (Section IV.A): append the request to L, then Sync
   twice (deliver, then park-until-granted); release appends -id and syncs
   once. *)
let make_ops ctx l_keys ~worker_id =
  let check s =
    if s < 0 || s >= Array.length l_keys then
      invalid_arg (Printf.sprintf "Semaphore: no semaphore %d" s)
  in
  let sync_or_raise () =
    match Runtime.sync ctx with
    | Ok () -> ()
    | Error (Runtime.Aborted | Runtime.Validation_failed) -> raise Torn_down
  in
  let acquire s =
    check s;
    Mlist_int.append (Runtime.workspace ctx) l_keys.(s) worker_id;
    sync_or_raise ();
    sync_or_raise ()
  and release s =
    check s;
    Mlist_int.append (Runtime.workspace ctx) l_keys.(s) (-worker_id);
    sync_or_raise ()
  in
  { acquire; release; worker_id }

let run_system ?domains ?executor ~values workers =
  Runtime.run ?domains ?executor (fun root ->
      let ws = Runtime.workspace root in
      let l_keys =
        Array.mapi
          (fun s value ->
            let k = Mlist_int.key ~name:(Printf.sprintf "semaphore-%d" s) in
            Ws.init ws k [ value ];
            k)
          values
      in
      let handles =
        List.mapi
          (fun i worker ->
            Runtime.spawn root (fun ctx -> worker (make_ops ctx l_keys ~worker_id:(i + 1))))
          workers
      in
      let handle_of = Hashtbl.create 16 in
      List.iteri (fun i h -> Hashtbl.replace handle_of (i + 1) h) handles;
      (* S starts as all children; denied waiters leave, granted ones return. *)
      let s_members = ref handles in
      let in_s h = List.memq h !s_members in
      let add_s h = if not (in_s h) then s_members := !s_members @ [ h ] in
      let remove_s h = s_members := List.filter (fun x -> x != h) !s_members in
      (* One pass over semaphore [s]: bump the value for releases, then grant
         FIFO while the value lasts; denied waiters are evicted from S. *)
      let process s =
        let k = l_keys.(s) in
        let remove_entry x =
          match Mlist_int.get ws k with
          | value :: tail ->
            (* Index 0 holds the value; waiters are unique, so the first
               occurrence in the tail is the entry. *)
            let rec index i = function
              | [] -> None
              | y :: rest -> if y = x then Some i else index (i + 1) rest
            in
            (match index 1 tail with
            | Some i -> Mlist_int.delete ws k i
            | None -> ());
            ignore value
          | [] -> ()
        in
        let set_value v = Mlist_int.set ws k 0 v in
        (match Mlist_int.get ws k with
        | value :: tail ->
          let releases = List.filter (fun x -> x < 0) tail in
          List.iter remove_entry releases;
          let value = value + List.length releases in
          set_value value;
          let waiters = List.filter (fun x -> x > 0) tail in
          let grant value id =
            let h = Hashtbl.find handle_of id in
            if value > 0 then begin
              remove_entry id;
              set_value (value - 1);
              add_s h;
              value - 1
            end
            else begin
              remove_s h;
              value
            end
          in
          ignore (List.fold_left grant value waiters)
        | [] -> ())
      in
      let rec loop () =
        match Runtime.merge_any_from_set root !s_members with
        | None ->
          if Runtime.has_children root then begin
            (* Deadlock-equivalent state: every live worker is parked outside
               S.  Abort them so the implicit final MergeAll unblocks each
               with an error (their acquire raises) instead of a spurious
               grant, then report. *)
            List.iter
              (fun h -> if Runtime.status h <> Runtime.Retired then Runtime.abort root h)
              handles;
            All_blocked
          end
          else Completed
        | Some h ->
          if Runtime.status h = Runtime.Retired then remove_s h;
          Array.iteri (fun s _ -> process s) l_keys;
          loop ()
      in
      loop ())
