module Ws = Sm_mergeable.Workspace
module Obs = Sm_obs
module E = Sm_obs.Event

(* Debug tracing: silent unless the application enables a Logs reporter and
   sets the level of the "sm.runtime" source to Debug. *)
let log_src = Logs.Src.create "sm.runtime" ~doc:"Spawn/Merge runtime events"

module Log = (val Logs.src_log log_src)

(* Structured observability (see Sm_obs): every lifecycle edge below emits an
   event when the verbosity gate is open, and feeds counters/histograms when
   metrics are enabled.  Both gates default to off, leaving one load+branch
   per site. *)
let m_spawns = Obs.Metrics.counter "runtime.spawns"
let m_clones = Obs.Metrics.counter "runtime.clones"
let m_merged_children = Obs.Metrics.counter "runtime.merged_children"
let m_ops_merged = Obs.Metrics.counter "runtime.ops_merged"
let m_syncs = Obs.Metrics.counter "runtime.syncs"
let m_aborts = Obs.Metrics.counter "runtime.aborts"
let m_validation_fails = Obs.Metrics.counter "runtime.validation_failures"
let h_merge_ns = Obs.Metrics.histogram "runtime.merge_ns"
let h_sync_wait_ns = Obs.Metrics.histogram "runtime.sync_wait_ns"
let h_ws_copy_ns = Obs.Metrics.histogram "runtime.ws_copy_ns"

type merge_error =
  | Validation_failed
  | Aborted

type status =
  | Running
  | Sync_waiting
  | Completed
  | Failed
  | Retired

module Trace = struct
  (* (caller task name, merged child name) in choice order.  Small (one entry
     per merge_any), so list append is fine. *)
  type t = { mutable events : (string * string) list }

  let create () = { events = [] }
  let length t = List.length t.events

  let codec = Sm_util.Codec.(list (pair string string))

  let encode t = Sm_util.Codec.encode codec t.events
  let decode s = { events = Sm_util.Codec.decode codec s }
  let record t ~caller ~child = t.events <- t.events @ [ (caller, child) ]

  (* First recorded choice made by [caller], consuming it. *)
  let take t ~caller =
    let rec go acc = function
      | [] -> None
      | (c, child) :: rest when String.equal c caller ->
        t.events <- List.rev_append acc rest;
        Some child
      | e :: rest -> go (e :: acc) rest
    in
    go [] t.events
end

exception Not_a_child of string

(* Determinism-sanitizer observation points, gated exactly like the Sm_obs
   emits above: one load + branch per site while nothing is installed.  The
   listener (Sm_check.Detsan) turns these into hazard reports; the runtime
   itself attaches no policy. *)
module Sanitizer_hook = struct
  type event =
    | Nondet_merge of { task : string; prim : string }
    | Task_started of { task : string }
    | Task_finished of { task : string; unmerged : string list }

  let hook : (event -> unit) option ref = ref None
  let install f = hook := Some f
  let uninstall () = hook := None
  let emit ev = match !hook with None -> () | Some f -> f ev
  let active () = !hook <> None
end

(* The scheduler a runtime instance runs on.  The threaded instantiation
   maps these to an Executor plus one Mutex/Condition pair; the cooperative
   instantiation (module Coop below) to an effects-based run queue with
   no-op locking.  All runtime semantics above this line are shared. *)
type sched =
  { fork : (unit -> unit) -> unit  (** start a task body *)
  ; lock : unit -> unit  (** enter the task-tree critical section *)
  ; unlock : unit -> unit
  ; wait : unit -> unit  (** release, wait for a state change, reacquire *)
  ; broadcast : unit -> unit  (** wake every waiter *)
  }

type rt =
  { sched : sched
  ; record : Trace.t option  (** append each merge_any choice here *)
  ; replay : Trace.t option  (** force merge_any choices from here *)
  }

type task =
  { id : int
  ; name : string
  ; parent : task option
  ; rt : rt
  ; ws : Ws.t
  ; mutable base : Ws.Versions.t  (** parent's versions at spawn / last sync *)
  ; mutable state : status
  ; mutable children : task list  (** creation order; retired children removed *)
  ; mutable child_counter : int
  ; mutable abort_requested : bool
  ; mutable failure : exn option
  ; mutable sync_outcome : (unit, merge_error) result option
  }

type ctx = task
type handle = task

let next_task_id = Atomic.make 1

let with_lock rt f =
  rt.sched.lock ();
  Fun.protect ~finally:rt.sched.unlock f

(* A child the parent can merge right now: parked in sync, or done. *)
let ready c = match c.state with Sync_waiting | Completed | Failed -> true | Running | Retired -> false

(* --- task creation -------------------------------------------------------- *)

let make_child ?(obs_kind = E.Spawn) ?(copy_bytes = 0) parent ~ws ~base =
  let index = parent.child_counter in
  parent.child_counter <- index + 1;
  let child =
    { id = Atomic.fetch_and_add next_task_id 1
    ; name = Printf.sprintf "%s/%d" parent.name index
    ; parent = Some parent
    ; rt = parent.rt
    ; ws
    ; base
    ; state = Running
    ; children = []
    ; child_counter = 0
    ; abort_requested = false
    ; failure = None
    ; sync_outcome = None
    }
  in
  parent.children <- parent.children @ [ child ];
  parent.rt.sched.broadcast ();
  Log.debug (fun m -> m "spawn %s (child of %s)" child.name parent.name);
  if Sanitizer_hook.active () then
    Sanitizer_hook.emit (Sanitizer_hook.Task_started { task = child.name });
  if Obs.on Obs.Info then begin
    (* spawn-cost attribution rides at Debug: how many cells the share
       touched, and how many bytes it deep-copied (0 under COW) *)
    let cost_args =
      if Obs.on Obs.Debug then
        [ ("ws_cells", E.I (Ws.cell_count ws)); ("copy_bytes", E.I copy_bytes) ]
      else []
    in
    Obs.emit
      (E.make ~task:parent.name ~task_id:parent.id
         ~args:(("child", E.S child.name) :: ("child_id", E.I child.id) :: cost_args)
         obs_kind);
    Obs.emit
      (E.make ~task:child.name ~task_id:child.id ~args:[ ("parent", E.S parent.name) ] E.Task_start)
  end;
  child

(* --- merging (lock held) -------------------------------------------------- *)

(* Merge one ready child: fold its journal into the parent via OT (unless
   refused), then resume it (sync) or retire it (completed/failed).  The
   global lock is held throughout, so the batch of merges a merge_all
   performs is atomic with respect to every other task. *)
let merge_child_locked ctx ~validate child =
  let refusal =
    match child.state with
    | Failed -> Some Aborted
    | Sync_waiting | Completed ->
      if child.abort_requested then Some Aborted
      else if validate child.ws then None
      else Some Validation_failed
    | Running | Retired -> assert false
  in
  Log.debug (fun m ->
      m "merge %s: %s%s" child.name
        (match child.state with
        | Sync_waiting -> "sync"
        | Completed -> "completed"
        | Failed -> "failed"
        | Running | Retired -> "?")
        (match refusal with
        | None -> ""
        | Some Aborted -> " (discarded: aborted)"
        | Some Validation_failed -> " (discarded: validation failed)"));
  (* Per-merge accounting: journal length folded in, and the OT transform
     calls it took (a delta on the global counter — sound because the runtime
     lock serializes merges; concurrent *other* runtimes in the process can
     inflate it, which profiling runs avoid by running one workload). *)
  let detail = Obs.on Obs.Debug in
  let metered = detail || Obs.Metrics.is_enabled () in
  let ops = if metered && refusal = None then Ws.op_count child.ws else 0 in
  let transforms_before = if metered then Obs.Metrics.value Sm_ot.Control.transform_calls else 0 in
  let compact_in_before = if metered then Obs.Metrics.value Sm_ot.Control.compact_in else 0 in
  let compact_out_before = if metered then Obs.Metrics.value Sm_ot.Control.compact_out else 0 in
  (match refusal with
  | None -> Ws.merge_child ~parent:ctx.ws ~child:child.ws ~base:child.base
  | Some _ -> ());
  if metered then begin
    Obs.Metrics.incr m_merged_children;
    Obs.Metrics.add m_ops_merged ops
  end;
  if detail then begin
    let transforms = Obs.Metrics.value Sm_ot.Control.transform_calls - transforms_before in
    let compact_in = Obs.Metrics.value Sm_ot.Control.compact_in - compact_in_before in
    let compact_out = Obs.Metrics.value Sm_ot.Control.compact_out - compact_out_before in
    let outcome =
      match refusal with
      | None -> "merged"
      | Some Aborted -> "aborted"
      | Some Validation_failed -> "validation_failed"
    in
    Obs.emit
      (E.make ~task:ctx.name ~task_id:ctx.id
         ~args:
           [ ("child", E.S child.name)
           ; ("ops", E.I ops)
           ; ("transforms", E.I transforms)
           ; ("compact_in", E.I compact_in)
           ; ("compact_out", E.I compact_out)
           ; ("outcome", E.S outcome)
           ]
         E.Merge_child)
  end;
  (match refusal with
  | Some Validation_failed ->
    Obs.Metrics.incr m_validation_fails;
    if Obs.on Obs.Error then
      Obs.emit
        (E.make ~task:ctx.name ~task_id:ctx.id ~args:[ ("child", E.S child.name) ]
           E.Validation_fail)
  | Some Aborted | None -> ());
  (match child.state with
  | Sync_waiting ->
    Ws.rebase_from child.ws ~parent:ctx.ws;
    child.base <- Ws.snapshot ctx.ws;
    child.sync_outcome <- Some (match refusal with None -> Ok () | Some e -> Error e);
    child.state <- Running
  | Completed | Failed ->
    let status = match child.state with Failed -> "failed" | _ -> "ok" in
    child.state <- Retired;
    ctx.children <- List.filter (fun c -> c != child) ctx.children;
    if Obs.on Obs.Info then
      Obs.emit
        (E.make ~task:child.name ~task_id:child.id ~args:[ ("status", E.S status) ] E.Task_end)
  | Running | Retired -> assert false);
  ctx.rt.sched.broadcast ()

(* Journal prefixes no live child can still need are dead weight; drop them
   after every merge batch.  Only the root may truncate: every other task's
   journal is itself pending state its own parent will merge. *)
let truncate_locked ctx =
  match ctx.parent with
  | None -> Ws.truncate_to_min ctx.ws ~bases:(List.map (fun c -> c.base) ctx.children)
  | Some _ -> ()

let default_validate _ = true

(* Bracket one merge-family call: a Merge_begin/Merge_end span (so traces
   show merge wait time, i.e. how long the parent sat blocked on children)
   plus a latency sample.  Events carry no duration — sinks derive it from
   the two timestamps, keeping event *structure* deterministic. *)
let instrumented_merge ctx kind f =
  let detail = Obs.on Obs.Debug in
  let timed = Obs.Metrics.is_enabled () in
  if not (detail || timed) then f ()
  else begin
    if detail then
      Obs.emit (E.make ~task:ctx.name ~task_id:ctx.id ~args:[ ("kind", E.S kind) ] E.Merge_begin);
    let t0 = if timed then Obs.Clock.now_ns () else 0 in
    Fun.protect
      ~finally:(fun () ->
        if timed then Obs.Metrics.observe_ns h_merge_ns ~since:t0;
        if detail then
          Obs.emit (E.make ~task:ctx.name ~task_id:ctx.id ~args:[ ("kind", E.S kind) ] E.Merge_end))
      f
  end

let check_child ctx h =
  match h.parent with
  | Some p when p == ctx -> ()
  | Some _ | None -> raise (Not_a_child h.name)

let merge_all ?(validate = default_validate) ctx =
  instrumented_merge ctx "merge_all" (fun () ->
      with_lock ctx.rt (fun () ->
          let rec wait () =
            if List.for_all ready ctx.children then ()
            else begin
              ctx.rt.sched.wait ();
              wait ()
            end
          in
          wait ();
          List.iter (merge_child_locked ctx ~validate) ctx.children;
          truncate_locked ctx))

(* The replayed variant of a merge_any-style wait: hold out for the child
   the trace names.  If every child retires without it appearing the trace
   has diverged from the program; fall back to [None]. *)
let merge_target_locked ctx ~validate ~candidates target =
  let rec wait () =
    match candidates () with
    | [] -> None
    | children -> (
      match List.find_opt (fun c -> String.equal c.name target && ready c) children with
      | Some h ->
        merge_child_locked ctx ~validate h;
        truncate_locked ctx;
        Some h
      | None ->
        ctx.rt.sched.wait ();
        wait ())
  in
  wait ()

let record_choice ctx h =
  match ctx.rt.record with
  | Some trace -> Trace.record trace ~caller:ctx.name ~child:h.name
  | None -> ()

let replayed_choice ctx =
  match ctx.rt.replay with Some trace -> Trace.take trace ~caller:ctx.name | None -> None

(* Physical dedup: passing the same handle twice must not merge it twice. *)
let dedup handles =
  List.fold_left (fun acc h -> if List.memq h acc then acc else h :: acc) [] handles |> List.rev

let merge_all_from_set ?(validate = default_validate) ctx handles =
  instrumented_merge ctx "merge_all_from_set" (fun () ->
      with_lock ctx.rt (fun () ->
          List.iter (check_child ctx) handles;
          let live = List.filter (fun h -> h.state <> Retired) (dedup handles) in
          let rec wait () =
            if List.for_all ready live then ()
            else begin
              ctx.rt.sched.wait ();
              wait ()
            end
          in
          wait ();
          List.iter (merge_child_locked ctx ~validate) live;
          truncate_locked ctx))

let merge_any_from_set ?(validate = default_validate) ctx handles =
  if Sanitizer_hook.active () then
    Sanitizer_hook.emit
      (Sanitizer_hook.Nondet_merge { task = ctx.name; prim = "merge_any_from_set" });
  instrumented_merge ctx "merge_any_from_set" @@ fun () ->
  with_lock ctx.rt (fun () ->
      List.iter (check_child ctx) handles;
      let handles = dedup handles in
      let live () = List.filter (fun h -> h.state <> Retired) handles in
      match replayed_choice ctx with
      | Some target ->
        let result = merge_target_locked ctx ~validate ~candidates:live target in
        (match result with Some h -> record_choice ctx h | None -> ());
        result
      | None ->
        let rec wait () =
          match live () with
          | [] -> None
          | live -> (
            match List.find_opt ready live with
            | Some h ->
              merge_child_locked ctx ~validate h;
              truncate_locked ctx;
              record_choice ctx h;
              Some h
            | None ->
              ctx.rt.sched.wait ();
              wait ())
        in
        wait ())

let merge_any ?(validate = default_validate) ctx =
  if Sanitizer_hook.active () then
    Sanitizer_hook.emit (Sanitizer_hook.Nondet_merge { task = ctx.name; prim = "merge_any" });
  instrumented_merge ctx "merge_any" @@ fun () ->
  with_lock ctx.rt (fun () ->
      match replayed_choice ctx with
      | Some target ->
        let result = merge_target_locked ctx ~validate ~candidates:(fun () -> ctx.children) target in
        (match result with Some h -> record_choice ctx h | None -> ());
        result
      | None ->
        (* Rescan [ctx.children] on every wake-up: children cloned into
           existence while we wait (the accept-loop pattern) must be seen. *)
        let rec wait () =
          match ctx.children with
          | [] -> None
          | children -> (
            match List.find_opt ready children with
            | Some h ->
              merge_child_locked ctx ~validate h;
              truncate_locked ctx;
              record_choice ctx h;
              Some h
            | None ->
              ctx.rt.sched.wait ();
              wait ())
        in
        wait ())

(* --- child-side primitives ------------------------------------------------ *)

let sync ctx =
  (match ctx.parent with
  | None -> invalid_arg "Runtime.sync: the root task has no parent to sync with"
  | Some _ -> ());
  Obs.Metrics.incr m_syncs;
  let detail = Obs.on Obs.Debug in
  let timed = Obs.Metrics.is_enabled () in
  if detail then Obs.emit (E.make ~task:ctx.name ~task_id:ctx.id E.Sync_begin);
  let t0 = if timed then Obs.Clock.now_ns () else 0 in
  let outcome =
    with_lock ctx.rt (fun () ->
        Log.debug (fun m -> m "sync %s: parked" ctx.name);
        ctx.state <- Sync_waiting;
        ctx.rt.sched.broadcast ();
        let rec wait () =
          match ctx.sync_outcome with
          | Some outcome ->
            ctx.sync_outcome <- None;
            outcome
          | None ->
            ctx.rt.sched.wait ();
            wait ()
        in
        wait ())
  in
  if timed then Obs.Metrics.observe_ns h_sync_wait_ns ~since:t0;
  if detail then
    Obs.emit
      (E.make ~task:ctx.name ~task_id:ctx.id
         ~args:
           [ ( "outcome"
             , E.S
                 (match outcome with
                 | Ok () -> "merged"
                 | Error Validation_failed -> "validation_failed"
                 | Error Aborted -> "aborted") )
           ]
         E.Sync_end);
  outcome

(* On failure a task abandons its children: abort them all and keep merging
   (discarding) until each completes.  A sync-looping child sees
   [Error Aborted] and is expected to exit; one that never completes keeps
   its parent alive — the paper's position is that abort must not kill
   threads forcefully. *)
let drain_discarding ctx =
  with_lock ctx.rt (fun () -> List.iter (fun c -> c.abort_requested <- true) ctx.children);
  let rec drain () =
    let remaining = with_lock ctx.rt (fun () -> ctx.children <> []) in
    if remaining then begin
      merge_all ctx;
      drain ()
    end
  in
  drain ()

(* The implicit MergeAll a finishing task owes its children (Section II.D):
   merge repeatedly until none remain — children that keep syncing keep the
   task alive, exactly as a parent looping MergeAll would. *)
let rec merge_until_no_children ctx =
  if with_lock ctx.rt (fun () -> ctx.children <> []) then begin
    merge_all ctx;
    merge_until_no_children ctx
  end

let finalize ctx outcome =
  (match outcome with Ok () -> () | Error _ -> ( try drain_discarding ctx with _ -> ()));
  with_lock ctx.rt (fun () ->
      (match outcome with
      | Ok () -> ctx.state <- Completed
      | Error e ->
        ctx.failure <- Some e;
        ctx.state <- Failed);
      ctx.rt.sched.broadcast ())

(* Sanitizer edge: the body just returned; children still attached at this
   point are merged only by the *implicit* MergeAll — legal, but a hazard for
   programs that are audited for determinism (the merge point is no longer
   visible in the code). *)
let sanitize_body_end ctx =
  if Sanitizer_hook.active () then begin
    let unmerged = with_lock ctx.rt (fun () -> List.map (fun c -> c.name) ctx.children) in
    Sanitizer_hook.emit (Sanitizer_hook.Task_finished { task = ctx.name; unmerged })
  end

let run_task child body =
  let outcome =
    match body child with
    | () ->
      sanitize_body_end child;
      (match merge_until_no_children child with () -> Ok () | exception e -> Error e)
    | exception e ->
      if Sanitizer_hook.active () then
        Sanitizer_hook.emit (Sanitizer_hook.Task_finished { task = child.name; unmerged = [] });
      Error e
  in
  finalize child outcome

(* Share the workspace, timing the share and measuring what it deep-copied
   (always 0 bytes under COW — the counter only advances in the
   [Workspace.set_cow]-off baseline). *)
let timed_copy ws =
  if Obs.Metrics.is_enabled () then begin
    let b0 = Obs.Metrics.value Ws.copy_bytes in
    let t0 = Obs.Clock.now_ns () in
    let copy = Ws.copy ws in
    Obs.Metrics.observe_ns h_ws_copy_ns ~since:t0;
    (copy, Obs.Metrics.value Ws.copy_bytes - b0)
  end
  else (Ws.copy ws, 0)

let spawn ctx body =
  Obs.Metrics.incr m_spawns;
  let child =
    with_lock ctx.rt (fun () ->
        let ws, copy_bytes = timed_copy ctx.ws in
        make_child ctx ~ws ~copy_bytes ~base:(Ws.snapshot ctx.ws))
  in
  ctx.rt.sched.fork (fun () -> run_task child body);
  child

let clone ctx body =
  match ctx.parent with
  | None -> invalid_arg "Runtime.clone: the root task cannot clone itself"
  | Some parent ->
    Obs.Metrics.incr m_clones;
    let sibling =
      with_lock ctx.rt (fun () ->
          if not (Ws.is_pristine ctx.ws) then
            invalid_arg "Runtime.clone: cloning task has unmerged local operations";
          let ws, copy_bytes = timed_copy ctx.ws in
          make_child ~obs_kind:E.Clone ~copy_bytes parent ~ws ~base:ctx.base)
    in
    ctx.rt.sched.fork (fun () -> run_task sibling body);
    sibling

let abort ctx h =
  with_lock ctx.rt (fun () ->
      check_child ctx h;
      Log.debug (fun m -> m "abort %s (by %s)" h.name ctx.name);
      Obs.Metrics.incr m_aborts;
      if Obs.on Obs.Info then
        Obs.emit (E.make ~task:ctx.name ~task_id:ctx.id ~args:[ ("child", E.S h.name) ] E.Abort);
      h.abort_requested <- true;
      ctx.rt.sched.broadcast ())

(* --- observers ------------------------------------------------------------ *)

let workspace ctx = ctx.ws
let status h = with_lock h.rt (fun () -> h.state)
let error h = with_lock h.rt (fun () -> h.failure)
let has_children ctx = with_lock ctx.rt (fun () -> ctx.children <> [])
let task_name ctx = ctx.name
let handle_name h = h.name
let task_id ctx = ctx.id
let handle_id h = h.id

(* --- root ------------------------------------------------------------------ *)

(* Roots draw from the same process-wide counter as children so that task
   ids stay unique across sequential [run]s — trace consumers (Trace_model)
   key tasks by id, and a recycled root id would fold separate runs into
   one task. *)
let make_root rt =
  { id = Atomic.fetch_and_add next_task_id 1
  ; name = "root"
  ; parent = None
  ; rt
  ; ws = Ws.create ()
  ; base = Ws.Versions.empty
  ; state = Running
  ; children = []
  ; child_counter = 0
  ; abort_requested = false
  ; failure = None
  ; sync_outcome = None
  }

(* Root body + the implicit final merges + failure draining, with the
   outcome reified so schedulers decide where to re-raise. *)
let run_root root body =
  if Obs.on Obs.Info then Obs.emit (E.make ~task:root.name ~task_id:root.id E.Task_start);
  if Sanitizer_hook.active () then
    Sanitizer_hook.emit (Sanitizer_hook.Task_started { task = root.name });
  let result =
    match body root with
    | v ->
      sanitize_body_end root;
      (match merge_until_no_children root with () -> Ok v | exception e -> Error e)
    | exception e ->
      if Sanitizer_hook.active () then
        Sanitizer_hook.emit (Sanitizer_hook.Task_finished { task = root.name; unmerged = [] });
      Error e
  in
  (match result with Ok _ -> () | Error _ -> ( try drain_discarding root with _ -> ()));
  if Obs.on Obs.Info then
    Obs.emit
      (E.make ~task:root.name ~task_id:root.id
         ~args:[ ("status", E.S (match result with Ok _ -> "ok" | Error _ -> "failed")) ]
         E.Task_end);
  result

let threaded_sched exec =
  let m = Mutex.create () and cv = Condition.create () in
  { fork = (fun f -> Executor.submit exec f)
  ; lock = (fun () -> Mutex.lock m)
  ; unlock = (fun () -> Mutex.unlock m)
  ; wait = (fun () -> Condition.wait cv m)
  ; broadcast = (fun () -> Condition.broadcast cv)
  }

let run ?domains ?executor ?record ?replay body =
  let exec, owns_executor =
    match executor with
    | Some e -> (e, false)
    | None -> (Executor.create ?domains (), true)
  in
  let rt = { sched = threaded_sched exec; record; replay } in
  let result = run_root (make_root rt) body in
  if owns_executor then Executor.shutdown exec;
  match result with Ok v -> v | Error e -> raise e

module Coop = struct
  type _ Effect.t += Yield : unit Effect.t

  (* A FIFO of resumable thunks: deterministic round-robin.  Locking is a
     no-op (single domain, no preemption between effects) and waiting is
     yielding — a waiter re-checks its condition each time it comes around,
     so broadcast has nothing to do. *)
  let run ?record ?replay body =
    let runnable : (unit -> unit) Queue.t = Queue.create () in
    let sched =
      { fork = (fun f -> Queue.add f runnable)
      ; lock = ignore
      ; unlock = ignore
      ; wait = (fun () -> Effect.perform Yield)
      ; broadcast = ignore
      }
    in
    let rt = { sched; record; replay } in
    let root = make_root rt in
    let result = ref None in
    Queue.add (fun () -> result := Some (run_root root body)) runnable;
    let handler =
      { Effect.Deep.retc = Fun.id
      ; exnc = raise
      ; effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Queue.add (fun () -> Effect.Deep.continue k ()) runnable)
            | _ -> None)
      }
    in
    let rec loop () =
      match Queue.take_opt runnable with
      | None -> ()
      | Some thunk ->
        Effect.Deep.match_with thunk () handler;
        loop ()
    in
    loop ();
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None ->
      failwith "Runtime.Coop.run: the root task never completed (livelocked waiters?)"
end
