(** The conventional baseline (Section III): one thread per simulated host,
    each performing a blocking read on its own Mutex/Condition-guarded
    incoming queue, SHA-1 processing, and a push to the destination's queue.

    With [Hash_destination] two hosts can push to the same recipient
    concurrently — the processing order at that recipient is
    timing-dependent, so the {!Workload.report.order_digest} may vary
    between runs: this is the inherent non-determinism the paper's
    Spawn/Merge design removes.  With [Ring_destination] every queue has a
    single producer and the run is deterministic by construction. *)

val run : Workload.config -> Workload.report
(** Execute the simulation to completion (every message's TTL exhausted)
    and report.  Spawns [config.hosts] threads; they all exit before [run]
    returns. *)
