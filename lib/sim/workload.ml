type mode =
  | Hash_destination
  | Ring_destination

type topology =
  | Full
  | Ring_topology
  | Star
  | Grid

type config =
  { hosts : int
  ; messages : int
  ; ttl : int
  ; load : int
  ; mode : mode
  ; topology : topology
  ; seed : int64
  }

let default =
  { hosts = 20
  ; messages = 100
  ; ttl = 100
  ; load = 0
  ; mode = Hash_destination
  ; topology = Full
  ; seed = 1L
  }

(* Forwarding candidates under the topology.  Self-loops are allowed only in
   the degenerate 1-host network. *)
let neighbours c host =
  let n = c.hosts in
  if n = 1 then [ host ]
  else
    match c.topology with
    | Full -> List.filter (fun h -> h <> host) (List.init n Fun.id)
    | Ring_topology ->
      let prev = (host + n - 1) mod n and next = (host + 1) mod n in
      if prev = next then [ next ] else [ prev; next ]
    | Star -> if host = 0 then List.init (n - 1) (fun i -> i + 1) else [ 0 ]
    | Grid ->
      let side = int_of_float (ceil (sqrt (float_of_int n))) in
      let row = host / side and col = host mod side in
      List.filter_map
        (fun (dr, dc) ->
          let r = row + dr and c' = col + dc in
          let h = (r * side) + c' in
          if r >= 0 && c' >= 0 && c' < side && h < n then Some h else None)
        [ (-1, 0); (1, 0); (0, -1); (0, 1) ]

let validate c =
  if c.hosts <= 0 then invalid_arg "Workload: hosts must be positive";
  if c.messages <= 0 then invalid_arg "Workload: messages must be positive";
  if c.ttl <= 0 then invalid_arg "Workload: ttl must be positive";
  if c.load < 0 then invalid_arg "Workload: load must be non-negative"

type message =
  { payload : string
  ; ttl_left : int
  }

let pp_message ppf m =
  Format.fprintf ppf "{ttl=%d payload=%s}" m.ttl_left
    (Sm_util.Fnv.to_hex (Sm_util.Fnv.hash m.payload))

let equal_message a b = a.ttl_left = b.ttl_left && String.equal a.payload b.payload

let initial_messages c =
  validate c;
  let rng = Sm_util.Det_rng.create ~seed:c.seed in
  List.init c.messages (fun i ->
      (i mod c.hosts, { payload = Sm_util.Det_rng.bytes rng ~len:16; ttl_left = c.ttl }))

let total_hops c = c.messages * c.ttl

(* Destination derivation: fold the first 8 payload bytes into a
   non-negative int.  For hash mode the digest of the *worked* payload
   decides, so the destination really costs the configured load. *)
let bytes_to_host s hosts =
  let h = Sm_util.Fnv.hash s in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int hosts))

let process c ~host m =
  let worked = Sm_util.Sha1.iterate m.payload ~times:c.load in
  let next_payload = Sm_util.Sha1.digest worked in
  let destination =
    match c.mode with
    | Hash_destination -> (
      match c.topology with
      | Full -> bytes_to_host next_payload c.hosts
      | Ring_topology | Star | Grid ->
        let candidates = neighbours c host in
        List.nth candidates (bytes_to_host next_payload (List.length candidates)))
    | Ring_destination -> (host + 1) mod c.hosts
  in
  if m.ttl_left <= 1 then (None, destination)
  else (Some { payload = next_payload; ttl_left = m.ttl_left - 1 }, destination)

type report =
  { elapsed_s : float
  ; hops : int
  ; per_host : int array
  ; event_digest : string
  ; order_digest : string
  }

let pp_report ppf r =
  Format.fprintf ppf "hops=%d elapsed=%.3fs events=%s order=%s" r.hops r.elapsed_s r.event_digest
    r.order_digest

module Trace = struct
  type t =
    { counts : int array
    ; unordered : int64 array  (** per-host XOR of event hashes: multiset digest *)
    ; chains : int64 array  (** per-host order-sensitive chain *)
    }

  let create ~hosts =
    { counts = Array.make hosts 0
    ; unordered = Array.make hosts 0L
    ; chains = Array.make hosts (Sm_util.Fnv.hash "chain")
    }

  let record t ~host m =
    let event = Sm_util.Fnv.hash (Printf.sprintf "%d:%d:%s" host m.ttl_left m.payload) in
    t.counts.(host) <- t.counts.(host) + 1;
    t.unordered.(host) <- Int64.logxor t.unordered.(host) event;
    t.chains.(host) <- Sm_util.Fnv.combine t.chains.(host) event

  let finish t ~elapsed_s =
    let fold f init arr =
      (* hosts combined in index order so the aggregate is host-order
         stable *)
      Array.fold_left f init arr
    in
    { elapsed_s
    ; hops = Array.fold_left ( + ) 0 t.counts
    ; per_host = Array.copy t.counts
    ; event_digest = Sm_util.Fnv.to_hex (fold Sm_util.Fnv.combine (Sm_util.Fnv.hash "events") t.unordered)
    ; order_digest = Sm_util.Fnv.to_hex (fold Sm_util.Fnv.combine (Sm_util.Fnv.hash "order") t.chains)
    }
end
