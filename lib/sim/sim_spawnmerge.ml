module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace

module Msg_elt = struct
  type t = Workload.message

  let equal = Workload.equal_message
  let pp = Workload.pp_message
end

module Mq = Sm_mergeable.Mqueue.Make (Msg_elt)
module Mc = Sm_mergeable.Mcounter

let last_cycles = ref 0
let cycles_of_last_run () = !last_cycles

(* Listing 4.  The trace array is written by each host for its own slot only
   and read after the run — observation, not shared state the algorithm
   uses. *)
let run_with ~runner (c : Workload.config) =
  Workload.validate c;
  let trace = Workload.Trace.create ~hosts:c.hosts in
  let start = Unix.gettimeofday () in
  runner (fun root ->
      let ws = R.workspace root in
      let queues =
        Array.init c.hosts (fun i ->
            let k = Mq.key ~name:(Printf.sprintf "queue-%d" i) in
            Ws.init ws k [];
            k)
      in
      let live = Mc.key ~name:"live-messages" in
      Ws.init ws live c.messages;
      List.iter (fun (host, m) -> Mq.push ws queues.(host) m) (Workload.initial_messages c);
      let host_body i ctx =
        let hws = R.workspace ctx in
        let rec loop () =
          match R.sync ctx with
          | Error _ -> () (* aborted by the parent: stop *)
          | Ok () ->
            if Mc.get hws live > 0 then begin
              (match Mq.pop hws queues.(i) with
              | None -> () (* my queue is empty this cycle *)
              | Some m -> (
                Workload.Trace.record trace ~host:i m;
                match Workload.process c ~host:i m with
                | Some m', destination -> Mq.push hws queues.(destination) m'
                | None, _ -> Mc.decr hws live));
              loop ()
            end
        in
        loop ()
      in
      for i = 0 to c.hosts - 1 do
        ignore (R.spawn root (host_body i))
      done;
      let cycles = ref 0 in
      while R.has_children root do
        R.merge_all root;
        incr cycles
      done;
      last_cycles := !cycles);
  Workload.Trace.finish trace ~elapsed_s:(Unix.gettimeofday () -. start)

let run ?domains ?executor c = run_with ~runner:(fun body -> R.run ?domains ?executor body) c

let run_cooperative c = run_with ~runner:(fun body -> R.Coop.run body) c
