(** The evaluation workload (Section III).

    A network of [hosts] simulated hosts exchanges [messages] initial
    messages, each with a time-to-live of [ttl] hops.  Processing one hop
    costs [load] SHA-1 iterations over the payload — the paper's knob [l]
    "to create some unpredictable processing load".  The next payload is the
    final digest, so content evolves deterministically hop by hop, and the
    destination rule is either

    - {e non-deterministic} (in the conventional implementation): derived
      from the processed payload's hash, so several hosts may target the
      same recipient concurrently; or
    - {e deterministic}: the ring [(host + 1) mod hosts], the paper's way of
      removing the race by construction.

    Both simulator implementations share this module bit for bit, so any
    output difference comes from synchronization, not workload. *)

type mode =
  | Hash_destination  (** the "non-deterministic" simulation *)
  | Ring_destination  (** the "deterministic" simulation *)

(** Which hosts a host may forward to ([Hash_destination] picks among the
    neighbours by payload hash; [Ring_destination] ignores topology).
    [Full] is the paper's setup — any host can message any other. *)
type topology =
  | Full
  | Ring_topology  (** neighbours [h-1] and [h+1] (mod n) *)
  | Star  (** host 0 is the hub; leaves only talk to it *)
  | Grid  (** 4-neighbourhood on a [ceil sqrt n] square, no wraparound *)

type config =
  { hosts : int
  ; messages : int
  ; ttl : int
  ; load : int  (** SHA-1 iterations per hop *)
  ; mode : mode
  ; topology : topology
  ; seed : int64
  }

val default : config
(** The paper's base setup: 20 hosts, 100 messages, TTL 100, load 0,
    hash destinations, full topology, seed 1. *)

val neighbours : config -> int -> int list
(** The hosts that [host] may forward to under the configured topology;
    always non-empty for valid configs, never contains the host itself
    (except a 1-host network, where it is [\[host\]]). *)

val validate : config -> unit
(** @raise Invalid_argument on non-positive hosts/messages/ttl or negative
    load. *)

type message =
  { payload : string
  ; ttl_left : int
  }

val pp_message : Format.formatter -> message -> unit

val equal_message : message -> message -> bool

val initial_messages : config -> (int * message) list
(** The [messages] initial messages with their starting hosts
    (round-robin), payloads drawn from the seeded deterministic RNG. *)

val total_hops : config -> int
(** [messages * ttl] — every message is processed exactly [ttl] times. *)

val process : config -> host:int -> message -> message option * int
(** One hop at [host]: burn [load] SHA-1 iterations, build the successor
    message and its destination.  [None] when the message just died (TTL
    exhausted); the [int] is the destination host (meaningless for a dead
    message, returned for trace symmetry). *)

type report =
  { elapsed_s : float
  ; hops : int  (** total messages processed across hosts *)
  ; per_host : int array  (** hops processed by each host *)
  ; event_digest : string
      (** order-insensitive digest over (host, payload) processing events —
          equal for any two runs that processed the same multiset of work *)
  ; order_digest : string
      (** order-sensitive: per-host event chains, combined — detects
          reordered processing even when the multiset matches *)
  }

val pp_report : Format.formatter -> report -> unit

(** Mutable trace used by both implementations to build a {!report}; each
    host writes only its own slot, so recording needs no locks. *)
module Trace : sig
  type t

  val create : hosts:int -> t

  val record : t -> host:int -> message -> unit

  val finish : t -> elapsed_s:float -> report
end
