(** The Spawn/Merge network simulation — Listing 4.

    One task per host, each holding copies of every host's mergeable queue.
    A host's loop is [Sync] (merge my changes / fetch fresh data), test my
    queue, process one message, push to the destination's queue; the parent
    loops [MergeAll], which merges all hosts {e in creation order} every
    cycle.  Because merging is deterministic, even the [Hash_destination]
    variant — racy under conventional synchronization — "yields the same
    results in every run" (Section III): both digests in the report are
    run-invariant.

    Termination: a mergeable live-message counter is decremented when a
    message's TTL expires; hosts observe it after sync and complete when it
    reaches zero, letting the parent's final [MergeAll] retire them. *)

val run : ?domains:int -> ?executor:Sm_core.Executor.t -> Workload.config -> Workload.report
(** [executor] reuses a long-lived executor, avoiding the ~50 ms
    domain-teardown cost per run — see {!Sm_core.Runtime.run}. *)

val run_cooperative : Workload.config -> Workload.report
(** The same simulation on {!Sm_core.Runtime.Coop}: one thread, effects-based
    task switching.  Same digests as {!run} (determinism is scheduler-
    independent); the timing difference isolates what threads/domains cost. *)

val cycles_of_last_run : unit -> int
(** Simulation cycles (parent MergeAll rounds) of the most recent {!run} in
    this thread of control — exposed for the benchmark harness's sanity
    output.  Not meaningful across concurrent runs. *)
