module D = Sm_dist.Coordinator
module Reg = Sm_dist.Registry
module Ws = Sm_mergeable.Workspace
module C = Sm_util.Codec
module W = Workload

module Slist = Sm_dist.Codable.Make_list (Sm_dist.Codable.String_elt)

(* One registry for the whole process (the dist layer's single-construction-
   site rule): coordinator and nodes share it by construction. *)
let registry = Reg.create ()
let k_events = Reg.value registry ~name:"simdist.events" (module Slist)
let k_routed = Reg.value registry ~name:"simdist.routed" (module Slist)

let msg_codec = C.pair C.int C.string (* ttl_left, payload *)
let event_codec = C.pair C.int msg_codec (* processing host, message *)
let routed_codec = C.pair C.int msg_codec (* destination host, successor *)

(* [host; load; hosts; mode tag; topology tag] — flat int list rather than a
   bespoke record codec; the task validates the arity. *)
let arg_codec = C.pair (C.list C.int) (C.list msg_codec)

let append ctx k entry = Reg.update ctx k (Slist.Op.ins (List.length (Reg.read ctx k)) entry)

let mode_tag = function W.Hash_destination -> 0 | W.Ring_destination -> 1
let topo_tag = function W.Full -> 0 | W.Ring_topology -> 1 | W.Star -> 2 | W.Grid -> 3

let t_host =
  Reg.task registry ~name:"simdist-host" (fun ctx ->
      let params, msgs = C.decode arg_codec (Reg.argument ctx) in
      match params with
      | [ host; load; hosts; mode; topo ] ->
        let cfg =
          { W.default with
            hosts
          ; load
          ; mode = (if mode = 0 then W.Hash_destination else W.Ring_destination)
          ; topology =
              (match topo with
              | 0 -> W.Full
              | 1 -> W.Ring_topology
              | 2 -> W.Star
              | _ -> W.Grid)
          }
        in
        List.iter
          (fun (ttl_left, payload) ->
            let m = { W.payload; ttl_left } in
            append ctx k_events (C.encode event_codec (host, (ttl_left, payload)));
            match W.process cfg ~host m with
            | Some m', dest ->
              append ctx k_routed (C.encode routed_codec (dest, (m'.W.ttl_left, m'.W.payload)))
            | None, _ -> ())
          msgs
      | _ -> invalid_arg "simdist-host: malformed argument"
    )

let rounds_of_last = ref 0
let rounds_of_last_run () = !rounds_of_last

let run ?(nodes = 2) ?chaos cfg =
  W.validate cfg;
  let cluster = D.cluster ~nodes ?chaos registry in
  Fun.protect ~finally:(fun () -> D.shutdown cluster) @@ fun () ->
  let start = Unix.gettimeofday () in
  D.run cluster (fun ctx ->
      let ws = D.workspace ctx in
      Ws.init ws (Reg.workspace_key k_events) [];
      Ws.init ws (Reg.workspace_key k_routed) [];
      let params host = [ host; cfg.W.load; cfg.W.hosts; mode_tag cfg.W.mode; topo_tag cfg.W.topology ] in
      let routed_cursor = ref 0 in
      let rounds = ref 0 in
      let pending =
        ref
          (List.map
             (fun (h, m) -> (h, (m.W.ttl_left, m.W.payload)))
             (W.initial_messages cfg))
      in
      while !pending <> [] do
        incr rounds;
        (* One remote task per host holding messages, spawned in host order:
           the round's merges happen in that creation order, so the merged
           event/routing lists — and thus the digests — are run-invariant. *)
        let by_host = Array.make cfg.W.hosts [] in
        List.iter (fun (h, m) -> by_host.(h) <- m :: by_host.(h)) !pending;
        Array.iteri
          (fun host msgs ->
            match List.rev msgs with
            | [] -> ()
            | msgs ->
              ignore (D.spawn ctx t_host ~argument:(C.encode arg_codec (params host, msgs))))
          by_host;
        while D.live_tasks ctx > 0 do
          D.merge_all ctx
        done;
        let routed = Ws.read ws (Reg.workspace_key k_routed) in
        let fresh = List.filteri (fun i _ -> i >= !routed_cursor) routed in
        routed_cursor := List.length routed;
        pending := List.map (C.decode routed_codec) fresh
      done;
      rounds_of_last := !rounds;
      let trace = W.Trace.create ~hosts:cfg.W.hosts in
      List.iter
        (fun s ->
          let host, (ttl_left, payload) = C.decode event_codec s in
          W.Trace.record trace ~host { W.payload; ttl_left })
        (Ws.read ws (Reg.workspace_key k_events));
      W.Trace.finish trace ~elapsed_s:(Unix.gettimeofday () -. start))
