(* One thread per host; queues are the blocking queues from Sm_util.  The
   live-message counter is the only other shared state: it hits zero exactly
   when the last message dies, at which point that host closes every queue
   and the blocked threads drain out. *)

let run (c : Workload.config) =
  Workload.validate c;
  let queues = Array.init c.hosts (fun _ -> Sm_util.Bqueue.create ()) in
  let live = Atomic.make c.messages in
  let trace = Workload.Trace.create ~hosts:c.hosts in
  let host_body i () =
    let rec loop () =
      match Sm_util.Bqueue.pop queues.(i) with
      | None -> () (* queues closed: simulation over *)
      | Some m ->
        Workload.Trace.record trace ~host:i m;
        (match Workload.process c ~host:i m with
        | Some m', destination -> Sm_util.Bqueue.push queues.(destination) m'
        | None, _ ->
          if Atomic.fetch_and_add live (-1) = 1 then
            (* last message died: wake everyone up *)
            Array.iter Sm_util.Bqueue.close queues);
        loop ()
    in
    loop ()
  in
  let start = Unix.gettimeofday () in
  let threads = Array.init c.hosts (fun i -> Thread.create (host_body i) ()) in
  List.iter
    (fun (host, m) -> Sm_util.Bqueue.push queues.(host) m)
    (Workload.initial_messages c);
  Array.iter Thread.join threads;
  Workload.Trace.finish trace ~elapsed_s:(Unix.gettimeofday () -. start)
