module R = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace

module Int_elt = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
end

module Str_elt = struct
  type t = string

  let equal = String.equal
  let pp ppf s = Format.fprintf ppf "%S" s
end

module Minv = Sm_mergeable.Mmap.Make (Int_elt) (Int_elt)
module Maudit = Sm_mergeable.Mlist.Make (Str_elt)
module Mc = Sm_mergeable.Mcounter

type config =
  { products : int
  ; initial_stock : int
  ; orders : int
  ; workers : int
  ; batch : int
  ; seed : int64
  }

let default = { products = 8; initial_stock = 50; orders = 200; workers = 4; batch = 5; seed = 1L }

let validate c =
  if c.products <= 0 then invalid_arg "Orders: products must be positive";
  if c.initial_stock < 0 then invalid_arg "Orders: initial_stock must be non-negative";
  if c.orders < 0 then invalid_arg "Orders: orders must be non-negative";
  if c.workers <= 0 then invalid_arg "Orders: workers must be positive";
  if c.batch <= 0 then invalid_arg "Orders: batch must be positive"

type order =
  { id : int
  ; product : int
  ; qty : int
  ; price_cents : int
  }

let generate_orders c =
  let rng = Sm_util.Det_rng.create ~seed:c.seed in
  List.init c.orders (fun id ->
      { id
      ; product = Sm_util.Det_rng.int rng ~bound:c.products
      ; qty = 1 + Sm_util.Det_rng.int rng ~bound:5
      ; price_cents = 100 + Sm_util.Det_rng.int rng ~bound:9900
      })

type report =
  { revenue_cents : int
  ; units_sold : int
  ; orders_filled : int
  ; orders_rejected : int
  ; stock_remaining : int
  ; audit_length : int
  ; audit_digest : string
  ; elapsed_s : float
  }

let pp_report ppf r =
  Format.fprintf ppf
    "revenue=%d.%02d filled=%d rejected=%d sold=%d remaining=%d audit=%d entries (%s) in %.3fs"
    (r.revenue_cents / 100) (r.revenue_cents mod 100) r.orders_filled r.orders_rejected
    r.units_sold r.stock_remaining r.audit_length r.audit_digest r.elapsed_s

(* Worker bodies own disjoint product shards, so their inventory writes never
   conflict; counters and the audit log reconcile by OT at each merge. *)
let worker ~keys:(inventory, audit, revenue, sold, filled, rejected) ~batch ~orders ctx =
  let ws = R.workspace ctx in
  let process o =
    let stock = Option.value ~default:0 (Minv.find ws inventory o.product) in
    if stock >= o.qty then begin
      Minv.put ws inventory o.product (stock - o.qty);
      Mc.add ws revenue (o.qty * o.price_cents);
      Mc.add ws sold o.qty;
      Mc.incr ws filled;
      Maudit.append ws audit (Printf.sprintf "order %d: sold %dx product %d" o.id o.qty o.product)
    end
    else begin
      Mc.incr ws rejected;
      Maudit.append ws audit
        (Printf.sprintf "order %d: REJECTED %dx product %d (stock %d)" o.id o.qty o.product stock)
    end
  in
  List.iteri
    (fun i o ->
      if i > 0 && i mod batch = 0 then ignore (R.sync ctx);
      process o)
    orders

let run ?domains ?executor c =
  validate c;
  let start = Unix.gettimeofday () in
  R.run ?domains ?executor (fun root ->
      let ws = R.workspace root in
      let inventory = Minv.key ~name:"inventory" in
      let audit = Maudit.key ~name:"audit-log" in
      let revenue = Mc.key ~name:"revenue" in
      let sold = Mc.key ~name:"units-sold" in
      let filled = Mc.key ~name:"orders-filled" in
      let rejected = Mc.key ~name:"orders-rejected" in
      Ws.init ws inventory
        (List.fold_left
           (fun m p -> Minv.Op.Key_map.add p c.initial_stock m)
           Minv.Op.Key_map.empty
           (List.init c.products Fun.id));
      Ws.init ws audit [];
      List.iter (fun k -> Ws.init ws k 0) [ revenue; sold; filled; rejected ];
      let orders = generate_orders c in
      let keys = (inventory, audit, revenue, sold, filled, rejected) in
      for w = 0 to c.workers - 1 do
        (* ownership: worker w handles the products congruent to w *)
        let mine = List.filter (fun o -> o.product mod c.workers = w) orders in
        ignore (R.spawn root (worker ~keys ~batch:c.batch ~orders:mine))
      done;
      while R.has_children root do
        R.merge_all root
      done;
      let audit_entries = Maudit.get ws audit in
      let audit_digest =
        Sm_util.Fnv.to_hex
          (List.fold_left
             (fun acc e -> Sm_util.Fnv.combine acc (Sm_util.Fnv.hash e))
             (Sm_util.Fnv.hash "audit") audit_entries)
      in
      { revenue_cents = Mc.get ws revenue
      ; units_sold = Mc.get ws sold
      ; orders_filled = Mc.get ws filled
      ; orders_rejected = Mc.get ws rejected
      ; stock_remaining =
          Minv.Op.Key_map.fold (fun _ units acc -> acc + units) (Minv.get ws inventory) 0
      ; audit_length = List.length audit_entries
      ; audit_digest
      ; elapsed_s = Unix.gettimeofday () -. start
      })
