(** The network simulation on the {e distributed} runtime: remote tasks on
    {!Sm_dist.Coordinator} worker nodes instead of in-process spawned tasks.

    Each simulation round spawns one registered task per host that holds
    messages; the task burns the SHA-1 load, records its processing events,
    and appends successor messages to a shared mergeable routing list.  The
    coordinator merges the round in creation order, reads the fresh routing
    suffix, and starts the next round — the distributed analogue of
    {!Sim_spawnmerge}'s MergeAll cycle.

    The point of the module is the [?chaos] parameter: it is how
    {!Sm_dist.Coordinator.Chaos} — the upstream-message delay/reorder relay —
    is reachable from [bin/netsim] (previously only the fuzz target used
    it).  Chaos must not change either digest; [netsim --impl dist --delay
    0.3 --runs 3] shows exactly that.  Note the coordinator's channels are
    {e reliable}: delay and reorder are meaningful, drop and dup are not
    (that lossy fault plane lives in {!Netpipe} and is exercised by the
    shard service). *)

val run :
  ?nodes:int -> ?chaos:Sm_dist.Coordinator.Chaos.t -> Workload.config -> Workload.report
(** Run the workload on a fresh cluster of [nodes] (default 2) worker
    nodes.  Digests are run-invariant and chaos-invariant. *)

val rounds_of_last_run : unit -> int
(** Simulation rounds of the most recent {!run}, for harness output. *)
