(** A second evaluation workload: enterprise order processing.

    The paper's introduction motivates Spawn/Merge with "scalable web
    applications, distributed enterprise software"; this module is that
    scenario.  A stream of orders is processed by worker tasks against a
    shared inventory, revenue total and audit log:

    - orders are sharded by product ({e ownership}), so stock decrements
      never conflict — the same idiom as Listing 4's per-host queues;
    - revenue/rejection counters and the audit log merge from all workers,
      the counters commutatively, the log in deterministic creation order;
    - an order is rejected (not merged, audit-logged) when stock is
      insufficient at its processing round.

    For a fixed configuration the outcome — including the {e order} of the
    audit log — is identical on every run; conservation invariants
    (units, money) hold by construction and are asserted in the tests. *)

type config =
  { products : int
  ; initial_stock : int  (** units per product *)
  ; orders : int
  ; workers : int
  ; batch : int  (** orders a worker processes between syncs *)
  ; seed : int64
  }

val default : config
(** 8 products x 50 units, 200 orders, 4 workers, batch 5, seed 1. *)

val validate : config -> unit
(** @raise Invalid_argument on non-positive fields. *)

type order =
  { id : int
  ; product : int
  ; qty : int
  ; price_cents : int
  }

val generate_orders : config -> order list
(** The deterministic order stream for a configuration (exposed so tests can
    model the expected outcome). *)

type report =
  { revenue_cents : int
  ; units_sold : int
  ; orders_filled : int
  ; orders_rejected : int
  ; stock_remaining : int  (** total units still in inventory *)
  ; audit_length : int
  ; audit_digest : string  (** order-sensitive digest of the audit log *)
  ; elapsed_s : float
  }

val pp_report : Format.formatter -> report -> unit

val run : ?domains:int -> ?executor:Sm_core.Executor.t -> config -> report
