type conn =
  { incoming : string Sm_util.Bqueue.t
  ; outgoing : string Sm_util.Bqueue.t
  }

type listener = { backlog : conn Sm_util.Bqueue.t }

let listen () = { backlog = Sm_util.Bqueue.create () }

let connect l =
  let a = Sm_util.Bqueue.create () and b = Sm_util.Bqueue.create () in
  let client = { incoming = a; outgoing = b } in
  let server = { incoming = b; outgoing = a } in
  (try Sm_util.Bqueue.push l.backlog server
   with Invalid_argument _ -> invalid_arg "Netpipe.connect: listener is shut down");
  client

let accept l = Sm_util.Bqueue.pop l.backlog
let send c msg = try Sm_util.Bqueue.push c.outgoing msg with Invalid_argument _ -> ()
let recv c = Sm_util.Bqueue.pop c.incoming

let close c =
  Sm_util.Bqueue.close c.incoming;
  Sm_util.Bqueue.close c.outgoing

let shutdown l = Sm_util.Bqueue.close l.backlog
