(* --- observability --------------------------------------------------------- *)

type stats =
  { sends : int
  ; delivered : int
  ; dropped_closed : int
  ; dropped_fault : int
  ; duplicated : int
  ; delayed : int
  ; reordered : int
  }

let c_sends = Atomic.make 0
let c_delivered = Atomic.make 0
let c_dropped_closed = Atomic.make 0
let c_dropped_fault = Atomic.make 0
let c_duplicated = Atomic.make 0
let c_delayed = Atomic.make 0
let c_reordered = Atomic.make 0

let stats () =
  { sends = Atomic.get c_sends
  ; delivered = Atomic.get c_delivered
  ; dropped_closed = Atomic.get c_dropped_closed
  ; dropped_fault = Atomic.get c_dropped_fault
  ; duplicated = Atomic.get c_duplicated
  ; delayed = Atomic.get c_delayed
  ; reordered = Atomic.get c_reordered
  }

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ c_sends; c_delivered; c_dropped_closed; c_dropped_fault; c_duplicated; c_delayed; c_reordered ]

let dropped_send_hook : (string -> unit) option Atomic.t = Atomic.make None
let on_dropped_send f = Atomic.set dropped_send_hook f

(* --- fault plane ------------------------------------------------------------ *)

module Faults = struct
  type t =
    { drop : float
    ; dup : float
    ; delay : float
    ; reorder : float
    ; rng : Sm_util.Det_rng.t
    ; mu : Mutex.t  (* decisions are drawn in send order, one at a time *)
    }

  let make ?(drop = 0.) ?(dup = 0.) ?(delay = 0.) ?(reorder = 0.) ~seed () =
    let ok p = p >= 0. && p <= 1. in
    if not (ok drop && ok dup && ok delay && ok reorder) then
      invalid_arg "Netpipe.Faults.make: probabilities must be in [0, 1]";
    if drop +. dup +. delay +. reorder > 1. then
      invalid_arg "Netpipe.Faults.make: probabilities must sum to at most 1";
    { drop; dup; delay; reorder; rng = Sm_util.Det_rng.create ~seed; mu = Mutex.create () }

  type decision =
    | Pass
    | Drop
    | Dup
    | Hold of int  (* deliver after this many subsequent sends *)

  let decide t =
    Mutex.lock t.mu;
    let r = Sm_util.Det_rng.float t.rng in
    let hold_len = 1 + Sm_util.Det_rng.int t.rng ~bound:3 in
    Mutex.unlock t.mu;
    if r < t.drop then Drop
    else if r < t.drop +. t.dup then Dup
    else if r < t.drop +. t.dup +. t.delay then Hold hold_len
    else if r < t.drop +. t.dup +. t.delay +. t.reorder then Hold 1
    else Pass
end

let faults : Faults.t option Atomic.t = Atomic.make None
let set_faults f = Atomic.set faults f
let faults_enabled () = Atomic.get faults <> None

(* --- pipes ------------------------------------------------------------------ *)

type conn =
  { incoming : string Sm_util.Bqueue.t
  ; outgoing : string Sm_util.Bqueue.t
  ; pending : (string * int ref) Queue.t  (* messages held by the fault plane *)
  ; pending_mu : Mutex.t
  }

type listener = { backlog : conn Sm_util.Bqueue.t }

let listen () = { backlog = Sm_util.Bqueue.create () }

let make_conn incoming outgoing =
  { incoming; outgoing; pending = Queue.create (); pending_mu = Mutex.create () }

let connect l =
  let a = Sm_util.Bqueue.create () and b = Sm_util.Bqueue.create () in
  let client = make_conn a b in
  let server = make_conn b a in
  (try Sm_util.Bqueue.push l.backlog server
   with Invalid_argument _ -> invalid_arg "Netpipe.connect: listener is shut down");
  client

let accept l = Sm_util.Bqueue.pop l.backlog

let deliver c msg =
  try
    Sm_util.Bqueue.push c.outgoing msg;
    Atomic.incr c_delivered
  with Invalid_argument _ ->
    Atomic.incr c_dropped_closed;
    (match Atomic.get dropped_send_hook with None -> () | Some f -> f msg)

(* Tick the hold counters and release everything that reaches zero, oldest
   first.  Called with [pending_mu] held. *)
let release_ready c =
  let n = Queue.length c.pending in
  for _ = 1 to n do
    let msg, left = Queue.pop c.pending in
    decr left;
    if !left <= 0 then deliver c msg else Queue.push (msg, left) c.pending
  done

let send c msg =
  Atomic.incr c_sends;
  match Atomic.get faults with
  | None -> deliver c msg
  | Some f ->
    Mutex.lock c.pending_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock c.pending_mu)
      (fun () ->
        if Sm_util.Bqueue.is_closed c.outgoing then begin
          (* A send into a closed connection is one lost message whatever
             the fault plane would have decided: don't consume a fault
             decision (Drop would book it as dropped_fault with no
             [on_dropped_send] hook, Dup would book the loss twice).
             [deliver] counts the dropped_closed and fires the hook once. *)
          release_ready c;
          deliver c msg
        end
        else
        match Faults.decide f with
        | Faults.Pass ->
          deliver c msg;
          release_ready c
        | Faults.Drop ->
          Atomic.incr c_dropped_fault;
          release_ready c
        | Faults.Dup ->
          Atomic.incr c_duplicated;
          deliver c msg;
          deliver c msg;
          release_ready c
        | Faults.Hold n ->
          (* tick older holds first: a new hold must survive at least the
             next send, or reorder would degenerate to pass-through *)
          release_ready c;
          if Sm_util.Bqueue.is_closed c.outgoing then
            (* nothing will ever flush a hold on a closed connection; count
               the loss now so delivery accounting stays balanced *)
            deliver c msg
          else begin
            if n > 1 then Atomic.incr c_delayed else Atomic.incr c_reordered;
            Queue.push (msg, ref n) c.pending
          end)

let flush_pending c =
  Mutex.lock c.pending_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.pending_mu)
    (fun () ->
      while not (Queue.is_empty c.pending) do
        deliver c (fst (Queue.pop c.pending))
      done)

let recv c = Sm_util.Bqueue.pop c.incoming
let try_recv c = Sm_util.Bqueue.try_pop c.incoming
let try_accept l = Sm_util.Bqueue.try_pop l.backlog

let close c =
  flush_pending c;
  Sm_util.Bqueue.close c.incoming;
  Sm_util.Bqueue.close c.outgoing

let shutdown l = Sm_util.Bqueue.close l.backlog
