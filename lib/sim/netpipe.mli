(** An in-process TCP stand-in for the server-software example (Listing 3).

    The paper's server accepts TCP connections; the sealed build environment
    has no network, so this module provides the same blocking surface —
    [accept], [recv], [send], [close] — over thread-safe in-memory pipes.
    It exercises exactly the code paths the example needs: a blocking accept
    loop (the [Clone] pattern) and per-connection blocking reads (tasks that
    outlive many requests via [Sync]).

    The module doubles as the fuzzer's network fault plane: an installable
    {!Faults} policy perturbs deliveries (drop, duplicate, delay, reorder)
    deterministically from a seed, and {!stats} / {!on_dropped_send} make
    the otherwise silent loss paths observable. *)

type listener
(** A listening endpoint clients connect to. *)

type conn
(** One endpoint of an established bidirectional connection. *)

val listen : unit -> listener

val connect : listener -> conn
(** Client side: establish a connection; returns the client endpoint.
    @raise Invalid_argument if the listener is shut down. *)

val accept : listener -> conn option
(** Server side: block until a client connects; [None] after
    {!shutdown}. *)

val try_accept : listener -> conn option
(** Non-blocking {!accept}: [None] when no connection is waiting.  The
    polling surface the single-threaded shard service is built on. *)

val send : conn -> string -> unit
(** Never blocks (unbounded pipe).  Sending on a closed connection is a
    silent no-op, like writing to a socket the peer already closed — the
    reader is gone either way.  Silent for the {e sender}, that is: the drop
    still counts in {!stats} and fires {!on_dropped_send}, so a fault plane
    (or a test) can observe what the application cannot.  That holds with a
    {!Faults} policy installed too: a send on a closed connection never
    consumes a fault decision — it is exactly one [dropped_closed] and one
    hook call, whatever the policy would have said. *)

val recv : conn -> string option
(** Block until a message arrives; [None] once the peer closed and the pipe
    drained. *)

val try_recv : conn -> string option
(** Non-blocking {!recv}: [None] when nothing is currently queued. *)

val close : conn -> unit
(** Close both directions; idempotent.  Messages still held by the fault
    plane ({!Faults}) are flushed in order first — delay never turns into
    loss, only {e drop} loses messages. *)

val shutdown : listener -> unit
(** Stop accepting: blocked and future {!accept}s return [None]. *)

(** {1 Fault injection}

    A seeded, probabilistic perturbation of {!send}.  Decisions are drawn
    from a {!Sm_util.Det_rng} stream in send order, so a single-sender
    connection replays byte-identically from the same seed — what lets the
    fuzzer assert digest determinism {e under} faults.

    - {b drop}: the message vanishes (the only lossy fault).
    - {b dup}: the message is delivered twice.
    - {b delay}: the message is held across the next 1–3 sends on the same
      connection, then delivered (held messages keep their relative order).
    - {b reorder}: held across exactly one send — adjacent swap. *)
module Faults : sig
  type t

  val make :
    ?drop:float -> ?dup:float -> ?delay:float -> ?reorder:float -> seed:int64 -> unit -> t
  (** Per-send probabilities, each in [\[0, 1\]] (defaults 0); their sum must
      not exceed 1.  @raise Invalid_argument otherwise. *)
end

val set_faults : Faults.t option -> unit
(** Install (or clear) the process-global fault plane.  Affects every
    connection; the default is [None] — zero-cost pass-through. *)

val faults_enabled : unit -> bool

(** {1 Observability} *)

type stats =
  { sends : int  (** {!send} calls *)
  ; delivered : int  (** messages actually enqueued (dups count twice) *)
  ; dropped_closed : int  (** sends on a closed connection *)
  ; dropped_fault : int  (** sends eaten by the fault plane *)
  ; duplicated : int
  ; delayed : int
  ; reordered : int
  }

val stats : unit -> stats
(** Process-global counters since the last {!reset_stats}. *)

val reset_stats : unit -> unit

val on_dropped_send : (string -> unit) option -> unit
(** Hook called with the payload whenever a send is dropped because the
    connection is closed (never for fault-plane drops).  Default [None].
    The callback runs on the sending thread; keep it cheap and thread-safe. *)
