(** An in-process TCP stand-in for the server-software example (Listing 3).

    The paper's server accepts TCP connections; the sealed build environment
    has no network, so this module provides the same blocking surface —
    [accept], [recv], [send], [close] — over thread-safe in-memory pipes.
    It exercises exactly the code paths the example needs: a blocking accept
    loop (the [Clone] pattern) and per-connection blocking reads (tasks that
    outlive many requests via [Sync]). *)

type listener
(** A listening endpoint clients connect to. *)

type conn
(** One endpoint of an established bidirectional connection. *)

val listen : unit -> listener

val connect : listener -> conn
(** Client side: establish a connection; returns the client endpoint.
    @raise Invalid_argument if the listener is shut down. *)

val accept : listener -> conn option
(** Server side: block until a client connects; [None] after
    {!shutdown}. *)

val send : conn -> string -> unit
(** Never blocks (unbounded pipe).  Sending on a closed connection is a
    silent no-op, like writing to a socket the peer already closed — the
    reader is gone either way. *)

val recv : conn -> string option
(** Block until a message arrives; [None] once the peer closed and the pipe
    drained. *)

val close : conn -> unit
(** Close both directions; idempotent. *)

val shutdown : listener -> unit
(** Stop accepting: blocked and future {!accept}s return [None]. *)
