module Rng = Sm_util.Det_rng

type ty =
  | Counter
  | Register
  | Text
  | List
  | Set
  | Map
  | Queue
  | Stack
  | Tree

let all_types = [ Counter; Register; Text; List; Set; Map; Queue; Stack; Tree ]

let ty_name = function
  | Counter -> "counter"
  | Register -> "register"
  | Text -> "text"
  | List -> "list"
  | Set -> "set"
  | Map -> "map"
  | Queue -> "queue"
  | Stack -> "stack"
  | Tree -> "tree"

let ty_of_name = function
  | "counter" -> Some Counter
  | "register" -> Some Register
  | "text" -> Some Text
  | "list" -> Some List
  | "set" -> Some Set
  | "map" -> Some Map
  | "queue" -> Some Queue
  | "stack" -> Some Stack
  | "tree" -> Some Tree
  | _ -> None

type op_spec =
  { ty : ty
  ; sel : int
  ; a : int
  ; b : int
  }

type merge_kind =
  | All
  | All_set
  | Any
  | Any_set

let merge_kind_name = function
  | All -> "all"
  | All_set -> "all-set"
  | Any -> "any"
  | Any_set -> "any-set"

let merge_kind_of_name = function
  | "all" -> Some All
  | "all-set" -> Some All_set
  | "any" -> Some Any
  | "any-set" -> Some Any_set
  | _ -> None

type step =
  | Op of op_spec
  | Spawn of int
  | Merge of
      { kind : merge_kind
      ; sel : int
      ; validate : int
      }
  | Sync
  | Clone of int
  | Abort of int
  | Mint of int

type t = { scripts : step list array }

let size t = Array.fold_left (fun acc s -> acc + List.length s) 0 t.scripts

let step_exists p t = Array.exists (List.exists p) t.scripts

let uses_any_merge t =
  step_exists (function Merge { kind = Any | Any_set; _ } -> true | _ -> false) t

let uses_clone t = step_exists (function Clone _ -> true | _ -> false) t
let uses_mint t = step_exists (function Mint _ -> true | _ -> false) t

(* Spawn/clone targets are a pure function of the script index and the
   payload, shared by the interpreter and the static analyzer so both agree
   on the spawn tree.  [None] when [idx] is the last script (no legal
   target exists) — the interpreter skips the step. *)
let resolve_target ~nscripts ~idx j =
  if idx >= nscripts - 1 then None else Some (idx + 1 + (j mod (nscripts - idx - 1)))

(* --- well-formedness --------------------------------------------------------- *)

(* Every payload integer must be non-negative: the interpreter reduces them
   modulo live bounds, and OCaml's [mod] preserves sign, so a negative
   payload would index arrays negatively.  The codec happily parses negative
   literals, hence the explicit gate for hand-authored programs. *)
let well_formed t =
  if Array.length t.scripts = 0 then Error "program has no tasks"
  else begin
    let bad = ref None in
    let check task step ints =
      if !bad = None && List.exists (fun n -> n < 0) ints then
        bad := Some (Printf.sprintf "task %d step %d: negative payload" task step)
    in
    Array.iteri
      (fun task steps ->
        List.iteri
          (fun i step ->
            match step with
            | Op { sel; a; b; _ } -> check task i [ sel; a; b ]
            | Spawn j | Clone j | Abort j | Mint j -> check task i [ j ]
            | Merge { sel; validate; _ } -> check task i [ sel; validate ]
            | Sync -> ())
          steps)
      t.scripts;
    match !bad with None -> Ok () | Some msg -> Error msg
  end

(* --- text form -------------------------------------------------------------- *)

let pp_step ppf = function
  | Op { ty; sel; a; b } -> Format.fprintf ppf "op %s %d %d %d" (ty_name ty) sel a b
  | Spawn i -> Format.fprintf ppf "spawn %d" i
  | Merge { kind; sel; validate } ->
    Format.fprintf ppf "merge %s %d %d" (merge_kind_name kind) sel validate
  | Sync -> Format.fprintf ppf "sync"
  | Clone i -> Format.fprintf ppf "clone %d" i
  | Abort i -> Format.fprintf ppf "abort %d" i
  | Mint i -> Format.fprintf ppf "mint %d" i

let pp ppf t =
  Format.fprintf ppf "program v1@.";
  Array.iteri
    (fun i steps ->
      Format.fprintf ppf "task %d@." i;
      List.iter (fun s -> Format.fprintf ppf "  %a@." pp_step s) steps)
    t.scripts;
  Format.fprintf ppf "end@."

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let bad line msg = invalid_arg (Printf.sprintf "Program.of_string: line %d: %s" line msg) in
  let int line w =
    match int_of_string_opt w with Some n -> n | None -> bad line ("not an integer: " ^ w)
  in
  let parse_step line words =
    match words with
    | [ "op"; ty; sel; a; b ] -> (
      match ty_of_name ty with
      | Some ty -> Op { ty; sel = int line sel; a = int line a; b = int line b }
      | None -> bad line ("unknown type " ^ ty))
    | [ "spawn"; i ] -> Spawn (int line i)
    | [ "merge"; kind; sel; validate ] -> (
      match merge_kind_of_name kind with
      | Some kind -> Merge { kind; sel = int line sel; validate = int line validate }
      | None -> bad line ("unknown merge kind " ^ kind))
    | [ "sync" ] -> Sync
    | [ "clone"; i ] -> Clone (int line i)
    | [ "abort"; i ] -> Abort (int line i)
    | [ "mint"; i ] -> Mint (int line i)
    | _ -> bad line ("unknown step: " ^ String.concat " " words)
  in
  let lines = String.split_on_char '\n' s in
  let scripts = ref [] in
  let current = ref None in
  let flush lineno =
    match !current with
    | None -> ()
    | Some (idx, steps) ->
      if idx <> List.length !scripts then bad lineno "task indices out of order";
      scripts := List.rev steps :: !scripts;
      current := None
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let words =
        String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | [ "program"; "v1" ] -> ()
      | [ "end" ] -> flush lineno
      | [ "task"; idx ] ->
        flush lineno;
        current := Some (int lineno idx, [])
      | _ -> (
        match !current with
        | None -> bad lineno "step outside a task block"
        | Some (idx, steps) -> current := Some (idx, parse_step lineno words :: steps)))
    lines;
  flush (List.length lines);
  if !scripts = [] then invalid_arg "Program.of_string: no tasks";
  { scripts = Array.of_list (List.rev !scripts) }

(* --- generation ------------------------------------------------------------- *)

type profile =
  { allow_validate : bool
  ; allow_abort : bool
  ; allow_sync : bool
  ; allow_clone : bool
  ; allow_any : bool
  }

let det_profile =
  { allow_validate = true; allow_abort = true; allow_sync = true; allow_clone = false; allow_any = false }

let full_profile =
  { allow_validate = true; allow_abort = true; allow_sync = true; allow_clone = true; allow_any = true }

let profile_flags =
  [ ("validate", (fun p -> p.allow_validate), fun p v -> { p with allow_validate = v })
  ; ("abort", (fun p -> p.allow_abort), fun p v -> { p with allow_abort = v })
  ; ("sync", (fun p -> p.allow_sync), fun p v -> { p with allow_sync = v })
  ; ("clone", (fun p -> p.allow_clone), fun p v -> { p with allow_clone = v })
  ; ("any", (fun p -> p.allow_any), fun p v -> { p with allow_any = v })
  ]

let profile_to_string p =
  match List.filter_map (fun (n, get, _) -> if get p then Some n else None) profile_flags with
  | [] -> "none"
  | names -> String.concat "," names

let profile_of_string s =
  let none = { allow_validate = false; allow_abort = false; allow_sync = false; allow_clone = false; allow_any = false } in
  if String.trim s = "none" then Some none
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc name ->
           match acc with
           | None -> None
           | Some p -> (
             match List.find_opt (fun (n, _, _) -> n = String.trim name) profile_flags with
             | Some (_, _, set) -> Some (set p true)
             | None -> None))
         (Some none)

let gen_op rng =
  let ty = Rng.pick rng all_types in
  Op { ty; sel = Rng.int rng ~bound:6; a = Rng.int rng ~bound:8; b = Rng.int rng ~bound:8 }

(* A correlated burst: several ops on one type with small payloads, so two
   tasks bursting the same value actually collide on positions — range
   deletes straddling concurrent inserts is what exposes order-sensitive
   transform bugs (splits), and uncorrelated single ops almost never line
   up.  Text is overweighted because its transforms are the split-richest. *)
let gen_burst rng =
  let ty = if Rng.int rng ~bound:3 = 0 then Text else Rng.pick rng all_types in
  List.init
    (2 + Rng.int rng ~bound:3)
    (fun _ ->
      Op { ty; sel = Rng.int rng ~bound:6; a = Rng.int rng ~bound:4; b = Rng.int rng ~bound:4 })

let gen_merge rng ~(profile : profile) =
  let kinds = if profile.allow_any then [ All; All_set; Any; Any_set ] else [ All; All_set ] in
  let kind = Rng.pick rng kinds in
  let validate =
    if profile.allow_validate && Rng.int rng ~bound:3 = 0 then 1 + Rng.int rng ~bound:3 else 0
  in
  Merge { kind; sel = Rng.int rng ~bound:64; validate }

(* One script.  [idx] is this script's position; spawn/clone targets must be
   strictly greater, so the last script generates no spawns.  Fan-out is
   capped at 2 spawns + 1 clone per script, bounding the whole tree at
   3^scripts tasks in the worst case — small enough at the depths the CLI
   exposes, and the interpreter has a hard task budget besides.  [Mint] is
   never generated: it exists for hand-written hazard fixtures (the static
   twin of DetSan's key-in-task class), and generated programs must stay
   clean under the detsan oracle. *)
let gen_script rng ~(profile : profile) ~idx ~nscripts ~depth =
  let nsteps = 2 + Rng.int rng ~bound:(depth + 4) in
  let spawns = ref 0 in
  let clones = ref 0 in
  let can_target = idx < nscripts - 1 in
  let target () = idx + 1 + Rng.int rng ~bound:(nscripts - idx - 1) in
  let step () =
    match Rng.int rng ~bound:100 with
    | r when r < 45 -> [ gen_op rng ]
    | r when r < 55 -> gen_burst rng
    | r when r < 70 ->
      if can_target && !spawns < 2 then begin
        incr spawns;
        [ Spawn (target ()) ]
      end
      else [ gen_op rng ]
    | r when r < 82 -> [ gen_merge rng ~profile ]
    | r when r < 90 ->
      if profile.allow_sync && idx > 0 then [ Sync ] else [ gen_op rng ]
    | r when r < 95 ->
      if profile.allow_abort then [ Abort (Rng.int rng ~bound:4) ] else [ gen_op rng ]
    | _ ->
      if profile.allow_clone && idx > 0 && can_target && !clones < 1 then begin
        incr clones;
        [ Clone (target ()) ]
      end
      else [ gen_op rng ]
  in
  List.concat (List.init nsteps (fun _ -> step ()))

let generate rng ~depth ~profile =
  let depth = max 1 depth in
  let nscripts = 2 + Rng.int rng ~bound:(2 * depth) in
  let scripts =
    Array.init nscripts (fun idx -> gen_script rng ~profile ~idx ~nscripts ~depth)
  in
  (* half the time, seed the root with text appends before everything else:
     a shared non-empty buffer is what lets concurrent range deletes straddle
     concurrent inserts — the splitting transforms where order-sensitive
     mutations (Reverse, Drop_last) actually bite *)
  if Rng.bool rng then begin
    let prelude =
      List.init
        (1 + Rng.int rng ~bound:3)
        (fun _ -> Op { ty = Text; sel = 2; a = 0; b = Rng.int rng ~bound:8 })
    in
    scripts.(0) <- prelude @ scripts.(0)
  end;
  (* the root must actually exercise concurrency: force a spawn in script 0 *)
  if not (List.exists (function Spawn _ -> true | _ -> false) scripts.(0)) then begin
    let pos = Rng.int rng ~bound:(List.length scripts.(0) + 1) in
    let target = 1 + Rng.int rng ~bound:(nscripts - 1) in
    let rec insert i = function
      | rest when i = pos -> Spawn target :: rest
      | [] -> [ Spawn target ]
      | s :: rest -> s :: insert (i + 1) rest
    in
    scripts.(0) <- insert 0 scripts.(0)
  end;
  { scripts }

(* --- shrinking -------------------------------------------------------------- *)

let shrink_int n = if n > 0 then [ 0; n / 2 ] |> List.filter (fun m -> m < n) else []

let shrink_step = function
  | Op ({ sel; a; b; _ } as op) ->
    List.concat
      [ List.map (fun sel -> Op { op with sel }) (shrink_int sel)
      ; List.map (fun a -> Op { op with a }) (shrink_int a)
      ; List.map (fun b -> Op { op with b }) (shrink_int b)
      ]
  | Spawn i -> List.map (fun i -> Spawn i) (shrink_int i)
  | Merge { kind; sel; validate } ->
    let kinds =
      match kind with
      | All -> []
      | All_set -> [ All ]
      | Any -> [ All ]
      | Any_set -> [ All_set; Any ]
    in
    List.concat
      [ List.map (fun kind -> Merge { kind; sel; validate }) kinds
      ; List.map (fun sel -> Merge { kind; sel; validate }) (shrink_int sel)
      ; List.map (fun validate -> Merge { kind; sel; validate }) (shrink_int validate)
      ]
  | Sync -> []
  | Clone i -> Spawn i :: List.map (fun i -> Clone i) (shrink_int i)
  | Abort i -> List.map (fun i -> Abort i) (shrink_int i)
  | Mint i -> List.map (fun i -> Mint i) (shrink_int i)
