(** The Spawn/Merge program IR: a first-class, replayable representation of a
    spawn tree, shared by the fuzzer ({!Sm_fuzz}), the static analyzer
    ({!Sm_lint}) and anything that wants to hand-author a scenario.

    A program is an array of {e scripts}; script 0 is the root task's body
    and a [Spawn]/[Clone] step starts a task running a strictly
    higher-indexed script, so the spawn graph is acyclic by construction and
    nesting depth is bounded by the script count.  Every step is {e total}:
    payload integers are interpreted modulo whatever bound the current state
    imposes (positions, child counts, subset masks), so any program — fuzzer
    generated, shrunk, or hand written — executes without precondition.

    Programs print to (and parse from) a small line-oriented text format, so
    a failure artifact is replayable with [sm-fuzz replay --program FILE],
    lintable with [sm-lint check FILE], and a seed plus generator config
    reproduces the same program forever ({!generate} draws only from the
    given {!Sm_util.Det_rng}). *)

(** The nine mergeable types under fuzz. *)
type ty =
  | Counter
  | Register
  | Text
  | List
  | Set
  | Map
  | Queue
  | Stack
  | Tree

val all_types : ty list
val ty_name : ty -> string
val ty_of_name : string -> ty option

type op_spec =
  { ty : ty
  ; sel : int  (** op-constructor selector, interpreted mod the type's arity *)
  ; a : int  (** first payload knob (position / element / path seed) *)
  ; b : int  (** second payload knob (value / length / label seed) *)
  }

type merge_kind =
  | All  (** [merge_all] — deterministic *)
  | All_set  (** [merge_all_from_set] over a bitmask subset — deterministic *)
  | Any  (** [merge_any] — explicitly non-deterministic *)
  | Any_set  (** [merge_any_from_set] over a bitmask subset *)

val merge_kind_name : merge_kind -> string

type step =
  | Op of op_spec
  | Spawn of int  (** spawn a child running script {!resolve_target} *)
  | Merge of
      { kind : merge_kind
      ; sel : int  (** live-children bitmask for the [_set] variants *)
      ; validate : int  (** 0: none; [v > 0]: reject when counter % (2 + (v-1) mod 3) = 0 *)
      }
  | Sync  (** park for the parent's merge (skipped in the root script) *)
  | Clone of int  (** sibling running a higher script (skipped unless pristine) *)
  | Abort of int  (** abort live child [i mod n] (skipped with no children) *)
  | Mint of int
      (** mint a fresh workspace key mid-run — the static twin of DetSan's
          key-in-task hazard.  Fixture-only: {!generate} never emits it, so
          generated corpora stay detsan-clean. *)

type t = { scripts : step list array }

val size : t -> int
(** Total steps across all scripts — the measure the shrinker minimizes. *)

val uses_any_merge : t -> bool
(** Some [Merge] has kind [Any] or [Any_set]: the program opted into
    non-determinism and digest-equality oracles do not apply. *)

val uses_clone : t -> bool
(** Record/replay of merge choices requires a reproducible task tree, which
    racing clones break; the replay oracle skips these programs. *)

val uses_mint : t -> bool
(** Some script mints a key mid-run: a hand-written hazard fixture. *)

val resolve_target : nscripts:int -> idx:int -> int -> int option
(** [resolve_target ~nscripts ~idx j] is the script a [Spawn j]/[Clone j]
    in script [idx] starts: [idx + 1 + (j mod (nscripts - idx - 1))], or
    [None] when [idx] is the last script (the step is skipped).  One shared
    definition keeps the interpreter and the static analyzer looking at the
    same spawn tree. *)

val well_formed : t -> (unit, string) result
(** At least one task and no negative payload integers (the codec parses
    negative literals but the interpreter's modular reductions assume
    non-negative inputs) — the gate for hand-authored programs. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Canonical text form; [of_string (to_string p) = p]. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input, with a line diagnostic. *)

(** {1 Generation} *)

type profile =
  { allow_validate : bool
  ; allow_abort : bool
  ; allow_sync : bool
  ; allow_clone : bool
  ; allow_any : bool  (** generate [Any]/[Any_set] merges *)
  }

val det_profile : profile
(** validate + abort + sync on; clone and any-merges off — the profile whose
    programs must satisfy every determinism oracle. *)

val full_profile : profile

val profile_to_string : profile -> string
(** Canonical comma-separated fault list (["none"] when all off) — what
    [sm-fuzz --faults] parses and failure reports echo. *)

val profile_of_string : string -> profile option

val generate : Sm_util.Det_rng.t -> depth:int -> profile:profile -> t
(** Draw a program: [2 .. 2*depth+1] scripts of [2 .. depth+5] steps, spawn
    fan-out capped at 2 per script (so worst-case task count stays bounded),
    root script guaranteed to spawn when more than one script exists. *)

val shrink_step : step -> step list
(** Well-founded single-step shrink candidates (payloads toward 0, any-merges
    toward deterministic ones, clones toward spawns) — fed to
    {!Sm_check.Shrink.minimize} together with step dropping.  Candidates of a
    well-formed step are well-formed. *)
