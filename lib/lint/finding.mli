(** Lint findings: the static twins of DetSan's dynamic hazard classes, plus
    the analyses only a static pass can do (merge-order dependence, conflict
    and cost prediction).

    Severity encodes the soundness contract with DetSan ({!Sm_check.Detsan}):

    - {b Error} — the program can be dynamically non-deterministic; every
      error class carries the DetSan hazard tag it twins ([twin]), and a
      program with no errors is guaranteed DetSan-clean (checked by the
      agreement harness, {!Sm_fuzz.Agree}).
    - {b Warning} — deterministic but order-defined behavior (e.g. a
      [MergeAllFromSet] whose outcome depends on the set order).  A registry
      known issue can {e pin} a warning (e.g. ["queue-push-order"]), turning
      it into an expected finding.
    - {b Note} — advisory: cost, structure, dead code.  Notes never gate. *)

type severity =
  | Error
  | Warning
  | Note

val severity_name : severity -> string

type t =
  { cls : string  (** stable class tag, see {!classes} *)
  ; severity : severity
  ; task : int  (** script index; [-1] for program-level findings *)
  ; step : int  (** step index within the script; [-1] for task-level *)
  ; detail : string
  ; provenance : string list  (** DetSan-style chain, hazard site to root digest *)
  ; pinned : string option  (** registry known-issue id when expected *)
  ; twin : string option  (** DetSan hazard tag this class twins, if any *)
  }

val classes : (string * severity * string option * string) list
(** Every finding class: tag, default severity, DetSan twin tag, one-line doc. *)

val class_doc : string -> string option
val class_twin : string -> string option

val make :
  ?severity_override:severity ->
  ?provenance:string list ->
  ?pinned:string ->
  cls:string ->
  task:int ->
  step:int ->
  string ->
  t

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

(** {1 Verdicts} *)

type verdict =
  | Clean  (** no errors or warnings (notes allowed) *)
  | Pinned_only  (** errors/warnings present but every one pinned by a known issue *)
  | Dirty  (** at least one unpinned error or warning *)

val verdict_name : verdict -> string
val verdict : t list -> verdict

val verdict_exit_code : verdict -> int
(** The CLI convention: 0 clean, 1 dirty, 3 pinned-only. *)

val guarantees_detsan_clean : t list -> bool
(** No error-severity finding with a dynamic twin: the static promise that
    every DetSan run of the program reports no hazards. *)

val covers_hazard : t list -> tag:string -> bool
(** Some finding twins the given DetSan hazard tag — the completeness
    direction of the agreement contract. *)
