module P = Sm_ir.Program

type report =
  { program : P.t
  ; model : Model.t
  ; findings : Finding.t list
  ; cost : Cost.t
  }

let severity_rank = function Finding.Error -> 0 | Finding.Warning -> 1 | Finding.Note -> 2

let sort_findings fs =
  List.stable_sort
    (fun (a : Finding.t) (b : Finding.t) ->
      compare
        (severity_rank a.severity, a.task, a.step, a.cls)
        (severity_rank b.severity, b.task, b.step, b.cls))
    fs

(* --- nondeterminism taint ----------------------------------------------------

   Any merge_any/merge_any_from_set in a reachable script taints that task's
   state: whichever child the scheduler finishes first wins the merge, and
   the tainted journal flows through every ancestor merge into the root
   digest.  The provenance chain is computed exactly — spawn targets are a
   pure function of the IR — where DetSan reconstructs it from runtime
   events.  Static reach over-approximates dynamic execution (budget- or
   abort-skipped steps lint the same), which is the sound direction. *)

let taint_findings (m : Model.t) =
  let out = ref [] in
  Array.iteri
    (fun idx steps ->
      if m.Model.reachable.(idx) then
        List.iteri
          (fun i step ->
            match step with
            | P.Merge { kind = (P.Any | P.Any_set) as kind; _ } ->
              let provenance =
                Printf.sprintf "%s result enters task %d's state and journal"
                  (if kind = P.Any then "merge_any" else "merge_any_from_set")
                  idx
                :: Model.chain_to_root m idx
              in
              out :=
                Finding.make ~provenance ~cls:"nondet-merge" ~task:idx ~step:i
                  (Printf.sprintf
                     "merge %s picks whichever child the scheduler finishes first"
                     (P.merge_kind_name kind))
                :: !out
            | P.Mint j ->
              out :=
                Finding.make ~cls:"key-after-spawn" ~task:idx ~step:i
                  (Printf.sprintf
                     "mints key \"fuzz.minted.%d\" mid-run while tasks are live; re-minted keys \
                      make digests incomparable across runs"
                     (j mod 4))
                :: !out
            | _ -> ())
          steps)
    m.Model.program.P.scripts;
  !out

(* --- structural hazards ----------------------------------------------------- *)

let structure_findings (m : Model.t) =
  let out = ref [] in
  let scripts = m.Model.program.P.scripts in
  Array.iteri
    (fun idx steps ->
      if m.Model.reachable.(idx) then begin
        let merge_steps =
          List.filteri (fun _ s -> match s with P.Merge _ -> true | _ -> false) steps
          |> List.length
        in
        let last_merge =
          snd
            (List.fold_left
               (fun (i, last) s ->
                 (i + 1, match s with P.Merge _ -> i | _ -> last))
               (0, -1) steps)
        in
        (* unmerged children: a spawn/clone edge with no merge after it in
           the same script is left to the interpreter's implicit epilogue *)
        let unmerged =
          List.filter (fun (e : Model.edge) -> e.step > last_merge) m.Model.edges.(idx)
        in
        (match unmerged with
        | [] -> ()
        | e :: _ ->
          out :=
            Finding.make ~cls:"unmerged-children" ~task:idx ~step:e.Model.step
              (Printf.sprintf
                 "%d child%s spawned after the last of %d merge step%s: merged only by the \
                  implicit MergeAll epilogue"
                 (List.length unmerged)
                 (if List.length unmerged = 1 then "" else "ren")
                 merge_steps
                 (if merge_steps = 1 then "" else "s"))
            :: !out);
        (* op-after-abort: an abort that can land on a subtree which did work *)
        List.iteri
          (fun i step ->
            match step with
            | P.Abort _ ->
              let discardable =
                List.filter
                  (fun (e : Model.edge) ->
                    e.step < i && Model.subtree_has_ops m e.target)
                  m.Model.edges.(idx)
              in
              (match discardable with
              | [] -> ()
              | es ->
                out :=
                  Finding.make ~cls:"op-after-abort" ~task:idx ~step:i
                    (Printf.sprintf
                       "abort can discard task%s %s whose subtree performed operations"
                       (if List.length es = 1 then "" else "s")
                       (String.concat ", "
                          (List.map (fun (e : Model.edge) -> string_of_int e.Model.target) es)))
                  :: !out)
            | P.Merge { validate; _ } when validate > 0 ->
              let syncing =
                List.filter
                  (fun (e : Model.edge) -> m.Model.subtree_sync.(e.target))
                  m.Model.edges.(idx)
              in
              (match syncing with
              | [] -> ()
              | es ->
                out :=
                  Finding.make ~cls:"sync-under-validate" ~task:idx ~step:i
                    (Printf.sprintf
                       "validated merge over a subtree with sync points (task%s %s): a refusal \
                        re-parks the child for a later attempt"
                       (if List.length es = 1 then "" else "s")
                       (String.concat ", "
                          (List.map (fun (e : Model.edge) -> string_of_int e.Model.target) es)))
                  :: !out)
            | _ -> ())
          steps
      end
      else
        out :=
          Finding.make ~cls:"unreachable-task" ~task:idx ~step:(-1)
            "no spawn/clone path from the root reaches this script; it never runs"
          :: !out)
    scripts;
  !out

(* --- merge-order dependence and conflict prediction -------------------------

   For every reachable script, the write-sets of its child subtrees are the
   concurrent journals its merges will serialize.  A key written by two or
   more child subtrees whose op-class matrix has a non-convergent pair means
   the MergeAllFromSet outcome depends on the set order (Warning, pinned
   when the registry documents it — mqueue's "queue-push-order").  A shared
   key whose classes all converge but transform non-trivially is a cost
   conflict (Note). *)

let conflict_findings ?(matrix_depth = 1) (m : Model.t) =
  let out = ref [] in
  Array.iteri
    (fun idx steps ->
      (* Order-dependence only gates when the order is incidental: a
         merge_all folds children in spawn order, which is part of the
         program text, but a *_from_set merge's order is whatever the set
         iteration yields.  Ordered merges downgrade the finding to a Note. *)
      let set_merge =
        List.exists
          (fun s -> match s with P.Merge { kind = P.All_set | P.Any_set; _ } -> true | _ -> false)
          steps
      in
      if m.Model.reachable.(idx) && List.length m.Model.edges.(idx) >= 1 then
        List.iter
          (fun ty ->
            let writers =
              List.filter
                (fun (e : Model.edge) -> Model.subtree m e.target ty > 0)
                m.Model.edges.(idx)
            in
            let parent_writes = Model.own m idx ty > 0 in
            let key = "fuzz." ^ P.ty_name ty in
            if List.length writers >= 2 then begin
              match Matrix.for_name ~depth:matrix_depth (P.ty_name ty) with
              | None -> ()
              | Some mx ->
                let sensitive = Matrix.order_sensitive mx in
                if sensitive <> [] then
                  out :=
                    Finding.make ?pinned:mx.Matrix.pinned
                      ?severity_override:(if set_merge then None else Some Finding.Note)
                      ~cls:"merge-order" ~task:idx ~step:(-1)
                      (Printf.sprintf
                         "tasks %s all write %s; class pair%s %s do%s not converge under both \
                          merge orders, so the merge outcome is defined by the %s order"
                         (String.concat ", "
                            (List.map
                               (fun (e : Model.edge) -> string_of_int e.Model.target)
                               writers))
                         key
                         (if List.length sensitive = 1 then "" else "s")
                         (String.concat ", "
                            (List.map
                               (fun (c : Matrix.cell) ->
                                 Printf.sprintf "%s x %s" c.Matrix.a_class c.Matrix.b_class)
                               sensitive))
                         (if List.length sensitive = 1 then "es" else "")
                         (if set_merge then "incidental set-iteration" else "programmed spawn"))
                    :: !out
                else if Matrix.transform_forcing mx <> [] then
                  out :=
                    Finding.make ~cls:"conflict" ~task:idx ~step:(-1)
                      (Printf.sprintf "tasks %s all write %s: transforms will fire at merge"
                         (String.concat ", "
                            (List.map
                               (fun (e : Model.edge) -> string_of_int e.Model.target)
                               writers))
                         key)
                    :: !out
            end
            else if parent_writes && writers <> [] then begin
              match Matrix.for_name ~depth:matrix_depth (P.ty_name ty) with
              | Some mx when Matrix.transform_forcing mx <> [] ->
                out :=
                  Finding.make ~cls:"conflict" ~task:idx ~step:(-1)
                    (Printf.sprintf
                       "task %d and child task %s both write %s: child journals transform \
                        against the parent's ops"
                       idx
                       (String.concat ", "
                          (List.map
                             (fun (e : Model.edge) -> string_of_int e.Model.target)
                             writers))
                       key)
                  :: !out
              | _ -> ()
            end)
          P.all_types)
    m.Model.program.P.scripts;
  !out

(* --- driver ------------------------------------------------------------------ *)

let analyze ?matrix_depth ?compaction (p : P.t) =
  let m = Model.build p in
  let findings =
    sort_findings
      (List.concat
         [ taint_findings m; structure_findings m; conflict_findings ?matrix_depth m ])
  in
  { program = p; model = m; findings; cost = Cost.analyze ?compaction m }

let verdict r = Finding.verdict r.findings

let summary r =
  let count sev =
    List.length (List.filter (fun (f : Finding.t) -> f.severity = sev) r.findings)
  in
  Printf.sprintf "%s (%d error%s, %d warning%s, %d note%s); <=%d transform calls"
    (Finding.verdict_name (verdict r))
    (count Finding.Error)
    (if count Finding.Error = 1 then "" else "s")
    (count Finding.Warning)
    (if count Finding.Warning = 1 then "" else "s")
    (count Finding.Note)
    (if count Finding.Note = 1 then "" else "s")
    r.cost.Cost.total_calls

let pp_report ppf r =
  Format.fprintf ppf "verdict: %s@." (Finding.verdict_name (verdict r));
  if r.findings <> [] then begin
    Finding.pp_list ppf r.findings;
    Format.fprintf ppf "@."
  end;
  Cost.pp ppf r.cost
