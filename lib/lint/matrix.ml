module Registry = Sm_check.Registry

type cell =
  { a_class : string
  ; b_class : string
  ; samples : int
  ; converges : bool
  ; identity : bool
  ; commutes_hint : bool
  }

type t =
  { module_name : string
  ; depth : int
  ; classes : string list
  ; cells : cell list
  ; pinned : string option
  }

(* The op class is the leading identifier of the module's own [pp_op]
   rendering ("add(3)" -> "add", "ins 0 v1" -> "ins"): classes come from the
   modules, not from a parallel table that could drift. *)
let op_class pp_op op =
  let s = Format.asprintf "%a" pp_op op in
  let buf = Buffer.create 8 in
  (try
     String.iter
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf c
         | _ -> raise Exit)
       s
   with Exit -> ());
  match Buffer.contents buf with "" -> "op" | s -> String.lowercase_ascii s

let of_entry ?(depth = 1) entry =
  let module E = (val Registry.enum entry : Sm_check.Enum.S) in
  let module C = Sm_ot.Control.Make (E) in
  let tie = Sm_ot.Side.serialization in
  let tbl : (string * string, bool * bool * bool * int) Hashtbl.t = Hashtbl.create 16 in
  let classes = ref [] in
  let note_class c = if not (List.mem c !classes) then classes := c :: !classes in
  List.iter
    (fun s ->
      let ops = E.ops s in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let ca = op_class E.pp_op a and cb = op_class E.pp_op b in
              note_class ca;
              note_class cb;
              (* both set orders of merging two one-op children into an
                 untouched parent — exactly the MergeAllFromSet question *)
              let m1 = C.apply_seq s (C.merge ~applied:[] ~children:[ [ a ]; [ b ] ] ~tie) in
              let m2 = C.apply_seq s (C.merge ~applied:[] ~children:[ [ b ]; [ a ] ] ~tie) in
              let converges = E.equal_state m1 m2 in
              let identity =
                match
                  ( C.transform_seq [ a ] ~against:[ b ] ~tie
                  , C.transform_seq [ b ] ~against:[ a ] ~tie )
                with
                | [ a' ], [ b' ] -> a' = a && b' = b
                | _ -> false
              in
              let hint = E.commutes a b && E.commutes b a in
              let key = if ca <= cb then (ca, cb) else (cb, ca) in
              let c0, i0, h0, n0 =
                Option.value (Hashtbl.find_opt tbl key) ~default:(true, true, true, 0)
              in
              Hashtbl.replace tbl key (c0 && converges, i0 && identity, h0 && hint, n0 + 1))
            ops)
        ops)
    (E.states ~depth);
  let cells =
    Hashtbl.fold
      (fun (a_class, b_class) (converges, identity, commutes_hint, samples) acc ->
        { a_class; b_class; samples; converges; identity; commutes_hint } :: acc)
      tbl []
    |> List.sort compare
  in
  let pinned =
    match Registry.known_issues entry with [] -> None | k :: _ -> Some k.Registry.id
  in
  { module_name = Registry.name entry; depth; classes = List.sort compare !classes; cells; pinned }

(* Matrices are pure functions of the module and the depth; memoize them so
   linting a corpus derives each one once. *)
let cache : (string * int, t) Hashtbl.t = Hashtbl.create 16

let for_name ?(depth = 1) name =
  match Registry.find name with
  | None -> None
  | Some entry ->
    let key = (Registry.name entry, depth) in
    (match Hashtbl.find_opt cache key with
    | Some m -> Some m
    | None ->
      let m = of_entry ~depth entry in
      Hashtbl.replace cache key m;
      Some m)

let order_sensitive t = List.filter (fun c -> not c.converges) t.cells
let transform_forcing t = List.filter (fun c -> not c.identity) t.cells
let all_commute t = List.for_all (fun c -> c.commutes_hint) t.cells

let pp ppf t =
  Format.fprintf ppf "%s (depth %d): %d class%s, %d pair%s%s@." t.module_name t.depth
    (List.length t.classes)
    (if List.length t.classes = 1 then "" else "es")
    (List.length t.cells)
    (if List.length t.cells = 1 then "" else "s")
    (match t.pinned with None -> "" | Some id -> Printf.sprintf " (known issue: %s)" id);
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-10s x %-10s %5d samples  %s%s%s@." c.a_class c.b_class c.samples
        (if c.converges then "converges" else "ORDER-SENSITIVE")
        (if c.identity then ", identity-transform" else ", transforms")
        (if c.commutes_hint then ", commutes-hint" else ""))
    t.cells
